// Faultload authoring walk-through: compile a MiniC module, scan it, show
// each fault type with original vs mutated disassembly, and round-trip the
// faultload through its portable text format.
//
// This is the workflow a benchmark author follows when porting the
// methodology to a new target module.
#include <cstdio>
#include <set>

#include "isa/disassembler.h"
#include "minic/compiler.h"
#include "swfit/injector.h"
#include "swfit/scanner.h"

int main() {
  using namespace gf;

  // A little module with all the constructs the operators look for.
  const char* source = R"(
    const LIMIT = 4096;

    fn audit(code) {
      store(0x150000, code);
      return 0;
    }

    fn clamp(v, lo, hi) {
      if (v < lo) { return lo; }
      if (v > hi) { return hi; }
      return v;
    }

    fn checked_sum(base, count) {
      var total = 0;
      var i = 0;
      if (base == 0 || count <= 0) { return -1; }
      while (i < count && total < LIMIT) {
        var v = load(base + i * 8);
        total = total + clamp(v, 0, 255);
        i = i + 1;
      }
      audit(total);
      return total;
    }
  )";

  auto img = minic::compile(source, "demo-module", 0x1000);
  std::printf("compiled %llu instructions, digest %016llx\n\n",
              static_cast<unsigned long long>(img.instr_count()),
              static_cast<unsigned long long>(img.code_digest()));

  const auto fl = swfit::Scanner{}.scan_all(img);
  std::printf("scan found %zu fault locations:\n\n", fl.faults.size());

  // Show one example of each fault type present.
  std::set<swfit::FaultType> shown;
  for (const auto& fault : fl.faults) {
    if (!shown.insert(fault.type).second) continue;
    std::printf("%s (%s) in %s at 0x%llx:\n", swfit::fault_type_name(fault.type),
                swfit::fault_type_info(fault.type).description,
                fault.function.c_str(),
                static_cast<unsigned long long>(fault.addr));
    for (std::size_t i = 0; i < fault.window(); ++i) {
      std::printf("    %-28s =>  %s\n",
                  isa::disassemble(fault.original[i]).c_str(),
                  isa::disassemble(fault.mutated[i]).c_str());
    }
  }

  // Portability: the text form embeds the target digest, so a faultload can
  // never be applied to the wrong build.
  const auto text = fl.serialize();
  const auto back = swfit::Faultload::parse(text);
  std::printf("\nserialized %zu bytes; parsed back %zu faults; matches this "
              "build: %s\n",
              text.size(), back.faults.size(),
              back.matches(img) ? "yes" : "no");

  // Apply + restore every fault to prove the windows are consistent.
  const auto digest = img.code_digest();
  for (const auto& fault : back.faults) {
    if (!swfit::apply_fault(img, fault) || !swfit::remove_fault(img, fault)) {
      std::printf("window mismatch at 0x%llx!\n",
                  static_cast<unsigned long long>(fault.addr));
      return 1;
    }
  }
  std::printf("all %zu faults applied and restored; digest unchanged: %s\n",
              back.faults.size(),
              img.code_digest() == digest ? "yes" : "NO");
  return 0;
}
