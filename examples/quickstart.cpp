// Quickstart: the whole methodology in ~80 lines.
//
//   1. boot a simulated OS (the Fault Injection Target),
//   2. generate a faultload with the G-SWFIT scanner,
//   3. start a web server (the Benchmark Target) on top,
//   4. inject one fault, exercise the server, observe the consequence,
//   5. restore the pristine code byte-exactly.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "os/api.h"
#include "os/kernel.h"
#include "spec/client.h"
#include "swfit/injector.h"
#include "swfit/scanner.h"

int main() {
  using namespace gf;

  // 1. The SUB: a VOS-2000 kernel plus the SPECWeb-style file set.
  os::Kernel kernel(os::OsVersion::kVos2000);
  os::OsApi api(kernel);
  spec::Fileset fileset(kernel.disk());

  // 2. G-SWFIT step 1: scan the OS API code for fault locations.
  std::vector<std::string> functions;
  for (const auto& fn : os::api_functions()) functions.push_back(fn.name);
  const auto faultload = swfit::Scanner{}.scan(kernel.pristine_image(), functions);
  std::printf("faultload: %zu faults over %zu API functions of %s\n",
              faultload.faults.size(), functions.size(),
              kernel.pristine_image().name().c_str());

  // 3. The BT: an Apache-like server that only reaches the OS through the
  // (mutable) API code.
  auto server = web::make_server("apex", api);
  if (!server->start()) {
    std::printf("server failed to start\n");
    return 1;
  }

  // A healthy request first.
  spec::WorkloadGenerator gen(fileset, /*seed=*/42);
  const auto req = gen.next();
  auto resp = server->handle(req);
  std::printf("healthy:  %s %s -> %d (%zu bytes)\n",
              web::method_name(req.method), req.path.c_str(), resp.status,
              resp.body.size());

  // 4. G-SWFIT step 2: inject one fault into RtlFreeHeap and watch the
  // consequence propagate through the API boundary.
  swfit::Injector injector(kernel);
  for (const auto& fault : faultload.faults) {
    if (fault.function == "RtlFreeHeap" &&
        fault.type == swfit::FaultType::kMVI) {
      injector.inject(fault);
      std::printf("injected: %s in %s at 0x%llx\n",
                  swfit::fault_type_name(fault.type), fault.function.c_str(),
                  static_cast<unsigned long long>(fault.addr));
      break;
    }
  }
  int errors = 0;
  for (int i = 0; i < 50; ++i) {
    const auto r = gen.next();
    resp = server->handle(r);
    const bool ok = spec::SpecClient::validate(r, resp, gen.size_of(r.path));
    errors += !ok;
    if (server->state() != web::ServerState::kRunning) {
      std::printf("server state: %s after %d requests\n",
                  web::server_state_name(server->state()), i + 1);
      break;
    }
  }
  std::printf("under fault: %d of 50 requests failed\n", errors);

  // 5. Byte-exact restore; the OS heals after a reboot.
  injector.restore();
  kernel.reboot();
  std::printf("restored: code digest matches pristine: %s\n",
              kernel.active_image().code_digest() ==
                      kernel.pristine_image().code_digest()
                  ? "yes"
                  : "NO");
  if (server->state() != web::ServerState::kRunning) server->start();
  const auto r2 = gen.next();
  resp = server->handle(r2);
  std::printf("healed:   %s -> %d (%zu bytes)\n", r2.path.c_str(), resp.status,
              resp.body.size());
  return 0;
}
