// Benchmarking a custom BT: the methodology is not tied to the bundled web
// servers. This example defines its own benchmark target — a tiny key-value
// store built on the VOS API — and runs a miniature dependability campaign
// against it (the paper's closing point: the same generic faultload works
// for any application domain, e.g. OLTP systems).
#include <cstdio>
#include <string>

#include "os/api.h"
#include "os/kernel.h"
#include "swfit/injector.h"
#include "swfit/scanner.h"
#include "util/rng.h"

namespace {

using namespace gf;

/// A deliberately simple KV store: one file per key, values cached through
/// OS heap buffers. Robustness: checks statuses (more apex than abyssal).
class KvStore {
 public:
  explicit KvStore(os::OsApi& api) : api_(api) {}

  bool start() {
    const auto buf = api_.rtl_alloc(4096);
    if (!buf.completed || buf.value <= 0) return false;
    buf_ = static_cast<std::uint64_t>(buf.value);
    return true;
  }

  void stop() {
    if (buf_) api_.rtl_free(buf_);
    buf_ = 0;
  }

  bool put(const std::string& key, const std::string& value) {
    if (!api_.write_cstr(os::OsApi::kPathSlot, "/kv/" + key)) return false;
    const auto h = api_.nt_create_file(os::OsApi::kPathSlot);
    if (!h.completed || h.value <= 0) return false;
    bool ok = api_.write_bytes(buf_, value.data(), value.size());
    const auto w = api_.nt_write_file(h.value, buf_,
                                      static_cast<std::int64_t>(value.size()));
    ok = ok && w.completed && w.value == static_cast<std::int64_t>(value.size());
    const auto c = api_.nt_close(h.value);
    return ok && c.completed && c.value == 0;
  }

  bool get(const std::string& key, std::string& out) {
    if (!api_.write_cstr(os::OsApi::kPathSlot, "/kv/" + key)) return false;
    const auto h = api_.nt_open_file(os::OsApi::kPathSlot);
    if (!h.completed || h.value <= 0) return false;
    const auto r = api_.nt_read_file(h.value, buf_, 4000);
    bool ok = r.completed && r.value >= 0;
    if (ok) {
      out.resize(static_cast<std::size_t>(r.value));
      ok = api_.read_bytes(buf_, out.data(), out.size());
    }
    const auto c = api_.nt_close(h.value);
    return ok && c.completed && c.value == 0;
  }

 private:
  os::OsApi& api_;
  std::uint64_t buf_ = 0;
};

}  // namespace

int main() {
  using namespace gf;
  os::Kernel kernel(os::OsVersion::kVosXp);
  os::OsApi api(kernel);

  // The KV store only uses a subset of the API; fine-tune the faultload to
  // the functions this BT category actually exercises (paper §2.4).
  const std::vector<std::string> used = {"NtCreateFile", "NtOpenFile",
                                         "NtReadFile",   "NtWriteFile",
                                         "NtClose",      "RtlAllocateHeap",
                                         "RtlFreeHeap"};
  const auto fl = swfit::Scanner{}.scan(kernel.pristine_image(), used);
  std::printf("fine-tuned faultload for the KV category: %zu faults\n",
              fl.faults.size());

  KvStore store(api);
  if (!store.start()) return 1;

  // Campaign: inject each 5th fault, run a put/get mix, classify.
  swfit::Injector injector(kernel);
  util::Rng rng(7);
  int tolerated = 0, wrong = 0, failed = 0, hung_or_crashed = 0;
  int tested = 0;
  for (std::size_t i = 0; i < fl.faults.size(); i += 5) {
    injector.inject(fl.faults[i]);
    ++tested;
    bool any_wrong = false, any_fail = false, any_dead = false;
    for (int op = 0; op < 10 && !any_dead; ++op) {
      const auto key = "k" + std::to_string(rng.bounded(16));
      const auto value = "value-" + std::to_string(rng.next() % 1000);
      if (!store.put(key, value)) {
        any_fail = true;
        continue;
      }
      std::string back;
      if (!store.get(key, back)) {
        any_fail = true;
      } else if (back != value) {
        any_wrong = true;
      }
      // A hung API call surfaces as a completed=false/hung result inside
      // put/get; real deaths would be modeled as in web::WebServer.
    }
    injector.restore();
    kernel.reboot();
    if (!store.start()) {
      any_dead = true;
      kernel.reboot();
      store.start();
    }
    if (any_dead) {
      ++hung_or_crashed;
    } else if (any_wrong) {
      ++wrong;
    } else if (any_fail) {
      ++failed;
    } else {
      ++tolerated;
    }
  }
  std::printf("campaign over %d faults: %d tolerated, %d wrong results, "
              "%d failed operations, %d crashes\n",
              tested, tolerated, wrong, failed, hung_or_crashed);
  std::printf("(the same faultload, metrics aside, would apply to any BT in "
              "this category — the methodology is domain-generic)\n");
  store.stop();
  return 0;
}
