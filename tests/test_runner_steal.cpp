// Scheduler tests: the work-stealing executor must run every unit exactly
// once (even when every unit is seeded onto one worker and the rest must
// steal their entire share), the chunk planner must partition the schedule
// for any override, and — the load-bearing contract — campaign artifacts
// must be byte-identical across every (jobs, chunk, steal) combination.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <sstream>

#include "depbench/campaign_report.h"
#include "depbench/runner.h"
#include "depbench/scheduler.h"
#include "trace/activation.h"

namespace gf::depbench {
namespace {

// ---------------------------------------------------------------- executor

TEST(RunUnitsTest, ForcedStealsRunEveryUnitExactlyOnce) {
  constexpr std::size_t kUnits = 96;
  std::vector<std::atomic<int>> ran(kUnits);
  std::vector<WorkUnit> units;
  units.reserve(kUnits);
  for (std::size_t i = 0; i < kUnits; ++i) {
    units.push_back({[&ran, i] {
                       // A little work so thieves find non-empty deques.
                       volatile std::uint64_t x = 0;
                       for (int k = 0; k < 20000; ++k) x = x + k;
                       ran[i].fetch_add(1);
                     },
                     1.0});
  }

  SchedOptions opt;
  opt.jobs = 4;
  opt.steal = true;
  opt.seed_single_worker = true;  // workers 1..3 must steal everything
  const auto st = run_units(std::move(units), opt);

  for (std::size_t i = 0; i < kUnits; ++i) {
    EXPECT_EQ(ran[i].load(), 1) << "unit " << i;
  }
  ASSERT_EQ(st.workers.size(), 4u);
  std::uint64_t total = 0;
  for (const auto& w : st.workers) total += w.units;
  EXPECT_EQ(total, kUnits);
  EXPECT_EQ(st.total_units, kUnits);
  // Everything was seeded onto worker 0, so any unit worker 1..3 executed
  // got there by stealing.
  EXPECT_GT(st.stolen(), 0u);
  EXPECT_GT(st.steals(), 0u);
}

TEST(RunUnitsTest, SingleWorkerRunsInScheduleOrder) {
  std::vector<std::size_t> order;
  std::vector<WorkUnit> units;
  for (std::size_t i = 0; i < 8; ++i) {
    units.push_back({[&order, i] { order.push_back(i); }, 1.0});
  }
  SchedOptions opt;
  opt.jobs = 1;
  const auto st = run_units(std::move(units), opt);
  std::vector<std::size_t> expect(8);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
  EXPECT_EQ(st.workers.size(), 1u);
  EXPECT_EQ(st.workers[0].units, 8u);
}

TEST(RunUnitsTest, UnitExceptionIsRethrownAfterJoin) {
  std::vector<WorkUnit> units;
  for (int i = 0; i < 16; ++i) {
    units.push_back({[i] {
                       if (i == 5) throw std::runtime_error("unit failed");
                     },
                     1.0});
  }
  SchedOptions opt;
  opt.jobs = 4;
  EXPECT_THROW(run_units(std::move(units), opt), std::runtime_error);
}

// ------------------------------------------------------------ chunk planner

TEST(PlanChunksTest, PartitionsForAnyOverride) {
  const std::vector<double> costs(37, 1.0);
  for (const int override_ : {0, 1, 3, 5, 64, -1, -4, -10}) {
    SCOPED_TRACE("override " + std::to_string(override_));
    const auto chunks = plan_chunks(costs, 4, override_);
    ASSERT_FALSE(chunks.empty());
    std::size_t next = 0;
    for (const auto& c : chunks) {
      EXPECT_EQ(c.first, next);
      EXPECT_GE(c.count, 1u);
      EXPECT_LE(c.count, costs.size());
      next += c.count;
    }
    EXPECT_EQ(next, costs.size()) << "chunks must cover every position";
  }
}

TEST(PlanChunksTest, FixedOverrideForcesChunkSize) {
  const std::vector<double> costs(20, 1.0);
  const auto chunks = plan_chunks(costs, 8, 6);
  ASSERT_EQ(chunks.size(), 4u);  // 6 + 6 + 6 + 2
  EXPECT_EQ(chunks[0].count, 6u);
  EXPECT_EQ(chunks[3].count, 2u);
}

TEST(PlanChunksTest, NegativeOverrideIsTheShardsAlias) {
  // --shards 4 -> chunk_override -4 -> ceil(22/4) = 6 positions per chunk.
  const std::vector<double> costs(22, 1.0);
  const auto chunks = plan_chunks(costs, 8, -4);
  ASSERT_EQ(chunks.size(), 4u);
  EXPECT_EQ(chunks[0].count, 6u);
  EXPECT_EQ(chunks[3].count, 4u);
}

TEST(PlanChunksTest, AdaptiveChunksShrinkWhereCostsAreHigh) {
  // First half expensive, second half cheap: adaptive chunking must put
  // fewer positions into the expensive range than into the cheap one.
  std::vector<double> costs(128, 0.2);
  for (std::size_t i = 0; i < 64; ++i) costs[i] = 1.0;
  const auto chunks = plan_chunks(costs, 2, 0);
  ASSERT_GT(chunks.size(), 1u);
  double exp_count = 0, exp_n = 0, cheap_count = 0, cheap_n = 0;
  for (const auto& c : chunks) {
    if (c.first + c.count <= 64) {
      exp_count += static_cast<double>(c.count);
      ++exp_n;
    } else if (c.first >= 64) {
      cheap_count += static_cast<double>(c.count);
      ++cheap_n;
    }
  }
  ASSERT_GT(exp_n, 0);
  ASSERT_GT(cheap_n, 0);
  EXPECT_LT(exp_count / exp_n, cheap_count / cheap_n);
  for (const auto& c : chunks) EXPECT_LE(c.count, kMaxChunkFaults);
}

// ---------------------------------------------------------------- cost model

TEST(EstimateFaultCostsTest, MeasuredKillerFaultsAreCheaperThanHealthy) {
  swfit::Faultload fl;
  fl.faults.resize(2);
  fl.faults[0].type = swfit::FaultType::kMIFS;
  fl.faults[1].type = swfit::FaultType::kMIFS;

  // Fault 0 measured as never activating (full healthy window); fault 1
  // measured as killing the server every time (window collapses).
  std::vector<trace::ActivationRecord> traces(2);
  traces[0].fault_index = 0;
  traces[0].outcome = trace::Outcome::kNotActivated;
  traces[1].fault_index = 1;
  traces[1].hits = 3;
  traces[1].outcome = trace::Outcome::kExternalFailure;

  FaultCostModel model;
  model.traces = &traces;
  const auto costs = estimate_fault_costs(fl, model);
  ASSERT_EQ(costs.size(), 2u);
  EXPECT_DOUBLE_EQ(costs[0], 1.0);
  EXPECT_LT(costs[1], costs[0]);
  EXPECT_GE(costs[1], 0.2);  // floor: bring-up/restore overhead never free
}

// -------------------------------------------------- campaign byte-identity

RunnerOptions steal_options() {
  RunnerOptions opt;
  opt.versions = {os::OsVersion::kVos2000};
  opt.servers = {"apex"};
  opt.iterations = 1;
  opt.stride = 41;
  opt.time_scale = 0.05;
  opt.baseline_window_ms = 2000;
  opt.seed = 11;
  opt.obs = true;
  opt.trace = true;
  return opt;
}

struct Artifacts {
  std::string metrics;
  std::string journal;
  std::string activations;
};

Artifacts run_artifacts(const RunnerOptions& opt) {
  CampaignRunner runner(opt);
  const auto cells = runner.run_campaign();
  Artifacts a;
  const auto* obs = runner.campaign_obs();
  a.metrics = obs->metrics.to_json();
  std::ostringstream journal;
  write_campaign_journal(journal, *obs);
  a.journal = journal.str();
  std::ostringstream act;
  for (const auto& cell : cells) {
    for (std::size_t it = 0; it < cell.iterations.size(); ++it) {
      trace::write_jsonl(act, "iter" + std::to_string(it),
                         cell.iterations[it].activations);
    }
  }
  a.activations = act.str();
  return a;
}

TEST(SchedulerIdentityTest, ArtifactsIdenticalAcrossJobsAndChunks) {
  const auto base = steal_options();
  const auto ref = run_artifacts(base);
  ASSERT_FALSE(ref.metrics.empty());
  ASSERT_FALSE(ref.journal.empty());
  ASSERT_FALSE(ref.activations.empty());

  for (const int jobs : {1, 2, 7, 16}) {
    for (const int chunk : {1, 3, 64}) {
      SCOPED_TRACE("jobs " + std::to_string(jobs) + " chunk " +
                   std::to_string(chunk));
      auto opt = base;
      opt.jobs = jobs;
      opt.chunk = chunk;
      const auto got = run_artifacts(opt);
      EXPECT_EQ(got.metrics, ref.metrics);
      EXPECT_EQ(got.journal, ref.journal);
      EXPECT_EQ(got.activations, ref.activations);
    }
  }
}

TEST(SchedulerIdentityTest, StaticPartitionAndShardsAliasMatchStealing) {
  const auto base = steal_options();
  const auto ref = run_artifacts(base);

  // --no-steal: same decomposition, block-partitioned, no rebalancing.
  auto no_steal = base;
  no_steal.jobs = 7;
  no_steal.steal = false;
  const auto a = run_artifacts(no_steal);
  EXPECT_EQ(a.metrics, ref.metrics);
  EXPECT_EQ(a.journal, ref.journal);
  EXPECT_EQ(a.activations, ref.activations);

  // Deprecated --shards alias: S equal chunks per iteration.
  auto sharded = base;
  sharded.jobs = 4;
  sharded.shards = 3;
  const auto b = run_artifacts(sharded);
  EXPECT_EQ(b.metrics, ref.metrics);
  EXPECT_EQ(b.journal, ref.journal);
  EXPECT_EQ(b.activations, ref.activations);
}

TEST(SchedulerIdentityTest, SchedulerStatsAccountForEveryUnit) {
  auto opt = steal_options();
  opt.jobs = 4;
  CampaignRunner runner(opt);
  runner.run_campaign();
  const auto* st = runner.scheduler_stats();
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->workers.size(), 4u);
  std::uint64_t ran = 0;
  for (const auto& w : st->workers) ran += w.units;
  EXPECT_EQ(ran, st->total_units);
  EXPECT_GT(st->total_units, 0u);
  EXPECT_GT(st->utilization(), 0.0);
  EXPECT_GE(st->imbalance(), 1.0);
  // The telemetry JSON parses and carries the schema marker.
  EXPECT_NE(st->to_json().find("genfault-sched/1"), std::string::npos);
}

}  // namespace
}  // namespace gf::depbench
