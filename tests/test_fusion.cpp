// Superinstruction-fusion equivalence suite.
//
// The contract under test (see machine.h set_fusion and DESIGN.md): fusion
// is a pure execution strategy — registers, memory, cycles, traps, retired
// instruction counts and watch traces are bit-identical with fusion on or
// off, for any cycle budget, and the xop token table can never go stale:
// any code write landing on either half of a fused pair (guest store,
// patch_code, snapshot restore) splits the pair before it next executes.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "isa/assembler.h"
#include "isa/isa.h"
#include "vm/machine.h"

namespace gf::vm {
namespace {

using isa::assemble;

/// Everything a run observably produces, including the lifetime tallies.
struct Probe {
  RunResult r;
  std::uint64_t instructions = 0;
  std::uint64_t total_cycles = 0;
};

Probe probe_call(Machine& m, const isa::Image& img,
                 const std::vector<std::int64_t>& args,
                 std::uint64_t budget = 100000) {
  Probe p;
  p.r = m.call(img.find_symbol("f")->addr, args, budget);
  p.instructions = m.dispatch_stats().instructions;
  p.total_cycles = m.total_cycles();
  return p;
}

void expect_same(const Probe& fused, const Probe& plain, const char* what) {
  EXPECT_EQ(fused.r.trap, plain.r.trap) << what;
  EXPECT_EQ(fused.r.ret, plain.r.ret) << what;
  EXPECT_EQ(fused.r.cycles, plain.r.cycles) << what;
  EXPECT_EQ(fused.r.pc, plain.r.pc) << what;
  EXPECT_EQ(fused.instructions, plain.instructions) << what;
  EXPECT_EQ(fused.total_cycles, plain.total_cycles) << what;
}

/// One straight-line + branchy program that exercises every fused pair the
/// tokenizer knows: ld+ld, ld+alu, ld+push, movi+alu, mov+pop, alu+st,
/// cmp+branch and cmpi+branch (taken and not taken).
const char* kAllPairsSrc = R"(
  f:
    movi r3, 0x100000
    st [r3], r1
    st [r3, 8], r2
    ld r4, [r3]
    ld r5, [r3, 8]
    add r6, r4, r5
    st [r3, 16], r6
    ld r7, [r3, 16]
    mul r7, r7, r2
    movi r8, 3
    add r8, r8, r7
    ld r9, [r3]
    push r9
    mov r10, r8
    pop r11
    add r0, r10, r11
    cmpi r1, 5
    jlt @small
    cmp r1, r2
    jgt @big
    ret
  small:
    movi r0, -1
    ret
  big:
    addi r0, r0, 1
    ret
)";

TEST(Fusion, AllFusedPairsEquivalent) {
  const auto img = assemble(kAllPairsSrc, "t", 0x1000);
  const std::vector<std::vector<std::int64_t>> cases = {
      {1, 2},   // cmpi taken (small path)
      {9, 2},   // cmp taken (big path)
      {6, 7},   // both fall through
      {0, 0}, {100, -3},
  };
  for (const auto& args : cases) {
    Machine fused, plain;
    fused.load_image(img);
    plain.load_image(img);
    plain.set_fusion(false);
    EXPECT_TRUE(fused.fusion());
    EXPECT_FALSE(plain.fusion());
    expect_same(probe_call(fused, img, args), probe_call(plain, img, args),
                "AllFusedPairs");
  }
}

/// Budget exhaustion may land between the two halves of a fused pair; the
/// engine must stop with exactly the unfused pc/cycles/step count. Sweep
/// every budget from 1 up to well past completion.
TEST(Fusion, CycleBudgetSweepMatchesUnfused) {
  const char* src = R"(
    f:
      movi r3, 0x100000
      st [r3], r1
      movi r4, 0
      movi r5, 0
    loop:
      cmp r5, r1
      jge @done
      ld r6, [r3]
      add r4, r4, r6
      addi r5, r5, 1
      jmp @loop
    done:
      mov r0, r4
      ret
  )";
  const auto img = assemble(src, "t", 0x1000);
  for (std::uint64_t budget = 1; budget <= 120; ++budget) {
    Machine fused, plain;
    fused.load_image(img);
    plain.load_image(img);
    plain.set_fusion(false);
    const auto pf = probe_call(fused, img, {5}, budget);
    const auto pp = probe_call(plain, img, {5}, budget);
    expect_same(pf, pp, "budget sweep");
    if (budget >= 60) {
      EXPECT_EQ(pf.r.trap, Trap::kHalt) << budget;
      EXPECT_EQ(pf.r.ret, 25) << budget;
    }
  }
}

/// A guest 8-byte store that overwrites the *second* half of an
/// already-fused pair mid-run: the write-path auto-invalidation must split
/// the pair before the pc reaches it, so the patched instruction (not the
/// stale fused body) executes. The donor instruction's bytes are loaded
/// from the image itself, so the test needs no knowledge of the encoding.
TEST(Fusion, GuestStoreSplitsFusedPair) {
  const char* src = R"(
    f:
      movi r3, @donor
      ld r4, [r3]
      movi r5, @target
      st [r5], r4
      movi r1, 1
      movi r2, 2
      cmp r1, r2
    target:
      jgt @wrong
      ret
    wrong:
      movi r0, 55
      ret
    donor:
      movi r0, 99
  )";
  const auto img = assemble(src, "t", 0x1000);
  Machine fused, plain;
  fused.load_image(img);
  plain.load_image(img);
  plain.set_fusion(false);
  const auto pf = probe_call(fused, img, {});
  const auto pp = probe_call(plain, img, {});
  expect_same(pf, pp, "guest store split");
  // The overwritten instruction must have executed: r0 = 99, then ret. A
  // stale fused cmp+jgt would fall through to the original ret with r0 = 0.
  EXPECT_EQ(pf.r.ret, 99);
}

/// Same property for a 1-byte guest store: stb into the immediate field of
/// the second load of a fused ld+ld pair redirects it to another address.
TEST(Fusion, GuestByteStoreSplitsFusedPair) {
  // imm lives at byte offset 4 of the 8-byte encoding (see isa::encode).
  const char* src = R"(
    f:
      movi r3, 0x100000
      movi r4, 11
      st [r3], r4
      movi r4, 22
      st [r3, 8], r4
      movi r5, @target
      movi r6, 8
      stb [r5, 4], r6
      ld r7, [r3]
    target:
      ld r0, [r3, 0]
      ret
  )";
  const auto img = assemble(src, "t", 0x1000);
  Machine fused, plain;
  fused.load_image(img);
  plain.load_image(img);
  plain.set_fusion(false);
  const auto pf = probe_call(fused, img, {});
  const auto pp = probe_call(plain, img, {});
  expect_same(pf, pp, "guest byte store split");
  // The patched offset (8) must be live: r0 = 22, not the stale 11.
  EXPECT_EQ(pf.r.ret, 22);
}

/// Injector-style patch_code over the second half of a fused pair, then a
/// snapshot restore back: both transitions must re-tokenize, and the
/// restored machine must reproduce the pristine run bit-identically.
TEST(Fusion, InjectRestoreOverFusedPairRoundTrips) {
  const char* src = R"(
    f:
      cmp r1, r2
    target:
      jlt @less
      ret
    less:
      movi r0, 8
      ret
  )";
  const auto img = assemble(src, "t", 0x1000);
  const auto target = img.find_symbol("target")->addr;

  // The "fault": turn the jlt into movi r0, 42 (computed via isa::encode —
  // exactly what the swfit injector does with operator byte sequences).
  std::uint8_t patch[isa::kInstrSize];
  isa::encode({isa::Op::kMovI, 0, 0, 0, 42}, patch);

  for (const bool fusion : {true, false}) {
    Machine m, witness;
    m.load_image(img);
    witness.load_image(img);
    m.set_fusion(fusion);
    witness.set_fusion(fusion);

    const auto snap = m.snapshot();
    const auto before = m.call(img.find_symbol("f")->addr, {1, 2}, 1000);
    EXPECT_EQ(before.ret, 8) << fusion;

    ASSERT_TRUE(m.patch_code(target, patch, sizeof patch));
    const auto injected = m.call(img.find_symbol("f")->addr, {1, 2}, 1000);
    EXPECT_EQ(injected.ret, 42) << fusion;  // stale fusion would return 8

    m.restore(snap);
    const auto after = m.call(img.find_symbol("f")->addr, {1, 2}, 1000);
    const auto pristine = witness.call(img.find_symbol("f")->addr, {1, 2}, 1000);
    EXPECT_EQ(after.trap, pristine.trap) << fusion;
    EXPECT_EQ(after.ret, pristine.ret) << fusion;
    EXPECT_EQ(after.cycles, pristine.cycles) << fusion;
    EXPECT_EQ(after.pc, pristine.pc) << fusion;
  }
}

/// An armed fault-window watch whose window covers the second half of a
/// would-be fused pair: arming must split the pair (single-step inside the
/// window), and the trace — hits, first-hit cycle, edge ring — must be
/// identical with fusion on and off. Disarming must re-fuse.
TEST(Fusion, ArmedWatchOverFusedPairTracesIdentically) {
  const char* src = R"(
    f:
      movi r4, 0
      movi r5, 0
    loop:
      cmp r5, r1
    target:
      jge @done
      addi r4, r4, 3
      addi r5, r5, 1
      jmp @loop
    done:
      mov r0, r4
      ret
  )";
  const auto img = assemble(src, "t", 0x1000);
  const auto target = img.find_symbol("target")->addr;

  Machine fused, plain;
  fused.load_image(img);
  plain.load_image(img);
  plain.set_fusion(false);
  for (Machine* m : {&fused, &plain}) {
    m->arm_watch(target, target + isa::kInstrSize);
  }
  const auto pf = probe_call(fused, img, {4});
  const auto pp = probe_call(plain, img, {4});
  expect_same(pf, pp, "armed watch over pair");
  EXPECT_EQ(pf.r.ret, 12);

  const auto& tf = fused.watch_trace();
  const auto& tp = plain.watch_trace();
  EXPECT_EQ(tf.hits, tp.hits);
  EXPECT_GT(tf.hits, 0u);
  EXPECT_EQ(tf.first_hit_cycle, tp.first_hit_cycle);
  EXPECT_EQ(tf.edge_count, tp.edge_count);
  EXPECT_EQ(tf.edges(), tp.edges());

  // Disarm re-fuses; the machines stay equivalent.
  fused.disarm_watch();
  plain.disarm_watch();
  expect_same(probe_call(fused, img, {4}), probe_call(plain, img, {4}),
              "after disarm");
}

/// Coverage mode records per-pc at the full fetch, so the tokenizer must
/// refuse to fuse under it — and the recorded pc set must match unfused.
TEST(Fusion, CoverageSeesEveryArchitecturalPc) {
  const auto img = assemble(kAllPairsSrc, "t", 0x1000);
  Machine fused, plain;
  fused.load_image(img);
  plain.load_image(img);
  plain.set_fusion(false);
  fused.set_coverage(true);
  plain.set_coverage(true);
  expect_same(probe_call(fused, img, {9, 2}), probe_call(plain, img, {9, 2}),
              "coverage");
  EXPECT_EQ(fused.executed_pcs(), plain.executed_pcs());
  EXPECT_FALSE(fused.executed_pcs().empty());
}

/// Toggling fusion mid-life re-tokenizes in place (no reload needed) and
/// flips behaviour between the two equivalent engines.
TEST(Fusion, ToggleRetokenizesInPlace) {
  const auto img = assemble(kAllPairsSrc, "t", 0x1000);
  Machine m, witness;
  m.load_image(img);
  witness.load_image(img);
  witness.set_fusion(false);
  const auto p1 = probe_call(m, img, {6, 7});
  m.set_fusion(false);
  const auto p2 = m.call(img.find_symbol("f")->addr, {6, 7}, 100000);
  m.set_fusion(true);
  const auto p3 = m.call(img.find_symbol("f")->addr, {6, 7}, 100000);
  EXPECT_EQ(p1.r.ret, p2.ret);
  EXPECT_EQ(p2.ret, p3.ret);
  EXPECT_EQ(p1.r.cycles, p2.cycles);
  EXPECT_EQ(p2.cycles, p3.cycles);
  expect_same(p1, probe_call(witness, img, {6, 7}), "toggle");
}

TEST(Fusion, DispatchKindIsReported) {
  const std::string kind = Machine::dispatch_kind();
  EXPECT_TRUE(kind == "threaded" || kind == "switch") << kind;
}

}  // namespace
}  // namespace gf::vm
