#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace gf::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.bounded(17), 17u);
}

TEST(Rng, BoundedOneAlwaysZero) {
  Rng r(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.bounded(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng r(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng r(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedRespectsWeights) {
  Rng r(5);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[r.weighted(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  // The fork must not replay the parent stream.
  Rng b(42);
  b.next();  // advance past the fork draw
  int same = 0;
  for (int i = 0; i < 100; ++i) same += child.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Zipf, FirstRankMostPopular) {
  Zipf z(100, 1.0);
  Rng r(13);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[z.sample(r)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
}

TEST(Zipf, AllSamplesInRange) {
  Zipf z(10, 0.8);
  Rng r(17);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.sample(r), 10u);
}

TEST(Stats, AccumulatorBasics) {
  Accumulator a;
  for (double x : {1.0, 2.0, 3.0, 4.0}) a.add(x);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
  EXPECT_DOUBLE_EQ(a.sum(), 10.0);
  EXPECT_NEAR(a.stdev(), 1.2909944, 1e-6);
}

TEST(Stats, EmptyAccumulatorIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.stdev(), 0.0);
}

TEST(Stats, MeanStdev) {
  std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(stdev(xs), 2.13809, 1e-4);
}

TEST(Stats, Percentile) {
  std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.5);
}

TEST(Stats, Ci95ShrinksWithN) {
  std::vector<double> small = {1, 2, 3, 4};
  std::vector<double> large;
  for (int i = 0; i < 16; ++i) large.insert(large.end(), {1, 2, 3, 4});
  EXPECT_GT(ci95_halfwidth(small), ci95_halfwidth(large));
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(1.5);
  t.row().cell("b").cell(22.25);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22.25"), std::string::npos);
  EXPECT_NE(s.find("|---"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvEscapesCommas) {
  Table t({"a"});
  t.row().cell("x,y");
  EXPECT_NE(t.to_csv().find("\"x,y\""), std::string::npos);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Table, BarClamped) {
  EXPECT_EQ(bar(10.0, 10.0, 4), "####");
  EXPECT_EQ(bar(0.0, 10.0, 4), "    ");
  EXPECT_EQ(bar(20.0, 10.0, 4), "####");  // clamped
}

}  // namespace
}  // namespace gf::util
