// Tests for the operator-support layer: FunctionView's program analysis
// (jump targets, epilogue detection, local discovery) and the ScanOptions
// knobs' directional effects on the generated faultload.
#include <gtest/gtest.h>

#include <set>

#include "minic/compiler.h"
#include "os/kernel.h"
#include "swfit/operators.h"
#include "swfit/scanner.h"

namespace gf::swfit {
namespace {

FunctionView view_of(const isa::Image& img, const std::string& fn) {
  const auto* sym = img.find_symbol(fn);
  EXPECT_NE(sym, nullptr);
  return FunctionView(img, *sym);
}

TEST(FunctionView, IndexOfRespectsBoundsAndAlignment) {
  const auto img = minic::compile("fn f(a) { return a + 1; }", "t", 0x1000);
  const auto v = view_of(img, "f");
  EXPECT_EQ(v.index_of(0x1000), 0u);
  EXPECT_EQ(v.index_of(0x1008), 1u);
  EXPECT_EQ(v.index_of(0x1004), FunctionView::npos);  // misaligned
  EXPECT_EQ(v.index_of(0x0FF8), FunctionView::npos);  // before
  EXPECT_EQ(v.index_of(0x1000 + v.size() * 8), FunctionView::npos);  // after
}

TEST(FunctionView, DetectsStandardEpilogue) {
  const auto img = minic::compile("fn f(a) { return a; }", "t", 0x1000);
  const auto v = view_of(img, "f");
  ASSERT_NE(v.epilogue_index(), FunctionView::npos);
  EXPECT_EQ(v.at(v.epilogue_index()).op, isa::Op::kMov);
  EXPECT_EQ(v.at(v.size() - 1).op, isa::Op::kRet);
}

TEST(FunctionView, CountsBranchTargets) {
  const auto img = minic::compile(R"(
    fn f(a, b) {
      var r = 0;
      if (a > 0 && b > 0) { r = 1; }
      return r;
    }
  )", "t", 0x1000);
  const auto v = view_of(img, "f");
  // The && chain makes two branches share the same join target.
  bool found_double_target = false;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v.targets_count(i) == 2) found_double_target = true;
  }
  EXPECT_TRUE(found_double_target);
}

TEST(FunctionView, TargetInsideDetectsBodies) {
  const auto img = minic::compile(R"(
    fn f(n) {
      var s = 0;
      var i = 0;
      while (i < n) { s = s + i; i = i + 1; }
      return s;
    }
  )", "t", 0x1000);
  const auto v = view_of(img, "f");
  // The loop header is a jump target strictly inside the function.
  EXPECT_TRUE(v.target_inside(0, v.size()));
  EXPECT_FALSE(v.target_inside(v.size() - 2, v.size()));
}

TEST(FunctionView, LocalOffsetsAreSortedAndDistinct) {
  const auto img = minic::compile(
      "fn f(a, b) { var x = 1; var y = 2; return a + b + x + y; }", "t",
      0x1000);
  const auto v = view_of(img, "f");
  const auto& locals = v.local_offsets();
  ASSERT_GE(locals.size(), 4u);  // 2 params + 2 locals
  EXPECT_TRUE(std::is_sorted(locals.begin(), locals.end()));
  for (std::size_t i = 1; i < locals.size(); ++i) {
    EXPECT_NE(locals[i - 1], locals[i]);
    EXPECT_LT(locals[i], 0);
  }
}

// --- ScanOptions directional effects ----------------------------------------

int count_type(const isa::Image& img, const ScanOptions& opts, FaultType t) {
  Scanner scanner(opts);
  const auto fl = scanner.scan_all(img);
  int n = 0;
  for (const auto& f : fl.faults) n += f.type == t;
  return n;
}

TEST(ScanOptionsEffect, MaxIfBodyGrowsIfConstructs) {
  os::Kernel kernel(os::OsVersion::kVosXp);
  ScanOptions tight;
  tight.max_if_body = 1;
  ScanOptions loose;
  loose.max_if_body = 16;
  EXPECT_LT(count_type(kernel.pristine_image(), tight, FaultType::kMIFS),
            count_type(kernel.pristine_image(), loose, FaultType::kMIFS));
}

TEST(ScanOptionsEffect, BlockBoundsGateMlpc) {
  os::Kernel kernel(os::OsVersion::kVosXp);
  ScanOptions huge_min;
  huge_min.min_block = 12;  // few straight-line runs are this long
  EXPECT_LT(count_type(kernel.pristine_image(), huge_min, FaultType::kMLPC),
            count_type(kernel.pristine_image(), {}, FaultType::kMLPC));
}

TEST(ScanOptionsEffect, IncludeSysGatesIntrinsicCallFaults) {
  os::Kernel kernel(os::OsVersion::kVosXp);
  ScanOptions no_sys;
  no_sys.include_sys = false;
  EXPECT_LE(count_type(kernel.pristine_image(), no_sys, FaultType::kMFC),
            count_type(kernel.pristine_image(), {}, FaultType::kMFC));
  EXPECT_LE(count_type(kernel.pristine_image(), no_sys, FaultType::kWAEP),
            count_type(kernel.pristine_image(), {}, FaultType::kWAEP));
}

TEST(ScanOptionsEffect, CallWindowWidensParameterFaults) {
  os::Kernel kernel(os::OsVersion::kVosXp);
  ScanOptions tight;
  tight.call_window = 1;
  ScanOptions loose;
  loose.call_window = 10;
  const auto img = kernel.pristine_image();
  EXPECT_LE(count_type(img, tight, FaultType::kWAEP),
            count_type(img, loose, FaultType::kWAEP));
  EXPECT_LE(count_type(img, tight, FaultType::kWPFV),
            count_type(img, loose, FaultType::kWPFV));
}

TEST(OperatorLibrary, HasOneOperatorPerFaultType) {
  const auto lib = operator_library();
  ASSERT_EQ(lib.size(), static_cast<std::size_t>(kNumFaultTypes));
  std::set<FaultType> seen;
  for (const auto& op : lib) {
    EXPECT_TRUE(seen.insert(op.type).second) << op.name;
    EXPECT_NE(op.scan, nullptr);
  }
}

}  // namespace
}  // namespace gf::swfit
