// Tests for the HTTP model and the four benchmark-target web servers,
// including their differentiated behaviour under injected OS faults.
#include <gtest/gtest.h>

#include "os/api.h"
#include "os/kernel.h"
#include "spec/client.h"
#include "spec/fileset.h"
#include "swfit/injector.h"
#include "swfit/scanner.h"
#include "web/server.h"

namespace gf::web {
namespace {

TEST(Http, PathSeedIsStable) {
  EXPECT_EQ(path_seed("/a"), path_seed("/a"));
  EXPECT_NE(path_seed("/a"), path_seed("/b"));
}

TEST(Http, ExpectedBodyDeterministic) {
  const auto a = expected_body("/x", 64, false);
  const auto b = expected_body("/x", 64, false);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 64u);
}

TEST(Http, DynamicTransformIsInvolution) {
  for (int b = 0; b < 256; ++b) {
    const auto x = static_cast<std::uint8_t>(b);
    EXPECT_EQ(dynamic_transform(dynamic_transform(x)), x);
  }
}

TEST(Http, DynamicBodyDiffersFromStatic) {
  EXPECT_NE(expected_body("/x", 16, true), expected_body("/x", 16, false));
}

class ServerTest : public ::testing::TestWithParam<const char*> {
 protected:
  ServerTest()
      : kernel_(os::OsVersion::kVos2000),
        api_(kernel_),
        fileset_(kernel_.disk()),
        server_(make_server(GetParam(), api_)) {}

  os::Kernel kernel_;
  os::OsApi api_;
  spec::Fileset fileset_;
  std::unique_ptr<WebServer> server_;
};

INSTANTIATE_TEST_SUITE_P(AllServers, ServerTest,
                         ::testing::Values("apex", "abyssal", "sambar",
                                           "savant"),
                         [](const auto& info) { return std::string(info.param); });

TEST_P(ServerTest, StartsOnHealthyOs) {
  EXPECT_TRUE(server_->start());
  EXPECT_EQ(server_->state(), ServerState::kRunning);
  server_->stop();
  EXPECT_EQ(server_->state(), ServerState::kStopped);
}

TEST_P(ServerTest, ServesEveryFilesetFileCorrectly) {
  ASSERT_TRUE(server_->start());
  for (const auto& f : fileset_.files()) {
    const Request req{Method::kGet, f.path, false, ""};
    const auto resp = server_->handle(req);
    ASSERT_EQ(resp.status, 200) << f.path;
    EXPECT_EQ(resp.body, expected_body(f.path, f.size, false)) << f.path;
  }
}

TEST_P(ServerTest, ServesDynamicContent) {
  ASSERT_TRUE(server_->start());
  const auto& f = fileset_.files()[10];
  const Request req{Method::kGet, f.path, true, ""};
  const auto resp = server_->handle(req);
  ASSERT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, expected_body(f.path, f.size, true));
}

TEST_P(ServerTest, HandlesPosts) {
  ASSERT_TRUE(server_->start());
  const auto& f = fileset_.files()[3];
  const Request req{Method::kPost, f.path, false, "user=a&pass=b"};
  const auto resp = server_->handle(req);
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body.size(), 128u);
}

TEST_P(ServerTest, MissingFileIs404) {
  ASSERT_TRUE(server_->start());
  const Request req{Method::kGet, "/no/such/file", false, ""};
  EXPECT_EQ(server_->handle(req).status, 404);
}

TEST_P(ServerTest, RequestsWhileStoppedAre503) {
  const Request req{Method::kGet, "/x", false, ""};
  EXPECT_EQ(server_->handle(req).status, 503);
}

TEST_P(ServerTest, StatsAccumulate) {
  ASSERT_TRUE(server_->start());
  const auto& f = fileset_.files()[0];
  server_->handle({Method::kGet, f.path, false, ""});
  server_->handle({Method::kGet, "/missing", false, ""});
  EXPECT_EQ(server_->stats().requests, 2u);
  EXPECT_EQ(server_->stats().ok, 1u);
  EXPECT_EQ(server_->stats().errors, 1u);
}

TEST_P(ServerTest, SurvivesHundredsOfMixedRequests) {
  ASSERT_TRUE(server_->start());
  spec::WorkloadGenerator gen(fileset_, 5);
  for (int i = 0; i < 600; ++i) {
    const auto req = gen.next();
    const auto resp = server_->handle(req);
    ASSERT_EQ(resp.status, 200) << i << " " << req.path;
  }
  EXPECT_EQ(server_->state(), ServerState::kRunning);
}

TEST_P(ServerTest, RestartAfterStopWorks) {
  ASSERT_TRUE(server_->start());
  server_->stop();
  ASSERT_TRUE(server_->start());
  const auto& f = fileset_.files()[0];
  EXPECT_EQ(server_->handle({Method::kGet, f.path, false, ""}).status, 200);
}

TEST(ServerFactory, RejectsUnknownNames) {
  os::Kernel k(os::OsVersion::kVos2000);
  os::OsApi api(k);
  EXPECT_THROW(make_server("nginx", api), std::invalid_argument);
}

TEST(ServerTraits, OnlyApexSelfRestarts) {
  os::Kernel k(os::OsVersion::kVos2000);
  os::OsApi api(k);
  EXPECT_TRUE(make_server("apex", api)->has_self_restart());
  EXPECT_FALSE(make_server("abyssal", api)->has_self_restart());
  EXPECT_FALSE(make_server("sambar", api)->has_self_restart());
  EXPECT_FALSE(make_server("savant", api)->has_self_restart());
}

// --- behaviour under faults --------------------------------------------------

struct FaultImpact {
  int errors = 0;
  int deaths = 0;
  int hangs = 0;
  int clean_faults = 0;  ///< faults with no client-visible effect at all
  int faults = 0;
};

FaultImpact run_fault_sweep(const char* server_name, int stride) {
  os::Kernel kernel(os::OsVersion::kVos2000);
  os::OsApi api(kernel);
  spec::Fileset fileset(kernel.disk());
  auto server = make_server(server_name, api);
  std::vector<std::string> fns;
  for (const auto& f : os::api_functions()) fns.emplace_back(f.name);
  const auto fl = swfit::Scanner{}.scan(kernel.pristine_image(), fns);
  swfit::Injector injector(kernel);
  spec::WorkloadGenerator gen(fileset, 11);

  FaultImpact impact;
  for (std::size_t i = 0; i < fl.faults.size(); i += stride) {
    kernel.reboot();
    if (!server->start()) continue;
    // Steady-state warm-up before the fault (campaign conditions: caches
    // and pools are hot when a fault arrives).
    for (int op = 0; op < 120; ++op) server->handle(gen.next());
    if (server->state() != ServerState::kRunning) continue;
    injector.inject(fl.faults[i]);
    ++impact.faults;
    bool any_effect = false;
    for (int op = 0; op < 25; ++op) {
      const auto req = gen.next();
      const auto resp = server->handle(req);
      if (server->state() == ServerState::kCrashed) {
        ++impact.deaths;
        any_effect = true;
        break;
      }
      if (server->state() == ServerState::kHung ||
          server->state() == ServerState::kSpinning) {
        ++impact.hangs;
        any_effect = true;
        break;
      }
      const bool ok =
          spec::SpecClient::validate(req, resp, gen.size_of(req.path));
      impact.errors += !ok;
      any_effect = any_effect || !ok;
    }
    impact.clean_faults += !any_effect;
    injector.restore();
    server->stop();
  }
  return impact;
}

TEST(FaultDifferentiation, ApexIsMoreRobustThanAbyssal) {
  const auto apex = run_fault_sweep("apex", 7);
  const auto abyssal = run_fault_sweep("abyssal", 7);
  // Per-fault structural property: the trusting server dies at least as
  // often as the one with per-request crash containment. (The ER%/ADMf
  // service-level comparison is a campaign property and lives in
  // test_depbench.ApexOutperformsAbyssalUnderFaults.)
  EXPECT_LE(apex.deaths, abyssal.deaths);
  // Faults must actually bite, and some must be tolerated, on both servers.
  EXPECT_GT(abyssal.errors + abyssal.deaths + abyssal.hangs, 0);
  EXPECT_GT(apex.errors + apex.deaths + apex.hangs, 0);
  EXPECT_GT(apex.clean_faults, 0);
  EXPECT_GT(abyssal.clean_faults, 0);
}

TEST(FaultDifferentiation, HarnessSurvivesFullSweepOnEveryServer) {
  for (const char* name : {"sambar", "savant"}) {
    const auto impact = run_fault_sweep(name, 23);
    (void)impact;  // no crash of the host process is the assertion
  }
}

}  // namespace
}  // namespace gf::web
