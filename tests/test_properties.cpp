// Property-based sweeps over the substrate invariants:
//   - randomly generated MiniC programs compile deterministically and
//     execute identically on every run (the repeatability foundation),
//   - the VOS heap preserves its invariants under arbitrary alloc/free
//     sequences, on both OS versions,
//   - every mutation operator preserves the faultload's structural
//     invariants on every fault it generates,
//   - mutated code can never escape the VM's containment.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "check/progen.h"
#include "minic/compiler.h"
#include "os/api.h"
#include "os/kernel.h"
#include "swfit/injector.h"
#include "swfit/scanner.h"
#include "testutil_seed.h"
#include "util/rng.h"
#include "vm/machine.h"

namespace gf {
namespace {

// Random program generation lives in src/check (check::ProgramGen) — shared
// with the gfcheck differential fuzzer engines.
using check::ProgramGen;

class RandomProgramTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest, ::testing::Range(0, 24));

TEST_P(RandomProgramTest, CompilesDeterministicallyAndRunsIdentically) {
  const auto seed =
      testutil::test_seed(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  SCOPED_TRACE(testutil::seed_banner(seed));
  util::Rng rng(seed);
  ProgramGen gen(rng);
  const auto src = gen.generate();

  const auto img1 = minic::compile(src, "p", 0x1000);
  const auto img2 = minic::compile(src, "p", 0x1000);
  ASSERT_EQ(img1.code_digest(), img2.code_digest()) << src;

  // Note: division is excluded from the grammar, so no traps are expected;
  // every execution must halt well within the budget and agree.
  const auto* sym = img1.find_symbol("f");
  ASSERT_NE(sym, nullptr);
  for (std::int64_t a : {-3, 0, 7}) {
    for (std::int64_t b : {-1, 2}) {
      vm::Machine m1, m2;
      m1.load_image(img1);
      m2.load_image(img1);
      const auto r1 = m1.call(sym->addr, {a, b}, 1u << 20);
      const auto r2 = m2.call(sym->addr, {a, b}, 1u << 20);
      ASSERT_TRUE(r1.ok()) << src;
      EXPECT_EQ(r1.ret, r2.ret) << src;
      EXPECT_EQ(r1.cycles, r2.cycles);
    }
  }
}

TEST_P(RandomProgramTest, ScannerFaultsApplyAndRestoreCleanly) {
  const auto seed =
      testutil::test_seed(static_cast<std::uint64_t>(GetParam()) * 104729 + 5);
  SCOPED_TRACE(testutil::seed_banner(seed));
  util::Rng rng(seed);
  ProgramGen gen(rng);
  const auto src = gen.generate();
  auto img = minic::compile(src, "p", 0x1000);
  const auto digest = img.code_digest();
  const auto fl = swfit::Scanner{}.scan_all(img);
  for (const auto& f : fl.faults) {
    ASSERT_TRUE(swfit::apply_fault(img, f)) << src;
    // Mutated code stays decodable everywhere (fixed-width property).
    for (std::uint64_t a = img.base(); a < img.end(); a += isa::kInstrSize) {
      ASSERT_TRUE(img.at(a).has_value());
    }
    // Containment: running the mutant can trap or hang but never escapes.
    vm::Machine m;
    m.load_image(img);
    (void)m.call(img.find_symbol("f")->addr, {3, 4}, 50000);
    ASSERT_TRUE(swfit::remove_fault(img, f));
    ASSERT_EQ(img.code_digest(), digest);
  }
}

// --- heap allocator properties -----------------------------------------------

class HeapPropertyTest
    : public ::testing::TestWithParam<std::tuple<os::OsVersion, int>> {};

INSTANTIATE_TEST_SUITE_P(
    VersionsAndSeeds, HeapPropertyTest,
    ::testing::Combine(::testing::Values(os::OsVersion::kVos2000,
                                         os::OsVersion::kVosXp),
                       ::testing::Values(1, 2, 3, 4)));

TEST_P(HeapPropertyTest, RandomAllocFreeSequencesKeepInvariants) {
  const auto [version, param_seed] = GetParam();
  os::Kernel kernel(version);
  os::OsApi api(kernel);
  const auto seed =
      testutil::test_seed(static_cast<std::uint64_t>(param_seed));
  SCOPED_TRACE(testutil::seed_banner(seed));
  util::Rng rng(seed);

  struct Block {
    std::uint64_t addr;
    std::int64_t size;
  };
  std::vector<Block> live;
  std::int64_t live_bytes_lower_bound = 0;

  for (int step = 0; step < 400; ++step) {
    if (live.empty() || rng.chance(0.55)) {
      const auto size = rng.range(1, 2000);
      const auto r = api.rtl_alloc(size);
      ASSERT_TRUE(r.completed);
      if (r.value == 0) continue;  // exhaustion is legal
      const auto addr = static_cast<std::uint64_t>(r.value);
      EXPECT_EQ(addr % 16, 0u);
      // No overlap with any live block.
      for (const auto& b : live) {
        EXPECT_TRUE(addr + static_cast<std::uint64_t>(size) <= b.addr ||
                    b.addr + static_cast<std::uint64_t>(b.size) <= addr)
            << "overlap at step " << step;
      }
      live.push_back({addr, size});
      live_bytes_lower_bound += size;
      // Write a pattern to catch cross-block clobbering later.
      std::vector<std::uint8_t> fill(static_cast<std::size_t>(size),
                                     static_cast<std::uint8_t>(addr >> 4));
      ASSERT_TRUE(api.write_bytes(addr, fill.data(), fill.size()));
    } else {
      const auto idx = rng.bounded(live.size());
      const auto blk = live[idx];
      // Contents must be intact right before the free.
      std::vector<std::uint8_t> back(static_cast<std::size_t>(blk.size));
      ASSERT_TRUE(api.read_bytes(blk.addr, back.data(), back.size()));
      for (const auto byte : back) {
        ASSERT_EQ(byte, static_cast<std::uint8_t>(blk.addr >> 4));
      }
      EXPECT_TRUE(api.rtl_free(blk.addr).ok());
      live[idx] = live.back();
      live.pop_back();
      live_bytes_lower_bound -= blk.size;
    }
  }
  // Free everything; afterwards a huge allocation must succeed again
  // (full coalescing back to one arena-sized block).
  for (const auto& b : live) EXPECT_TRUE(api.rtl_free(b.addr).ok());
  const auto big = api.rtl_alloc(3 << 20);
  EXPECT_GT(big.value, 0) << "arena did not coalesce";
}

// --- operator invariants over the full OS faultloads --------------------------

class OperatorInvariantTest : public ::testing::TestWithParam<os::OsVersion> {};
INSTANTIATE_TEST_SUITE_P(BothVersions, OperatorInvariantTest,
                         ::testing::Values(os::OsVersion::kVos2000,
                                           os::OsVersion::kVosXp),
                         [](const auto& info) {
                           return info.param == os::OsVersion::kVos2000
                                      ? "Vos2000"
                                      : "VosXp";
                         });

TEST_P(OperatorInvariantTest, EveryFaultDiffersFromOriginalInWindowOnly) {
  os::Kernel kernel(GetParam());
  std::vector<std::string> fns;
  for (const auto& f : os::api_functions()) fns.emplace_back(f.name);
  const auto fl = swfit::Scanner{}.scan(kernel.pristine_image(), fns);
  for (const auto& f : fl.faults) {
    // The mutation changes at least one instruction...
    EXPECT_NE(f.original, f.mutated) << swfit::fault_type_name(f.type);
    auto img = kernel.pristine_image();
    const auto before = img.code();
    std::vector<std::uint8_t> snapshot(before.begin(), before.end());
    ASSERT_TRUE(swfit::apply_fault(img, f));
    // ... and nothing outside the declared window.
    const auto after = img.code();
    const auto lo = (f.addr - img.base());
    const auto hi = lo + f.window() * isa::kInstrSize;
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
      if (i >= lo && i < hi) continue;
      ASSERT_EQ(after[i], snapshot[i]) << "byte " << i << " outside window";
    }
  }
}

TEST_P(OperatorInvariantTest, TypeSpecificMutationShapes) {
  os::Kernel kernel(GetParam());
  std::vector<std::string> fns;
  for (const auto& f : os::api_functions()) fns.emplace_back(f.name);
  const auto fl = swfit::Scanner{}.scan(kernel.pristine_image(), fns);
  for (const auto& f : fl.faults) {
    switch (f.type) {
      case swfit::FaultType::kWLEC:
        ASSERT_EQ(f.window(), 1u);
        EXPECT_TRUE(isa::is_branch(f.original[0].op));
        EXPECT_EQ(f.mutated[0].op, isa::invert_branch(f.original[0].op));
        break;
      case swfit::FaultType::kMIFS:
        ASSERT_EQ(f.window(), 1u);
        EXPECT_TRUE(isa::is_branch(f.original[0].op));
        EXPECT_EQ(f.mutated[0].op, isa::Op::kJmp);
        EXPECT_EQ(f.mutated[0].imm, f.original[0].imm);
        break;
      case swfit::FaultType::kMIA:
      case swfit::FaultType::kMFC:
      case swfit::FaultType::kMLPC:
      case swfit::FaultType::kMLAC:
      case swfit::FaultType::kMVI:
      case swfit::FaultType::kMVAV:
      case swfit::FaultType::kMVAE:
        // Omission faults mutate strictly to NOPs.
        for (const auto& in : f.mutated) EXPECT_EQ(in.op, isa::Op::kNop);
        break;
      case swfit::FaultType::kWVAV:
        ASSERT_EQ(f.window(), 2u);
        EXPECT_EQ(f.mutated[0].imm, f.original[0].imm + 1);
        EXPECT_EQ(f.mutated[1], f.original[1]);
        break;
      case swfit::FaultType::kWAEP:
        ASSERT_EQ(f.window(), 1u);
        EXPECT_NE(f.mutated[0].op, f.original[0].op);
        EXPECT_TRUE(isa::is_alu(f.mutated[0].op));
        break;
      case swfit::FaultType::kWPFV:
        ASSERT_EQ(f.window(), 1u);
        EXPECT_EQ(f.mutated[0].op, isa::Op::kLd);
        EXPECT_NE(f.mutated[0].imm, f.original[0].imm);
        break;
    }
  }
}

// --- cross-version semantic equivalence ---------------------------------------

TEST(OsVersionEquivalence, CommonSurfaceBehavesIdentically) {
  // The XP hardening must not change fault-free semantics on valid inputs:
  // drive both versions through the same API transcript and compare.
  os::Kernel k2000(os::OsVersion::kVos2000);
  os::Kernel kxp(os::OsVersion::kVosXp);
  os::OsApi a(k2000), b(kxp);
  for (auto* k : {&k2000, &kxp}) {
    k->disk().add_file("/f", {'h', 'e', 'l', 'l', 'o'});
  }
  const auto seed = testutil::test_seed(99);
  SCOPED_TRACE(testutil::seed_banner(seed));
  util::Rng rng(seed);
  for (int i = 0; i < 300; ++i) {
    const auto op = rng.bounded(6);
    std::int64_t va = 0, vb = 0;
    switch (op) {
      case 0: {
        const auto size = rng.range(1, 512);
        va = a.rtl_alloc(size).value;
        vb = b.rtl_alloc(size).value;
        break;
      }
      case 1: {
        a.write_cstr(os::OsApi::kPathSlot, "/f");
        b.write_cstr(os::OsApi::kPathSlot, "/f");
        va = a.nt_open_file(os::OsApi::kPathSlot).value;
        vb = b.nt_open_file(os::OsApi::kPathSlot).value;
        break;
      }
      case 2: {
        const auto h = rng.range(1, 6);
        va = a.nt_read_file(h, 0x150000, 4).value;
        vb = b.nt_read_file(h, 0x150000, 4).value;
        break;
      }
      case 3: {
        const auto h = rng.range(1, 6);
        va = a.nt_close(h).value;
        vb = b.nt_close(h).value;
        break;
      }
      case 4: {
        a.write_wstr(os::OsApi::kWidePathSlot, "/some/file.html");
        b.write_wstr(os::OsApi::kWidePathSlot, "/some/file.html");
        va = a.rtl_unicode_to_multibyte(0x151000, 64, os::OsApi::kWidePathSlot, 30).value;
        vb = b.rtl_unicode_to_multibyte(0x151000, 64, os::OsApi::kWidePathSlot, 30).value;
        break;
      }
      default: {
        va = a.nt_protect_vm(os::layout::kHeapArena, 4096, 3).value;
        vb = b.nt_protect_vm(os::layout::kHeapArena, 4096, 3).value;
        break;
      }
    }
    ASSERT_EQ(va, vb) << "divergence at step " << i << " op " << op;
  }
}

}  // namespace
}  // namespace gf
