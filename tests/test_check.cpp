// Tests for the gfcheck engine layer (src/check).
//
// Two claims matter beyond "the engines run":
//
//   1. The default-seed budget is CLEAN — a red fuzzer in CI must mean a
//      real oracle violation, never an over-asserting oracle (tier-2, so the
//      budget here is small; the full budget runs as gfcheck_budget).
//   2. The oracles are SENSITIVE — a deliberately perturbed merge path
//      (GF_CHECK_PERTURB, src/depbench/runner.cpp) must be flagged with a
//      replayable case seed. Without this negative test, byte-identity
//      oracles could silently compare a value to itself and pass forever.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "check/check.h"
#include "testutil_seed.h"

namespace gf::check {
namespace {

CheckOptions small_options(std::size_t cases) {
  CheckOptions opt;
  opt.seed = testutil::test_seed(1);
  opt.cases = cases;
  return opt;
}

void expect_clean(const CheckReport& report, std::size_t want_cases) {
  EXPECT_EQ(report.cases, want_cases);
  for (const auto& f : report.failures) {
    ADD_FAILURE() << "[" << f.engine << "] " << f.message
                  << "\n  repro: " << f.repro;
  }
}

TEST(CheckEngineTest, MatrixEngineCleanOnDefaultSeeds) {
  const auto opt = small_options(2);
  SCOPED_TRACE(testutil::seed_banner(opt.seed));
  expect_clean(run_matrix_engine(opt), 2);
}

TEST(CheckEngineTest, VmEngineCleanOnDefaultSeeds) {
  const auto opt = small_options(4);
  SCOPED_TRACE(testutil::seed_banner(opt.seed));
  expect_clean(run_vm_engine(opt), 4);
}

TEST(CheckEngineTest, StructureEngineCleanOnDefaultSeeds) {
  const auto opt = small_options(10);
  SCOPED_TRACE(testutil::seed_banner(opt.seed));
  expect_clean(run_structure_engine(opt), 10);
}

// The repro-line contract: `--seed N --cases K` names a fixed set of cases
// on every machine, forever. If this derivation ever changes, every seed in
// an old CI log stops replaying — so the first few values are pinned.
TEST(CheckEngineTest, CaseSeedDerivationIsPinned) {
  EXPECT_EQ(case_seed(1, 0), case_seed(1, 0));
  EXPECT_NE(case_seed(1, 0), case_seed(1, 1));
  EXPECT_NE(case_seed(1, 0), case_seed(2, 0));
  EXPECT_EQ(case_seed(1, 0), UINT64_C(0xe99ff867dbf682c9));
  EXPECT_EQ(case_seed(1, 1), UINT64_C(0xf893a2eefb32555e));
  EXPECT_EQ(case_seed(42, 0), UINT64_C(0x28efe333b266f103));
}

// Explicit seeds (the --case-seed repro path) run exactly the requested
// cases, in order, ignoring `cases`.
TEST(CheckEngineTest, ExplicitSeedsReplayExactly) {
  CheckOptions opt;
  opt.cases = 99;  // must be ignored
  opt.explicit_seeds = {case_seed(1, 0), case_seed(1, 2)};
  const auto report = run_structure_engine(opt);
  expect_clean(report, 2);
}

// The VM engine's dump lines are a pure function of the case seed: two runs
// must emit byte-identical lines (CI extends this across dispatch lowerings
// by cmp-ing the dumps of a threaded and a switch build).
TEST(CheckEngineTest, VmDumpLinesAreDeterministic) {
  auto opt = small_options(3);
  opt.want_dump = true;
  SCOPED_TRACE(testutil::seed_banner(opt.seed));
  const auto a = run_vm_engine(opt);
  const auto b = run_vm_engine(opt);
  ASSERT_TRUE(a.ok());
  ASSERT_EQ(a.dump_lines.size(), 3u);
  EXPECT_EQ(a.dump_lines, b.dump_lines);
}

// Oracle-sensitivity: with GF_CHECK_PERTURB set the runner skews one merge
// input on parallel shapes only, so the matrix fuzzer MUST flag the very
// first case — and the reported seed must replay clean once the
// perturbation is gone (proving the repro line points at a real case, not
// at fuzzer-internal state).
TEST(CheckEngineTest, PerturbedMergeIsCaughtWithReplayableSeed) {
  ASSERT_EQ(::setenv("GF_CHECK_PERTURB", "1", 1), 0);
  CheckOptions opt;
  opt.seed = testutil::test_seed(1);
  opt.cases = 1;
  SCOPED_TRACE(testutil::seed_banner(opt.seed));
  const auto perturbed = run_matrix_engine(opt);
  ASSERT_EQ(::unsetenv("GF_CHECK_PERTURB"), 0);

  ASSERT_FALSE(perturbed.ok())
      << "matrix oracles failed to detect the perturbed merge";
  const auto& f = perturbed.failures.front();
  EXPECT_EQ(f.engine, "matrix");
  EXPECT_EQ(f.case_seed, case_seed(opt.seed, 0));
  EXPECT_NE(f.repro.find("--case-seed"), std::string::npos) << f.repro;
  EXPECT_NE(f.repro.find("--engine matrix"), std::string::npos) << f.repro;

  CheckOptions replay;
  replay.explicit_seeds = {f.case_seed};
  expect_clean(run_matrix_engine(replay), 1);
}

}  // namespace
}  // namespace gf::check
