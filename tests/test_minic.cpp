#include <gtest/gtest.h>

#include "isa/disassembler.h"
#include "minic/compiler.h"
#include "minic/lexer.h"
#include "vm/machine.h"

namespace gf::minic {
namespace {

/// Compiles `src`, runs function `fn` with `args`, returns r0.
std::int64_t run(const std::string& src, const std::string& fn,
                 const std::vector<std::int64_t>& args = {},
                 std::uint64_t budget = 1u << 20) {
  const auto img = compile(src, "test", 0x1000);
  vm::Machine m;
  m.load_image(img);
  const auto* sym = img.find_symbol(fn);
  if (sym == nullptr) throw std::runtime_error("no such function: " + fn);
  const auto r = m.call(sym->addr, args, budget);
  if (!r.ok()) {
    throw std::runtime_error(std::string("trap: ") + vm::trap_name(r.trap));
  }
  return r.ret;
}

TEST(MiniC, ReturnConstant) {
  EXPECT_EQ(run("fn f() { return 42; }", "f"), 42);
}

TEST(MiniC, Parameters) {
  EXPECT_EQ(run("fn f(a, b) { return a - b; }", "f", {50, 8}), 42);
}

TEST(MiniC, SixParameters) {
  EXPECT_EQ(run("fn f(a,b,c,d,e,g) { return a+b+c+d+e+g; }", "f",
                {1, 2, 3, 4, 5, 27}),
            42);
}

TEST(MiniC, LocalVariables) {
  EXPECT_EQ(run("fn f() { var x = 40; var y = 2; return x + y; }", "f"), 42);
}

TEST(MiniC, UninitializedVarThenAssigned) {
  EXPECT_EQ(run("fn f() { var x; x = 42; return x; }", "f"), 42);
}

TEST(MiniC, ArithmeticPrecedence) {
  EXPECT_EQ(run("fn f() { return 2 + 4 * 10; }", "f"), 42);
  EXPECT_EQ(run("fn f() { return (2 + 4) * 7; }", "f"), 42);
  EXPECT_EQ(run("fn f() { return 100 - 60 + 2; }", "f"), 42);
  EXPECT_EQ(run("fn f() { return 85 / 2; }", "f"), 42);
  EXPECT_EQ(run("fn f() { return 142 % 100; }", "f"), 42);
}

TEST(MiniC, BitwiseOps) {
  EXPECT_EQ(run("fn f() { return 0xff & 0x2a; }", "f"), 42);
  EXPECT_EQ(run("fn f() { return 0x28 | 2; }", "f"), 42);
  EXPECT_EQ(run("fn f() { return 0x6a ^ 0x40; }", "f"), 42);
  EXPECT_EQ(run("fn f() { return 21 << 1; }", "f"), 42);
  EXPECT_EQ(run("fn f() { return 84 >> 1; }", "f"), 42);
  EXPECT_EQ(run("fn f() { return ~(-43); }", "f"), 42);
}

TEST(MiniC, UnaryOps) {
  EXPECT_EQ(run("fn f(a) { return -a; }", "f", {-42}), 42);
  EXPECT_EQ(run("fn f(a) { return !a; }", "f", {0}), 1);
  EXPECT_EQ(run("fn f(a) { return !a; }", "f", {7}), 0);
}

TEST(MiniC, Comparisons) {
  EXPECT_EQ(run("fn f(a,b) { return a < b; }", "f", {1, 2}), 1);
  EXPECT_EQ(run("fn f(a,b) { return a < b; }", "f", {2, 2}), 0);
  EXPECT_EQ(run("fn f(a,b) { return a <= b; }", "f", {2, 2}), 1);
  EXPECT_EQ(run("fn f(a,b) { return a > b; }", "f", {3, 2}), 1);
  EXPECT_EQ(run("fn f(a,b) { return a >= b; }", "f", {1, 2}), 0);
  EXPECT_EQ(run("fn f(a,b) { return a == b; }", "f", {5, 5}), 1);
  EXPECT_EQ(run("fn f(a,b) { return a != b; }", "f", {5, 5}), 0);
}

TEST(MiniC, IfElse) {
  const char* src = "fn f(a) { if (a > 10) { return 1; } else { return 2; } }";
  EXPECT_EQ(run(src, "f", {11}), 1);
  EXPECT_EQ(run(src, "f", {10}), 2);
}

TEST(MiniC, IfWithoutElse) {
  const char* src = "fn f(a) { var r = 0; if (a == 3) { r = 42; } return r; }";
  EXPECT_EQ(run(src, "f", {3}), 42);
  EXPECT_EQ(run(src, "f", {4}), 0);
}

TEST(MiniC, ElseIfChain) {
  const char* src = R"(
    fn f(a) {
      if (a == 1) { return 10; }
      else if (a == 2) { return 20; }
      else { return 30; }
    }
  )";
  EXPECT_EQ(run(src, "f", {1}), 10);
  EXPECT_EQ(run(src, "f", {2}), 20);
  EXPECT_EQ(run(src, "f", {9}), 30);
}

TEST(MiniC, ShortCircuitAnd) {
  // The second clause would trap (div by zero) if evaluated.
  const char* src = "fn f(a) { if (a != 0 && 10 / a > 2) { return 1; } return 0; }";
  EXPECT_EQ(run(src, "f", {0}), 0);
  EXPECT_EQ(run(src, "f", {3}), 1);
  EXPECT_EQ(run(src, "f", {9}), 0);
}

TEST(MiniC, ShortCircuitOr) {
  const char* src = "fn f(a) { if (a == 0 || 10 / a > 2) { return 1; } return 0; }";
  EXPECT_EQ(run(src, "f", {0}), 1);
  EXPECT_EQ(run(src, "f", {3}), 1);
  EXPECT_EQ(run(src, "f", {9}), 0);
}

TEST(MiniC, LogicalAsValue) {
  EXPECT_EQ(run("fn f(a,b) { return a && b; }", "f", {3, 4}), 1);
  EXPECT_EQ(run("fn f(a,b) { return a && b; }", "f", {3, 0}), 0);
  EXPECT_EQ(run("fn f(a,b) { return a || b; }", "f", {0, 0}), 0);
  EXPECT_EQ(run("fn f(a,b) { return a || b; }", "f", {0, 9}), 1);
}

TEST(MiniC, ComplexCondition) {
  const char* src =
      "fn f(a,b,c) { if ((a < b && b < c) || c == 0) { return 1; } return 0; }";
  EXPECT_EQ(run(src, "f", {1, 2, 3}), 1);
  EXPECT_EQ(run(src, "f", {3, 2, 1}), 0);
  EXPECT_EQ(run(src, "f", {3, 2, 0}), 1);
}

TEST(MiniC, WhileLoop) {
  const char* src = R"(
    fn f(n) {
      var sum = 0;
      var i = 1;
      while (i <= n) {
        sum = sum + i;
        i = i + 1;
      }
      return sum;
    }
  )";
  EXPECT_EQ(run(src, "f", {10}), 55);
  EXPECT_EQ(run(src, "f", {0}), 0);
}

TEST(MiniC, BreakAndContinue) {
  const char* src = R"(
    fn f() {
      var sum = 0;
      var i = 0;
      while (1) {
        i = i + 1;
        if (i > 100) { break; }
        if (i % 2 == 0) { continue; }
        sum = sum + i;   // odd numbers 1..99
      }
      return sum;
    }
  )";
  EXPECT_EQ(run(src, "f"), 2500);
}

TEST(MiniC, NestedLoops) {
  const char* src = R"(
    fn f(n) {
      var total = 0;
      var i = 0;
      while (i < n) {
        var j = 0;
        j = 0;
        while (j < n) {
          total = total + 1;
          j = j + 1;
        }
        i = i + 1;
      }
      return total;
    }
  )";
  EXPECT_EQ(run(src, "f", {7}), 49);
}

TEST(MiniC, FunctionCalls) {
  const char* src = R"(
    fn add(a, b) { return a + b; }
    fn f() { return add(add(10, 20), 12); }
  )";
  EXPECT_EQ(run(src, "f"), 42);
}

TEST(MiniC, ForwardCalls) {
  const char* src = R"(
    fn f() { return later(21); }
    fn later(x) { return x * 2; }
  )";
  EXPECT_EQ(run(src, "f"), 42);
}

TEST(MiniC, Recursion) {
  const char* src = R"(
    fn fib(n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
  )";
  EXPECT_EQ(run(src, "fib", {10}), 55);
}

TEST(MiniC, CallArgumentsMixedComplexity) {
  const char* src = R"(
    fn g(a, b, c) { return a * 100 + b * 10 + c; }
    fn f(x) { return g(x + 1, 2, g(0, 0, 3)); }
  )";
  EXPECT_EQ(run(src, "f", {4}), 523);
}

TEST(MiniC, Consts) {
  const char* src = R"(
    const BASE = 0x100;
    const SIZE = BASE * 2;
    fn f() { return SIZE + 2; }
  )";
  EXPECT_EQ(run(src, "f"), 514);
}

TEST(MiniC, LoadStoreIntrinsics) {
  const char* src = R"(
    const SCRATCH = 0x100000;
    fn f(v) {
      store(SCRATCH, v);
      store8(SCRATCH + 8, 200);
      return load(SCRATCH) + load8(SCRATCH + 8);
    }
  )";
  EXPECT_EQ(run(src, "f", {1000}), 1200);
}

TEST(MiniC, SysIntrinsic) {
  const auto img = compile("fn f(a) { return sys(5, a, 3); }", "t", 0x1000);
  vm::Machine m;
  m.load_image(img);
  m.set_syscall_handler([](vm::Machine& mm, std::int32_t num) {
    EXPECT_EQ(num, 5);
    mm.set_reg(0, mm.reg(1) * mm.reg(2));
    return vm::Trap::kNone;
  });
  EXPECT_EQ(m.call(img.find_symbol("f")->addr, {14}, 1000).ret, 42);
}

TEST(MiniC, CharLiterals) {
  EXPECT_EQ(run("fn f() { return 'A'; }", "f"), 65);
  EXPECT_EQ(run("fn f() { return '\\n'; }", "f"), 10);
  EXPECT_EQ(run("fn f() { return '\\0'; }", "f"), 0);
}

TEST(MiniC, CommentsIgnored) {
  EXPECT_EQ(run("// lead\nfn f() { /* mid */ return 42; } // tail", "f"), 42);
}

TEST(MiniC, FallThroughReturnsZero) {
  EXPECT_EQ(run("fn f() { var x = 9; }", "f"), 0);
}

TEST(MiniC, MultipleSourceFragments) {
  const auto img = compile(
      {std::string_view("fn helper(x) { return x + 2; }"),
       std::string_view("fn f() { return helper(40); }")},
      "t", 0x1000);
  vm::Machine m;
  m.load_image(img);
  EXPECT_EQ(m.call(img.find_symbol("f")->addr, {}, 10000).ret, 42);
}

TEST(MiniC, EverySymbolHasNonEmptyCode) {
  const auto img = compile("fn a() { return 1; } fn b(x) { return a() + x; }",
                           "t", 0x1000);
  for (const auto& s : img.symbols()) {
    EXPECT_GT(s.size, 0u) << s.name;
    EXPECT_EQ(s.size % isa::kInstrSize, 0u);
  }
}

// --- error cases -----------------------------------------------------------

TEST(MiniCErrors, UndeclaredVariable) {
  EXPECT_THROW(compile("fn f() { return x; }", "t", 0), CompileError);
}

TEST(MiniCErrors, AssignUndeclared) {
  EXPECT_THROW(compile("fn f() { x = 1; }", "t", 0), CompileError);
}

TEST(MiniCErrors, DuplicateVariable) {
  EXPECT_THROW(compile("fn f() { var x = 1; var x = 2; }", "t", 0), CompileError);
}

TEST(MiniCErrors, DuplicateFunction) {
  EXPECT_THROW(compile("fn f() { } fn f() { }", "t", 0), CompileError);
}

TEST(MiniCErrors, UnknownFunction) {
  EXPECT_THROW(compile("fn f() { return g(); }", "t", 0), CompileError);
}

TEST(MiniCErrors, ArityMismatch) {
  EXPECT_THROW(compile("fn g(a) { return a; } fn f() { return g(1, 2); }", "t", 0),
               CompileError);
}

TEST(MiniCErrors, BreakOutsideLoop) {
  EXPECT_THROW(compile("fn f() { break; }", "t", 0), CompileError);
}

TEST(MiniCErrors, TooManyParams) {
  EXPECT_THROW(compile("fn f(a,b,c,d,e,g,h) { }", "t", 0), CompileError);
}

TEST(MiniCErrors, SysNumberMustBeConstant) {
  EXPECT_THROW(compile("fn f(a) { return sys(a); }", "t", 0), CompileError);
}

TEST(MiniCErrors, SyntaxErrorHasLine) {
  try {
    compile("fn f() {\n  var 3;\n}", "t", 0);
    FAIL() << "expected CompileError";
  } catch (const CompileError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(MiniCErrors, ShadowingIntrinsicRejected) {
  EXPECT_THROW(compile("fn load(a) { return a; }", "t", 0), CompileError);
}

TEST(MiniCErrors, CallInConstInitializer) {
  EXPECT_THROW(compile("fn g() {} const X = g();", "t", 0), CompileError);
}

}  // namespace
}  // namespace gf::minic
