// Tests for the fault activation & error-propagation tracing subsystem
// (src/trace): the VM watch layer, the kernel-invariant probe, the
// per-fault tracer classification, deterministic campaign-level records,
// and the measured-activation pruning that closes the fine-tuning loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <sstream>

#include "depbench/runner.h"
#include "depbench/tuner.h"
#include "minic/compiler.h"
#include "os/api.h"
#include "os/kernel.h"
#include "os/layout.h"
#include "swfit/injector.h"
#include "swfit/scanner.h"
#include "trace/activation.h"
#include "trace/probe.h"
#include "trace/tracer.h"
#include "vm/machine.h"

namespace gf {
namespace {

// --- VM watch layer ---------------------------------------------------------

isa::Image loop_image() {
  // `cold` is never called from `f`: arming a watch on it exercises the
  // disarmed-on-the-hot-path case while staying inside the code hull.
  return minic::compile(
      "fn cold(x) { return x + 1; } "
      "fn f(n) { var s = 0; var i = 0; while (i < n) { s = s + i * 3; "
      "i = i + 1; } return s; }",
      "trace_test", 0x1000);
}

TEST(WatchTest, RecordsHitsAndEdgesInsideWindow) {
  const auto img = loop_image();
  vm::Machine m;
  m.load_image(img);
  const auto f = img.find_symbol("f")->addr;

  // Spend some machine lifetime first so the first-hit stamp (which is in
  // lifetime cycles, not per-run cycles) is distinguishable from zero.
  ASSERT_TRUE(m.call(f, {5}, 1u << 20).ok());
  const auto warmup_cycles = m.total_cycles();
  ASSERT_GT(warmup_cycles, 0u);

  // Watch the entry instruction: each call enters the window exactly once.
  m.arm_watch(f, f + isa::kInstrSize);
  EXPECT_TRUE(m.watch_armed());
  ASSERT_TRUE(m.call(f, {50}, 1u << 20).ok());
  const auto& t1 = m.watch_trace();
  EXPECT_EQ(t1.hits, 1u);
  EXPECT_GE(t1.first_hit_cycle, warmup_cycles);
  // The while-loop takes backward jumps after the hit, so edges accumulate
  // and the ring keeps at most the last kEdgeRing of them.
  EXPECT_GT(t1.edge_count, 0u);
  const auto edges = t1.edges();
  EXPECT_LE(edges.size(), vm::WatchTrace::kEdgeRing);
  EXPECT_EQ(edges.size(),
            std::min<std::uint64_t>(t1.edge_count, vm::WatchTrace::kEdgeRing));
  for (const auto& e : edges) {
    EXPECT_NE(e.to, e.from + isa::kInstrSize);  // only taken transfers
  }

  const auto first_cycle = t1.first_hit_cycle;
  ASSERT_TRUE(m.call(f, {50}, 1u << 20).ok());
  EXPECT_EQ(m.watch_trace().hits, 2u);
  EXPECT_EQ(m.watch_trace().first_hit_cycle, first_cycle);

  m.disarm_watch();
  EXPECT_FALSE(m.watch_armed());
  EXPECT_EQ(m.watch_trace().hits, 2u);  // trace stays readable
}

TEST(WatchTest, NeverExecutedWindowStaysAtZeroHits) {
  const auto img = loop_image();
  vm::Machine m;
  m.load_image(img);
  const auto cold = img.find_symbol("cold")->addr;
  m.arm_watch(cold, cold + 2 * isa::kInstrSize);
  ASSERT_TRUE(m.call(img.find_symbol("f")->addr, {100}, 1u << 20).ok());
  EXPECT_EQ(m.watch_trace().hits, 0u);
  EXPECT_EQ(m.watch_trace().edge_count, 0u);
}

TEST(WatchTest, FallbackDecodePathCountsHitsToo) {
  const auto img = loop_image();
  vm::Machine m;
  m.load_image(img);
  m.set_predecode(false);
  const auto f = img.find_symbol("f")->addr;
  m.arm_watch(f, f + isa::kInstrSize);
  ASSERT_TRUE(m.call(f, {10}, 1u << 20).ok());
  EXPECT_EQ(m.watch_trace().hits, 1u);
}

TEST(WatchTest, ReArmingResetsTheTrace) {
  const auto img = loop_image();
  vm::Machine m;
  m.load_image(img);
  const auto f = img.find_symbol("f")->addr;
  m.arm_watch(f, f + isa::kInstrSize);
  ASSERT_TRUE(m.call(f, {10}, 1u << 20).ok());
  ASSERT_EQ(m.watch_trace().hits, 1u);
  m.arm_watch(f, f + isa::kInstrSize);
  EXPECT_EQ(m.watch_trace().hits, 0u);
}

TEST(WatchTest, ArmedBitsSurviveCodePatches) {
  // The injector patches the very window the watch guards; the predecode
  // invalidation that follows must not drop the armed bits.
  const auto img = loop_image();
  vm::Machine m;
  m.load_image(img);
  const auto f = img.find_symbol("f")->addr;
  m.arm_watch(f, f + isa::kInstrSize);

  std::uint8_t window[isa::kInstrSize];
  ASSERT_TRUE(m.read_bytes(f, window, sizeof window));
  ASSERT_TRUE(m.patch_code(f, window, sizeof window));  // inject-style rewrite

  ASSERT_TRUE(m.call(f, {10}, 1u << 20).ok());
  EXPECT_EQ(m.watch_trace().hits, 1u);
}

TEST(WatchTest, DisarmedWatchDoesNotSlowDispatch) {
  // Guard for the acceptance bar (BM_VmDispatchTraceDisarmed within 3% of
  // BM_VmDispatch): a watch armed on never-executed code must not change
  // the hot loop's work. The unit-test bound is generous (25%) because CI
  // machines are noisy; the micro-benchmark measures the real ratio.
  const auto img = loop_image();
  const auto f = img.find_symbol("f")->addr;
  const auto cold = img.find_symbol("cold")->addr;

  const auto time_best = [&](bool armed) {
    vm::Machine m;
    m.load_image(img);
    if (armed) m.arm_watch(cold, cold + 2 * isa::kInstrSize);
    m.call(f, {100000}, 1u << 30);  // warm-up
    double best = 1e18;
    for (int rep = 0; rep < 5; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto r = m.call(f, {100000}, 1u << 30);
      const auto t1 = std::chrono::steady_clock::now();
      EXPECT_TRUE(r.ok());
      best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
  };

  const double off = time_best(false);
  const double on = time_best(true);
  EXPECT_LT(on, off * 1.25) << "armed-but-unhit watch slowed dispatch: "
                            << off * 1e3 << " ms -> " << on * 1e3 << " ms";
}

// --- kernel-invariant probe -------------------------------------------------

TEST(ProbeTest, PristineKernelPassesAndCorruptionIsDetected) {
  os::Kernel kernel(os::OsVersion::kVos2000);
  const auto base = trace::snapshot_invariants(kernel);
  EXPECT_TRUE(base.ok());
  EXPECT_GT(base.heap_free_nodes, 0u);

  // Free-list head mutated to a misaligned address: the walk must reject it
  // rather than chase garbage.
  auto& m = kernel.machine();
  std::uint64_t head = 0;
  ASSERT_TRUE(m.read_u64(os::layout::kHeapCtl, head));
  ASSERT_TRUE(m.write_u64(os::layout::kHeapCtl, head + 1));
  EXPECT_FALSE(trace::snapshot_invariants(kernel).heap_ok);
  ASSERT_TRUE(m.write_u64(os::layout::kHeapCtl, head));
  EXPECT_TRUE(trace::snapshot_invariants(kernel).ok());

  // Handle entry with an unknown type.
  ASSERT_TRUE(m.write_u64(os::layout::kHandleTable + 3 * 32, 7));
  EXPECT_FALSE(trace::snapshot_invariants(kernel).handles_ok);
}

// --- per-fault tracer classification ----------------------------------------

swfit::Faultload scan_for(os::Kernel& kernel, const std::string& function) {
  return swfit::Scanner{}.scan(kernel.pristine_image(), {function});
}

TEST(TracerTest, NeverReachedWindowClassifiesNotActivated) {
  os::Kernel kernel(os::OsVersion::kVos2000);
  os::OsApi api(kernel);
  const auto fl = scan_for(kernel, "NtWriteFile");
  ASSERT_FALSE(fl.faults.empty());

  swfit::Injector injector(kernel);
  injector.inject(fl.faults[0]);
  trace::FaultTracer tracer(kernel);
  tracer.attach(api);
  tracer.begin_fault(0, fl.faults[0]);
  // Exercise a different API family: the patched NtWriteFile window is
  // never entered.
  for (int i = 0; i < 8; ++i) {
    const auto r = api.rtl_alloc(128);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(api.rtl_free(static_cast<std::uint64_t>(r.value)).ok());
  }
  const auto rec = tracer.end_fault();
  injector.restore();

  EXPECT_EQ(rec.outcome, trace::Outcome::kNotActivated);
  EXPECT_EQ(rec.hits, 0u);
  EXPECT_FALSE(rec.activated());
  EXPECT_EQ(rec.function, "NtWriteFile");
}

TEST(TracerTest, FreeHeapMutationYieldsLatentCorruptionBeforeVisibleError) {
  // Inject every RtlFreeHeap fault in turn on a fresh kernel and classify
  // with per-call probing. The point of the latent class: at least one
  // mutation damages the free list while every API call still returns
  // success — the client saw nothing, yet the state oracle flags it at the
  // first boundary after the hit.
  os::Kernel scan_kernel(os::OsVersion::kVos2000);
  const auto fl = scan_for(scan_kernel, "RtlFreeHeap");
  ASSERT_FALSE(fl.faults.empty());

  int latent = 0, activated = 0;
  for (std::size_t i = 0; i < fl.faults.size(); ++i) {
    os::Kernel kernel(os::OsVersion::kVos2000);  // pristine state per fault
    os::OsApi api(kernel);
    swfit::Injector injector(kernel);
    trace::FaultTracer tracer(kernel);
    tracer.attach(api);
    tracer.set_probe_per_call(true);

    injector.inject(fl.faults[i]);
    tracer.begin_fault(static_cast<std::uint32_t>(i), fl.faults[i]);
    bool client_error = false;
    std::int64_t blocks[4] = {};
    for (int b = 0; b < 4; ++b) {
      const auto r = api.rtl_alloc(64 + 32 * b);
      blocks[b] = r.ok() ? r.value : 0;
      client_error |= !r.ok();
    }
    for (int b = 3; b >= 0; --b) {
      if (blocks[b] == 0) continue;
      client_error |= !api.rtl_free(static_cast<std::uint64_t>(blocks[b])).ok();
    }
    const auto rec = tracer.end_fault();
    injector.restore();

    if (rec.activated()) ++activated;
    if (rec.outcome == trace::Outcome::kLatentStateCorruption) {
      ++latent;
      // Latent means latent: nothing was externally observable.
      EXPECT_FALSE(client_error);
    }
    if (rec.hits == 0) {
      EXPECT_EQ(rec.outcome, trace::Outcome::kNotActivated);
    }
  }
  EXPECT_GT(activated, 0);
  EXPECT_GT(latent, 0) << "no RtlFreeHeap mutation produced silent heap "
                          "corruption across " << fl.faults.size() << " faults";
}

// --- campaign-level records -------------------------------------------------

depbench::RunnerOptions traced_quick_options() {
  depbench::RunnerOptions opt;
  opt.versions = {os::OsVersion::kVos2000};
  opt.servers = {"abyssal"};
  opt.iterations = 1;
  opt.stride = 17;
  opt.time_scale = 0.2;
  opt.baseline_window_ms = 5000;
  opt.seed = 42;
  opt.trace = true;
  return opt;
}

void expect_same_records(const std::vector<trace::ActivationRecord>& a,
                         const std::vector<trace::ActivationRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(a[i].fault_index, b[i].fault_index);
    EXPECT_EQ(a[i].type, b[i].type);
    EXPECT_EQ(a[i].function, b[i].function);
    EXPECT_EQ(a[i].hits, b[i].hits);
    EXPECT_EQ(a[i].first_hit_cycle, b[i].first_hit_cycle);
    EXPECT_EQ(a[i].edge_count, b[i].edge_count);
    EXPECT_EQ(a[i].edges, b[i].edges);
    EXPECT_EQ(a[i].outcome, b[i].outcome);
  }
}

TEST(TraceCampaignTest, ActivationRecordsAreBitIdenticalAcrossJobs) {
  auto opt = traced_quick_options();
  opt.jobs = 1;
  const auto seq = depbench::CampaignRunner(opt).run_campaign();
  opt.jobs = 4;
  const auto par = depbench::CampaignRunner(opt).run_campaign();

  ASSERT_EQ(seq.size(), 1u);
  ASSERT_EQ(par.size(), 1u);
  ASSERT_EQ(seq[0].iterations.size(), par[0].iterations.size());
  for (std::size_t i = 0; i < seq[0].iterations.size(); ++i) {
    SCOPED_TRACE("iteration " + std::to_string(i));
    expect_same_records(seq[0].iterations[i].activations,
                        par[0].iterations[i].activations);
  }
}

// Superinstruction fusion is a pure execution strategy (see vm/machine.h):
// the traced campaign — activation hits, absolute first-hit cycles, edge
// rings, outcomes, and the performance counters they key off — must be
// bit-identical with fusion on and off, including when the armed fault
// window lands mid-pair. tests/test_fusion.cpp covers the machine level;
// this covers the full campaign path the CI equivalence gate exercises.
TEST(TraceCampaignTest, ActivationRecordsAreBitIdenticalFusionOnOff) {
  auto opt = traced_quick_options();
  opt.jobs = 2;
  const auto fused = depbench::CampaignRunner(opt).run_campaign();
  opt.fusion = false;
  const auto plain = depbench::CampaignRunner(opt).run_campaign();

  ASSERT_EQ(fused.size(), 1u);
  ASSERT_EQ(plain.size(), 1u);
  ASSERT_EQ(fused[0].iterations.size(), plain[0].iterations.size());
  for (std::size_t i = 0; i < fused[0].iterations.size(); ++i) {
    SCOPED_TRACE("iteration " + std::to_string(i));
    expect_same_records(fused[0].iterations[i].activations,
                        plain[0].iterations[i].activations);
  }
}

TEST(TraceCampaignTest, OneRecordPerInjectedFaultInCanonicalOrder) {
  const auto cells =
      depbench::CampaignRunner(traced_quick_options()).run_campaign();
  ASSERT_EQ(cells.size(), 1u);
  const auto& it = cells[0].iterations[0];
  EXPECT_EQ(static_cast<int>(it.activations.size()),
            it.counters.faults_injected);
  for (std::size_t i = 1; i < it.activations.size(); ++i) {
    EXPECT_LT(it.activations[i - 1].fault_index, it.activations[i].fault_index);
  }
  // Tracing is opt-in: the untraced run records nothing.
  auto off = traced_quick_options();
  off.trace = false;
  const auto plain = depbench::CampaignRunner(off).run_campaign();
  EXPECT_TRUE(plain[0].iterations[0].activations.empty());
}

// --- aggregation, report, serialization --------------------------------------

trace::ActivationRecord make_record(std::uint32_t index, swfit::FaultType type,
                                    const std::string& fn, std::uint64_t hits,
                                    trace::Outcome outcome) {
  trace::ActivationRecord r;
  r.fault_index = index;
  r.type = type;
  r.function = fn;
  r.hits = hits;
  r.outcome = outcome;
  return r;
}

TEST(ActivationStatsTest, AggregationIsACommutativeFold) {
  const auto a = make_record(3, swfit::FaultType::kMFC, "RtlFreeHeap", 2,
                             trace::Outcome::kLatentStateCorruption);
  const auto b = make_record(1, swfit::FaultType::kMFC, "RtlFreeHeap", 0,
                             trace::Outcome::kNotActivated);
  const auto c = make_record(2, swfit::FaultType::kMIA, "NtClose", 5,
                             trace::Outcome::kExternalFailure);

  std::vector<trace::ActivationRecord> fwd{a, b, c}, rev{c, b, a};
  trace::sort_records(fwd);
  EXPECT_EQ(fwd[0].fault_index, 1u);
  EXPECT_EQ(fwd[2].fault_index, 3u);

  const auto s1 = trace::aggregate(fwd);
  const auto s2 = trace::aggregate(rev);
  EXPECT_EQ(s1.total().injected, 3u);
  EXPECT_EQ(s1.total().activated, 2u);
  EXPECT_EQ(s1.total().latent, 1u);
  EXPECT_EQ(s1.total().external, 1u);
  EXPECT_EQ(s2.total().injected, s1.total().injected);
  EXPECT_DOUBLE_EQ(s1.total().activation_rate(), 2.0 / 3.0);

  trace::ActivationStats merged;
  merged.merge(s1);
  merged.merge(trace::aggregate({c}));
  EXPECT_EQ(merged.total().injected, 4u);
  EXPECT_EQ(merged.by_type().size(), 2u);
  EXPECT_EQ(merged.by_function().size(), 2u);

  const auto report = trace::render_activation_report(merged);
  EXPECT_NE(report.find("TOTAL"), std::string::npos);
  EXPECT_NE(report.find("RtlFreeHeap"), std::string::npos);
}

TEST(ActivationStatsTest, JsonlAndSummaryAreWellFormed) {
  const std::vector<trace::ActivationRecord> recs{
      make_record(0, swfit::FaultType::kMVI, "NtClose", 1,
                  trace::Outcome::kActivatedBenign),
      make_record(4, swfit::FaultType::kWVAV, "NtReadFile", 0,
                  trace::Outcome::kNotActivated)};

  std::ostringstream os;
  trace::write_jsonl(os, "VOS-2000/apex/iter0", recs);
  const auto text = os.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_NE(text.find("\"context\":\"VOS-2000/apex/iter0\""),
            std::string::npos);
  EXPECT_NE(text.find("\"outcome\":\"activated-benign\""), std::string::npos);
  EXPECT_NE(text.find("\"outcome\":\"not-activated\""), std::string::npos);

  const auto json = trace::activation_summary_json(trace::aggregate(recs));
  EXPECT_NE(json.find("\"injected\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"activation_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"by_type\""), std::string::npos);
}

// --- measured-activation pruning (the closed loop) ---------------------------

TEST(TunerTest, PruneDropsMeasuredNeverActivatedFaultsOnly) {
  os::Kernel kernel(os::OsVersion::kVos2000);
  const auto fl = scan_for(kernel, "RtlAllocateHeap");
  ASSERT_GE(fl.faults.size(), 3u);

  // Fault 0: measured, activated in one of two exposures -> kept.
  // Fault 1: measured twice, never activated                -> dropped.
  // Fault 2..: never measured (sampling skipped them)       -> kept.
  std::vector<trace::ActivationRecord> records{
      make_record(0, fl.faults[0].type, fl.faults[0].function, 0,
                  trace::Outcome::kNotActivated),
      make_record(0, fl.faults[0].type, fl.faults[0].function, 3,
                  trace::Outcome::kActivatedBenign),
      make_record(1, fl.faults[1].type, fl.faults[1].function, 0,
                  trace::Outcome::kNotActivated),
      make_record(1, fl.faults[1].type, fl.faults[1].function, 0,
                  trace::Outcome::kNotActivated)};

  const auto pruned = depbench::prune_by_measured_activation(fl, records);
  EXPECT_EQ(pruned.faults.size(), fl.faults.size() - 1);
  EXPECT_EQ(pruned.target, fl.target);
  EXPECT_EQ(pruned.digest, fl.digest);
  EXPECT_EQ(pruned.faults[0].addr, fl.faults[0].addr);
  EXPECT_EQ(pruned.faults[1].addr, fl.faults[2].addr);  // fault 1 is gone

  // A rate threshold keeps only faults at or above it.
  const auto strict = depbench::prune_by_measured_activation(fl, records, 0.6);
  EXPECT_EQ(strict.faults.size(), fl.faults.size() - 2);  // 0 (rate .5) too
}

TEST(TunerTest, CampaignRecordsPruneTheStaticFaultloadConsistently) {
  // End-to-end closed loop: trace a sampled campaign, feed the measured
  // records back, and check the pruned faultload drops exactly the measured
  // never-activated faults (paper §5's activation goal, now measured).
  const auto cells =
      depbench::CampaignRunner(traced_quick_options()).run_campaign();
  std::vector<trace::ActivationRecord> records;
  for (const auto& it : cells[0].iterations) {
    records.insert(records.end(), it.activations.begin(),
                   it.activations.end());
  }
  ASSERT_FALSE(records.empty());

  os::Kernel kernel(os::OsVersion::kVos2000);
  std::vector<std::string> fns;
  for (const auto& f : os::api_functions()) fns.emplace_back(f.name);
  const auto fl = swfit::Scanner{}.scan(kernel.pristine_image(), fns);

  std::set<std::uint32_t> dead;
  std::set<std::uint32_t> alive;
  for (const auto& r : records) {
    if (r.activated()) alive.insert(r.fault_index);
  }
  for (const auto& r : records) {
    if (!alive.count(r.fault_index)) dead.insert(r.fault_index);
  }

  const auto pruned = depbench::prune_by_measured_activation(fl, records);
  EXPECT_EQ(pruned.faults.size(), fl.faults.size() - dead.size());
  EXPECT_GT(dead.size(), 0u)
      << "every sampled fault activated; widen the sample";
}

}  // namespace
}  // namespace gf
