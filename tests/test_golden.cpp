// Golden-artifact regression corpus.
//
// One fixed, tiny campaign (VOS-2000/apex, one iteration, strided faultload,
// seed 42, jobs=1) is rendered to its canonical artifacts and byte-compared
// against the files committed under tests/golden/. The differential fuzzer
// proves artifacts agree ACROSS execution shapes; this test pins them ACROSS
// TIME — any rendering or semantic drift (a reordered JSON key, a changed
// counter, a float formatted differently) fails loudly instead of sliding
// through because both sides of a differential oracle moved together.
//
// Intentional changes re-bless the corpus with:
//
//   GF_UPDATE_GOLDEN=1 ctest -R test_golden
//
// and the resulting diff under tests/golden/ is reviewed like any other
// code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "depbench/campaign_report.h"
#include "depbench/report.h"
#include "depbench/runner.h"
#include "os/sources.h"
#include "trace/activation.h"

#ifndef GF_GOLDEN_DIR
#error "GF_GOLDEN_DIR must be defined to the tests/golden source directory"
#endif

namespace gf::depbench {
namespace {

namespace fs = std::filesystem;

/// The pinned campaign. Every knob is fixed — nothing here may depend on
/// the machine, the clock, or the schedule.
RunnerOptions golden_options() {
  RunnerOptions opt;
  opt.versions = {os::OsVersion::kVos2000};
  opt.servers = {"apex"};
  opt.iterations = 1;
  opt.stride = 101;
  opt.time_scale = 0.02;
  opt.baseline_window_ms = 250;
  opt.seed = 42;
  opt.jobs = 1;
  opt.trace = true;
  opt.obs = true;
  return opt;
}

std::vector<std::pair<std::string, std::string>> generate_artifacts() {
  const auto opt = golden_options();
  CampaignRunner runner(opt);
  const auto cells = runner.run_campaign();

  std::vector<std::pair<std::string, std::string>> out;
  out.emplace_back("manifest.json",
                   campaign_manifest_json(cells, opt, runner.campaign_obs()));

  std::ostringstream journal;
  write_campaign_journal(journal, *runner.campaign_obs());
  out.emplace_back("journal.jsonl", journal.str());

  std::ostringstream activations;
  trace::ActivationStats stats;
  for (const auto& cell : cells) {
    const auto recs = collect_activations(cell);
    trace::write_jsonl(activations, cell.os_name + "/" + cell.server_name,
                       recs);
    for (const auto& r : recs) stats.add(r);
  }
  out.emplace_back("activations.jsonl", activations.str());
  out.emplace_back("activation_summary.json",
                   trace::activation_summary_json(stats));
  return out;
}

TEST(GoldenArtifactTest, CampaignArtifactsMatchCommittedCorpus) {
  const fs::path dir(GF_GOLDEN_DIR);
  const auto artifacts = generate_artifacts();

  if (std::getenv("GF_UPDATE_GOLDEN") != nullptr) {
    fs::create_directories(dir);
    for (const auto& [name, content] : artifacts) {
      std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
      ASSERT_TRUE(out) << "cannot write " << (dir / name);
      out << content;
    }
    GTEST_SKIP() << "golden corpus regenerated under " << dir;
  }

  for (const auto& [name, content] : artifacts) {
    std::ifstream in(dir / name, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden file " << (dir / name)
                    << " — regenerate with GF_UPDATE_GOLDEN=1";
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string want = buf.str();
    if (want == content) continue;
    std::size_t i = 0;
    while (i < want.size() && i < content.size() && want[i] == content[i]) ++i;
    ADD_FAILURE() << name << " drifted from the committed corpus at byte " << i
                  << " (committed " << want.size() << " bytes, generated "
                  << content.size()
                  << ") — if intentional, re-bless with GF_UPDATE_GOLDEN=1"
                  << "\n  committed: ..."
                  << want.substr(i > 30 ? i - 30 : 0, 60) << "\n  generated: ..."
                  << content.substr(i > 30 ? i - 30 : 0, 60);
  }
}

// The corpus must be a pure function of the pinned options — two in-process
// generations are byte-identical (guards against any residual global state
// sneaking into the renderers).
TEST(GoldenArtifactTest, GenerationIsIdempotent) {
  const auto a = generate_artifacts();
  const auto b = generate_artifacts();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first);
    EXPECT_EQ(a[i].second, b[i].second) << a[i].first;
  }
}

}  // namespace
}  // namespace gf::depbench
