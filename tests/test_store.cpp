// Campaign store tests: key derivation must be injective over the field
// sequence, the run-record codec must be canonical, the WAL+segment commit
// must survive torn tails and detect corruption, and — the load-bearing
// contract — the merged campaign artifacts must be byte-identical for ANY
// cache-hit pattern, including a resume after a mid-campaign SIGKILL.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <csignal>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "depbench/campaign_report.h"
#include "depbench/runner.h"
#include "os/kernel.h"
#include "store/campaign_codec.h"
#include "store/key.h"
#include "store/store.h"
#include "store/wire.h"
#include "swfit/scanner.h"

namespace gf::store {
namespace {

// ------------------------------------------------------------------- keys

TEST(KeyBuilderTest, DeterministicAndHexSpelling) {
  const auto k1 = KeyBuilder().u64(7).str("apex").f64(0.05).finish();
  const auto k2 = KeyBuilder().u64(7).str("apex").f64(0.05).finish();
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(k1.hex().size(), 32u);
  EXPECT_EQ(k1.hex().find_first_not_of("0123456789abcdef"), std::string::npos);
}

TEST(KeyBuilderTest, EveryFieldChangesTheKey) {
  const auto base = KeyBuilder().u64(7).str("apex").f64(0.05).finish();
  EXPECT_NE(base, KeyBuilder().u64(8).str("apex").f64(0.05).finish());
  EXPECT_NE(base, KeyBuilder().u64(7).str("abyssal").f64(0.05).finish());
  EXPECT_NE(base, KeyBuilder().u64(7).str("apex").f64(0.06).finish());
}

TEST(KeyBuilderTest, NoConcatenationAmbiguity) {
  // "ab" + "c" and "a" + "bc" concatenate to the same bytes; the length
  // prefix must still separate them.
  const auto a = KeyBuilder().str("ab").str("c").finish();
  const auto b = KeyBuilder().str("a").str("bc").finish();
  EXPECT_NE(a, b);
  // A u64 and the string of its little-endian bytes must not collide either
  // (distinct type tags).
  const auto u = KeyBuilder().u64(0).finish();
  const auto s = KeyBuilder().str(std::string(8, '\0')).finish();
  EXPECT_NE(u, s);
}

TEST(KeyBuilderTest, SignedZeroAndBitPatternsDistinct) {
  EXPECT_NE(KeyBuilder().f64(0.0).finish(), KeyBuilder().f64(-0.0).finish());
}

// ------------------------------------------------------------------ codec

RunRecord sample_record() {
  RunRecord rec;
  rec.cell = "VOS-2000/apex";
  rec.label = "iter0.f12";
  rec.result.counters.mis = 2;
  rec.result.counters.kns = 1;
  rec.result.counters.faults_injected = 3;
  trace::ActivationRecord ar;
  ar.fault_index = 12;
  ar.function = "vos_alloc";
  ar.hits = 5;
  ar.first_hit_cycle = 4242;
  ar.outcome = trace::Outcome::kExternalFailure;
  rec.result.activations.push_back(ar);
  return rec;
}

TEST(RunCodecTest, RoundTripIsCanonical) {
  const auto rec = sample_record();
  const auto bytes = encode_run_record(rec);
  const auto back = decode_run_record(bytes);
  EXPECT_EQ(back.cell, rec.cell);
  EXPECT_EQ(back.label, rec.label);
  EXPECT_EQ(back.has_obs, rec.has_obs);
  EXPECT_EQ(back.result.counters.mis, rec.result.counters.mis);
  ASSERT_EQ(back.result.activations.size(), 1u);
  EXPECT_EQ(back.result.activations[0].function, "vos_alloc");
  EXPECT_EQ(back.result.activations[0].hits, 5u);
  // Canonical: re-encoding the decode reproduces the original bytes.
  EXPECT_EQ(encode_run_record(back), bytes);
}

TEST(RunCodecTest, PeekReadsCellAndLabelOnly) {
  const auto bytes = encode_run_record(sample_record());
  std::string cell, label;
  ASSERT_TRUE(peek_run_meta(bytes, cell, label));
  EXPECT_EQ(cell, "VOS-2000/apex");
  EXPECT_EQ(label, "iter0.f12");
  EXPECT_FALSE(peek_run_meta({}, cell, label));
}

TEST(RunCodecTest, TruncationThrowsWireError) {
  auto bytes = encode_run_record(sample_record());
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(decode_run_record(bytes), WireError);
  EXPECT_THROW(decode_run_record({}), WireError);
}

// ------------------------------------------------------------------ store

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "gfstore_" + name;
  std::remove((dir + "/segment.gfs").c_str());
  std::remove((dir + "/wal.gfj").c_str());
  return dir;
}

std::vector<std::uint8_t> payload_of(const std::string& s) {
  return {s.begin(), s.end()};
}

ResultKey key_of(std::uint64_t n) { return KeyBuilder().u64(n).finish(); }

void append_bytes(const std::string& path, const std::string& junk) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(junk.data(), 1, junk.size(), f), junk.size());
  std::fclose(f);
}

void flip_byte(const std::string& path, long offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  std::fputc(c ^ 0xff, f);
  std::fclose(f);
}

long file_size(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 ? static_cast<long>(st.st_size) : -1;
}

TEST(CampaignStoreTest, PutGetPersistsAcrossReopen) {
  const auto dir = fresh_dir("reopen");
  {
    CampaignStore st(dir);
    st.put(key_of(1), payload_of("one"));
    st.put(key_of(2), payload_of("two-two"));
    st.put(key_of(3), payload_of("three"));
    EXPECT_EQ(st.stats().puts, 3u);
    EXPECT_EQ(st.stats().records, 3u);
  }
  CampaignStore st(dir);
  EXPECT_EQ(st.stats().recovered_records, 3u);
  EXPECT_EQ(st.stats().torn_bytes_dropped, 0u);
  std::vector<std::uint8_t> p;
  ASSERT_TRUE(st.get(key_of(2), p));
  EXPECT_EQ(p, payload_of("two-two"));
  ASSERT_TRUE(st.get(key_of(3), p));
  EXPECT_EQ(p, payload_of("three"));
  EXPECT_FALSE(st.get(key_of(4), p));
  EXPECT_EQ(st.stats().hits, 2u);
  EXPECT_EQ(st.stats().misses, 1u);
  EXPECT_EQ(st.verify(), 0u);
}

TEST(CampaignStoreTest, LastPutWinsAndGcCompactsDeadVersions) {
  const auto dir = fresh_dir("dupes");
  CampaignStore st(dir);
  st.put(key_of(1), payload_of("version-1"));
  st.put(key_of(1), payload_of("version-2!"));
  EXPECT_EQ(st.list().size(), 1u);
  std::vector<std::uint8_t> p;
  ASSERT_TRUE(st.get(key_of(1), p));
  EXPECT_EQ(p, payload_of("version-2!"));

  // Both versions' bytes sit in the segment; gc drops the dead one.
  EXPECT_EQ(file_size(dir + "/segment.gfs"), 19);
  EXPECT_EQ(st.gc(0), 0u);  // no live record dropped
  EXPECT_EQ(file_size(dir + "/segment.gfs"), 10);
  ASSERT_TRUE(st.get(key_of(1), p));
  EXPECT_EQ(p, payload_of("version-2!"));
  EXPECT_EQ(st.verify(), 0u);
}

TEST(CampaignStoreTest, GcEvictsOldestUnderBudget) {
  const auto dir = fresh_dir("evict");
  CampaignStore st(dir);
  for (std::uint64_t i = 1; i <= 4; ++i) {
    st.put(key_of(i), payload_of("0123456789"));  // 10 bytes each
  }
  EXPECT_EQ(st.gc(20), 2u);  // 40 live bytes, budget 20: drop the 2 oldest
  EXPECT_EQ(st.list().size(), 2u);
  std::vector<std::uint8_t> p;
  EXPECT_FALSE(st.get(key_of(1), p));
  EXPECT_FALSE(st.get(key_of(2), p));
  EXPECT_TRUE(st.get(key_of(3), p));
  EXPECT_TRUE(st.get(key_of(4), p));
  EXPECT_EQ(st.stats().bytes, 20u);
}

TEST(CampaignStoreTest, TornWalTailIsTruncatedOnOpen) {
  const auto dir = fresh_dir("tornwal");
  {
    CampaignStore st(dir);
    st.put(key_of(1), payload_of("aaa"));
    st.put(key_of(2), payload_of("bbb"));
    st.put(key_of(3), payload_of("ccc"));
  }
  // A garbage "entry" (bad magic) plus a partial tail — the crash left the
  // WAL mid-append.
  append_bytes(dir + "/wal.gfj", std::string(48, '\xff') + "partial");
  {
    CampaignStore st(dir);
    EXPECT_EQ(st.stats().recovered_records, 3u);
    EXPECT_EQ(st.stats().torn_bytes_dropped, 55u);
    std::vector<std::uint8_t> p;
    ASSERT_TRUE(st.get(key_of(3), p));
    EXPECT_EQ(p, payload_of("ccc"));
  }
  // The truncation is durable: a second open sees a clean store.
  CampaignStore st(dir);
  EXPECT_EQ(st.stats().recovered_records, 3u);
  EXPECT_EQ(st.stats().torn_bytes_dropped, 0u);
}

TEST(CampaignStoreTest, TornSegmentTailIsTruncatedOnOpen) {
  const auto dir = fresh_dir("tornseg");
  {
    CampaignStore st(dir);
    st.put(key_of(1), payload_of("aaa"));
    st.put(key_of(2), payload_of("bbb"));
  }
  // Crash between the segment append and the WAL append: unreferenced
  // payload bytes at the segment tail, no WAL entry for them.
  append_bytes(dir + "/segment.gfs", "orphaned-payload");
  CampaignStore st(dir);
  EXPECT_EQ(st.stats().recovered_records, 2u);
  EXPECT_EQ(st.stats().torn_bytes_dropped, 16u);
  EXPECT_EQ(file_size(dir + "/segment.gfs"), 6);
  std::vector<std::uint8_t> p;
  ASSERT_TRUE(st.get(key_of(2), p));
  EXPECT_EQ(p, payload_of("bbb"));
  EXPECT_EQ(st.verify(), 0u);
}

TEST(CampaignStoreTest, TearHookRecoversInPlaceAndStoreStaysUsable) {
  const auto dir = fresh_dir("tearhook");
  CampaignStore st(dir);
  st.put(key_of(1), payload_of("first"));
  st.put(key_of(2), payload_of("second"));
  const long wal_before = file_size(dir + "/wal.gfj");
  st.put(key_of(3), payload_of("third"));
  const long wal_after = file_size(dir + "/wal.gfj");
  ASSERT_GT(wal_after, wal_before);

  // Tear the third commit's WAL entry clean off plus a few segment payload
  // bytes — the fuzzer's in-process crash model. Recovery re-runs in place:
  // the surviving prefix must stay intact and the store must remain
  // writable without a reopen.
  st.tear_tail_for_test(/*seg_drop=*/3,
                        /*wal_drop=*/static_cast<std::uint64_t>(wal_after -
                                                                wal_before));
  EXPECT_EQ(st.verify(), 0u);
  std::vector<std::uint8_t> p;
  EXPECT_FALSE(st.get(key_of(3), p));
  ASSERT_TRUE(st.get(key_of(2), p));
  EXPECT_EQ(p, payload_of("second"));

  st.put(key_of(4), payload_of("fourth"));
  ASSERT_TRUE(st.get(key_of(4), p));
  EXPECT_EQ(p, payload_of("fourth"));
}

TEST(CampaignStoreTest, CorruptPayloadInvalidatesFromThereOn) {
  const auto dir = fresh_dir("corrupt");
  long off2 = 0;
  {
    CampaignStore st(dir);
    st.put(key_of(1), payload_of("aaaa"));
    st.put(key_of(2), payload_of("bbbb"));
    st.put(key_of(3), payload_of("cccc"));
    off2 = static_cast<long>(st.list()[1].offset);
  }
  // External corruption inside record 2's payload: recovery is strictly a
  // tail truncation, so record 2 AND the later record 3 are dropped.
  flip_byte(dir + "/segment.gfs", off2 + 1);
  CampaignStore st(dir);
  EXPECT_EQ(st.stats().recovered_records, 1u);
  std::vector<std::uint8_t> p;
  ASSERT_TRUE(st.get(key_of(1), p));
  EXPECT_EQ(p, payload_of("aaaa"));
  EXPECT_FALSE(st.get(key_of(2), p));
  EXPECT_FALSE(st.get(key_of(3), p));
}

TEST(CampaignStoreTest, VerifyDetectsLiveCorruption) {
  const auto dir = fresh_dir("verify");
  CampaignStore st(dir);
  st.put(key_of(1), payload_of("aaaa"));
  st.put(key_of(2), payload_of("bbbb"));
  EXPECT_EQ(st.verify(), 0u);
  flip_byte(dir + "/segment.gfs", static_cast<long>(st.list()[1].offset));
  EXPECT_EQ(st.verify(), 1u);
  // The corrupt record reads as a miss, never as wrong bytes.
  std::vector<std::uint8_t> p;
  EXPECT_FALSE(st.get(key_of(2), p));
  EXPECT_TRUE(st.get(key_of(1), p));
}

TEST(CampaignStoreTest, CommitHookSeesEveryCommit) {
  const auto dir = fresh_dir("hook");
  CampaignStore st(dir);
  std::vector<std::uint64_t> counts;
  st.set_commit_hook([&counts](std::uint64_t c) { counts.push_back(c); });
  st.put(key_of(1), payload_of("a"));
  st.put(key_of(2), payload_of("b"));
  EXPECT_EQ(counts, (std::vector<std::uint64_t>{1, 2}));
}

}  // namespace
}  // namespace gf::store

// ------------------------------------------- campaign cache-hit identity

namespace gf::depbench {
namespace {

RunnerOptions store_options() {
  RunnerOptions opt;
  opt.versions = {os::OsVersion::kVos2000};
  opt.servers = {"apex"};
  opt.iterations = 1;
  opt.stride = 41;
  opt.time_scale = 0.05;
  opt.baseline_window_ms = 2000;
  opt.seed = 11;
  opt.obs = true;
  opt.trace = true;
  return opt;
}

struct Artifacts {
  std::string manifest;
  std::string journal;
  bool operator==(const Artifacts&) const = default;
};

Artifacts run_artifacts(const RunnerOptions& opt,
                        store::StoreStats* stats_out = nullptr) {
  CampaignRunner runner(opt);
  const auto cells = runner.run_campaign();
  Artifacts a;
  a.manifest =
      campaign_manifest_json(cells, runner.options(), runner.campaign_obs());
  std::ostringstream j;
  write_campaign_journal(j, *runner.campaign_obs());
  a.journal = j.str();
  if (stats_out != nullptr) {
    EXPECT_NE(runner.store_stats(), nullptr) << "store was wired";
    if (runner.store_stats() != nullptr) *stats_out = *runner.store_stats();
  }
  return a;
}

std::string store_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "gfstore_" + name;
  std::remove((dir + "/segment.gfs").c_str());
  std::remove((dir + "/wal.gfj").c_str());
  return dir;
}

TEST(StoreCampaignTest, ColdResumeAndNoCacheAreByteIdentical) {
  const auto base = store_options();
  const auto ref = run_artifacts(base);  // no store at all
  ASSERT_FALSE(ref.manifest.empty());
  ASSERT_FALSE(ref.journal.empty());

  const auto dir = store_dir("identity");
  store::StoreStats st;
  {  // cold: empty store, everything executes and commits
    store::CampaignStore cs(dir);
    auto opt = base;
    opt.store = &cs;
    const auto got = run_artifacts(opt, &st);
    EXPECT_EQ(got, ref);
    EXPECT_EQ(st.hits, 0u);
    EXPECT_GT(st.misses, 0u);
    EXPECT_EQ(st.puts, st.misses);
  }
  const auto total = st.misses;
  {  // resume: every run is a cache hit, across a different jobs value
    store::CampaignStore cs(dir);
    auto opt = base;
    opt.store = &cs;
    opt.jobs = 3;
    const auto got = run_artifacts(opt, &st);
    EXPECT_EQ(got, ref);
    EXPECT_EQ(st.misses, 0u);
    EXPECT_EQ(st.hits, total);
    EXPECT_EQ(st.puts, 0u);
  }
  {  // --no-cache: ignores the populated store, re-executes, re-commits
    store::CampaignStore cs(dir);
    auto opt = base;
    opt.store = &cs;
    opt.store_read = false;
    const auto got = run_artifacts(opt, &st);
    EXPECT_EQ(got, ref);
    EXPECT_EQ(st.hits, 0u);
    EXPECT_EQ(st.puts, total);
  }
}

TEST(StoreCampaignTest, SeedChangeInvalidatesEveryKey) {
  const auto dir = store_dir("seed");
  store::StoreStats st;
  {
    store::CampaignStore cs(dir);
    auto opt = store_options();
    opt.store = &cs;
    run_artifacts(opt, &st);
    EXPECT_EQ(st.hits, 0u);
  }
  store::CampaignStore cs(dir);
  auto opt = store_options();
  opt.store = &cs;
  opt.seed = 12;  // every key folds the campaign seed
  run_artifacts(opt, &st);
  EXPECT_EQ(st.hits, 0u);
  EXPECT_GT(st.misses, 0u);
}

TEST(StoreCampaignTest, IncrementalRerunExecutesOnlyEditedFaultType) {
  os::Kernel kernel(os::OsVersion::kVos2000);
  std::vector<std::string> names;
  for (const auto& fn : os::api_functions()) names.emplace_back(fn.name);
  const auto fl = swfit::Scanner{}.scan(kernel.pristine_image(), names);
  ASSERT_FALSE(fl.faults.empty());

  auto base = store_options();
  base.faultload = &fl;
  const std::size_t stride = static_cast<std::size_t>(base.stride);
  const std::size_t positions = (fl.faults.size() + stride - 1) / stride;

  // The sampled schedule's fault-type census; edit the rarest present type.
  std::array<std::size_t, swfit::kNumFaultTypes> sampled{};
  for (std::size_t p = 0; p < positions; ++p) {
    ++sampled[static_cast<std::size_t>(fl.faults[p * stride].type)];
  }
  std::size_t edited = 0;
  for (std::size_t t = 0; t < sampled.size(); ++t) {
    if (sampled[t] == 0) continue;
    if (sampled[edited] == 0 || sampled[t] < sampled[edited]) edited = t;
  }
  ASSERT_GT(sampled[edited], 0u);

  const auto dir = store_dir("incremental");
  store::StoreStats st;
  {
    store::CampaignStore cs(dir);
    auto opt = base;
    opt.store = &cs;
    run_artifacts(opt, &st);
    EXPECT_EQ(st.misses, positions + 1);  // faults + profile baseline
  }
  // "The fault was fixed": the edited type's mutations revert to the
  // original windows. Originals are untouched, so the profile baseline and
  // every other fault's key stay cached.
  auto fl2 = fl;
  for (auto& f : fl2.faults) {
    if (static_cast<std::size_t>(f.type) == edited) f.mutated = f.original;
  }
  store::CampaignStore cs(dir);
  auto opt = base;
  opt.faultload = &fl2;
  opt.store = &cs;
  run_artifacts(opt, &st);
  EXPECT_EQ(st.misses, sampled[edited]);
  EXPECT_EQ(st.hits, positions + 1 - sampled[edited]);
}

TEST(StoreCampaignTest, KilledCampaignResumesByteIdentical) {
  const auto base = store_options();
  const auto ref = run_artifacts(base);
  const auto dir = store_dir("kill");

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: run the campaign against the store and SIGKILL ourselves from
    // inside the 4th commit — mid-campaign, with the store lock held and
    // other workers mid-run. Nothing here may use gtest.
    store::CampaignStore cs(dir);
    cs.set_commit_hook([](std::uint64_t count) {
      if (count >= 4) std::raise(SIGKILL);
    });
    auto opt = base;
    opt.store = &cs;
    opt.jobs = 2;
    CampaignRunner runner(opt);
    runner.run_campaign();
    _exit(0);  // unreachable when the kill fires
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child must die by signal";
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  // Resume: recovery keeps the committed runs, the rest re-execute, and the
  // merged artifacts are indistinguishable from the uninterrupted campaign.
  store::CampaignStore cs(dir);
  store::StoreStats st;
  auto opt = base;
  opt.store = &cs;
  const auto got = run_artifacts(opt, &st);
  EXPECT_EQ(got, ref);
  EXPECT_GT(st.hits, 0u) << "the killed run's commits must survive";
  EXPECT_GT(st.misses, 0u) << "the kill must have left work unfinished";
}

}  // namespace
}  // namespace gf::depbench
