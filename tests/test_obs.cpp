// Tests for the observability subsystem (src/obs + the campaign wiring):
// primitive semantics (histogram buckets, registry merges, journal ring,
// JSON parser), the campaign determinism contract (merged registry and
// journal byte-identical for any --jobs; fault-indexed counters invariant
// across --shards), and trace-export integrity (balanced B/E spans,
// monotone timestamps, JSONL round-trip).
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "depbench/campaign_report.h"
#include "depbench/runner.h"
#include "obs/chrome_trace.h"
#include "obs/journal.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace gf {
namespace {

using obs::json::Value;

// ---------------------------------------------------------------- primitives

TEST(HistogramTest, BucketBoundaries) {
  // Bucket i counts values with bit_width i: 0 -> 0, 1 -> 1, [2,3] -> 2, ...
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3u);
  // Values past the covered range land in the last bucket.
  EXPECT_EQ(obs::Histogram::bucket_of(~std::uint64_t{0}),
            obs::Histogram::kBuckets - 1);
}

TEST(HistogramTest, ObserveAndMergeAreExactSums) {
  obs::Histogram a;
  a.observe(1);
  a.observe(100);
  obs::Histogram b;
  b.observe(7);

  EXPECT_EQ(a.count, 2u);
  EXPECT_EQ(a.sum, 101u);
  EXPECT_EQ(a.min, 1u);
  EXPECT_EQ(a.max, 100u);

  a.merge(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.sum, 108u);
  EXPECT_EQ(a.min, 1u);
  EXPECT_EQ(a.max, 100u);
  EXPECT_DOUBLE_EQ(a.mean(), 36.0);
}

TEST(RegistryTest, CountersSumGaugesMax) {
  obs::Registry a;
  a.add("c", 2);
  a.gauge("g", 5);
  obs::Registry b;
  b.add("c", 3);
  b.add("only_b");
  b.gauge("g", 4);

  a.merge(b);
  EXPECT_EQ(a.counter("c"), 5u);
  EXPECT_EQ(a.counter("only_b"), 1u);
  EXPECT_EQ(a.gauges().at("g"), 5u);  // max, not sum
  EXPECT_EQ(a.counter("missing"), 0u);
}

TEST(RegistryTest, JsonIsCanonicalAcrossInsertionOrder) {
  obs::Registry a;
  a.add("zeta", 1);
  a.add("alpha", 2);
  a.observe("h", 10);
  obs::Registry b;
  b.observe("h", 10);
  b.add("alpha", 2);
  b.add("zeta", 1);
  EXPECT_EQ(a.to_json(), b.to_json());

  std::string err;
  const auto v = obs::json::parse(a.to_json(), &err);
  ASSERT_TRUE(v) << err;
  ASSERT_TRUE(v->find("counters") != nullptr);
  EXPECT_DOUBLE_EQ(v->find("counters")->find("alpha")->number, 2.0);
  EXPECT_DOUBLE_EQ(v->find("histograms")->find("h")->find("count")->number,
                   1.0);
}

TEST(ApiMetricsTest, ExportSkipsZeroFailureCounters) {
  obs::ApiMetrics m;
  m.record("NtClose", 30, /*ok=*/true, /*crashed=*/false, /*hung=*/false);
  m.record("NtClose", 50, /*ok=*/false, /*crashed=*/false, /*hung=*/false);
  obs::Registry r;
  m.export_into(r);
  EXPECT_EQ(r.counter("api.NtClose.calls"), 2u);
  EXPECT_EQ(r.counter("api.NtClose.errors"), 1u);
  // No crashes/hangs happened, so those keys must not exist at all.
  EXPECT_EQ(r.counters().count("api.NtClose.crashes"), 0u);
  EXPECT_EQ(r.counters().count("api.NtClose.hangs"), 0u);
  EXPECT_EQ(r.histograms().at("api.NtClose.cycles").sum, 80u);
}

TEST(JournalTest, RingDropsOldestAndCountsThem) {
  obs::Journal j(4);
  for (int i = 0; i < 6; ++i) {
    j.instant("e" + std::to_string(i), i, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(j.size(), 4u);
  EXPECT_EQ(j.dropped(), 2u);
  const auto events = j.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().name, "e2");  // oldest survivor first
  EXPECT_EQ(events.back().name, "e5");

  // A wrapped ring announces the loss: a {"truncated": N} head record, then
  // the survivors with seq numbering starting at dropped() so the gap is
  // visible either way.
  std::ostringstream os;
  obs::write_jsonl(os, "t", j);
  std::istringstream lines(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("\"truncated\": 2"), std::string::npos) << line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("\"seq\": 2"), std::string::npos) << line;
  EXPECT_NE(line.find("e2"), std::string::npos) << line;

  // An unwrapped journal emits no truncation record.
  obs::Journal small(8);
  small.instant("only", 1, 1);
  std::ostringstream os2;
  obs::write_jsonl(os2, "t", small);
  EXPECT_EQ(os2.str().find("truncated"), std::string::npos);
  EXPECT_NE(os2.str().find("\"seq\": 0"), std::string::npos);
}

TEST(JournalTest, ChromeTraceMarksTruncationOnWrappedTracks) {
  obs::Journal j(2);
  for (int i = 0; i < 5; ++i) {
    j.instant("e" + std::to_string(i), i, static_cast<std::uint64_t>(i));
  }
  obs::TaskTrack track;
  track.cell = "c";
  track.label = "l";
  track.tid = 1;
  track.journal = &j;
  const auto trace = obs::chrome_trace_json({track});
  EXPECT_NE(trace.find("journal truncated"), std::string::npos);
  EXPECT_NE(trace.find("{\"truncated\": 3}"), std::string::npos);

  // The truncation instant sits at the first survivor's timestamp, so the
  // track stays monotone and the whole document still validates.
  std::string err;
  EXPECT_TRUE(obs::json::parse(trace, &err)) << err;

  obs::Journal intact(8);
  intact.instant("ok", 1, 1);
  track.journal = &intact;
  EXPECT_EQ(obs::chrome_trace_json({track}).find("truncated"),
            std::string::npos);
}

TEST(JsonTest, ParseRejectsMalformed) {
  std::string err;
  EXPECT_FALSE(obs::json::parse("{\"a\": }", &err));
  EXPECT_FALSE(obs::json::parse("[1, 2", &err));
  EXPECT_FALSE(obs::json::parse("{} trailing", &err));
  const auto v = obs::json::parse("{\"a\": [1, true, null, \"s\"]}", &err);
  ASSERT_TRUE(v) << err;
  ASSERT_TRUE(v->find("a") != nullptr);
  EXPECT_EQ(v->find("a")->array.size(), 4u);
}

// ------------------------------------------------------- campaign contracts

depbench::RunnerOptions obs_options() {
  depbench::RunnerOptions opt;
  opt.versions = {os::OsVersion::kVos2000};
  opt.servers = {"apex"};
  opt.iterations = 2;
  opt.stride = 31;
  opt.time_scale = 0.05;
  opt.baseline_window_ms = 2000;
  opt.seed = 7;
  opt.obs = true;
  opt.trace = true;
  return opt;
}

std::string journal_text(const depbench::CampaignObs& obs) {
  std::ostringstream os;
  depbench::write_campaign_journal(os, obs);
  return os.str();
}

TEST(CampaignObsTest, MetricsIdenticalAcrossJobs) {
  auto opt = obs_options();
  opt.shards = 4;
  opt.jobs = 1;
  depbench::CampaignRunner sequential(opt);
  sequential.run_campaign();
  opt.jobs = 8;
  depbench::CampaignRunner parallel(opt);
  parallel.run_campaign();

  const auto* a = sequential.campaign_obs();
  const auto* b = parallel.campaign_obs();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_FALSE(a->metrics.empty());
  // The whole contract in one comparison: canonical rendering of the merged
  // registry and the slot-ordered journal are byte-identical.
  EXPECT_EQ(a->metrics.to_json(), b->metrics.to_json());
  EXPECT_EQ(journal_text(*a), journal_text(*b));
}

TEST(CampaignObsTest, ShardInvariantCounters) {
  auto opt = obs_options();
  opt.shards = 1;
  depbench::CampaignRunner one(opt);
  one.run_campaign();
  opt.shards = 4;
  depbench::CampaignRunner four(opt);
  four.run_campaign();

  const auto& a = one.campaign_obs()->metrics;
  const auto& b = four.campaign_obs()->metrics;
  // Sharding repartitions the same fault indices, so everything keyed by
  // fault index must not move; workload-coupled counters (client.ops, vm.*)
  // legitimately differ because per-task seeds change.
  for (const char* key :
       {"campaign.faults_injected", "inject.patches", "inject.restores",
        "inject.verifies", "trace.records"}) {
    EXPECT_EQ(a.counter(key), b.counter(key)) << key;
  }
  EXPECT_GT(a.counter("campaign.faults_injected"), 0u);
  EXPECT_EQ(a.counter("inject.verify_failures"), 0u);
}

TEST(CampaignObsTest, TraceExportIntegrity) {
  auto opt = obs_options();
  depbench::CampaignRunner runner(opt);
  runner.run_campaign();
  const auto* obs = runner.campaign_obs();
  ASSERT_NE(obs, nullptr);

  // Every journal line must round-trip through the strict parser.
  std::istringstream lines(journal_text(*obs));
  std::string line;
  std::size_t n_lines = 0;
  while (std::getline(lines, line)) {
    ++n_lines;
    std::string err;
    const auto v = obs::json::parse(line, &err);
    ASSERT_TRUE(v) << "line " << n_lines << ": " << err;
    EXPECT_TRUE(v->find("track") != nullptr);
    EXPECT_TRUE(v->find("ph") != nullptr);
  }
  EXPECT_GT(n_lines, 0u);

  // The Chrome trace must be well-formed: every event carries ph/name/pid/
  // tid, timestamps are monotone per (pid, tid) track, and B/E spans nest.
  std::string err;
  const auto trace = obs::json::parse(depbench::campaign_chrome_trace(*obs),
                                      &err);
  ASSERT_TRUE(trace) << err;
  const auto* events = trace->find("traceEvents");
  ASSERT_TRUE(events != nullptr && events->type == Value::Type::kArray);
  EXPECT_GT(events->array.size(), 0u);

  std::map<std::string, std::pair<long, double>> track;  // depth, last ts
  for (const auto& e : events->array) {
    ASSERT_EQ(e.type, Value::Type::kObject);
    const auto* ph = e.find("ph");
    ASSERT_TRUE(ph != nullptr && ph->type == Value::Type::kString);
    ASSERT_TRUE(e.find("name") != nullptr);
    ASSERT_TRUE(e.find("pid") != nullptr);
    ASSERT_TRUE(e.find("tid") != nullptr);
    if (ph->string == "M") continue;
    const auto* ts = e.find("ts");
    ASSERT_TRUE(ts != nullptr && ts->type == Value::Type::kNumber);
    const auto key = obs::json::number(e.find("pid")->number) + "/" +
                     obs::json::number(e.find("tid")->number);
    auto& [depth, last] = track[key];
    EXPECT_GE(ts->number, last) << "track " << key;
    last = ts->number;
    if (ph->string == "B") ++depth;
    if (ph->string == "E") {
      ASSERT_GT(depth, 0) << "unmatched E on track " << key;
      --depth;
    }
  }
  for (const auto& [key, st] : track) {
    EXPECT_EQ(st.first, 0) << "unclosed span on track " << key;
  }
}

}  // namespace
}  // namespace gf
