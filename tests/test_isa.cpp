#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "isa/disassembler.h"
#include "isa/image.h"
#include "isa/isa.h"

namespace gf::isa {
namespace {

TEST(Encoding, RoundTripAllOpcodes) {
  for (int op = 0; op < static_cast<int>(Op::kOpCount_); ++op) {
    Instr in;
    in.op = static_cast<Op>(op);
    in.rd = 3;
    in.rs1 = 15;
    in.rs2 = 7;
    in.imm = -123456;
    std::uint8_t buf[kInstrSize];
    encode(in, buf);
    const auto back = decode(buf);
    ASSERT_TRUE(back.has_value()) << op_name(in.op);
    EXPECT_EQ(*back, in);
  }
}

TEST(Encoding, RejectsBadOpcode) {
  std::uint8_t buf[kInstrSize] = {0xFF, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(decode(buf).has_value());
}

TEST(Encoding, RejectsBadRegister) {
  Instr in;
  in.op = Op::kMov;
  std::uint8_t buf[kInstrSize];
  encode(in, buf);
  buf[1] = 16;  // register out of range
  EXPECT_FALSE(decode(buf).has_value());
}

TEST(Encoding, ImmediateSignPreserved) {
  Instr in;
  in.op = Op::kMovI;
  in.imm = -1;
  std::uint8_t buf[kInstrSize];
  encode(in, buf);
  EXPECT_EQ(decode(buf)->imm, -1);
}

TEST(Predicates, BranchClassification) {
  EXPECT_TRUE(is_branch(Op::kJz));
  EXPECT_TRUE(is_branch(Op::kJge));
  EXPECT_FALSE(is_branch(Op::kJmp));
  EXPECT_FALSE(is_branch(Op::kCall));
  EXPECT_TRUE(is_jump(Op::kJmp));
  EXPECT_TRUE(is_jump(Op::kRet));
  EXPECT_FALSE(is_jump(Op::kAdd));
}

TEST(Predicates, InvertBranchIsInvolution) {
  for (Op op : {Op::kJz, Op::kJnz, Op::kJlt, Op::kJle, Op::kJgt, Op::kJge}) {
    EXPECT_NE(invert_branch(op), op);
    EXPECT_EQ(invert_branch(invert_branch(op)), op);
  }
}

TEST(Predicates, DestReg) {
  Instr ld{Op::kLd, 5, 15, 0, -8};
  EXPECT_EQ(dest_reg(ld), 5);
  Instr st{Op::kSt, 0, 15, 3, -8};
  EXPECT_FALSE(dest_reg(st).has_value());
  Instr add{Op::kAdd, 2, 3, 4, 0};
  EXPECT_EQ(dest_reg(add), 2);
}

TEST(Predicates, ReadsReg) {
  Instr st{Op::kSt, 0, 15, 3, -8};
  EXPECT_TRUE(reads_reg(st, 15));
  EXPECT_TRUE(reads_reg(st, 3));
  EXPECT_FALSE(reads_reg(st, 0));
  Instr movi{Op::kMovI, 0, 0, 0, 7};
  EXPECT_FALSE(reads_reg(movi, 0));
}

TEST(Image, AppendAndFetch) {
  Image img("m", 0x1000);
  const auto a0 = img.append({Op::kMovI, 0, 0, 0, 42});
  const auto a1 = img.append({Op::kRet, 0, 0, 0, 0});
  EXPECT_EQ(a0, 0x1000u);
  EXPECT_EQ(a1, 0x1008u);
  EXPECT_EQ(img.at(a0)->imm, 42);
  EXPECT_EQ(img.at(a1)->op, Op::kRet);
  EXPECT_FALSE(img.at(0x1004).has_value());  // misaligned
  EXPECT_FALSE(img.at(0x999).has_value());   // out of range
}

TEST(Image, PatchChangesDigest) {
  Image img("m", 0x1000);
  img.append({Op::kMovI, 0, 0, 0, 42});
  const auto d0 = img.code_digest();
  ASSERT_TRUE(img.patch(0x1000, {Op::kNop, 0, 0, 0, 0}));
  EXPECT_NE(img.code_digest(), d0);
  EXPECT_EQ(img.at(0x1000)->op, Op::kNop);
}

TEST(Image, SymbolLookup) {
  Image img("m", 0);
  img.append({Op::kNop, 0, 0, 0, 0});
  img.append({Op::kRet, 0, 0, 0, 0});
  img.add_symbol({"f", 0, 16});
  EXPECT_EQ(img.find_symbol("f")->size, 16u);
  EXPECT_EQ(img.find_symbol("g"), nullptr);
  EXPECT_EQ(img.symbol_at(8)->name, "f");
  EXPECT_EQ(img.symbol_at(16), nullptr);
}

TEST(Assembler, BasicProgram) {
  const auto img = assemble(R"(
    main:
      movi r1, 10
      movi r2, 32
      add  r0, r1, r2
      ret
  )");
  EXPECT_EQ(img.instr_count(), 4u);
  ASSERT_NE(img.find_symbol("main"), nullptr);
  const auto add = img.at(img.base() + 2 * kInstrSize);
  EXPECT_EQ(add->op, Op::kAdd);
  EXPECT_EQ(add->rs1, 1);
  EXPECT_EQ(add->rs2, 2);
}

TEST(Assembler, LabelsResolveForwardAndBackward) {
  const auto img = assemble(R"(
    start:
      jmp @end
    mid:
      nop
      jmp @start
    end:
      halt
  )");
  const auto jmp0 = img.at(img.base());
  EXPECT_EQ(static_cast<std::uint64_t>(jmp0->imm), img.find_symbol("end")->addr);
  const auto jmp1 = img.at(img.base() + 2 * kInstrSize);
  EXPECT_EQ(static_cast<std::uint64_t>(jmp1->imm), img.base());
}

TEST(Assembler, MemoryOperands) {
  const auto img = assemble(R"(
    f:
      ld r0, [fp, -8]
      st [fp, -16], r0
      ldb r1, [r2]
  )");
  const auto ld = img.at(img.base());
  EXPECT_EQ(ld->op, Op::kLd);
  EXPECT_EQ(ld->rs1, kRegFp);
  EXPECT_EQ(ld->imm, -8);
  const auto st = img.at(img.base() + kInstrSize);
  EXPECT_EQ(st->rs2, 0);
  EXPECT_EQ(st->imm, -16);
  const auto ldb = img.at(img.base() + 2 * kInstrSize);
  EXPECT_EQ(ldb->imm, 0);
}

TEST(Assembler, CommentsAndBlankLines) {
  const auto img = assemble("; file comment\n\n f: ; trailing\n   nop ; inline\n");
  EXPECT_EQ(img.instr_count(), 1u);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  EXPECT_THROW(assemble("f:\n  bogus r0\n"), AsmError);
  EXPECT_THROW(assemble("  movi r99, 1\n"), AsmError);
  EXPECT_THROW(assemble("  jmp @missing\n"), AsmError);
  EXPECT_THROW(assemble("f:\nf:\n  nop\n"), AsmError);
  EXPECT_THROW(assemble("  movi r0\n"), AsmError);
}

TEST(Disassembler, RoundTripThroughAssembler) {
  const char* src = R"(
    f:
      movi r1, -5
      addi sp, sp, -16
      ld r0, [fp, -8]
      st [fp, -8], r1
      cmp r0, r1
      jlt 4096
      call 4096
      push r3
      pop r4
      sys 7
      ret
  )";
  const auto img = assemble(src, "a", 0x1000);
  // Disassemble each instruction and re-assemble; encodings must match.
  for (std::uint64_t a = img.base(); a < img.end(); a += kInstrSize) {
    const auto in = img.at(a);
    ASSERT_TRUE(in.has_value());
    const std::string text = "x:\n  " + disassemble(*in) + "\n";
    const auto img2 = assemble(text, "b", a);  // same base so jumps match
    EXPECT_EQ(*img2.at(a), *in) << disassemble(*in);
  }
}

TEST(Disassembler, ImageListingHasSymbols) {
  const auto img = assemble("main:\n  nop\nhelper:\n  ret\n");
  const auto text = disassemble(img);
  EXPECT_NE(text.find("main:"), std::string::npos);
  EXPECT_NE(text.find("helper:"), std::string::npos);
  EXPECT_NE(text.find("nop"), std::string::npos);
}

}  // namespace
}  // namespace gf::isa
