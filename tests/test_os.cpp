// Tests for the VOS kernel and the MiniC implementations of the 21 API
// functions, for both OS versions. These run real guest code on the VM.
#include <gtest/gtest.h>

#include <set>

#include "os/api.h"
#include "os/filesystem.h"
#include "os/kernel.h"
#include "os/layout.h"

namespace gf::os {
namespace {

namespace lay = layout;

class OsTest : public ::testing::TestWithParam<OsVersion> {
 protected:
  OsTest() : kernel_(GetParam()), api_(kernel_) {}

  /// Writes an ansi path into the path slot and returns its guest address.
  std::uint64_t guest_path(const std::string& s) {
    EXPECT_TRUE(api_.write_cstr(OsApi::kPathSlot, s));
    return OsApi::kPathSlot;
  }

  std::uint64_t guest_wide(const std::string& s) {
    EXPECT_TRUE(api_.write_wstr(OsApi::kWidePathSlot, s));
    return OsApi::kWidePathSlot;
  }

  Kernel kernel_;
  OsApi api_;
};

INSTANTIATE_TEST_SUITE_P(BothVersions, OsTest,
                         ::testing::Values(OsVersion::kVos2000, OsVersion::kVosXp),
                         [](const auto& info) {
                           return info.param == OsVersion::kVos2000 ? "Vos2000"
                                                                    : "VosXp";
                         });

TEST_P(OsTest, ImageContainsAllApiFunctions) {
  for (const auto& fn : api_functions()) {
    EXPECT_NE(kernel_.pristine_image().find_symbol(fn.name), nullptr) << fn.name;
  }
  EXPECT_EQ(api_functions().size(), 21u);  // Table 2 surface
}

TEST_P(OsTest, HeapAllocReturnsDistinctAlignedBlocks) {
  std::set<std::int64_t> ptrs;
  for (int i = 0; i < 50; ++i) {
    const auto r = api_.rtl_alloc(100);
    ASSERT_TRUE(r.ok());
    ASSERT_GT(r.value, 0);
    EXPECT_EQ(r.value % 16, 0);
    EXPECT_TRUE(ptrs.insert(r.value).second) << "duplicate block";
    EXPECT_GE(static_cast<std::uint64_t>(r.value), lay::kHeapArena);
    EXPECT_LT(static_cast<std::uint64_t>(r.value), lay::kHeapArenaEnd);
  }
}

TEST_P(OsTest, HeapBlocksDoNotOverlap) {
  struct Block {
    std::int64_t lo, hi;
  };
  std::vector<Block> blocks;
  for (int i = 1; i <= 30; ++i) {
    const auto r = api_.rtl_alloc(i * 24);
    ASSERT_TRUE(r.ok());
    blocks.push_back({r.value, r.value + i * 24});
  }
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    for (std::size_t j = i + 1; j < blocks.size(); ++j) {
      EXPECT_TRUE(blocks[i].hi <= blocks[j].lo || blocks[j].hi <= blocks[i].lo)
          << i << " vs " << j;
    }
  }
}

TEST_P(OsTest, HeapFreeAndReuse) {
  const auto a = api_.rtl_alloc(256);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(api_.rtl_free(static_cast<std::uint64_t>(a.value)).ok());
  // Freed memory is reusable: allocating again must succeed.
  const auto b = api_.rtl_alloc(256);
  ASSERT_TRUE(b.ok());
  ASSERT_GT(b.value, 0);
}

TEST_P(OsTest, HeapSurvivesManyAllocFreeCycles) {
  // With reuse the arena never exhausts; without it this would run out.
  for (int round = 0; round < 200; ++round) {
    std::vector<std::int64_t> ptrs;
    for (int i = 0; i < 20; ++i) {
      const auto r = api_.rtl_alloc(1024);
      ASSERT_TRUE(r.ok()) << "round " << round;
      ASSERT_GT(r.value, 0) << "round " << round;
      ptrs.push_back(r.value);
    }
    for (const auto p : ptrs) {
      ASSERT_TRUE(api_.rtl_free(static_cast<std::uint64_t>(p)).ok());
    }
  }
}

TEST_P(OsTest, HeapRejectsBadFrees) {
  EXPECT_LT(api_.rtl_free(0).value, 0);
  EXPECT_LT(api_.rtl_free(0x5000).value, 0);  // outside the arena
  const auto a = api_.rtl_alloc(64);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(api_.rtl_free(static_cast<std::uint64_t>(a.value)).ok());
  // Double free: the magic is gone, must be rejected.
  EXPECT_LT(api_.rtl_free(static_cast<std::uint64_t>(a.value)).value, 0);
}

TEST_P(OsTest, HeapAllocRejectsNonPositiveSizes) {
  EXPECT_EQ(api_.rtl_alloc(0).value, 0);
  EXPECT_EQ(api_.rtl_alloc(-5).value, 0);
}

TEST_P(OsTest, HeapExhaustionReturnsNull) {
  // The arena is 4 MiB; a 16 MiB request cannot be satisfied.
  EXPECT_EQ(api_.rtl_alloc(16 << 20).value, 0);
}

TEST_P(OsTest, CreateWriteReadFileRoundTrip) {
  const auto h = api_.nt_create_file(guest_path("/tmp/x.txt"));
  ASSERT_GT(h.value, 0);
  const std::string payload = "hello fault injection";
  ASSERT_TRUE(api_.write_bytes(0x150000, payload.data(), payload.size()));
  const auto w = api_.nt_write_file(h.value, 0x150000,
                                    static_cast<std::int64_t>(payload.size()));
  EXPECT_EQ(w.value, static_cast<std::int64_t>(payload.size()));
  ASSERT_TRUE(api_.nt_close(h.value).ok());

  const auto h2 = api_.nt_open_file(guest_path("/tmp/x.txt"));
  ASSERT_GT(h2.value, 0);
  const auto r = api_.nt_read_file(h2.value, 0x151000, 100);
  EXPECT_EQ(r.value, static_cast<std::int64_t>(payload.size()));
  std::string back(payload.size(), 0);
  ASSERT_TRUE(api_.read_bytes(0x151000, back.data(), back.size()));
  EXPECT_EQ(back, payload);
  EXPECT_TRUE(api_.nt_close(h2.value).ok());
}

TEST_P(OsTest, SequentialReadsAdvancePosition) {
  kernel_.disk().add_file("/f", {'a', 'b', 'c', 'd', 'e', 'f'});
  const auto h = api_.nt_open_file(guest_path("/f"));
  ASSERT_GT(h.value, 0);
  EXPECT_EQ(api_.nt_read_file(h.value, 0x150000, 2).value, 2);
  EXPECT_EQ(api_.nt_read_file(h.value, 0x150008, 2).value, 2);
  char c[2];
  api_.read_bytes(0x150008, c, 2);
  EXPECT_EQ(c[0], 'c');
  EXPECT_EQ(c[1], 'd');
  // EOF after consuming the rest.
  EXPECT_EQ(api_.nt_read_file(h.value, 0x150010, 100).value, 2);
  EXPECT_EQ(api_.nt_read_file(h.value, 0x150010, 100).value, 0);
}

TEST_P(OsTest, OpenMissingFileFails) {
  EXPECT_EQ(api_.nt_open_file(guest_path("/does/not/exist")).value,
            lay::kStatusNotFound);
}

TEST_P(OsTest, InvalidHandlesRejected) {
  EXPECT_LT(api_.nt_close(0).value, 0);
  EXPECT_LT(api_.nt_close(-3).value, 0);
  EXPECT_LT(api_.nt_close(lay::kMaxHandles + 1).value, 0);
  EXPECT_LT(api_.nt_close(7).value, 0);  // never opened
  EXPECT_LT(api_.nt_read_file(7, 0x150000, 4).value, 0);
  EXPECT_LT(api_.nt_write_file(7, 0x150000, 4).value, 0);
}

TEST_P(OsTest, CloseReleasesHandleSlot) {
  kernel_.disk().add_file("/f", {'x'});
  std::int64_t first = 0;
  // Exhaust then release: handles must be recycled.
  for (int i = 0; i < lay::kMaxHandles; ++i) {
    const auto h = api_.nt_open_file(guest_path("/f"));
    ASSERT_GT(h.value, 0) << i;
    if (i == 0) first = h.value;
  }
  EXPECT_EQ(api_.nt_open_file(guest_path("/f")).value, lay::kStatusNoMemory);
  ASSERT_TRUE(api_.nt_close(first).ok());
  EXPECT_EQ(api_.nt_open_file(guest_path("/f")).value, first);
}

TEST_P(OsTest, ProtectAndQueryVirtualMemory) {
  const auto old = api_.nt_protect_vm(lay::kHeapArena, lay::kPageSize * 2, 1);
  EXPECT_EQ(old.value, 3);  // boot default: read+write
  const auto q = api_.nt_query_vm(lay::kHeapArena + lay::kPageSize,
                                  OsApi::kStructSlot);
  EXPECT_TRUE(q.ok());
  EXPECT_EQ(api_.read_u64_or(OsApi::kStructSlot + 16, 99), 1u);
  // Third page untouched.
  const auto q2 =
      api_.nt_query_vm(lay::kHeapArena + 2 * lay::kPageSize, OsApi::kStructSlot);
  EXPECT_TRUE(q2.ok());
  EXPECT_EQ(api_.read_u64_or(OsApi::kStructSlot + 16, 99), 3u);
}

TEST_P(OsTest, ProtectRejectsBadRanges) {
  EXPECT_LT(api_.nt_protect_vm(0x1000, 100, 1).value, 0);
  EXPECT_LT(api_.nt_protect_vm(lay::kHeapArena, 0, 1).value, 0);
  EXPECT_LT(api_.nt_protect_vm(lay::kHeapArena, -5, 1).value, 0);
  EXPECT_LT(api_.nt_query_vm(lay::kHeapArena, 0).value, 0);
}

TEST_P(OsTest, CriticalSectionEnterLeave) {
  const std::uint64_t cs = OsApi::kStructSlot;
  const std::uint64_t zero[4] = {};
  ASSERT_TRUE(api_.write_bytes(cs, zero, sizeof zero));
  EXPECT_TRUE(api_.rtl_enter_cs(cs).ok());
  EXPECT_EQ(api_.read_u64_or(cs + 8, 0), 1u);   // owner
  EXPECT_EQ(api_.read_u64_or(cs + 16, 0), 1u);  // recursion
  EXPECT_TRUE(api_.rtl_enter_cs(cs).ok());      // recursive acquire
  EXPECT_EQ(api_.read_u64_or(cs + 16, 0), 2u);
  EXPECT_TRUE(api_.rtl_leave_cs(cs).ok());
  EXPECT_TRUE(api_.rtl_leave_cs(cs).ok());
  EXPECT_EQ(api_.read_u64_or(cs + 8, 1), 0u);  // released
  EXPECT_EQ(api_.read_u64_or(cs, 1), 0u);      // lock count balanced
}

TEST_P(OsTest, LeaveWithoutEnterRejected) {
  const std::uint64_t cs = OsApi::kStructSlot;
  const std::uint64_t zero[4] = {};
  ASSERT_TRUE(api_.write_bytes(cs, zero, sizeof zero));
  EXPECT_LT(api_.rtl_leave_cs(cs).value, 0);
  EXPECT_LT(api_.rtl_enter_cs(0).value, 0);
  EXPECT_LT(api_.rtl_leave_cs(0).value, 0);
}

TEST_P(OsTest, InitAnsiString) {
  const auto src = guest_path("abc");
  const std::uint64_t s = OsApi::kStructSlot;
  ASSERT_TRUE(api_.rtl_init_ansi_string(s, src).ok());
  EXPECT_EQ(api_.read_u64_or(s, 99), 3u);        // length
  EXPECT_EQ(api_.read_u64_or(s + 8, 99), 4u);    // max length
  EXPECT_EQ(api_.read_u64_or(s + 16, 99), src);  // buffer aliases source
}

TEST_P(OsTest, InitAnsiStringNullSource) {
  const std::uint64_t s = OsApi::kStructSlot;
  ASSERT_TRUE(api_.rtl_init_ansi_string(s, 0).ok());
  EXPECT_EQ(api_.read_u64_or(s, 99), 0u);
  EXPECT_EQ(api_.read_u64_or(s + 16, 99), 0u);
}

TEST_P(OsTest, InitUnicodeString) {
  const auto src = guest_wide("hello");
  const std::uint64_t s = OsApi::kStructSlot;
  ASSERT_TRUE(api_.rtl_init_unicode_string(s, src).ok());
  EXPECT_EQ(api_.read_u64_or(s, 99), 10u);      // byte length
  EXPECT_EQ(api_.read_u64_or(s + 8, 99), 12u);  // with terminator
}

TEST_P(OsTest, UnicodeToMultiByteConvertsAscii) {
  const auto src = guest_wide("Index.Html");
  const std::uint64_t dst = 0x150000;
  const auto r = api_.rtl_unicode_to_multibyte(dst, 64, src, 20);
  EXPECT_EQ(r.value, 10);
  std::string out(10, 0);
  ASSERT_TRUE(api_.read_bytes(dst, out.data(), out.size()));
  EXPECT_EQ(out, "Index.Html");
}

TEST_P(OsTest, UnicodeToMultiByteReplacesWideChars) {
  auto& m = kernel_.machine();
  // One char with a non-zero high byte.
  ASSERT_TRUE(m.write_u8(0x152000, 0x42));
  ASSERT_TRUE(m.write_u8(0x152001, 0x03));
  const auto r = api_.rtl_unicode_to_multibyte(0x150000, 8, 0x152000, 2);
  EXPECT_EQ(r.value, 1);
  std::uint8_t c = 0;
  ASSERT_TRUE(m.read_u8(0x150000, c));
  EXPECT_EQ(c, '?');
}

TEST_P(OsTest, UnicodeToMultiByteHonorsDstMax) {
  const auto src = guest_wide("abcdefgh");
  EXPECT_EQ(api_.rtl_unicode_to_multibyte(0x150000, 3, src, 16).value, 3);
}

TEST_P(OsTest, UnicodeToMultiByteRejectsBadParams) {
  EXPECT_LT(api_.rtl_unicode_to_multibyte(0, 8, 0x150000, 2).value, 0);
  EXPECT_LT(api_.rtl_unicode_to_multibyte(0x150000, 0, 0x152000, 2).value, 0);
  EXPECT_LT(api_.rtl_unicode_to_multibyte(0x150000, 8, 0x152000, -2).value, 0);
}

TEST_P(OsTest, DosPathToNtPathPrefixesAndConverts) {
  const auto src = guest_wide("www/docs/file.html");
  const std::uint64_t dst = OsApi::kStructSlot;
  ASSERT_TRUE(api_.rtl_dos_path_to_nt(src, dst).ok());
  const auto len = api_.read_u64_or(dst, 0);
  const auto buf = api_.read_u64_or(dst + 16, 0);
  ASSERT_GT(buf, 0u);
  EXPECT_EQ(len, (18u + 4u) * 2u);
  // Expect "\??\www\docs\file.html" as 2-byte chars.
  std::string expect = "\\??\\www\\docs\\file.html";
  for (std::size_t i = 0; i < expect.size(); ++i) {
    std::uint8_t lo = 0, hi = 1;
    ASSERT_TRUE(kernel_.machine().read_u8(buf + i * 2, lo));
    ASSERT_TRUE(kernel_.machine().read_u8(buf + i * 2 + 1, hi));
    EXPECT_EQ(lo, static_cast<std::uint8_t>(expect[i])) << i;
    EXPECT_EQ(hi, 0) << i;
  }
  // The buffer came from the heap; FreeUnicodeString must return it.
  ASSERT_TRUE(api_.rtl_free_unicode_string(dst).ok());
  EXPECT_EQ(api_.read_u64_or(dst + 16, 1), 0u);
}

TEST_P(OsTest, FreeUnicodeStringOnEmptyStructIsOk) {
  const std::uint64_t s = OsApi::kStructSlot;
  const std::uint64_t zero[3] = {};
  ASSERT_TRUE(api_.write_bytes(s, zero, sizeof zero));
  EXPECT_TRUE(api_.rtl_free_unicode_string(s).ok());
}

TEST_P(OsTest, CloseHandleWrapsNtClose) {
  kernel_.disk().add_file("/f", {'x'});
  const auto h = api_.nt_open_file(guest_path("/f"));
  ASSERT_GT(h.value, 0);
  EXPECT_EQ(api_.close_handle(h.value).value, 1);
  EXPECT_EQ(api_.close_handle(h.value).value, 0);  // already closed
  EXPECT_EQ(api_.close_handle(0).value, 0);
}

TEST_P(OsTest, ReadFileWrapperReportsBytes) {
  kernel_.disk().add_file("/f", {'a', 'b', 'c'});
  const auto h = api_.nt_open_file(guest_path("/f"));
  ASSERT_GT(h.value, 0);
  const auto r = api_.read_file(h.value, 0x150000, 10, OsApi::kOutSlot);
  EXPECT_EQ(r.value, 1);  // success BOOL
  EXPECT_EQ(api_.read_u64_or(OsApi::kOutSlot, 0), 3u);
  const auto bad = api_.read_file(999, 0x150000, 10, OsApi::kOutSlot);
  EXPECT_EQ(bad.value, 0);
  EXPECT_EQ(api_.read_u64_or(OsApi::kOutSlot, 7), 0u);
}

TEST_P(OsTest, WriteFileWrapperWritesToDisk) {
  const auto h = api_.nt_create_file(guest_path("/log"));
  ASSERT_GT(h.value, 0);
  ASSERT_TRUE(api_.write_bytes(0x150000, "entry", 5));
  const auto r = api_.write_file(h.value, 0x150000, 5, OsApi::kOutSlot);
  EXPECT_EQ(r.value, 1);
  EXPECT_EQ(api_.read_u64_or(OsApi::kOutSlot, 0), 5u);
  const auto* content = kernel_.disk().content("/log");
  ASSERT_NE(content, nullptr);
  EXPECT_EQ(std::string(content->begin(), content->end()), "entry");
}

TEST_P(OsTest, SetFilePointerSeeks) {
  kernel_.disk().add_file("/f", {'a', 'b', 'c', 'd'});
  const auto h = api_.nt_open_file(guest_path("/f"));
  ASSERT_GT(h.value, 0);
  EXPECT_EQ(api_.set_file_pointer(h.value, 2).value, 2);
  EXPECT_EQ(api_.nt_read_file(h.value, 0x150000, 1).value, 1);
  char c = 0;
  api_.read_bytes(0x150000, &c, 1);
  EXPECT_EQ(c, 'c');
  EXPECT_EQ(api_.set_file_pointer(h.value, -1).value, -1);
  EXPECT_EQ(api_.set_file_pointer(999, 0).value, -1);
}

TEST_P(OsTest, GetLongPathNameCopies) {
  const auto src = guest_wide("/www/a.html");
  const auto n = api_.get_long_path_name(src, 0x150000, 64);
  EXPECT_EQ(n.value, 11);
  std::uint8_t lo = 0;
  kernel_.machine().read_u8(0x150000 + 2 * 2, lo);  // third char
  EXPECT_EQ(lo, 'w');
}

TEST_P(OsTest, ApiCallsAreObservable) {
  std::vector<std::string> calls;
  api_.set_call_hook([&](const std::string& n) { calls.push_back(n); });
  api_.rtl_alloc(32);
  api_.nt_close(0);
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_EQ(calls[0], "RtlAllocateHeap");
  EXPECT_EQ(calls[1], "NtClose");
  EXPECT_EQ(api_.call_count(), 2u);
  EXPECT_GT(api_.total_cycles(), 0u);
}

TEST_P(OsTest, RebootResetsHeapAndHandles) {
  kernel_.disk().add_file("/f", {'x'});
  const auto h = api_.nt_open_file(guest_path("/f"));
  ASSERT_GT(h.value, 0);
  const auto p = api_.rtl_alloc(128);
  ASSERT_GT(p.value, 0);
  kernel_.reboot();
  // Handle table wiped, heap back to a full arena.
  EXPECT_LT(api_.nt_read_file(h.value, 0x150000, 1).value, 0);
  const auto p2 = api_.rtl_alloc(128);
  EXPECT_EQ(p2.value, p.value);  // identical first block after reset
  // Disk contents survive a reboot.
  EXPECT_NE(kernel_.disk().content("/f"), nullptr);
}

TEST_P(OsTest, UnknownApiNameThrows) {
  EXPECT_THROW(api_.call("NtBogus", {}), std::out_of_range);
}

// --- host path utilities ----------------------------------------------------

TEST(PathUtils, Normalize) {
  EXPECT_EQ(normalize_path("/a//b/./c"), "/a/b/c");
  EXPECT_EQ(normalize_path("a\\b"), "/a/b");
  EXPECT_EQ(normalize_path("/a/../b"), "/b");
  EXPECT_EQ(normalize_path("/../../x"), "/x");
  EXPECT_EQ(normalize_path(""), "/");
  EXPECT_EQ(normalize_path("/"), "/");
}

TEST(PathUtils, Join) {
  EXPECT_EQ(join_path("/a", "b"), "/a/b");
  EXPECT_EQ(join_path("/a/", "/b"), "/a/b");
  EXPECT_EQ(join_path("/a/", "b"), "/a/b");
  EXPECT_EQ(join_path("", "b"), "b");
}

TEST(PathUtils, Extension) {
  EXPECT_EQ(path_extension("/x/a.HTML"), "html");
  EXPECT_EQ(path_extension("/x/a"), "");
  EXPECT_EQ(path_extension("/x.d/a"), "");
}

TEST(PathUtils, ValidRequestPath) {
  EXPECT_TRUE(is_valid_request_path("/index.html"));
  EXPECT_FALSE(is_valid_request_path("index.html"));
  EXPECT_FALSE(is_valid_request_path(""));
  EXPECT_FALSE(is_valid_request_path(std::string("/a\x01b")));
}

// --- disk --------------------------------------------------------------------

TEST(SimDisk, CreateFindReadWrite) {
  SimDisk d;
  EXPECT_FALSE(d.find("/x").has_value());
  const int id = d.create("/x");
  EXPECT_EQ(d.find("/x"), id);
  const std::uint8_t data[] = {1, 2, 3};
  EXPECT_EQ(d.write(id, 0, data, 3), 3);
  EXPECT_EQ(d.size(id), 3);
  std::uint8_t out[3] = {};
  EXPECT_EQ(d.read(id, 1, out, 2), 2);
  EXPECT_EQ(out[0], 2);
}

TEST(SimDisk, WriteExtendsWithZeros) {
  SimDisk d;
  const int id = d.create("/x");
  const std::uint8_t b = 9;
  EXPECT_EQ(d.write(id, 5, &b, 1), 1);
  EXPECT_EQ(d.size(id), 6);
  std::uint8_t out[6];
  EXPECT_EQ(d.read(id, 0, out, 6), 6);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[5], 9);
}

TEST(SimDisk, BadIdsRejected) {
  SimDisk d;
  std::uint8_t b;
  EXPECT_FALSE(d.read(0, 0, &b, 1).has_value());
  EXPECT_FALSE(d.write(-1, 0, &b, 1).has_value());
  EXPECT_FALSE(d.size(3).has_value());
}

TEST(SimDisk, CreateTruncatesExisting) {
  SimDisk d;
  d.add_file("/x", {1, 2, 3});
  d.create("/x");
  EXPECT_EQ(d.size(*d.find("/x")), 0);
}

}  // namespace
}  // namespace gf::os
