// Tests for the dependability-benchmark layer: profiling (Table 2),
// fine-tuning (Table 3), the experiment controller (Tables 4/5), and the
// report/metric derivations — including the paper's repeatability and
// differentiation properties on miniature campaigns.
#include <gtest/gtest.h>

#include "depbench/report.h"
#include "depbench/tuner.h"

namespace gf::depbench {
namespace {

std::vector<std::string> all_api_names() {
  std::vector<std::string> names;
  for (const auto& f : os::api_functions()) names.emplace_back(f.name);
  return names;
}

TEST(ProfilerTest, CoversAllFunctionsAcrossAllServers) {
  ProfilerConfig cfg;
  cfg.window_ms = 30000;
  Profiler profiler(cfg);
  const auto profile = profiler.profile(
      os::OsVersion::kVos2000, {"apex", "abyssal", "sambar", "savant"});
  ASSERT_EQ(profile.columns.size(), 4u);
  const auto relevant = profile.relevant_functions();
  // Every Table 2 function is used by every server (the intersection rule).
  EXPECT_EQ(relevant.size(), os::api_functions().size());
  for (const auto& col : profile.columns) {
    EXPECT_GT(col.total_calls, 1000u) << col.server;
    double sum = 0;
    for (const auto& [fn, pct] : col.pct) sum += pct;
    EXPECT_NEAR(sum, 100.0, 0.1) << col.server;
  }
}

TEST(ProfilerTest, IntersectionDropsUnusedFunctions) {
  ApiProfile profile;
  ProfileColumn a, b;
  a.server = "a";
  a.pct = {{"NtClose", 60.0}, {"NtOpenFile", 40.0}};
  b.server = "b";
  b.pct = {{"NtClose", 100.0}};
  profile.columns = {a, b};
  const auto relevant = profile.relevant_functions();
  ASSERT_EQ(relevant.size(), 1u);
  EXPECT_EQ(relevant[0], "NtClose");
  EXPECT_DOUBLE_EQ(profile.average_pct("NtClose"), 80.0);
  EXPECT_DOUBLE_EQ(profile.total_coverage(), 80.0);
}

TEST(ProfilerTest, ThresholdFiltersNegligibleFunctions) {
  ApiProfile profile;
  ProfileColumn a;
  a.server = "a";
  a.pct = {{"NtClose", 99.9}, {"NtOpenFile", 0.01}};
  profile.columns = {a};
  EXPECT_EQ(profile.relevant_functions(0.05).size(), 1u);
  EXPECT_EQ(profile.relevant_functions(0.0).size(), 2u);
}

TEST(TunerTest, ProducesFaultloadRestrictedToProfiledFunctions) {
  os::Kernel kernel(os::OsVersion::kVos2000);
  ProfilerConfig cfg;
  cfg.window_ms = 15000;
  const auto tuned = tune_faultload(kernel, {"apex", "savant"}, cfg);
  EXPECT_FALSE(tuned.functions.empty());
  EXPECT_FALSE(tuned.faultload.faults.empty());
  for (const auto& f : tuned.faultload.faults) {
    EXPECT_NE(std::find(tuned.functions.begin(), tuned.functions.end(),
                        f.function),
              tuned.functions.end())
        << f.function;
  }
  EXPECT_TRUE(tuned.faultload.matches(kernel.pristine_image()));
}

// Miniature campaign fixture: scaled exposure, heavy fault sampling.
class CampaignTest : public ::testing::Test {
 protected:
  static ControllerConfig quick_config(const std::string& server) {
    ControllerConfig cfg;
    cfg.connections = server == "apex" ? 37 : 34;
    cfg.time_scale = 0.2;
    cfg.fault_stride = 17;
    return cfg;
  }

  static swfit::Faultload faultload(os::OsVersion v) {
    os::Kernel kernel(v);
    return swfit::Scanner{}.scan(kernel.pristine_image(), all_api_names());
  }
};

TEST_F(CampaignTest, BaselineHasNoErrorsAndFullConformance) {
  Controller ctl(os::OsVersion::kVos2000, "apex", quick_config("apex"));
  const auto m = ctl.run_baseline(20000, 1);
  EXPECT_EQ(m.errors, 0u);
  EXPECT_EQ(m.spc, 37);
}

TEST_F(CampaignTest, ProfileModeOverheadIsSmall) {
  const auto fl = faultload(os::OsVersion::kVos2000);
  Controller ctl(os::OsVersion::kVos2000, "apex", quick_config("apex"));
  const auto base = ctl.run_baseline(20000, 1);
  const auto prof = ctl.run_profile_mode(fl, 20000, 1);
  EXPECT_EQ(prof.errors, 0u);
  EXPECT_EQ(prof.spc, base.spc);  // no SPC impact (paper Table 4)
  EXPECT_GT(prof.thr, base.thr * 0.97);  // <3% THR impact
}

TEST_F(CampaignTest, IterationRunsAndCountsFaults) {
  const auto fl = faultload(os::OsVersion::kVos2000);
  auto cfg = quick_config("abyssal");
  Controller ctl(os::OsVersion::kVos2000, "abyssal", cfg);
  const auto it = ctl.run_iteration(fl, 3);
  const auto expected =
      (fl.faults.size() + cfg.fault_stride - 1) / cfg.fault_stride;
  EXPECT_EQ(it.counters.faults_injected, static_cast<int>(expected));
  EXPECT_GT(it.metrics.ops, 0u);
  EXPECT_GT(it.metrics.errors, 0u);  // some faults must bite
}

TEST_F(CampaignTest, IterationRejectsWrongFaultload) {
  const auto fl = faultload(os::OsVersion::kVosXp);
  Controller ctl(os::OsVersion::kVos2000, "apex", quick_config("apex"));
  EXPECT_THROW(ctl.run_iteration(fl, 1), std::invalid_argument);
}

TEST_F(CampaignTest, RepeatabilityAcrossSeeds) {
  // The paper's repeatability property: iterations with different seeds
  // yield similar results (identical seeds yield identical results).
  const auto fl = faultload(os::OsVersion::kVos2000);
  Controller ctl(os::OsVersion::kVos2000, "apex", quick_config("apex"));
  const auto a = ctl.run_iteration(fl, 5);
  const auto b = ctl.run_iteration(fl, 5);
  EXPECT_EQ(a.metrics.ops, b.metrics.ops);
  EXPECT_EQ(a.metrics.errors, b.metrics.errors);
  EXPECT_EQ(a.counters.mis, b.counters.mis);
  EXPECT_EQ(a.counters.kns, b.counters.kns);
}

TEST_F(CampaignTest, ApexOutperformsAbyssalUnderFaults) {
  const auto fl = faultload(os::OsVersion::kVos2000);
  Controller apex(os::OsVersion::kVos2000, "apex", quick_config("apex"));
  Controller abyssal(os::OsVersion::kVos2000, "abyssal",
                     quick_config("abyssal"));
  const auto a = apex.run_iteration(fl, 9);
  const auto b = abyssal.run_iteration(fl, 9);
  // The paper's core differential result.
  EXPECT_LT(a.metrics.er_pct, b.metrics.er_pct);
}

TEST(ReportTest, AverageCounters) {
  IterationResult r1, r2;
  r1.counters.mis = 4;
  r2.counters.mis = 6;
  r1.counters.kns = 1;
  r2.counters.kns = 3;
  const auto avg = average_counters({r1, r2});
  EXPECT_DOUBLE_EQ(avg.mis, 5.0);
  EXPECT_DOUBLE_EQ(avg.kns, 2.0);
  EXPECT_DOUBLE_EQ(avg.admf(), 7.0);
  EXPECT_DOUBLE_EQ(average_counters({}).admf(), 0.0);
}

TEST(ReportTest, DeriveMetricsComputesRelatives) {
  ExperimentCell cell;
  cell.baseline.spc = 40;
  cell.baseline.thr = 100;
  IterationResult it;
  it.metrics.spc = 10;
  it.metrics.thr = 80;
  it.metrics.er_pct = 5;
  it.counters.mis = 2;
  it.counters.kns = 3;
  cell.iterations = {it};
  const auto d = derive_metrics(cell);
  EXPECT_DOUBLE_EQ(d.spc_rel, 0.25);
  EXPECT_DOUBLE_EQ(d.thr_rel, 0.8);
  EXPECT_DOUBLE_EQ(d.admf, 5.0);
}

TEST(ReportTest, Table5CellRendersAllRows) {
  ExperimentCell cell;
  cell.os_name = "VOS-2000";
  cell.server_name = "apex";
  cell.baseline.spc = 37;
  IterationResult it;
  it.metrics.spc = 12;
  cell.iterations = {it, it, it};
  const auto text = render_table5_cell(cell);
  EXPECT_NE(text.find("Baseline Perf."), std::string::npos);
  EXPECT_NE(text.find("Iteration 3"), std::string::npos);
  EXPECT_NE(text.find("Average (all iter)"), std::string::npos);
}

TEST(ReportTest, Fig5RendersBars) {
  ExperimentCell cell;
  cell.os_name = "VOS-2000";
  cell.server_name = "apex";
  cell.baseline.spc = 37;
  cell.iterations.emplace_back();
  const auto text = render_fig5({cell});
  EXPECT_NE(text.find("SPCf"), std::string::npos);
  EXPECT_NE(text.find("ADMf"), std::string::npos);
}

}  // namespace
}  // namespace gf::depbench
