// Predecode-invalidation coverage at system scale: the injector patches and
// restores VOS code thousands of times per campaign, and the VM's predecoded
// instruction cache must track every patch byte-exactly. These tests run the
// full VOS-2000 faultload through inject/restore and assert that a machine
// that lived through all of it is indistinguishable — traces, return values,
// cycle counts — from one that was never patched.
#include <gtest/gtest.h>

#include <algorithm>

#include "os/api.h"
#include "os/kernel.h"
#include "swfit/injector.h"
#include "swfit/scanner.h"

namespace gf::swfit {
namespace {

std::vector<std::string> all_api_names() {
  std::vector<std::string> names;
  for (const auto& f : os::api_functions()) names.emplace_back(f.name);
  return names;
}

/// Drives a fixed API workload and returns (return values, cycles, trace).
struct Probe {
  std::vector<std::int64_t> values;
  std::uint64_t cycles = 0;
  std::vector<std::uint64_t> trace;
};

Probe run_probe(os::Kernel& kernel) {
  kernel.machine().set_coverage(true);
  kernel.machine().clear_coverage();
  os::OsApi api(kernel);
  api.write_cstr(os::OsApi::kPathSlot, "/probe");

  Probe p;
  if (!kernel.disk().find("/probe")) {
    kernel.disk().add_file("/probe", std::vector<std::uint8_t>(512, 3));
  }
  const auto start_cycles = kernel.machine().total_cycles();
  const auto mem = api.rtl_alloc(256);
  p.values.push_back(mem.value);
  const auto h = api.nt_open_file(os::OsApi::kPathSlot);
  p.values.push_back(h.value);
  p.values.push_back(api.nt_read_file(h.value, 0x150000, 512).value);
  p.values.push_back(api.nt_close(h.value).value);
  p.values.push_back(api.rtl_free(static_cast<std::uint64_t>(mem.value)).value);
  p.cycles = kernel.machine().total_cycles() - start_cycles;
  p.trace = kernel.machine().executed_pcs();
  return p;
}

TEST(PredecodeInvalidation, InjectRestoreEveryFaultMatchesNeverPatchedMachine) {
  os::Kernel patched(os::OsVersion::kVos2000);
  os::Kernel reference(os::OsVersion::kVos2000);
  const auto fl = Scanner{}.scan(patched.pristine_image(), all_api_names());
  ASSERT_FALSE(fl.faults.empty());

  Injector injector(patched);
  for (const auto& f : fl.faults) {
    ASSERT_TRUE(injector.inject(f)) << f.function << " @ " << f.addr;
    injector.restore();
  }

  // Byte-exact restore of the active image…
  EXPECT_EQ(patched.active_image().code_digest(),
            patched.pristine_image().code_digest());

  // …and of the VM's executable state: the machine that survived the whole
  // faultload must produce the same return values, the same instruction
  // trace, and burn the same cycles as one that was never patched.
  patched.reboot();
  reference.reboot();
  const auto a = run_probe(patched);
  const auto b = run_probe(reference);
  EXPECT_EQ(a.values, b.values);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.trace, b.trace);
}

TEST(PredecodeInvalidation, ActiveFaultExecutesMutatedCodePostSyncRange) {
  // The ranged sync must make an injected fault *visible* to the VM, not
  // just restore cleanly: while a fault is active, the probe must diverge
  // from the pristine machine for at least some faults.
  os::Kernel kernel(os::OsVersion::kVos2000);
  os::Kernel reference(os::OsVersion::kVos2000);
  const auto fl = Scanner{}.scan(kernel.pristine_image(), all_api_names());

  kernel.reboot();
  reference.reboot();
  const auto clean = run_probe(reference);

  // Per sample: inject into a freshly-rebooted pristine SUB, probe with the
  // fault live, then restore and reboot (the controller's ordering: restore
  // always precedes the administrator reboot).
  Injector injector(kernel);
  int diverged = 0;
  const std::size_t step = std::max<std::size_t>(1, fl.faults.size() / 40);
  for (std::size_t i = 0; i < fl.faults.size(); i += step) {
    ASSERT_TRUE(injector.inject(fl.faults[i]));
    const auto probe = run_probe(kernel);
    if (probe.values != clean.values || probe.trace != clean.trace) ++diverged;
    injector.restore();
    kernel.reboot();
  }
  EXPECT_GT(diverged, 0);  // faults actually bite through the predecode cache

  // And after the last restore the machine is pristine again.
  kernel.reboot();
  const auto after = run_probe(kernel);
  EXPECT_EQ(after.values, clean.values);
  EXPECT_EQ(after.trace, clean.trace);
}

}  // namespace
}  // namespace gf::swfit
