// Tests for the sharded parallel campaign runner: worker count must never
// change results (per-task seeds are derived, slots are preallocated), and
// fault-index shards must partition the faultload exactly.
#include <gtest/gtest.h>

#include "depbench/runner.h"

namespace gf::depbench {
namespace {

RunnerOptions quick_options() {
  RunnerOptions opt;
  opt.versions = {os::OsVersion::kVos2000};
  opt.servers = {"apex", "abyssal"};
  opt.iterations = 2;
  opt.stride = 17;
  opt.time_scale = 0.2;
  opt.baseline_window_ms = 15000;
  opt.seed = 42;
  return opt;
}

void expect_same_metrics(const spec::WindowMetrics& a,
                         const spec::WindowMetrics& b) {
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_DOUBLE_EQ(a.duration_ms, b.duration_ms);
  EXPECT_DOUBLE_EQ(a.thr, b.thr);
  EXPECT_DOUBLE_EQ(a.rtm_ms, b.rtm_ms);
  EXPECT_DOUBLE_EQ(a.er_pct, b.er_pct);
  EXPECT_EQ(a.spc, b.spc);
  EXPECT_DOUBLE_EQ(a.cc_pct, b.cc_pct);
}

void expect_same_counters(const CampaignCounters& a,
                          const CampaignCounters& b) {
  EXPECT_EQ(a.mis, b.mis);
  EXPECT_EQ(a.kns, b.kns);
  EXPECT_EQ(a.kcp, b.kcp);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.self_restarts, b.self_restarts);
}

TEST(CampaignRunnerTest, JobsDoNotChangeResults) {
  auto opt = quick_options();
  opt.jobs = 1;
  auto sequential = CampaignRunner(opt).run_campaign();
  opt.jobs = 4;
  auto parallel = CampaignRunner(opt).run_campaign();

  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t c = 0; c < sequential.size(); ++c) {
    SCOPED_TRACE(sequential[c].os_name + "/" + sequential[c].server_name);
    EXPECT_EQ(sequential[c].os_name, parallel[c].os_name);
    EXPECT_EQ(sequential[c].server_name, parallel[c].server_name);
    expect_same_metrics(sequential[c].baseline, parallel[c].baseline);
    ASSERT_EQ(sequential[c].iterations.size(), parallel[c].iterations.size());
    for (std::size_t i = 0; i < sequential[c].iterations.size(); ++i) {
      expect_same_metrics(sequential[c].iterations[i].metrics,
                          parallel[c].iterations[i].metrics);
      expect_same_counters(sequential[c].iterations[i].counters,
                           parallel[c].iterations[i].counters);
    }
    // Merged views (the numbers the Table 5 report prints) match too.
    expect_same_metrics(average_iteration_metrics(sequential[c].iterations),
                        average_iteration_metrics(parallel[c].iterations));
    const auto avg_a = average_counters(sequential[c].iterations);
    const auto avg_b = average_counters(parallel[c].iterations);
    EXPECT_DOUBLE_EQ(avg_a.admf(), avg_b.admf());
    EXPECT_DOUBLE_EQ(avg_a.self_restarts, avg_b.self_restarts);
  }
}

TEST(CampaignRunnerTest, ShardsPartitionTheFaultload) {
  auto opt = quick_options();
  opt.servers = {"abyssal"};
  opt.iterations = 1;
  opt.jobs = 2;

  opt.shards = 1;
  const auto whole = CampaignRunner(opt).run_campaign();
  opt.shards = 2;
  const auto sharded = CampaignRunner(opt).run_campaign();

  ASSERT_EQ(whole.size(), 1u);
  ASSERT_EQ(sharded.size(), 1u);
  // Shard s of S covers {s*stride, s*stride + S*stride, ...}: the union is
  // exactly the unsharded index set, so the injected-fault count is equal.
  EXPECT_EQ(sharded[0].iterations[0].counters.faults_injected,
            whole[0].iterations[0].counters.faults_injected);
  EXPECT_GT(sharded[0].iterations[0].metrics.ops, 0u);
}

TEST(CampaignRunnerTest, IntrusivenessPairsRunsPerCell) {
  auto opt = quick_options();
  opt.servers = {"apex"};
  opt.jobs = 2;
  const auto cells = CampaignRunner(opt).run_intrusiveness();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].server_name, "apex");
  // Profile mode never patches: conformance stays within one connection of
  // the injector-free run (short windows can cut off one straggler) and the
  // throughput overhead stays tiny.
  EXPECT_GE(cells[0].profile.spc + 1, cells[0].max_perf.spc);
  EXPECT_GT(cells[0].profile.thr, cells[0].max_perf.thr * 0.97);
}

TEST(CampaignRunnerTest, DeriveSeedIsStableAndSpreads) {
  // Pure function: same inputs, same seed — across calls and platforms.
  EXPECT_EQ(derive_seed(1, 0, 0), derive_seed(1, 0, 0));
  // Neighbouring (cell, task) pairs land in different streams.
  EXPECT_NE(derive_seed(1, 0, 1), derive_seed(1, 1, 0));
  EXPECT_NE(derive_seed(1, 0, 0), derive_seed(2, 0, 0));
}

TEST(CampaignRunnerTest, MergeHelpersAreExactForCountersAndIdentityForOne) {
  CampaignCounters a, b;
  a.mis = 1; a.kns = 2; a.kcp = 3; a.faults_injected = 10; a.self_restarts = 4;
  b.mis = 5; b.kns = 6; b.kcp = 7; b.faults_injected = 20; b.self_restarts = 8;
  const auto m = merge_counters(a, b);
  EXPECT_EQ(m.mis, 6);
  EXPECT_EQ(m.kns, 8);
  EXPECT_EQ(m.kcp, 10);
  EXPECT_EQ(m.faults_injected, 30);
  EXPECT_EQ(m.self_restarts, 12);
  EXPECT_EQ(m.admf(), 24);

  IterationResult one;
  one.metrics.ops = 7;
  one.metrics.thr = 1.5;
  one.counters.mis = 2;
  const auto same = merge_shards({one});
  EXPECT_EQ(same.metrics.ops, 7u);
  EXPECT_DOUBLE_EQ(same.metrics.thr, 1.5);
  EXPECT_EQ(same.counters.mis, 2);
}

}  // namespace
}  // namespace gf::depbench
