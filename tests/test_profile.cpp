// Deterministic guest profiler tests: the sampler's countdown must be a
// pure function of the retired instruction stream (so fusion on/off, worker
// count and store-resume never change a profile), the differential math must
// rank fault-vs-baseline share shifts, and the cross-campaign diff gate must
// be exactly zero on a self-diff and nonzero on injected drift.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "depbench/campaign_diff.h"
#include "depbench/campaign_report.h"
#include "depbench/runner.h"
#include "minic/compiler.h"
#include "obs/profile.h"
#include "store/store.h"
#include "vm/machine.h"

namespace gf::depbench {
namespace {

// ---------------------------------------------------------------- sampler

vm::Machine loop_machine(const isa::Image& img) {
  vm::Machine m;
  m.load_image(img);
  return m;
}

isa::Image loop_image() {
  return minic::compile(
      "fn f(n) { var s = 0; var i = 0; while (i < n) { s = s + i * 3; "
      "i = i + 1; } return s; }",
      "t", 0x1000);
}

std::uint64_t total_samples(const vm::Machine& m) {
  std::uint64_t total = 0;
  for (const auto& [pc, n] : m.samples()) total += n;
  return total;
}

TEST(SamplerTest, StrideScalesTotalsAndCarryIsExact) {
  const auto img = loop_image();
  const auto addr = img.find_symbol("f")->addr;

  auto m1 = loop_machine(img);
  m1.arm_sampler(1);
  m1.call(addr, {2000}, 1u << 24);
  const auto s1 = total_samples(m1);
  ASSERT_GT(s1, 0u);

  // Stride 1 samples once per retired cycle, so halving the rate must halve
  // the count exactly (up to the final partial stride).
  auto m2 = loop_machine(img);
  m2.arm_sampler(2);
  m2.call(addr, {2000}, 1u << 24);
  const auto s2 = total_samples(m2);
  EXPECT_LE(s1 / 2 - s2, 1u);
  EXPECT_LE(s2 - s1 / 2, 1u);

  // Phase-preserving carry: an instruction cost larger than the stride must
  // yield multiple samples, keeping totals exact.
  auto m3 = loop_machine(img);
  m3.arm_sampler(1);
  m3.call(addr, {100}, 1u << 24);
  auto m4 = loop_machine(img);
  m4.arm_sampler(1);
  m4.call(addr, {100}, 1u << 24);
  EXPECT_EQ(m3.samples(), m4.samples());
}

TEST(SamplerTest, FusionNeverChangesTheSampleStream) {
  const auto img = loop_image();
  const auto addr = img.find_symbol("f")->addr;
  for (const std::uint64_t stride : {1u, 7u, 4096u}) {
    auto fused = loop_machine(img);
    fused.set_fusion(true);
    fused.arm_sampler(stride);
    const auto rf = fused.call(addr, {5000}, 1u << 24);

    auto unfused = loop_machine(img);
    unfused.set_fusion(false);
    unfused.arm_sampler(stride);
    const auto ru = unfused.call(addr, {5000}, 1u << 24);

    EXPECT_EQ(rf.ret, ru.ret);
    EXPECT_EQ(fused.samples(), unfused.samples()) << "stride " << stride;

    // The no-predecode fallback retires the same architectural stream too.
    auto nopre = loop_machine(img);
    nopre.set_predecode(false);
    nopre.arm_sampler(stride);
    nopre.call(addr, {5000}, 1u << 24);
    EXPECT_EQ(fused.samples(), nopre.samples()) << "stride " << stride;
  }
}

TEST(SamplerTest, RearmResetsAndDisarmedMachineMatchesUnsampled) {
  const auto img = loop_image();
  const auto addr = img.find_symbol("f")->addr;

  auto m = loop_machine(img);
  m.arm_sampler(4);
  m.call(addr, {500}, 1u << 24);
  EXPECT_FALSE(m.samples().empty());

  // Re-arming clears the previous run's samples and restarts the phase.
  m.arm_sampler(4);
  EXPECT_TRUE(m.samples().empty());
  m.call(addr, {500}, 1u << 24);
  const auto first = m.samples();
  m.arm_sampler(4);
  m.call(addr, {500}, 1u << 24);
  EXPECT_EQ(m.samples(), first);

  // Disarmed: no samples accumulate and results match a never-armed machine.
  m.disarm_sampler();
  EXPECT_FALSE(m.sampler_armed());
  const auto before = m.samples();
  const auto rd = m.call(addr, {500}, 1u << 24);
  EXPECT_EQ(m.samples(), before);

  auto plain = loop_machine(img);
  const auto rp = plain.call(addr, {500}, 1u << 24);
  EXPECT_EQ(rd.ret, rp.ret);
}

// ---------------------------------------------------------------- profile

TEST(ProfileTest, MergeSumsAndDivergenceRanks) {
  obs::Profile base;
  base.stride = 64;
  base.add("alpha", 60);
  base.add("beta", 40);

  obs::Profile fault;
  fault.stride = 64;
  fault.add("alpha", 20);
  fault.add("beta", 40);
  fault.add("gamma", 40);
  EXPECT_EQ(fault.total, 100u);

  obs::Profile merged = base;
  merged.merge(fault);
  EXPECT_EQ(merged.total, 200u);
  EXPECT_EQ(merged.functions.at("alpha"), 80u);

  // Self-divergence is exactly zero.
  EXPECT_DOUBLE_EQ(obs::profile_divergence(base, base).score, 0.0);

  // alpha lost 40pp, gamma gained 40pp, beta unchanged; score = L1/2. The
  // two big movers rank above beta (their FP magnitudes differ in the last
  // ulp, so the exact order between them is whatever |delta| says).
  const auto div = obs::profile_divergence(base, fault);
  EXPECT_NEAR(div.score, 0.4, 1e-12);
  ASSERT_EQ(div.deltas.size(), 3u);
  EXPECT_EQ(div.deltas[0].name, "gamma");
  EXPECT_NEAR(div.deltas[0].delta, 0.4, 1e-12);
  EXPECT_EQ(div.deltas[1].name, "alpha");
  EXPECT_NEAR(div.deltas[1].delta, -0.4, 1e-12);
  EXPECT_EQ(div.deltas[2].name, "beta");
}

// --------------------------------------------------- campaign determinism

RunnerOptions profiled_options() {
  RunnerOptions opt;
  opt.versions = {os::OsVersion::kVos2000};
  opt.servers = {"apex"};
  opt.iterations = 2;
  opt.stride = 29;
  opt.time_scale = 0.1;
  opt.baseline_window_ms = 5000;
  opt.seed = 42;
  opt.obs = true;
  opt.profile = true;
  return opt;
}

struct Artifacts {
  std::vector<ExperimentCell> cells;
  std::string profile_json;
  std::string flame;
  std::string manifest;
};

Artifacts run_profiled(RunnerOptions opt) {
  CampaignRunner runner(opt);
  Artifacts a;
  a.cells = runner.run_campaign();
  const auto* obs = runner.campaign_obs();
  EXPECT_NE(obs, nullptr);
  a.profile_json = campaign_profile_json(a.cells, opt, *obs);
  a.flame = campaign_flamegraph(*obs);
  a.manifest = campaign_manifest_json(a.cells, opt, obs);
  return a;
}

/// The reference run (jobs=1, fusion on), shared across tests.
const Artifacts& reference() {
  static const Artifacts a = run_profiled(profiled_options());
  return a;
}

TEST(ProfileCampaignTest, ArtifactsInvariantAcrossJobsAndFusion) {
  const auto& ref = reference();
  EXPECT_NE(ref.profile_json.find("\"schema\": \"genfault-profile/1\""),
            std::string::npos);
  EXPECT_FALSE(ref.flame.empty());
  EXPECT_NE(ref.flame.find(";baseline;"), std::string::npos);

  for (const int jobs : {1, 4}) {
    for (const bool fusion : {true, false}) {
      if (jobs == 1 && fusion) continue;  // that is the reference itself
      auto opt = profiled_options();
      opt.jobs = jobs;
      opt.fusion = fusion;
      const auto run = run_profiled(opt);
      EXPECT_EQ(ref.profile_json, run.profile_json)
          << "jobs=" << jobs << " fusion=" << fusion;
      EXPECT_EQ(ref.flame, run.flame)
          << "jobs=" << jobs << " fusion=" << fusion;
      EXPECT_EQ(ref.manifest, run.manifest)
          << "jobs=" << jobs << " fusion=" << fusion;
    }
  }
}

TEST(ProfileCampaignTest, StoreResumeReplaysIdenticalProfiles) {
  const std::string dir = ::testing::TempDir() + "gfprofile_store";
  std::remove((dir + "/segment.gfs").c_str());
  std::remove((dir + "/wal.gfj").c_str());

  auto opt = profiled_options();
  opt.jobs = 4;
  store::CampaignStore cold_store(dir);
  opt.store = &cold_store;
  const auto cold = run_profiled(opt);
  EXPECT_EQ(cold.profile_json, reference().profile_json);

  // All-hit resume: every profile comes back through the schema-2 codec.
  store::CampaignStore resume_store(dir);
  auto ropt = profiled_options();
  ropt.store = &resume_store;
  CampaignRunner resumed(ropt);
  const auto cells = resumed.run_campaign();
  ASSERT_NE(resumed.store_stats(), nullptr);
  EXPECT_EQ(resumed.store_stats()->misses, 0u);
  EXPECT_GT(resumed.store_stats()->hits, 0u);
  const auto* obs = resumed.campaign_obs();
  ASSERT_NE(obs, nullptr);
  EXPECT_EQ(campaign_profile_json(cells, ropt, *obs), cold.profile_json);
  EXPECT_EQ(campaign_flamegraph(*obs), cold.flame);
}

TEST(ProfileCampaignTest, UnprofiledCampaignCarriesNoProfiles) {
  auto opt = profiled_options();
  opt.profile = false;
  CampaignRunner runner(opt);
  const auto cells = runner.run_campaign();
  const auto* obs = runner.campaign_obs();
  ASSERT_NE(obs, nullptr);
  EXPECT_TRUE(collect_profiles(*obs).empty());
  const auto manifest = campaign_manifest_json(cells, opt, obs);
  EXPECT_NE(manifest.find("\"profiles\": null"), std::string::npos);
  EXPECT_NE(manifest.find("\"profile_stride\": 0"), std::string::npos);
}

// ------------------------------------------------------------------- diff

TEST(DiffTest, SelfDiffIsCleanAndInjectedDriftBreaches) {
  const auto& ref = reference();
  const auto self = diff_campaigns(ref.manifest, ref.manifest);
  ASSERT_TRUE(self.ok) << self.error;
  EXPECT_FALSE(self.breached);
  EXPECT_EQ(self.text, "no drift\n");
  EXPECT_NE(self.json.find("\"breached\": false"), std::string::npos);

  // Inject derived-metric drift well beyond any threshold.
  auto drifted = ref.manifest;
  const auto pos = drifted.find("\"spcf\": ");
  ASSERT_NE(pos, std::string::npos);
  const auto val_start = pos + 8;
  const auto val_end = drifted.find_first_of(",}", val_start);
  drifted.replace(val_start, val_end - val_start, "99999");
  const auto d = diff_campaigns(ref.manifest, drifted);
  ASSERT_TRUE(d.ok) << d.error;
  EXPECT_TRUE(d.breached);
  EXPECT_NE(d.text.find("spcf"), std::string::npos);
  EXPECT_NE(d.text.find("BREACH"), std::string::npos);
  EXPECT_NE(d.json.find("\"breached\": true"), std::string::npos);
}

TEST(DiffTest, MissingCellsAndMalformedInputs) {
  const char* old_man = R"({"schema": "genfault-campaign/1", "cells": [
    {"os": "A", "server": "x", "derived": {"spcf": 10}, "iterations": []},
    {"os": "A", "server": "y", "derived": {"spcf": 20}, "iterations": []}]})";
  const char* new_man = R"({"schema": "genfault-campaign/1", "cells": [
    {"os": "A", "server": "x", "derived": {"spcf": 10}, "iterations": []}]})";
  const auto d = diff_campaigns(old_man, new_man);
  ASSERT_TRUE(d.ok) << d.error;
  EXPECT_TRUE(d.breached);  // a vanished cell is a shape change
  EXPECT_NE(d.text.find("missing cell: A/y"), std::string::npos);
  EXPECT_NE(d.json.find("\"missing_cells\": [\"A/y\"]"), std::string::npos);

  EXPECT_FALSE(diff_campaigns("{", old_man).ok);
  EXPECT_FALSE(diff_campaigns(old_man, "not json").ok);
  EXPECT_FALSE(diff_campaigns(R"({"schema": "other/1", "cells": []})",
                              old_man)
                   .ok);
}

TEST(DiffTest, ThresholdGatesDerivedDrift) {
  const char* old_man = R"({"schema": "genfault-campaign/1", "cells": [
    {"os": "A", "server": "x", "derived": {"thrf": 100}, "iterations": []}]})";
  const char* new_man = R"({"schema": "genfault-campaign/1", "cells": [
    {"os": "A", "server": "x", "derived": {"thrf": 108}, "iterations": []}]})";
  DiffOptions loose;
  loose.threshold_pct = 10.0;
  EXPECT_FALSE(diff_campaigns(old_man, new_man, loose).breached);
  DiffOptions tight;
  tight.threshold_pct = 5.0;
  EXPECT_TRUE(diff_campaigns(old_man, new_man, tight).breached);
}

}  // namespace
}  // namespace gf::depbench
