// Seed-replay plumbing for randomized tests.
//
// Every randomized suite derives its RNG seed through test_seed(), which
// honours the GF_TEST_SEED environment variable: a CI failure that prints
// its seed (via seed_banner + SCOPED_TRACE) replays locally with
//
//   GF_TEST_SEED=0x<seed> ctest -R <test> --output-on-failure
//
// Without the override, the passed fallback keeps the suite deterministic
// run-to-run (seeds are fixed, not wall-clock derived).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace gf::testutil {

inline std::uint64_t test_seed(std::uint64_t fallback) {
  if (const char* env = std::getenv("GF_TEST_SEED")) {
    char* end = nullptr;
    const auto v = std::strtoull(env, &end, 0);
    if (end != env && *end == '\0') return v;
  }
  return fallback;
}

/// SCOPED_TRACE payload: names the seed and the replay command on failure.
inline std::string seed_banner(std::uint64_t seed) {
  char buf[80];
  std::snprintf(buf, sizeof buf, "seed 0x%016llx (replay: GF_TEST_SEED=0x%016llx)",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(seed));
  return buf;
}

}  // namespace gf::testutil
