// Tests for the warm-boot snapshot subsystem: dirty-page tracking and
// snapshot/restore at the VM layer, boot-replay equivalence at the kernel
// layer, copy-on-write disk isolation, scan memoization, and the headline
// property — campaign results bit-identical with snapshots on or off, for
// any worker count.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "depbench/controller.h"
#include "depbench/runner.h"
#include "minic/compiler.h"
#include "os/api.h"
#include "os/kernel.h"
#include "os/layout.h"
#include "snapshot/warmboot.h"
#include "swfit/injector.h"
#include "swfit/scanner.h"
#include "vm/machine.h"

namespace gf {
namespace {

std::vector<std::string> all_api_names() {
  std::vector<std::string> names;
  for (const auto& f : os::api_functions()) names.emplace_back(f.name);
  return names;
}

void expect_same_machine_state(const vm::Machine::State& a,
                               const vm::Machine::State& b) {
  EXPECT_TRUE(a.mem == b.mem) << "memory images differ";
  EXPECT_TRUE(a.regs == b.regs) << "registers differ";
  EXPECT_EQ(a.flags, b.flags);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
}

// ---------------------------------------------------------------------------
// VM layer: dirty bitmap, snapshot/restore, write capture
// ---------------------------------------------------------------------------

TEST(MachineSnapshotTest, CheckedWritesMarkPagesDirty) {
  vm::Machine m;
  const auto base = m.snapshot();  // establish a clean baseline
  EXPECT_FALSE(m.page_dirty(0x2000));

  ASSERT_TRUE(m.write_u64(0x2000, 0xDEADBEEFULL));
  EXPECT_TRUE(m.page_dirty(0x2000));
  EXPECT_FALSE(m.page_dirty(0x3000));

  // A write spanning a page boundary dirties both pages.
  const std::uint8_t buf[16] = {1, 2, 3, 4};
  ASSERT_TRUE(m.write_bytes(0x3FF8, buf, sizeof buf));
  EXPECT_TRUE(m.page_dirty(0x3000));
  EXPECT_TRUE(m.page_dirty(0x4000));

  m.restore(base);
  EXPECT_FALSE(m.page_dirty(0x2000));
  EXPECT_FALSE(m.page_dirty(0x3000));
  std::uint64_t v = 1;
  ASSERT_TRUE(m.read_u64(0x2000, v));
  EXPECT_EQ(v, 0u);
}

TEST(MachineSnapshotTest, RestoreRevertsExactlyToSnapshot) {
  vm::Machine m;
  ASSERT_TRUE(m.write_u64(0x8000, 42));
  m.set_reg(3, -7);
  const auto base = m.snapshot();

  ASSERT_TRUE(m.write_u64(0x8000, 99));
  ASSERT_TRUE(m.write_u64(0x20000, 123));
  m.set_reg(3, 1);
  m.set_cmp_flags(1);
  m.restore(base);

  expect_same_machine_state(m.snapshot(), base);
}

TEST(MachineSnapshotTest, WriteCaptureRecordsEveryCheckedWrite) {
  vm::Machine m;
  m.begin_write_capture();
  ASSERT_TRUE(m.write_u8(0x2000, 7));
  ASSERT_TRUE(m.write_u64(0x2008, 0x0102030405060708ULL));
  const auto spans = m.end_write_capture();

  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].addr, 0x2000u);
  ASSERT_EQ(spans[0].bytes.size(), 1u);
  EXPECT_EQ(spans[0].bytes[0], 7u);
  EXPECT_EQ(spans[1].addr, 0x2008u);
  EXPECT_EQ(spans[1].bytes.size(), 8u);
}

TEST(MachineSnapshotTest, RestoreInvalidatesPredecodedCode) {
  // Two compiles of the same function shape, differing only in an immediate:
  // patching v2's bytes over v1 must change behaviour, and restore() must
  // bring back both the bytes AND the predecoded instructions.
  const auto img1 = minic::compile("fn f(a) { return a + 1; }", "t1", 0x1000);
  const auto img2 = minic::compile("fn f(a) { return a + 2; }", "t2", 0x1000);
  ASSERT_EQ(img1.code().size(), img2.code().size());
  const auto addr = img1.find_symbol("f")->addr;

  vm::Machine m;
  m.load_image(img1);
  const auto base = m.snapshot();
  EXPECT_EQ(m.call(addr, {5}, 1u << 16).ret, 6);

  ASSERT_TRUE(m.patch_code(img1.base(), img2.code().data(), img2.code().size()));
  EXPECT_TRUE(m.page_dirty(addr));
  EXPECT_EQ(m.call(addr, {5}, 1u << 16).ret, 7);

  m.restore(base);
  EXPECT_EQ(m.call(addr, {5}, 1u << 16).ret, 6);
}

// ---------------------------------------------------------------------------
// Kernel layer: boot replay equivalence, corruption fallback, warm rebuild
// ---------------------------------------------------------------------------

/// Identical guest work on both kernels: dirty some heap/handle state so the
/// next reboot actually has pages to reset.
void exercise_guest(os::Kernel& k) {
  os::OsApi api(k);
  ASSERT_TRUE(api.write_cstr(os::OsApi::kPathSlot, "/conf/httpd.conf"));
  const auto h = api.nt_open_file(os::OsApi::kPathSlot);
  ASSERT_TRUE(h.completed);
  const auto p = api.rtl_alloc(256);
  ASSERT_TRUE(p.ok());
  if (h.value >= 0) api.nt_close(h.value);
}

TEST(KernelReplayTest, ReplayRebootIsBitIdenticalToColdReboot) {
  os::Kernel cold(os::OsVersion::kVos2000);
  cold.set_warm_reboot(false);
  os::Kernel warm(os::OsVersion::kVos2000);
  ASSERT_TRUE(warm.warm_reboot());

  // Construction is a cold boot on both; from here `cold` re-executes the
  // boot code every time while `warm` replays the recorded write log.
  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE(round);
    exercise_guest(cold);
    exercise_guest(warm);
    cold.reboot();
    warm.reboot();
    expect_same_machine_state(cold.machine().snapshot(),
                              warm.machine().snapshot());
    EXPECT_EQ(cold.ticks(), warm.ticks());
  }
}

TEST(KernelReplayTest, CorruptedBootCodeFailsLoudlyOnBothPaths) {
  const std::vector<std::uint8_t> garbage(isa::kInstrSize, 0xFF);
  for (const bool warm : {true, false}) {
    SCOPED_TRACE(warm ? "warm" : "cold");
    os::Kernel k(os::OsVersion::kVos2000);
    k.set_warm_reboot(warm);
    const auto* heap_init = k.pristine_image().find_symbol("heap_init");
    ASSERT_NE(heap_init, nullptr);
    ASSERT_TRUE(
        k.machine().patch_code(heap_init->addr, garbage.data(), garbage.size()));
    // The warm path must detect the mutated boot code, fall back to a real
    // cold boot, and fail exactly like the cold path does.
    EXPECT_THROW(k.reboot(), std::runtime_error);
  }
}

TEST(KernelReplayTest, WarmConstructedKernelResumesExactly) {
  os::Kernel original(os::OsVersion::kVos2000);
  exercise_guest(original);
  auto snap = original.snapshot();

  os::Kernel rebuilt(snap);
  EXPECT_EQ(rebuilt.version(), original.version());
  EXPECT_EQ(rebuilt.ticks(), original.ticks());
  expect_same_machine_state(rebuilt.machine().snapshot(), snap.machine);

  // Both kernels keep working and stay in lockstep through further reboots.
  original.reboot();
  rebuilt.reboot();
  expect_same_machine_state(original.machine().snapshot(),
                            rebuilt.machine().snapshot());
  EXPECT_EQ(original.ticks(), rebuilt.ticks());
}

// ---------------------------------------------------------------------------
// Injector interaction: patches mark pages dirty; restore reverts them
// ---------------------------------------------------------------------------

TEST(InjectorDirtyTest, InjectedPatchIsDirtyTrackedAndRestorable) {
  os::Kernel k(os::OsVersion::kVos2000);
  const auto fl = swfit::Scanner{}.scan(k.pristine_image(), all_api_names());
  ASSERT_FALSE(fl.faults.empty());
  const auto& f = fl.faults.front();
  const auto len = static_cast<std::size_t>(f.window()) * isa::kInstrSize;
  const auto off = static_cast<std::size_t>(f.addr - k.pristine_image().base());
  const auto* pristine = k.pristine_image().code().data() + off;

  auto& m = k.machine();
  const auto base = m.snapshot();
  swfit::Injector inj(k);
  ASSERT_TRUE(inj.inject(f));
  EXPECT_TRUE(m.page_dirty(f.addr));
  EXPECT_NE(std::memcmp(m.raw(f.addr, len), pristine, len), 0);

  // restore() must copy the patched code page back AND re-decode it.
  m.restore(base);
  EXPECT_EQ(std::memcmp(m.raw(f.addr, len), pristine, len), 0);
  EXPECT_FALSE(m.page_dirty(f.addr));
}

// ---------------------------------------------------------------------------
// Copy-on-write disk
// ---------------------------------------------------------------------------

TEST(SimDiskCowTest, CopiesShareContentUntilWritten) {
  os::SimDisk a;
  const int id = a.add_file("/www/file0.html", {'a', 'b', 'c', 'd'});

  os::SimDisk b = a;  // snapshot-style copy: shares the content buffer
  const std::uint8_t patch[2] = {'X', 'Y'};
  ASSERT_TRUE(b.write(id, 1, patch, 2).has_value());

  const auto* ca = a.content("/www/file0.html");
  const auto* cb = b.content("/www/file0.html");
  ASSERT_NE(ca, nullptr);
  ASSERT_NE(cb, nullptr);
  EXPECT_EQ(*ca, (std::vector<std::uint8_t>{'a', 'b', 'c', 'd'}));
  EXPECT_EQ(*cb, (std::vector<std::uint8_t>{'a', 'X', 'Y', 'd'}));

  // Writing through the original afterwards must not leak into the copy.
  const std::uint8_t z = 'z';
  ASSERT_TRUE(a.write(id, 0, &z, 1).has_value());
  EXPECT_EQ((*b.content("/www/file0.html"))[0], 'a');
}

// ---------------------------------------------------------------------------
// Scan memoization
// ---------------------------------------------------------------------------

TEST(ScanCacheTest, RepeatScansHitTheMemo) {
  swfit::clear_scan_cache();
  os::Kernel k(os::OsVersion::kVos2000);
  const auto names = all_api_names();

  const auto first = swfit::Scanner{}.scan(k.pristine_image(), names);
  auto stats = swfit::scan_cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 1u);

  const auto second = swfit::Scanner{}.scan(k.pristine_image(), names);
  stats = swfit::scan_cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);

  ASSERT_EQ(first.faults.size(), second.faults.size());
  for (std::size_t i = 0; i < first.faults.size(); ++i) {
    EXPECT_EQ(first.faults[i].addr, second.faults[i].addr);
    EXPECT_EQ(first.faults[i].type, second.faults[i].type);
  }

  // Different options must key a different entry, not a stale hit.
  swfit::ScanOptions opts;
  opts.max_block = opts.max_block > 1 ? opts.max_block - 1 : 2;
  swfit::Scanner{opts}.scan(k.pristine_image(), names);
  stats = swfit::scan_cache_stats();
  EXPECT_EQ(stats.misses, 2u);
  swfit::clear_scan_cache();
}

// ---------------------------------------------------------------------------
// Controller / campaign equivalence: the headline property
// ---------------------------------------------------------------------------

namespace db = depbench;

void expect_same_metrics(const spec::WindowMetrics& a,
                         const spec::WindowMetrics& b) {
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_DOUBLE_EQ(a.duration_ms, b.duration_ms);
  EXPECT_DOUBLE_EQ(a.thr, b.thr);
  EXPECT_DOUBLE_EQ(a.rtm_ms, b.rtm_ms);
  EXPECT_DOUBLE_EQ(a.er_pct, b.er_pct);
  EXPECT_EQ(a.spc, b.spc);
  EXPECT_DOUBLE_EQ(a.cc_pct, b.cc_pct);
}

void expect_same_counters(const db::CampaignCounters& a,
                          const db::CampaignCounters& b) {
  EXPECT_EQ(a.mis, b.mis);
  EXPECT_EQ(a.kns, b.kns);
  EXPECT_EQ(a.kcp, b.kcp);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.self_restarts, b.self_restarts);
}

void expect_same_records(const std::vector<trace::ActivationRecord>& a,
                         const std::vector<trace::ActivationRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a[i].fault_index, b[i].fault_index);
    EXPECT_EQ(a[i].type, b[i].type);
    EXPECT_EQ(a[i].function, b[i].function);
    EXPECT_EQ(a[i].hits, b[i].hits);
    EXPECT_EQ(a[i].first_hit_cycle, b[i].first_hit_cycle);
    EXPECT_EQ(a[i].edge_count, b[i].edge_count);
    EXPECT_TRUE(a[i].edges == b[i].edges);
    EXPECT_EQ(a[i].outcome, b[i].outcome);
  }
}

TEST(SnapshotEquivalenceTest, WarmControllerIterationMatchesColdBoot) {
  constexpr auto kVersion = os::OsVersion::kVos2000;
  swfit::Faultload fl;
  {
    os::Kernel scan_kernel(kVersion);
    fl = swfit::Scanner{}.scan(scan_kernel.pristine_image(), all_api_names());
  }
  db::ControllerConfig cfg;
  cfg.time_scale = 0.2;
  cfg.fault_stride = 17;
  cfg.trace = true;  // first_hit_cycle is an *absolute* VM cycle: the
                     // strictest observable the warm path could get wrong

  db::Controller cold(kVersion, "apex", cfg);
  const auto want = cold.run_iteration(fl, 42);

  const auto snap = snapshot::capture_warm_boot(kVersion, "apex");
  db::Controller warm(snap, cfg);
  const auto got = warm.run_iteration(fl, 42);

  expect_same_metrics(want.metrics, got.metrics);
  expect_same_counters(want.counters, got.counters);
  expect_same_records(want.activations, got.activations);
}

TEST(SnapshotEquivalenceTest, CampaignIdenticalWithSnapshotsOnOrOffForAnyJobs) {
  db::RunnerOptions opt;
  opt.versions = {os::OsVersion::kVos2000};
  opt.servers = {"apex", "abyssal"};
  opt.iterations = 1;
  opt.stride = 17;
  opt.time_scale = 0.2;
  opt.baseline_window_ms = 15000;
  opt.seed = 42;
  opt.trace = true;

  opt.warm_boot = false;
  opt.jobs = 1;
  const auto cold = db::CampaignRunner(opt).run_campaign();
  opt.warm_boot = true;
  const auto warm1 = db::CampaignRunner(opt).run_campaign();
  opt.jobs = 4;
  const auto warm4 = db::CampaignRunner(opt).run_campaign();

  for (const auto* run : {&warm1, &warm4}) {
    ASSERT_EQ(cold.size(), run->size());
    for (std::size_t c = 0; c < cold.size(); ++c) {
      SCOPED_TRACE(cold[c].os_name + "/" + cold[c].server_name);
      EXPECT_EQ(cold[c].server_name, (*run)[c].server_name);
      expect_same_metrics(cold[c].baseline, (*run)[c].baseline);
      ASSERT_EQ(cold[c].iterations.size(), (*run)[c].iterations.size());
      for (std::size_t i = 0; i < cold[c].iterations.size(); ++i) {
        expect_same_metrics(cold[c].iterations[i].metrics,
                            (*run)[c].iterations[i].metrics);
        expect_same_counters(cold[c].iterations[i].counters,
                             (*run)[c].iterations[i].counters);
        expect_same_records(cold[c].iterations[i].activations,
                            (*run)[c].iterations[i].activations);
      }
    }
  }
}

}  // namespace
}  // namespace gf
