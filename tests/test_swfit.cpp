#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "minic/compiler.h"
#include "os/api.h"
#include "os/kernel.h"
#include "swfit/field_study.h"
#include "swfit/injector.h"
#include "swfit/scanner.h"
#include "vm/machine.h"

namespace gf::swfit {
namespace {

// ---------------------------------------------------------------------------
// Fault model (Table 1)
// ---------------------------------------------------------------------------

TEST(FaultTypes, TableHasTwelveTypes) {
  EXPECT_EQ(fault_type_table().size(), 12u);
}

TEST(FaultTypes, TotalCoverageMatchesPaper) {
  EXPECT_NEAR(total_field_coverage(), 50.69, 0.01);
}

TEST(FaultTypes, ParseRoundTrip) {
  for (const auto& info : fault_type_table()) {
    const auto t = parse_fault_type(info.name);
    ASSERT_TRUE(t.has_value()) << info.name;
    EXPECT_EQ(*t, info.type);
  }
  EXPECT_FALSE(parse_fault_type("BOGUS").has_value());
}

TEST(FaultTypes, OdcClassesMatchPaper) {
  EXPECT_EQ(fault_type_info(FaultType::kMVI).odc, OdcClass::kAssignment);
  EXPECT_EQ(fault_type_info(FaultType::kMIA).odc, OdcClass::kChecking);
  EXPECT_EQ(fault_type_info(FaultType::kMFC).odc, OdcClass::kAlgorithm);
  EXPECT_EQ(fault_type_info(FaultType::kWAEP).odc, OdcClass::kInterface);
  EXPECT_EQ(fault_type_info(FaultType::kWPFV).odc, OdcClass::kInterface);
}

TEST(FaultTypes, NoExtraneousTypesIncluded) {
  for (const auto& info : fault_type_table()) {
    EXPECT_NE(info.nature, ConstructNature::kExtraneous) << info.name;
  }
}

// ---------------------------------------------------------------------------
// Field study (Table 1 synthesis)
// ---------------------------------------------------------------------------

TEST(FieldStudy, DeterministicForSeed) {
  const auto a = FieldStudy::generate(1000, 7);
  const auto b = FieldStudy::generate(1000, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].type, b[i].type);
  }
}

TEST(FieldStudy, DistributionMatchesPublishedData) {
  const auto records = FieldStudy::generate(200000, 42);
  for (const auto& row : FieldStudy::tabulate(records)) {
    const auto expected = fault_type_info(row.type).field_coverage;
    EXPECT_NEAR(row.pct, expected, 0.5) << fault_type_name(row.type);
  }
  EXPECT_NEAR(FieldStudy::total_coverage(records), 50.69, 1.0);
}

TEST(FieldStudy, ExtraneousShareIsNegligible) {
  const auto records = FieldStudy::generate(100000, 3);
  const auto share = FieldStudy::extraneous_share(records);
  EXPECT_GT(share, 0.0);
  EXPECT_LT(share, 4.0);  // the paper excludes them as a very small portion
}

TEST(FieldStudy, EmptyInputsAreSafe) {
  EXPECT_TRUE(FieldStudy::tabulate({}).empty());
  EXPECT_EQ(FieldStudy::total_coverage({}), 0.0);
  EXPECT_EQ(FieldStudy::extraneous_share({}), 0.0);
}

// ---------------------------------------------------------------------------
// Operator semantics on compiled MiniC snippets
// ---------------------------------------------------------------------------

struct Compiled {
  isa::Image img;
  std::uint64_t fn_addr;
};

Compiled compile_fn(const std::string& src, const std::string& fn = "f") {
  auto img = minic::compile(src, "t", 0x1000);
  const auto* sym = img.find_symbol(fn);
  EXPECT_NE(sym, nullptr);
  return {std::move(img), sym->addr};
}

std::int64_t run_image(const isa::Image& img, std::uint64_t addr,
                       const std::vector<std::int64_t>& args) {
  vm::Machine m;
  m.load_image(img);
  const auto r = m.call(addr, args, 1u << 20);
  EXPECT_TRUE(r.ok()) << vm::trap_name(r.trap);
  return r.ret;
}

Faultload scan_of(const isa::Image& img) { return Scanner{}.scan_all(img); }

std::vector<FaultLocation> faults_of_type(const Faultload& fl, FaultType t) {
  std::vector<FaultLocation> out;
  for (const auto& f : fl.faults) {
    if (f.type == t) out.push_back(f);
  }
  return out;
}

TEST(Operators, MviRemovesInitialization) {
  // x's initialization sets the return base; without it, the stale stack
  // slot (0 on a fresh machine) is used.
  auto c = compile_fn("fn f() { var x = 40; var y = 2; return x + y; }");
  const auto fl = scan_of(c.img);
  const auto mvi = faults_of_type(fl, FaultType::kMVI);
  ASSERT_EQ(mvi.size(), 2u);  // both initializations are first stores
  EXPECT_EQ(run_image(c.img, c.fn_addr, {}), 42);
  ASSERT_TRUE(apply_fault(c.img, mvi[0]));
  EXPECT_EQ(run_image(c.img, c.fn_addr, {}), 2);  // x missing -> 0 + 2
}

TEST(Operators, MvavTargetsLaterAssignmentOnly) {
  auto c = compile_fn(R"(
    fn f(a) {
      var x = 1;
      if (a > 0) { x = 7; }
      return x;
    }
  )");
  const auto fl = scan_of(c.img);
  const auto mvav = faults_of_type(fl, FaultType::kMVAV);
  ASSERT_EQ(mvav.size(), 1u);  // only the x = 7 assignment
  EXPECT_EQ(run_image(c.img, c.fn_addr, {5}), 7);
  ASSERT_TRUE(apply_fault(c.img, mvav[0]));
  EXPECT_EQ(run_image(c.img, c.fn_addr, {5}), 1);  // assignment missing
}

TEST(Operators, MvaeRemovesExpressionAssignment) {
  auto c = compile_fn("fn f(a, b) { var x = 1; x = a + b; return x; }");
  const auto fl = scan_of(c.img);
  const auto mvae = faults_of_type(fl, FaultType::kMVAE);
  ASSERT_GE(mvae.size(), 1u);
  EXPECT_EQ(run_image(c.img, c.fn_addr, {20, 22}), 42);
  ASSERT_TRUE(apply_fault(c.img, mvae[0]));
  EXPECT_EQ(run_image(c.img, c.fn_addr, {20, 22}), 1);
}

TEST(Operators, MiaMakesBodyUnconditional) {
  auto c = compile_fn(R"(
    fn f(a) {
      var r = 0;
      if (a > 10) { r = 1; }
      return r;
    }
  )");
  const auto fl = scan_of(c.img);
  const auto mia = faults_of_type(fl, FaultType::kMIA);
  ASSERT_EQ(mia.size(), 1u);
  EXPECT_EQ(run_image(c.img, c.fn_addr, {5}), 0);
  ASSERT_TRUE(apply_fault(c.img, mia[0]));
  // Guard removed: the body executes regardless of the condition.
  EXPECT_EQ(run_image(c.img, c.fn_addr, {5}), 1);
  EXPECT_EQ(run_image(c.img, c.fn_addr, {15}), 1);
}

TEST(Operators, MifsSkipsConstructEntirely) {
  auto c = compile_fn(R"(
    fn f(a) {
      var r = 0;
      if (a > 10) { r = 1; }
      return r;
    }
  )");
  const auto fl = scan_of(c.img);
  const auto mifs = faults_of_type(fl, FaultType::kMIFS);
  ASSERT_EQ(mifs.size(), 1u);
  ASSERT_TRUE(apply_fault(c.img, mifs[0]));
  EXPECT_EQ(run_image(c.img, c.fn_addr, {15}), 0);  // construct gone
  EXPECT_EQ(run_image(c.img, c.fn_addr, {5}), 0);
}

TEST(Operators, IfConstructsWithReturnBodiesAreEligible) {
  // Early-return validation is the archetypal OS-code if-construct; the
  // epilogue-jump body must not be mistaken for an if/else.
  auto c = compile_fn(R"(
    fn f(a) {
      if (a < 0) { return -1; }
      return a * 2;
    }
  )");
  const auto fl = scan_of(c.img);
  ASSERT_EQ(faults_of_type(fl, FaultType::kMIFS).size(), 1u);
  const auto mifs = faults_of_type(fl, FaultType::kMIFS)[0];
  ASSERT_TRUE(apply_fault(c.img, mifs));
  // Validation removed: negative input is no longer rejected.
  EXPECT_EQ(run_image(c.img, c.fn_addr, {-4}), -8);
}

TEST(Operators, LoopsAreNotIfConstructs) {
  auto c = compile_fn(R"(
    fn f(n) {
      var s = 0;
      var i = 0;
      while (i < n) { s = s + i; i = i + 1; }
      return s;
    }
  )");
  const auto fl = scan_of(c.img);
  // The while-header branch must not be matched by MIA/MIFS (removing a
  // loop is not the "missing if" fault type).
  for (const auto& f : faults_of_type(fl, FaultType::kMIA)) {
    ASSERT_TRUE(apply_fault(c.img, f));
    vm::Machine m;
    m.load_image(c.img);
    const auto r = m.call(c.fn_addr, {3}, 100000);
    // If it matched the loop header, this would run forever (cycle limit).
    EXPECT_NE(r.trap, vm::Trap::kCycleLimit);
    ASSERT_TRUE(remove_fault(c.img, f));
  }
}

TEST(Operators, MlacDropsFirstAndClause) {
  auto c = compile_fn(R"(
    fn f(a, b) {
      var r = 0;
      if (a > 0 && b > 0) { r = 1; }
      return r;
    }
  )");
  const auto fl = scan_of(c.img);
  const auto mlac = faults_of_type(fl, FaultType::kMLAC);
  ASSERT_EQ(mlac.size(), 1u);
  EXPECT_EQ(run_image(c.img, c.fn_addr, {-1, 5}), 0);
  ASSERT_TRUE(apply_fault(c.img, mlac[0]));
  // First clause gone: only b is checked.
  EXPECT_EQ(run_image(c.img, c.fn_addr, {-1, 5}), 1);
  EXPECT_EQ(run_image(c.img, c.fn_addr, {-1, -5}), 0);
}

TEST(Operators, MfcRemovesCallWithUnusedResult) {
  auto c = compile_fn(R"(
    fn bump(p) { store(p, load(p) + 1); return 0; }
    fn f(p) {
      store(p, 10);
      bump(p);
      var v = load(p);
      return v;
    }
  )");
  const auto fl = scan_of(c.img);
  std::vector<FaultLocation> mfc;
  for (const auto& f : faults_of_type(fl, FaultType::kMFC)) {
    if (f.function == "f") mfc.push_back(f);
  }
  ASSERT_EQ(mfc.size(), 1u);
  EXPECT_EQ(run_image(c.img, c.fn_addr, {0x100000}), 11);
  ASSERT_TRUE(apply_fault(c.img, mfc[0]));
  EXPECT_EQ(run_image(c.img, c.fn_addr, {0x100000}), 10);  // call missing
}

TEST(Operators, MfcSkipsCallsWhoseResultIsUsed) {
  auto c = compile_fn(R"(
    fn g(a) { return a + 1; }
    fn f(a) { return g(a); }
  )");
  const auto fl = scan_of(c.img);
  for (const auto& f : faults_of_type(fl, FaultType::kMFC)) {
    EXPECT_NE(f.function, "f");  // result flows into the return value
  }
}

TEST(Operators, WvavChangesAssignedConstant) {
  auto c = compile_fn("fn f() { var x = 41; return x; }");
  const auto fl = scan_of(c.img);
  const auto wvav = faults_of_type(fl, FaultType::kWVAV);
  ASSERT_EQ(wvav.size(), 1u);
  ASSERT_TRUE(apply_fault(c.img, wvav[0]));
  EXPECT_EQ(run_image(c.img, c.fn_addr, {}), 42);  // off by one
}

TEST(Operators, WlecInvertsCondition) {
  auto c = compile_fn(R"(
    fn f(a) {
      var r = 0;
      if (a > 10) { r = 1; }
      return r;
    }
  )");
  const auto fl = scan_of(c.img);
  const auto wlec = faults_of_type(fl, FaultType::kWLEC);
  ASSERT_EQ(wlec.size(), 1u);
  ASSERT_TRUE(apply_fault(c.img, wlec[0]));
  EXPECT_EQ(run_image(c.img, c.fn_addr, {15}), 0);
  EXPECT_EQ(run_image(c.img, c.fn_addr, {5}), 1);
}

TEST(Operators, WaepChangesParameterExpression) {
  auto c = compile_fn(R"(
    fn g(v) { return v; }
    fn f(a, b) { return g(a + b); }
  )");
  const auto fl = scan_of(c.img);
  std::vector<FaultLocation> waep;
  for (const auto& f : faults_of_type(fl, FaultType::kWAEP)) {
    if (f.function == "f") waep.push_back(f);
  }
  ASSERT_EQ(waep.size(), 1u);
  EXPECT_EQ(run_image(c.img, c.fn_addr, {30, 12}), 42);
  ASSERT_TRUE(apply_fault(c.img, waep[0]));
  EXPECT_EQ(run_image(c.img, c.fn_addr, {30, 12}), 18);  // a - b
}

TEST(Operators, WpfvSwapsParameterVariable) {
  auto c = compile_fn(R"(
    fn g(v) { return v; }
    fn f() {
      var x = 1;
      var y = 2;
      var r = g(x);
      return r * 10 + y;
    }
  )");
  const auto fl = scan_of(c.img);
  std::vector<FaultLocation> wpfv;
  for (const auto& f : faults_of_type(fl, FaultType::kWPFV)) {
    if (f.function == "f") wpfv.push_back(f);
  }
  ASSERT_GE(wpfv.size(), 1u);
  EXPECT_EQ(run_image(c.img, c.fn_addr, {}), 12);
  ASSERT_TRUE(apply_fault(c.img, wpfv[0]));
  const auto mutated = run_image(c.img, c.fn_addr, {});
  EXPECT_NE(mutated, 12);  // a different local was passed
}

TEST(Operators, MutationsPreserveWindowSize) {
  os::Kernel k(os::OsVersion::kVos2000);
  const auto fl = Scanner{}.scan_all(k.pristine_image());
  for (const auto& f : fl.faults) {
    EXPECT_EQ(f.original.size(), f.mutated.size());
    EXPECT_GE(f.window(), 1u);
    EXPECT_LE(f.window(), 8u);
  }
}

// ---------------------------------------------------------------------------
// Scanner on the real OS images
// ---------------------------------------------------------------------------

class ScannerOsTest : public ::testing::TestWithParam<os::OsVersion> {};

INSTANTIATE_TEST_SUITE_P(BothVersions, ScannerOsTest,
                         ::testing::Values(os::OsVersion::kVos2000,
                                           os::OsVersion::kVosXp),
                         [](const auto& info) {
                           return info.param == os::OsVersion::kVos2000
                                      ? "Vos2000"
                                      : "VosXp";
                         });

std::vector<std::string> api_names() {
  std::vector<std::string> names;
  for (const auto& f : os::api_functions()) names.push_back(f.name);
  return names;
}

TEST_P(ScannerOsTest, DeterministicFaultloadGeneration) {
  os::Kernel k(GetParam());
  Scanner s;
  const auto a = s.scan(k.pristine_image(), api_names());
  const auto b = s.scan(k.pristine_image(), api_names());
  EXPECT_EQ(a.serialize(), b.serialize());
}

TEST_P(ScannerOsTest, AllTwelveFaultTypesPresent) {
  os::Kernel k(GetParam());
  const auto fl = Scanner{}.scan(k.pristine_image(), api_names());
  const auto counts = fl.counts_by_type();
  for (int i = 0; i < kNumFaultTypes; ++i) {
    EXPECT_GT(counts[static_cast<std::size_t>(i)], 0)
        << fault_type_name(static_cast<FaultType>(i));
  }
}

TEST_P(ScannerOsTest, FaultsLieWithinTheirFunctions) {
  os::Kernel k(GetParam());
  const auto fl = Scanner{}.scan(k.pristine_image(), api_names());
  for (const auto& f : fl.faults) {
    const auto* sym = k.pristine_image().find_symbol(f.function);
    ASSERT_NE(sym, nullptr) << f.function;
    EXPECT_GE(f.addr, sym->addr);
    EXPECT_LE(f.addr + f.window() * isa::kInstrSize, sym->addr + sym->size);
  }
}

TEST_P(ScannerOsTest, FaultsSortedByAddress) {
  os::Kernel k(GetParam());
  const auto fl = Scanner{}.scan(k.pristine_image(), api_names());
  EXPECT_TRUE(std::is_sorted(fl.faults.begin(), fl.faults.end(),
                             [](const auto& a, const auto& b) {
                               return a.addr < b.addr ||
                                      (a.addr == b.addr && a.type < b.type);
                             }));
}

TEST(ScannerVersions, XpFaultloadIsLarger) {
  os::Kernel k2000(os::OsVersion::kVos2000);
  os::Kernel kxp(os::OsVersion::kVosXp);
  const auto f2000 = Scanner{}.scan(k2000.pristine_image(), api_names());
  const auto fxp = Scanner{}.scan(kxp.pristine_image(), api_names());
  // The paper's Table 3: the XP faultload is substantially larger (~1.7x).
  EXPECT_GT(fxp.faults.size(), f2000.faults.size() * 5 / 4);
}

TEST(ScannerOptions, UnknownFunctionsIgnored) {
  os::Kernel k(os::OsVersion::kVos2000);
  const auto fl = Scanner{}.scan(k.pristine_image(), {"NoSuchFn"});
  EXPECT_TRUE(fl.faults.empty());
}

// ---------------------------------------------------------------------------
// Faultload serialization
// ---------------------------------------------------------------------------

TEST(FaultloadIo, SerializeParseRoundTrip) {
  os::Kernel k(os::OsVersion::kVos2000);
  const auto fl = Scanner{}.scan(k.pristine_image(), api_names());
  const auto text = fl.serialize();
  const auto back = Faultload::parse(text);
  EXPECT_EQ(back.target, fl.target);
  EXPECT_EQ(back.digest, fl.digest);
  ASSERT_EQ(back.faults.size(), fl.faults.size());
  EXPECT_EQ(back.serialize(), text);
  EXPECT_TRUE(back.matches(k.pristine_image()));
}

TEST(FaultloadIo, DigestGuardsAgainstWrongTarget) {
  os::Kernel k2000(os::OsVersion::kVos2000);
  os::Kernel kxp(os::OsVersion::kVosXp);
  const auto fl = Scanner{}.scan(k2000.pristine_image(), api_names());
  EXPECT_TRUE(fl.matches(k2000.pristine_image()));
  EXPECT_FALSE(fl.matches(kxp.pristine_image()));
}

TEST(FaultloadIo, ParseRejectsGarbage) {
  EXPECT_THROW(Faultload::parse("not a faultload"), FaultloadError);
  EXPECT_THROW(Faultload::parse("faultload v1\ncount 3\n"), FaultloadError);
  EXPECT_THROW(Faultload::parse("faultload v1\nbogus x\ncount 0\n"),
               FaultloadError);
  EXPECT_THROW(
      Faultload::parse("faultload v1\ncount 1\nfault XXXX f 0 1 00 00\n"),
      FaultloadError);
}

TEST(FaultloadIo, CountsByTypeSumsToTotal) {
  os::Kernel k(os::OsVersion::kVos2000);
  const auto fl = Scanner{}.scan(k.pristine_image(), api_names());
  const auto counts = fl.counts_by_type();
  int sum = 0;
  for (const int c : counts) sum += c;
  EXPECT_EQ(sum, static_cast<int>(fl.faults.size()));
}

// ---------------------------------------------------------------------------
// Injector
// ---------------------------------------------------------------------------

TEST(InjectorTest, InjectAndRestoreIsByteExact) {
  os::Kernel k(os::OsVersion::kVos2000);
  const auto fl = Scanner{}.scan(k.pristine_image(), api_names());
  const auto digest = k.pristine_image().code_digest();
  Injector inj(k);
  ASSERT_FALSE(fl.faults.empty());
  for (std::size_t i = 0; i < std::min<std::size_t>(fl.faults.size(), 50); ++i) {
    ASSERT_TRUE(inj.inject(fl.faults[i]));
    EXPECT_NE(k.active_image().code_digest(), digest);
    inj.restore();
    EXPECT_EQ(k.active_image().code_digest(), digest);
  }
}

TEST(InjectorTest, SequentialInjectSwapsFaults) {
  os::Kernel k(os::OsVersion::kVos2000);
  const auto fl = Scanner{}.scan(k.pristine_image(), api_names());
  ASSERT_GE(fl.faults.size(), 2u);
  Injector inj(k);
  ASSERT_TRUE(inj.inject(fl.faults[0]));
  ASSERT_TRUE(inj.inject(fl.faults[1]));  // implicit restore of fault 0
  EXPECT_EQ(inj.active()->addr, fl.faults[1].addr);
  inj.restore();
  EXPECT_EQ(k.active_image().code_digest(), k.pristine_image().code_digest());
  EXPECT_EQ(inj.injections(), 2u);
}

TEST(InjectorTest, DestructorRestores) {
  os::Kernel k(os::OsVersion::kVos2000);
  const auto fl = Scanner{}.scan(k.pristine_image(), api_names());
  {
    Injector inj(k);
    ASSERT_TRUE(inj.inject(fl.faults[0]));
  }
  EXPECT_EQ(k.active_image().code_digest(), k.pristine_image().code_digest());
}

TEST(InjectorTest, RejectsMismatchedOriginal) {
  os::Kernel k(os::OsVersion::kVos2000);
  auto fl = Scanner{}.scan(k.pristine_image(), api_names());
  auto fault = fl.faults[0];
  fault.original[0].imm ^= 0x55;  // stale faultload
  Injector inj(k);
  EXPECT_FALSE(inj.inject(fault));
  EXPECT_EQ(k.active_image().code_digest(), k.pristine_image().code_digest());
}

TEST(InjectorTest, InjectedFaultChangesVmBehaviorAndRestores) {
  os::Kernel k(os::OsVersion::kVos2000);
  os::OsApi api(k);
  // Find a WLEC fault in RtlAllocateHeap's size guard: with the branch
  // inverted, valid sizes get rejected or invalid accepted.
  const auto fl = Scanner{}.scan(k.pristine_image(), {"RtlAllocateHeap"});
  Injector inj(k);
  bool behavior_changed = false;
  for (const auto& f : fl.faults) {
    ASSERT_TRUE(inj.inject(f));
    const auto r = api.rtl_alloc(64);
    const bool normal = r.completed && r.value > 0;
    inj.restore();
    k.reboot();  // clear any heap corruption the fault caused
    if (!normal) behavior_changed = true;
  }
  EXPECT_TRUE(behavior_changed);
  // After restore + reboot the OS is healthy again.
  EXPECT_GT(api.rtl_alloc(64).value, 0);
}

// Whole-faultload containment sweep: every fault can be injected, exercised
// and restored without ever harming the host or the harness.
class FaultSweepTest : public ::testing::TestWithParam<os::OsVersion> {};

INSTANTIATE_TEST_SUITE_P(BothVersions, FaultSweepTest,
                         ::testing::Values(os::OsVersion::kVos2000,
                                           os::OsVersion::kVosXp),
                         [](const auto& info) {
                           return info.param == os::OsVersion::kVos2000
                                      ? "Vos2000"
                                      : "VosXp";
                         });

TEST_P(FaultSweepTest, EveryFaultIsContainedAndRestorable) {
  os::Kernel k(GetParam());
  os::OsApi api(k, /*cycle_budget=*/200000);
  k.disk().add_file("/probe", {'d', 'a', 't', 'a'});
  const auto fl = Scanner{}.scan(k.pristine_image(), api_names());
  const auto digest = k.pristine_image().code_digest();
  Injector inj(k);
  int completed = 0, crashed = 0, hung = 0;
  for (const auto& f : fl.faults) {
    ASSERT_TRUE(inj.inject(f)) << fault_type_name(f.type) << "@" << f.addr;
    // Exercise a representative API mix under the fault.
    api.write_cstr(os::OsApi::kPathSlot, "/probe");
    const auto open = api.nt_open_file(os::OsApi::kPathSlot);
    if (open.completed) {
      if (open.value > 0) {
        api.nt_read_file(open.value, 0x150000, 4);
        api.nt_close(open.value);
      }
      ++completed;
    } else if (open.hung()) {
      ++hung;
    } else {
      ++crashed;
    }
    const auto alloc = api.rtl_alloc(128);
    if (alloc.completed && alloc.value > 0) {
      api.rtl_free(static_cast<std::uint64_t>(alloc.value));
    }
    inj.restore();
    ASSERT_EQ(k.active_image().code_digest(), digest);
    k.reboot();
  }
  // The sweep must observe all three consequence classes somewhere.
  EXPECT_GT(completed, 0);
  EXPECT_GT(crashed + hung, 0);
}

}  // namespace
}  // namespace gf::swfit
