// Tests for the SPECWeb99-like layer: file set, workload generator, metrics
// and the discrete-event client.
#include <gtest/gtest.h>

#include <map>

#include "os/api.h"
#include "os/kernel.h"
#include "spec/client.h"

namespace gf::spec {
namespace {

TEST(FilesetTest, PopulatesAllClasses) {
  os::SimDisk disk;
  Fileset fs(disk, {4, 9});
  EXPECT_EQ(fs.files().size(), 4u * 4u * 9u);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(fs.class_members(c).size(), 36u) << c;
  }
}

TEST(FilesetTest, FilesExistOnDiskWithExpectedContent) {
  os::SimDisk disk;
  Fileset fs(disk);
  for (const auto& f : fs.files()) {
    const auto* content = disk.content(f.path);
    ASSERT_NE(content, nullptr) << f.path;
    ASSERT_EQ(content->size(), f.size);
    const auto seed = web::path_seed(f.path);
    for (std::size_t i = 0; i < content->size(); i += 97) {
      EXPECT_EQ((*content)[i], web::expected_content_byte(seed, i));
    }
  }
}

TEST(FilesetTest, SizesFollowClassRule) {
  EXPECT_EQ(Fileset::file_size(0, 0), 256u);
  EXPECT_EQ(Fileset::file_size(3, 5), 64u * 1024u);
  EXPECT_LT(Fileset::file_size(2, 8), 64u * 1024u);  // fits the body cap
}

TEST(FilesetTest, MeanSizeNearSpecWebScale) {
  os::SimDisk disk;
  Fileset fs(disk);
  // ~14 KiB expected transfer (scaled SPECWeb99); the timing model is
  // calibrated around this value.
  EXPECT_GT(fs.mean_file_size(), 10000.0);
  EXPECT_LT(fs.mean_file_size(), 20000.0);
}

TEST(WorkloadTest, DeterministicForSeed) {
  os::SimDisk disk;
  Fileset fs(disk);
  WorkloadGenerator a(fs, 9), b(fs, 9);
  for (int i = 0; i < 200; ++i) {
    const auto ra = a.next();
    const auto rb = b.next();
    EXPECT_EQ(ra.path, rb.path);
    EXPECT_EQ(ra.method, rb.method);
    EXPECT_EQ(ra.dynamic, rb.dynamic);
  }
}

TEST(WorkloadTest, MixMatchesSpecWeb) {
  os::SimDisk disk;
  Fileset fs(disk);
  WorkloadGenerator gen(fs, 3);
  int posts = 0, dynamics = 0, statics = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto req = gen.next();
    if (req.method == web::Method::kPost) {
      ++posts;
      EXPECT_FALSE(req.body.empty());
    } else if (req.dynamic) {
      ++dynamics;
    } else {
      ++statics;
    }
  }
  EXPECT_NEAR(statics * 100.0 / n, 70.0, 2.0);
  EXPECT_NEAR(dynamics * 100.0 / n, 25.0, 2.0);
  EXPECT_NEAR(posts * 100.0 / n, 5.0, 1.0);
}

TEST(WorkloadTest, AllPathsExistInFileset) {
  os::SimDisk disk;
  Fileset fs(disk);
  WorkloadGenerator gen(fs, 5);
  for (int i = 0; i < 2000; ++i) {
    const auto req = gen.next();
    EXPECT_GT(gen.size_of(req.path), 0u) << req.path;
  }
}

TEST(WorkloadTest, DirectoryPopularityIsZipf) {
  os::SimDisk disk;
  Fileset fs(disk, {6, 9});
  WorkloadGenerator gen(fs, 13);
  std::map<std::string, int> dir_counts;
  for (int i = 0; i < 20000; ++i) {
    const auto req = gen.next();
    dir_counts[req.path.substr(0, req.path.find_last_of('/'))]++;
  }
  EXPECT_GT(dir_counts["/file_set/dir00000"], dir_counts["/file_set/dir00005"]);
}

TEST(MetricsTest, ConformanceRules) {
  ConnStats good{100, 0, 2000000};  // 2 MB over 30 s -> 533 kbps
  EXPECT_TRUE(is_conforming(good, 30000, 320, 1.0));
  ConnStats slow{100, 0, 500000};  // 133 kbps
  EXPECT_FALSE(is_conforming(slow, 30000, 320, 1.0));
  ConnStats errory{100, 2, 2000000};  // 2% errors
  EXPECT_FALSE(is_conforming(errory, 30000, 320, 1.0));
  ConnStats idle{0, 0, 0};
  EXPECT_FALSE(is_conforming(idle, 30000, 320, 1.0));
}

TEST(MetricsTest, FinalizeComputesRates) {
  WindowMetrics m;
  m.duration_ms = 10000;
  m.ops = 100;
  m.errors = 10;
  finalize_metrics(m, {}, 9000.0, 320, 1.0);
  EXPECT_DOUBLE_EQ(m.thr, 10.0);      // all ops per second
  EXPECT_DOUBLE_EQ(m.rtm_ms, 100.0);  // latency over the 90 successes
  EXPECT_DOUBLE_EQ(m.er_pct, 10.0);
}

TEST(MetricsTest, AverageMetrics) {
  WindowMetrics a, b;
  a.thr = 100;
  b.thr = 110;
  a.spc = 30;
  b.spc = 35;
  a.er_pct = 4;
  b.er_pct = 6;
  const auto avg = average_metrics({a, b});
  EXPECT_DOUBLE_EQ(avg.thr, 105.0);
  EXPECT_EQ(avg.spc, 33);  // rounded
  EXPECT_DOUBLE_EQ(avg.er_pct, 5.0);
  EXPECT_EQ(average_metrics({}).ops, 0u);
}

class ClientTest : public ::testing::Test {
 protected:
  ClientTest()
      : kernel_(os::OsVersion::kVos2000),
        api_(kernel_),
        fileset_(kernel_.disk()),
        gen_(fileset_, 21),
        server_(web::make_server("apex", api_)) {}

  os::Kernel kernel_;
  os::OsApi api_;
  Fileset fileset_;
  WorkloadGenerator gen_;
  std::unique_ptr<web::WebServer> server_;
};

TEST_F(ClientTest, BaselineRunHasNoErrors) {
  ASSERT_TRUE(server_->start());
  SpecClient client;
  const auto m = client.run_window(*server_, gen_, 0, 20000);
  EXPECT_GT(m.ops, 1000u);
  EXPECT_EQ(m.errors, 0u);
  EXPECT_GT(m.thr, 50.0);
  EXPECT_GT(m.rtm_ms, 100.0);
  EXPECT_EQ(m.spc, client.config().connections);
}

TEST_F(ClientTest, DeterministicForSameSeed) {
  ASSERT_TRUE(server_->start());
  SpecClient client;
  WorkloadGenerator g1(fileset_, 77), g2(fileset_, 77);
  const auto m1 = client.run_window(*server_, g1, 0, 10000);
  server_->stop();
  kernel_.reboot();
  ASSERT_TRUE(server_->start());
  const auto m2 = client.run_window(*server_, g2, 0, 10000);
  EXPECT_EQ(m1.ops, m2.ops);
  EXPECT_EQ(m1.errors, m2.errors);
  EXPECT_EQ(m1.bytes, m2.bytes);
}

TEST_F(ClientTest, TickCallbackObservesSimTime) {
  ASSERT_TRUE(server_->start());
  SpecClient client;
  double last = -1;
  bool monotone = true;
  const auto m = client.run_window(*server_, gen_, 0, 5000, [&](double now) {
    monotone = monotone && now >= last;
    last = now;
  });
  EXPECT_TRUE(monotone);
  EXPECT_GT(last, 0.0);
  EXPECT_LE(last, m.duration_ms);
}

TEST_F(ClientTest, DownServerProducesErrors) {
  // Never started: every op is refused.
  SpecClient client;
  const auto m = client.run_window(*server_, gen_, 0, 5000);
  EXPECT_EQ(m.ops, m.errors);
  EXPECT_EQ(m.spc, 0);
}

TEST_F(ClientTest, ValidateChecksStatusSizeAndContent) {
  const auto& f = fileset_.files()[0];
  web::Request req{web::Method::kGet, f.path, false, ""};
  web::Response good{200, web::expected_body(f.path, f.size, false)};
  EXPECT_TRUE(SpecClient::validate(req, good, f.size));
  web::Response bad_status{500, good.body};
  EXPECT_FALSE(SpecClient::validate(req, bad_status, f.size));
  web::Response short_body{200, {good.body.begin(), good.body.end() - 1}};
  EXPECT_FALSE(SpecClient::validate(req, short_body, f.size));
  web::Response corrupt = good;
  corrupt.body[corrupt.body.size() / 2] ^= 0xFF;
  corrupt.body[corrupt.body.size() / 2 + 1] ^= 0xFF;  // dense corruption
  bool caught = !SpecClient::validate(req, corrupt, f.size);
  // Sampled validation: dense corruption at adjacent bytes may fall between
  // sample points for large bodies, but front/back corruption always trips.
  web::Response front = good;
  front.body[0] ^= 0xFF;
  EXPECT_FALSE(SpecClient::validate(req, front, f.size));
  (void)caught;
}

TEST_F(ClientTest, HigherLoadDoesNotLowerThroughputBelowCapacity) {
  ASSERT_TRUE(server_->start());
  ClientConfig c1;
  c1.connections = 10;
  const auto low = SpecClient(c1).run_window(*server_, gen_, 0, 15000);
  server_->stop();
  kernel_.reboot();
  ASSERT_TRUE(server_->start());
  ClientConfig c2;
  c2.connections = 30;
  const auto high = SpecClient(c2).run_window(*server_, gen_, 0, 15000);
  EXPECT_GT(high.thr, low.thr);
}

}  // namespace
}  // namespace gf::spec
