#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "vm/machine.h"

namespace gf::vm {
namespace {

using isa::assemble;

/// Runs an assembly function named `f` via the call interface.
RunResult call_asm(const char* src, const std::vector<std::int64_t>& args,
                   std::uint64_t budget = 100000) {
  Machine m;
  const auto img = assemble(src, "t", 0x1000);
  m.load_image(img);
  return m.call(img.find_symbol("f")->addr, args, budget);
}

TEST(Vm, ReturnsConstant) {
  const auto r = call_asm("f:\n  movi r0, 42\n  ret\n", {});
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.ret, 42);
}

TEST(Vm, PassesArguments) {
  const auto r = call_asm("f:\n  sub r0, r1, r2\n  ret\n", {50, 8});
  EXPECT_EQ(r.ret, 42);
}

TEST(Vm, ArithmeticOps) {
  EXPECT_EQ(call_asm("f:\n  mul r0, r1, r2\n  ret\n", {6, 7}).ret, 42);
  EXPECT_EQ(call_asm("f:\n  div r0, r1, r2\n  ret\n", {85, 2}).ret, 42);
  EXPECT_EQ(call_asm("f:\n  mod r0, r1, r2\n  ret\n", {142, 100}).ret, 42);
  EXPECT_EQ(call_asm("f:\n  and r0, r1, r2\n  ret\n", {0xff, 0x2a}).ret, 42);
  EXPECT_EQ(call_asm("f:\n  or r0, r1, r2\n  ret\n", {0x28, 0x02}).ret, 42);
  EXPECT_EQ(call_asm("f:\n  xor r0, r1, r2\n  ret\n", {0x6a, 0x40}).ret, 42);
  EXPECT_EQ(call_asm("f:\n  shl r0, r1, r2\n  ret\n", {21, 1}).ret, 42);
  EXPECT_EQ(call_asm("f:\n  shr r0, r1, r2\n  ret\n", {84, 1}).ret, 42);
  EXPECT_EQ(call_asm("f:\n  neg r0, r1\n  ret\n", {-42}).ret, 42);
  EXPECT_EQ(call_asm("f:\n  not r0, r1\n  ret\n", {~42ll}).ret, 42);
  EXPECT_EQ(call_asm("f:\n  addi r0, r1, -8\n  ret\n", {50}).ret, 42);
}

TEST(Vm, DivideByZeroTraps) {
  const auto r = call_asm("f:\n  div r0, r1, r2\n  ret\n", {1, 0});
  EXPECT_EQ(r.trap, Trap::kDivZero);
  EXPECT_EQ(call_asm("f:\n  mod r0, r1, r2\n  ret\n", {1, 0}).trap,
            Trap::kDivZero);
}

TEST(Vm, ConditionalBranches) {
  const char* src = R"(
    f:
      cmp r1, r2
      jlt @less
      movi r0, 0
      ret
    less:
      movi r0, 1
      ret
  )";
  EXPECT_EQ(call_asm(src, {1, 2}).ret, 1);
  EXPECT_EQ(call_asm(src, {2, 1}).ret, 0);
  EXPECT_EQ(call_asm(src, {2, 2}).ret, 0);
}

TEST(Vm, AllBranchKinds) {
  struct Case {
    const char* op;
    std::int64_t a, b;
    bool taken;
  };
  const Case cases[] = {
      {"jz", 5, 5, true},  {"jz", 5, 6, false},  {"jnz", 5, 6, true},
      {"jnz", 5, 5, false}, {"jlt", 1, 2, true},  {"jlt", 2, 2, false},
      {"jle", 2, 2, true}, {"jle", 3, 2, false}, {"jgt", 3, 2, true},
      {"jgt", 2, 2, false}, {"jge", 2, 2, true},  {"jge", 1, 2, false},
  };
  for (const auto& c : cases) {
    std::string src = "f:\n  cmp r1, r2\n  ";
    src += c.op;
    src += " @yes\n  movi r0, 0\n  ret\nyes:\n  movi r0, 1\n  ret\n";
    EXPECT_EQ(call_asm(src.c_str(), {c.a, c.b}).ret, c.taken ? 1 : 0)
        << c.op << " " << c.a << " " << c.b;
  }
}

TEST(Vm, MemoryLoadStore) {
  const char* src = R"(
    f:
      movi r3, 0x100000
      st [r3, 8], r1
      ld r0, [r3, 8]
      ret
  )";
  EXPECT_EQ(call_asm(src, {1234}).ret, 1234);
}

TEST(Vm, ByteLoadStoreTruncates) {
  const char* src = R"(
    f:
      movi r3, 0x100000
      stb [r3], r1
      ldb r0, [r3]
      ret
  )";
  EXPECT_EQ(call_asm(src, {0x1ff}).ret, 0xff);
}

TEST(Vm, NullPageTraps) {
  EXPECT_EQ(call_asm("f:\n  movi r3, 0\n  ld r0, [r3]\n  ret\n", {}).trap,
            Trap::kBadMemory);
  EXPECT_EQ(call_asm("f:\n  movi r3, 16\n  st [r3], r1\n  ret\n", {1}).trap,
            Trap::kBadMemory);
}

TEST(Vm, OutOfRangeMemoryTraps) {
  const auto r = call_asm("f:\n  movi r3, 0x7ffffff0\n  ld r0, [r3, 100]\n  ret\n", {});
  EXPECT_EQ(r.trap, Trap::kBadMemory);
}

TEST(Vm, CallAndReturn) {
  const char* src = R"(
    f:
      movi r1, 20
      call @double
      addi r0, r0, 2
      ret
    double:
      add r0, r1, r1
      ret
  )";
  EXPECT_EQ(call_asm(src, {}).ret, 42);
}

TEST(Vm, NestedCallsPreserveReturnPath) {
  const char* src = R"(
    f:
      movi r1, 1
      call @a
      ret
    a:
      call @b
      addi r0, r0, 1
      ret
    b:
      addi r0, r1, 40
      ret
  )";
  EXPECT_EQ(call_asm(src, {}).ret, 42);
}

TEST(Vm, PushPopLifo) {
  const char* src = R"(
    f:
      push r1
      push r2
      pop r0
      pop r3
      sub r0, r0, r3
      ret
  )";
  EXPECT_EQ(call_asm(src, {1, 43}).ret, 42);
}

TEST(Vm, InfiniteLoopHitsCycleLimit) {
  const auto r = call_asm("f:\nloop:\n  jmp @loop\n", {}, 1000);
  EXPECT_EQ(r.trap, Trap::kCycleLimit);
  EXPECT_GE(r.cycles, 1000u);
}

TEST(Vm, JumpOutsideCodeTraps) {
  EXPECT_EQ(call_asm("f:\n  jmp 0x500000\n", {}).trap, Trap::kBadJump);
}

TEST(Vm, MisalignedJumpTraps) {
  EXPECT_EQ(call_asm("f:\n  jmp 0x1001\n", {}).trap, Trap::kBadJump);
}

TEST(Vm, BadOpcodeTraps) {
  Machine m;
  isa::Image img("t", 0x1000);
  img.mutable_code().assign(isa::kInstrSize, 0xEE);  // garbage
  m.load_image(img);
  EXPECT_EQ(m.run(0x1000, 100).trap, Trap::kBadOpcode);
}

TEST(Vm, HaltStops) {
  Machine m;
  const auto img = assemble("f:\n  movi r0, 7\n  halt\n  movi r0, 9\n", "t");
  m.load_image(img);
  const auto r = m.run(img.base(), 100);
  EXPECT_EQ(r.trap, Trap::kHalt);
  EXPECT_EQ(r.ret, 7);
}

TEST(Vm, StackOverflowTraps) {
  // Endless recursion must fault when the stack region is exhausted.
  const char* src = "f:\n  call @f\n";
  Machine m;
  const auto img = assemble(src, "t", 0x1000);
  m.load_image(img);
  m.set_stack_region(m.mem_size() - 4096, m.mem_size());
  const auto r = m.call(img.find_symbol("f")->addr, {}, 1u << 20);
  EXPECT_EQ(r.trap, Trap::kStackFault);
}

TEST(Vm, CallRestoresCallerRegisters) {
  Machine m;
  const auto img = assemble("f:\n  movi r5, 999\n  ret\n", "t");
  m.load_image(img);
  m.set_reg(5, 123);
  (void)m.call(img.find_symbol("f")->addr, {}, 1000);
  EXPECT_EQ(m.reg(5), 123);
}

TEST(Vm, SyscallDispatch) {
  Machine m;
  const auto img = assemble("f:\n  movi r1, 40\n  sys 9\n  ret\n", "t");
  m.load_image(img);
  m.set_syscall_handler([](Machine& mm, std::int32_t num) {
    mm.set_reg(0, mm.reg(1) + num - 7);
    return Trap::kNone;
  });
  EXPECT_EQ(m.call(img.find_symbol("f")->addr, {}, 1000).ret, 42);
}

TEST(Vm, SyscallWithoutHandlerTraps) {
  Machine m;
  const auto img = assemble("f:\n  sys 1\n  ret\n", "t");
  m.load_image(img);
  EXPECT_EQ(m.call(img.find_symbol("f")->addr, {}, 1000).trap, Trap::kBadOpcode);
}

TEST(Vm, SyscallCanAbortRun) {
  Machine m;
  const auto img = assemble("f:\n  sys 1\n  ret\n", "t");
  m.load_image(img);
  m.set_syscall_handler([](Machine&, std::int32_t) { return Trap::kBadMemory; });
  EXPECT_EQ(m.call(img.find_symbol("f")->addr, {}, 1000).trap, Trap::kBadMemory);
}

TEST(Vm, CyclesAccumulate) {
  Machine m;
  const auto img = assemble("f:\n  movi r0, 1\n  ret\n", "t");
  m.load_image(img);
  (void)m.call(img.find_symbol("f")->addr, {}, 1000);
  const auto c1 = m.total_cycles();
  EXPECT_GT(c1, 0u);
  (void)m.call(img.find_symbol("f")->addr, {}, 1000);
  EXPECT_GT(m.total_cycles(), c1);
}

TEST(Vm, CoverageRecordsDistinctPcs) {
  Machine m;
  const auto img = assemble(R"(
    f:
      movi r2, 3
    loop:
      addi r2, r2, -1
      cmpi r2, 0
      jgt @loop
      ret
  )", "t");
  m.load_image(img);
  m.set_coverage(true);
  (void)m.call(img.find_symbol("f")->addr, {}, 1000);
  EXPECT_EQ(m.executed_pcs().size(), 5u);  // distinct, despite the loop
  m.clear_coverage();
  EXPECT_TRUE(m.executed_pcs().empty());
}

TEST(Vm, ReadWriteHelpers) {
  Machine m;
  EXPECT_TRUE(m.write_u64(0x2000, 0xDEADBEEF));
  std::uint64_t v = 0;
  EXPECT_TRUE(m.read_u64(0x2000, v));
  EXPECT_EQ(v, 0xDEADBEEFu);
  EXPECT_FALSE(m.write_u64(0x10, 1));  // null page
  const char* s = "hello";
  EXPECT_TRUE(m.write_bytes(0x3000, s, 6));
  std::string out;
  EXPECT_TRUE(m.read_cstr(0x3000, out));
  EXPECT_EQ(out, "hello");
}

TEST(Vm, ReadCstrUnterminatedFails) {
  Machine m;
  EXPECT_TRUE(m.write_bytes(0x3000, "abcd", 4));
  std::string out;
  EXPECT_FALSE(m.read_cstr(0x3000, out, 3));
}

TEST(Vm, ReadCstrBoundaryConditions) {
  Machine m;
  EXPECT_TRUE(m.write_bytes(0x3000, "abc", 4));  // includes the NUL
  std::string out;
  // The terminator must lie within max_len bytes, exclusive of nothing:
  // "abc\0" needs max_len >= 4.
  EXPECT_FALSE(m.read_cstr(0x3000, out, 3));
  EXPECT_TRUE(m.read_cstr(0x3000, out, 4));
  EXPECT_EQ(out, "abc");
  // Null page and out-of-memory addresses fail outright.
  EXPECT_FALSE(m.read_cstr(0x10, out));
  EXPECT_FALSE(m.read_cstr(m.mem_size(), out));
  EXPECT_FALSE(m.read_cstr(static_cast<std::uint64_t>(-1), out));
  // A string running unterminated into the end of memory fails.
  const std::uint64_t tail = m.mem_size() - 4;
  EXPECT_TRUE(m.write_bytes(tail, "xxxx", 4));
  EXPECT_FALSE(m.read_cstr(tail, out));
  // max_len = 0 can never find a terminator.
  EXPECT_FALSE(m.read_cstr(0x3000, out, 0));
}

TEST(Vm, GuestStoreIntoCodeIsExecutedFresh) {
  // Self-modifying guest code: a store that lands inside the code range
  // must invalidate the predecoded instruction so the mutated bytes (and
  // not the stale decode) execute. The imm byte of `movi r0, 1` (4th
  // instruction, byte offset 4) is overwritten with 99 before it runs.
  const char* src = R"(
    f:
      movi r3, 0x101C
      movi r2, 99
      stb [r3], r2
      movi r0, 1
      ret
  )";
  for (const bool predecode : {true, false}) {
    Machine m;
    const auto img = assemble(src, "t", 0x1000);
    m.load_image(img);
    m.set_predecode(predecode);
    const auto r = m.call(img.find_symbol("f")->addr, {}, 1000);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.ret, 99) << "predecode=" << predecode;
  }
}

TEST(Vm, InvalidateCodeRefreshesPredecodedSlots) {
  Machine m;
  const auto img = assemble("f:\n  movi r0, 1\n  ret\n", "t", 0x1000);
  m.load_image(img);
  const auto addr = img.find_symbol("f")->addr;
  EXPECT_EQ(m.call(addr, {}, 1000).ret, 1);
  // Patch the code via the loader primitive: new imm, then re-run.
  std::uint8_t bytes[isa::kInstrSize];
  isa::encode({isa::Op::kMovI, 0, 0, 0, 77}, bytes);
  EXPECT_TRUE(m.patch_code(addr, bytes, sizeof bytes));
  EXPECT_EQ(m.call(addr, {}, 1000).ret, 77);
  // And via an explicit invalidate after an out-of-band mutation through
  // the checked writer (which also self-invalidates; the explicit call must
  // at minimum be harmless and idempotent).
  m.invalidate_code(addr, isa::kInstrSize);
  EXPECT_EQ(m.call(addr, {}, 1000).ret, 77);
}

TEST(Vm, SetPredecodeOffMatchesDefaultPath) {
  const char* src = R"(
    f:
      movi r2, 10
      movi r0, 0
    loop:
      add r0, r0, r2
      addi r2, r2, -1
      cmpi r2, 0
      jgt @loop
      ret
  )";
  Machine fast, slow;
  const auto img = assemble(src, "t", 0x1000);
  fast.load_image(img);
  slow.load_image(img);
  slow.set_predecode(false);
  const auto a = fast.call(img.find_symbol("f")->addr, {}, 10000);
  const auto b = slow.call(img.find_symbol("f")->addr, {}, 10000);
  EXPECT_EQ(a.trap, b.trap);
  EXPECT_EQ(a.ret, b.ret);
  EXPECT_EQ(a.cycles, b.cycles);
}

TEST(Vm, JumpIntoGapBetweenImagesTraps) {
  // Two images leave a hole in the merged code hull; a jump into the hole
  // must be kBadJump (not kBadOpcode), exactly as with the range walk.
  Machine m;
  const auto img1 = assemble("f:\n  jmp 0x3000\n", "a", 0x1000);
  const auto img2 = assemble("g:\n  movi r0, 5\n  ret\n", "b", 0x5000);
  m.load_image(img1);
  m.load_image(img2);
  EXPECT_EQ(m.call(img1.find_symbol("f")->addr, {}, 1000).trap, Trap::kBadJump);
  // The second image stays reachable and predecoded.
  EXPECT_EQ(m.call(img2.find_symbol("g")->addr, {}, 1000).ret, 5);
}

}  // namespace
}  // namespace gf::vm

namespace gf::vm {
namespace {

TEST(Vm, NegativeGuestPointersCannotWrapTheBoundsCheck) {
  // A mutated guest can compute a "pointer" like -8; the checked accessors
  // must reject it instead of wrapping addr + n past the end check.
  Machine m;
  std::uint64_t v = 0;
  const auto almost_wrap = static_cast<std::uint64_t>(-8);
  EXPECT_FALSE(m.read_u64(almost_wrap, v));
  EXPECT_FALSE(m.write_u64(almost_wrap, 1));
  std::uint8_t buf[32];
  EXPECT_FALSE(m.read_bytes(almost_wrap, buf, sizeof buf));
  EXPECT_FALSE(m.write_bytes(almost_wrap, buf, sizeof buf));
  // And through the ISA path: LD via a register holding -8 must trap.
  const auto img = isa::assemble("f:\n  movi r3, -8\n  ld r0, [r3]\n  ret\n", "t");
  m.load_image(img);
  EXPECT_EQ(m.call(img.find_symbol("f")->addr, {}, 1000).trap,
            Trap::kBadMemory);
}

}  // namespace
}  // namespace gf::vm
