// Reproduces Table 4 of the paper: performance degradation and intrusiveness
// of the injector running in profile mode.
//
// For each server x OS cell, a maximum-performance run (no injector) is
// compared with a profile-mode run (the injector performs every task of an
// injection campaign except the actual code patch). The paper's result: the
// worst-case degradation is below 2% and SPC/CC% are unaffected.
#include <cstdio>

#include "depbench/controller.h"
#include "depbench/tuner.h"
#include "util/table.h"

int main() {
  using namespace gf;
  constexpr double kWindowMs = 120000;
  constexpr std::uint64_t kSeed = 7;

  std::vector<std::string> functions;
  for (const auto& fn : os::api_functions()) functions.push_back(fn.name);

  std::printf("Table 4 - Performance degradation and intrusion evaluation\n\n");
  util::Table t({"OS", "Server", "", "SPC", "CC%", "THR", "RTM"});

  for (const auto version : {os::OsVersion::kVos2000, os::OsVersion::kVosXp}) {
    os::Kernel scan_kernel(version);
    const auto fl = swfit::Scanner{}.scan(scan_kernel.pristine_image(), functions);

    for (const std::string server : {"apex", "abyssal"}) {
      depbench::ControllerConfig cfg;
      cfg.connections = server == "apex" ? 37 : 34;
      depbench::Controller ctl(version, server, cfg);

      const auto base = ctl.run_baseline(kWindowMs, kSeed);
      const auto prof = ctl.run_profile_mode(fl, kWindowMs, kSeed);

      auto row = [&](const char* label, const spec::WindowMetrics& m) {
        t.row()
            .cell(os::os_version_name(version))
            .cell(server)
            .cell(label)
            .cell(static_cast<long long>(m.spc))
            .cell(m.cc_pct, 0)
            .cell(m.thr, 1)
            .cell(m.rtm_ms, 1);
      };
      row("Max. Perf.", base);
      row("Profile mode", prof);
      const double thr_deg =
          base.thr > 0 ? 100.0 * (base.thr - prof.thr) / base.thr : 0.0;
      const double rtm_deg =
          base.rtm_ms > 0 ? 100.0 * (prof.rtm_ms - base.rtm_ms) / base.rtm_ms : 0.0;
      t.row()
          .cell("")
          .cell("")
          .cell("Degradation (%)")
          .cell(static_cast<long long>(base.spc - prof.spc))
          .cell(base.cc_pct - prof.cc_pct, 0)
          .cell(thr_deg, 2)
          .cell(rtm_deg, 2);
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Shape check: degradation stays in the low single digits and "
              "SPC/CC%% are unchanged (paper: <2%% worst case, no SPC "
              "impact).\n");
  return 0;
}
