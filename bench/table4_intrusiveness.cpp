// Reproduces Table 4 of the paper: performance degradation and intrusiveness
// of the injector running in profile mode.
//
// For each server x OS cell, a maximum-performance run (no injector) is
// compared with a profile-mode run (the injector performs every task of an
// injection campaign except the actual code patch). The paper's result: the
// worst-case degradation is below 2% and SPC/CC% are unaffected.
//
// Cells run through the parallel CampaignRunner (--jobs N, default all
// cores); both runs of a cell share one derived seed, so the comparison
// stays paired and the output is identical for any worker count.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "depbench/runner.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace gf;
  depbench::RunnerOptions opt;
  opt.baseline_window_ms = 120000;
  opt.seed = 7;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      opt.jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr, "usage: %s [--jobs N] [--seed X]\n", argv[0]);
      return 2;
    }
  }

  std::printf("Table 4 - Performance degradation and intrusion evaluation\n\n");
  util::Table t({"OS", "Server", "", "SPC", "CC%", "THR", "RTM"});

  depbench::CampaignRunner runner(opt);
  const auto cells = runner.run_intrusiveness();

  for (const auto& cell : cells) {
    auto row = [&](const char* label, const spec::WindowMetrics& m) {
      t.row()
          .cell(cell.os_name)
          .cell(cell.server_name)
          .cell(label)
          .cell(static_cast<long long>(m.spc))
          .cell(m.cc_pct, 0)
          .cell(m.thr, 1)
          .cell(m.rtm_ms, 1);
    };
    const auto& base = cell.max_perf;
    const auto& prof = cell.profile;
    row("Max. Perf.", base);
    row("Profile mode", prof);
    const double thr_deg =
        base.thr > 0 ? 100.0 * (base.thr - prof.thr) / base.thr : 0.0;
    const double rtm_deg =
        base.rtm_ms > 0 ? 100.0 * (prof.rtm_ms - base.rtm_ms) / base.rtm_ms
                        : 0.0;
    t.row()
        .cell("")
        .cell("")
        .cell("Degradation (%)")
        .cell(static_cast<long long>(base.spc - prof.spc))
        .cell(base.cc_pct - prof.cc_pct, 0)
        .cell(thr_deg, 2)
        .cell(rtm_deg, 2);
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Shape check: degradation stays in the low single digits and "
              "SPC/CC%% are unchanged (paper: <2%% worst case, no SPC "
              "impact).\n");
  return 0;
}
