// Shared campaign driver for the Table 5 and Figure 5 benches: runs the
// full dependability benchmark (baseline + 3 iterations) for each
// server x OS cell.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "depbench/report.h"
#include "depbench/tuner.h"
#include "swfit/scanner.h"

namespace gf::benchrun {

struct CampaignOptions {
  double time_scale = 1.0;  ///< fault exposure scale (1.0 = the paper's 10 s)
  int stride = 6;           ///< inject every k-th fault of the faultload
  int iterations = 3;       ///< SPECWeb rule: at least three runs
};

inline CampaignOptions parse_options(int argc, char** argv) {
  CampaignOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opt.stride = 16;
      opt.iterations = 2;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      opt.stride = 1;
      opt.iterations = 3;
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      opt.time_scale = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--stride") == 0 && i + 1 < argc) {
      opt.stride = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--iterations") == 0 && i + 1 < argc) {
      opt.iterations = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick|--full] [--scale S] [--stride K] "
                   "[--iterations N]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return opt;
}

/// Runs the campaign for one cell: profile-mode baseline + N iterations.
inline depbench::ExperimentCell run_cell(os::OsVersion version,
                                         const std::string& server,
                                         const swfit::Faultload& fl,
                                         const CampaignOptions& opt) {
  depbench::ControllerConfig cfg;
  cfg.connections = server == "apex" ? 37 : 34;
  cfg.time_scale = opt.time_scale;
  cfg.fault_stride = opt.stride;
  depbench::Controller ctl(version, server, cfg);

  depbench::ExperimentCell cell;
  cell.os_name = os::os_version_name(version);
  cell.server_name = server;
  cell.baseline = ctl.run_profile_mode(fl, 120000, 1);
  for (int i = 0; i < opt.iterations; ++i) {
    cell.iterations.push_back(
        ctl.run_iteration(fl, 1000 + static_cast<std::uint64_t>(i)));
  }
  return cell;
}

/// Runs all four cells (2 servers x 2 OS versions).
inline std::vector<depbench::ExperimentCell> run_all_cells(
    const CampaignOptions& opt) {
  std::vector<std::string> functions;
  for (const auto& fn : os::api_functions()) functions.push_back(fn.name);

  std::vector<depbench::ExperimentCell> cells;
  for (const auto version : {os::OsVersion::kVos2000, os::OsVersion::kVosXp}) {
    os::Kernel scan_kernel(version);
    const auto fl = swfit::Scanner{}.scan(scan_kernel.pristine_image(), functions);
    for (const std::string server : {"apex", "abyssal"}) {
      std::fprintf(stderr, "[campaign] %s on %s (%zu faults, stride %d, "
                           "%d iterations)...\n",
                   server.c_str(), os::os_version_name(version),
                   fl.faults.size(), opt.stride, opt.iterations);
      cells.push_back(run_cell(version, server, fl, opt));
    }
  }
  return cells;
}

}  // namespace gf::benchrun
