// Shared campaign driver for the Table 5 and Figure 5 benches: runs the
// full dependability benchmark (baseline + 3 iterations) for each
// server x OS cell through the sharded parallel CampaignRunner.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "depbench/report.h"
#include "depbench/runner.h"
#include "depbench/tuner.h"
#include "swfit/scanner.h"

namespace gf::benchrun {

struct CampaignOptions {
  double time_scale = 1.0;  ///< fault exposure scale (1.0 = the paper's 10 s)
  int stride = 6;           ///< inject every k-th fault of the faultload
  int iterations = 3;       ///< SPECWeb rule: at least three runs
  int jobs = 0;             ///< worker threads; 0 = hardware_concurrency
  int shards = 1;           ///< fault-index shards per iteration
  std::uint64_t seed = 1;   ///< campaign seed (per-task seeds are derived)
};

inline CampaignOptions parse_options(int argc, char** argv) {
  CampaignOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opt.stride = 16;
      opt.iterations = 2;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      opt.stride = 1;
      opt.iterations = 3;
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      opt.time_scale = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--stride") == 0 && i + 1 < argc) {
      opt.stride = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--iterations") == 0 && i + 1 < argc) {
      opt.iterations = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      opt.jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      opt.shards = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick|--full] [--scale S] [--stride K] "
                   "[--iterations N] [--jobs J] [--shards S] [--seed X]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return opt;
}

inline depbench::RunnerOptions to_runner_options(const CampaignOptions& opt) {
  depbench::RunnerOptions ropt;
  ropt.time_scale = opt.time_scale;
  ropt.stride = opt.stride;
  ropt.iterations = opt.iterations;
  ropt.jobs = opt.jobs;
  ropt.shards = opt.shards;
  ropt.seed = opt.seed;
  return ropt;
}

/// Runs all four cells (2 servers x 2 OS versions). Results are independent
/// of --jobs: seeds are derived per (cell, task), so N workers produce the
/// same numbers as the sequential run, just faster.
inline std::vector<depbench::ExperimentCell> run_all_cells(
    const CampaignOptions& opt) {
  std::fprintf(stderr,
               "[campaign] 2 servers x 2 OS versions, stride %d, %d "
               "iterations, %d shard(s), jobs=%s\n",
               opt.stride, opt.iterations, opt.shards,
               opt.jobs > 0 ? std::to_string(opt.jobs).c_str() : "auto");
  depbench::CampaignRunner runner(to_runner_options(opt));
  return runner.run_campaign();
}

}  // namespace gf::benchrun
