// Shared campaign driver for the Table 5 and Figure 5 benches: runs the
// full dependability benchmark (baseline + 3 iterations) for each
// server x OS cell through the sharded parallel CampaignRunner.
#pragma once

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "depbench/campaign_report.h"
#include "depbench/report.h"
#include "depbench/runner.h"
#include "depbench/tuner.h"
#include "obs/progress.h"
#include "store/store.h"
#include "swfit/scanner.h"
#include "trace/activation.h"
#include "util/log.h"

namespace gf::benchrun {

struct CampaignOptions {
  double time_scale = 1.0;  ///< fault exposure scale (1.0 = the paper's 10 s)
  int stride = 6;           ///< inject every k-th fault of the faultload
  int iterations = 3;       ///< SPECWeb rule: at least three runs
  int jobs = 0;             ///< worker threads; 0 = hardware_concurrency
  /// Deprecated: --shards S now aliases onto chunked decomposition (S equal
  /// fault chunks per iteration). Kept for script compatibility; results
  /// are identical for any value.
  int shards = 1;
  int chunk = 0;            ///< fault positions per chunk; 0 = adaptive
  bool steal = true;        ///< work stealing; off = static partition (A/B)
  std::string sched_json;   ///< scheduler telemetry JSON (genfault-sched/1)
  std::uint64_t seed = 1;   ///< campaign seed (per-task seeds are derived)
  double baseline_ms = 120000;      ///< profile-mode baseline window
  bool activation_report = false;   ///< print the per-type x function report
  std::string trace_out;            ///< JSONL activation event log path
  std::string activation_json;      ///< summary-stats JSON path
  /// Disable warm-boot snapshots (every task pays the full cold bring-up).
  /// Results are bit-identical either way; the flag exists for the A/B
  /// speedup measurement in BENCH_snapshot.json.
  bool cold_boot = false;
  /// Disable VM superinstruction fusion (--no-fusion). Results are
  /// byte-identical either way; the flag feeds the A/B perf comparison and
  /// the CI fusion-equivalence gate.
  bool fusion = true;
  /// Rate-limited live progress on stderr (faults/s, ETA, cells done)
  /// instead of the per-cell log lines. Display only — never feeds the
  /// deterministic artifacts.
  bool progress = false;
  std::string metrics_json;  ///< campaign manifest (Table 5 + merged metrics)
  std::string journal_out;   ///< per-task event journal, JSONL
  std::string chrome_trace;  ///< Perfetto-loadable trace-event JSON
  std::string html_report;   ///< self-contained HTML report
  /// Crash-safe content-addressed result store (src/store). Artifacts are
  /// byte-identical for any cache-hit pattern; the hit/miss telemetry goes
  /// to --store-json, never into the manifest.
  std::string store_dir;     ///< empty = no store
  bool no_cache = false;     ///< re-execute everything (still commits)
  std::string store_json;    ///< store telemetry JSON (genfault-store/1)
  /// CI/test hook: SIGKILL the process after the Nth store commit (0 = off)
  /// to exercise torn-tail recovery + resume.
  std::uint64_t crash_after_puts = 0;
  /// Deterministic cycle profiler: per-run flat profiles + per-fault
  /// differential flame views. The stride shapes results, so it is part of
  /// the store key (profiled and unprofiled runs never mix).
  std::string profile_json;  ///< genfault-profile/1 artifact path
  std::string flame_out;     ///< collapsed-stack flamegraph path
  std::uint64_t profile_stride = 4096;  ///< cycles between PC samples
  bool profile() const {
    return !profile_json.empty() || !flame_out.empty();
  }
  bool trace() const { return activation_report || !trace_out.empty() ||
                              !activation_json.empty(); }
  /// Any artifact that needs per-task TaskObs bundles?
  bool obs() const {
    return profile() || !metrics_json.empty() || !journal_out.empty() ||
           !chrome_trace.empty() || !html_report.empty();
  }
};

inline CampaignOptions parse_options(int argc, char** argv) {
  CampaignOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opt.stride = 16;
      opt.iterations = 2;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      opt.stride = 1;
      opt.iterations = 3;
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      opt.time_scale = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--stride") == 0 && i + 1 < argc) {
      opt.stride = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--iterations") == 0 && i + 1 < argc) {
      opt.iterations = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      opt.jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      opt.shards = std::atoi(argv[++i]);
      std::fprintf(stderr,
                   "[campaign] note: --shards is deprecated; it now maps "
                   "onto chunked decomposition (use --chunk)\n");
    } else if (std::strcmp(argv[i], "--chunk") == 0 && i + 1 < argc) {
      opt.chunk = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--no-steal") == 0) {
      opt.steal = false;
    } else if (std::strcmp(argv[i], "--sched-json") == 0 && i + 1 < argc) {
      opt.sched_json = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--baseline-ms") == 0 && i + 1 < argc) {
      opt.baseline_ms = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--activation-report") == 0) {
      opt.activation_report = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      opt.trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--activation-json") == 0 && i + 1 < argc) {
      opt.activation_json = argv[++i];
    } else if (std::strcmp(argv[i], "--cold-boot") == 0) {
      opt.cold_boot = true;
    } else if (std::strcmp(argv[i], "--no-fusion") == 0) {
      opt.fusion = false;
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      opt.progress = true;
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      opt.metrics_json = argv[++i];
    } else if (std::strcmp(argv[i], "--journal-out") == 0 && i + 1 < argc) {
      opt.journal_out = argv[++i];
    } else if (std::strcmp(argv[i], "--chrome-trace") == 0 && i + 1 < argc) {
      opt.chrome_trace = argv[++i];
    } else if (std::strcmp(argv[i], "--html-report") == 0 && i + 1 < argc) {
      opt.html_report = argv[++i];
    } else if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) {
      opt.store_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--no-cache") == 0) {
      opt.no_cache = true;
    } else if (std::strcmp(argv[i], "--store-json") == 0 && i + 1 < argc) {
      opt.store_json = argv[++i];
    } else if (std::strcmp(argv[i], "--crash-after-puts") == 0 &&
               i + 1 < argc) {
      opt.crash_after_puts =
          static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--profile-json") == 0 && i + 1 < argc) {
      opt.profile_json = argv[++i];
    } else if (std::strcmp(argv[i], "--flame-out") == 0 && i + 1 < argc) {
      opt.flame_out = argv[++i];
    } else if (std::strcmp(argv[i], "--profile-stride") == 0 && i + 1 < argc) {
      opt.profile_stride = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick|--full] [--scale S] [--stride K] "
                   "[--iterations N] [--jobs J] [--chunk N] [--no-steal] "
                   "[--shards S (deprecated)] [--seed X] "
                   "[--baseline-ms MS] [--activation-report] "
                   "[--trace-out FILE.jsonl] [--activation-json FILE.json] "
                   "[--cold-boot] [--no-fusion] [--progress] "
                   "[--metrics-json FILE] "
                   "[--journal-out FILE.jsonl] [--chrome-trace FILE] "
                   "[--html-report FILE] [--sched-json FILE] "
                   "[--store DIR] [--no-cache] [--store-json FILE] "
                   "[--crash-after-puts N] [--profile-json FILE] "
                   "[--flame-out FILE] [--profile-stride N]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return opt;
}

inline depbench::RunnerOptions to_runner_options(const CampaignOptions& opt) {
  depbench::RunnerOptions ropt;
  ropt.time_scale = opt.time_scale;
  ropt.stride = opt.stride;
  ropt.iterations = opt.iterations;
  ropt.jobs = opt.jobs;
  ropt.shards = opt.shards;
  ropt.chunk = opt.chunk;
  ropt.steal = opt.steal;
  ropt.seed = opt.seed;
  ropt.baseline_window_ms = opt.baseline_ms;
  ropt.trace = opt.trace();
  ropt.warm_boot = !opt.cold_boot;
  ropt.fusion = opt.fusion;
  ropt.obs = opt.obs();
  ropt.profile = opt.profile();
  ropt.profile_stride = opt.profile_stride;
  return ropt;
}

/// Writes the observability artifacts of a finished campaign: the JSON
/// manifest (Table 5 cells + derived metrics + merged registry), the
/// slot-ordered journal JSONL, the Chrome trace and the HTML report.
/// Everything validates under tools/json_check (see run_benches.sh).
inline void emit_obs_outputs(const std::vector<depbench::ExperimentCell>& cells,
                             const CampaignOptions& opt,
                             const depbench::CampaignRunner& runner) {
  if (!opt.obs()) return;
  const auto* obs = runner.campaign_obs();
  auto write = [](const std::string& path, const std::string& content,
                  const char* what) {
    if (path.empty()) return;
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      std::exit(1);
    }
    out << content;
    std::fprintf(stderr, "[campaign] %s -> %s\n", what, path.c_str());
  };
  write(opt.metrics_json,
        depbench::campaign_manifest_json(cells, runner.options(), obs),
        "campaign manifest");
  write(opt.html_report,
        depbench::campaign_html_report(cells, runner.options(), obs),
        "html report");
  if (!opt.journal_out.empty() && obs != nullptr) {
    std::ofstream out(opt.journal_out);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", opt.journal_out.c_str());
      std::exit(1);
    }
    depbench::write_campaign_journal(out, *obs);
    std::fprintf(stderr, "[campaign] event journal -> %s\n",
                 opt.journal_out.c_str());
  }
  if (!opt.chrome_trace.empty() && obs != nullptr) {
    write(opt.chrome_trace, depbench::campaign_chrome_trace(*obs),
          "chrome trace");
  }
  if (obs != nullptr) {
    if (!opt.profile_json.empty()) {
      write(opt.profile_json,
            depbench::campaign_profile_json(cells, runner.options(), *obs),
            "cycle profile");
    }
    if (!opt.flame_out.empty()) {
      write(opt.flame_out, depbench::campaign_flamegraph(*obs), "flamegraph");
    }
  }
}

/// Runs all four cells (2 servers x 2 OS versions). Results are independent
/// of --jobs: seeds are derived per (cell, task), so N workers produce the
/// same numbers as the sequential run, just faster.
inline std::vector<depbench::ExperimentCell> run_all_cells(
    const CampaignOptions& opt) {
  // Campaign benches narrate progress so long runs are observable: by
  // default one util::log line per completed cell; with --progress a
  // rate-limited live reporter (faults/s, ETA) replaces the per-cell lines.
  if (util::log_level() > util::LogLevel::kInfo) {
    util::set_log_level(util::LogLevel::kInfo);
  }
  std::fprintf(stderr,
               "[campaign] 2 servers x 2 OS versions, stride %d, %d "
               "iterations, jobs=%s, %s%s%s\n",
               opt.stride, opt.iterations,
               opt.jobs > 0 ? std::to_string(opt.jobs).c_str() : "auto",
               opt.steal ? "work stealing" : "static partition",
               opt.trace() ? ", tracing on" : "",
               opt.cold_boot ? ", cold boot" : ", warm boot");
  obs::ProgressReporter progress;
  auto ropt = to_runner_options(opt);
  if (opt.progress) ropt.progress = &progress;
  std::unique_ptr<store::CampaignStore> cstore;
  if (!opt.store_dir.empty()) {
    cstore = std::make_unique<store::CampaignStore>(opt.store_dir);
    ropt.store = cstore.get();
    ropt.store_read = !opt.no_cache;
    if (opt.crash_after_puts > 0) {
      const auto n = opt.crash_after_puts;
      cstore->set_commit_hook([n](std::uint64_t count) {
        if (count >= n) std::raise(SIGKILL);
      });
    }
  }
  depbench::CampaignRunner runner(ropt);
  auto cells = runner.run_campaign();
  emit_obs_outputs(cells, opt, runner);
  if (!opt.store_json.empty() && runner.store_stats() != nullptr) {
    std::ofstream out(opt.store_json);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", opt.store_json.c_str());
      std::exit(1);
    }
    out << runner.store_stats()->to_json();
    std::fprintf(stderr, "[campaign] store telemetry -> %s\n",
                 opt.store_json.c_str());
  }
  if (!opt.sched_json.empty() && runner.scheduler_stats() != nullptr) {
    std::ofstream out(opt.sched_json);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", opt.sched_json.c_str());
      std::exit(1);
    }
    out << runner.scheduler_stats()->to_json();
    std::fprintf(stderr, "[campaign] scheduler telemetry -> %s\n",
                 opt.sched_json.c_str());
  }
  return cells;
}

/// Activation outputs shared by the table5/fig5 drivers: prints the
/// per-fault-type x per-OS-function report (--activation-report), writes the
/// JSONL event log (--trace-out) and the summary stats (--activation-json).
inline void emit_activation_outputs(
    const std::vector<depbench::ExperimentCell>& cells,
    const CampaignOptions& opt) {
  if (!opt.trace()) return;

  trace::ActivationStats stats;
  for (const auto& cell : cells) {
    stats.merge(trace::aggregate(depbench::collect_activations(cell)));
  }

  if (opt.activation_report) {
    std::printf("\nActivation & error propagation (per traced exposure)\n%s\n",
                trace::render_activation_report(stats).c_str());
  }
  if (!opt.trace_out.empty()) {
    std::ofstream out(opt.trace_out);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", opt.trace_out.c_str());
      std::exit(1);
    }
    for (const auto& cell : cells) {
      for (std::size_t it = 0; it < cell.iterations.size(); ++it) {
        trace::write_jsonl(out,
                           cell.os_name + "/" + cell.server_name + "/iter" +
                               std::to_string(it),
                           cell.iterations[it].activations);
      }
    }
    std::fprintf(stderr, "[campaign] activation event log -> %s\n",
                 opt.trace_out.c_str());
  }
  if (!opt.activation_json.empty()) {
    std::ofstream out(opt.activation_json);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   opt.activation_json.c_str());
      std::exit(1);
    }
    out << trace::activation_summary_json(stats);
    std::fprintf(stderr, "[campaign] activation summary -> %s\n",
                 opt.activation_json.c_str());
  }
}

}  // namespace gf::benchrun
