// Reproduces Table 5 of the paper: the full dependability benchmarking
// campaign — SPC, THR, RTM, ER%, MIS, KCP, KNS for three iterations of each
// web server on each OS version, plus per-cell averages.
//
// Flags: --quick (sampled faultload, 2 iterations), --full (every fault),
// --scale/--stride/--iterations for fine control. Default: every 6th fault
// at the paper's full 10 s exposure, 3 iterations.
//
// Tracing flags (src/trace): --activation-report prints the per-fault-type x
// per-OS-function activation table, --trace-out FILE.jsonl dumps one JSON
// event per traced exposure, --activation-json FILE.json writes summary
// stats (used by bench/run_benches.sh for the quality trajectory).
#include "campaign_common.h"

int main(int argc, char** argv) {
  using namespace gf;
  const auto opt = benchrun::parse_options(argc, argv);

  std::printf("Table 5 - Experimental results (exposure %.1f s/fault, "
              "stride %d, %d iterations)\n\n",
              10.0 * opt.time_scale, opt.stride, opt.iterations);

  const auto cells = benchrun::run_all_cells(opt);
  for (const auto& cell : cells) {
    std::printf("%s\n", depbench::render_table5_cell(cell).c_str());
  }
  benchrun::emit_activation_outputs(cells, opt);

  std::printf("Shape checks (paper Table 5):\n");
  for (std::size_t i = 0; i + 1 < cells.size(); i += 2) {
    const auto apex = depbench::derive_metrics(cells[i]);
    const auto abyssal = depbench::derive_metrics(cells[i + 1]);
    std::printf("  %s: apex ER%%=%.1f < abyssal ER%%=%.1f : %s | "
                "apex ADMf=%.1f vs abyssal ADMf=%.1f | "
                "apex SPCf=%.1f > abyssal SPCf=%.1f : %s\n",
                cells[i].os_name.c_str(), apex.erf_pct, abyssal.erf_pct,
                apex.erf_pct < abyssal.erf_pct ? "OK" : "MISMATCH",
                apex.admf, abyssal.admf, apex.spcf, abyssal.spcf,
                apex.spcf > abyssal.spcf ? "OK" : "MISMATCH");
  }
  return 0;
}
