// Reproduces Figure 5 of the paper: side-by-side comparison of the behaviour
// of the two web servers in the presence of software faults — baseline vs
// faulty SPC/THR/RTM, ER%f and ADMf, for both operating systems.
//
// Run with --quick for a sampled campaign. The headline conclusion to check:
// apex (Apache-analogue) degrades less than abyssal (Abyss-analogue) on
// every metric, and the relative difference is stable across OS versions.
#include "campaign_common.h"

int main(int argc, char** argv) {
  using namespace gf;
  auto opt = benchrun::parse_options(argc, argv);
  // Figure 5 uses the same sampling as Table 5 so the two stay consistent.

  const auto cells = benchrun::run_all_cells(opt);
  std::printf("%s", depbench::render_fig5(cells).c_str());
  benchrun::emit_activation_outputs(cells, opt);

  // The paper's closing observation: the apex/abyssal relation is the same
  // on both OS versions (the faultloads expose an intrinsic BT property).
  if (cells.size() == 4) {
    const auto a2000 = depbench::derive_metrics(cells[0]);
    const auto b2000 = depbench::derive_metrics(cells[1]);
    const auto axp = depbench::derive_metrics(cells[2]);
    const auto bxp = depbench::derive_metrics(cells[3]);
    std::printf("Cross-OS stability: ER ratio abyssal/apex = %.1fx (VOS-2000) "
                "vs %.1fx (VOS-XP); SPC retention apex %.0f%%/%.0f%%, "
                "abyssal %.0f%%/%.0f%%\n",
                a2000.erf_pct > 0 ? b2000.erf_pct / a2000.erf_pct : 0.0,
                axp.erf_pct > 0 ? bxp.erf_pct / axp.erf_pct : 0.0,
                100 * a2000.spc_rel, 100 * axp.spc_rel, 100 * b2000.spc_rel,
                100 * bxp.spc_rel);
  }
  return 0;
}
