// Reproduces Table 1 of the paper: representativity of the fault types
// included in the faultload.
//
// The pipeline mirrors the original field study: a corpus of classified
// defects is tabulated per fault type; the 12 most frequent well-defined
// types (excluding Extraneous constructs) form the faultload and their
// cumulative share is the "total faults coverage".
#include <cstdio>

#include "swfit/field_study.h"
#include "util/table.h"

int main() {
  using namespace gf;
  constexpr std::size_t kCorpusSize = 200000;
  constexpr std::uint64_t kSeed = 2004;

  const auto records = swfit::FieldStudy::generate(kCorpusSize, kSeed);
  const auto rows = swfit::FieldStudy::tabulate(records);

  std::printf("Table 1 - Representativity of the fault types included in the "
              "faultload\n");
  std::printf("(defect corpus: %zu synthetic records, seed %llu; published "
              "field shares in parentheses)\n\n",
              kCorpusSize, static_cast<unsigned long long>(kSeed));

  util::Table t({"Fault type", "Description", "Fault coverage", "(published)",
                 "ODC type"});
  double total = 0;
  for (const auto& row : rows) {
    const auto& info = swfit::fault_type_info(row.type);
    t.row()
        .cell(info.name)
        .cell(info.description)
        .cell(util::fmt(row.pct, 2) + " %")
        .cell(util::fmt(info.field_coverage, 2) + " %")
        .cell(swfit::odc_class_name(info.odc));
    total += row.pct;
  }
  t.row().cell("").cell("Total faults coverage").cell(util::fmt(total, 2) + " %")
      .cell("50.69 %").cell("");
  std::printf("%s\n", t.to_string().c_str());

  std::printf("Extraneous-construct share of the corpus: %.2f %% "
              "(excluded from the faultload, as in the paper)\n",
              swfit::FieldStudy::extraneous_share(records));
  return 0;
}
