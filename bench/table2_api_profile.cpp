// Reproduces Table 2 of the paper: the most relevant OS API calls from the
// point of view of the web-server category.
//
// The SPECWeb-like workload exercises the four web servers (apex, abyssal,
// sambar, savant); the OsApi call hook counts invocations per function.
// Functions used by all servers above the relevance threshold form the
// fault-injection target set and their average shares sum to the "total
// call coverage".
#include <cstdio>

#include "depbench/profiler.h"
#include "util/table.h"

int main() {
  using namespace gf;
  const std::vector<std::string> servers = {"apex", "abyssal", "sambar",
                                            "savant"};
  depbench::ProfilerConfig cfg;
  cfg.window_ms = 120000;  // 120 s of simulated profiling per server

  depbench::Profiler profiler(cfg);
  const auto profile = profiler.profile(os::OsVersion::kVos2000, servers);

  std::printf("Table 2 - Relevant API calls "
              "(%% of the total number of API calls per server)\n\n");

  util::Table t({"Function name", "Module", "apex", "abyssal", "sambar",
                 "savant", "Average"});
  const auto relevant = profile.relevant_functions();
  for (const auto& fn : os::api_functions()) {
    t.row().cell(fn.name).cell(fn.module);
    for (const auto& col : profile.columns) {
      const auto it = col.pct.find(fn.name);
      t.cell(it == col.pct.end() ? 0.0 : it->second, 2);
    }
    t.cell(profile.average_pct(fn.name), 2);
  }
  std::printf("%s\n", t.to_string().c_str());

  std::printf("Functions selected for the faultload (used by all servers, "
              "average share >= 0.05%%): %zu of %zu\n",
              relevant.size(), os::api_functions().size());
  std::printf("Total call coverage of the selected set: %.2f %%\n",
              profile.total_coverage());
  return 0;
}
