// BM_CampaignResume / BM_CampaignIncremental — the campaign-store A/B.
//
// Three single-cell campaigns (VOS-2000/apex) against one persistent store:
//
//   cold         empty store; every run executes and commits
//   resume       identical campaign; every run must be a cache hit
//   incremental  one fault type's mutations edited ("the fault was fixed");
//                only that type's keys — and nothing else — re-execute
//
// The bench asserts the store's core contract — the merged campaign
// artifacts (manifest JSON + slot-ordered journal) of the all-hit resume
// run are byte-identical to the cold run's — and exits nonzero when they
// are not. Timings, speedups and the three runs' hit/miss telemetry land
// in BENCH_store.json ("genfault-store-bench/1"), which run_benches.sh
// validates with `json_check --schema store` (including the semantic
// hit/miss cross-checks: cold has no hits, resume has no misses, the
// incremental run mixes both).
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "depbench/campaign_report.h"
#include "depbench/report.h"
#include "depbench/runner.h"
#include "os/kernel.h"
#include "store/store.h"
#include "swfit/scanner.h"
#include "util/log.h"

namespace {

using namespace gf;

struct Artifacts {
  std::string manifest;
  std::string journal;
  bool operator==(const Artifacts&) const = default;
};

struct RunOutcome {
  double ms = 0;
  Artifacts artifacts;
  store::StoreStats stats;
};

std::vector<std::string> api_names() {
  std::vector<std::string> names;
  for (const auto& fn : os::api_functions()) names.emplace_back(fn.name);
  return names;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 0, stride = 24, iterations = 1;
  double scale = 0.05;
  std::uint64_t seed = 77;
  std::string out = "BENCH_store.json";
  std::string dir = "bench-store-scratch";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--stride") == 0 && i + 1 < argc) {
      stride = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--iterations") == 0 && i + 1 < argc) {
      iterations = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--store-dir") == 0 && i + 1 < argc) {
      dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--jobs J] [--stride K] [--iterations N] "
                   "[--scale S] [--seed X] [--out FILE] [--store-dir DIR]\n",
                   argv[0]);
      return 2;
    }
  }

  os::Kernel kernel(os::OsVersion::kVos2000);
  const auto fl = swfit::Scanner{}.scan(kernel.pristine_image(), api_names());

  depbench::RunnerOptions base;
  base.versions = {os::OsVersion::kVos2000};
  base.servers = {"apex"};
  base.iterations = iterations;
  base.stride = stride;
  base.time_scale = scale;
  base.baseline_window_ms = 2000;
  base.seed = seed;
  base.jobs = jobs;
  base.trace = true;
  base.obs = true;

  // Start from an empty store: the cold run must populate, not hit.
  std::remove((dir + "/segment.gfs").c_str());
  std::remove((dir + "/wal.gfj").c_str());

  auto run = [&](const swfit::Faultload& faults) {
    store::CampaignStore st(dir);
    auto ropt = base;
    ropt.faultload = &faults;
    ropt.store = &st;
    depbench::CampaignRunner runner(ropt);
    const auto t0 = std::chrono::steady_clock::now();
    const auto cells = runner.run_campaign();
    const auto t1 = std::chrono::steady_clock::now();
    RunOutcome o;
    o.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    o.artifacts.manifest = depbench::campaign_manifest_json(
        cells, runner.options(), runner.campaign_obs());
    std::ostringstream j;
    depbench::write_campaign_journal(j, *runner.campaign_obs());
    o.artifacts.journal = j.str();
    o.stats = *runner.store_stats();
    return o;
  };

  std::fprintf(stderr, "[store-bench] cold run (populates %s)\n", dir.c_str());
  const auto cold = run(fl);
  std::fprintf(stderr, "[store-bench] resume run (expects all hits)\n");
  const auto resume = run(fl);

  // The incremental scenario: the rarest fault type on the sampled schedule
  // gets its mutations "fixed" (mutated window := original window). Original
  // windows are untouched, so the profile-mode baseline stays cached; only
  // the edited type's fault keys change.
  const auto positions =
      fl.faults.empty()
          ? std::size_t{0}
          : (fl.faults.size() + static_cast<std::size_t>(stride) - 1) /
                static_cast<std::size_t>(stride);
  std::array<std::size_t, swfit::kNumFaultTypes> sampled{};
  for (std::size_t p = 0; p < positions; ++p) {
    ++sampled[static_cast<std::size_t>(
        fl.faults[p * static_cast<std::size_t>(stride)].type)];
  }
  std::size_t edited = 0;
  for (std::size_t t = 0; t < sampled.size(); ++t) {
    if (sampled[t] == 0) continue;
    if (sampled[edited] == 0 || sampled[t] < sampled[edited]) edited = t;
  }
  auto fl2 = fl;
  for (auto& f : fl2.faults) {
    if (static_cast<std::size_t>(f.type) == edited) f.mutated = f.original;
  }
  const auto expected_misses =
      static_cast<std::uint64_t>(iterations) * sampled[edited];
  std::fprintf(stderr,
               "[store-bench] incremental run (%s edited: %llu of %zu "
               "positions per iteration re-execute)\n",
               swfit::fault_type_name(static_cast<swfit::FaultType>(edited)),
               static_cast<unsigned long long>(sampled[edited]), positions);
  const auto incr = run(fl2);

  const bool identical = cold.artifacts == resume.artifacts;
  const double resume_speedup = resume.ms > 0 ? cold.ms / resume.ms : 0;
  const double incr_speedup = incr.ms > 0 ? cold.ms / incr.ms : 0;
  std::printf("BM_CampaignResume       cold %.0f ms -> resume %.0f ms "
              "(%.1fx), %llu hits\n",
              cold.ms, resume.ms, resume_speedup,
              static_cast<unsigned long long>(resume.stats.hits));
  std::printf("BM_CampaignIncremental  cold %.0f ms -> incremental %.0f ms "
              "(%.1fx), %llu hits / %llu misses (expected %llu misses)\n",
              cold.ms, incr.ms, incr_speedup,
              static_cast<unsigned long long>(incr.stats.hits),
              static_cast<unsigned long long>(incr.stats.misses),
              static_cast<unsigned long long>(expected_misses));
  std::printf("artifacts identical across cache-hit patterns: %s\n",
              identical ? "yes" : "NO — DETERMINISM REGRESSION");

  std::ostringstream json;
  json << "{\"schema\": \"genfault-store-bench/1\", \"jobs\": " << jobs
       << ", \"cold_ms\": " << cold.ms << ", \"resume_ms\": " << resume.ms
       << ", \"incremental_ms\": " << incr.ms
       << ", \"resume_speedup\": " << resume_speedup
       << ", \"incremental_speedup\": " << incr_speedup
       << ", \"artifacts_identical\": " << (identical ? "true" : "false")
       << ", \"edited_type\": \""
       << swfit::fault_type_name(static_cast<swfit::FaultType>(edited))
       << "\", \"expected_incremental_misses\": " << expected_misses
       << ",\n \"cold\": " << cold.stats.to_json()
       << ",\n \"resume\": " << resume.stats.to_json()
       << ",\n \"incremental\": " << incr.stats.to_json() << "}\n";
  std::ofstream f(out);
  if (!f) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }
  f << json.str();
  std::fprintf(stderr, "[store-bench] results -> %s\n", out.c_str());

  if (!identical) return 1;
  if (resume.stats.misses != 0 || incr.stats.misses != expected_misses) {
    std::fprintf(stderr,
                 "error: unexpected miss pattern (resume %llu, incremental "
                 "%llu != %llu)\n",
                 static_cast<unsigned long long>(resume.stats.misses),
                 static_cast<unsigned long long>(incr.stats.misses),
                 static_cast<unsigned long long>(expected_misses));
    return 1;
  }
  return 0;
}
