// Substrate micro-benchmarks (google-benchmark): VM dispatch rate, MiniC
// compilation, G-SWFIT scanning, inject/restore cost, and end-to-end OS API
// call latency. These quantify the supporting claims: faultload generation
// is fast ("less than 5 minutes" in the paper) and runtime injection is a
// cheap patch operation.
#include <benchmark/benchmark.h>

#include "depbench/controller.h"
#include "minic/compiler.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "os/api.h"
#include "os/kernel.h"
#include "os/layout.h"
#include "snapshot/warmboot.h"
#include "swfit/injector.h"
#include "swfit/scanner.h"
#include "vm/machine.h"

namespace {

using namespace gf;

isa::Image dispatch_image() {
  // Tight arithmetic loop: measures raw interpreter throughput. `cold` is
  // never called from `f` — it exists so a fault-window watch can be armed
  // inside the code hull without any armed slot on the measured path.
  return minic::compile(
      "fn cold(x) { return x + 1; } "
      "fn f(n) { var s = 0; var i = 0; while (i < n) { s = s + i * 3; "
      "i = i + 1; } return s; }",
      "bench", 0x1000);
}

void run_dispatch(benchmark::State& state, bool predecode,
                  bool arm_cold_watch = false, bool fusion = true,
                  std::uint64_t sample_stride = 0) {
  const auto img = dispatch_image();
  vm::Machine m;
  m.load_image(img);
  m.set_predecode(predecode);
  m.set_fusion(fusion);
  if (arm_cold_watch) {
    const auto cold = img.find_symbol("cold")->addr;
    m.arm_watch(cold, cold + 2 * isa::kInstrSize);
  }
  if (sample_stride > 0) m.arm_sampler(sample_stride);
  const auto addr = img.find_symbol("f")->addr;
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    const auto r = m.call(addr, {n}, 1u << 30);
    benchmark::DoNotOptimize(r.ret);
  }
  state.SetItemsProcessed(state.iterations() * n * 10);  // ~10 instrs/iter
}

void BM_VmDispatch(benchmark::State& state) {
  run_dispatch(state, true);  // the default machine configuration
}
BENCHMARK(BM_VmDispatch)->Arg(1000)->Arg(100000);

/// Same loop with the predecode side-table explicitly enabled — one name
/// per dispatch strategy keeps the decode-cache win visible in the
/// trajectory even if the default ever changes.
void BM_VmDispatchPredecoded(benchmark::State& state) {
  run_dispatch(state, true);
}
BENCHMARK(BM_VmDispatchPredecoded)->Arg(100000);

/// Same loop on the fallback path: per-step isa::decode plus the
/// last-hit-cached in_code() range walk.
void BM_VmDispatchNoPredecode(benchmark::State& state) {
  run_dispatch(state, false);
}
BENCHMARK(BM_VmDispatchNoPredecode)->Arg(100000);

/// A/B partner of BM_VmDispatch with superinstruction fusion disabled: the
/// delta against BM_VmDispatch *is* the fusion win on this loop (the
/// threaded-vs-switch lowering is a configure-time choice, reported in the
/// benchmark context as `vm_dispatch`). CI uploads both sides.
void BM_VmDispatchNoFusion(benchmark::State& state) {
  run_dispatch(state, true, /*arm_cold_watch=*/false, /*fusion=*/false);
}
BENCHMARK(BM_VmDispatchNoFusion)->Arg(100000);

/// Dispatch with a fault-window watch armed on a *never-executed* function:
/// the src/trace cost model is that a disarmed (not-hit) watch is one
/// never-taken branch on a byte the validity check already loads, so this
/// must track BM_VmDispatch within noise (tests/test_trace.cpp guards the
/// ratio; the acceptance bar is 3%).
void BM_VmDispatchTraceDisarmed(benchmark::State& state) {
  run_dispatch(state, true, /*arm_cold_watch=*/true);
}
BENCHMARK(BM_VmDispatchTraceDisarmed)->Arg(100000);

/// Dispatch with the deterministic PC sampler armed at the campaign's
/// default stride (4096 cycles): the armed cost is one decrement plus a
/// [[unlikely]] branch per retired instruction, with the map insert
/// amortised 1/stride. The BENCH_obs.json bar is >= 80% of BM_VmDispatch
/// armed; disarmed sampling is covered by BM_VmDispatch itself (the
/// countdown idles at 2^62, so the branch never fires).
void BM_VmDispatchProfiled(benchmark::State& state) {
  run_dispatch(state, true, /*arm_cold_watch=*/false, /*fusion=*/true,
               /*sample_stride=*/4096);
}
BENCHMARK(BM_VmDispatchProfiled)->Arg(100000);

void BM_MiniCCompileOs(benchmark::State& state) {
  for (auto _ : state) {
    auto img = minic::compile({os::common_source(),
                               os::ntdll_source(os::OsVersion::kVosXp),
                               os::kernel32_source(os::OsVersion::kVosXp)},
                              "vos", 0x10000);
    benchmark::DoNotOptimize(img.size());
  }
}
BENCHMARK(BM_MiniCCompileOs);

void BM_FaultloadScan(benchmark::State& state) {
  os::Kernel kernel(os::OsVersion::kVosXp);
  std::vector<std::string> fns;
  for (const auto& f : os::api_functions()) fns.emplace_back(f.name);
  swfit::Scanner scanner;
  for (auto _ : state) {
    auto fl = scanner.scan(kernel.pristine_image(), fns);
    benchmark::DoNotOptimize(fl.faults.size());
  }
}
BENCHMARK(BM_FaultloadScan);

void BM_InjectRestore(benchmark::State& state) {
  os::Kernel kernel(os::OsVersion::kVos2000);
  std::vector<std::string> fns;
  for (const auto& f : os::api_functions()) fns.emplace_back(f.name);
  const auto fl = swfit::Scanner{}.scan(kernel.pristine_image(), fns);
  swfit::Injector injector(kernel);
  std::size_t i = 0;
  for (auto _ : state) {
    injector.inject(fl.faults[i++ % fl.faults.size()]);
    injector.restore();
  }
}
BENCHMARK(BM_InjectRestore);

/// Inject + execute + restore + execute: on top of the patch cost this
/// realizes the predecode re-decode of the touched slots and the dispatch
/// of the patched/restored window, i.e. the full per-fault-swap overhead a
/// campaign pays.
void BM_InjectRestoreInvalidate(benchmark::State& state) {
  os::Kernel kernel(os::OsVersion::kVos2000);
  std::vector<std::string> fns;
  for (const auto& f : os::api_functions()) fns.emplace_back(f.name);
  const auto fl = swfit::Scanner{}.scan(kernel.pristine_image(), fns);
  swfit::Injector injector(kernel);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& f = fl.faults[i++ % fl.faults.size()];
    const auto addr = kernel.api_addr(f.function);
    injector.inject(f);
    benchmark::DoNotOptimize(kernel.machine().call(addr, {0, 0}, 20000).trap);
    injector.restore();
    benchmark::DoNotOptimize(kernel.machine().call(addr, {0, 0}, 20000).trap);
  }
}
BENCHMARK(BM_InjectRestoreInvalidate);

void BM_ApiCallAlloc(benchmark::State& state) {
  os::Kernel kernel(os::OsVersion::kVos2000);
  os::OsApi api(kernel);
  for (auto _ : state) {
    const auto r = api.rtl_alloc(256);
    benchmark::DoNotOptimize(r.value);
    api.rtl_free(static_cast<std::uint64_t>(r.value));
  }
}
BENCHMARK(BM_ApiCallAlloc);

/// A/B partner of BM_ApiCallAlloc with the obs sink attached: the only live
/// per-call instrumentation in the whole substrate is this one null-check +
/// ApiMetrics::record, so the delta against BM_ApiCallAlloc *is* the
/// observability overhead of an OS API call (BENCH_obs.json tracks the
/// ratio; everything else is harvested at run boundaries).
void BM_ApiCallAllocObs(benchmark::State& state) {
  os::Kernel kernel(os::OsVersion::kVos2000);
  os::OsApi api(kernel);
  obs::ApiMetrics sink;
  api.set_metrics(&sink);
  for (auto _ : state) {
    const auto r = api.rtl_alloc(256);
    benchmark::DoNotOptimize(r.value);
    api.rtl_free(static_cast<std::uint64_t>(r.value));
  }
}
BENCHMARK(BM_ApiCallAllocObs);

/// Journal ring append: span begin/end pair per iteration. Bounded ring,
/// no allocation once warm — the cost a controller pays per recorded event.
void BM_JournalAppend(benchmark::State& state) {
  obs::Journal j;
  std::uint64_t cycle = 0;
  for (auto _ : state) {
    j.begin("fault", 1.0, cycle);
    j.end("fault", 2.0, cycle + 1);
    cycle += 2;
  }
  benchmark::DoNotOptimize(j.size());
}
BENCHMARK(BM_JournalAppend);

void BM_ApiCallOpenReadClose(benchmark::State& state) {
  os::Kernel kernel(os::OsVersion::kVos2000);
  kernel.disk().add_file("/bench", std::vector<std::uint8_t>(4096, 7));
  os::OsApi api(kernel);
  api.write_cstr(os::OsApi::kPathSlot, "/bench");
  for (auto _ : state) {
    const auto h = api.nt_open_file(os::OsApi::kPathSlot);
    api.nt_read_file(h.value, 0x150000, 4096);
    api.nt_close(h.value);
  }
}
BENCHMARK(BM_ApiCallOpenReadClose);

/// Dirty a handful of kernel-data pages the way a slot's guest work would,
/// so both reboot benches measure resetting a *used* kernel, not a pristine
/// one (the dirtying itself is a few checked stores — negligible next to
/// either reboot path).
void dirty_kernel(vm::Machine& m) {
  for (std::uint64_t off = 64; off < 4 * vm::Machine::kDirtyPageSize;
       off += vm::Machine::kDirtyPageSize) {
    benchmark::DoNotOptimize(m.write_u64(os::layout::kHeapCtl + off, 1));
  }
}

/// Reference: a full cold reboot per iteration (memset the kernel data
/// region, re-execute heap_init/vm_init on the VM).
void BM_ColdReboot(benchmark::State& state) {
  os::Kernel kernel(os::OsVersion::kVos2000);
  kernel.set_warm_reboot(false);
  for (auto _ : state) {
    dirty_kernel(kernel.machine());
    kernel.reboot();
  }
}
BENCHMARK(BM_ColdReboot);

/// The warm path: replay the recorded boot write-log over only the pages
/// dirtied since the last reboot. The snapshot subsystem's acceptance bar
/// is >= 10x BM_ColdReboot (see BENCH_snapshot.json).
void BM_SnapshotRestore(benchmark::State& state) {
  os::Kernel kernel(os::OsVersion::kVos2000);  // first boot records the log
  for (auto _ : state) {
    dirty_kernel(kernel.machine());
    kernel.reboot();
  }
}
BENCHMARK(BM_SnapshotRestore);

/// Full cold SUB bring-up: MiniC compile + boot + file set + server start —
/// what every campaign task used to pay before warm-boot snapshots.
void BM_ControllerBuildCold(benchmark::State& state) {
  for (auto _ : state) {
    depbench::Controller ctl(os::OsVersion::kVos2000, "apex");
    benchmark::DoNotOptimize(ctl.kernel().ticks());
  }
}
BENCHMARK(BM_ControllerBuildCold);

/// Warm SUB bring-up: reconstruct the controller from the shared per-cell
/// snapshot (restore machine state + COW disk + server process image).
void BM_ControllerBuildWarm(benchmark::State& state) {
  const auto snap = snapshot::capture_warm_boot(os::OsVersion::kVos2000, "apex");
  for (auto _ : state) {
    depbench::Controller ctl(snap);
    benchmark::DoNotOptimize(ctl.kernel().ticks());
  }
}
BENCHMARK(BM_ControllerBuildWarm);

void BM_FaultloadSerialize(benchmark::State& state) {
  os::Kernel kernel(os::OsVersion::kVosXp);
  std::vector<std::string> fns;
  for (const auto& f : os::api_functions()) fns.emplace_back(f.name);
  const auto fl = swfit::Scanner{}.scan(kernel.pristine_image(), fns);
  for (auto _ : state) {
    const auto text = fl.serialize();
    auto back = swfit::Faultload::parse(text);
    benchmark::DoNotOptimize(back.faults.size());
  }
}
BENCHMARK(BM_FaultloadSerialize);

}  // namespace

int main(int argc, char** argv) {
  // Report which interpreter lowering this binary was built with — the
  // micro schema (tools/json_check --schema micro) and the A/B comparison
  // need it to interpret BM_VmDispatch* numbers.
  benchmark::AddCustomContext("vm_dispatch", vm::Machine::dispatch_kind());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
