// BM_CampaignSteal — scheduler A/B: work-stealing chunked campaign vs the
// static sharder, on the naturally skewed faultload (hang-window faults that
// burn the full observation window next to fast-fail faults that collapse
// it), with a byte-identity check across the two schedules.
//
//   A (static): --no-steal + one equal-position chunk per worker per
//     iteration — the old fixed (cell, task, shard) grid. Chunk costs are
//     wildly uneven, so workers idle while the unlucky one drains its
//     worst-case range.
//   B (steal):  adaptive cost-balanced chunks + LPT seeding + steal-half.
//
// Both runs produce byte-identical campaign artifacts (manifest JSON,
// journal JSONL, activation JSONL) — the bench fails hard if they diverge.
// Results go to BENCH_sched.json (schema genfault-sched-bench/1, validated
// by tools/json_check --schema sched), including each run's SchedStats.
#include <chrono>
#include <cstring>
#include <sstream>

#include "campaign_common.h"
#include "obs/json.h"

namespace {

using namespace gf;

struct AbRun {
  double wall_ms = 0;
  double makespan_ms = 0;  ///< max per-worker thread-CPU (dedicated-core wall)
  std::string manifest;
  std::string journal;
  std::string activations;
  std::string sched_json;
};

AbRun run_campaign(const benchrun::CampaignOptions& copt, bool steal,
                   int shards) {
  auto ropt = benchrun::to_runner_options(copt);
  ropt.steal = steal;
  ropt.shards = shards;
  ropt.chunk = 0;
  ropt.obs = true;
  ropt.trace = true;

  depbench::CampaignRunner runner(ropt);
  const auto t0 = std::chrono::steady_clock::now();
  const auto cells = runner.run_campaign();
  AbRun out;
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();

  const auto* obs = runner.campaign_obs();
  out.manifest = depbench::campaign_manifest_json(cells, runner.options(), obs);
  std::ostringstream journal;
  depbench::write_campaign_journal(journal, *obs);
  out.journal = journal.str();
  std::ostringstream act;
  for (const auto& cell : cells) {
    for (std::size_t it = 0; it < cell.iterations.size(); ++it) {
      trace::write_jsonl(act,
                         cell.os_name + "/" + cell.server_name + "/iter" +
                             std::to_string(it),
                         cell.iterations[it].activations);
    }
  }
  out.activations = act.str();
  out.makespan_ms = runner.scheduler_stats()->makespan_cpu_us() / 1000.0;
  out.sched_json = runner.scheduler_stats()->to_json();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  benchrun::CampaignOptions copt;
  // Sized so the cost skew is visible: windows long enough (scale 0.15 =
  // 1.5 s exposures) that the healthy-vs-killed op-count gap dominates the
  // fixed per-fault overhead, a chunky indivisible baseline per cell, and
  // more workers than the static partition can keep fed.
  copt.stride = 12;
  copt.iterations = 2;
  copt.time_scale = 0.15;
  copt.baseline_ms = 8000;
  copt.jobs = 8;
  // The A side reproduces the sharder the scheduler replaced: S equal-
  // position shards per iteration (its default was 4), block-partitioned,
  // no rebalancing.
  int static_shards = 4;
  std::string out_path = "BENCH_sched.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      copt.jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--stride") == 0 && i + 1 < argc) {
      copt.stride = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--iterations") == 0 && i + 1 < argc) {
      copt.iterations = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      copt.time_scale = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--baseline-ms") == 0 && i + 1 < argc) {
      copt.baseline_ms = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      copt.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--static-shards") == 0 && i + 1 < argc) {
      static_shards = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--jobs J] [--stride K] [--iterations N] "
                   "[--scale S] [--baseline-ms MS] [--seed X] "
                   "[--static-shards S] [--out FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  if (copt.jobs < 1) copt.jobs = 1;

  std::fprintf(stderr,
               "[BM_CampaignSteal] static sharder (jobs=%d, shards=%d)...\n",
               copt.jobs, static_shards);
  const auto stat = run_campaign(copt, /*steal=*/false, static_shards);
  std::fprintf(stderr, "[BM_CampaignSteal] work stealing (jobs=%d)...\n",
               copt.jobs);
  const auto steal = run_campaign(copt, /*steal=*/true, /*shards=*/1);

  const bool identical = stat.manifest == steal.manifest &&
                         stat.journal == steal.journal &&
                         stat.activations == steal.activations;
  const double speedup = steal.wall_ms > 0 ? stat.wall_ms / steal.wall_ms : 0;
  // Wall-clock only separates the two schedules when the host actually has
  // `jobs` cores to idle; the thread-CPU makespan (longest per-worker work
  // total = wall on dedicated cores) measures schedule quality regardless of
  // how loaded or small the machine running the bench is.
  const double makespan_speedup =
      steal.makespan_ms > 0 ? stat.makespan_ms / steal.makespan_ms : 0;
  std::printf(
      "BM_CampaignSteal: wall %.0f -> %.0f ms (%.2fx), makespan %.0f -> "
      "%.0f ms (%.2fx), artifacts %s\n",
      stat.wall_ms, steal.wall_ms, speedup, stat.makespan_ms,
      steal.makespan_ms, makespan_speedup,
      identical ? "byte-identical" : "DIVERGED");

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  using obs::json::number;
  out << "{\n  \"schema\": \"genfault-sched-bench/1\",\n";
  out << "  \"jobs\": " << copt.jobs << ",\n";
  out << "  \"static_ms\": " << number(stat.wall_ms) << ",\n";
  out << "  \"steal_ms\": " << number(steal.wall_ms) << ",\n";
  out << "  \"speedup\": " << number(speedup) << ",\n";
  out << "  \"static_makespan_ms\": " << number(stat.makespan_ms) << ",\n";
  out << "  \"steal_makespan_ms\": " << number(steal.makespan_ms) << ",\n";
  out << "  \"makespan_speedup\": " << number(makespan_speedup) << ",\n";
  out << "  \"artifacts_identical\": " << (identical ? "true" : "false")
      << ",\n";
  auto indent = [](const std::string& json) {
    std::string s;
    for (const char ch : json) {
      s += ch;
      if (ch == '\n') s += "  ";
    }
    while (!s.empty() && (s.back() == ' ' || s.back() == '\n')) s.pop_back();
    return s;
  };
  out << "  \"static\": " << indent(stat.sched_json) << ",\n";
  out << "  \"steal\": " << indent(steal.sched_json) << "\n}\n";
  out.close();
  std::fprintf(stderr, "[BM_CampaignSteal] results -> %s\n", out_path.c_str());

  // Divergent artifacts are a correctness bug, not a perf result.
  return identical ? 0 : 1;
}
