// Emulation-accuracy ablation (the property the paper's §4 "Accuracy"
// paragraph inherits from G-SWFIT's validation in ISSRE'02 [13]).
//
// For each fault type, a small MiniC function is compiled twice: once
// correct and binary-mutated by the G-SWFIT operator, and once with the
// *same bug written in the source*. Both versions run over an input sweep;
// the emulation is accurate where the observable outcomes (return value or
// trap) coincide. The paper's claim: machine-code mutation reproduces the
// code the compiler would have generated for the real bug, so agreement
// should be high.
#include <cstdio>
#include <string>
#include <vector>

#include "minic/compiler.h"
#include "swfit/injector.h"
#include "swfit/scanner.h"
#include "util/table.h"
#include "vm/machine.h"

namespace {

using namespace gf;

struct Case {
  const char* name;
  swfit::FaultType type;
  const char* correct;  ///< correct source (fn f + optional helpers)
  const char* bugged;   ///< source with the bug hand-written in
};

const Case kCases[] = {
    {"missing if-construct", swfit::FaultType::kMIFS,
     "fn f(a, b) { if (a < 0) { return -1; } return a * 2 + b; }",
     "fn f(a, b) { return a * 2 + b; }"},

    {"missing if-guard", swfit::FaultType::kMIA,
     "fn f(a, b) { var r = b; if (a > 10) { r = r + 5; } return r + a; }",
     "fn f(a, b) { var r = b; r = r + 5; return r + a; }"},

    {"wrong branch condition", swfit::FaultType::kWLEC,
     "fn f(a, b) { var r = b; if (a > 10) { r = r + 5; } return r; }",
     "fn f(a, b) { var r = b; if (a <= 10) { r = r + 5; } return r; }"},

    {"missing initialization", swfit::FaultType::kMVI,
     "fn f(a, b) { var x = 7; var y = a; return x + y + b; }",
     "fn f(a, b) { var x; var y = a; return x + y + b; }"},

    {"missing value assignment", swfit::FaultType::kMVAV,
     "fn f(a, b) { var x = 1; if (a > 0) { x = 9; } return x * b; }",
     "fn f(a, b) { var x = 1; if (a > 0) { } return x * b; }"},

    {"missing expr assignment", swfit::FaultType::kMVAE,
     "fn f(a, b) { var x = 1; x = a + b; return x + 3; }",
     "fn f(a, b) { var x = 1; return x + 3; }"},

    {"missing function call", swfit::FaultType::kMFC,
     "fn tick(p) { store(p, load(p) + 1); return 0; }\n"
     "fn f(a, b) { store(0x150000, a); tick(0x150000); var v = load(0x150000);"
     " return v + b; }",
     "fn tick(p) { store(p, load(p) + 1); return 0; }\n"
     "fn f(a, b) { store(0x150000, a); var v = load(0x150000); return v + b; }"},

    {"wrong assigned value", swfit::FaultType::kWVAV,
     "fn f(a, b) { var x = 5; return x * a + b; }",
     "fn f(a, b) { var x = 6; return x * a + b; }"},

    {"missing && clause", swfit::FaultType::kMLAC,
     "fn f(a, b) { var r = 0; if (a > 0 && b > 0) { r = 1; } return r; }",
     "fn f(a, b) { var r = 0; if (b > 0) { r = 1; } return r; }"},

    {"wrong param expression", swfit::FaultType::kWAEP,
     "fn g(v) { return v * 3; }\nfn f(a, b) { return g(a + b); }",
     "fn g(v) { return v * 3; }\nfn f(a, b) { return g(a - b); }"},

    {"wrong param variable", swfit::FaultType::kWPFV,
     "fn g(v) { return v * 3; }\n"
     "fn f(a, b) { var x = a; var y = b; var r = g(x); return r + y; }",
     "fn g(v) { return v * 3; }\n"
     "fn f(a, b) { var x = a; var y = b; var r = g(y); return r + y; }"},
};

struct Outcome {
  bool ok;
  std::int64_t value;
  vm::Trap trap;
  bool operator==(const Outcome&) const = default;
};

Outcome run_fn(const isa::Image& img, std::int64_t a, std::int64_t b) {
  vm::Machine m;
  m.load_image(img);
  const auto* sym = img.find_symbol("f");
  const auto r = m.call(sym->addr, {a, b}, 100000);
  return {r.ok(), r.ret, r.trap};
}

}  // namespace

int main() {
  std::printf("Emulation-accuracy ablation: binary mutation (G-SWFIT) vs the "
              "same bug written in source\n\n");

  util::Table t({"Fault type", "Scenario", "Inputs", "Agreement",
                 "Accuracy"});
  double total_agree = 0, total_inputs = 0;

  for (const auto& c : kCases) {
    // Scan the correct binary and apply the first mutation of the intended
    // type inside f.
    auto mutated = minic::compile(c.correct, "correct", 0x1000);
    const auto fl = swfit::Scanner{}.scan_all(mutated);
    const swfit::FaultLocation* site = nullptr;
    for (const auto& fault : fl.faults) {
      if (fault.type == c.type && fault.function == "f") {
        site = &fault;
        break;
      }
    }
    if (site == nullptr) {
      std::printf("  %-24s: no %s site found (scanner gap)\n", c.name,
                  swfit::fault_type_name(c.type));
      continue;
    }
    if (!swfit::apply_fault(mutated, *site)) {
      std::printf("  %-24s: mutation failed to apply\n", c.name);
      continue;
    }
    const auto source_bug = minic::compile(c.bugged, "bugged", 0x1000);

    int agree = 0, inputs = 0;
    for (std::int64_t a = -20; a <= 20; ++a) {
      for (std::int64_t b : {-7, -1, 0, 1, 3, 12, 100}) {
        ++inputs;
        agree += run_fn(mutated, a, b) == run_fn(source_bug, a, b);
      }
    }
    total_agree += agree;
    total_inputs += inputs;
    t.row()
        .cell(swfit::fault_type_name(c.type))
        .cell(c.name)
        .cell(static_cast<long long>(inputs))
        .cell(static_cast<long long>(agree))
        .cell(util::fmt(100.0 * agree / inputs, 1) + " %");
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Overall agreement: %.1f %% (the technique emulates the fault "
              "itself, not just its effects)\n",
              total_inputs > 0 ? 100.0 * total_agree / total_inputs : 0.0);
  return 0;
}
