#!/usr/bin/env sh
# Runs the micro-benchmark substrate with JSON output so each PR can record
# a perf-trajectory point (BENCH_micro.json) comparable across revisions.
#
# Usage: bench/run_benches.sh [build-dir] [out.json] [extra benchmark args...]
set -eu

BUILD_DIR=${1:-build}
OUT=${2:-BENCH_micro.json}
[ $# -ge 1 ] && shift
[ $# -ge 1 ] && shift

if [ ! -x "$BUILD_DIR/bench/micro_substrate" ]; then
  echo "error: $BUILD_DIR/bench/micro_substrate not built" \
       "(cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi

exec "$BUILD_DIR/bench/micro_substrate" \
  --benchmark_out="$OUT" --benchmark_out_format=json "$@"
