#!/usr/bin/env bash
# Runs the micro-benchmark substrate with JSON output so each PR can record
# a perf-trajectory point (BENCH_micro.json) comparable across revisions,
# then runs a short traced campaign to record the measured fault-activation
# summary (BENCH_activation.json), and finally measures the warm-boot
# snapshot speedup (BENCH_snapshot.json): the micro-level cold-reboot vs
# snapshot-restore ratio plus an end-to-end quick campaign A/B with
# --cold-boot (results are bit-identical; only wall time differs), and the
# work-stealing scheduler A/B (BENCH_sched.json): chunked + stealing vs the
# static sharder on a skewed faultload, artifacts byte-compared, and the
# campaign-store A/B (BENCH_store.json): cold vs all-hit resume vs
# incremental re-run after a one-fault-type edit, artifacts byte-compared.
#
# Usage: bench/run_benches.sh [build-dir] [out.json] [extra benchmark args...]
set -euo pipefail

BUILD_DIR=${1:-build}
OUT=${2:-BENCH_micro.json}
ACT_OUT=${ACT_OUT:-BENCH_activation.json}
SNAP_OUT=${SNAP_OUT:-BENCH_snapshot.json}
OBS_OUT=${OBS_OUT:-BENCH_obs.json}
SCHED_OUT=${SCHED_OUT:-BENCH_sched.json}
STORE_OUT=${STORE_OUT:-BENCH_store.json}
[ $# -ge 1 ] && shift
[ $# -ge 1 ] && shift

# Refuse to record trajectory points from anything but a Release build.
# The committed BENCH_*.json are compared across revisions; a Debug (or
# unset-type) build skews every number 5-20x and poisons the trajectory.
# Note the google-benchmark context's own "library_build_type" reports how
# the *library* was built (the distro package says "debug"), not this
# project — so the guard reads the project's CMakeCache.txt instead, and we
# inject an explicit build_type context key the micro schema checks.
if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  echo "error: $BUILD_DIR/CMakeCache.txt not found — configure first:" \
       "cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release" >&2
  exit 1
fi
BUILD_TYPE=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt")
if [ "$BUILD_TYPE" != "Release" ]; then
  echo "error: $BUILD_DIR is configured as '${BUILD_TYPE:-<empty>}', not" \
       "Release — benchmark numbers from it are not comparable." >&2
  echo "  reconfigure: cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release" \
       "&& cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

for bin in bench/micro_substrate bench/table5_campaign bench/campaign_steal \
           bench/campaign_resume tools/json_check tools/gfbench \
           tools/bench_diff tools/gfcheck; do
  if [ ! -x "$BUILD_DIR/$bin" ]; then
    echo "error: $BUILD_DIR/$bin not built" \
         "(cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release &&" \
         "cmake --build $BUILD_DIR -j)" >&2
    exit 1
  fi
done

# Snapshot the previously-recorded baselines before this run overwrites
# them: tools/bench_diff gates the new numbers against these at the end
# (ratio metrics only, tolerance BENCH_DIFF_TOL, default 15%). Set
# BENCH_DIFF=0 to record a fresh trajectory point without gating.
BASE_DIR=$(mktemp -d)
for f in "$OUT" "$SNAP_OUT" "$OBS_OUT" "$SCHED_OUT" "$STORE_OUT"; do
  [ -f "$f" ] && cp "$f" "$BASE_DIR/$(basename "$f")"
done

"$BUILD_DIR/bench/micro_substrate" \
  --benchmark_context=build_type=Release \
  --benchmark_out="$OUT" --benchmark_out_format=json "$@"

# Short traced campaign: wide stride + compressed exposure/baseline windows
# keep this to a few seconds while still exercising every fault type.
"$BUILD_DIR/bench/table5_campaign" --quick --scale 0.05 --baseline-ms 2000 \
  --activation-json "$ACT_OUT" > /dev/null
echo "activation summary written to $ACT_OUT" >&2

# Warm-boot snapshot speedup. Micro ratio: BM_ColdReboot vs
# BM_SnapshotRestore real_time pulled from the benchmark JSON (the subsystem's
# acceptance bar is ratio >= 10). End-to-end: a bring-up-heavy campaign
# (many short shard tasks — the fan-out regime snapshots exist for) timed
# with snapshots on (default) and off (--cold-boot); results are
# bit-identical, only wall time differs.
ratio_json=$(awk '
  /"name":/ { name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name) }
  /"real_time":/ {
    t = $0; sub(/.*"real_time": /, "", t); sub(/,.*/, "", t)
    if (name == "BM_ColdReboot" && !(name in seen)) { cold = t; seen[name] = 1 }
    if (name == "BM_SnapshotRestore" && !(name in seen)) { warm = t; seen[name] = 1 }
  }
  END {
    if (cold == "" || warm == "" || warm + 0 == 0) exit 1
    printf "  \"cold_reboot_ns\": %s,\n  \"snapshot_restore_ns\": %s,\n  \"micro_speedup\": %.2f", \
           cold, warm, cold / warm
  }' "$OUT")

AB_ARGS=(--stride 48 --iterations 3 --shards 4 --scale 0.02
         --baseline-ms 500 --jobs 4)
now_ms() { date +%s%3N; }
t0=$(now_ms)
"$BUILD_DIR/bench/table5_campaign" "${AB_ARGS[@]}" > /dev/null 2>&1
warm_ms=$(( $(now_ms) - t0 ))
t0=$(now_ms)
"$BUILD_DIR/bench/table5_campaign" "${AB_ARGS[@]}" --cold-boot > /dev/null 2>&1
cold_ms=$(( $(now_ms) - t0 ))

{
  echo "{"
  echo "$ratio_json,"
  echo "  \"campaign_warm_ms\": $warm_ms,"
  echo "  \"campaign_cold_ms\": $cold_ms,"
  awk -v c="$cold_ms" -v w="$warm_ms" \
    'BEGIN { printf("  \"campaign_speedup\": %.2f\n", (w > 0) ? c / w : 0) }'
  echo "}"
} > "$SNAP_OUT"
echo "snapshot speedup written to $SNAP_OUT" >&2

# Observability overhead (BENCH_obs.json). Micro: VM dispatch rate with obs
# compiled in (acceptance bar: >= 95% of the pre-obs baseline — counters are
# harvested at run boundaries, the loop only keeps a local step register)
# and the API-call A/B against the one live sink (BM_ApiCallAlloc vs
# BM_ApiCallAllocObs). End-to-end: the same quick campaign with and without
# the artifact pipeline (per-task TaskObs + merge + manifest/journal/trace
# rendering); results are bit-identical, only wall time differs.
obs_json=$(awk '
  /"name":/ { name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name) }
  /"items_per_second":/ {
    t = $0; sub(/.*"items_per_second": /, "", t); sub(/,.*/, "", t)
    if (name ~ /^BM_VmDispatch\/100000$/ && !(name in seen)) {
      dispatch = t; seen[name] = 1
    }
    if (name ~ /^BM_VmDispatchProfiled\/100000$/ && !(name in seen)) {
      profiled = t; seen[name] = 1
    }
  }
  /"real_time":/ {
    t = $0; sub(/.*"real_time": /, "", t); sub(/,.*/, "", t)
    if (name == "BM_ApiCallAlloc" && !(name in seen)) { plain = t; seen[name] = 1 }
    if (name == "BM_ApiCallAllocObs" && !(name in seen)) { obs = t; seen[name] = 1 }
  }
  END {
    if (dispatch == "" || profiled == "" || plain == "" || obs == "" || \
        plain + 0 == 0 || dispatch + 0 == 0) exit 1
    printf "  \"vm_dispatch_items_per_s\": %s,\n", dispatch
    printf "  \"vm_dispatch_profiled_items_per_s\": %s,\n", profiled
    printf "  \"profiler_armed_retention_rate\": %.3f,\n", profiled / dispatch
    printf "  \"api_call_ns\": %s,\n  \"api_call_obs_ns\": %s,\n", plain, obs
    printf "  \"api_obs_overhead\": %.3f", obs / plain
  }' "$OUT")

# Acceptance bar: the armed sampler (stride 4096) must retain >= 80% of the
# plain dispatch rate. Disarmed retention is covered by BM_VmDispatch itself
# (the countdown idles; the branch never fires) and the committed-baseline
# gate below.
echo "$obs_json" | awk '/profiler_armed_retention_rate/ {
    r = $0; sub(/.*: /, "", r); sub(/,.*/, "", r)
    if (r + 0 < 0.80) {
      printf "error: armed profiler retains only %.1f%% of dispatch rate (bar: 80%%)\n", r * 100 > "/dev/stderr"
      exit 1
    }
  }'

OBS_DIR=$(mktemp -d)
trap 'rm -rf "$OBS_DIR" "$BASE_DIR"' EXIT
t0=$(now_ms)
"$BUILD_DIR/bench/table5_campaign" "${AB_ARGS[@]}" \
  --metrics-json "$OBS_DIR/manifest.json" \
  --journal-out "$OBS_DIR/journal.jsonl" \
  --chrome-trace "$OBS_DIR/trace.json" \
  --html-report "$OBS_DIR/report.html" > /dev/null 2>&1
obs_ms=$(( $(now_ms) - t0 ))

{
  echo "{"
  echo "$obs_json,"
  echo "  \"campaign_plain_ms\": $warm_ms,"
  echo "  \"campaign_obs_ms\": $obs_ms,"
  awk -v p="$warm_ms" -v o="$obs_ms" \
    'BEGIN { printf("  \"campaign_obs_overhead\": %.3f\n", (p > 0) ? o / p : 0) }'
  echo "}"
} > "$OBS_OUT"
echo "obs overhead written to $OBS_OUT" >&2

# Scheduler A/B (BM_CampaignSteal): the same skewed campaign through the
# static sharder and the work-stealing chunked scheduler at 8 workers. The
# bench exits non-zero if the two schedules' artifacts are not byte-identical,
# and records both wall time and the host-load-independent thread-CPU
# makespan (acceptance bar: makespan_speedup >= 1.3 on the skewed faultload).
"$BUILD_DIR/bench/campaign_steal" --out "$SCHED_OUT" 2> /dev/null
echo "scheduler A/B written to $SCHED_OUT" >&2

# Campaign-store A/B (BM_CampaignResume / BM_CampaignIncremental): the same
# campaign cold, resumed against the populated store (all hits), and after a
# one-fault-type edit (only that type's keys re-execute). The bench exits
# non-zero if the resume artifacts are not byte-identical to the cold run's
# or the hit/miss pattern is wrong (acceptance bar: incremental >= 5x).
"$BUILD_DIR/bench/campaign_resume" --jobs 4 --store-dir "$OBS_DIR/store" \
  --out "$STORE_OUT" 2> /dev/null
echo "campaign store A/B written to $STORE_OUT" >&2

# Deterministic profiler + cross-campaign diff: a short profiled campaign
# emits the cycle-profile artifact, the flamegraph and a profiled manifest;
# a self-diff of that manifest must be drift-free (exit 0).
"$BUILD_DIR/bench/table5_campaign" "${AB_ARGS[@]}" \
  --metrics-json "$OBS_DIR/pmanifest.json" \
  --profile-json "$OBS_DIR/profile.json" \
  --flame-out "$OBS_DIR/flame.txt" > /dev/null 2>&1
if [ ! -s "$OBS_DIR/flame.txt" ]; then
  echo "error: profiled campaign produced an empty flamegraph" >&2
  exit 1
fi
"$BUILD_DIR/tools/gfbench" diff "$OBS_DIR/pmanifest.json" \
  "$OBS_DIR/pmanifest.json" --json "$OBS_DIR/selfdiff.json" > /dev/null
echo "profiled campaign + self-diff ok" >&2

# Differential fuzz budget: the same fixed seed range the fuzz CI job runs
# (GFCHECK_CASES to scale it; every failure prints a replayable --case-seed
# repro line). Curated hardware gets the full oracle sweep on every bench
# run, not just on CI pushes.
"$BUILD_DIR/tools/gfcheck" --seed 1 --cases "${GFCHECK_CASES:-25}" \
  --scratch "$OBS_DIR/gfcheck-scratch" > /dev/null
echo "gfcheck fuzz budget ok (${GFCHECK_CASES:-25} cases/engine)" >&2

# Validate every emitted JSON artifact; a malformed emitter fails the run
# loudly here instead of producing quietly-broken dashboards downstream.
"$BUILD_DIR/tools/json_check" "$ACT_OUT" "$SNAP_OUT" "$OBS_OUT"
"$BUILD_DIR/tools/json_check" --schema micro "$OUT"
"$BUILD_DIR/tools/json_check" --schema sched "$SCHED_OUT"
"$BUILD_DIR/tools/json_check" --schema store "$STORE_OUT"
"$BUILD_DIR/tools/json_check" --schema manifest "$OBS_DIR/manifest.json"
"$BUILD_DIR/tools/json_check" --schema manifest "$OBS_DIR/pmanifest.json"
"$BUILD_DIR/tools/json_check" --schema profile "$OBS_DIR/profile.json"
"$BUILD_DIR/tools/json_check" --schema diff "$OBS_DIR/selfdiff.json"
"$BUILD_DIR/tools/json_check" --schema chrome "$OBS_DIR/trace.json"
"$BUILD_DIR/tools/json_check" --jsonl "$OBS_DIR/journal.jsonl"
echo "artifact validation ok" >&2

# Regression gate: the fresh numbers against the baselines committed before
# this run. Only dimensionless ratio metrics gate; absolute timings are
# machine-dependent and informational. BENCH_micro.json is all absolute
# timings, so it records the trajectory but never gates.
if [ "${BENCH_DIFF:-1}" != "0" ]; then
  for f in "$SNAP_OUT" "$OBS_OUT" "$SCHED_OUT" "$STORE_OUT"; do
    base="$BASE_DIR/$(basename "$f")"
    [ -f "$base" ] || continue
    "$BUILD_DIR/tools/bench_diff" "$base" "$f" \
      --tolerance "${BENCH_DIFF_TOL:-15}"
  done
  echo "bench_diff gate ok" >&2
fi
