#!/usr/bin/env bash
# Runs the micro-benchmark substrate with JSON output so each PR can record
# a perf-trajectory point (BENCH_micro.json) comparable across revisions,
# then runs a short traced campaign to record the measured fault-activation
# summary (BENCH_activation.json), and finally measures the warm-boot
# snapshot speedup (BENCH_snapshot.json): the micro-level cold-reboot vs
# snapshot-restore ratio plus an end-to-end quick campaign A/B with
# --cold-boot (results are bit-identical; only wall time differs).
#
# Usage: bench/run_benches.sh [build-dir] [out.json] [extra benchmark args...]
set -euo pipefail

BUILD_DIR=${1:-build}
OUT=${2:-BENCH_micro.json}
ACT_OUT=${ACT_OUT:-BENCH_activation.json}
SNAP_OUT=${SNAP_OUT:-BENCH_snapshot.json}
[ $# -ge 1 ] && shift
[ $# -ge 1 ] && shift

for bin in bench/micro_substrate bench/table5_campaign; do
  if [ ! -x "$BUILD_DIR/$bin" ]; then
    echo "error: $BUILD_DIR/$bin not built" \
         "(cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
    exit 1
  fi
done

"$BUILD_DIR/bench/micro_substrate" \
  --benchmark_out="$OUT" --benchmark_out_format=json "$@"

# Short traced campaign: wide stride + compressed exposure/baseline windows
# keep this to a few seconds while still exercising every fault type.
"$BUILD_DIR/bench/table5_campaign" --quick --scale 0.05 --baseline-ms 2000 \
  --activation-json "$ACT_OUT" > /dev/null
echo "activation summary written to $ACT_OUT" >&2

# Warm-boot snapshot speedup. Micro ratio: BM_ColdReboot vs
# BM_SnapshotRestore real_time pulled from the benchmark JSON (the subsystem's
# acceptance bar is ratio >= 10). End-to-end: a bring-up-heavy campaign
# (many short shard tasks — the fan-out regime snapshots exist for) timed
# with snapshots on (default) and off (--cold-boot); results are
# bit-identical, only wall time differs.
ratio_json=$(awk '
  /"name":/ { name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name) }
  /"real_time":/ {
    t = $0; sub(/.*"real_time": /, "", t); sub(/,.*/, "", t)
    if (name == "BM_ColdReboot" && !(name in seen)) { cold = t; seen[name] = 1 }
    if (name == "BM_SnapshotRestore" && !(name in seen)) { warm = t; seen[name] = 1 }
  }
  END {
    if (cold == "" || warm == "" || warm + 0 == 0) exit 1
    printf "  \"cold_reboot_ns\": %s,\n  \"snapshot_restore_ns\": %s,\n  \"micro_speedup\": %.2f", \
           cold, warm, cold / warm
  }' "$OUT")

AB_ARGS=(--stride 48 --iterations 3 --shards 4 --scale 0.02
         --baseline-ms 500 --jobs 4)
now_ms() { date +%s%3N; }
t0=$(now_ms)
"$BUILD_DIR/bench/table5_campaign" "${AB_ARGS[@]}" > /dev/null 2>&1
warm_ms=$(( $(now_ms) - t0 ))
t0=$(now_ms)
"$BUILD_DIR/bench/table5_campaign" "${AB_ARGS[@]}" --cold-boot > /dev/null 2>&1
cold_ms=$(( $(now_ms) - t0 ))

{
  echo "{"
  echo "$ratio_json,"
  echo "  \"campaign_warm_ms\": $warm_ms,"
  echo "  \"campaign_cold_ms\": $cold_ms,"
  awk -v c="$cold_ms" -v w="$warm_ms" \
    'BEGIN { printf("  \"campaign_speedup\": %.2f\n", (w > 0) ? c / w : 0) }'
  echo "}"
} > "$SNAP_OUT"
echo "snapshot speedup written to $SNAP_OUT" >&2
