#!/usr/bin/env bash
# Runs the micro-benchmark substrate with JSON output so each PR can record
# a perf-trajectory point (BENCH_micro.json) comparable across revisions,
# then runs a short traced campaign to record the measured fault-activation
# summary (BENCH_activation.json).
#
# Usage: bench/run_benches.sh [build-dir] [out.json] [extra benchmark args...]
set -euo pipefail

BUILD_DIR=${1:-build}
OUT=${2:-BENCH_micro.json}
ACT_OUT=${ACT_OUT:-BENCH_activation.json}
[ $# -ge 1 ] && shift
[ $# -ge 1 ] && shift

for bin in bench/micro_substrate bench/table5_campaign; do
  if [ ! -x "$BUILD_DIR/$bin" ]; then
    echo "error: $BUILD_DIR/$bin not built" \
         "(cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
    exit 1
  fi
done

"$BUILD_DIR/bench/micro_substrate" \
  --benchmark_out="$OUT" --benchmark_out_format=json "$@"

# Short traced campaign: wide stride + compressed exposure/baseline windows
# keep this to a few seconds while still exercising every fault type.
"$BUILD_DIR/bench/table5_campaign" --quick --scale 0.05 --baseline-ms 2000 \
  --activation-json "$ACT_OUT" > /dev/null
echo "activation summary written to $ACT_OUT" >&2
