// Ablation: sensitivity of the faultload to the G-SWFIT scan constraints.
//
// The operator library encodes "look like a real residual fault"
// restrictions (max if-body size, straight-line block bounds, the
// parameter-to-call window, whether kernel intrinsics count as calls).
// This ablation quantifies how each knob moves the faultload — the design
// decisions DESIGN.md §6 calls out.
#include <cstdio>

#include "os/kernel.h"
#include "swfit/scanner.h"
#include "util/table.h"

namespace {

using namespace gf;

int total_faults(const os::Kernel& kernel, const swfit::ScanOptions& opts,
                 std::array<int, swfit::kNumFaultTypes>* counts = nullptr) {
  std::vector<std::string> fns;
  for (const auto& f : os::api_functions()) fns.emplace_back(f.name);
  swfit::Scanner scanner(opts);
  const auto fl = scanner.scan(kernel.pristine_image(), fns);
  if (counts != nullptr) *counts = fl.counts_by_type();
  return static_cast<int>(fl.faults.size());
}

}  // namespace

int main() {
  std::printf("Scan-constraint ablation (VOS-XP faultload size under each "
              "knob)\n\n");
  os::Kernel kernel(os::OsVersion::kVosXp);

  const swfit::ScanOptions base;
  std::array<int, swfit::kNumFaultTypes> base_counts{};
  const int baseline = total_faults(kernel, base, &base_counts);
  std::printf("baseline options: %d faults\n\n", baseline);

  util::Table t({"Knob", "Setting", "Faults", "Delta vs baseline",
                 "Mainly moves"});
  auto row = [&](const char* knob, const std::string& setting,
                 const swfit::ScanOptions& opts, const char* moves) {
    const int n = total_faults(kernel, opts);
    t.row().cell(knob).cell(setting).cell(static_cast<long long>(n));
    const int delta = n - baseline;
    t.cell((delta >= 0 ? "+" : "") + std::to_string(delta)).cell(moves);
  };

  {
    auto o = base;
    o.max_if_body = 2;
    row("max_if_body", "2 (tiny bodies only)", o, "MIA/MIFS");
    o.max_if_body = 16;
    row("max_if_body", "16 (large bodies)", o, "MIA/MIFS");
  }
  {
    auto o = base;
    o.min_block = 3;
    o.max_block = 3;
    row("block bounds", "exactly 3", o, "MLPC");
    o.min_block = 2;
    o.max_block = 10;
    row("block bounds", "2..10", o, "MLPC");
  }
  {
    auto o = base;
    o.call_window = 2;
    row("call_window", "2 (tight)", o, "WAEP/WPFV");
    o.call_window = 10;
    row("call_window", "10 (loose)", o, "WAEP/WPFV");
  }
  {
    auto o = base;
    o.include_sys = false;
    row("include_sys", "false (CALL only)", o, "MFC/WAEP/WPFV");
  }
  {
    auto o = base;
    o.mlac_gap = 2;
    row("mlac_gap", "2 (adjacent tests)", o, "MLAC");
    o.mlac_gap = 12;
    row("mlac_gap", "12 (distant tests)", o, "MLAC");
  }
  std::printf("%s\n", t.to_string().c_str());

  std::printf("Baseline per-type counts: ");
  for (int i = 0; i < swfit::kNumFaultTypes; ++i) {
    std::printf("%s=%d ", swfit::fault_type_name(static_cast<swfit::FaultType>(i)),
                base_counts[static_cast<std::size_t>(i)]);
  }
  std::printf("\n\nReading: the faultload is most sensitive to the MLPC block "
              "bounds and the if-body cap — exactly the constraints G-SWFIT "
              "restricts to keep mutants representative of residual faults.\n");
  return 0;
}
