// gfcheck — the property-based differential fuzzer CLI (src/check).
//
//   gfcheck [--engine all|matrix|vm|structure] [--seed N] [--cases K]
//           [--case-seed S]... [--scratch DIR] [--dump FILE] [--verbose]
//
// Runs a fixed, seed-named budget of randomized differential cases through
// the selected engines. Every failure prints the engine, the 64-bit case
// seed, the violated oracle, and a complete repro command line; the exit
// status is 1 when any oracle was violated, 2 on usage errors, 0 otherwise.
//
//   --seed N       base seed; case i runs at case_seed(N, i)  (default 1)
//   --cases K      cases per engine                           (default 25)
//   --case-seed S  replay exactly this case seed (repeatable; the repro
//                  path printed by a failure). Overrides --seed/--cases.
//   --scratch DIR  scratch directory for store-backed cases
//   --dump FILE    write the VM engine's canonical per-case digest lines;
//                  CI cmp's the dumps of threaded- and switch-dispatch
//                  builds (the cross-lowering oracle)
//   --verbose      narrate every case to stderr
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "check/check.h"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: gfcheck [--engine all|matrix|vm|structure] [--seed N]\n"
      "               [--cases K] [--case-seed S]... [--scratch DIR]\n"
      "               [--dump FILE] [--verbose]\n");
  return 2;
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 0);  // accepts the 0x... spelling of repros
  return end != nullptr && end != s && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  std::string engine = "all";
  std::string dump_path;
  gf::check::CheckOptions opt;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--engine") {
      const char* v = value();
      if (v == nullptr) return usage();
      engine = v;
      if (engine != "all" && engine != "matrix" && engine != "vm" &&
          engine != "structure") {
        return usage();
      }
    } else if (arg == "--seed") {
      const char* v = value();
      if (v == nullptr || !parse_u64(v, opt.seed)) return usage();
    } else if (arg == "--cases") {
      const char* v = value();
      std::uint64_t n = 0;
      if (v == nullptr || !parse_u64(v, n)) return usage();
      opt.cases = static_cast<std::size_t>(n);
    } else if (arg == "--case-seed") {
      const char* v = value();
      std::uint64_t s = 0;
      if (v == nullptr || !parse_u64(v, s)) return usage();
      opt.explicit_seeds.push_back(s);
    } else if (arg == "--scratch") {
      const char* v = value();
      if (v == nullptr) return usage();
      opt.scratch_dir = v;
    } else if (arg == "--dump") {
      const char* v = value();
      if (v == nullptr) return usage();
      dump_path = v;
      opt.want_dump = true;
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else {
      std::fprintf(stderr, "gfcheck: unknown argument '%s'\n", arg.c_str());
      return usage();
    }
  }

  struct EngineRun {
    const char* name;
    gf::check::CheckReport (*run)(const gf::check::CheckOptions&);
  };
  const std::vector<EngineRun> engines = {
      {"matrix", gf::check::run_matrix_engine},
      {"vm", gf::check::run_vm_engine},
      {"structure", gf::check::run_structure_engine},
  };

  std::size_t total_cases = 0;
  std::vector<gf::check::Failure> failures;
  std::vector<std::string> dump_lines;
  for (const auto& e : engines) {
    if (engine != "all" && engine != e.name) continue;
    const auto report = e.run(opt);
    total_cases += report.cases;
    failures.insert(failures.end(), report.failures.begin(),
                    report.failures.end());
    dump_lines.insert(dump_lines.end(), report.dump_lines.begin(),
                      report.dump_lines.end());
    std::printf("gfcheck: engine %-9s %3zu cases, %zu failure%s\n", e.name,
                report.cases, report.failures.size(),
                report.failures.size() == 1 ? "" : "s");
  }
  if (total_cases == 0) return usage();

  if (!dump_path.empty()) {
    std::ofstream out(dump_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "gfcheck: cannot write %s\n", dump_path.c_str());
      return 2;
    }
    for (const auto& line : dump_lines) out << line << "\n";
  }

  for (const auto& f : failures) {
    std::printf("\nFAIL [%s] case seed 0x%016llx\n  %s\n  repro: %s\n",
                f.engine.c_str(),
                static_cast<unsigned long long>(f.case_seed),
                f.message.c_str(), f.repro.c_str());
  }
  if (!failures.empty()) {
    std::printf("\ngfcheck: %zu oracle violation%s in %zu cases\n",
                failures.size(), failures.size() == 1 ? "" : "s", total_cases);
    return 1;
  }
  std::printf("gfcheck: all %zu cases clean\n", total_cases);
  return 0;
}
