// bench_diff — regression gate for the committed BENCH_*.json baselines.
//
//   bench_diff BASELINE.json NEW.json [--tolerance PCT]
//
// Walks both documents and compares every numeric leaf by path. Only
// dimensionless ratio metrics gate (key name containing "overhead",
// "speedup", "rate", "utilization" or "imbalance"): those capture the
// *shape* of the performance story (obs overhead ~1x, warm-boot speedup,
// activation rates) and are comparable across machines. Absolute timings
// (ns/ms/items-per-second) are reported as informational drift only — the
// committed baselines come from a different box than CI runners.
//
// A boolean leaf that was true in the baseline and false in the new run is
// always a breach (e.g. artifacts_identical flipping off). Missing gated
// leaves breach; extra leaves are informational. Exit 0 when within
// tolerance, 1 on any breach, 2 on usage/parse errors.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

using gf::obs::json::Value;

struct Leaf {
  std::string path;
  bool is_bool = false;
  bool boolean = false;
  double number = 0;
};

void collect(const Value& v, const std::string& path, std::vector<Leaf>& out) {
  switch (v.type) {
    case Value::Type::kNumber:
      out.push_back({path, false, false, v.number});
      break;
    case Value::Type::kBool:
      out.push_back({path, true, v.boolean, 0});
      break;
    case Value::Type::kObject:
      for (const auto& [key, child] : v.object) {
        collect(child, path.empty() ? key : path + "." + key, out);
      }
      break;
    case Value::Type::kArray:
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        collect(v.array[i], path + "[" + std::to_string(i) + "]", out);
      }
      break;
    default:
      break;
  }
}

/// Dimensionless ratio metrics gate; absolute timings don't. The last path
/// component decides, so "static.utilization" gates but "workers[3].busy_us"
/// does not.
bool gated(const std::string& path) {
  const auto dot = path.rfind('.');
  const auto key = dot == std::string::npos ? path : path.substr(dot + 1);
  for (const char* pat :
       {"overhead", "speedup", "rate", "utilization", "imbalance"}) {
    if (key.find(pat) != std::string::npos) return true;
  }
  return false;
}

const Leaf* find_leaf(const std::vector<Leaf>& leaves, const std::string& path) {
  for (const auto& l : leaves) {
    if (l.path == path) return &l;
  }
  return nullptr;
}

bool slurp(const char* path, std::string& out) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", path);
    return false;
  }
  std::stringstream buf;
  buf << f.rdbuf();
  out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double tolerance = 15.0;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr,
                   "usage: bench_diff BASELINE.json NEW.json "
                   "[--tolerance PCT]\n");
      return 2;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff BASELINE.json NEW.json [--tolerance PCT]\n");
    return 2;
  }
  std::string base_text, new_text;
  if (!slurp(files[0], base_text) || !slurp(files[1], new_text)) return 2;
  std::string err;
  const auto base = gf::obs::json::parse(base_text, &err);
  if (!base) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", files[0], err.c_str());
    return 2;
  }
  const auto next = gf::obs::json::parse(new_text, &err);
  if (!next) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", files[1], err.c_str());
    return 2;
  }

  std::vector<Leaf> base_leaves, new_leaves;
  collect(*base, "", base_leaves);
  collect(*next, "", new_leaves);

  bool breached = false;
  int gated_checked = 0;
  for (const auto& b : base_leaves) {
    const auto* n = find_leaf(new_leaves, b.path);
    if (b.is_bool) {
      if (n == nullptr || n->is_bool != true) continue;
      if (b.boolean && !n->boolean) {
        std::printf("BREACH %-40s true -> false\n", b.path.c_str());
        breached = true;
      }
      continue;
    }
    const bool gate = gated(b.path);
    if (n == nullptr || n->is_bool) {
      if (gate) {
        std::printf("BREACH %-40s missing in new run\n", b.path.c_str());
        breached = true;
      }
      continue;
    }
    const double denom = std::abs(b.number) < 1e-12 ? 1.0 : std::abs(b.number);
    const double drift = 100.0 * std::abs(n->number - b.number) / denom;
    if (gate) {
      ++gated_checked;
      if (drift > tolerance) {
        std::printf("BREACH %-40s %.4g -> %.4g (%.1f%% > %.1f%%)\n",
                    b.path.c_str(), b.number, n->number, drift, tolerance);
        breached = true;
      }
    } else if (drift > tolerance) {
      // Informational: absolute numbers drift with the machine.
      std::printf("info   %-40s %.4g -> %.4g (%.1f%%)\n", b.path.c_str(),
                  b.number, n->number, drift);
    }
  }
  if (gated_checked == 0) {
    std::printf("BREACH no gated ratio metrics found in %s\n", files[0]);
    breached = true;
  }
  std::printf("bench_diff: %d ratio metrics checked, tolerance %.1f%% — %s\n",
              gated_checked, tolerance, breached ? "BREACHED" : "ok");
  return breached ? 1 : 0;
}
