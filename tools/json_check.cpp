// json_check — tiny JSON validator for the bench/CI artifact pipeline.
//
//   json_check FILE...                    strict syntax check
//   json_check --jsonl FILE...            one JSON object per line
//   json_check --schema metrics FILE      obs registry shape
//   json_check --schema chrome FILE       Chrome trace-event shape
//   json_check --schema manifest FILE     genfault-campaign manifest shape
//   json_check --schema sched FILE        scheduler A/B bench shape
//   json_check --schema store FILE        campaign-store bench/stats shape
//   json_check --schema micro FILE        BENCH_micro.json sanity (Release
//                                         build context, positive rates)
//   json_check --schema profile FILE      genfault-profile cycle profiles
//   json_check --schema diff FILE         genfault-diff campaign comparison
//
// Exit 0 when every file validates; prints the first problem per file and
// exits 1 otherwise. run_benches.sh and the CI workflow pipe every emitted
// artifact through this, so a malformed emitter fails loudly instead of
// producing quietly-broken dashboards.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

using gf::obs::json::Value;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: json_check [--jsonl] "
               "[--schema metrics|chrome|manifest|sched|store|micro|"
               "profile|diff] FILE...\n");
  std::exit(2);
}

bool fail(const std::string& file, const std::string& why) {
  std::fprintf(stderr, "json_check: %s: %s\n", file.c_str(), why.c_str());
  return false;
}

bool is_object(const Value* v) {
  return v != nullptr && v->type == Value::Type::kObject;
}
bool is_array(const Value* v) {
  return v != nullptr && v->type == Value::Type::kArray;
}
bool is_number(const Value* v) {
  return v != nullptr && v->type == Value::Type::kNumber;
}
bool is_string(const Value* v) {
  return v != nullptr && v->type == Value::Type::kString;
}

/// {"counters": {name: int...}, "gauges": {...}, "histograms":
///  {name: {count, sum, min, max, buckets[]}}}
bool check_metrics(const std::string& file, const Value& root) {
  if (root.type != Value::Type::kObject) return fail(file, "root not object");
  for (const char* key : {"counters", "gauges", "histograms"}) {
    if (!is_object(root.find(key))) {
      return fail(file, std::string("missing object field: ") + key);
    }
  }
  for (const auto& [name, v] : root.find("counters")->object) {
    if (v.type != Value::Type::kNumber) {
      return fail(file, "counter not a number: " + name);
    }
  }
  for (const auto& [name, h] : root.find("histograms")->object) {
    if (h.type != Value::Type::kObject) {
      return fail(file, "histogram not an object: " + name);
    }
    for (const char* key : {"count", "sum", "min", "max"}) {
      if (!is_number(h.find(key))) {
        return fail(file, "histogram " + name + " missing " + key);
      }
    }
    if (!is_array(h.find("buckets"))) {
      return fail(file, "histogram " + name + " missing buckets[]");
    }
  }
  return true;
}

/// {"traceEvents": [{"ph", "pid", "tid", "name", ...}...]} with matched B/E
/// nesting and monotone timestamps per (pid, tid) track.
bool check_chrome(const std::string& file, const Value& root) {
  if (root.type != Value::Type::kObject) return fail(file, "root not object");
  const auto* events = root.find("traceEvents");
  if (!is_array(events)) return fail(file, "missing traceEvents[]");
  // Track state keyed by "pid/tid": open B depth and last timestamp.
  std::vector<std::pair<std::string, std::pair<long, double>>> tracks;
  auto track = [&](const std::string& key)
      -> std::pair<long, double>& {
    for (auto& [k, st] : tracks) {
      if (k == key) return st;
    }
    tracks.emplace_back(key, std::make_pair(0L, -1e300));
    return tracks.back().second;
  };
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const auto& e = events->array[i];
    const auto at = "traceEvents[" + std::to_string(i) + "]";
    if (e.type != Value::Type::kObject) return fail(file, at + " not object");
    const auto* ph = e.find("ph");
    if (!is_string(ph)) return fail(file, at + " missing ph");
    if (!is_string(e.find("name"))) return fail(file, at + " missing name");
    if (!is_number(e.find("pid")) || !is_number(e.find("tid"))) {
      return fail(file, at + " missing pid/tid");
    }
    if (ph->string == "M") continue;  // metadata carries no timestamp
    const auto* ts = e.find("ts");
    if (!is_number(ts)) return fail(file, at + " missing ts");
    const auto key = std::to_string(e.find("pid")->number) + "/" +
                     std::to_string(e.find("tid")->number);
    auto& [depth, last_ts] = track(key);
    if (ts->number < last_ts) {
      return fail(file, at + " timestamp not monotone on track " + key);
    }
    last_ts = ts->number;
    if (ph->string == "B") ++depth;
    if (ph->string == "E") {
      if (depth <= 0) return fail(file, at + " unmatched E on track " + key);
      --depth;
    }
    if (ph->string == "X" && !is_number(e.find("dur"))) {
      return fail(file, at + " X event missing dur");
    }
  }
  for (const auto& [key, st] : tracks) {
    if (st.first != 0) {
      return fail(file, "unclosed B span(s) on track " + key);
    }
  }
  return true;
}

/// {"schema": "genfault-campaign/1", "options": {...}, "cells": [...],
///  "metrics": {...}|null}
bool check_manifest(const std::string& file, const Value& root) {
  if (root.type != Value::Type::kObject) return fail(file, "root not object");
  const auto* schema = root.find("schema");
  if (!is_string(schema) || schema->string != "genfault-campaign/1") {
    return fail(file, "schema is not genfault-campaign/1");
  }
  if (!is_object(root.find("options"))) return fail(file, "missing options{}");
  const auto* cells = root.find("cells");
  if (!is_array(cells)) return fail(file, "missing cells[]");
  for (std::size_t i = 0; i < cells->array.size(); ++i) {
    const auto& cell = cells->array[i];
    const auto at = "cells[" + std::to_string(i) + "]";
    if (cell.type != Value::Type::kObject) return fail(file, at + " not object");
    if (!is_string(cell.find("os")) || !is_string(cell.find("server"))) {
      return fail(file, at + " missing os/server");
    }
    if (!is_object(cell.find("baseline"))) {
      return fail(file, at + " missing baseline{}");
    }
    if (!is_array(cell.find("iterations"))) {
      return fail(file, at + " missing iterations[]");
    }
    if (!is_object(cell.find("derived"))) {
      return fail(file, at + " missing derived{}");
    }
  }
  const auto* metrics = root.find("metrics");
  if (metrics == nullptr) return fail(file, "missing metrics");
  if (metrics->type != Value::Type::kNull && !check_metrics(file, *metrics)) {
    return false;
  }
  // Optional cycle profiles: null when the campaign ran unprofiled, else one
  // entry per cell with full baseline/faults profiles (gfbench diff reads
  // these to rank cross-campaign divergence).
  const auto* profiles = root.find("profiles");
  if (profiles != nullptr && profiles->type != Value::Type::kNull) {
    if (!is_array(profiles)) return fail(file, "profiles not array|null");
    for (std::size_t i = 0; i < profiles->array.size(); ++i) {
      const auto& p = profiles->array[i];
      const auto at = "profiles[" + std::to_string(i) + "]";
      if (!is_string(p.find("cell"))) return fail(file, at + " missing cell");
      for (const char* key : {"baseline", "faults"}) {
        if (!is_object(p.find(key))) {
          return fail(file, at + " missing object field: " + key);
        }
      }
      if (!is_object(p.find("divergence"))) {
        return fail(file, at + " missing divergence{}");
      }
    }
  }
  return true;
}

/// One flat profile object: {"stride": N, "total": N, "functions": {...}}
/// whose function counts sum exactly to total (sampler accounting is exact).
bool check_profile_object(const std::string& file, const std::string& at,
                          const Value& v) {
  if (v.type != Value::Type::kObject) return fail(file, at + " not object");
  if (!is_number(v.find("stride")) || !is_number(v.find("total"))) {
    return fail(file, at + " missing stride/total");
  }
  const auto* fns = v.find("functions");
  if (!is_object(fns)) return fail(file, at + " missing functions{}");
  double sum = 0;
  for (const auto& [name, n] : fns->object) {
    if (n.type != Value::Type::kNumber || n.number < 0) {
      return fail(file, at + " function count invalid: " + name);
    }
    sum += n.number;
  }
  if (sum != v.find("total")->number) {
    return fail(file, at + " function counts do not sum to total");
  }
  return true;
}

/// {"score": s in [0,1], "deltas": [{"function","base","fault","delta"}...]}
bool check_divergence(const std::string& file, const std::string& at,
                      const Value& v) {
  if (v.type != Value::Type::kObject) return fail(file, at + " not object");
  const auto* score = v.find("score");
  if (!is_number(score) || score->number < 0 || score->number > 1) {
    return fail(file, at + " score missing or out of [0,1]");
  }
  const auto* deltas = v.find("deltas");
  if (!is_array(deltas)) return fail(file, at + " missing deltas[]");
  for (std::size_t i = 0; i < deltas->array.size(); ++i) {
    const auto& d = deltas->array[i];
    const auto dat = at + ".deltas[" + std::to_string(i) + "]";
    if (!is_string(d.find("function"))) {
      return fail(file, dat + " missing function");
    }
    for (const char* key : {"base", "fault", "delta"}) {
      if (!is_number(d.find(key))) {
        return fail(file, dat + " missing number field: " + key);
      }
    }
  }
  return true;
}

/// genfault-profile/1: per cell the baseline profile, merged fault profile,
/// their divergence, and every fault run's own profile + divergence.
bool check_profile(const std::string& file, const Value& root) {
  if (root.type != Value::Type::kObject) return fail(file, "root not object");
  const auto* schema = root.find("schema");
  if (!is_string(schema) || schema->string != "genfault-profile/1") {
    return fail(file, "schema is not genfault-profile/1");
  }
  const auto* stride = root.find("stride");
  if (!is_number(stride) || stride->number <= 0) {
    return fail(file, "stride missing or not positive");
  }
  const auto* cells = root.find("cells");
  if (!is_array(cells)) return fail(file, "missing cells[]");
  for (std::size_t i = 0; i < cells->array.size(); ++i) {
    const auto& c = cells->array[i];
    const auto at = "cells[" + std::to_string(i) + "]";
    if (c.type != Value::Type::kObject) return fail(file, at + " not object");
    if (!is_string(c.find("cell"))) return fail(file, at + " missing cell");
    for (const char* key : {"baseline", "faults", "divergence"}) {
      if (c.find(key) == nullptr) {
        return fail(file, at + " missing field: " + key);
      }
    }
    if (!check_profile_object(file, at + ".baseline", *c.find("baseline")) ||
        !check_profile_object(file, at + ".faults", *c.find("faults")) ||
        !check_divergence(file, at + ".divergence", *c.find("divergence"))) {
      return false;
    }
    const auto* runs = c.find("runs");
    if (!is_array(runs)) return fail(file, at + " missing runs[]");
    for (std::size_t k = 0; k < runs->array.size(); ++k) {
      const auto& r = runs->array[k];
      const auto rat = at + ".runs[" + std::to_string(k) + "]";
      if (!is_string(r.find("label"))) return fail(file, rat + " missing label");
      if (r.find("profile") == nullptr || r.find("divergence") == nullptr) {
        return fail(file, rat + " missing profile/divergence");
      }
      if (!check_profile_object(file, rat + ".profile", *r.find("profile")) ||
          !check_divergence(file, rat + ".divergence", *r.find("divergence"))) {
        return false;
      }
    }
  }
  return true;
}

/// genfault-diff/1: the gfbench diff artifact — threshold, per-cell
/// derived/counter drift entries, and the breached verdict.
bool check_diff(const std::string& file, const Value& root) {
  if (root.type != Value::Type::kObject) return fail(file, "root not object");
  const auto* schema = root.find("schema");
  if (!is_string(schema) || schema->string != "genfault-diff/1") {
    return fail(file, "schema is not genfault-diff/1");
  }
  if (!is_number(root.find("threshold_pct"))) {
    return fail(file, "missing threshold_pct");
  }
  const auto* breached = root.find("breached");
  if (breached == nullptr || breached->type != Value::Type::kBool) {
    return fail(file, "missing bool field: breached");
  }
  for (const char* key : {"missing_cells", "added_cells"}) {
    if (!is_array(root.find(key))) {
      return fail(file, std::string("missing array field: ") + key);
    }
  }
  const auto* cells = root.find("cells");
  if (!is_array(cells)) return fail(file, "missing cells[]");
  for (std::size_t i = 0; i < cells->array.size(); ++i) {
    const auto& c = cells->array[i];
    const auto at = "cells[" + std::to_string(i) + "]";
    if (c.type != Value::Type::kObject) return fail(file, at + " not object");
    if (!is_string(c.find("cell"))) return fail(file, at + " missing cell");
    const auto* derived = c.find("derived");
    if (!is_array(derived)) return fail(file, at + " missing derived[]");
    for (std::size_t k = 0; k < derived->array.size(); ++k) {
      const auto& d = derived->array[k];
      const auto dat = at + ".derived[" + std::to_string(k) + "]";
      if (!is_string(d.find("metric"))) return fail(file, dat + " missing metric");
      for (const char* key : {"old", "new", "drift_pct"}) {
        if (!is_number(d.find(key))) {
          return fail(file, dat + " missing number field: " + key);
        }
      }
      const auto* b = d.find("breach");
      if (b == nullptr || b->type != Value::Type::kBool) {
        return fail(file, dat + " missing bool field: breach");
      }
    }
    const auto* counters = c.find("counters");
    if (!is_array(counters)) return fail(file, at + " missing counters[]");
    const auto* pd = c.find("profile_divergence");
    if (pd == nullptr) return fail(file, at + " missing profile_divergence");
    if (pd->type != Value::Type::kNull &&
        !check_divergence(file, at + ".profile_divergence", *pd)) {
      return false;
    }
  }
  return true;
}

/// One scheduler telemetry object ("genfault-sched/1"): jobs/units/wall_us
/// plus a workers[] entry per thread (see SchedStats::to_json).
bool check_sched_stats(const std::string& file, const std::string& at,
                       const Value& v) {
  if (v.type != Value::Type::kObject) return fail(file, at + " not object");
  const auto* schema = v.find("schema");
  if (!is_string(schema) || schema->string != "genfault-sched/1") {
    return fail(file, at + " schema is not genfault-sched/1");
  }
  for (const char* key : {"jobs", "units", "wall_us", "utilization",
                          "imbalance", "cpu_makespan_us", "steal_batches",
                          "stolen_units"}) {
    if (!is_number(v.find(key))) {
      return fail(file, at + " missing number field: " + key);
    }
  }
  const auto* steal = v.find("steal");
  if (steal == nullptr || steal->type != Value::Type::kBool) {
    return fail(file, at + " missing bool field: steal");
  }
  const auto* workers = v.find("workers");
  if (!is_array(workers)) return fail(file, at + " missing workers[]");
  if (workers->array.size() !=
      static_cast<std::size_t>(v.find("jobs")->number)) {
    return fail(file, at + " workers[] length != jobs");
  }
  for (std::size_t i = 0; i < workers->array.size(); ++i) {
    const auto& w = workers->array[i];
    const auto wat = at + ".workers[" + std::to_string(i) + "]";
    if (w.type != Value::Type::kObject) return fail(file, wat + " not object");
    for (const char* key : {"units", "stolen_units", "steal_batches",
                            "steal_attempts", "busy_us", "cpu_us",
                            "est_cost"}) {
      if (!is_number(w.find(key))) {
        return fail(file, wat + " missing number field: " + key);
      }
    }
  }
  return true;
}

/// BENCH_sched.json ("genfault-sched-bench/1"): the BM_CampaignSteal A/B —
/// timings, the identity verdict and both runs' scheduler telemetry.
bool check_sched(const std::string& file, const Value& root) {
  if (root.type != Value::Type::kObject) return fail(file, "root not object");
  const auto* schema = root.find("schema");
  if (!is_string(schema) || schema->string != "genfault-sched-bench/1") {
    return fail(file, "schema is not genfault-sched-bench/1");
  }
  for (const char* key : {"jobs", "static_ms", "steal_ms", "speedup",
                          "static_makespan_ms", "steal_makespan_ms",
                          "makespan_speedup"}) {
    if (!is_number(root.find(key))) {
      return fail(file, std::string("missing number field: ") + key);
    }
  }
  const auto* ident = root.find("artifacts_identical");
  if (ident == nullptr || ident->type != Value::Type::kBool) {
    return fail(file, "missing bool field: artifacts_identical");
  }
  if (!ident->boolean) {
    return fail(file, "artifacts_identical is false (determinism regression)");
  }
  const auto* stat = root.find("static");
  const auto* steal = root.find("steal");
  if (stat == nullptr) return fail(file, "missing static{}");
  if (steal == nullptr) return fail(file, "missing steal{}");
  return check_sched_stats(file, "static", *stat) &&
         check_sched_stats(file, "steal", *steal);
}

/// One store telemetry object ("genfault-store/1"): the StoreStats counters
/// (see StoreStats::to_json).
bool check_store_stats(const std::string& file, const std::string& at,
                       const Value& v) {
  if (v.type != Value::Type::kObject) return fail(file, at + " not object");
  const auto* schema = v.find("schema");
  if (!is_string(schema) || schema->string != "genfault-store/1") {
    return fail(file, at + " schema is not genfault-store/1");
  }
  for (const char* key : {"hits", "misses", "puts", "bytes_read",
                          "bytes_written", "records", "bytes",
                          "recovered_records", "torn_bytes_dropped"}) {
    if (!is_number(v.find(key))) {
      return fail(file, at + " missing number field: " + key);
    }
  }
  return true;
}

/// BENCH_store.json ("genfault-store-bench/1"): BM_CampaignResume /
/// BM_CampaignIncremental — timings, the byte-identity verdict and the
/// store telemetry of the cold, resume and incremental runs. Also accepts a
/// bare "genfault-store/1" stats object (the --store-json artifact).
bool check_store(const std::string& file, const Value& root) {
  if (root.type != Value::Type::kObject) return fail(file, "root not object");
  const auto* schema = root.find("schema");
  if (is_string(schema) && schema->string == "genfault-store/1") {
    return check_store_stats(file, "root", root);
  }
  if (!is_string(schema) || schema->string != "genfault-store-bench/1") {
    return fail(file, "schema is not genfault-store-bench/1");
  }
  for (const char* key : {"jobs", "cold_ms", "resume_ms", "incremental_ms",
                          "resume_speedup", "incremental_speedup"}) {
    if (!is_number(root.find(key))) {
      return fail(file, std::string("missing number field: ") + key);
    }
  }
  const auto* ident = root.find("artifacts_identical");
  if (ident == nullptr || ident->type != Value::Type::kBool) {
    return fail(file, "missing bool field: artifacts_identical");
  }
  if (!ident->boolean) {
    return fail(file, "artifacts_identical is false (cache-hit pattern "
                      "changed the artifacts — determinism regression)");
  }
  const auto* cold = root.find("cold");
  const auto* resume = root.find("resume");
  const auto* incr = root.find("incremental");
  if (cold == nullptr) return fail(file, "missing cold{}");
  if (resume == nullptr) return fail(file, "missing resume{}");
  if (incr == nullptr) return fail(file, "missing incremental{}");
  if (!check_store_stats(file, "cold", *cold) ||
      !check_store_stats(file, "resume", *resume) ||
      !check_store_stats(file, "incremental", *incr)) {
    return false;
  }
  // Semantic cross-checks on the hit/miss pattern the bench must produce:
  // the cold run populates (no hits), the unchanged re-run is all hits, the
  // incremental re-run hits everything except the edited fault type's keys.
  if (cold->find("hits")->number != 0) {
    return fail(file, "cold run reported cache hits");
  }
  if (resume->find("misses")->number != 0 ||
      resume->find("hits")->number <= 0) {
    return fail(file, "resume run was not a full cache hit");
  }
  if (incr->find("hits")->number <= 0 || incr->find("misses")->number <= 0) {
    return fail(file, "incremental run did not mix hits and misses");
  }
  return true;
}

/// BENCH_micro.json (google-benchmark --benchmark_out): context sanity plus
/// per-benchmark shape. The context check is the committed-trajectory guard:
/// run_benches.sh injects build_type=Release (the library's own
/// "library_build_type" describes the distro libbenchmark package, which is
/// a debug build, NOT this project) and micro_substrate's main() reports the
/// interpreter lowering as vm_dispatch. A BENCH_micro.json missing either is
/// from an unguarded/by-hand run and is refused.
bool check_micro(const std::string& file, const Value& root) {
  static const char* kFamilies[] = {
      "BM_VmDispatch", "BM_VmDispatchPredecoded", "BM_VmDispatchNoPredecode",
      "BM_VmDispatchNoFusion", "BM_VmDispatchTraceDisarmed",
      "BM_VmDispatchProfiled",
      "BM_MiniCCompileOs", "BM_FaultloadScan", "BM_InjectRestore",
      "BM_InjectRestoreInvalidate", "BM_ApiCallAlloc", "BM_ApiCallAllocObs",
      "BM_JournalAppend", "BM_ApiCallOpenReadClose", "BM_ColdReboot",
      "BM_SnapshotRestore", "BM_ControllerBuildCold", "BM_ControllerBuildWarm",
      "BM_FaultloadSerialize"};
  if (root.type != Value::Type::kObject) return fail(file, "root not object");
  const auto* ctx = root.find("context");
  if (!is_object(ctx)) return fail(file, "missing context{}");
  const auto* build = ctx->find("build_type");
  if (!is_string(build)) {
    return fail(file, "context missing build_type (run via bench/"
                      "run_benches.sh, which injects it after verifying the "
                      "build dir is Release)");
  }
  if (build->string != "Release") {
    return fail(file, "context.build_type is '" + build->string +
                          "', not Release — numbers not comparable");
  }
  const auto* disp = ctx->find("vm_dispatch");
  if (!is_string(disp) ||
      (disp->string != "threaded" && disp->string != "switch")) {
    return fail(file, "context.vm_dispatch missing or not threaded|switch");
  }
  const auto* cpus = ctx->find("num_cpus");
  if (!is_number(cpus) || cpus->number <= 0) {
    return fail(file, "context.num_cpus missing or not positive");
  }
  const auto* benches = root.find("benchmarks");
  if (!is_array(benches) || benches->array.empty()) {
    return fail(file, "missing or empty benchmarks[]");
  }
  bool saw_dispatch = false;
  for (std::size_t i = 0; i < benches->array.size(); ++i) {
    const auto& b = benches->array[i];
    const auto at = "benchmarks[" + std::to_string(i) + "]";
    if (b.type != Value::Type::kObject) return fail(file, at + " not object");
    const auto* name = b.find("name");
    if (!is_string(name)) return fail(file, at + " missing name");
    const auto family = name->string.substr(0, name->string.find('/'));
    bool known = false;
    for (const char* f : kFamilies) known = known || family == f;
    if (!known) return fail(file, at + " unknown family: " + family);
    const auto* rt = b.find("real_time");
    if (!is_number(rt) || rt->number <= 0) {
      return fail(file, at + " (" + name->string + ") real_time not positive");
    }
    const auto* ips = b.find("items_per_second");
    if (ips != nullptr && (!is_number(ips) || ips->number <= 0)) {
      return fail(file,
                  at + " (" + name->string + ") items_per_second not positive");
    }
    if (family == "BM_VmDispatch") {
      if (!is_number(ips)) {
        return fail(file, at + " BM_VmDispatch missing items_per_second");
      }
      saw_dispatch = true;
    }
  }
  if (!saw_dispatch) {
    return fail(file, "no BM_VmDispatch entry (the headline dispatch-rate "
                      "trajectory point)");
  }
  return true;
}

bool check_file(const std::string& file, const std::string& schema,
                bool jsonl) {
  std::ifstream f(file);
  if (!f) return fail(file, "cannot open");
  std::stringstream buf;
  buf << f.rdbuf();
  const std::string text = buf.str();

  if (jsonl) {
    std::istringstream lines(text);
    std::string line;
    std::size_t n = 0;
    while (std::getline(lines, line)) {
      ++n;
      if (line.empty()) continue;
      std::string err;
      const auto v = gf::obs::json::parse(line, &err);
      if (!v) return fail(file, "line " + std::to_string(n) + ": " + err);
      if (v->type != Value::Type::kObject) {
        return fail(file, "line " + std::to_string(n) + ": not an object");
      }
    }
    return true;
  }

  std::string err;
  const auto v = gf::obs::json::parse(text, &err);
  if (!v) return fail(file, err);
  if (schema == "metrics") return check_metrics(file, *v);
  if (schema == "chrome") return check_chrome(file, *v);
  if (schema == "manifest") return check_manifest(file, *v);
  if (schema == "sched") return check_sched(file, *v);
  if (schema == "store") return check_store(file, *v);
  if (schema == "micro") return check_micro(file, *v);
  if (schema == "profile") return check_profile(file, *v);
  if (schema == "diff") return check_diff(file, *v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string schema;
  bool jsonl = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jsonl") == 0) {
      jsonl = true;
    } else if (std::strcmp(argv[i], "--schema") == 0) {
      if (i + 1 >= argc) usage();
      schema = argv[++i];
      if (schema != "metrics" && schema != "chrome" && schema != "manifest" &&
          schema != "sched" && schema != "store" && schema != "micro" &&
          schema != "profile" && schema != "diff") {
        usage();
      }
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      usage();
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (files.empty()) usage();
  bool ok = true;
  for (const auto& file : files) ok = check_file(file, schema, jsonl) && ok;
  if (ok && files.size() > 1) {
    std::printf("json_check: %zu files ok\n", files.size());
  }
  return ok ? 0 : 1;
}
