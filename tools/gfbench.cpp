// gfbench — command-line front end to the genfault library.
//
//   gfbench scan     --os 2000|xp [--out FILE] [--all-symbols]
//   gfbench profile  --os 2000|xp [--servers a,b,...]
//   gfbench campaign --os 2000|xp --server apex|abyssal
//                    [--faultload FILE] [--stride K] [--scale S]
//                    [--iterations N] [--seed S] [--jobs J] [--chunk N]
//                    [--no-steal] [--no-fusion]
//                    [--store DIR] [--resume] [--no-cache]
//   gfbench store    <ls|verify|gc> --store DIR [--max-bytes N]
//   gfbench show     --faultload FILE [--limit N]
//   gfbench diff     OLD.json NEW.json [--threshold PCT] [--json FILE]
//
// `scan` writes a portable faultload file; `campaign` can consume it later
// (possibly on another machine — the digest check refuses a mismatched OS
// build), which is exactly the paper's repeatable/portable faultload story.
// `--store` adds the crash-safe result cache (src/store): interrupted
// campaigns resume with `--resume`, unchanged faults are never re-executed,
// and the merged artifacts stay byte-identical for any cache-hit pattern.
// `diff` compares two campaign manifests and exits nonzero when any gated
// metric drifted beyond the threshold — the cross-campaign regression gate.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "depbench/campaign_diff.h"
#include "depbench/campaign_report.h"
#include "depbench/report.h"
#include "depbench/tuner.h"
#include "isa/disassembler.h"
#include "store/campaign_codec.h"
#include "store/store.h"
#include "swfit/scanner.h"
#include "util/log.h"

namespace {

using namespace gf;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: gfbench <scan|profile|campaign|store|show> [options]\n"
               "  scan     --os 2000|xp [--out FILE] [--all-symbols]\n"
               "  profile  --os 2000|xp [--servers apex,abyssal,...]\n"
               "  campaign --os 2000|xp --server NAME [--faultload FILE]\n"
               "           [--stride K] [--scale S] [--iterations N] [--seed S]\n"
               "           [--jobs J] [--chunk N] [--no-steal] [--no-fusion]\n"
               "           [--store DIR] [--resume] [--no-cache]\n"
               "           [--store-json FILE] [--crash-after-puts N]\n"
               "           [--metrics-json FILE] [--html-report FILE]\n"
               "           [--journal-out FILE] [--chrome-trace FILE]\n"
               "           [--sched-json FILE] [--profile-json FILE]\n"
               "           [--flame-out FILE] [--profile-stride N]\n"
               "  store    <ls|verify|gc> --store DIR [--max-bytes N]\n"
               "  show     --faultload FILE [--limit N]\n"
               "  diff     OLD.json NEW.json [--threshold PCT] [--json FILE]\n");
  std::exit(2);
}

std::map<std::string, std::string> parse_flags(int argc, char** argv, int from) {
  std::map<std::string, std::string> flags;
  for (int i = from; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) usage();
    const std::string key = argv[i] + 2;
    if (key == "all-symbols" || key == "no-steal" || key == "resume" ||
        key == "no-cache" || key == "no-fusion") {
      flags[key] = "1";
    } else if (i + 1 < argc) {
      flags[key] = argv[++i];
    } else {
      usage();
    }
  }
  return flags;
}

os::OsVersion parse_os(const std::map<std::string, std::string>& flags) {
  const auto it = flags.find("os");
  if (it == flags.end() || it->second == "2000") return os::OsVersion::kVos2000;
  if (it->second == "xp") return os::OsVersion::kVosXp;
  usage();
}

std::vector<std::string> api_names() {
  std::vector<std::string> names;
  for (const auto& fn : os::api_functions()) names.emplace_back(fn.name);
  return names;
}

int cmd_scan(const std::map<std::string, std::string>& flags) {
  const auto version = parse_os(flags);
  os::Kernel kernel(version);
  swfit::Scanner scanner;
  const auto fl = flags.count("all-symbols")
                      ? scanner.scan_all(kernel.pristine_image())
                      : scanner.scan(kernel.pristine_image(), api_names());
  const auto counts = fl.counts_by_type();
  std::printf("scanned %s: %zu faults\n", os::os_version_name(version),
              fl.faults.size());
  for (int i = 0; i < swfit::kNumFaultTypes; ++i) {
    std::printf("  %-5s %d\n",
                swfit::fault_type_name(static_cast<swfit::FaultType>(i)),
                counts[static_cast<std::size_t>(i)]);
  }
  const auto out = flags.count("out") ? flags.at("out") : std::string{};
  if (!out.empty()) {
    std::ofstream f(out);
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    f << fl.serialize();
    std::printf("faultload written to %s (digest %016llx)\n", out.c_str(),
                static_cast<unsigned long long>(fl.digest));
  }
  return 0;
}

int cmd_profile(const std::map<std::string, std::string>& flags) {
  const auto version = parse_os(flags);
  std::vector<std::string> servers = {"apex", "abyssal", "sambar", "savant"};
  if (flags.count("servers")) {
    servers.clear();
    std::istringstream in(flags.at("servers"));
    std::string name;
    while (std::getline(in, name, ',')) servers.push_back(name);
  }
  depbench::Profiler profiler;
  const auto profile = profiler.profile(version, servers);
  std::printf("%-30s", "function");
  for (const auto& col : profile.columns) std::printf(" %9s", col.server.c_str());
  std::printf(" %9s\n", "average");
  for (const auto& fn : os::api_functions()) {
    std::printf("%-30s", fn.name);
    for (const auto& col : profile.columns) {
      const auto it = col.pct.find(fn.name);
      std::printf(" %8.2f%%", it == col.pct.end() ? 0.0 : it->second);
    }
    std::printf(" %8.2f%%\n", profile.average_pct(fn.name));
  }
  const auto relevant = profile.relevant_functions();
  std::printf("selected for injection: %zu functions, %.2f%% call coverage\n",
              relevant.size(), profile.total_coverage());
  return 0;
}

int cmd_campaign(const std::map<std::string, std::string>& flags) {
  const auto version = parse_os(flags);
  if (!flags.count("server")) usage();
  const auto server = flags.at("server");

  // A portable faultload file is digest-checked against this build before it
  // is handed to the runner; without the flag the runner scans for itself.
  swfit::Faultload fl;
  if (flags.count("faultload")) {
    std::ifstream f(flags.at("faultload"));
    if (!f) {
      std::fprintf(stderr, "cannot read %s\n", flags.at("faultload").c_str());
      return 1;
    }
    std::stringstream buf;
    buf << f.rdbuf();
    fl = swfit::Faultload::parse(buf.str());
    os::Kernel scan_kernel(version);
    if (!fl.matches(scan_kernel.pristine_image())) {
      std::fprintf(stderr,
                   "faultload digest does not match this %s build — refusing "
                   "to inject\n",
                   os::os_version_name(version));
      return 1;
    }
  }

  // Single-cell campaign through the work-stealing CampaignRunner — the
  // same decomposition, seeds, slots and merges as the bench drivers, so a
  // gfbench run is byte-for-byte a one-cell slice of the full campaign.
  depbench::RunnerOptions ropt;
  ropt.versions = {version};
  ropt.servers = {server};
  ropt.iterations =
      flags.count("iterations") ? std::stoi(flags.at("iterations")) : 3;
  ropt.stride = flags.count("stride") ? std::stoi(flags.at("stride")) : 1;
  if (flags.count("scale")) ropt.time_scale = std::stod(flags.at("scale"));
  ropt.seed = flags.count("seed") ? std::stoull(flags.at("seed"))
                                  : std::uint64_t{1000};
  ropt.jobs = flags.count("jobs") ? std::stoi(flags.at("jobs")) : 0;
  ropt.chunk = flags.count("chunk") ? std::stoi(flags.at("chunk")) : 0;
  ropt.steal = !flags.count("no-steal");
  // Pure execution strategy; artifacts are byte-identical either way (the CI
  // equivalence gate cmp's them), so it never enters the store key.
  ropt.fusion = !flags.count("no-fusion");
  if (flags.count("shards")) {
    std::fprintf(stderr,
                 "warning: --shards is deprecated, use --chunk (both map onto "
                 "the same decomposition; results are identical)\n");
    ropt.shards = std::stoi(flags.at("shards"));
  }
  if (flags.count("faultload")) ropt.faultload = &fl;
  // Profiling needs per-task obs bundles to carry the samples home.
  ropt.profile = flags.count("profile-json") || flags.count("flame-out");
  if (flags.count("profile-stride")) {
    ropt.profile_stride = std::stoull(flags.at("profile-stride"));
  }
  ropt.obs = ropt.profile || flags.count("metrics-json") ||
             flags.count("html-report") || flags.count("journal-out") ||
             flags.count("chrome-trace");

  // Persistent result store: --store opens/creates it, --resume insists it
  // already exists (a typo'd directory should fail loudly, not silently run
  // the campaign cold), --no-cache re-executes everything but still commits.
  std::unique_ptr<store::CampaignStore> cstore;
  if (flags.count("resume") && !flags.count("store")) {
    std::fprintf(stderr, "--resume requires --store DIR\n");
    return 2;
  }
  if (flags.count("store")) {
    if (flags.count("resume") &&
        !std::ifstream(flags.at("store") + "/wal.gfj")) {
      std::fprintf(stderr, "--resume: no store at %s\n",
                   flags.at("store").c_str());
      return 1;
    }
    cstore = std::make_unique<store::CampaignStore>(flags.at("store"));
    ropt.store = cstore.get();
    ropt.store_read = !flags.count("no-cache");
    if (flags.count("crash-after-puts")) {
      // CI/test hook: hard-abort (as SIGKILL would) after the Nth commit to
      // exercise crash recovery + resume without a cooperative shutdown.
      const auto n = std::stoull(flags.at("crash-after-puts"));
      cstore->set_commit_hook([n](std::uint64_t count) {
        if (count >= n) std::raise(SIGKILL);
      });
    }
  }

  depbench::CampaignRunner runner(ropt);
  const auto cells = runner.run_campaign();
  const auto& cell = cells.at(0);
  std::printf("%s\n", depbench::render_table5_cell(cell).c_str());
  const auto d = depbench::derive_metrics(cell);
  std::printf("SPC retention %.0f%%, THR retention %.0f%%, ER%%f %.1f, "
              "ADMf %.1f\n",
              100 * d.spc_rel, 100 * d.thr_rel, d.erf_pct, d.admf);

  auto emit = [&](const char* flag, const std::string& content) {
    if (!flags.count(flag)) return true;
    std::ofstream out(flags.at(flag));
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", flags.at(flag).c_str());
      return false;
    }
    out << content;
    std::printf("wrote %s\n", flags.at(flag).c_str());
    return true;
  };
  const auto* cobs = runner.campaign_obs();
  if (cobs != nullptr) {
    std::ostringstream journal;
    depbench::write_campaign_journal(journal, *cobs);
    if (!emit("metrics-json", cobs->metrics.to_json()) ||
        !emit("html-report",
              depbench::campaign_html_report(cells, ropt, cobs)) ||
        !emit("journal-out", journal.str()) ||
        !emit("chrome-trace", depbench::campaign_chrome_trace(*cobs)) ||
        !emit("profile-json",
              depbench::campaign_profile_json(cells, ropt, *cobs)) ||
        !emit("flame-out", depbench::campaign_flamegraph(*cobs))) {
      return 1;
    }
  }
  if (runner.scheduler_stats() != nullptr &&
      !emit("sched-json", runner.scheduler_stats()->to_json())) {
    return 1;
  }
  if (runner.store_stats() != nullptr &&
      !emit("store-json", runner.store_stats()->to_json())) {
    return 1;
  }
  return 0;
}

int cmd_store(int argc, char** argv) {
  if (argc < 3) usage();
  const std::string action = argv[2];
  const auto flags = parse_flags(argc, argv, 3);
  if (!flags.count("store")) usage();
  store::CampaignStore st(flags.at("store"));
  if (action == "ls") {
    std::vector<std::uint8_t> payload;
    for (const auto& r : st.list()) {
      std::string cell = "?", label = "?";
      if (st.get(r.key, payload)) store::peek_run_meta(payload, cell, label);
      std::printf("%s  %10u  %s %s\n", r.key.hex().c_str(), r.length,
                  cell.c_str(), label.c_str());
    }
    const auto s = st.stats();
    std::printf("%llu records, %llu payload bytes",
                static_cast<unsigned long long>(s.records),
                static_cast<unsigned long long>(s.bytes));
    if (s.torn_bytes_dropped > 0) {
      std::printf(" (%llu torn bytes dropped at open)",
                  static_cast<unsigned long long>(s.torn_bytes_dropped));
    }
    std::printf("\n");
    return 0;
  }
  if (action == "verify") {
    const auto bad = st.verify();
    const auto s = st.stats();
    std::printf("%llu records verified, %zu corrupt\n",
                static_cast<unsigned long long>(s.records), bad);
    return bad == 0 ? 0 : 1;
  }
  if (action == "gc") {
    const std::uint64_t max_bytes =
        flags.count("max-bytes") ? std::stoull(flags.at("max-bytes")) : 0;
    const auto dropped = st.gc(max_bytes);
    const auto s = st.stats();
    std::printf("gc: dropped %zu records, %llu live (%llu payload bytes)\n",
                dropped, static_cast<unsigned long long>(s.records),
                static_cast<unsigned long long>(s.bytes));
    return 0;
  }
  usage();
}

int cmd_diff(int argc, char** argv) {
  // Two positional manifest paths, then flags.
  if (argc < 4 || std::strncmp(argv[2], "--", 2) == 0 ||
      std::strncmp(argv[3], "--", 2) == 0) {
    usage();
  }
  const auto flags = parse_flags(argc, argv, 4);
  auto slurp = [](const char* path, std::string& out) {
    std::ifstream f(path);
    if (!f) {
      std::fprintf(stderr, "cannot read %s\n", path);
      return false;
    }
    std::stringstream buf;
    buf << f.rdbuf();
    out = buf.str();
    return true;
  };
  std::string old_text, new_text;
  if (!slurp(argv[2], old_text) || !slurp(argv[3], new_text)) return 1;

  depbench::DiffOptions dopt;
  if (flags.count("threshold")) {
    dopt.threshold_pct = std::stod(flags.at("threshold"));
  }
  const auto d = depbench::diff_campaigns(old_text, new_text, dopt);
  if (!d.ok) {
    std::fprintf(stderr, "error: %s\n", d.error.c_str());
    return 2;
  }
  if (flags.count("json")) {
    std::ofstream out(flags.at("json"));
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", flags.at("json").c_str());
      return 1;
    }
    out << d.json;
  }
  std::fputs(d.text.c_str(), stdout);
  std::printf("%s (threshold %.1f%%)\n",
              d.breached ? "BREACHED" : "within threshold", dopt.threshold_pct);
  return d.breached ? 1 : 0;
}

int cmd_show(const std::map<std::string, std::string>& flags) {
  if (!flags.count("faultload")) usage();
  std::ifstream f(flags.at("faultload"));
  if (!f) {
    std::fprintf(stderr, "cannot read %s\n", flags.at("faultload").c_str());
    return 1;
  }
  std::stringstream buf;
  buf << f.rdbuf();
  const auto fl = swfit::Faultload::parse(buf.str());
  std::printf("target %s, digest %016llx, %zu faults\n", fl.target.c_str(),
              static_cast<unsigned long long>(fl.digest), fl.faults.size());
  const auto limit = flags.count("limit")
                         ? static_cast<std::size_t>(std::stoul(flags.at("limit")))
                         : std::size_t{20};
  for (std::size_t i = 0; i < fl.faults.size() && i < limit; ++i) {
    const auto& fault = fl.faults[i];
    std::printf("%4zu  %-5s %-30s 0x%llx\n", i,
                swfit::fault_type_name(fault.type), fault.function.c_str(),
                static_cast<unsigned long long>(fault.addr));
    for (std::size_t k = 0; k < fault.window(); ++k) {
      std::printf("        %-28s => %s\n",
                  isa::disassemble(fault.original[k]).c_str(),
                  isa::disassemble(fault.mutated[k]).c_str());
    }
  }
  if (fl.faults.size() > limit) {
    std::printf("... %zu more (use --limit)\n", fl.faults.size() - limit);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  util::set_log_level(util::LogLevel::kInfo);
  try {
    // `store` takes an action word and `diff` two manifest paths before
    // their flags; everything else is flags-only from argv[2].
    if (cmd == "store") return cmd_store(argc, argv);
    if (cmd == "diff") return cmd_diff(argc, argv);
    const auto flags = parse_flags(argc, argv, 2);
    if (cmd == "scan") return cmd_scan(flags);
    if (cmd == "profile") return cmd_profile(flags);
    if (cmd == "campaign") return cmd_campaign(flags);
    if (cmd == "show") return cmd_show(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
}
