#include "os/kernel.h"

#include <cstring>
#include <map>
#include <stdexcept>
#include <vector>

#include "minic/compiler.h"

namespace gf::os {

namespace lay = layout;

namespace {

// Collapses a raw write log into byte-level last-write-wins spans: each byte
// a boot wrote appears once with its final value, and adjacent bytes merge
// into one run. Correct for any overlap pattern, and it turns the boot's
// ~hundred store-sized records (page-table loop, stack slots) into a handful
// of contiguous memcpys for the replay path.
std::vector<vm::WriteSpan> coalesce_spans(const std::vector<vm::WriteSpan>& raw) {
  std::map<std::uint64_t, std::uint8_t> bytes;
  for (const auto& w : raw) {
    for (std::size_t i = 0; i < w.bytes.size(); ++i) bytes[w.addr + i] = w.bytes[i];
  }
  std::vector<vm::WriteSpan> out;
  for (const auto& [addr, b] : bytes) {
    if (!out.empty() && out.back().addr + out.back().bytes.size() == addr) {
      out.back().bytes.push_back(b);
    } else {
      out.push_back({addr, {b}});
    }
  }
  return out;
}

}  // namespace

Kernel::Kernel(OsVersion version)
    : version_(version),
      pristine_(minic::compile(
          {common_source(), ntdll_source(version), kernel32_source(version)},
          std::string("vos-") + os_version_name(version), lay::kCodeBase)),
      active_(pristine_),
      machine_(std::make_unique<vm::Machine>(lay::kMemSize)) {
  machine_->load_image(active_);
  install_machine_hooks();
  reboot();
}

Kernel::Kernel(const KernelSnapshot& snap)
    : version_(snap.version),
      disk_(snap.disk),
      pristine_(snap.pristine),
      active_(snap.active),
      machine_(std::make_unique<vm::Machine>(lay::kMemSize)),
      boot_(snap.boot),
      tick_(snap.ticks) {
  machine_->load_image(active_);  // registers the executable range
  install_machine_hooks();
  machine_->restore_full(snap.machine);
  // The snapshot was typically taken *after* further guest work (server
  // start), so the kernel data region no longer matches the post-boot
  // baseline the replay's dirty accounting assumes: mark it all dirty so
  // the first warm reboot re-zeroes every page of it.
  machine_->mark_dirty(lay::kHeapCtl, lay::kScratch - lay::kHeapCtl);
}

void Kernel::install_machine_hooks() {
  machine_->set_stack_region(lay::kStackLo, lay::kStackHi);
  machine_->set_syscall_handler(
      [this](vm::Machine& m, std::int32_t num) { return handle_syscall(m, num); });
}

KernelSnapshot Kernel::snapshot() {
  KernelSnapshot s;
  s.version = version_;
  s.pristine = pristine_;
  s.active = active_;
  s.machine = machine_->snapshot();
  // snapshot() reset the dirty baseline; keep this (still usable) kernel's
  // replay accounting sound by conservatively re-marking the data region.
  machine_->mark_dirty(lay::kHeapCtl, lay::kScratch - lay::kHeapCtl);
  s.boot = boot_;
  s.disk = disk_;
  s.ticks = tick_;
  return s;
}

void Kernel::sync_code() {
  ++counters_.code_syncs;
  machine_->reload_code(active_);
}

void Kernel::sync_code(std::uint64_t addr, std::uint64_t len) {
  if (len == 0) return;
  ++counters_.code_syncs;
  if (addr < active_.base() || addr + len > active_.end()) {
    sync_code();  // out-of-image window: fall back to the full copy
    return;
  }
  const auto off = static_cast<std::size_t>(addr - active_.base());
  machine_->patch_code(addr, active_.code().data() + off,
                       static_cast<std::size_t>(len));
}

std::uint64_t Kernel::api_addr(const std::string& name) const {
  const auto* sym = active_.find_symbol(name);
  if (sym == nullptr) throw std::out_of_range("no such API function: " + name);
  return sym->addr;
}

void Kernel::reboot() {
  ++counters_.reboots;
  if (warm_reboot_ && boot_ != nullptr && boot_code_intact()) {
    replay_boot();
    return;
  }
  cold_boot();
}

void Kernel::cold_boot() {
  ++counters_.cold_boots;
  // Zero the kernel data region (heap control, handle table, page table).
  const std::vector<std::uint8_t> zeros(
      static_cast<std::size_t>(lay::kScratch - lay::kHeapCtl), 0);
  machine_->write_bytes(lay::kHeapCtl, zeros.data(), zeros.size());

  // Guest-side boot code builds the initial heap and page table.
  const auto* heap_init = pristine_.find_symbol("heap_init");
  const auto* vm_init = pristine_.find_symbol("vm_init");
  if (heap_init == nullptr || vm_init == nullptr) {
    throw std::runtime_error("OS image is missing boot symbols");
  }
  // The very first boot additionally records its memory effect: the boot
  // path is pure deterministic stores over the region just zeroed, so the
  // write log (plus cycle/flag deltas) is a complete replacement for
  // re-executing it on every later reboot.
  const bool record = boot_ == nullptr;
  const std::uint64_t cycles0 = machine_->total_cycles();
  if (record) machine_->begin_write_capture();
  // Boot runs against pristine code even when faults are injected: a real
  // reboot reloads the (possibly still faulty) module, but the *boot path*
  // (heap_init/vm_init) is not part of the API fault-injection surface, so
  // running it from the active image is equally fine — keep active to stay
  // faithful to "the fault persists until removed".
  const auto r1 = machine_->call(heap_init->addr, {}, 1u << 20);
  const auto r2 = machine_->call(vm_init->addr, {}, 1u << 20);
  if (!r1.ok() || !r2.ok()) {
    if (record) machine_->end_write_capture();
    throw std::runtime_error("VOS boot failed");
  }
  if (record) {
    auto replay = std::make_shared<BootReplay>();
    replay->writes = coalesce_spans(machine_->end_write_capture());
    replay->cycles = machine_->total_cycles() - cycles0;
    replay->flags = machine_->cmp_flags();
    replay->code = {{heap_init->addr, heap_init->size},
                    {vm_init->addr, vm_init->size}};
    boot_ = std::move(replay);
  }
}

bool Kernel::boot_code_intact() const noexcept {
  // An injected (or wildly-stored) mutation of the boot code itself must
  // keep producing cold-boot semantics, including "VOS boot failed"; replay
  // is only valid while the boot bytes in VM memory match the pristine
  // image.
  for (const auto& r : boot_->code) {
    const auto* live = machine_->raw(r.addr, static_cast<std::size_t>(r.size));
    if (live == nullptr) return false;
    const auto off = static_cast<std::size_t>(r.addr - pristine_.base());
    if (std::memcmp(live, pristine_.code().data() + off,
                    static_cast<std::size_t>(r.size)) != 0) {
      return false;
    }
  }
  return true;
}

void Kernel::replay_boot() {
  ++counters_.replay_boots;
  // Zero only region pages dirtied since the last reboot (the cold path
  // memsets all 192 KiB every time), then clear their dirty bits so the
  // *next* replay only touches what the coming slot actually writes.
  static constexpr std::uint64_t kPage = vm::Machine::kDirtyPageSize;
  static const std::vector<std::uint8_t> zeros(kPage, 0);
  for (std::uint64_t addr = lay::kHeapCtl; addr < lay::kScratch; addr += kPage) {
    if (machine_->page_dirty(addr)) {
      machine_->write_bytes(addr, zeros.data(), zeros.size());
    }
  }
  machine_->clear_dirty(lay::kHeapCtl, lay::kScratch - lay::kHeapCtl);
  for (const auto& w : boot_->writes) {
    machine_->write_bytes(w.addr, w.bytes.data(), w.bytes.size());
  }
  machine_->add_cycles(boot_->cycles);
  machine_->set_cmp_flags(boot_->flags);
}

vm::Trap Kernel::handle_syscall(vm::Machine& m, std::int32_t num) {
  ++counters_.syscalls;
  auto arg = [&m](int i) { return m.reg(isa::kRegArg0 + i); };
  switch (num) {
    case lay::kSysDiskFind: {
      std::string path;
      if (!m.read_cstr(static_cast<std::uint64_t>(arg(0)), path)) {
        return vm::Trap::kBadMemory;
      }
      const auto id = disk_.find(path);
      m.set_reg(0, id ? *id : -1);
      return vm::Trap::kNone;
    }
    case lay::kSysDiskCreate: {
      std::string path;
      if (!m.read_cstr(static_cast<std::uint64_t>(arg(0)), path)) {
        return vm::Trap::kBadMemory;
      }
      m.set_reg(0, disk_.create(path));
      return vm::Trap::kNone;
    }
    case lay::kSysDiskSize: {
      const auto sz = disk_.size(static_cast<int>(arg(0)));
      m.set_reg(0, sz ? *sz : -1);
      return vm::Trap::kNone;
    }
    case lay::kSysDiskRead: {
      const auto id = static_cast<int>(arg(0));
      const auto off = arg(1);
      const auto dst = static_cast<std::uint64_t>(arg(2));
      const auto len = arg(3);
      if (len < 0 || len > static_cast<std::int64_t>(lay::kMemSize)) {
        m.set_reg(0, -1);
        return vm::Trap::kNone;
      }
      std::vector<std::uint8_t> buf(static_cast<std::size_t>(len));
      const auto n = disk_.read(id, off, buf.data(), len);
      if (!n) {
        m.set_reg(0, -1);
        return vm::Trap::kNone;
      }
      // Copying into guest memory can fault if the guest passed a bad
      // buffer (e.g. a mutated pointer) — surface that as a memory trap.
      if (!m.write_bytes(dst, buf.data(), static_cast<std::size_t>(*n))) {
        return vm::Trap::kBadMemory;
      }
      m.set_reg(0, *n);
      return vm::Trap::kNone;
    }
    case lay::kSysDiskWrite: {
      const auto id = static_cast<int>(arg(0));
      const auto off = arg(1);
      const auto src = static_cast<std::uint64_t>(arg(2));
      const auto len = arg(3);
      if (len < 0 || len > static_cast<std::int64_t>(lay::kMemSize)) {
        m.set_reg(0, -1);
        return vm::Trap::kNone;
      }
      std::vector<std::uint8_t> buf(static_cast<std::size_t>(len));
      if (!m.read_bytes(src, buf.data(), buf.size())) {
        return vm::Trap::kBadMemory;
      }
      const auto n = disk_.write(id, off, buf.data(), len);
      m.set_reg(0, n ? *n : -1);
      return vm::Trap::kNone;
    }
    case lay::kSysTick:
      m.set_reg(0, static_cast<std::int64_t>(++tick_));
      return vm::Trap::kNone;
    case lay::kSysDebug:
      m.set_reg(0, 0);
      return vm::Trap::kNone;
    default:
      // Unknown intrinsic — this can only happen through a mutated SYS
      // immediate; treat it as an illegal instruction.
      return vm::Trap::kBadOpcode;
  }
}

}  // namespace gf::os
