#include "os/kernel.h"

#include <stdexcept>
#include <vector>

#include "minic/compiler.h"

namespace gf::os {

namespace lay = layout;

Kernel::Kernel(OsVersion version)
    : version_(version),
      pristine_(minic::compile(
          {common_source(), ntdll_source(version), kernel32_source(version)},
          std::string("vos-") + os_version_name(version), lay::kCodeBase)),
      active_(pristine_),
      machine_(std::make_unique<vm::Machine>(lay::kMemSize)) {
  machine_->load_image(active_);
  machine_->set_stack_region(lay::kStackLo, lay::kStackHi);
  machine_->set_syscall_handler(
      [this](vm::Machine& m, std::int32_t num) { return handle_syscall(m, num); });
  reboot();
}

void Kernel::sync_code() { machine_->reload_code(active_); }

void Kernel::sync_code(std::uint64_t addr, std::uint64_t len) {
  if (len == 0) return;
  if (addr < active_.base() || addr + len > active_.end()) {
    sync_code();  // out-of-image window: fall back to the full copy
    return;
  }
  const auto off = static_cast<std::size_t>(addr - active_.base());
  machine_->patch_code(addr, active_.code().data() + off,
                       static_cast<std::size_t>(len));
}

std::uint64_t Kernel::api_addr(const std::string& name) const {
  const auto* sym = active_.find_symbol(name);
  if (sym == nullptr) throw std::out_of_range("no such API function: " + name);
  return sym->addr;
}

void Kernel::reboot() {
  // Zero the kernel data region (heap control, handle table, page table).
  const std::vector<std::uint8_t> zeros(
      static_cast<std::size_t>(lay::kScratch - lay::kHeapCtl), 0);
  machine_->write_bytes(lay::kHeapCtl, zeros.data(), zeros.size());

  // Guest-side boot code builds the initial heap and page table.
  const auto* heap_init = pristine_.find_symbol("heap_init");
  const auto* vm_init = pristine_.find_symbol("vm_init");
  if (heap_init == nullptr || vm_init == nullptr) {
    throw std::runtime_error("OS image is missing boot symbols");
  }
  // Boot runs against pristine code even when faults are injected: a real
  // reboot reloads the (possibly still faulty) module, but the *boot path*
  // (heap_init/vm_init) is not part of the API fault-injection surface, so
  // running it from the active image is equally fine — keep active to stay
  // faithful to "the fault persists until removed".
  const auto r1 = machine_->call(heap_init->addr, {}, 1u << 20);
  const auto r2 = machine_->call(vm_init->addr, {}, 1u << 20);
  if (!r1.ok() || !r2.ok()) {
    throw std::runtime_error("VOS boot failed");
  }
}

vm::Trap Kernel::handle_syscall(vm::Machine& m, std::int32_t num) {
  auto arg = [&m](int i) { return m.reg(isa::kRegArg0 + i); };
  switch (num) {
    case lay::kSysDiskFind: {
      std::string path;
      if (!m.read_cstr(static_cast<std::uint64_t>(arg(0)), path)) {
        return vm::Trap::kBadMemory;
      }
      const auto id = disk_.find(path);
      m.set_reg(0, id ? *id : -1);
      return vm::Trap::kNone;
    }
    case lay::kSysDiskCreate: {
      std::string path;
      if (!m.read_cstr(static_cast<std::uint64_t>(arg(0)), path)) {
        return vm::Trap::kBadMemory;
      }
      m.set_reg(0, disk_.create(path));
      return vm::Trap::kNone;
    }
    case lay::kSysDiskSize: {
      const auto sz = disk_.size(static_cast<int>(arg(0)));
      m.set_reg(0, sz ? *sz : -1);
      return vm::Trap::kNone;
    }
    case lay::kSysDiskRead: {
      const auto id = static_cast<int>(arg(0));
      const auto off = arg(1);
      const auto dst = static_cast<std::uint64_t>(arg(2));
      const auto len = arg(3);
      if (len < 0 || len > static_cast<std::int64_t>(lay::kMemSize)) {
        m.set_reg(0, -1);
        return vm::Trap::kNone;
      }
      std::vector<std::uint8_t> buf(static_cast<std::size_t>(len));
      const auto n = disk_.read(id, off, buf.data(), len);
      if (!n) {
        m.set_reg(0, -1);
        return vm::Trap::kNone;
      }
      // Copying into guest memory can fault if the guest passed a bad
      // buffer (e.g. a mutated pointer) — surface that as a memory trap.
      if (!m.write_bytes(dst, buf.data(), static_cast<std::size_t>(*n))) {
        return vm::Trap::kBadMemory;
      }
      m.set_reg(0, *n);
      return vm::Trap::kNone;
    }
    case lay::kSysDiskWrite: {
      const auto id = static_cast<int>(arg(0));
      const auto off = arg(1);
      const auto src = static_cast<std::uint64_t>(arg(2));
      const auto len = arg(3);
      if (len < 0 || len > static_cast<std::int64_t>(lay::kMemSize)) {
        m.set_reg(0, -1);
        return vm::Trap::kNone;
      }
      std::vector<std::uint8_t> buf(static_cast<std::size_t>(len));
      if (!m.read_bytes(src, buf.data(), buf.size())) {
        return vm::Trap::kBadMemory;
      }
      const auto n = disk_.write(id, off, buf.data(), len);
      m.set_reg(0, n ? *n : -1);
      return vm::Trap::kNone;
    }
    case lay::kSysTick:
      m.set_reg(0, static_cast<std::int64_t>(++tick_));
      return vm::Trap::kNone;
    case lay::kSysDebug:
      m.set_reg(0, 0);
      return vm::Trap::kNone;
    default:
      // Unknown intrinsic — this can only happen through a mutated SYS
      // immediate; treat it as an illegal instruction.
      return vm::Trap::kBadOpcode;
  }
}

}  // namespace gf::os
