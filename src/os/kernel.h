// VOS kernel: owns the VM, the disk, and the compiled OS image.
//
// The kernel compiles the MiniC sources of the selected OS version into a
// single image (vntdll+vkernel32), loads it into the VM, installs the
// kernel-intrinsic (SYS) handler, and boots the guest-side data structures
// by calling the MiniC heap_init/vm_init routines.
//
// The *active* image is the mutable copy the fault injector patches;
// sync_code() pushes its bytes into VM memory. The pristine image is kept
// for scanner input and byte-exact restore checks.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/image.h"
#include "os/disk.h"
#include "os/layout.h"
#include "os/sources.h"
#include "vm/machine.h"

namespace gf::os {

/// Memory effect of the guest boot path (heap_init/vm_init), recorded during
/// the first cold boot. The boot code is pure deterministic stores — no
/// syscalls, no reads outside the region reboot() just zeroed — so replaying
/// the byte-level last-write-wins spans plus the cycle/flag deltas is
/// *exactly* equivalent to re-executing it, at O(dirty pages + spans) cost.
struct BootReplay {
  struct CodeRange {
    std::uint64_t addr = 0, size = 0;
  };
  std::vector<vm::WriteSpan> writes;  ///< coalesced, byte-exact final values
  std::uint64_t cycles = 0;           ///< machine cycles the boot consumed
  int flags = 0;                      ///< cmp flags left by the boot code
  /// Code spans of the boot symbols: a warm reboot first verifies these
  /// bytes still match the pristine image and falls back to a real cold
  /// boot otherwise (a wild store into heap_init must keep failing loudly).
  std::vector<CodeRange> code;
};

/// Deep-copyable kernel state captured after boot (and, at the depbench
/// layer, after server start): everything needed to reconstruct a Kernel
/// without re-compiling MiniC sources or re-running the boot. Plain data —
/// safe to share read-only across campaign shard threads; per-task copies
/// are cheap because SimDisk content is copy-on-write.
struct KernelSnapshot {
  OsVersion version{};
  isa::Image pristine;
  isa::Image active;
  vm::Machine::State machine;
  std::shared_ptr<const BootReplay> boot;
  SimDisk disk;
  std::uint64_t ticks = 0;
};

/// Lifetime kernel activity tallies, bumped outside any hot path (reboots,
/// syscalls and code syncs are all µs-scale operations) and harvested as
/// deltas by the campaign controller at run boundaries.
struct KernelCounters {
  std::uint64_t reboots = 0;
  std::uint64_t cold_boots = 0;    ///< full boots (incl. the constructor's)
  std::uint64_t replay_boots = 0;  ///< O(dirty) recorded-boot replays
  std::uint64_t syscalls = 0;      ///< SYS instructions dispatched
  std::uint64_t code_syncs = 0;    ///< sync_code invocations (full + ranged)
};

class Kernel {
 public:
  explicit Kernel(OsVersion version);

  /// Warm construction: rebuilds a kernel from a snapshot in O(memory copy)
  /// — no MiniC compile, no boot execution. The machine resumes at the
  /// snapshot's exact cycle/tick counters, so runs against a warm kernel are
  /// bit-identical to runs against the cold-built kernel it was captured
  /// from.
  explicit Kernel(const KernelSnapshot& snap);

  OsVersion version() const noexcept { return version_; }
  vm::Machine& machine() noexcept { return *machine_; }
  const vm::Machine& machine() const noexcept { return *machine_; }
  SimDisk& disk() noexcept { return disk_; }
  const SimDisk& disk() const noexcept { return disk_; }

  /// Pristine compiled image (scanner input; never mutated).
  const isa::Image& pristine_image() const noexcept { return pristine_; }
  /// Active image (the injector patches this, then calls sync_code()).
  isa::Image& active_image() noexcept { return active_; }
  const isa::Image& active_image() const noexcept { return active_; }
  /// Copies the active image's bytes into VM memory (and re-decodes the
  /// VM's whole predecode cache — use the ranged overload when only a few
  /// instructions changed).
  void sync_code();
  /// Copies only [addr, addr+len) of the active image into VM memory and
  /// re-decodes just the touched predecode slots. The injector uses this:
  /// its patches span a handful of instructions, so a full-image sync per
  /// fault swap would dominate campaign time.
  void sync_code(std::uint64_t addr, std::uint64_t len);

  /// Address of a public API function (throws std::out_of_range if absent).
  std::uint64_t api_addr(const std::string& name) const;

  /// Re-initializes guest OS state (heap free list, handle table, page
  /// table) without touching the disk — the equivalent of an OS reboot
  /// between benchmark slots. After the first boot has been recorded this
  /// redirects to an O(dirty) replay (bit-identical by construction); a real
  /// cold boot still runs when the boot code bytes were corrupted or warm
  /// reboot is disabled.
  void reboot();

  /// Kill-switch for the boot replay (A/B benchmarking and the cold
  /// reference runs of the equivalence tests).
  void set_warm_reboot(bool on) noexcept { warm_reboot_ = on; }
  bool warm_reboot() const noexcept { return warm_reboot_; }

  /// Captures a deep-copyable snapshot of the current kernel state (resets
  /// the machine's dirty baseline as a side effect).
  KernelSnapshot snapshot();

  /// Monotonic tick counter (SYS_TICK).
  std::uint64_t ticks() const noexcept { return tick_; }

  /// Lifetime activity counters (not part of snapshots — they describe the
  /// kernel's history, and consumers read deltas).
  const KernelCounters& counters() const noexcept { return counters_; }

 private:
  vm::Trap handle_syscall(vm::Machine& m, std::int32_t num);
  void install_machine_hooks();
  /// Full boot: zero the kernel data region, run heap_init/vm_init. Records
  /// the BootReplay on the first successful run.
  void cold_boot();
  /// O(dirty) boot: zero only dirtied region pages, apply recorded spans,
  /// advance cycles/flags to the recorded post-boot values.
  void replay_boot();
  bool boot_code_intact() const noexcept;

  OsVersion version_;
  SimDisk disk_;
  isa::Image pristine_;
  isa::Image active_;
  std::unique_ptr<vm::Machine> machine_;
  std::shared_ptr<const BootReplay> boot_;  ///< set by the first cold boot
  bool warm_reboot_ = true;
  std::uint64_t tick_ = 0;
  KernelCounters counters_;
};

}  // namespace gf::os
