// VOS kernel: owns the VM, the disk, and the compiled OS image.
//
// The kernel compiles the MiniC sources of the selected OS version into a
// single image (vntdll+vkernel32), loads it into the VM, installs the
// kernel-intrinsic (SYS) handler, and boots the guest-side data structures
// by calling the MiniC heap_init/vm_init routines.
//
// The *active* image is the mutable copy the fault injector patches;
// sync_code() pushes its bytes into VM memory. The pristine image is kept
// for scanner input and byte-exact restore checks.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "isa/image.h"
#include "os/disk.h"
#include "os/layout.h"
#include "os/sources.h"
#include "vm/machine.h"

namespace gf::os {

class Kernel {
 public:
  explicit Kernel(OsVersion version);

  OsVersion version() const noexcept { return version_; }
  vm::Machine& machine() noexcept { return *machine_; }
  const vm::Machine& machine() const noexcept { return *machine_; }
  SimDisk& disk() noexcept { return disk_; }
  const SimDisk& disk() const noexcept { return disk_; }

  /// Pristine compiled image (scanner input; never mutated).
  const isa::Image& pristine_image() const noexcept { return pristine_; }
  /// Active image (the injector patches this, then calls sync_code()).
  isa::Image& active_image() noexcept { return active_; }
  const isa::Image& active_image() const noexcept { return active_; }
  /// Copies the active image's bytes into VM memory (and re-decodes the
  /// VM's whole predecode cache — use the ranged overload when only a few
  /// instructions changed).
  void sync_code();
  /// Copies only [addr, addr+len) of the active image into VM memory and
  /// re-decodes just the touched predecode slots. The injector uses this:
  /// its patches span a handful of instructions, so a full-image sync per
  /// fault swap would dominate campaign time.
  void sync_code(std::uint64_t addr, std::uint64_t len);

  /// Address of a public API function (throws std::out_of_range if absent).
  std::uint64_t api_addr(const std::string& name) const;

  /// Re-initializes guest OS state (heap free list, handle table, page
  /// table) without touching the disk — the equivalent of an OS reboot
  /// between benchmark slots.
  void reboot();

  /// Monotonic tick counter (SYS_TICK).
  std::uint64_t ticks() const noexcept { return tick_; }

 private:
  vm::Trap handle_syscall(vm::Machine& m, std::int32_t num);

  OsVersion version_;
  SimDisk disk_;
  isa::Image pristine_;
  isa::Image active_;
  std::unique_ptr<vm::Machine> machine_;
  std::uint64_t tick_ = 0;
};

}  // namespace gf::os
