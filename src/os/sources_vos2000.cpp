#include "os/sources.h"

namespace gf::os {

namespace {

// ---------------------------------------------------------------------------
// vntdll, VOS-2000: lean implementations — correct, but with the minimum of
// parameter validation. (The XP tree hardens each function; see
// sources_vosxp.cpp.)
// ---------------------------------------------------------------------------
constexpr const char* kNtdll2000 = R"(
// --- heap -------------------------------------------------------------

fn RtlAllocateHeap(size) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 100);
    store(tslot + 8, size);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 100);
    }
  }
  if (size <= 0) { return 0; }
  var need = ((size + 15) / 16) * 16;
  if (size > 0x40000) {
    // Large-allocation path: page-granular rounding and separate
    // accounting (cold for ordinary request traffic).
    need = ((size + 4095) / 4096) * 4096;
    var big = load(HEAP_CTL + 48) + 1;
    store(HEAP_CTL + 48, big);
    store(HEAP_CTL + 56, size);
    if (need > HEAP_END - HEAP_ARENA - BLOCK_HDR) {
      store(HEAP_CTL + 56, 0 - 1);
      return 0;
    }
  }
  var prev = 0;
  var cur = load(HEAP_CTL);
  while (cur != 0) {
    var bsize = load(cur);
    if (bsize >= need) {
      var next = load(cur + 8);
      var rest = bsize - need;
      if (rest >= 32) {
        var tail = cur + BLOCK_HDR + need;
        store(tail, rest - BLOCK_HDR);
        store(tail + 8, next);
        store(cur, need);
        next = tail;
      }
      if (prev == 0) {
        store(HEAP_CTL, next);
      } else {
        store(prev + 8, next);
      }
      store(cur + 8, ALLOC_MAGIC);
      store(HEAP_CTL + 8, load(HEAP_CTL + 8) + 1);
      store(HEAP_CTL + 24, load(HEAP_CTL + 24) + load(cur));
      return cur + BLOCK_HDR;
    }
    prev = cur;
    cur = load(cur + 8);
  }
  return 0;
}

fn RtlFreeHeap(ptr) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 101);
    store(tslot + 8, ptr);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 101);
    }
  }
  if (ptr == 0) { return STATUS_INVALID_PARAM; }
  var blk = ptr - BLOCK_HDR;
  if (blk < HEAP_ARENA || blk >= HEAP_END) { return STATUS_INVALID_PARAM; }
  if (load(blk + 8) != ALLOC_MAGIC) { return STATUS_INVALID_PARAM; }
  if (load(HEAP_CTL + 208) != 0) {
    // Deferred-free mode (set by debugging tools, never during normal
    // operation): park the block on the quarantine list.
    var qhead = load(HEAP_CTL + 216);
    store(blk + 8, qhead);
    store(HEAP_CTL + 216, blk);
    store(HEAP_CTL + 224, load(HEAP_CTL + 224) + 1);
    return STATUS_OK;
  }
  store(HEAP_CTL + 24, load(HEAP_CTL + 24) - load(blk));
  // Address-ordered free list with coalescing of adjacent blocks.
  var prev = 0;
  var cur = load(HEAP_CTL);
  while (cur != 0 && cur < blk) {
    prev = cur;
    cur = load(cur + 8);
  }
  store(blk + 8, cur);
  if (prev == 0) {
    store(HEAP_CTL, blk);
  } else {
    store(prev + 8, blk);
  }
  var bsize = load(blk);
  if (cur != 0 && blk + BLOCK_HDR + bsize == cur) {
    store(blk, bsize + BLOCK_HDR + load(cur));
    store(blk + 8, load(cur + 8));
  }
  if (prev != 0) {
    var psize = load(prev);
    if (prev + BLOCK_HDR + psize == blk) {
      store(prev, psize + BLOCK_HDR + load(blk));
      store(prev + 8, load(blk + 8));
    }
  }
  store(HEAP_CTL + 16, load(HEAP_CTL + 16) + 1);
  return STATUS_OK;
}

// --- handles / files ----------------------------------------------------

fn NtCreateFile(path) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 102);
    store(tslot + 8, path);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 102);
    }
  }
  if (path == 0) { return STATUS_INVALID_PARAM; }
  var plen = 0;
  while (load8(path + plen) != 0 && plen <= 260) {
    plen = plen + 1;
  }
  if (plen > 260) {
    // Long-path support: verify the extended-length prefix and charge the
    // quota ledger (cold: workload paths are short).
    if (load8(path) != '\\' || load8(path + 1) != '\\') {
      return STATUS_INVALID_PARAM;
    }
    var quota = load(HEAP_CTL + 240) + plen;
    if (quota > 1 << 20) { return STATUS_NO_MEMORY; }
    store(HEAP_CTL + 240, quota);
  }
  var id = sys(SYS_DISK_CREATE, path);
  if (id < 0) { return STATUS_IO_ERROR; }
  var i = 0;
  while (i < MAX_HANDLES) {
    var e = HANDLE_TABLE + i * 32;
    if (load(e) == 0) {
      store(e, 1);
      store(e + 8, id);
      store(e + 16, 0);
      store(e + 24, 0);
      return i + 1;
    }
    i = i + 1;
  }
  return STATUS_NO_MEMORY;
}

fn NtOpenFile(path) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 103);
    store(tslot + 8, path);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 103);
    }
  }
  if (path == 0) { return STATUS_INVALID_PARAM; }
  var c0 = load8(path);
  if (c0 == '\\') {
    // Device-namespace path ("\\Device\..."): resolve through the
    // object directory (cold: request URLs always use forward slashes).
    var dev = 0;
    var k = 0;
    while (k < 16 && load8(path + k) != 0) {
      dev = dev * 31 + load8(path + k);
      k = k + 1;
    }
    store(HEAP_CTL + 232, dev);
    if (dev == 0) { return STATUS_NOT_FOUND; }
  }
  var id = sys(SYS_DISK_FIND, path);
  if (id < 0) { return STATUS_NOT_FOUND; }
  var i = 0;
  while (i < MAX_HANDLES) {
    var e = HANDLE_TABLE + i * 32;
    if (load(e) == 0) {
      store(e, 1);
      store(e + 8, id);
      store(e + 16, 0);
      store(e + 24, 0);
      return i + 1;
    }
    i = i + 1;
  }
  return STATUS_NO_MEMORY;
}

fn NtClose(h) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 104);
    store(tslot + 8, h);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 104);
    }
  }
  if (h <= 0 || h > MAX_HANDLES) { return STATUS_INVALID_HANDLE; }
  var e = HANDLE_TABLE + (h - 1) * 32;
  if (load(e) == 0) { return STATUS_INVALID_HANDLE; }
  store(e, 0);
  store(e + 8, 0);
  store(e + 16, 0);
  store(e + 24, 0);
  return STATUS_OK;
}

fn NtReadFile(h, buf, len) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 105);
    store(tslot + 8, h);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 105);
    }
  }
  if (h <= 0 || h > MAX_HANDLES) { return STATUS_INVALID_HANDLE; }
  if (buf == 0 || len < 0) { return STATUS_INVALID_PARAM; }
  var e = HANDLE_TABLE + (h - 1) * 32;
  if (load(e) != 1) { return STATUS_INVALID_HANDLE; }
  var id = load(e + 8);
  var pos = load(e + 16);
  // Segmented transfer: the device moves at most 4 KiB per operation.
  var done = 0;
  while (done < len) {
    var chunk = len - done;
    if (chunk > 4096) { chunk = 4096; }
    var n = sys(SYS_DISK_READ, id, pos + done, buf + done, chunk);
    if (n < 0) { return STATUS_IO_ERROR; }
    if (n == 0) { break; }
    done = done + n;
    if (n < chunk) { break; }   // short read: end of file
  }
  store(e + 16, pos + done);
  note_io(1);
  return done;
}

fn NtWriteFile(h, buf, len) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 106);
    store(tslot + 8, h);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 106);
    }
  }
  if (h <= 0 || h > MAX_HANDLES) { return STATUS_INVALID_HANDLE; }
  if (buf == 0 || len < 0) { return STATUS_INVALID_PARAM; }
  var e = HANDLE_TABLE + (h - 1) * 32;
  if (load(e) != 1) { return STATUS_INVALID_HANDLE; }
  var id = load(e + 8);
  var pos = load(e + 16);
  var done = 0;
  while (done < len) {
    var chunk = len - done;
    if (chunk > 4096) { chunk = 4096; }
    var n = sys(SYS_DISK_WRITE, id, pos + done, buf + done, chunk);
    if (n < 0) { return STATUS_IO_ERROR; }
    if (n == 0) { break; }
    done = done + n;
  }
  store(e + 16, pos + done);
  note_io(2);
  return done;
}

// --- virtual memory ------------------------------------------------------

fn NtProtectVirtualMemory(addr, size, prot) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 107);
    store(tslot + 8, addr);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 107);
    }
  }
  if (addr < HEAP_ARENA || addr >= HEAP_END) { return STATUS_INVALID_PARAM; }
  if (size <= 0) { return STATUS_INVALID_PARAM; }
  var first = (addr - HEAP_ARENA) / PAGE_SIZE;
  var last = (addr + size - 1 - HEAP_ARENA) / PAGE_SIZE;
  if (last >= NUM_PAGES) { return STATUS_INVALID_PARAM; }
  var old = load(PAGE_TABLE + first * 8);
  var i = first;
  while (i <= last) {
    store(PAGE_TABLE + i * 8, prot);
    i = i + 1;
  }
  return old;
}

fn NtQueryVirtualMemory(addr, info) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 108);
    store(tslot + 8, addr);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 108);
    }
  }
  if (info == 0) { return STATUS_INVALID_PARAM; }
  if (addr < HEAP_ARENA || addr >= HEAP_END) { return STATUS_INVALID_PARAM; }
  var page = (addr - HEAP_ARENA) / PAGE_SIZE;
  store(info, HEAP_ARENA + page * PAGE_SIZE);
  store(info + 8, PAGE_SIZE);
  store(info + 16, load(PAGE_TABLE + page * 8));
  return STATUS_OK;
}

// --- critical sections ----------------------------------------------------
// CS object layout: [0] lock count, [8] owner, [16] recursion, [24] waiters.

fn RtlEnterCriticalSection(cs) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 109);
    store(tslot + 8, cs);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 109);
    }
  }
  if (cs == 0) { return STATUS_INVALID_PARAM; }
  var owner = load(cs + 8);
  if (owner != 0 && owner != 1) {
    // Contended acquire (cold: the benchmark SUB is single-threaded):
    // spin with backoff, then record the wait.
    var spins = 0;
    while (load(cs + 8) != 0 && spins < 64) {
      spins = spins + 1;
    }
    store(cs + 24, load(cs + 24) + 1);
    if (load(cs + 8) != 0) { return STATUS_INVALID_HANDLE; }
    owner = 0;
  }
  if (owner == 1) {
    store(cs + 16, load(cs + 16) + 1);
  } else {
    store(cs + 8, 1);
    store(cs + 16, 1);
  }
  store(cs, load(cs) + 1);
  return STATUS_OK;
}

fn RtlLeaveCriticalSection(cs) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 110);
    store(tslot + 8, cs);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 110);
    }
  }
  if (cs == 0) { return STATUS_INVALID_PARAM; }
  if (load(cs + 8) != 1) { return STATUS_INVALID_HANDLE; }
  var rec = load(cs + 16) - 1;
  store(cs + 16, rec);
  if (rec == 0) {
    store(cs + 8, 0);
  }
  store(cs, load(cs) - 1);
  return STATUS_OK;
}

// --- strings ----------------------------------------------------------------
// ANSI/UNICODE string struct layout: [0] length (bytes), [8] max length,
// [16] buffer. "Unicode" characters are 2 bytes, little endian.

fn RtlInitAnsiString(dst, src) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 111);
    store(tslot + 8, dst);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 111);
    }
  }
  if (dst == 0) { return STATUS_INVALID_PARAM; }
  if (src == 0) {
    store(dst, 0);
    store(dst + 8, 0);
    store(dst + 16, 0);
    return STATUS_OK;
  }
  var n = 0;
  while (load8(src + n) != 0) {
    n = n + 1;
  }
  store(dst, n);
  store(dst + 8, n + 1);
  store(dst + 16, src);
  return STATUS_OK;
}

fn RtlInitUnicodeString(dst, src) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 112);
    store(tslot + 8, dst);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 112);
    }
  }
  if (dst == 0) { return STATUS_INVALID_PARAM; }
  if (src == 0) {
    store(dst, 0);
    store(dst + 8, 0);
    store(dst + 16, 0);
    return STATUS_OK;
  }
  var n = 0;
  while (load8(src + n * 2) != 0 || load8(src + n * 2 + 1) != 0) {
    n = n + 1;
  }
  if (n > 16382) {
    // UNICODE_STRING lengths are 16-bit: clamp and flag the truncation
    // (cold: request paths are far shorter).
    n = 16382;
    var probe = load8(src + n * 2);
    if (probe != 0) {
      store(HEAP_CTL + 288, load(HEAP_CTL + 288) + 1);
    }
  }
  store(dst, n * 2);
  store(dst + 8, n * 2 + 2);
  store(dst + 16, src);
  return STATUS_OK;
}

fn RtlUnicodeToMultiByteN(dst, dst_max, src, src_bytes) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 113);
    store(tslot + 8, dst);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 113);
    }
  }
  if (dst == 0 || src == 0) { return STATUS_INVALID_PARAM; }
  if (dst_max <= 0 || src_bytes < 0) { return STATUS_INVALID_PARAM; }
  var chars = src_bytes / 2;
  var out = 0;
  var i = 0;
  while (i < chars && out < dst_max) {
    var lo = load8(src + i * 2);
    var hi = load8(src + i * 2 + 1);
    var c = lo;
    if (hi != 0) {
      // Non-ASCII code point: consult the best-fit mapping table and fall
      // back to '?' (cold: request URLs are plain ASCII).
      var cp = hi * 256 + lo;
      var fit = 0;
      if (cp >= 0xFF01 && cp <= 0xFF5E) {
        fit = cp - 0xFEE0;
      }
      if (cp >= 0x2018 && cp <= 0x2019) { fit = 39; }
      if (cp >= 0x201C && cp <= 0x201D) { fit = 34; }
      c = '?';
      if (fit > 0 && fit < 127) { c = fit; }
      store(HEAP_CTL + 248, load(HEAP_CTL + 248) + 1);
    }
    store8(dst + out, c);
    out = out + 1;
    i = i + 1;
  }
  return out;
}

fn RtlFreeUnicodeString(s) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 114);
    store(tslot + 8, s);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 114);
    }
  }
  if (s == 0) { return STATUS_INVALID_PARAM; }
  var buf = load(s + 16);
  if (buf != 0) {
    RtlFreeHeap(buf);
  }
  store(s, 0);
  store(s + 8, 0);
  store(s + 16, 0);
  return STATUS_OK;
}

fn RtlDosPathNameToNtPathName_U(src, dst) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 115);
    store(tslot + 8, src);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 115);
    }
  }
  if (src == 0 || dst == 0) { return STATUS_INVALID_PARAM; }
  var d0 = load8(src);
  var d1 = load8(src + 2);
  if (d1 == ':' && ((d0 >= 'A' && d0 <= 'Z') || (d0 >= 'a' && d0 <= 'z'))) {
    // Drive-letter form ("C:..."): canonicalize the drive designator into
    // the NT namespace (cold: request URLs never carry drive letters).
    var drive = d0;
    if (drive >= 'a') { drive = drive - 32; }
    store(HEAP_CTL + 256, drive);
    if (load8(src + 4) != '\\' && load8(src + 4) != '/') {
      // Drive-relative: the per-drive current directory would apply.
      store(HEAP_CTL + 264, load(HEAP_CTL + 264) + 1);
    }
  }
  var n = 0;
  while (load8(src + n * 2) != 0 || load8(src + n * 2 + 1) != 0) {
    n = n + 1;
  }
  var units = n + 5;
  var buf = RtlAllocateHeap(units * 2);
  if (buf == 0) { return STATUS_NO_MEMORY; }
  store8(buf, '\\');
  store8(buf + 1, 0);
  store8(buf + 2, '?');
  store8(buf + 3, 0);
  store8(buf + 4, '?');
  store8(buf + 5, 0);
  store8(buf + 6, '\\');
  store8(buf + 7, 0);
  var i = 0;
  while (i < n) {
    var lo = load8(src + i * 2);
    var hi = load8(src + i * 2 + 1);
    if (lo == '/' && hi == 0) { lo = '\\'; }
    store8(buf + 8 + i * 2, lo);
    store8(buf + 9 + i * 2, hi);
    i = i + 1;
  }
  store8(buf + 8 + n * 2, 0);
  store8(buf + 9 + n * 2, 0);
  store(dst, (n + 4) * 2);
  store(dst + 8, (n + 5) * 2);
  store(dst + 16, buf);
  return STATUS_OK;
}
)";

// ---------------------------------------------------------------------------
// vkernel32, VOS-2000: thin Win32-style wrappers over vntdll.
// ---------------------------------------------------------------------------
constexpr const char* kKernel322000 = R"(
fn CloseHandle(h) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 116);
    store(tslot + 8, h);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 116);
    }
  }
  var s = NtClose(h);
  if (s != STATUS_OK) { return 0; }
  return 1;
}

fn ReadFile(h, buf, len, out_read) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 117);
    store(tslot + 8, h);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 117);
    }
  }
  var n = NtReadFile(h, buf, len);
  if (n < 0) {
    if (out_read != 0) { store(out_read, 0); }
    return 0;
  }
  if (out_read != 0) { store(out_read, n); }
  return 1;
}

fn WriteFile(h, buf, len, out_written) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 118);
    store(tslot + 8, h);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 118);
    }
  }
  var n = NtWriteFile(h, buf, len);
  if (n < 0) {
    if (out_written != 0) { store(out_written, 0); }
    return 0;
  }
  if (out_written != 0) { store(out_written, n); }
  return 1;
}

fn SetFilePointer(h, pos) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 119);
    store(tslot + 8, h);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 119);
    }
  }
  if (h <= 0 || h > MAX_HANDLES) { return -1; }
  var e = HANDLE_TABLE + (h - 1) * 32;
  if (load(e) != 1) { return -1; }
  if (pos < 0) { return -1; }
  if (pos > 1 << 30) {
    // Sparse-seek beyond 1 GiB: check the volume's sparse support and
    // charge the quota (cold: workload files are tiny).
    var fsz = sys(SYS_DISK_SIZE, load(e + 8));
    if (fsz < 0) { return -1; }
    if (pos - fsz > 1 << 30) { return -1; }
    store(e + 24, load(e + 24) + 1);
  }
  store(e + 16, pos);
  return pos;
}

fn GetLongPathNameW(src, dst, dst_chars) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 120);
    store(tslot + 8, src);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 120);
    }
  }
  if (src == 0 || dst == 0 || dst_chars <= 0) { return 0; }
  var i = 0;
  var tilde = 0;
  while (i < dst_chars - 1) {
    var lo = load8(src + i * 2);
    var hi = load8(src + i * 2 + 1);
    if (lo == 0 && hi == 0) { break; }
    if (lo == '~' && hi == 0) { tilde = i + 1; }
    store8(dst + i * 2, lo);
    store8(dst + i * 2 + 1, hi);
    i = i + 1;
  }
  store8(dst + i * 2, 0);
  store8(dst + i * 2 + 1, 0);
  if (tilde != 0) {
    // 8.3 short-name component ("PROGRA~1"): expand it by looking the
    // directory entry up on disk (cold: URLs never use short names).
    var probe = sys(SYS_DISK_FIND, dst);
    if (probe >= 0) {
      store(HEAP_CTL + 272, probe);
    } else {
      store(HEAP_CTL + 272, tilde);
    }
    store(HEAP_CTL + 280, load(HEAP_CTL + 280) + 1);
  }
  return i;
}
)";

}  // namespace

std::string_view ntdll_source_2000() { return kNtdll2000; }
std::string_view kernel32_source_2000() { return kKernel322000; }

}  // namespace gf::os
