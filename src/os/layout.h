// VOS memory layout. These constants are shared between the C++ kernel and
// the MiniC sources of the OS API (where they are re-declared as `const`
// definitions; os/sources_common.cpp keeps them in sync and a unit test
// asserts the equality).
#pragma once

#include <cstdint>

namespace gf::os::layout {

// 8 MiB of physical memory, first page unmapped (null-deref detection).
inline constexpr std::uint64_t kMemSize = 8u << 20;

/// Code segment: the compiled vntdll+vkernel32 image.
inline constexpr std::uint64_t kCodeBase = 0x00010000;

/// Kernel data region ------------------------------------------------------
/// Heap control block: [0] head of the free list, [8] total allocs,
/// [16] total frees, [24] bytes in use.
inline constexpr std::uint64_t kHeapCtl = 0x00100000;

/// Handle table: kMaxHandles entries of 32 bytes:
/// [0] type (0 = free, 1 = file), [8] file id, [16] position, [24] flags.
inline constexpr std::uint64_t kHandleTable = 0x00110000;
inline constexpr std::int64_t kMaxHandles = 256;

/// Page-protection table for the virtual-memory calls: kNumPages entries of
/// 8 bytes holding the protection constant for each 64 KiB page of the heap
/// arena.
inline constexpr std::uint64_t kPageTable = 0x00120000;
inline constexpr std::int64_t kPageSize = 0x10000;
inline constexpr std::int64_t kNumPages = 64;

/// Scratch area used by the C++ OsApi facade to marshal strings/structs in
/// and out of API calls. Not owned by the guest code.
inline constexpr std::uint64_t kScratch = 0x00130000;
inline constexpr std::uint64_t kScratchSize = 0x00010000;

/// Heap arena managed by RtlAllocateHeap/RtlFreeHeap (MiniC code).
inline constexpr std::uint64_t kHeapArena = 0x00200000;
inline constexpr std::uint64_t kHeapArenaEnd = 0x00600000;

/// VM stack (grows down from the top).
inline constexpr std::uint64_t kStackLo = 0x007F0000;
inline constexpr std::uint64_t kStackHi = 0x00800000;

/// Heap block header: [0] size (payload bytes), [8] state word —
/// kAllocMagic when allocated, next-free pointer when free.
inline constexpr std::int64_t kBlockHeader = 16;
inline constexpr std::int64_t kAllocMagic = 0xA110C;

/// Kernel intrinsic (SYS) numbers.
inline constexpr std::int32_t kSysDiskFind = 1;      ///< (path) -> file id | -1
inline constexpr std::int32_t kSysDiskCreate = 2;    ///< (path) -> file id | -1
inline constexpr std::int32_t kSysDiskSize = 3;      ///< (id) -> size | -1
inline constexpr std::int32_t kSysDiskRead = 4;      ///< (id, off, dst, len) -> n | -1
inline constexpr std::int32_t kSysDiskWrite = 5;     ///< (id, off, src, len) -> n | -1
inline constexpr std::int32_t kSysTick = 6;          ///< () -> monotonic counter
inline constexpr std::int32_t kSysDebug = 7;         ///< (value) -> 0

/// Protection constants (NtProtectVirtualMemory).
inline constexpr std::int64_t kProtRead = 1;
inline constexpr std::int64_t kProtWrite = 2;
inline constexpr std::int64_t kProtExec = 4;

/// Common VOS status codes (mirrors NTSTATUS flavor: 0 success, negative
/// failure).
inline constexpr std::int64_t kStatusOk = 0;
inline constexpr std::int64_t kStatusInvalidHandle = -1;
inline constexpr std::int64_t kStatusInvalidParam = -2;
inline constexpr std::int64_t kStatusNotFound = -3;
inline constexpr std::int64_t kStatusNoMemory = -4;
inline constexpr std::int64_t kStatusIoError = -5;

}  // namespace gf::os::layout
