#include "os/sources.h"

namespace gf::os {

namespace {

// ---------------------------------------------------------------------------
// vntdll, VOS-XP: hardened implementations. Every function gains parameter
// validation, telemetry, and richer bookkeeping (heap coalescing, CS waiter
// counts, path canonicalization). Fault-free behaviour on valid inputs is
// identical to VOS-2000 (asserted by tests); the extra code is what makes
// the XP faultload larger, as in the paper's Table 3.
// ---------------------------------------------------------------------------
constexpr const char* kNtdllXp = R"(
// --- heap -------------------------------------------------------------

fn RtlAllocateHeap(size) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 121);
    store(tslot + 8, size);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 121);
    }
  }
  if (size <= 0) { return 0; }
  if (size > HEAP_END - HEAP_ARENA) { return 0; }
  tally(0);
  var need = ((size + 15) / 16) * 16;
  if (size > 0x40000) {
    // Large-allocation path: page-granular rounding, separate accounting
    // and a zero-on-demand policy flag (cold for request traffic).
    need = ((size + 4095) / 4096) * 4096;
    var big = load(HEAP_CTL + 48) + 1;
    store(HEAP_CTL + 48, big);
    store(HEAP_CTL + 56, size);
    if (need > HEAP_END - HEAP_ARENA - BLOCK_HDR) {
      store(HEAP_CTL + 56, 0 - 1);
      return 0;
    }
    if (load(HEAP_CTL + 296) != 0) {
      store(HEAP_CTL + 304, need);
    }
  }
  var prev = 0;
  var cur = load(HEAP_CTL);
  var scanned = 0;
  while (cur != 0) {
    if (cur < HEAP_ARENA || cur >= HEAP_END) { return 0; }   // corrupt list
    scanned = scanned + 1;
    if (scanned > 100000) { return 0; }                      // cycle guard
    var bsize = load(cur);
    if (bsize >= need) {
      var next = load(cur + 8);
      var rest = bsize - need;
      if (rest >= 32) {
        var tail = cur + BLOCK_HDR + need;
        store(tail, rest - BLOCK_HDR);
        store(tail + 8, next);
        store(cur, need);
        next = tail;
      }
      if (prev == 0) {
        store(HEAP_CTL, next);
      } else {
        store(prev + 8, next);
      }
      store(cur + 8, ALLOC_MAGIC);
      store(HEAP_CTL + 8, load(HEAP_CTL + 8) + 1);
      store(HEAP_CTL + 24, load(HEAP_CTL + 24) + load(cur));
      store(HEAP_CTL + 32, sys(SYS_TICK));
      return cur + BLOCK_HDR;
    }
    prev = cur;
    cur = load(cur + 8);
  }
  return 0;
}

fn RtlFreeHeap(ptr) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 122);
    store(tslot + 8, ptr);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 122);
    }
  }
  if (ptr == 0) { return STATUS_INVALID_PARAM; }
  if (ptr % 16 != 0) { return STATUS_INVALID_PARAM; }
  var blk = ptr - BLOCK_HDR;
  if (blk < HEAP_ARENA || blk >= HEAP_END) { return STATUS_INVALID_PARAM; }
  if (load(blk + 8) != ALLOC_MAGIC) { return STATUS_INVALID_PARAM; }
  if (load(HEAP_CTL + 208) != 0) {
    // Deferred-free mode (debug tooling; never during normal operation):
    // wipe the payload and park the block on the quarantine list.
    var fill = 0;
    var sz = load(blk);
    while (fill < sz) {
      store(blk + BLOCK_HDR + fill, 0x7EEEFEEE);
      fill = fill + 8;
    }
    var qhead = load(HEAP_CTL + 216);
    store(blk + 8, qhead);
    store(HEAP_CTL + 216, blk);
    store(HEAP_CTL + 224, load(HEAP_CTL + 224) + 1);
    return STATUS_OK;
  }
  tally(1);
  store(HEAP_CTL + 24, load(HEAP_CTL + 24) - load(blk));
  // Address-ordered insertion so adjacent free blocks can coalesce.
  var prev = 0;
  var cur = load(HEAP_CTL);
  while (cur != 0 && cur < blk) {
    prev = cur;
    cur = load(cur + 8);
  }
  store(blk + 8, cur);
  if (prev == 0) {
    store(HEAP_CTL, blk);
  } else {
    store(prev + 8, blk);
  }
  // Coalesce with the successor.
  var bsize = load(blk);
  if (cur != 0 && blk + BLOCK_HDR + bsize == cur) {
    store(blk, bsize + BLOCK_HDR + load(cur));
    store(blk + 8, load(cur + 8));
  }
  // Coalesce with the predecessor.
  if (prev != 0) {
    var psize = load(prev);
    if (prev + BLOCK_HDR + psize == blk) {
      store(prev, psize + BLOCK_HDR + load(blk));
      store(prev + 8, load(blk + 8));
    }
  }
  store(HEAP_CTL + 16, load(HEAP_CTL + 16) + 1);
  return STATUS_OK;
}

// --- handles / files ----------------------------------------------------

fn NtCreateFile(path) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 123);
    store(tslot + 8, path);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 123);
    }
  }
  if (path == 0) { return STATUS_INVALID_PARAM; }
  var plen = 0;
  while (load8(path + plen) != 0) {
    plen = plen + 1;
    if (plen > 1024) { return STATUS_INVALID_PARAM; }
  }
  if (plen == 0) { return STATUS_INVALID_PARAM; }
  if (plen > 260) {
    // Long-path support: require the extended-length prefix and charge
    // the name quota (cold: workload paths are short).
    if (load8(path) != '\\' || load8(path + 1) != '\\') {
      return STATUS_INVALID_PARAM;
    }
    var quota = load(HEAP_CTL + 240) + plen;
    if (quota > 1 << 20) { return STATUS_NO_MEMORY; }
    store(HEAP_CTL + 240, quota);
  }
  tally(2);
  var id = sys(SYS_DISK_CREATE, path);
  if (id < 0) { return STATUS_IO_ERROR; }
  var i = 0;
  while (i < MAX_HANDLES) {
    var e = HANDLE_TABLE + i * 32;
    if (load(e) == 0) {
      store(e, 1);
      store(e + 8, id);
      store(e + 16, 0);
      store(e + 24, sys(SYS_TICK));
      return i + 1;
    }
    i = i + 1;
  }
  return STATUS_NO_MEMORY;
}

fn NtOpenFile(path) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 124);
    store(tslot + 8, path);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 124);
    }
  }
  if (path == 0) { return STATUS_INVALID_PARAM; }
  var plen = 0;
  while (load8(path + plen) != 0) {
    plen = plen + 1;
    if (plen > 1024) { return STATUS_INVALID_PARAM; }
  }
  if (plen == 0) { return STATUS_INVALID_PARAM; }
  var c0 = load8(path);
  if (c0 == '\\') {
    // Device-namespace path: resolve through the object directory and
    // check the symbolic-link reparse budget (cold for URL traffic).
    var dev = 0;
    var k = 0;
    while (k < 16 && load8(path + k) != 0) {
      dev = dev * 31 + load8(path + k);
      k = k + 1;
    }
    store(HEAP_CTL + 232, dev);
    var reparse = load(HEAP_CTL + 312) + 1;
    if (reparse > 31) { return STATUS_NOT_FOUND; }
    store(HEAP_CTL + 312, reparse);
    if (dev == 0) { return STATUS_NOT_FOUND; }
  }
  tally(3);
  var id = sys(SYS_DISK_FIND, path);
  if (id < 0) { return STATUS_NOT_FOUND; }
  var i = 0;
  while (i < MAX_HANDLES) {
    var e = HANDLE_TABLE + i * 32;
    if (load(e) == 0) {
      store(e, 1);
      store(e + 8, id);
      store(e + 16, 0);
      store(e + 24, sys(SYS_TICK));
      return i + 1;
    }
    i = i + 1;
  }
  return STATUS_NO_MEMORY;
}

fn NtClose(h) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 125);
    store(tslot + 8, h);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 125);
    }
  }
  if (h <= 0 || h > MAX_HANDLES) { return STATUS_INVALID_HANDLE; }
  var e = HANDLE_TABLE + (h - 1) * 32;
  if (load(e) == 0) { return STATUS_INVALID_HANDLE; }
  if (load(e) != 1) { return STATUS_INVALID_HANDLE; }   // unknown type
  tally(4);
  store(e, 0);
  store(e + 8, 0);
  store(e + 16, 0);
  store(e + 24, 0);
  return STATUS_OK;
}

fn NtReadFile(h, buf, len) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 126);
    store(tslot + 8, h);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 126);
    }
  }
  if (h <= 0 || h > MAX_HANDLES) { return STATUS_INVALID_HANDLE; }
  if (buf == 0) { return STATUS_INVALID_PARAM; }
  if (len < 0) { return STATUS_INVALID_PARAM; }
  if (len == 0) { return 0; }
  var e = HANDLE_TABLE + (h - 1) * 32;
  if (load(e) != 1) { return STATUS_INVALID_HANDLE; }
  var id = load(e + 8);
  var pos = load(e + 16);
  if (pos < 0) { return STATUS_IO_ERROR; }      // corrupted handle entry
  // Segmented transfer with a progress guard against device livelock.
  var done = 0;
  var spins = 0;
  while (done < len) {
    var chunk = len - done;
    if (chunk > 4096) { chunk = 4096; }
    var n = sys(SYS_DISK_READ, id, pos + done, buf + done, chunk);
    if (n < 0) { return STATUS_IO_ERROR; }
    if (n == 0) { break; }
    done = done + n;
    spins = spins + 1;
    if (spins > 4096) { return STATUS_IO_ERROR; }
    if (n < chunk) { break; }
  }
  store(e + 16, pos + done);
  note_io(1);
  tally(5);
  return done;
}

fn NtWriteFile(h, buf, len) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 127);
    store(tslot + 8, h);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 127);
    }
  }
  if (h <= 0 || h > MAX_HANDLES) { return STATUS_INVALID_HANDLE; }
  if (buf == 0) { return STATUS_INVALID_PARAM; }
  if (len < 0) { return STATUS_INVALID_PARAM; }
  if (len == 0) { return 0; }
  var e = HANDLE_TABLE + (h - 1) * 32;
  if (load(e) != 1) { return STATUS_INVALID_HANDLE; }
  var id = load(e + 8);
  var pos = load(e + 16);
  if (pos < 0) { return STATUS_IO_ERROR; }
  var done = 0;
  var spins = 0;
  while (done < len) {
    var chunk = len - done;
    if (chunk > 4096) { chunk = 4096; }
    var n = sys(SYS_DISK_WRITE, id, pos + done, buf + done, chunk);
    if (n < 0) { return STATUS_IO_ERROR; }
    if (n == 0) { break; }
    done = done + n;
    spins = spins + 1;
    if (spins > 4096) { return STATUS_IO_ERROR; }
  }
  store(e + 16, pos + done);
  note_io(2);
  tally(6);
  return done;
}

// --- virtual memory ------------------------------------------------------

fn NtProtectVirtualMemory(addr, size, prot) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 128);
    store(tslot + 8, addr);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 128);
    }
  }
  if (addr < HEAP_ARENA || addr >= HEAP_END) { return STATUS_INVALID_PARAM; }
  if (size <= 0) { return STATUS_INVALID_PARAM; }
  if (prot < 0 || prot > 7) { return STATUS_INVALID_PARAM; }
  var first = (addr - HEAP_ARENA) / PAGE_SIZE;
  var last = (addr + size - 1 - HEAP_ARENA) / PAGE_SIZE;
  if (last >= NUM_PAGES) { return STATUS_INVALID_PARAM; }
  tally(7);
  var old = load(PAGE_TABLE + first * 8);
  var i = first;
  while (i <= last) {
    store(PAGE_TABLE + i * 8, prot);
    i = i + 1;
  }
  return old;
}

fn NtQueryVirtualMemory(addr, info) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 129);
    store(tslot + 8, addr);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 129);
    }
  }
  if (info == 0) { return STATUS_INVALID_PARAM; }
  if (addr < HEAP_ARENA || addr >= HEAP_END) { return STATUS_INVALID_PARAM; }
  var page = (addr - HEAP_ARENA) / PAGE_SIZE;
  if (page < 0 || page >= NUM_PAGES) { return STATUS_INVALID_PARAM; }
  store(info, HEAP_ARENA + page * PAGE_SIZE);
  store(info + 8, PAGE_SIZE);
  store(info + 16, load(PAGE_TABLE + page * 8));
  return STATUS_OK;
}

// --- critical sections ----------------------------------------------------

fn RtlEnterCriticalSection(cs) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 130);
    store(tslot + 8, cs);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 130);
    }
  }
  if (cs == 0) { return STATUS_INVALID_PARAM; }
  var owner = load(cs + 8);
  if (owner != 0 && owner != 1) {
    // Contended acquire (cold: single-threaded SUB): spin with bounded
    // backoff, then fall back to the wait path.
    var spins = 0;
    var backoff = 1;
    while (load(cs + 8) != 0 && spins < 128) {
      spins = spins + backoff;
      backoff = backoff * 2;
      if (backoff > 16) { backoff = 16; }
    }
    store(cs + 24, load(cs + 24) + 1);
    if (load(cs + 8) != 0) { return STATUS_INVALID_HANDLE; }
    owner = 0;
  }
  if (owner == 1) {
    var rec = load(cs + 16);
    if (rec < 0) { return STATUS_INVALID_HANDLE; }
    store(cs + 16, rec + 1);
  } else {
    store(cs + 8, 1);
    store(cs + 16, 1);
    store(cs + 24, load(cs + 24) + 1);   // acquisition count
  }
  store(cs, load(cs) + 1);
  return STATUS_OK;
}

fn RtlLeaveCriticalSection(cs) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 131);
    store(tslot + 8, cs);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 131);
    }
  }
  if (cs == 0) { return STATUS_INVALID_PARAM; }
  if (load(cs + 8) != 1) { return STATUS_INVALID_HANDLE; }
  var rec = load(cs + 16);
  if (rec <= 0) { return STATUS_INVALID_HANDLE; }   // over-release
  rec = rec - 1;
  store(cs + 16, rec);
  if (rec == 0) {
    store(cs + 8, 0);
  }
  store(cs, load(cs) - 1);
  return STATUS_OK;
}

// --- strings ----------------------------------------------------------------

fn RtlInitAnsiString(dst, src) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 132);
    store(tslot + 8, dst);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 132);
    }
  }
  if (dst == 0) { return STATUS_INVALID_PARAM; }
  if (src == 0) {
    store(dst, 0);
    store(dst + 8, 0);
    store(dst + 16, 0);
    return STATUS_OK;
  }
  var n = 0;
  while (load8(src + n) != 0) {
    n = n + 1;
    if (n > 32767) { return STATUS_INVALID_PARAM; }
  }
  store(dst, n);
  store(dst + 8, n + 1);
  store(dst + 16, src);
  return STATUS_OK;
}

fn RtlInitUnicodeString(dst, src) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 133);
    store(tslot + 8, dst);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 133);
    }
  }
  if (dst == 0) { return STATUS_INVALID_PARAM; }
  if (src == 0) {
    store(dst, 0);
    store(dst + 8, 0);
    store(dst + 16, 0);
    return STATUS_OK;
  }
  var n = 0;
  while (load8(src + n * 2) != 0 || load8(src + n * 2 + 1) != 0) {
    n = n + 1;
    if (n > 16383) { return STATUS_INVALID_PARAM; }
  }
  store(dst, n * 2);
  store(dst + 8, n * 2 + 2);
  store(dst + 16, src);
  return STATUS_OK;
}

fn RtlUnicodeToMultiByteN(dst, dst_max, src, src_bytes) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 134);
    store(tslot + 8, dst);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 134);
    }
  }
  if (dst == 0 || src == 0) { return STATUS_INVALID_PARAM; }
  if (dst_max <= 0 || src_bytes < 0) { return STATUS_INVALID_PARAM; }
  if (src_bytes % 2 != 0) { return STATUS_INVALID_PARAM; }
  tally(8);
  var chars = src_bytes / 2;
  var out = 0;
  var i = 0;
  while (i < chars && out < dst_max) {
    var lo = load8(src + i * 2);
    var hi = load8(src + i * 2 + 1);
    var c = lo;
    if (hi != 0) {
      // Non-ASCII code point: best-fit mapping with surrogate detection
      // (cold: request URLs are plain ASCII).
      var cp = hi * 256 + lo;
      if (cp >= 0xD800 && cp <= 0xDFFF) {
        // Unpaired surrogate: not representable.
        store(HEAP_CTL + 320, load(HEAP_CTL + 320) + 1);
        return STATUS_INVALID_PARAM;
      }
      var fit = 0;
      if (cp >= 0xFF01 && cp <= 0xFF5E) {
        fit = cp - 0xFEE0;
      }
      if (cp >= 0x2018 && cp <= 0x2019) { fit = 39; }
      if (cp >= 0x201C && cp <= 0x201D) { fit = 34; }
      if (cp == 0x00A0) { fit = ' '; }
      c = '?';
      if (fit > 0 && fit < 127) { c = fit; }
      store(HEAP_CTL + 248, load(HEAP_CTL + 248) + 1);
    }
    store8(dst + out, c);
    out = out + 1;
    i = i + 1;
  }
  return out;
}

fn RtlFreeUnicodeString(s) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 135);
    store(tslot + 8, s);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 135);
    }
  }
  if (s == 0) { return STATUS_INVALID_PARAM; }
  var buf = load(s + 16);
  if (buf != 0) {
    if (buf >= HEAP_ARENA + BLOCK_HDR && buf < HEAP_END) {
      RtlFreeHeap(buf);
    }
  }
  store(s, 0);
  store(s + 8, 0);
  store(s + 16, 0);
  return STATUS_OK;
}

fn RtlDosPathNameToNtPathName_U(src, dst) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 136);
    store(tslot + 8, src);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 136);
    }
  }
  if (src == 0 || dst == 0) { return STATUS_INVALID_PARAM; }
  var d0 = load8(src);
  var d1 = load8(src + 2);
  if (d1 == ':' && ((d0 >= 'A' && d0 <= 'Z') || (d0 >= 'a' && d0 <= 'z'))) {
    // Drive-letter form: canonicalize the designator and consult the
    // per-drive current directory (cold: URLs never carry drive letters).
    var drive = d0;
    if (drive >= 'a') { drive = drive - 32; }
    store(HEAP_CTL + 256, drive);
    if (load8(src + 4) != '\\' && load8(src + 4) != '/') {
      store(HEAP_CTL + 264, load(HEAP_CTL + 264) + 1);
    }
    if (drive < 'A' || drive > 'Z') { return STATUS_INVALID_PARAM; }
  }
  var n = 0;
  while (load8(src + n * 2) != 0 || load8(src + n * 2 + 1) != 0) {
    n = n + 1;
    if (n > 16383) { return STATUS_INVALID_PARAM; }
  }
  tally(9);
  var units = n + 5;
  var buf = RtlAllocateHeap(units * 2);
  if (buf == 0) { return STATUS_NO_MEMORY; }
  store8(buf, '\\');
  store8(buf + 1, 0);
  store8(buf + 2, '?');
  store8(buf + 3, 0);
  store8(buf + 4, '?');
  store8(buf + 5, 0);
  store8(buf + 6, '\\');
  store8(buf + 7, 0);
  var i = 0;
  while (i < n) {
    var lo = load8(src + i * 2);
    var hi = load8(src + i * 2 + 1);
    if (lo == '/' && hi == 0) { lo = '\\'; }
    store8(buf + 8 + i * 2, lo);
    store8(buf + 9 + i * 2, hi);
    i = i + 1;
  }
  store8(buf + 8 + n * 2, 0);
  store8(buf + 9 + n * 2, 0);
  store(dst, (n + 4) * 2);
  store(dst + 8, (n + 5) * 2);
  store(dst + 16, buf);
  return STATUS_OK;
}
)";

// ---------------------------------------------------------------------------
// vkernel32, VOS-XP: wrappers with extra validation and canonicalization.
// ---------------------------------------------------------------------------
constexpr const char* kKernel32Xp = R"(
fn CloseHandle(h) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 137);
    store(tslot + 8, h);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 137);
    }
  }
  if (h <= 0) { return 0; }
  var s = NtClose(h);
  if (s != STATUS_OK) { return 0; }
  tally(10);
  return 1;
}

fn ReadFile(h, buf, len, out_read) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 138);
    store(tslot + 8, h);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 138);
    }
  }
  if (out_read != 0) { store(out_read, 0); }
  if (buf == 0 && len > 0) { return 0; }
  var n = NtReadFile(h, buf, len);
  if (n < 0) { return 0; }
  if (out_read != 0) { store(out_read, n); }
  return 1;
}

fn WriteFile(h, buf, len, out_written) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 139);
    store(tslot + 8, h);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 139);
    }
  }
  if (out_written != 0) { store(out_written, 0); }
  if (buf == 0 && len > 0) { return 0; }
  var n = NtWriteFile(h, buf, len);
  if (n < 0) { return 0; }
  if (out_written != 0) { store(out_written, n); }
  return 1;
}

fn SetFilePointer(h, pos) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 140);
    store(tslot + 8, h);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 140);
    }
  }
  if (h <= 0 || h > MAX_HANDLES) { return -1; }
  var e = HANDLE_TABLE + (h - 1) * 32;
  if (load(e) != 1) { return -1; }
  if (pos < 0) { return -1; }
  var fsize = sys(SYS_DISK_SIZE, load(e + 8));
  if (fsize < 0) { return -1; }
  if (pos > 1 << 30) {
    // Sparse-seek beyond 1 GiB (cold: workload files are tiny).
    if (pos - fsize > 1 << 30) { return -1; }
    store(e + 24, load(e + 24) + 1);
  }
  store(e + 16, pos);
  tally(11);
  return pos;
}

fn GetLongPathNameW(src, dst, dst_chars) {
  if (load(TRACE_CTL) != 0) {
    // Event tracing (cold: enabled only by debugging tools).
    var tseq = load(TRACE_SEQ);
    var tslot = TRACE_RING + (tseq % TRACE_SLOTS) * 24;
    store(tslot, 141);
    store(tslot + 8, src);
    store(tslot + 16, sys(SYS_TICK));
    store(TRACE_SEQ, tseq + 1);
    if (tseq % 1024 == 1023) {
      sys(SYS_DEBUG, 141);
    }
  }
  if (src == 0 || dst == 0 || dst_chars <= 0) { return 0; }
  var i = 0;      // read index (chars)
  var o = 0;      // write index (chars)
  var prev_sep = 0;
  var tilde = 0;
  while (o < dst_chars - 1) {
    var lo = load8(src + i * 2);
    var hi = load8(src + i * 2 + 1);
    if (lo == 0 && hi == 0) { break; }
    // Collapse duplicate separators ("//" -> "/").
    var is_sep = 0;
    if (hi == 0 && (lo == '/' || lo == '\\')) { is_sep = 1; }
    if (is_sep == 1 && prev_sep == 1) {
      i = i + 1;
      continue;
    }
    prev_sep = is_sep;
    if (lo == '~' && hi == 0) { tilde = o + 1; }
    store8(dst + o * 2, lo);
    store8(dst + o * 2 + 1, hi);
    i = i + 1;
    o = o + 1;
  }
  store8(dst + o * 2, 0);
  store8(dst + o * 2 + 1, 0);
  if (tilde != 0) {
    // Expand an 8.3 short-name component via a directory probe (cold).
    var probe = sys(SYS_DISK_FIND, dst);
    if (probe >= 0) {
      store(HEAP_CTL + 272, probe);
    } else {
      store(HEAP_CTL + 272, tilde);
    }
    store(HEAP_CTL + 280, load(HEAP_CTL + 280) + 1);
  }
  return o;
}
)";

}  // namespace

std::string_view ntdll_source_xp() { return kNtdllXp; }
std::string_view kernel32_source_xp() { return kKernel32Xp; }

// Defined in sources_vos2000.cpp.
std::string_view ntdll_source_2000();
std::string_view kernel32_source_2000();

std::string_view ntdll_source(OsVersion v) {
  return v == OsVersion::kVos2000 ? ntdll_source_2000() : ntdll_source_xp();
}

std::string_view kernel32_source(OsVersion v) {
  return v == OsVersion::kVos2000 ? kernel32_source_2000() : kernel32_source_xp();
}

}  // namespace gf::os
