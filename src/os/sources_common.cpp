#include "os/sources.h"

namespace gf::os {

// Keep in sync with os/layout.h (asserted by tests/test_os.cpp).
std::string_view common_source() {
  return R"(
// ---- VOS shared definitions (mirror of os/layout.h) ----
const HEAP_CTL     = 0x100000;
const HANDLE_TABLE = 0x110000;
const MAX_HANDLES  = 256;
const PAGE_TABLE   = 0x120000;
const PAGE_SIZE    = 0x10000;
const NUM_PAGES    = 64;
const HEAP_ARENA   = 0x200000;
const HEAP_END     = 0x600000;
const BLOCK_HDR    = 16;
const ALLOC_MAGIC  = 0xA110C;

const STATUS_OK             = 0;
const STATUS_INVALID_HANDLE = -1;
const STATUS_INVALID_PARAM  = -2;
const STATUS_NOT_FOUND      = -3;
const STATUS_NO_MEMORY      = -4;
const STATUS_IO_ERROR       = -5;

const PROT_RW = 3;

// Event-trace control block (ETW-style): disabled unless TRACE_CTL is set
// by debugging tools. The per-function trace hooks below it are compiled
// into every API function but never execute during normal operation.
const TRACE_CTL  = 0x100400;
const TRACE_SEQ  = 0x100408;
const TRACE_RING = 0x100410;
const TRACE_SLOTS = 32;

// Kernel intrinsics.
const SYS_DISK_FIND   = 1;
const SYS_DISK_CREATE = 2;
const SYS_DISK_SIZE   = 3;
const SYS_DISK_READ   = 4;
const SYS_DISK_WRITE  = 5;
const SYS_TICK        = 6;
const SYS_DEBUG       = 7;

// Internal telemetry counters (not part of the public API surface).
// Slot layout: HEAP_CTL+64 .. HEAP_CTL+64+16*8.
fn tally(kind) {
  if (kind < 0 || kind > 15) { return 0; }
  var slot = HEAP_CTL + 64 + kind * 8;
  store(slot, load(slot) + 1);
  return load(slot);
}

// Records the kind of the last I/O operation (diagnostic breadcrumb).
fn note_io(kind) {
  store(HEAP_CTL + 40, kind);
  return kind;
}

// Boot-time heap initialization: one free block spanning the whole arena.
fn heap_init() {
  store(HEAP_ARENA, HEAP_END - HEAP_ARENA - BLOCK_HDR);
  store(HEAP_ARENA + 8, 0);
  store(HEAP_CTL, HEAP_ARENA);
  store(HEAP_CTL + 8, 0);
  store(HEAP_CTL + 16, 0);
  store(HEAP_CTL + 24, 0);
  return 0;
}

// Boot-time page-protection table initialization (all pages read+write).
fn vm_init() {
  var i = 0;
  while (i < NUM_PAGES) {
    store(PAGE_TABLE + i * 8, PROT_RW);
    i = i + 1;
  }
  return 0;
}
)";
}

namespace {
constexpr ApiFunctionInfo kApi[] = {
    {"NtClose", "ntdll"},
    {"NtCreateFile", "ntdll"},
    {"NtOpenFile", "ntdll"},
    {"NtProtectVirtualMemory", "ntdll"},
    {"NtQueryVirtualMemory", "ntdll"},
    {"NtReadFile", "ntdll"},
    {"NtWriteFile", "ntdll"},
    {"RtlAllocateHeap", "ntdll"},
    {"RtlDosPathNameToNtPathName_U", "ntdll"},
    {"RtlEnterCriticalSection", "ntdll"},
    {"RtlFreeHeap", "ntdll"},
    {"RtlFreeUnicodeString", "ntdll"},
    {"RtlInitAnsiString", "ntdll"},
    {"RtlInitUnicodeString", "ntdll"},
    {"RtlLeaveCriticalSection", "ntdll"},
    {"RtlUnicodeToMultiByteN", "ntdll"},
    {"CloseHandle", "kernel32"},
    {"GetLongPathNameW", "kernel32"},
    {"ReadFile", "kernel32"},
    {"SetFilePointer", "kernel32"},
    {"WriteFile", "kernel32"},
};
}  // namespace

std::span<const ApiFunctionInfo> api_functions() { return kApi; }

}  // namespace gf::os
