// OsApi — the boundary between the Benchmark Target (native C++ web servers)
// and the Fault Injection Target (VISA code of the VOS API).
//
// Every call executes guest code on the VM and therefore feels the injected
// faults: wrong results, error statuses, memory traps, and cycle-budget
// hangs all surface through ApiResult. The BT can only reach OS state
// through this class, which structurally enforces the paper's rule that the
// benchmark target itself is never modified.
//
// The call hook feeds the profiling phase (Table 2): the profiler counts
// API invocations per function name across different benchmark targets.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "os/kernel.h"

namespace gf::os {

/// Outcome of one API call.
struct ApiResult {
  bool completed = false;      ///< guest function ran to completion
  std::int64_t value = 0;      ///< its return value (status or payload)
  vm::Trap trap = vm::Trap::kHalt;  ///< kHalt when completed
  std::uint64_t cycles = 0;

  /// Completed with a non-negative result (VOS convention: negative =
  /// error status).
  bool ok() const noexcept { return completed && value >= 0; }
  /// The call crashed (memory/opcode/jump/div trap) — the analogue of an
  /// exception escaping an OS API call.
  bool crashed() const noexcept {
    return !completed && trap != vm::Trap::kCycleLimit;
  }
  /// The call exceeded its cycle budget (hung inside the OS).
  bool hung() const noexcept { return trap == vm::Trap::kCycleLimit; }
};

class OsApi {
 public:
  /// `cycle_budget` bounds every API call; mutated infinite loops surface
  /// as ApiResult::hung().
  explicit OsApi(Kernel& kernel, std::uint64_t cycle_budget = 1u << 20);

  /// Raw call by API function name with integer/pointer args.
  ApiResult call(const std::string& name, const std::vector<std::int64_t>& args);

  // --- ntdll wrappers -------------------------------------------------------
  ApiResult nt_close(std::int64_t h);
  ApiResult nt_create_file(std::uint64_t path_addr);
  ApiResult nt_open_file(std::uint64_t path_addr);
  ApiResult nt_read_file(std::int64_t h, std::uint64_t buf, std::int64_t len);
  ApiResult nt_write_file(std::int64_t h, std::uint64_t buf, std::int64_t len);
  ApiResult nt_protect_vm(std::uint64_t addr, std::int64_t size, std::int64_t prot);
  ApiResult nt_query_vm(std::uint64_t addr, std::uint64_t info);
  ApiResult rtl_alloc(std::int64_t size);
  ApiResult rtl_free(std::uint64_t ptr);
  ApiResult rtl_enter_cs(std::uint64_t cs);
  ApiResult rtl_leave_cs(std::uint64_t cs);
  ApiResult rtl_init_ansi_string(std::uint64_t dst, std::uint64_t src);
  ApiResult rtl_init_unicode_string(std::uint64_t dst, std::uint64_t src);
  ApiResult rtl_unicode_to_multibyte(std::uint64_t dst, std::int64_t dst_max,
                                     std::uint64_t src, std::int64_t src_bytes);
  ApiResult rtl_free_unicode_string(std::uint64_t s);
  ApiResult rtl_dos_path_to_nt(std::uint64_t src, std::uint64_t dst);

  // --- kernel32 wrappers ------------------------------------------------------
  ApiResult close_handle(std::int64_t h);
  ApiResult read_file(std::int64_t h, std::uint64_t buf, std::int64_t len,
                      std::uint64_t out_read);
  ApiResult write_file(std::int64_t h, std::uint64_t buf, std::int64_t len,
                       std::uint64_t out_written);
  ApiResult set_file_pointer(std::int64_t h, std::int64_t pos);
  ApiResult get_long_path_name(std::uint64_t src, std::uint64_t dst,
                               std::int64_t dst_chars);

  // --- guest-memory helpers for the BT ---------------------------------------
  /// Writes a NUL-terminated byte string at `addr`. Returns false on fault.
  bool write_cstr(std::uint64_t addr, const std::string& s);
  /// Writes a NUL-terminated 2-byte-char string ("unicode") at `addr`.
  bool write_wstr(std::uint64_t addr, const std::string& s);
  bool read_bytes(std::uint64_t addr, void* out, std::size_t n) const;
  bool write_bytes(std::uint64_t addr, const void* data, std::size_t n);
  std::uint64_t read_u64_or(std::uint64_t addr, std::uint64_t fallback) const;

  /// Scratch slots the BT may use for marshalling (within layout::kScratch).
  static constexpr std::uint64_t kPathSlot = layout::kScratch;
  static constexpr std::uint64_t kWidePathSlot = layout::kScratch + 0x2000;
  static constexpr std::uint64_t kStructSlot = layout::kScratch + 0x6000;
  static constexpr std::uint64_t kOutSlot = layout::kScratch + 0x7000;

  /// Hook invoked with the function name on every call (profiling).
  void set_call_hook(std::function<void(const std::string&)> hook) {
    hook_ = std::move(hook);
  }

  /// Hook invoked with (name, result) after every call returns — the
  /// error-propagation observation point: the tracing subsystem classifies
  /// crashes/hangs here and can checksum kernel invariants at the exact API
  /// boundary where corruption first becomes observable.
  using PostCallHook = std::function<void(const std::string&, const ApiResult&)>;
  void set_post_call_hook(PostCallHook hook) { post_hook_ = std::move(hook); }

  /// Attaches a per-function metrics sink (call counts + cycle-latency
  /// histograms, the observability counterpart of the Table 2 profile).
  /// Detached (nullptr, the default) this is one never-taken branch per API
  /// call — each of which executes thousands of VM cycles.
  void set_metrics(obs::ApiMetrics* metrics) noexcept { metrics_ = metrics; }
  obs::ApiMetrics* metrics() const noexcept { return metrics_; }

  std::uint64_t cycle_budget() const noexcept { return cycle_budget_; }
  void set_cycle_budget(std::uint64_t b) noexcept { cycle_budget_ = b; }

  /// Cumulative cycles consumed by API calls through this facade.
  std::uint64_t total_cycles() const noexcept { return total_cycles_; }
  std::uint64_t call_count() const noexcept { return call_count_; }

  Kernel& kernel() noexcept { return kernel_; }

 private:
  Kernel& kernel_;
  std::uint64_t cycle_budget_;
  std::function<void(const std::string&)> hook_;
  PostCallHook post_hook_;
  std::uint64_t total_cycles_ = 0;
  std::uint64_t call_count_ = 0;
  obs::ApiMetrics* metrics_ = nullptr;
};

}  // namespace gf::os
