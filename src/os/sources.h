// MiniC source code of the VOS API — the Fault Injection Target.
//
// The 21 functions mirror Table 2 of the paper exactly (16 in vntdll, 5 in
// vkernel32). Two source trees exist: VOS-2000 and VOS-XP. The XP tree adds
// parameter validation, telemetry, heap coalescing and path canonicalization
// — more compiled code, therefore more fault locations (the paper's Table 3
// shows the XP faultload is ~1.7x the 2000 one) — while keeping identical
// fault-free semantics on the common surface (asserted by tests).
#pragma once

#include <span>
#include <string_view>

namespace gf::os {

enum class OsVersion { kVos2000, kVosXp };

inline const char* os_version_name(OsVersion v) {
  return v == OsVersion::kVos2000 ? "VOS-2000" : "VOS-XP";
}

/// Shared consts + internal helpers (heap_init, vm_init, tally).
std::string_view common_source();

/// The 16 vntdll API functions for the given OS version.
std::string_view ntdll_source(OsVersion v);

/// The 5 vkernel32 API functions for the given OS version.
std::string_view kernel32_source(OsVersion v);

/// Public API surface: function name + owning module (for Table 2).
struct ApiFunctionInfo {
  const char* name;
  const char* module;
};
std::span<const ApiFunctionInfo> api_functions();

}  // namespace gf::os
