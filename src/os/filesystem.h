// Host-side path utilities shared by the workload file-set builder and the
// web servers (URL -> disk path mapping). Guest-side path handling (NT path
// conversion, canonicalization) lives in the MiniC OS code.
#pragma once

#include <string>

namespace gf::os {

/// Lexically normalizes a path: backslashes -> slashes, collapses duplicate
/// separators, resolves "." segments, rejects ".." escapes by clamping at
/// the root. Result has no trailing slash (except the root "/").
std::string normalize_path(const std::string& path);

/// Joins two path fragments with exactly one separator.
std::string join_path(const std::string& a, const std::string& b);

/// Lowercased extension without the dot ("" when none).
std::string path_extension(const std::string& path);

/// True if the path is a plausible request target: begins with '/' and has
/// no NUL or control characters.
bool is_valid_request_path(const std::string& path);

}  // namespace gf::os
