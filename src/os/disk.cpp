#include "os/disk.h"

#include <algorithm>
#include <cstring>

namespace gf::os {

std::optional<int> SimDisk::find(const std::string& path) const {
  const auto it = index_.find(path);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::uint8_t>& SimDisk::detach(std::size_t id) {
  auto& slot = files_[id];
  // use_count == 1 means no other disk shares this buffer; mutate in place.
  if (slot.use_count() != 1) slot = std::make_shared<std::vector<std::uint8_t>>(*slot);
  return *slot;
}

int SimDisk::create(const std::string& path) {
  const auto it = index_.find(path);
  if (it != index_.end()) {
    // Truncation must not clear a buffer other disks still read.
    files_[static_cast<std::size_t>(it->second)] =
        std::make_shared<std::vector<std::uint8_t>>();
    return it->second;
  }
  const int id = static_cast<int>(files_.size());
  files_.push_back(std::make_shared<std::vector<std::uint8_t>>());
  names_.push_back(path);
  index_[path] = id;
  return id;
}

int SimDisk::add_file(const std::string& path, std::vector<std::uint8_t> content) {
  const int id = create(path);
  files_[static_cast<std::size_t>(id)] =
      std::make_shared<std::vector<std::uint8_t>>(std::move(content));
  return id;
}

std::optional<std::int64_t> SimDisk::size(int id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= files_.size()) return std::nullopt;
  return static_cast<std::int64_t>(files_[static_cast<std::size_t>(id)]->size());
}

std::optional<std::int64_t> SimDisk::read(int id, std::int64_t offset,
                                          std::uint8_t* dst, std::int64_t len) const {
  if (id < 0 || static_cast<std::size_t>(id) >= files_.size()) return std::nullopt;
  if (offset < 0 || len < 0) return std::nullopt;
  const auto& f = *files_[static_cast<std::size_t>(id)];
  if (static_cast<std::size_t>(offset) >= f.size()) return 0;
  const auto n = std::min<std::int64_t>(len, static_cast<std::int64_t>(f.size()) - offset);
  // memcpy's pointer args are declared nonnull even for n == 0, and guests
  // legally issue zero-length reads with a null buffer.
  if (n > 0) std::memcpy(dst, f.data() + offset, static_cast<std::size_t>(n));
  return n;
}

std::optional<std::int64_t> SimDisk::write(int id, std::int64_t offset,
                                           const std::uint8_t* src, std::int64_t len) {
  if (id < 0 || static_cast<std::size_t>(id) >= files_.size()) return std::nullopt;
  if (offset < 0 || len < 0) return std::nullopt;
  auto& f = detach(static_cast<std::size_t>(id));
  const auto end = static_cast<std::size_t>(offset + len);
  if (end > f.size()) f.resize(end, 0);
  if (len > 0) std::memcpy(f.data() + offset, src, static_cast<std::size_t>(len));
  return len;
}

const std::vector<std::uint8_t>* SimDisk::content(const std::string& path) const {
  const auto id = find(path);
  if (!id) return nullptr;
  return files_[static_cast<std::size_t>(*id)].get();
}

}  // namespace gf::os
