#include "os/disk.h"

#include <algorithm>
#include <cstring>

namespace gf::os {

std::optional<int> SimDisk::find(const std::string& path) const {
  const auto it = index_.find(path);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

int SimDisk::create(const std::string& path) {
  const auto it = index_.find(path);
  if (it != index_.end()) {
    files_[static_cast<std::size_t>(it->second)].clear();
    return it->second;
  }
  const int id = static_cast<int>(files_.size());
  files_.emplace_back();
  names_.push_back(path);
  index_[path] = id;
  return id;
}

int SimDisk::add_file(const std::string& path, std::vector<std::uint8_t> content) {
  const int id = create(path);
  files_[static_cast<std::size_t>(id)] = std::move(content);
  return id;
}

std::optional<std::int64_t> SimDisk::size(int id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= files_.size()) return std::nullopt;
  return static_cast<std::int64_t>(files_[static_cast<std::size_t>(id)].size());
}

std::optional<std::int64_t> SimDisk::read(int id, std::int64_t offset,
                                          std::uint8_t* dst, std::int64_t len) const {
  if (id < 0 || static_cast<std::size_t>(id) >= files_.size()) return std::nullopt;
  if (offset < 0 || len < 0) return std::nullopt;
  const auto& f = files_[static_cast<std::size_t>(id)];
  if (static_cast<std::size_t>(offset) >= f.size()) return 0;
  const auto n = std::min<std::int64_t>(len, static_cast<std::int64_t>(f.size()) - offset);
  std::memcpy(dst, f.data() + offset, static_cast<std::size_t>(n));
  return n;
}

std::optional<std::int64_t> SimDisk::write(int id, std::int64_t offset,
                                           const std::uint8_t* src, std::int64_t len) {
  if (id < 0 || static_cast<std::size_t>(id) >= files_.size()) return std::nullopt;
  if (offset < 0 || len < 0) return std::nullopt;
  auto& f = files_[static_cast<std::size_t>(id)];
  const auto end = static_cast<std::size_t>(offset + len);
  if (end > f.size()) f.resize(end, 0);
  std::memcpy(f.data() + offset, src, static_cast<std::size_t>(len));
  return len;
}

const std::vector<std::uint8_t>* SimDisk::content(const std::string& path) const {
  const auto id = find(path);
  if (!id) return nullptr;
  return &files_[static_cast<std::size_t>(*id)];
}

}  // namespace gf::os
