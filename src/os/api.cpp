#include "os/api.h"

namespace gf::os {

OsApi::OsApi(Kernel& kernel, std::uint64_t cycle_budget)
    : kernel_(kernel), cycle_budget_(cycle_budget) {}

ApiResult OsApi::call(const std::string& name,
                      const std::vector<std::int64_t>& args) {
  if (hook_) hook_(name);
  const auto addr = kernel_.api_addr(name);
  const auto r = kernel_.machine().call(addr, args, cycle_budget_);
  ++call_count_;
  total_cycles_ += r.cycles;
  ApiResult out;
  out.completed = r.ok();
  out.value = r.ret;
  out.trap = r.trap;
  out.cycles = r.cycles;
  if (metrics_) {
    metrics_->record(name, r.cycles, out.ok(), out.crashed(), out.hung());
  }
  if (post_hook_) post_hook_(name, out);
  return out;
}

ApiResult OsApi::nt_close(std::int64_t h) { return call("NtClose", {h}); }

ApiResult OsApi::nt_create_file(std::uint64_t path_addr) {
  return call("NtCreateFile", {static_cast<std::int64_t>(path_addr)});
}

ApiResult OsApi::nt_open_file(std::uint64_t path_addr) {
  return call("NtOpenFile", {static_cast<std::int64_t>(path_addr)});
}

ApiResult OsApi::nt_read_file(std::int64_t h, std::uint64_t buf, std::int64_t len) {
  return call("NtReadFile", {h, static_cast<std::int64_t>(buf), len});
}

ApiResult OsApi::nt_write_file(std::int64_t h, std::uint64_t buf, std::int64_t len) {
  return call("NtWriteFile", {h, static_cast<std::int64_t>(buf), len});
}

ApiResult OsApi::nt_protect_vm(std::uint64_t addr, std::int64_t size,
                               std::int64_t prot) {
  return call("NtProtectVirtualMemory",
              {static_cast<std::int64_t>(addr), size, prot});
}

ApiResult OsApi::nt_query_vm(std::uint64_t addr, std::uint64_t info) {
  return call("NtQueryVirtualMemory",
              {static_cast<std::int64_t>(addr), static_cast<std::int64_t>(info)});
}

ApiResult OsApi::rtl_alloc(std::int64_t size) {
  return call("RtlAllocateHeap", {size});
}

ApiResult OsApi::rtl_free(std::uint64_t ptr) {
  return call("RtlFreeHeap", {static_cast<std::int64_t>(ptr)});
}

ApiResult OsApi::rtl_enter_cs(std::uint64_t cs) {
  return call("RtlEnterCriticalSection", {static_cast<std::int64_t>(cs)});
}

ApiResult OsApi::rtl_leave_cs(std::uint64_t cs) {
  return call("RtlLeaveCriticalSection", {static_cast<std::int64_t>(cs)});
}

ApiResult OsApi::rtl_init_ansi_string(std::uint64_t dst, std::uint64_t src) {
  return call("RtlInitAnsiString",
              {static_cast<std::int64_t>(dst), static_cast<std::int64_t>(src)});
}

ApiResult OsApi::rtl_init_unicode_string(std::uint64_t dst, std::uint64_t src) {
  return call("RtlInitUnicodeString",
              {static_cast<std::int64_t>(dst), static_cast<std::int64_t>(src)});
}

ApiResult OsApi::rtl_unicode_to_multibyte(std::uint64_t dst, std::int64_t dst_max,
                                          std::uint64_t src,
                                          std::int64_t src_bytes) {
  return call("RtlUnicodeToMultiByteN",
              {static_cast<std::int64_t>(dst), dst_max,
               static_cast<std::int64_t>(src), src_bytes});
}

ApiResult OsApi::rtl_free_unicode_string(std::uint64_t s) {
  return call("RtlFreeUnicodeString", {static_cast<std::int64_t>(s)});
}

ApiResult OsApi::rtl_dos_path_to_nt(std::uint64_t src, std::uint64_t dst) {
  return call("RtlDosPathNameToNtPathName_U",
              {static_cast<std::int64_t>(src), static_cast<std::int64_t>(dst)});
}

ApiResult OsApi::close_handle(std::int64_t h) { return call("CloseHandle", {h}); }

ApiResult OsApi::read_file(std::int64_t h, std::uint64_t buf, std::int64_t len,
                           std::uint64_t out_read) {
  return call("ReadFile", {h, static_cast<std::int64_t>(buf), len,
                           static_cast<std::int64_t>(out_read)});
}

ApiResult OsApi::write_file(std::int64_t h, std::uint64_t buf, std::int64_t len,
                            std::uint64_t out_written) {
  return call("WriteFile", {h, static_cast<std::int64_t>(buf), len,
                            static_cast<std::int64_t>(out_written)});
}

ApiResult OsApi::set_file_pointer(std::int64_t h, std::int64_t pos) {
  return call("SetFilePointer", {h, pos});
}

ApiResult OsApi::get_long_path_name(std::uint64_t src, std::uint64_t dst,
                                    std::int64_t dst_chars) {
  return call("GetLongPathNameW",
              {static_cast<std::int64_t>(src), static_cast<std::int64_t>(dst),
               dst_chars});
}

bool OsApi::write_cstr(std::uint64_t addr, const std::string& s) {
  if (!kernel_.machine().write_bytes(addr, s.data(), s.size())) return false;
  return kernel_.machine().write_u8(addr + s.size(), 0);
}

bool OsApi::write_wstr(std::uint64_t addr, const std::string& s) {
  auto& m = kernel_.machine();
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (!m.write_u8(addr + i * 2, static_cast<std::uint8_t>(s[i]))) return false;
    if (!m.write_u8(addr + i * 2 + 1, 0)) return false;
  }
  return m.write_u8(addr + s.size() * 2, 0) &&
         m.write_u8(addr + s.size() * 2 + 1, 0);
}

bool OsApi::read_bytes(std::uint64_t addr, void* out, std::size_t n) const {
  return kernel_.machine().read_bytes(addr, out, n);
}

bool OsApi::write_bytes(std::uint64_t addr, const void* data, std::size_t n) {
  return kernel_.machine().write_bytes(addr, data, n);
}

std::uint64_t OsApi::read_u64_or(std::uint64_t addr, std::uint64_t fallback) const {
  std::uint64_t v = 0;
  if (!kernel_.machine().read_u64(addr, v)) return fallback;
  return v;
}

}  // namespace gf::os
