// SimDisk — the in-memory block device behind the VOS filesystem calls.
//
// All *policy* (handle validation, positions, buffer copies) lives in the
// MiniC OS code where it can be fault-injected; SimDisk is the raw device
// the kernel intrinsics expose. It deliberately has no notion of handles.
//
// File content is copy-on-write: copying a SimDisk (one copy per campaign
// task, cloned from the shared warm-boot snapshot) shares the content
// buffers, and a writer detaches only the file it mutates. Workload filesets
// are hundreds of KiB that iterations mostly read, so task startup stays
// O(files) instead of O(bytes).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace gf::os {

class SimDisk {
 public:
  /// Returns the file id, or nullopt if the path does not exist.
  std::optional<int> find(const std::string& path) const;

  /// Creates (or truncates) a file; returns its id.
  int create(const std::string& path);

  /// Adds a file with content (population helper for workload filesets).
  int add_file(const std::string& path, std::vector<std::uint8_t> content);

  std::optional<std::int64_t> size(int id) const;

  /// Reads up to `len` bytes at `offset`; returns bytes read (0 at EOF) or
  /// nullopt for a bad id/offset.
  std::optional<std::int64_t> read(int id, std::int64_t offset,
                                   std::uint8_t* dst, std::int64_t len) const;

  /// Writes, extending the file as needed; returns bytes written.
  std::optional<std::int64_t> write(int id, std::int64_t offset,
                                    const std::uint8_t* src, std::int64_t len);

  std::size_t file_count() const noexcept { return files_.size(); }

  /// Content access for test assertions.
  const std::vector<std::uint8_t>* content(const std::string& path) const;

 private:
  /// Returns a uniquely-owned buffer for `id`, cloning first when the
  /// content is still shared with other disks (the copy-on-write fault).
  std::vector<std::uint8_t>& detach(std::size_t id);

  std::vector<std::shared_ptr<std::vector<std::uint8_t>>> files_;
  std::map<std::string, int> index_;
  std::vector<std::string> names_;
};

}  // namespace gf::os
