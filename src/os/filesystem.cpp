#include "os/filesystem.h"

#include <algorithm>
#include <cctype>
#include <vector>

namespace gf::os {

std::string normalize_path(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  auto flush = [&] {
    if (cur.empty() || cur == ".") {
      cur.clear();
      return;
    }
    if (cur == "..") {
      if (!parts.empty()) parts.pop_back();
    } else {
      parts.push_back(cur);
    }
    cur.clear();
  };
  for (char c : path) {
    if (c == '\\') c = '/';
    if (c == '/') {
      flush();
    } else {
      cur += c;
    }
  }
  flush();
  std::string out = "/";
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += '/';
    out += parts[i];
  }
  if (parts.empty()) return "/";
  return out;
}

std::string join_path(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  const bool a_sep = a.back() == '/';
  const bool b_sep = b.front() == '/';
  if (a_sep && b_sep) return a + b.substr(1);
  if (!a_sep && !b_sep) return a + "/" + b;
  return a + b;
}

std::string path_extension(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const auto dot = path.find_last_of('.');
  if (dot == std::string::npos) return {};
  if (slash != std::string::npos && dot < slash) return {};
  std::string ext = path.substr(dot + 1);
  std::transform(ext.begin(), ext.end(), ext.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return ext;
}

bool is_valid_request_path(const std::string& path) {
  if (path.empty() || path.front() != '/') return false;
  return std::none_of(path.begin(), path.end(), [](unsigned char c) {
    return c < 0x20 || c == 0x7f;
  });
}

}  // namespace gf::os
