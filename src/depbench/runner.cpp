#include "depbench/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "snapshot/warmboot.h"
#include "swfit/scanner.h"
#include "util/log.h"
#include "util/rng.h"

namespace gf::depbench {

namespace {

std::vector<std::string> all_api_names() {
  std::vector<std::string> names;
  for (const auto& f : os::api_functions()) names.emplace_back(f.name);
  return names;
}

ControllerConfig cell_config(const std::string& server,
                             const RunnerOptions& opt) {
  ControllerConfig cfg;
  cfg.connections = server == "apex" ? 37 : 34;
  cfg.time_scale = opt.time_scale;
  cfg.fault_stride = opt.stride;
  cfg.trace = opt.trace;
  cfg.trace_probe_per_call = opt.trace_probe_per_call;
  return cfg;
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t cell,
                          std::uint64_t task) noexcept {
  // Two SplitMix64 hops: the first opens a per-cell stream, the second picks
  // the task's value inside it. Both inputs are mixed multiplicatively so
  // (cell=1, task=0) and (cell=0, task=1) land in unrelated streams.
  util::SplitMix64 g(seed ^ (0x9E3779B97F4A7C15ULL * (cell + 1)));
  util::SplitMix64 h(g.next() ^ (0xBF58476D1CE4E5B9ULL * (task + 1)));
  return h.next();
}

CampaignCounters merge_counters(const CampaignCounters& a,
                                const CampaignCounters& b) noexcept {
  CampaignCounters m;
  m.mis = a.mis + b.mis;
  m.kns = a.kns + b.kns;
  m.kcp = a.kcp + b.kcp;
  m.faults_injected = a.faults_injected + b.faults_injected;
  m.self_restarts = a.self_restarts + b.self_restarts;
  return m;
}

spec::WindowMetrics merge_windows(const spec::WindowMetrics& a,
                                  const spec::WindowMetrics& b) noexcept {
  spec::WindowMetrics m;
  m.duration_ms = a.duration_ms + b.duration_ms;
  m.ops = a.ops + b.ops;
  m.errors = a.errors + b.errors;
  m.bytes = a.bytes + b.bytes;
  const auto succ_a = static_cast<double>(a.ops - a.errors);
  const auto succ_b = static_cast<double>(b.ops - b.errors);
  const double succ = succ_a + succ_b;
  m.thr = m.duration_ms > 0 ? succ / (m.duration_ms / 1000.0) : 0;
  m.rtm_ms = succ > 0 ? (a.rtm_ms * succ_a + b.rtm_ms * succ_b) / succ : 0;
  m.er_pct = m.ops > 0
                 ? 100.0 * static_cast<double>(m.errors) /
                       static_cast<double>(m.ops)
                 : 0;
  m.spc = std::min(a.spc, b.spc);
  m.cc_pct = std::min(a.cc_pct, b.cc_pct);
  return m;
}

void CampaignObs::merge_tasks() {
  // The merges are commutative folds, but a fixed (slot) order keeps the
  // join auditable.
  for (const auto& slot : tasks) {
    metrics.merge(slot.obs.metrics);
    api.merge(slot.obs.api);
  }
  api.export_into(metrics);
  // Kernel churn derived from the per-function API counts: heap and handle
  // lifecycles in VOS happen exclusively through these entry points.
  auto c = [&](const char* n) { return metrics.counter(n); };
  metrics.add("kernel.heap.allocs", c("api.RtlAllocateHeap.calls"));
  metrics.add("kernel.heap.frees", c("api.RtlFreeHeap.calls"));
  metrics.add("kernel.handles.opened",
              c("api.NtCreateFile.calls") + c("api.NtOpenFile.calls"));
  metrics.add("kernel.handles.closed",
              c("api.NtClose.calls") + c("api.CloseHandle.calls"));
}

IterationResult merge_shards(const std::vector<IterationResult>& shards) {
  if (shards.empty()) return {};
  IterationResult merged = shards.front();
  for (std::size_t i = 1; i < shards.size(); ++i) {
    merged.metrics = merge_windows(merged.metrics, shards[i].metrics);
    merged.counters = merge_counters(merged.counters, shards[i].counters);
    merged.activations.insert(merged.activations.end(),
                              shards[i].activations.begin(),
                              shards[i].activations.end());
  }
  // Shards cover disjoint fault-index sets, so sorting by absolute index
  // yields the same record sequence for any shard count or interleave.
  trace::sort_records(merged.activations);
  return merged;
}

void CampaignRunner::scan_faultloads() {
  if (!faultloads_.empty()) return;
  for (const auto version : opt_.versions) {
    os::Kernel scan_kernel(version);
    faultloads_.emplace_back(
        version, swfit::Scanner{}.scan(scan_kernel.pristine_image(),
                                       all_api_names()));
  }
}

const swfit::Faultload& CampaignRunner::faultload_for(os::OsVersion v) const {
  for (const auto& [version, fl] : faultloads_) {
    if (version == v) return fl;
  }
  throw std::logic_error("faultload_for: version was not scanned");
}

void CampaignRunner::run_tasks(
    std::size_t count, const std::function<void(std::size_t)>& task) const {
  std::size_t jobs = opt_.jobs > 0
                         ? static_cast<std::size_t>(opt_.jobs)
                         : std::max(1u, std::thread::hardware_concurrency());
  jobs = std::min(jobs, count);
  if (jobs <= 1) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex err_mu;
  std::exception_ptr err;
  auto worker = [&] {
    while (true) {
      const auto i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        task(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(err_mu);
        if (!err) err = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (std::size_t j = 0; j < jobs; ++j) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (err) std::rethrow_exception(err);
}

std::vector<ExperimentCell> CampaignRunner::run_campaign() {
  // Scan-cache traffic attributable to this campaign (process-wide memo, so
  // absolute hit/miss values are not a pure function of the campaign — only
  // the request delta is recorded).
  const auto scan0 = swfit::scan_cache_stats();
  scan_faultloads();
  const auto scan1 = swfit::scan_cache_stats();

  const auto iters = static_cast<std::size_t>(std::max(0, opt_.iterations));
  const auto shards = static_cast<std::size_t>(std::max(1, opt_.shards));
  const std::size_t n_cells = opt_.versions.size() * opt_.servers.size();
  const std::size_t tasks_per_cell = 1 + iters * shards;

  // Observability slots mirror the result slots: one private bundle per
  // (cell, task), merged in slot order after the join.
  obs_.reset();
  if (opt_.obs) {
    obs_ = std::make_unique<CampaignObs>();
    obs_->tasks.resize(n_cells * tasks_per_cell);
  }
  if (opt_.progress != nullptr) {
    std::uint64_t planned = 0;
    const auto stride = static_cast<std::size_t>(std::max(1, opt_.stride));
    for (const auto version : opt_.versions) {
      const auto n = faultload_for(version).faults.size();
      planned += opt_.servers.size() * iters * ((n + stride - 1) / stride);
    }
    opt_.progress->set_total(planned);
  }
  const auto wall0 = std::chrono::steady_clock::now();

  // Warm-boot snapshots: one bring-up per cell (parallelized), shared
  // read-only by every task of that cell. Each task then clones a private
  // SUB from the snapshot in O(memory copy) instead of recompiling the OS
  // image and re-running boot + file-set population + server start.
  std::vector<std::shared_ptr<const snapshot::WarmSnapshot>> warm(n_cells);
  if (opt_.warm_boot) {
    run_tasks(n_cells, [&](std::size_t cell) {
      warm[cell] = snapshot::capture_warm_boot(
          opt_.versions[cell / opt_.servers.size()],
          opt_.servers[cell % opt_.servers.size()]);
    });
  }

  std::vector<ExperimentCell> cells(n_cells);
  // One slot per (cell, iteration, shard): tasks write only their own slot,
  // which is what makes the merge independent of scheduling order.
  std::vector<std::vector<IterationResult>> shard_results(
      n_cells, std::vector<IterationResult>(iters * shards));
  // Per-cell countdown so campaign progress is narrated live (one line per
  // completed cell) even though tasks finish in scheduler order.
  std::vector<std::atomic<std::size_t>> remaining(n_cells);
  for (auto& r : remaining) r.store(tasks_per_cell, std::memory_order_relaxed);
  std::atomic<std::size_t> cells_done{0};

  run_tasks(n_cells * tasks_per_cell, [&](std::size_t idx) {
    const std::size_t cell = idx / tasks_per_cell;
    const std::size_t task = idx % tasks_per_cell;
    const auto version = opt_.versions[cell / opt_.servers.size()];
    const auto& server = opt_.servers[cell % opt_.servers.size()];
    const auto& fl = faultload_for(version);
    auto cfg = cell_config(server, opt_);
    cfg.progress = opt_.progress;
    const auto seed = derive_seed(opt_.seed, cell, task);

    TaskObsSlot* slot = obs_ ? &obs_->tasks[idx] : nullptr;
    if (slot != nullptr) {
      slot->cell = std::string(os::os_version_name(version)) + "/" + server;
      slot->label = task == 0
                        ? "baseline"
                        : "iter" + std::to_string((task - 1) / shards) +
                              ".shard" + std::to_string((task - 1) % shards);
      cfg.obs = &slot->obs;
      slot->obs.wall_start_us =
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - wall0)
              .count();
    }

    auto build = [&](const ControllerConfig& c) {
      return opt_.warm_boot ? std::make_unique<Controller>(warm[cell], c)
                            : std::make_unique<Controller>(version, server, c);
    };
    if (task == 0) {
      auto ctl = build(cfg);
      cells[cell].baseline =
          ctl->run_profile_mode(fl, opt_.baseline_window_ms, seed);
    } else {
      const std::size_t shard = (task - 1) % shards;
      cfg.fault_stride = opt_.stride * static_cast<int>(shards);
      cfg.fault_offset = opt_.stride * static_cast<int>(shard);
      auto ctl = build(cfg);
      shard_results[cell][task - 1] = ctl->run_iteration(fl, seed);
    }
    if (slot != nullptr) {
      slot->obs.wall_end_us = std::chrono::duration<double, std::micro>(
                                  std::chrono::steady_clock::now() - wall0)
                                  .count();
    }
    if (remaining[cell].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      const auto done = cells_done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (opt_.progress != nullptr) {
        opt_.progress->cell_done(
            std::string(os::os_version_name(version)) + "/" + server, done,
            n_cells);
      } else {
        GF_INFO() << "campaign cell done: " << server << " on "
                  << os::os_version_name(version) << " (" << done << "/"
                  << n_cells << " cells)";
      }
    }
  });

  for (std::size_t cell = 0; cell < n_cells; ++cell) {
    cells[cell].os_name =
        os::os_version_name(opt_.versions[cell / opt_.servers.size()]);
    cells[cell].server_name = opt_.servers[cell % opt_.servers.size()];
    for (std::size_t it = 0; it < iters; ++it) {
      const auto first = shard_results[cell].begin() +
                         static_cast<std::ptrdiff_t>(it * shards);
      cells[cell].iterations.push_back(merge_shards(
          std::vector<IterationResult>(first, first + static_cast<std::ptrdiff_t>(shards))));
    }
  }

  if (obs_) {
    // Deterministic join: fold the per-task bundles in slot order, then add
    // the campaign-level tallies no single task can know.
    obs_->merge_tasks();
    obs_->metrics.add("campaign.cells", n_cells);
    obs_->metrics.add("campaign.tasks", n_cells * tasks_per_cell);
    obs_->metrics.add("scan.requests", (scan1.hits + scan1.misses) -
                                           (scan0.hits + scan0.misses));
    for (const auto& [version, fl] : faultloads_) {
      obs_->metrics.add("scan.faults", fl.faults.size());
    }
    obs_->metrics.add("snapshot.captures", opt_.warm_boot ? n_cells : 0);
    obs_->metrics.add(opt_.warm_boot ? "snapshot.warm_tasks"
                                     : "snapshot.cold_tasks",
                      n_cells * tasks_per_cell);
    for (const auto& snap : warm) {
      if (snap) {
        obs_->metrics.gauge("snapshot.bringup_cycles", snap->capture_cycles);
      }
    }
  }
  if (opt_.progress != nullptr) opt_.progress->finish();
  return cells;
}

std::vector<IntrusivenessCell> CampaignRunner::run_intrusiveness() {
  scan_faultloads();

  const std::size_t n_cells = opt_.versions.size() * opt_.servers.size();
  std::vector<IntrusivenessCell> cells(n_cells);

  // Two tasks per cell: 0 = max-performance baseline, 1 = profile mode.
  // Both use the cell's task-0 seed so the degradation comparison is paired
  // (same workload stream), exactly like the sequential Table 4 bench.
  run_tasks(n_cells * 2, [&](std::size_t idx) {
    const std::size_t cell = idx / 2;
    const auto version = opt_.versions[cell / opt_.servers.size()];
    const auto& server = opt_.servers[cell % opt_.servers.size()];
    const auto cfg = cell_config(server, opt_);
    const auto seed = derive_seed(opt_.seed, cell, 0);
    Controller ctl(version, server, cfg);
    if (idx % 2 == 0) {
      cells[cell].max_perf = ctl.run_baseline(opt_.baseline_window_ms, seed);
    } else {
      cells[cell].profile = ctl.run_profile_mode(
          faultload_for(version), opt_.baseline_window_ms, seed);
    }
  });

  for (std::size_t cell = 0; cell < n_cells; ++cell) {
    cells[cell].os_name =
        os::os_version_name(opt_.versions[cell / opt_.servers.size()]);
    cells[cell].server_name = opt_.servers[cell % opt_.servers.size()];
  }
  return cells;
}

}  // namespace gf::depbench
