#include "depbench/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "isa/isa.h"
#include "snapshot/warmboot.h"
#include "store/campaign_codec.h"
#include "swfit/scanner.h"
#include "util/log.h"
#include "util/rng.h"

namespace gf::depbench {

namespace {

std::vector<std::string> all_api_names() {
  std::vector<std::string> names;
  for (const auto& f : os::api_functions()) names.emplace_back(f.name);
  return names;
}

ControllerConfig cell_config(const std::string& server,
                             const RunnerOptions& opt) {
  ControllerConfig cfg;
  cfg.connections = server == "apex" ? 37 : 34;
  cfg.time_scale = opt.time_scale;
  cfg.fault_stride = opt.stride;
  cfg.trace = opt.trace;
  cfg.trace_probe_per_call = opt.trace_probe_per_call;
  cfg.profile_stride = opt.profile ? opt.profile_stride : 0;
  return cfg;
}

void key_instrs(store::KeyBuilder& kb, const std::vector<isa::Instr>& code) {
  std::vector<std::uint8_t> raw(code.size() * isa::kInstrSize);
  for (std::size_t i = 0; i < code.size(); ++i) {
    isa::encode(code[i], raw.data() + i * isa::kInstrSize);
  }
  kb.bytes(raw.data(), raw.size());
}

/// Content digest of ONE fault: everything an injected run can observe of
/// it. Keyed per fault (not per faultload) so editing one fault type's
/// mutations invalidates only that type's cached runs.
std::uint64_t fault_digest(const swfit::FaultLocation& f) {
  store::KeyBuilder kb;
  kb.u64(static_cast<std::uint64_t>(f.type)).str(f.function).u64(f.addr);
  key_instrs(kb, f.original);
  key_instrs(kb, f.mutated);
  const auto k = kb.finish();
  return k.hi ^ k.lo;
}

/// Digest of what profile mode sees of the schedule: the *original* windows
/// only (profile mode verifies but never patches), over the sampled
/// positions. Mutation edits therefore keep the baseline cached.
std::uint64_t profile_digest(const swfit::Faultload& fl, std::size_t stride) {
  store::KeyBuilder kb;
  for (std::size_t i = 0; i < fl.faults.size(); i += stride) {
    const auto& f = fl.faults[i];
    kb.u64(static_cast<std::uint64_t>(f.type)).str(f.function).u64(f.addr);
    key_instrs(kb, f.original);
  }
  const auto k = kb.finish();
  return k.hi ^ k.lo;
}

/// Key prefix shared by every run of one cell: schema, target build,
/// cell identity, the full controller/client configuration, seed and
/// schedule shape. Everything a run's result depends on except
/// (kind, iteration, position, fault content).
store::KeyBuilder cell_key_base(const RunnerOptions& opt,
                                const ControllerConfig& cfg,
                                const swfit::Faultload& fl,
                                os::OsVersion version,
                                const std::string& server, std::size_t stride,
                                std::size_t positions) {
  store::KeyBuilder kb;
  kb.u64(store::kResultSchema);
  kb.u64(fl.digest).str(fl.target);
  kb.str(os::os_version_name(version)).str(server);
  kb.f64(cfg.fault_exposure_ms).f64(cfg.detect_ms).f64(cfg.admin_restart_ms);
  kb.u64(static_cast<std::uint64_t>(cfg.connections)).f64(cfg.time_scale);
  kb.u64(static_cast<std::uint64_t>(cfg.faults_per_slot));
  kb.u64(static_cast<std::uint64_t>(cfg.self_restart_budget));
  // trace and obs shape what a run records (activations, journal, registry);
  // a record cached without them must read as a miss, never as a wrong hit.
  kb.u64(cfg.trace ? 1 : 0).u64(cfg.trace_probe_per_call ? 1 : 0);
  kb.u64(opt.obs ? 1 : 0);
  // The sampling stride shapes the recorded profile (0 = off), so records
  // cached at one stride never serve a campaign run at another.
  kb.u64(cfg.profile_stride);
  const auto& cl = cfg.client;
  kb.u64(static_cast<std::uint64_t>(cl.connections));
  kb.f64(cl.conn_bandwidth_kbps).f64(cl.conforming_kbps);
  kb.f64(cl.max_error_pct).f64(cl.base_latency_ms).f64(cl.cycles_per_ms);
  kb.f64(cl.op_timeout_ms).f64(cl.error_latency_ms);
  kb.u64(cl.validate_content ? 1 : 0).f64(cl.spc_batch_ms);
  kb.u64(opt.seed).u64(stride).u64(positions);
  return kb;
}

/// Run kinds folded after the cell prefix (baseline vs fault run).
constexpr std::uint64_t kKindBaseline = 1;
constexpr std::uint64_t kKindFault = 2;

}  // namespace

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t cell,
                          std::uint64_t task) noexcept {
  // Two SplitMix64 hops: the first opens a per-cell stream, the second picks
  // the task's value inside it. Both inputs are mixed multiplicatively so
  // (cell=1, task=0) and (cell=0, task=1) land in unrelated streams.
  util::SplitMix64 g(seed ^ (0x9E3779B97F4A7C15ULL * (cell + 1)));
  util::SplitMix64 h(g.next() ^ (0xBF58476D1CE4E5B9ULL * (task + 1)));
  return h.next();
}

CampaignCounters merge_counters(const CampaignCounters& a,
                                const CampaignCounters& b) noexcept {
  CampaignCounters m;
  m.mis = a.mis + b.mis;
  m.kns = a.kns + b.kns;
  m.kcp = a.kcp + b.kcp;
  m.faults_injected = a.faults_injected + b.faults_injected;
  m.self_restarts = a.self_restarts + b.self_restarts;
  return m;
}

spec::WindowMetrics merge_windows(const spec::WindowMetrics& a,
                                  const spec::WindowMetrics& b) noexcept {
  spec::WindowMetrics m;
  m.duration_ms = a.duration_ms + b.duration_ms;
  m.ops = a.ops + b.ops;
  m.errors = a.errors + b.errors;
  m.bytes = a.bytes + b.bytes;
  const auto succ_a = static_cast<double>(a.ops - a.errors);
  const auto succ_b = static_cast<double>(b.ops - b.errors);
  const double succ = succ_a + succ_b;
  m.thr = m.duration_ms > 0 ? succ / (m.duration_ms / 1000.0) : 0;
  m.rtm_ms = succ > 0 ? (a.rtm_ms * succ_a + b.rtm_ms * succ_b) / succ : 0;
  m.er_pct = m.ops > 0
                 ? 100.0 * static_cast<double>(m.errors) /
                       static_cast<double>(m.ops)
                 : 0;
  m.spc = std::min(a.spc, b.spc);
  m.cc_pct = std::min(a.cc_pct, b.cc_pct);
  return m;
}

void CampaignObs::merge_tasks() {
  // The merges are commutative folds, but a fixed (slot) order keeps the
  // join auditable.
  for (const auto& slot : tasks) {
    metrics.merge(slot.obs.metrics);
    api.merge(slot.obs.api);
  }
  api.export_into(metrics);
  // Kernel churn derived from the per-function API counts: heap and handle
  // lifecycles in VOS happen exclusively through these entry points.
  auto c = [&](const char* n) { return metrics.counter(n); };
  metrics.add("kernel.heap.allocs", c("api.RtlAllocateHeap.calls"));
  metrics.add("kernel.heap.frees", c("api.RtlFreeHeap.calls"));
  metrics.add("kernel.handles.opened",
              c("api.NtCreateFile.calls") + c("api.NtOpenFile.calls"));
  metrics.add("kernel.handles.closed",
              c("api.NtClose.calls") + c("api.CloseHandle.calls"));
}

IterationResult merge_shards(const std::vector<IterationResult>& shards) {
  if (shards.empty()) return {};
  IterationResult merged = shards.front();
  for (std::size_t i = 1; i < shards.size(); ++i) {
    merged.metrics = merge_windows(merged.metrics, shards[i].metrics);
    merged.counters = merge_counters(merged.counters, shards[i].counters);
    merged.activations.insert(merged.activations.end(),
                              shards[i].activations.begin(),
                              shards[i].activations.end());
  }
  // Shards cover disjoint fault-index sets, so sorting by absolute index
  // yields the same record sequence for any shard count or interleave.
  trace::sort_records(merged.activations);
  return merged;
}

IterationResult merge_fault_runs(const std::vector<IterationResult>& runs) {
  IterationResult m;
  if (runs.empty()) return m;
  double succ_total = 0, rtm_weighted = 0, spc_sum = 0, cc_sum = 0;
  for (const auto& r : runs) {
    m.metrics.duration_ms += r.metrics.duration_ms;
    m.metrics.ops += r.metrics.ops;
    m.metrics.errors += r.metrics.errors;
    m.metrics.bytes += r.metrics.bytes;
    const auto succ = static_cast<double>(r.metrics.ops - r.metrics.errors);
    succ_total += succ;
    rtm_weighted += r.metrics.rtm_ms * succ;
    spc_sum += r.metrics.spc;
    cc_sum += r.metrics.cc_pct;
    m.counters = merge_counters(m.counters, r.counters);
    m.activations.insert(m.activations.end(), r.activations.begin(),
                         r.activations.end());
  }
  const auto n = static_cast<double>(runs.size());
  m.metrics.thr = m.metrics.duration_ms > 0
                      ? succ_total / (m.metrics.duration_ms / 1000.0)
                      : 0;
  m.metrics.rtm_ms = succ_total > 0 ? rtm_weighted / succ_total : 0;
  m.metrics.er_pct = m.metrics.ops > 0
                         ? 100.0 * static_cast<double>(m.metrics.errors) /
                               static_cast<double>(m.metrics.ops)
                         : 0;
  m.metrics.spc = static_cast<int>(spc_sum / n + 0.5);
  m.metrics.cc_pct = cc_sum / n;
  trace::sort_records(m.activations);
  return m;
}

void CampaignRunner::scan_faultloads() {
  if (!faultloads_.empty()) return;
  for (const auto version : opt_.versions) {
    if (opt_.faultload != nullptr) {
      faultloads_.emplace_back(version, *opt_.faultload);
      continue;
    }
    os::Kernel scan_kernel(version);
    faultloads_.emplace_back(
        version, swfit::Scanner{}.scan(scan_kernel.pristine_image(),
                                       all_api_names()));
  }
}

const swfit::Faultload& CampaignRunner::faultload_for(os::OsVersion v) const {
  for (const auto& [version, fl] : faultloads_) {
    if (version == v) return fl;
  }
  throw std::logic_error("faultload_for: version was not scanned");
}

void CampaignRunner::run_tasks(
    std::size_t count, const std::function<void(std::size_t)>& task) const {
  std::size_t jobs = opt_.jobs > 0
                         ? static_cast<std::size_t>(opt_.jobs)
                         : std::max(1u, std::thread::hardware_concurrency());
  jobs = std::min(jobs, count);
  if (jobs <= 1) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex err_mu;
  std::exception_ptr err;
  auto worker = [&] {
    while (true) {
      const auto i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        task(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(err_mu);
        if (!err) err = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (std::size_t j = 0; j < jobs; ++j) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (err) std::rethrow_exception(err);
}

std::vector<ExperimentCell> CampaignRunner::run_campaign() {
  // Scan-cache traffic attributable to this campaign (process-wide memo, so
  // absolute hit/miss values are not a pure function of the campaign — only
  // the request delta is recorded).
  const auto scan0 = swfit::scan_cache_stats();
  scan_faultloads();
  const auto scan1 = swfit::scan_cache_stats();

  const auto iters = static_cast<std::size_t>(std::max(0, opt_.iterations));
  const auto stride = static_cast<std::size_t>(std::max(1, opt_.stride));
  const std::size_t n_cells = opt_.versions.size() * opt_.servers.size();
  const std::size_t jobs =
      opt_.jobs > 0 ? static_cast<std::size_t>(opt_.jobs)
                    : std::max(1u, std::thread::hardware_concurrency());

  // Oracle-sensitivity hook for the differential fuzzer (src/check): with
  // GF_CHECK_PERTURB set, parallel campaigns (jobs > 1) deliberately skew one
  // merge input — an extra self-restart per fault run. The jobs=1 reference
  // stays clean, so the matrix fuzzer's byte-identity oracles MUST flag every
  // perturbed run; CI uses this to prove the oracles can actually detect a
  // scheduling-shape-dependent bug rather than vacuously agreeing.
  const char* perturb_env = std::getenv("GF_CHECK_PERTURB");
  const bool perturb = perturb_env != nullptr && *perturb_env != '\0' && jobs > 1;

  // --chunk wins; --shards > 1 is the deprecated equal-chunks alias, mapped
  // onto the same decomposition (one code path, identical results).
  int chunk_override = 0;
  if (opt_.chunk > 0) {
    chunk_override = opt_.chunk;
  } else if (opt_.shards > 1) {
    chunk_override = -opt_.shards;
  }

  // Baseline cost in the cost model's unit (one healthy exposure window).
  // run_profile_mode takes its window length unscaled while exposures are
  // time_scale'd, hence the scale in the denominator.
  const double exposure_ms =
      ControllerConfig{}.fault_exposure_ms * std::max(1e-9, opt_.time_scale);
  const double baseline_cost =
      std::max(0.0, opt_.baseline_window_ms) / exposure_ms;

  // Per-cell schedule plan: every iteration is decomposed into single-fault
  // positions (position p = faultload index p*stride), grouped into
  // cost-balanced chunks. Cells of different OS versions have different
  // faultload sizes, so slot layout is a prefix sum, not a uniform grid.
  struct CellPlan {
    os::OsVersion version{};
    std::string server;
    const swfit::Faultload* fl = nullptr;
    std::size_t positions = 0;  ///< faults per iteration (ceil(n/stride))
    std::size_t slot_base = 0;  ///< first obs/result slot of this cell
    std::vector<double> pos_cost;
    // Store keying (meaningful only when a store is wired).
    store::KeyBuilder key_base;        ///< shared key prefix of this cell
    std::vector<std::uint64_t> fdig;   ///< per-position fault content digest
    std::uint64_t profile_dig = 0;     ///< baseline schedule digest
    bool baseline_cached = false;
    /// Positions still to execute, per iteration; without a store (or with
    /// store_read off) every position is a miss — the identity schedule.
    std::vector<std::vector<std::size_t>> miss;
    std::vector<std::vector<Chunk>> iter_chunks;  ///< chunks over miss[it]
  };
  const FaultCostModel cost_model{opt_.cost_profile, opt_.cost_traces};
  std::vector<CellPlan> plan(n_cells);
  std::size_t total_slots = 0;
  for (std::size_t cell = 0; cell < n_cells; ++cell) {
    auto& cp = plan[cell];
    cp.version = opt_.versions[cell / opt_.servers.size()];
    cp.server = opt_.servers[cell % opt_.servers.size()];
    cp.fl = &faultload_for(cp.version);
    const auto n = cp.fl->faults.size();
    cp.positions = n == 0 ? 0 : (n + stride - 1) / stride;
    const auto fault_costs = estimate_fault_costs(*cp.fl, cost_model);
    cp.pos_cost.resize(cp.positions);
    for (std::size_t p = 0; p < cp.positions; ++p) {
      cp.pos_cost[p] = fault_costs[p * stride];
    }
    cp.slot_base = total_slots;
    total_slots += 1 + iters * cp.positions;
    if (opt_.store != nullptr) {
      cp.key_base = cell_key_base(opt_, cell_config(cp.server, opt_), *cp.fl,
                                  cp.version, cp.server, stride, cp.positions);
      cp.fdig.resize(cp.positions);
      for (std::size_t p = 0; p < cp.positions; ++p) {
        cp.fdig[p] = fault_digest(cp.fl->faults[p * stride]);
      }
      cp.profile_dig = profile_digest(*cp.fl, stride);
    }
  }
  auto fault_key = [&](const CellPlan& cp, std::size_t it, std::size_t pos) {
    auto kb = cp.key_base;
    kb.u64(kKindFault).u64(it).u64(pos).u64(cp.fdig[pos]);
    return kb.finish();
  };
  auto baseline_key = [&](const CellPlan& cp) {
    auto kb = cp.key_base;
    kb.u64(kKindBaseline).f64(opt_.baseline_window_ms).u64(cp.profile_dig);
    return kb.finish();
  };

  // Observability slots mirror the result slots: one private bundle per
  // fault run (plus one per baseline), merged in slot order after the join.
  obs_.reset();
  if (opt_.obs) {
    obs_ = std::make_unique<CampaignObs>();
    obs_->tasks.resize(total_slots);
  }
  std::vector<ExperimentCell> cells(n_cells);
  // One result slot per (cell, iteration, position): runs write only their
  // own slot, which is what makes the merge independent of scheduling.
  std::vector<std::vector<IterationResult>> fault_results(n_cells);
  for (std::size_t cell = 0; cell < n_cells; ++cell) {
    fault_results[cell].resize(iters * plan[cell].positions);
  }

  auto cell_name = [&](std::size_t cell) {
    return std::string(os::os_version_name(plan[cell].version)) + "/" +
           plan[cell].server;
  };
  auto restore_slot = [&](std::size_t slot_index, std::size_t cell,
                          std::string label, store::RunRecord&& rec) {
    if (!obs_) return;
    auto& slot = obs_->tasks[slot_index];
    slot.cell = cell_name(cell);
    slot.label = std::move(label);
    slot.obs = std::move(rec.obs);
  };

  // Cache resolution: fold every stored run into the slot a live run would
  // have filled, and schedule only the misses. Records cached under a
  // different obs/trace shape carry different keys, so a hit is always
  // shape-compatible; the decode guard below is pure defense.
  store::CampaignStore* st = opt_.store;
  const store::StoreStats stats0 = st != nullptr ? st->stats()
                                                 : store::StoreStats{};
  std::uint64_t cached_runs = 0;
  std::vector<std::uint8_t> payload;
  for (std::size_t cell = 0; cell < n_cells; ++cell) {
    auto& cp = plan[cell];
    cp.miss.assign(iters, {});
    const bool reading = st != nullptr && opt_.store_read;
    if (reading && st->get(baseline_key(cp), payload)) {
      try {
        auto rec = store::decode_run_record(payload);
        if (!opt_.obs || rec.has_obs) {
          cells[cell].baseline = rec.result.metrics;
          restore_slot(cp.slot_base, cell, "baseline", std::move(rec));
          cp.baseline_cached = true;
          ++cached_runs;
        }
      } catch (const store::WireError&) {
        cp.baseline_cached = false;
      }
    }
    for (std::size_t it = 0; it < iters; ++it) {
      for (std::size_t pos = 0; pos < cp.positions; ++pos) {
        bool hit = false;
        if (reading && st->get(fault_key(cp, it, pos), payload)) {
          try {
            auto rec = store::decode_run_record(payload);
            if (!opt_.obs || rec.has_obs) {
              const std::size_t idx = it * cp.positions + pos;
              fault_results[cell][idx] = std::move(rec.result);
              restore_slot(cp.slot_base + 1 + idx, cell,
                           "iter" + std::to_string(it) + ".f" +
                               std::to_string(pos * stride),
                           std::move(rec));
              hit = true;
              ++cached_runs;
            }
          } catch (const store::WireError&) {
            hit = false;
          }
        }
        if (!hit) cp.miss[it].push_back(pos);
      }
    }
    // Chunks are planned over the miss list only: cached positions never
    // occupy scheduler slots, so their cost is subtracted before the first
    // progress line, not amortized into the measured rate.
    cp.iter_chunks.resize(iters);
    for (std::size_t it = 0; it < iters; ++it) {
      std::vector<double> miss_cost(cp.miss[it].size());
      for (std::size_t k = 0; k < cp.miss[it].size(); ++k) {
        miss_cost[k] = cp.pos_cost[cp.miss[it][k]];
      }
      cp.iter_chunks[it] = plan_chunks(miss_cost, jobs, chunk_override);
    }
  }

  double total_cost = 0;
  std::uint64_t planned_faults = 0;
  for (const auto& cp : plan) {
    if (!cp.baseline_cached) total_cost += baseline_cost;
    for (std::size_t it = 0; it < iters; ++it) {
      planned_faults += cp.miss[it].size();
      for (const auto pos : cp.miss[it]) total_cost += cp.pos_cost[pos];
    }
  }
  if (opt_.progress != nullptr) {
    opt_.progress->set_total(planned_faults);
    opt_.progress->set_total_cost(total_cost);
    opt_.progress->set_cached(cached_runs);
  }
  if (st != nullptr && cached_runs > 0) {
    GF_INFO() << "campaign store: " << cached_runs
              << " cached runs folded, " << planned_faults
              << " fault runs to execute";
  }
  const auto wall0 = std::chrono::steady_clock::now();

  // Warm-boot snapshots: one bring-up per cell (parallelized), shared
  // read-only by every fault run of that cell. Each run then clones a
  // private SUB from the snapshot in O(memory copy) instead of recompiling
  // the OS image and re-running boot + file-set population + server start.
  std::vector<std::shared_ptr<const snapshot::WarmSnapshot>> warm(n_cells);
  if (opt_.warm_boot) {
    run_tasks(n_cells, [&](std::size_t cell) {
      warm[cell] =
          snapshot::capture_warm_boot(plan[cell].version, plan[cell].server);
    });
  }

  // Per-cell countdown over *work units* so campaign progress is narrated
  // live (one line per completed cell) even under steal interleaving.
  std::vector<std::atomic<std::size_t>> remaining(n_cells);
  for (std::size_t cell = 0; cell < n_cells; ++cell) {
    std::size_t units_of_cell = plan[cell].baseline_cached ? 0 : 1;
    for (std::size_t it = 0; it < iters; ++it) {
      units_of_cell += plan[cell].iter_chunks[it].size();
    }
    remaining[cell].store(units_of_cell, std::memory_order_relaxed);
  }
  std::atomic<std::size_t> cells_done{0};

  auto wall_us = [&] {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - wall0)
        .count();
  };
  auto build = [&](std::size_t cell, const ControllerConfig& c) {
    auto ctl = opt_.warm_boot
                   ? std::make_unique<Controller>(warm[cell], c)
                   : std::make_unique<Controller>(plan[cell].version,
                                                  plan[cell].server, c);
    // A/B hook: fusion is an execution strategy, not a semantic knob, so it
    // is applied to the built machine instead of traveling through
    // ControllerConfig (and store keys). Default-on costs nothing here.
    if (!opt_.fusion) ctl->kernel().machine().set_fusion(false);
    return ctl;
  };
  // The per-fault mini-run: a fresh controller, exactly one fault injected
  // (offset = its absolute index, stride spans the whole faultload), seeded
  // by the task id 1 + iter*positions + pos. Nothing here depends on which
  // chunk or worker the run rides in.
  // Post-run commit: everything the cache-resolution pass needs to fold the
  // run back without executing it. The TaskObs copy happens at the run
  // boundary, never on the VM hot path.
  auto commit_run = [&](const store::ResultKey& key, std::size_t cell,
                        const std::string& label,
                        const IterationResult& result,
                        const TaskObsSlot* slot) {
    if (st == nullptr) return;
    store::RunRecord rec;
    rec.cell = cell_name(cell);
    rec.label = label;
    rec.result = result;
    rec.has_obs = slot != nullptr;
    if (slot != nullptr) rec.obs = slot->obs;
    st->put(key, store::encode_run_record(rec));
  };
  auto run_fault = [&](std::size_t cell, std::size_t it, std::size_t pos) {
    const auto& cp = plan[cell];
    const std::size_t task = 1 + it * cp.positions + pos;
    const std::size_t fault_index = pos * stride;
    const auto label =
        "iter" + std::to_string(it) + ".f" + std::to_string(fault_index);
    auto cfg = cell_config(cp.server, opt_);
    cfg.progress = opt_.progress;
    cfg.fault_offset = static_cast<int>(fault_index);
    cfg.fault_stride =
        static_cast<int>(std::max<std::size_t>(cp.fl->faults.size(), 1));
    const auto seed = derive_seed(opt_.seed, cell, task);
    TaskObsSlot* slot = obs_ ? &obs_->tasks[cp.slot_base + task] : nullptr;
    if (slot != nullptr) {
      slot->cell = cell_name(cell);
      slot->label = label;
      cfg.obs = &slot->obs;
      slot->obs.wall_start_us = wall_us();
    }
    auto ctl = build(cell, cfg);
    auto& result = fault_results[cell][it * cp.positions + pos];
    result = ctl->run_iteration(*cp.fl, seed);
    if (perturb) result.counters.self_restarts += 1;
    if (slot != nullptr) slot->obs.wall_end_us = wall_us();
    if (st != nullptr) commit_run(fault_key(cp, it, pos), cell, label, result, slot);
  };
  auto run_baseline = [&](std::size_t cell) {
    const auto& cp = plan[cell];
    auto cfg = cell_config(cp.server, opt_);
    cfg.progress = opt_.progress;
    const auto seed = derive_seed(opt_.seed, cell, 0);
    TaskObsSlot* slot = obs_ ? &obs_->tasks[cp.slot_base] : nullptr;
    if (slot != nullptr) {
      slot->cell = cell_name(cell);
      slot->label = "baseline";
      cfg.obs = &slot->obs;
      slot->obs.wall_start_us = wall_us();
    }
    auto ctl = build(cell, cfg);
    cells[cell].baseline =
        ctl->run_profile_mode(*cp.fl, opt_.baseline_window_ms, seed);
    if (slot != nullptr) slot->obs.wall_end_us = wall_us();
    if (st != nullptr) {
      IterationResult rec;
      rec.metrics = cells[cell].baseline;
      commit_run(baseline_key(cp), cell, "baseline", rec, slot);
    }
  };
  auto cell_complete = [&](std::size_t cell) {
    const auto done = cells_done.fetch_add(1, std::memory_order_relaxed) + 1;
    const auto name = cell_name(cell);
    if (opt_.progress != nullptr) {
      opt_.progress->cell_done(name, done, n_cells);
    } else {
      GF_INFO() << "campaign cell done: " << name << " (" << done << "/"
                << n_cells << " cells)";
    }
  };
  auto unit_done = [&](std::size_t cell, double cost) {
    if (opt_.progress != nullptr) opt_.progress->add_cost(cost);
    if (remaining[cell].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      cell_complete(cell);
    }
  };
  // Cells fully satisfied from the store never reach the scheduler; narrate
  // them here so the cell countdown stays complete on resume.
  for (std::size_t cell = 0; cell < n_cells; ++cell) {
    if (remaining[cell].load(std::memory_order_relaxed) == 0) {
      cell_complete(cell);
    }
  }

  // Work units, in deterministic construction order (cell-major, baseline
  // first, then iteration-major chunks over the miss lists). The scheduler
  // is free to run them in any order on any worker — units only write their
  // own slots.
  std::vector<WorkUnit> units;
  for (std::size_t cell = 0; cell < n_cells; ++cell) {
    if (!plan[cell].baseline_cached) {
      units.push_back({[&unit_done, &run_baseline, cell, baseline_cost] {
                         run_baseline(cell);
                         unit_done(cell, baseline_cost);
                       },
                       baseline_cost});
    }
    for (std::size_t it = 0; it < iters; ++it) {
      for (const auto& c : plan[cell].iter_chunks[it]) {
        units.push_back({[&unit_done, &run_fault, &plan, cell, it, c] {
                           for (std::size_t k = 0; k < c.count; ++k) {
                             run_fault(cell, it,
                                       plan[cell].miss[it][c.first + k]);
                           }
                           unit_done(cell, c.cost);
                         },
                         c.cost});
      }
    }
  }

  SchedOptions sopt;
  sopt.jobs = jobs;
  sopt.steal = opt_.steal;
  sched_ = std::make_unique<SchedStats>(run_units(std::move(units), sopt));
  GF_INFO() << "campaign schedule: " << sched_->total_units << " units on "
            << sched_->workers.size() << " workers, utilization "
            << sched_->utilization() << ", " << sched_->steals()
            << " steals (" << sched_->stolen() << " units)";

  for (std::size_t cell = 0; cell < n_cells; ++cell) {
    const auto& cp = plan[cell];
    cells[cell].os_name = os::os_version_name(cp.version);
    cells[cell].server_name = cp.server;
    for (std::size_t it = 0; it < iters; ++it) {
      const auto first = fault_results[cell].begin() +
                         static_cast<std::ptrdiff_t>(it * cp.positions);
      cells[cell].iterations.push_back(merge_fault_runs(
          std::vector<IterationResult>(
              first, first + static_cast<std::ptrdiff_t>(cp.positions))));
    }
  }

  if (obs_) {
    // Deterministic join: fold the per-run bundles in slot order, then add
    // the campaign-level tallies no single run can know.
    obs_->merge_tasks();
    obs_->metrics.add("campaign.cells", n_cells);
    obs_->metrics.add("campaign.tasks", total_slots);
    obs_->metrics.add("scan.requests", (scan1.hits + scan1.misses) -
                                           (scan0.hits + scan0.misses));
    for (const auto& [version, fl] : faultloads_) {
      obs_->metrics.add("scan.faults", fl.faults.size());
    }
    obs_->metrics.add("snapshot.captures", opt_.warm_boot ? n_cells : 0);
    obs_->metrics.add(opt_.warm_boot ? "snapshot.warm_tasks"
                                     : "snapshot.cold_tasks",
                      total_slots);
    for (const auto& snap : warm) {
      if (snap) {
        obs_->metrics.gauge("snapshot.bringup_cycles", snap->capture_cycles);
      }
    }
  }
  store_stats_.reset();
  if (st != nullptr) {
    store_stats_ = std::make_unique<store::StoreStats>(
        st->stats().delta(stats0));
    GF_INFO() << "campaign store: " << store_stats_->hits << " hits, "
              << store_stats_->misses << " misses, " << store_stats_->puts
              << " puts; " << store_stats_->records << " live records ("
              << store_stats_->bytes << " payload bytes)";
  }
  if (opt_.progress != nullptr) opt_.progress->finish();
  return cells;
}

std::vector<IntrusivenessCell> CampaignRunner::run_intrusiveness() {
  scan_faultloads();

  const std::size_t n_cells = opt_.versions.size() * opt_.servers.size();
  std::vector<IntrusivenessCell> cells(n_cells);

  // Two tasks per cell: 0 = max-performance baseline, 1 = profile mode.
  // Both use the cell's task-0 seed so the degradation comparison is paired
  // (same workload stream), exactly like the sequential Table 4 bench.
  run_tasks(n_cells * 2, [&](std::size_t idx) {
    const std::size_t cell = idx / 2;
    const auto version = opt_.versions[cell / opt_.servers.size()];
    const auto& server = opt_.servers[cell % opt_.servers.size()];
    const auto cfg = cell_config(server, opt_);
    const auto seed = derive_seed(opt_.seed, cell, 0);
    Controller ctl(version, server, cfg);
    if (!opt_.fusion) ctl.kernel().machine().set_fusion(false);
    if (idx % 2 == 0) {
      cells[cell].max_perf = ctl.run_baseline(opt_.baseline_window_ms, seed);
    } else {
      cells[cell].profile = ctl.run_profile_mode(
          faultload_for(version), opt_.baseline_window_ms, seed);
    }
  });

  for (std::size_t cell = 0; cell < n_cells; ++cell) {
    cells[cell].os_name =
        os::os_version_name(opt_.versions[cell / opt_.servers.size()]);
    cells[cell].server_name = opt_.servers[cell % opt_.servers.size()];
  }
  return cells;
}

}  // namespace gf::depbench
