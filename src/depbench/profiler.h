// Profiling phase (paper §2.4, §3.3): discovers which OS API functions the
// benchmark-target category actually uses, so the faultload can be
// restricted to code with a high activation rate.
//
// The SUB is exercised with the real workload while the OsApi call hook
// counts invocations per function. Profiling several BTs of the same
// category and intersecting the results (dropping negligible functions)
// yields the Table 2 function set.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "os/sources.h"
#include "spec/client.h"

namespace gf::depbench {

/// Per-function share of one server's API calls.
struct ProfileColumn {
  std::string server;
  std::map<std::string, double> pct;  ///< function -> % of total calls
  std::uint64_t total_calls = 0;
};

/// The cross-server profile (Table 2).
struct ApiProfile {
  std::vector<ProfileColumn> columns;
  /// Functions used by every profiled server with average share >=
  /// `min_avg_pct` — the fault injection target set.
  std::vector<std::string> relevant_functions(double min_avg_pct = 0.05) const;
  /// Average share of one function across columns.
  double average_pct(const std::string& fn) const;
  /// Sum of average shares over the relevant set ("total call coverage").
  double total_coverage(double min_avg_pct = 0.05) const;
};

struct ProfilerConfig {
  double window_ms = 60000;  ///< profiling run length per server (sim time)
  int connections = 20;      ///< light load is enough to profile
  std::uint64_t seed = 2004;
};

class Profiler {
 public:
  explicit Profiler(ProfilerConfig cfg = {}) : cfg_(cfg) {}

  /// Profiles the given servers (by factory name) on a fresh kernel of
  /// `version` each. Returns one column per server that started.
  ApiProfile profile(os::OsVersion version,
                     const std::vector<std::string>& server_names) const;

 private:
  ProfilerConfig cfg_;
};

}  // namespace gf::depbench
