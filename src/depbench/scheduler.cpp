#include "depbench/scheduler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <ctime>
#include <deque>
#include <exception>
#include <map>
#include <mutex>
#include <numeric>
#include <thread>

#include "depbench/tuner.h"
#include "obs/json.h"

namespace gf::depbench {

namespace {

using Clock = std::chrono::steady_clock;

double us_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

/// Calling thread's consumed CPU time in microseconds (0 where unsupported).
double thread_cpu_us() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e6 +
           static_cast<double>(ts.tv_nsec) * 1e-3;
  }
#endif
  return 0;
}

std::int64_t millicost(double cost) {
  return static_cast<std::int64_t>(cost * 1000.0 + 0.5);
}

/// One worker's deque. Owner pops from the front (largest units first under
/// LPT seeding), thieves take the back half. `rem` mirrors the queued
/// estimated cost; it is read lock-free as a victim-selection hint and only
/// mutated under `mu`, so it can overstate but never dangles.
struct WorkerDeque {
  std::deque<std::size_t> q;
  std::mutex mu;
  std::atomic<std::int64_t> rem{0};
};

}  // namespace

double SchedStats::utilization() const noexcept {
  if (workers.empty() || wall_us <= 0) return 0;
  double busy = 0;
  for (const auto& w : workers) busy += w.busy_us;
  return busy / (wall_us * static_cast<double>(workers.size()));
}

double SchedStats::imbalance() const noexcept {
  if (workers.empty()) return 1.0;
  double busy = 0, worst = 0;
  for (const auto& w : workers) {
    busy += w.busy_us;
    worst = std::max(worst, w.busy_us);
  }
  const double mean = busy / static_cast<double>(workers.size());
  return mean > 0 ? worst / mean : 1.0;
}

double SchedStats::makespan_cpu_us() const noexcept {
  double worst = 0;
  for (const auto& w : workers) worst = std::max(worst, w.cpu_us);
  return worst;
}

std::uint64_t SchedStats::steals() const noexcept {
  std::uint64_t n = 0;
  for (const auto& w : workers) n += w.steal_batches;
  return n;
}

std::uint64_t SchedStats::stolen() const noexcept {
  std::uint64_t n = 0;
  for (const auto& w : workers) n += w.stolen_units;
  return n;
}

std::string SchedStats::to_json() const {
  using obs::json::number;
  std::string out = "{\n  \"schema\": \"genfault-sched/1\",\n";
  out += "  \"jobs\": " + std::to_string(workers.size()) + ",\n";
  out += std::string("  \"steal\": ") + (steal ? "true" : "false") + ",\n";
  out += "  \"units\": " + std::to_string(total_units) + ",\n";
  out += "  \"wall_us\": " + number(wall_us) + ",\n";
  out += "  \"utilization\": " + number(utilization()) + ",\n";
  out += "  \"imbalance\": " + number(imbalance()) + ",\n";
  out += "  \"cpu_makespan_us\": " + number(makespan_cpu_us()) + ",\n";
  out += "  \"steal_batches\": " + std::to_string(steals()) + ",\n";
  out += "  \"stolen_units\": " + std::to_string(stolen()) + ",\n";
  out += "  \"workers\": [";
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const auto& w = workers[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"units\": " + std::to_string(w.units) +
           ", \"stolen_units\": " + std::to_string(w.stolen_units) +
           ", \"steal_batches\": " + std::to_string(w.steal_batches) +
           ", \"steal_attempts\": " + std::to_string(w.steal_attempts) +
           ", \"busy_us\": " + number(w.busy_us) +
           ", \"cpu_us\": " + number(w.cpu_us) +
           ", \"est_cost\": " + number(w.est_cost) + "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

SchedStats run_units(std::vector<WorkUnit> units, const SchedOptions& opt) {
  SchedStats st;
  st.total_units = units.size();
  st.steal = opt.steal;
  const auto wall0 = Clock::now();

  std::size_t jobs = std::max<std::size_t>(1, opt.jobs);
  if (!opt.seed_single_worker) jobs = std::min(jobs, std::max<std::size_t>(1, units.size()));
  st.workers.resize(jobs);

  if (jobs <= 1 || units.empty()) {
    auto& w = st.workers[0];
    for (auto& u : units) {
      const auto t0 = Clock::now();
      const auto c0 = thread_cpu_us();
      u.run();
      w.busy_us += us_since(t0);
      w.cpu_us += thread_cpu_us() - c0;
      ++w.units;
      w.est_cost += u.cost;
    }
    st.wall_us = us_since(wall0);
    return st;
  }

  std::vector<WorkerDeque> dq(jobs);
  auto seed = [&](std::size_t worker, std::size_t unit) {
    dq[worker].q.push_back(unit);
    dq[worker].rem.fetch_add(millicost(units[unit].cost),
                             std::memory_order_relaxed);
  };
  if (opt.seed_single_worker) {
    for (std::size_t i = 0; i < units.size(); ++i) seed(0, i);
  } else if (opt.steal) {
    // LPT seeding: largest unit first onto the least-loaded worker. The
    // partition is a pure function of the (deterministic) cost estimates, so
    // the *initial* assignment never depends on timing — only steals do.
    std::vector<std::size_t> order(units.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return units[a].cost > units[b].cost;
                     });
    for (const auto i : order) {
      std::size_t least = 0;
      for (std::size_t w = 1; w < jobs; ++w) {
        if (dq[w].rem.load(std::memory_order_relaxed) <
            dq[least].rem.load(std::memory_order_relaxed)) {
          least = w;
        }
      }
      seed(least, i);
    }
  } else {
    // Static sharder: contiguous block partition in schedule order, no
    // rebalancing — the pre-chunking behavior, kept for the A/B baseline.
    for (std::size_t i = 0; i < units.size(); ++i) {
      seed(i * jobs / units.size(), i);
    }
  }

  std::atomic<bool> abort{false};
  std::mutex err_mu;
  std::exception_ptr err;

  auto pop_own = [&](std::size_t w) -> std::ptrdiff_t {
    auto& d = dq[w];
    const std::lock_guard<std::mutex> lock(d.mu);
    if (d.q.empty()) return -1;
    const auto u = d.q.front();
    d.q.pop_front();
    d.rem.fetch_sub(millicost(units[u].cost), std::memory_order_relaxed);
    return static_cast<std::ptrdiff_t>(u);
  };

  // Steal half of the most-loaded victim's queued units (from the back —
  // the owner keeps the front it is about to execute). Returns true when
  // anything moved into `w`'s deque.
  auto try_steal = [&](std::size_t w) -> bool {
    ++st.workers[w].steal_attempts;
    std::size_t victim = w;
    std::int64_t best = 0;
    for (std::size_t v = 0; v < jobs; ++v) {
      if (v == w) continue;
      const auto rem = dq[v].rem.load(std::memory_order_relaxed);
      if (rem > best) {
        best = rem;
        victim = v;
      }
    }
    if (victim == w) return false;
    std::vector<std::size_t> loot;
    {
      const std::lock_guard<std::mutex> lock(dq[victim].mu);
      const auto n = dq[victim].q.size();
      if (n == 0) return false;
      const auto k = (n + 1) / 2;
      std::int64_t moved = 0;
      for (std::size_t i = 0; i < k; ++i) {
        loot.push_back(dq[victim].q.back());
        dq[victim].q.pop_back();
        moved += millicost(units[loot.back()].cost);
      }
      dq[victim].rem.fetch_sub(moved, std::memory_order_relaxed);
    }
    // Re-queue in schedule order so the thief walks its loot front-to-back.
    std::reverse(loot.begin(), loot.end());
    {
      const std::lock_guard<std::mutex> lock(dq[w].mu);
      std::int64_t moved = 0;
      for (const auto u : loot) {
        dq[w].q.push_back(u);
        moved += millicost(units[u].cost);
      }
      dq[w].rem.fetch_add(moved, std::memory_order_relaxed);
    }
    ++st.workers[w].steal_batches;
    st.workers[w].stolen_units += loot.size();
    return true;
  };

  auto all_empty = [&] {
    for (auto& d : dq) {
      const std::lock_guard<std::mutex> lock(d.mu);
      if (!d.q.empty()) return false;
    }
    return true;
  };

  auto worker = [&](std::size_t w) {
    auto& ws = st.workers[w];
    while (!abort.load(std::memory_order_relaxed)) {
      const auto u = pop_own(w);
      if (u < 0) {
        if (!opt.steal) return;
        // No work can appear out of thin air: once every deque is empty the
        // remaining in-flight units are already claimed, so the worker is
        // done for good.
        if (try_steal(w)) continue;
        if (all_empty()) return;
        std::this_thread::yield();
        continue;
      }
      const auto t0 = Clock::now();
      const auto c0 = thread_cpu_us();
      try {
        units[static_cast<std::size_t>(u)].run();
      } catch (...) {
        const std::lock_guard<std::mutex> lock(err_mu);
        if (!err) err = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
      }
      ws.busy_us += us_since(t0);
      ws.cpu_us += thread_cpu_us() - c0;
      ++ws.units;
      ws.est_cost += units[static_cast<std::size_t>(u)].cost;
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (std::size_t w = 0; w < jobs; ++w) pool.emplace_back(worker, w);
  for (auto& t : pool) t.join();
  st.wall_us = us_since(wall0);
  if (err) std::rethrow_exception(err);
  return st;
}

// ---------------------------------------------------------------------------
// Cost model + chunk planner
// ---------------------------------------------------------------------------

namespace {

/// Activation priors per fault type, calibrated against the measured rates
/// of the traced reference campaign (BENCH_activation.json). Only relative
/// order matters: they steer chunk sizing and LPT seeding, not results.
double type_activation_prior(swfit::FaultType t) {
  using swfit::FaultType;
  switch (t) {
    case FaultType::kMVI: return 0.80;
    case FaultType::kMVAV: return 0.05;
    case FaultType::kMVAE: return 0.27;
    case FaultType::kMIA: return 0.88;
    case FaultType::kMLAC: return 0.05;
    case FaultType::kMFC: return 0.05;
    case FaultType::kMIFS: return 0.63;
    case FaultType::kMLPC: return 0.53;
    case FaultType::kWVAV: return 0.68;
    case FaultType::kWLEC: return 0.84;
    case FaultType::kWAEP: return 1.00;
    case FaultType::kWPFV: return 0.05;
    default: return 0.50;
  }
}

}  // namespace

std::vector<double> estimate_fault_costs(const swfit::Faultload& fl,
                                         const FaultCostModel& model) {
  // Measured activation/outcome tallies per fault index, when traces exist.
  std::map<std::uint32_t, MeasuredActivation> measured;
  if (model.traces != nullptr) {
    measured = measured_activation_by_fault(*model.traces);
  }

  std::vector<double> costs(fl.faults.size(), 1.0);
  for (std::size_t i = 0; i < fl.faults.size(); ++i) {
    const auto& f = fl.faults[i];
    const auto it = measured.find(static_cast<std::uint32_t>(i));
    double p_act, p_ext;
    if (it != measured.end()) {
      p_act = it->second.activation_rate();
      p_ext = it->second.external_rate();
    } else {
      // Static estimate: type prior scaled by how hot the carrying function
      // is under the profiled workload (Table 2 shares; >= 5% of all API
      // calls counts as fully hot). Without a profile every function is
      // assumed moderately hot — the paper's fine-tuning already restricted
      // the faultload to heavily-used code.
      double hot = 0.6;
      if (model.profile != nullptr) {
        hot = std::min(1.0, model.profile->average_pct(f.function) / 5.0);
      }
      p_act = std::min(1.0, type_activation_prior(f.type) * (0.3 + 0.7 * hot));
      p_ext = 0.55 * p_act;  // measured share of activations that kill/hang
    }
    // A healthy full-exposure window is the expensive case in this substrate
    // (the client drives the server at full rate, every op executes OS code
    // on the VM); a killed or hung server collapses the window's op count to
    // timeouts and fast-fails, which cost almost nothing to simulate.
    costs[i] = std::max(0.2, 1.0 - 0.6 * p_ext - 0.1 * (p_act - p_ext));
  }
  return costs;
}

std::vector<Chunk> plan_chunks(const std::vector<double>& position_costs,
                               std::size_t jobs, int chunk_override) {
  const std::size_t n = position_costs.size();
  std::vector<Chunk> chunks;
  if (n == 0) return chunks;

  std::size_t fixed = 0;
  if (chunk_override > 0) {
    fixed = static_cast<std::size_t>(chunk_override);
  } else if (chunk_override < 0) {
    // --shards alias: -S means "decompose into S equal chunks".
    const auto shards = static_cast<std::size_t>(-chunk_override);
    fixed = (n + shards - 1) / shards;
  }

  double total = 0;
  for (const auto c : position_costs) total += c;
  // Adaptive target: enough chunks that every worker sees kChunksPerWorker
  // steal-able pieces; expensive ranges hit the cost target early (small
  // chunks), cheap ranges run long (large chunks, capped).
  const double target =
      total / static_cast<double>(std::max<std::size_t>(1, jobs) *
                                  kChunksPerWorker);

  std::size_t first = 0;
  while (first < n) {
    Chunk c;
    c.first = first;
    if (fixed > 0) {
      c.count = std::min(fixed, n - first);
      for (std::size_t i = 0; i < c.count; ++i) {
        c.cost += position_costs[first + i];
      }
    } else {
      while (first + c.count < n && c.count < kMaxChunkFaults &&
             (c.count == 0 || c.cost + position_costs[first + c.count] <=
                                  std::max(target, position_costs[first]))) {
        c.cost += position_costs[first + c.count];
        ++c.count;
      }
    }
    first += c.count;
    chunks.push_back(c);
  }
  return chunks;
}

}  // namespace gf::depbench
