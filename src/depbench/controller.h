// The experiment controller: the paper's injector-monitor (§3.1).
//
// One iteration walks the faultload, exposing each fault for 10 simulated
// seconds while the SPECWeb-like client exercises the server, and monitors
// the BT:
//   - web server died and did not self-restart            -> MIS
//   - killed because it stopped responding to requests    -> KNS
//   - killed because it hogged the CPU without service    -> KCP
// Administrator intervention (MIS/KNS/KCP) restarts the server and reboots
// the OS; apex's watchdog self-restart restarts only the server process.
//
// The controller also implements the paper's baseline and "profile mode"
// runs (Table 4): in profile mode the injector performs every task of an
// injection campaign except the actual code patch, which measures the
// instrumentation overhead.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "depbench/task_obs.h"
#include "obs/progress.h"
#include "os/api.h"
#include "os/kernel.h"
#include "snapshot/warmboot.h"
#include "spec/client.h"
#include "swfit/injector.h"
#include "trace/activation.h"

namespace gf::depbench {

struct ControllerConfig {
  double fault_exposure_ms = 10000;  ///< 10 s per fault, as in the paper
  double detect_ms = 2500;           ///< monitor latency to notice a failure
  double admin_restart_ms = 3000;    ///< kill + OS reboot + server start
  int connections = 37;              ///< offered load (baseline SPEC score)
  double time_scale = 1.0;           ///< scales exposure & monitor latencies
  int fault_stride = 1;              ///< inject every k-th fault (sampling)
  /// First fault index of the iteration. Together with fault_stride this
  /// lets a campaign runner split one iteration into disjoint shards:
  /// shard s of S covers indices {offset + s*stride, ... step stride*S}.
  int fault_offset = 0;
  /// Faults per slot (paper Fig. 4): at slot boundaries the SUB is not
  /// exercised and gets a scheduled reset (OS reboot + server restart)
  /// that does NOT count as administrator intervention.
  int faults_per_slot = 24;
  /// Watchdog tolerance: self-restarts allowed per fault exposure before
  /// the monitor declares the server dead (MIS) and calls the admin.
  int self_restart_budget = 2;
  /// Per-fault activation & propagation tracing (src/trace). Off by default:
  /// with it off the VM hot loop is untouched (the armed bit is never set).
  bool trace = false;
  /// Probe kernel invariants at every OsApi call boundary while a fault is
  /// live (more precise latency attribution for latent corruption, at a
  /// per-call walk cost). Only meaningful when `trace` is on.
  bool trace_probe_per_call = false;
  /// Virtual-cycle sampling stride for the deterministic guest profiler
  /// (0 = off). When set (and `obs` is non-null) the VM's PC sampler is
  /// armed after bring-up and harvested into obs->profile before the run's
  /// scrub, attributed to functions via the pristine image's symbol table.
  /// Arming after bring-up keeps cold-built and warm-snapshot controllers
  /// bit-identical (boot/start/warm-up cycles are excluded either way).
  std::uint64_t profile_stride = 0;
  /// Per-task observability bundle (metrics + journal), owned by the caller.
  /// Null (the default) compiles the campaign down to a handful of
  /// never-taken branches at run boundaries — the hot paths are untouched.
  TaskObs* obs = nullptr;
  /// Shared campaign progress reporter; bumped once per injected fault.
  obs::ProgressReporter* progress = nullptr;
  spec::ClientConfig client;  ///< timing model knobs
};

/// Injector-monitor counters for one iteration (Table 5 right half).
struct CampaignCounters {
  int mis = 0;
  int kns = 0;
  int kcp = 0;
  int faults_injected = 0;
  int self_restarts = 0;
  /// ADMf: required administrator interventions (paper §3.2).
  int admf() const noexcept { return mis + kns + kcp; }
};

struct IterationResult {
  spec::WindowMetrics metrics;
  CampaignCounters counters;
  /// One record per injected fault when tracing is on (empty otherwise),
  /// sorted by absolute faultload index — the canonical order that makes
  /// shard merges independent of scheduling.
  std::vector<trace::ActivationRecord> activations;
};

class Controller {
 public:
  /// Builds a fresh SUB: kernel of `version`, file set, server `name`.
  Controller(os::OsVersion version, const std::string& server_name,
             ControllerConfig cfg = {});

  /// Reconstructs a warmed SUB from a shared warm-boot snapshot: the kernel
  /// resumes post-boot/post-server-start (no MiniC compile, no boot, no
  /// file-set regeneration), and the first run_* call skips its bring-up —
  /// the snapshot was captured exactly there, so results are bit-identical
  /// to a cold-built controller's.
  Controller(std::shared_ptr<const snapshot::WarmSnapshot> snap,
             ControllerConfig cfg = {});

  /// Baseline performance (no injector at all).
  spec::WindowMetrics run_baseline(double duration_ms, std::uint64_t seed);

  /// Injector in profile mode: every injection-campaign task runs (fault
  /// schedule bookkeeping, code-window verification, monitor polling) but
  /// the target is never patched.
  spec::WindowMetrics run_profile_mode(const swfit::Faultload& fl,
                                       double duration_ms, std::uint64_t seed);

  /// One full campaign iteration over the faultload.
  IterationResult run_iteration(const swfit::Faultload& fl, std::uint64_t seed);

  os::Kernel& kernel() noexcept { return *kernel_; }
  web::WebServer& server() noexcept { return *server_; }

 private:
  struct MonitorState;

  /// Run-entry bring-up (OS reboot + server start), skipped once on a
  /// warm-constructed controller whose snapshot already contains it.
  void bring_up();

  /// Observability harvest window: begin records the lifetime counter
  /// baselines, end folds the deltas (VM dispatch, kernel activity, client
  /// window tallies) into the task registry. No-ops without cfg_.obs.
  void obs_begin_run();
  void obs_end_run(const spec::WindowMetrics& m);

  /// Guest profiler window: begin arms the VM's PC sampler (after bring-up,
  /// so boot cycles never pollute the profile), end harvests the samples
  /// into obs->profile attributed by function symbol and disarms. No-ops
  /// unless cfg_.profile_stride != 0 and cfg_.obs is set.
  void profile_begin();
  void profile_end();

  ControllerConfig cfg_;
  vm::DispatchStats obs_vm_base_;
  os::KernelCounters obs_kernel_base_;
  std::unique_ptr<os::Kernel> kernel_;
  std::unique_ptr<os::OsApi> api_;
  std::unique_ptr<spec::Fileset> fileset_;
  std::unique_ptr<web::WebServer> server_;
  bool warm_started_ = false;
};

}  // namespace gf::depbench
