// Faultload fine-tuning (paper §2.4): combines the profiling phase with the
// G-SWFIT scanner to produce the final, activation-optimized faultload — a
// scan of the OS image restricted to the API functions the BT category
// heavily uses.
#pragma once

#include <map>

#include "depbench/profiler.h"
#include "os/kernel.h"
#include "swfit/scanner.h"
#include "trace/activation.h"

namespace gf::depbench {

/// Per-fault measured exposure tallies, folded from activation records.
/// Shared between the fine-tuning pruner (drop faults that never fire) and
/// the scheduler's cost model (activated faults are *cheap* to expose —
/// kills and hangs collapse the window's op count).
struct MeasuredActivation {
  std::uint64_t traced = 0;     ///< exposures with a record
  std::uint64_t activated = 0;  ///< exposures whose window executed
  std::uint64_t external = 0;   ///< exposures the client/monitor saw fail

  double activation_rate() const noexcept {
    return traced > 0
               ? static_cast<double>(activated) / static_cast<double>(traced)
               : 0.0;
  }
  double external_rate() const noexcept {
    return traced > 0
               ? static_cast<double>(external) / static_cast<double>(traced)
               : 0.0;
  }
};

/// Folds records into per-fault-index tallies (commutative, so any record
/// order — merged iterations, multiple cells — gives the same map).
std::map<std::uint32_t, MeasuredActivation> measured_activation_by_fault(
    const std::vector<trace::ActivationRecord>& records);

struct TunedFaultload {
  ApiProfile profile;                  ///< the Table 2 data
  std::vector<std::string> functions;  ///< the intersected function set
  swfit::Faultload faultload;          ///< the Table 3 faultload
};

/// Runs the full fine-tuning pipeline for one OS version: profile the
/// server category, intersect, scan. `kernel` supplies the image to scan
/// (it must be the same OS version the profile is taken on).
TunedFaultload tune_faultload(os::Kernel& kernel,
                              const std::vector<std::string>& profile_servers,
                              const ProfilerConfig& pcfg = {},
                              const swfit::ScanOptions& scan_opts = {},
                              double min_avg_pct = 0.05);

/// Measured-activation pruning (the closed fine-tuning loop): the static
/// pipeline above keeps every fault inside heavily-used functions, but a
/// campaign traced with src/trace measures which faults *actually* execute.
/// Drops every fault that was injected (appears in `records`) yet whose
/// measured activation rate — activated exposures / traced exposures across
/// iterations — stays below `min_activation_rate`. Faults the campaign never
/// exposed (e.g. skipped by the sampling stride) are conservatively kept.
swfit::Faultload prune_by_measured_activation(
    const swfit::Faultload& fl,
    const std::vector<trace::ActivationRecord>& records,
    double min_activation_rate = 1e-9);

}  // namespace gf::depbench
