// Faultload fine-tuning (paper §2.4): combines the profiling phase with the
// G-SWFIT scanner to produce the final, activation-optimized faultload — a
// scan of the OS image restricted to the API functions the BT category
// heavily uses.
#pragma once

#include "depbench/profiler.h"
#include "os/kernel.h"
#include "swfit/scanner.h"

namespace gf::depbench {

struct TunedFaultload {
  ApiProfile profile;                  ///< the Table 2 data
  std::vector<std::string> functions;  ///< the intersected function set
  swfit::Faultload faultload;          ///< the Table 3 faultload
};

/// Runs the full fine-tuning pipeline for one OS version: profile the
/// server category, intersect, scan. `kernel` supplies the image to scan
/// (it must be the same OS version the profile is taken on).
TunedFaultload tune_faultload(os::Kernel& kernel,
                              const std::vector<std::string>& profile_servers,
                              const ProfilerConfig& pcfg = {},
                              const swfit::ScanOptions& scan_opts = {},
                              double min_avg_pct = 0.05);

}  // namespace gf::depbench
