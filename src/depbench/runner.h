// Work-stealing parallel campaign runner with fault-granular chunking.
//
// The paper's Table 5 matrix (2 servers x 2 OS versions x 3 iterations) is
// embarrassingly parallel, and with warm-boot snapshots (src/snapshot) the
// dominant wall-clock waste left is *tail imbalance*: individual fault
// exposures have wildly skewed costs (a never-activated fault serves the
// whole window at full rate; a kill/hang collapses it to timeouts), so any
// static partition leaves workers idle while the unlucky one drains its
// worst-case range. The runner therefore decomposes every iteration down to
// single-fault runs, groups them into cost-balanced *chunks*
// (depbench/scheduler), and executes the chunks on a work-stealing pool.
//
// Determinism contract: every fault run is an independent mini-run — a fresh
// Controller from the cell's warm snapshot (or cold-built; bit-identical
// either way, see src/snapshot), seeded by derive_seed(seed, cell, task)
// where the task id is a pure function of (iteration, schedule position).
// Results land in preallocated per-fault slots and merge_fault_runs() folds
// them in schedule order, so the campaign results, the merged registry, the
// slot-ordered journal and the activation records are byte-identical for any
// `jobs`, any `chunk` size and any steal interleaving. Chunk boundaries only
// decide which worker runs which faults back-to-back — never what a fault
// run computes.
//
// The legacy `shards` option is kept as a deprecated alias: `shards = S`
// maps onto the same chunked decomposition (S equal chunks per iteration),
// one code path, identical results.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "depbench/report.h"
#include "depbench/scheduler.h"
#include "depbench/task_obs.h"
#include "obs/progress.h"
#include "store/store.h"
#include "swfit/faultload.h"

namespace gf::depbench {

struct RunnerOptions {
  std::vector<os::OsVersion> versions{os::OsVersion::kVos2000,
                                      os::OsVersion::kVosXp};
  std::vector<std::string> servers{"apex", "abyssal"};
  int iterations = 3;
  int stride = 6;        ///< inject every k-th fault of the faultload
  /// Deprecated alias onto chunked decomposition: `shards = S` (S > 1) asks
  /// for S equal fault chunks per iteration, exactly like `chunk` would.
  /// Ignored when `chunk` is set. Results are identical for any value.
  int shards = 1;
  /// Fault positions per chunk: > 0 forces a fixed size (--chunk), 0 lets
  /// the cost model size chunks adaptively (see depbench/scheduler).
  int chunk = 0;
  /// Work stealing on (default). Off = static contiguous partition of the
  /// chunk list across workers, no rebalancing — the A/B baseline for
  /// BM_CampaignSteal. Results are byte-identical either way.
  bool steal = true;
  /// Optional cost-model inputs (both may be null — the model falls back to
  /// per-fault-type activation priors). Borrowed, not owned.
  const ApiProfile* cost_profile = nullptr;
  const std::vector<trace::ActivationRecord>* cost_traces = nullptr;
  /// Optional preloaded faultload (e.g. a portable faultload file loaded by
  /// gfbench). Used for every version in `versions` instead of scanning the
  /// kernel image — the caller must ensure it matches the target build(s).
  /// Borrowed, not owned.
  const swfit::Faultload* faultload = nullptr;
  double time_scale = 1.0;
  double baseline_window_ms = 120000;
  std::uint64_t seed = 1;
  int jobs = 0;          ///< worker threads; 0 = hardware_concurrency
  /// Per-fault activation & propagation tracing (fills
  /// IterationResult::activations). Per-task seeds make the records a pure
  /// function of (seed, cell, task), so they are bit-identical for any
  /// `jobs`, and the fault-index sort makes shard merges order-independent.
  bool trace = false;
  bool trace_probe_per_call = false;
  /// Warm-boot snapshots: build each (OS version, server) cell's SUB once,
  /// capture the post-boot/post-server-start state, and let every shard
  /// task reconstruct its private controller from the shared snapshot
  /// instead of re-compiling/booting from scratch. Bit-identical results
  /// for any `jobs` value (the capture mirrors the cold bring-up exactly);
  /// off = the original cold path, kept for A/B and equivalence tests.
  bool warm_boot = true;
  /// VM superinstruction fusion (--no-fusion turns it off). Pure execution
  /// strategy: architectural results, activation traces and obs artifacts
  /// are byte-identical either way, so the flag is deliberately NOT part of
  /// ControllerConfig (store keys serve both modes). Kept for A/B
  /// benchmarking and the CI equivalence gate.
  bool fusion = true;
  /// Observability: give every task a private TaskObs bundle and merge them
  /// at the join (CampaignRunner::campaign_obs()). The merged registry and
  /// journal are byte-identical for any `jobs` at fixed shards/seed; see
  /// CampaignObs for the shard-invariance contract.
  bool obs = false;
  /// Deterministic guest profiler: arm the VM's virtual-cycle PC sampler for
  /// every run at `profile_stride` and collect per-function flat profiles
  /// through the TaskObs slots (requires `obs`; the tools force it on).
  /// Samples tick only at retired architectural-step boundaries, so the
  /// merged profiles — and everything derived from them (--profile-json,
  /// flamegraphs, manifest section) — are byte-identical for any jobs,
  /// chunk, steal, fusion, dispatch lowering or store-hit pattern. The
  /// stride shapes results, so it IS part of the store key (unlike fusion).
  bool profile = false;
  std::uint64_t profile_stride = 4096;
  /// Optional live progress reporter (rate-limited stderr, ETA). Never
  /// feeds the deterministic artifacts.
  obs::ProgressReporter* progress = nullptr;
  /// Optional persistent result store (src/store). When wired, every
  /// single-fault run and baseline is committed under its content-addressed
  /// key after execution, and — unless `store_read` is off — consulted
  /// before scheduling: cached runs fold into the same preallocated slots a
  /// live run would fill, so the merged campaign artifacts are
  /// byte-identical for ANY cache-hit pattern. Borrowed, not owned.
  store::CampaignStore* store = nullptr;
  /// false = --no-cache: ignore cached results (everything re-executes and
  /// re-commits); the store is still written.
  bool store_read = true;
};

/// Per-task seed: a pure function of (campaign seed, cell, task) so a task's
/// result never depends on scheduling order or worker count.
std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t cell,
                          std::uint64_t task) noexcept;

/// Exact, order-independent merge of shard counters (plain field sums).
CampaignCounters merge_counters(const CampaignCounters& a,
                                const CampaignCounters& b) noexcept;

/// Order-independent merge of two shard windows: raw counters (duration,
/// ops, errors, bytes) sum exactly; THR/RTM/ER% are recomputed from the
/// sums; SPC/CC% take the conservative minimum (a connection only conforms
/// if it conformed in every shard it was measured in).
spec::WindowMetrics merge_windows(const spec::WindowMetrics& a,
                                  const spec::WindowMetrics& b) noexcept;

/// Folds the shard results of one iteration; the single-shard case is the
/// identity, so shards = 1 reproduces an unsharded run bit-exactly.
/// (Legacy helper for coarse disjoint-subset merges; the campaign path now
/// uses merge_fault_runs.)
IterationResult merge_shards(const std::vector<IterationResult>& shards);

/// Canonical fold of one iteration's per-fault runs, in schedule order.
/// Raw counters (duration, ops, errors, bytes, campaign tallies) sum
/// exactly; THR/RTM/ER% are recomputed from the sums; SPC/CC% take the
/// rounded mean over runs — each single-fault run is exactly one SPC batch,
/// so the mean over runs IS the SPECWeb batch mean. The fold order is fixed
/// (schedule position), so FP results never depend on completion order.
IterationResult merge_fault_runs(const std::vector<IterationResult>& runs);

/// One task's observability bundle plus its identity, kept in (cell, task)
/// slot order — the canonical order every rendering walks, which is what
/// makes the flushed artifacts independent of scheduling.
struct TaskObsSlot {
  std::string cell;   ///< "VOS-2000/apex"
  std::string label;  ///< "baseline" or "iter<I>.f<FAULT_INDEX>"
  TaskObs obs;
};

/// Merged campaign observability.
///
/// Determinism contract:
///   - For a fixed (seed, stride, time_scale) the merged registry JSON and
///     the slot-ordered journal JSONL are byte-identical for any `jobs`,
///     `chunk`, `shards` or `steal` value — slots are per *fault*, each a
///     pure function of (seed, cell, iteration, schedule position), and the
///     merge folds them in slot order. Chunk boundaries never appear in any
///     artifact. tests/test_obs.cpp and tests/test_runner_steal.cpp check
///     this.
///   - Wall-clock never enters the registry or journal; it exists only in
///     the Chrome-trace host view (TaskObs::wall_*) and the scheduler
///     telemetry (SchedStats).
struct CampaignObs {
  obs::Registry metrics;           ///< merged registry (incl. api.* export)
  obs::ApiMetrics api;             ///< merged per-function sink
  std::vector<TaskObsSlot> tasks;  ///< slot order: cell-major, task-minor

  /// Folds every task bundle into `metrics`/`api` in slot order, exports the
  /// api.* counters/histograms, and derives the kernel churn counters
  /// (heap allocs/frees, handles opened/closed) from the per-function API
  /// counts. Call exactly once, after all tasks have finished.
  void merge_tasks();
};

/// Table 4 result for one cell.
struct IntrusivenessCell {
  std::string os_name;
  std::string server_name;
  spec::WindowMetrics max_perf;  ///< no injector at all
  spec::WindowMetrics profile;   ///< injector in profile mode (no patching)
};

class CampaignRunner {
 public:
  explicit CampaignRunner(RunnerOptions opt) : opt_(std::move(opt)) {}

  /// Table 5: per cell a profile-mode baseline plus `iterations` full
  /// injection iterations, decomposed into per-fault runs and executed as
  /// cost-balanced chunks on the work-stealing pool.
  std::vector<ExperimentCell> run_campaign();

  /// Table 4: per cell a max-performance baseline plus a profile-mode run,
  /// both with the same derived seed so the pair stays directly comparable.
  std::vector<IntrusivenessCell> run_intrusiveness();

  const RunnerOptions& options() const noexcept { return opt_; }

  /// Merged observability of the last run_campaign(); null unless
  /// options().obs was set.
  const CampaignObs* campaign_obs() const noexcept { return obs_.get(); }

  /// Scheduler telemetry of the last run_campaign() (per-worker utilization,
  /// steal counts); null before the first campaign. Wall-clock-coupled, so
  /// it never feeds the deterministic artifacts — see SchedStats.
  const SchedStats* scheduler_stats() const noexcept { return sched_.get(); }

  /// Store traffic of the last run_campaign() (hit/miss/put deltas plus the
  /// live index snapshot); null unless options().store was wired. Like
  /// SchedStats, wall-state-coupled — never part of the deterministic
  /// artifacts.
  const store::StoreStats* store_stats() const noexcept {
    return store_stats_.get();
  }

 private:
  void scan_faultloads();
  const swfit::Faultload& faultload_for(os::OsVersion v) const;
  /// Runs `count` tasks on the worker pool; rethrows the first task error.
  void run_tasks(std::size_t count,
                 const std::function<void(std::size_t)>& task) const;

  RunnerOptions opt_;
  std::vector<std::pair<os::OsVersion, swfit::Faultload>> faultloads_;
  std::unique_ptr<CampaignObs> obs_;
  std::unique_ptr<SchedStats> sched_;
  std::unique_ptr<store::StoreStats> store_stats_;
};

}  // namespace gf::depbench
