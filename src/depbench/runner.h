// Sharded parallel campaign runner.
//
// The paper's Table 5 matrix (2 servers x 2 OS versions x 3 iterations) is
// embarrassingly parallel: every cell task runs against its own SUB. The
// runner fans baseline/iteration tasks across a std::thread pool where each
// task builds a fully independent Controller (own kernel, VM, disk, server)
// and draws its seed from SplitMix64(campaign seed, cell index, task index).
// Results land in preallocated slots indexed by (cell, task), so the merge
// is order-independent by construction and `jobs = N` is bit-identical to
// `jobs = 1`.
//
// One iteration can additionally be split into `shards` disjoint fault-index
// subsets via the controller's fault_stride/fault_offset mechanism: shard s
// of S covers faultload indices {s*stride, s*stride + S*stride, ...}. Shard
// results are merged with merge_shards() (counters sum exactly; window
// metrics merge conservatively, see merge_windows()).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "depbench/report.h"
#include "depbench/task_obs.h"
#include "obs/progress.h"
#include "swfit/faultload.h"

namespace gf::depbench {

struct RunnerOptions {
  std::vector<os::OsVersion> versions{os::OsVersion::kVos2000,
                                      os::OsVersion::kVosXp};
  std::vector<std::string> servers{"apex", "abyssal"};
  int iterations = 3;
  int stride = 6;        ///< inject every k-th fault of the faultload
  int shards = 1;        ///< disjoint fault-index shards per iteration
  double time_scale = 1.0;
  double baseline_window_ms = 120000;
  std::uint64_t seed = 1;
  int jobs = 0;          ///< worker threads; 0 = hardware_concurrency
  /// Per-fault activation & propagation tracing (fills
  /// IterationResult::activations). Per-task seeds make the records a pure
  /// function of (seed, cell, task), so they are bit-identical for any
  /// `jobs`, and the fault-index sort makes shard merges order-independent.
  bool trace = false;
  bool trace_probe_per_call = false;
  /// Warm-boot snapshots: build each (OS version, server) cell's SUB once,
  /// capture the post-boot/post-server-start state, and let every shard
  /// task reconstruct its private controller from the shared snapshot
  /// instead of re-compiling/booting from scratch. Bit-identical results
  /// for any `jobs` value (the capture mirrors the cold bring-up exactly);
  /// off = the original cold path, kept for A/B and equivalence tests.
  bool warm_boot = true;
  /// Observability: give every task a private TaskObs bundle and merge them
  /// at the join (CampaignRunner::campaign_obs()). The merged registry and
  /// journal are byte-identical for any `jobs` at fixed shards/seed; see
  /// CampaignObs for the shard-invariance contract.
  bool obs = false;
  /// Optional live progress reporter (rate-limited stderr, ETA). Never
  /// feeds the deterministic artifacts.
  obs::ProgressReporter* progress = nullptr;
};

/// Per-task seed: a pure function of (campaign seed, cell, task) so a task's
/// result never depends on scheduling order or worker count.
std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t cell,
                          std::uint64_t task) noexcept;

/// Exact, order-independent merge of shard counters (plain field sums).
CampaignCounters merge_counters(const CampaignCounters& a,
                                const CampaignCounters& b) noexcept;

/// Order-independent merge of two shard windows: raw counters (duration,
/// ops, errors, bytes) sum exactly; THR/RTM/ER% are recomputed from the
/// sums; SPC/CC% take the conservative minimum (a connection only conforms
/// if it conformed in every shard it was measured in).
spec::WindowMetrics merge_windows(const spec::WindowMetrics& a,
                                  const spec::WindowMetrics& b) noexcept;

/// Folds the shard results of one iteration; the single-shard case is the
/// identity, so shards = 1 reproduces an unsharded run bit-exactly.
IterationResult merge_shards(const std::vector<IterationResult>& shards);

/// One task's observability bundle plus its identity, kept in (cell, task)
/// slot order — the canonical order every rendering walks, which is what
/// makes the flushed artifacts independent of scheduling.
struct TaskObsSlot {
  std::string cell;   ///< "VOS-2000/apex"
  std::string label;  ///< "baseline" or "iter<I>.shard<S>"
  TaskObs obs;
};

/// Merged campaign observability.
///
/// Determinism contract:
///   - For a fixed (seed, stride, shards, time_scale) the merged registry
///     JSON and the slot-ordered journal JSONL are byte-identical for any
///     `jobs` value — tasks are pure functions of (seed, cell, task) and the
///     merge folds them in slot order.
///   - Across different `shards` values only the fault-indexed subset is
///     invariant (campaign.faults_injected, inject.patches/restores/
///     verifies, trace.*): sharding changes the per-task seeds and slot
///     boundaries, so workload-coupled counters (client.ops, vm.*, api.*)
///     legitimately differ. tests/test_obs.cpp checks both halves.
///   - Wall-clock never enters the registry or journal; it exists only in
///     the Chrome-trace host view (TaskObs::wall_*).
struct CampaignObs {
  obs::Registry metrics;           ///< merged registry (incl. api.* export)
  obs::ApiMetrics api;             ///< merged per-function sink
  std::vector<TaskObsSlot> tasks;  ///< slot order: cell-major, task-minor

  /// Folds every task bundle into `metrics`/`api` in slot order, exports the
  /// api.* counters/histograms, and derives the kernel churn counters
  /// (heap allocs/frees, handles opened/closed) from the per-function API
  /// counts. Call exactly once, after all tasks have finished.
  void merge_tasks();
};

/// Table 4 result for one cell.
struct IntrusivenessCell {
  std::string os_name;
  std::string server_name;
  spec::WindowMetrics max_perf;  ///< no injector at all
  spec::WindowMetrics profile;   ///< injector in profile mode (no patching)
};

class CampaignRunner {
 public:
  explicit CampaignRunner(RunnerOptions opt) : opt_(std::move(opt)) {}

  /// Table 5: per cell a profile-mode baseline plus `iterations` full
  /// injection iterations (each split into `shards` disjoint fault shards).
  std::vector<ExperimentCell> run_campaign();

  /// Table 4: per cell a max-performance baseline plus a profile-mode run,
  /// both with the same derived seed so the pair stays directly comparable.
  std::vector<IntrusivenessCell> run_intrusiveness();

  const RunnerOptions& options() const noexcept { return opt_; }

  /// Merged observability of the last run_campaign(); null unless
  /// options().obs was set.
  const CampaignObs* campaign_obs() const noexcept { return obs_.get(); }

 private:
  void scan_faultloads();
  const swfit::Faultload& faultload_for(os::OsVersion v) const;
  /// Runs `count` tasks on the worker pool; rethrows the first task error.
  void run_tasks(std::size_t count,
                 const std::function<void(std::size_t)>& task) const;

  RunnerOptions opt_;
  std::vector<std::pair<os::OsVersion, swfit::Faultload>> faultloads_;
  std::unique_ptr<CampaignObs> obs_;
};

}  // namespace gf::depbench
