#include "depbench/campaign_diff.h"

#include <cmath>
#include <cstdio>
#include <vector>

#include "obs/json.h"
#include "obs/profile.h"

namespace gf::depbench {

namespace {

using obs::json::Value;

// The derived §3.2 metrics gated per cell, in report order.
constexpr const char* kDerivedKeys[] = {"spcf",    "thrf",    "rtmf",
                                        "erf_pct", "admf",    "spc_rel",
                                        "thr_rel"};
// Failure-mode counters summed over iterations; faults_injected is campaign
// shape, not a dependability outcome, so it is reported but never gates.
constexpr const char* kGatedCounters[] = {"mis", "kns", "kcp",
                                          "self_restarts"};

std::string fmt2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

/// Relative drift in percent. Both zero = 0; a value appearing from (or
/// collapsing to) zero is unbounded drift, clamped for display but always
/// beyond any threshold.
double drift_pct(double oldv, double newv) {
  if (oldv == newv) return 0;
  const double denom = std::abs(oldv);
  if (denom < 1e-12) return 1e9;
  return 100.0 * std::abs(newv - oldv) / denom;
}

double num(const Value* v) { return v != nullptr && v->is_number() ? v->number : 0; }

std::string cell_name(const Value& cell) {
  const auto* os = cell.find("os");
  const auto* server = cell.find("server");
  return (os != nullptr ? os->string : "?") + "/" +
         (server != nullptr ? server->string : "?");
}

/// Sums one counter over a cell's iterations.
double counter_sum(const Value& cell, const char* key) {
  double sum = 0;
  if (const auto* iters = cell.find("iterations"); iters != nullptr) {
    for (const auto& it : iters->array) {
      if (const auto* c = it.find("counters"); c != nullptr) {
        sum += num(c->find(key));
      }
    }
  }
  return sum;
}

/// Rebuilds an obs::Profile from a manifest profile object.
obs::Profile profile_from(const Value* v) {
  obs::Profile p;
  if (v == nullptr || !v->is_object()) return p;
  p.stride = static_cast<std::uint64_t>(num(v->find("stride")));
  if (const auto* fns = v->find("functions"); fns != nullptr) {
    for (const auto& [name, n] : fns->object) {
      if (n.is_number()) p.add(name, static_cast<std::uint64_t>(n.number));
    }
  }
  return p;
}

/// The cell's profile entry in the manifest "profiles" section, or null.
const Value* profiles_entry(const Value& root, const std::string& cell) {
  const auto* profiles = root.find("profiles");
  if (profiles == nullptr || !profiles->is_array()) return nullptr;
  for (const auto& e : profiles->array) {
    if (const auto* c = e.find("cell"); c != nullptr && c->string == cell) {
      return &e;
    }
  }
  return nullptr;
}

bool check_manifest_shape(const Value& root, const char* which,
                          std::string& error) {
  const auto* schema = root.find("schema");
  if (schema == nullptr || schema->string != "genfault-campaign/1") {
    error = std::string(which) + ": not a genfault-campaign/1 manifest";
    return false;
  }
  const auto* cells = root.find("cells");
  if (cells == nullptr || !cells->is_array()) {
    error = std::string(which) + ": missing cells array";
    return false;
  }
  return true;
}

}  // namespace

CampaignDiff diff_campaigns(const std::string& old_manifest,
                            const std::string& new_manifest,
                            const DiffOptions& opt) {
  CampaignDiff d;
  std::string perr;
  const auto oldv = obs::json::parse(old_manifest, &perr);
  if (!oldv) {
    d.error = "OLD: " + perr;
    return d;
  }
  const auto newv = obs::json::parse(new_manifest, &perr);
  if (!newv) {
    d.error = "NEW: " + perr;
    return d;
  }
  if (!check_manifest_shape(*oldv, "OLD", d.error) ||
      !check_manifest_shape(*newv, "NEW", d.error)) {
    return d;
  }
  d.ok = true;

  const auto& old_cells = oldv->find("cells")->array;
  const auto& new_cells = newv->find("cells")->array;
  auto find_cell = [](const std::vector<Value>& cells,
                      const std::string& name) -> const Value* {
    for (const auto& c : cells) {
      if (cell_name(c) == name) return &c;
    }
    return nullptr;
  };

  std::string js = "{\n\"schema\": \"genfault-diff/1\",\n";
  js += "\"threshold_pct\": " + obs::json::number(opt.threshold_pct) + ",\n";
  std::string cells_js = "\"cells\": [";
  std::string txt;
  bool first_cell = true;

  // Walk the OLD manifest's cell order (canonical); report NEW-only cells
  // separately. A vanished or added cell is itself a breach — the campaign
  // matrix changed shape.
  std::vector<std::string> missing, added;
  for (const auto& oc : old_cells) {
    const auto name = cell_name(oc);
    if (find_cell(new_cells, name) == nullptr) missing.push_back(name);
  }
  for (const auto& nc : new_cells) {
    const auto name = cell_name(nc);
    if (find_cell(old_cells, name) == nullptr) added.push_back(name);
  }
  if (!missing.empty() || !added.empty()) d.breached = true;

  for (const auto& oc : old_cells) {
    const auto name = cell_name(oc);
    const auto* nc = find_cell(new_cells, name);
    if (nc == nullptr) continue;
    cells_js += first_cell ? "\n" : ",\n";
    first_cell = false;
    cells_js += "{\"cell\": \"" + obs::json::escape(name) + "\",\n";
    std::string cell_txt;

    // Derived-metric drift.
    cells_js += " \"derived\": [";
    const auto* od = oc.find("derived");
    const auto* nd = nc->find("derived");
    bool first = true;
    for (const auto* key : kDerivedKeys) {
      const double ov = od != nullptr ? num(od->find(key)) : 0;
      const double nv = nd != nullptr ? num(nd->find(key)) : 0;
      const double drift = drift_pct(ov, nv);
      const bool breach = drift > opt.threshold_pct;
      if (breach) d.breached = true;
      cells_js += first ? "" : ", ";
      first = false;
      cells_js += "{\"metric\": \"" + std::string(key) +
                  "\", \"old\": " + obs::json::number(ov) +
                  ", \"new\": " + obs::json::number(nv) +
                  ", \"drift_pct\": " + obs::json::number(drift) +
                  ", \"breach\": " + (breach ? "true" : "false") + "}";
      if (drift > 0) {
        cell_txt += "  " + std::string(key) + ": " + fmt2(ov) + " -> " +
                    fmt2(nv) + " (" + fmt2(drift) + "% drift" +
                    (breach ? ", BREACH)\n" : ")\n");
      }
    }
    cells_js += "],\n";

    // Failure-mode counter drift (summed over iterations).
    cells_js += " \"counters\": [";
    first = true;
    auto emit_counter = [&](const char* key, bool gated) {
      const double ov = counter_sum(oc, key);
      const double nv = counter_sum(*nc, key);
      const double drift = drift_pct(ov, nv);
      const bool breach = gated && drift > opt.threshold_pct;
      if (breach) d.breached = true;
      cells_js += first ? "" : ", ";
      first = false;
      cells_js += "{\"counter\": \"" + std::string(key) +
                  "\", \"old\": " + obs::json::number(ov) +
                  ", \"new\": " + obs::json::number(nv) +
                  ", \"breach\": " + (breach ? "true" : "false") + "}";
      if (ov != nv) {
        cell_txt += "  " + std::string(key) + ": " + fmt2(ov) + " -> " +
                    fmt2(nv) + (breach ? " (BREACH)\n" : "\n");
      }
    };
    for (const auto* key : kGatedCounters) emit_counter(key, true);
    emit_counter("faults_injected", false);
    cells_js += "],\n";

    // Profile divergence OLD-vs-NEW (merged fault profiles), when both
    // manifests carry a profiles section for this cell. Informational
    // ranking — the derived metrics and counters are the gate.
    const auto* op = profiles_entry(*oldv, name);
    const auto* np = profiles_entry(*newv, name);
    cells_js += " \"profile_divergence\": ";
    if (op != nullptr && np != nullptr) {
      const auto base = profile_from(op->find("faults"));
      const auto cur = profile_from(np->find("faults"));
      const auto div = obs::profile_divergence(base, cur);
      cells_js += div.to_json(opt.top_n);
      if (div.score > 0) {
        cell_txt += "  profile divergence: " + fmt2(div.score);
        if (!div.deltas.empty()) {
          cell_txt += " (top: " + div.deltas.front().name + " " +
                      fmt2(div.deltas.front().delta * 100) + "pp)";
        }
        cell_txt += "\n";
      }
    } else {
      cells_js += "null";
    }
    cells_js += "}";
    if (!cell_txt.empty()) txt += name + "\n" + cell_txt;
  }
  cells_js += first_cell ? "],\n" : "\n],\n";

  js += cells_js;
  js += "\"missing_cells\": [";
  for (std::size_t i = 0; i < missing.size(); ++i) {
    js += (i == 0 ? "\"" : ", \"") + obs::json::escape(missing[i]) + "\"";
  }
  js += "],\n\"added_cells\": [";
  for (std::size_t i = 0; i < added.size(); ++i) {
    js += (i == 0 ? "\"" : ", \"") + obs::json::escape(added[i]) + "\"";
  }
  js += "],\n";
  js += "\"breached\": " + std::string(d.breached ? "true" : "false") + "\n}\n";
  d.json = js;

  for (const auto& name : missing) txt += "missing cell: " + name + "\n";
  for (const auto& name : added) txt += "added cell: " + name + "\n";
  if (txt.empty()) txt = "no drift\n";
  d.text = txt;
  return d;
}

}  // namespace gf::depbench
