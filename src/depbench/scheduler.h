// Deterministic work-stealing campaign scheduler with fault-granular
// chunking.
//
// The campaign runner used to fan a *static* (cell, task, shard) slot grid
// across the worker pool: every shard was fixed up front, so workers sat
// idle while the unlucky one drained its worst-case faults (ZOFI's
// campaign-throughput argument, inverted: the tail dominates wall-clock).
// This module replaces the grid with two orthogonal pieces:
//
//   1. A cost model + chunk planner that decomposes one iteration's fault
//      schedule into contiguous *chunks* of roughly equal estimated cost —
//      expensive fault ranges get small chunks, cheap ranges large ones —
//      fed by the profiler's API-usage shares and (when available) measured
//      activation traces from src/trace (the ProFIPy feedback loop).
//   2. A work-stealing executor: per-worker deques seeded with a
//      deterministic LPT partition of the chunks; a worker that drains its
//      own deque steals half of the most-loaded victim's remainder. Chunks
//      are coarse (milliseconds+), so the deques are tiny mutex-guarded
//      rings rather than lock-free Chase-Lev arrays — measured, the lock
//      cost is noise at this granularity.
//
// Determinism contract: the executor never influences *what* a unit
// computes, only *when and where* it runs. Campaign results land in
// preallocated per-fault slots and every fault run is a pure function of
// (campaign seed, cell, fault index), so the merged artifacts are
// byte-identical for any worker count, any chunk size and any steal
// interleaving. Scheduler *performance* telemetry (per-worker utilization,
// steal counts) is inherently wall-clock-coupled and therefore lives in
// SchedStats — outside the deterministic registry/journal artifacts, like
// TaskObs::wall_*.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "depbench/profiler.h"
#include "swfit/faultload.h"
#include "trace/activation.h"

namespace gf::depbench {

/// One schedulable unit (a fault chunk or a baseline run). `run` must be
/// safe to execute on any worker thread and must only write state owned by
/// the unit (the runner's preallocated slots).
struct WorkUnit {
  std::function<void()> run;
  double cost = 1.0;  ///< estimated relative cost (LPT + victim selection)
};

/// Per-worker execution telemetry.
struct WorkerStats {
  std::uint64_t units = 0;           ///< units this worker executed
  std::uint64_t stolen_units = 0;    ///< units it obtained by stealing
  std::uint64_t steal_attempts = 0;  ///< victim scans (successful or not)
  std::uint64_t steal_batches = 0;   ///< successful steal operations
  double busy_us = 0;                ///< wall time spent inside unit runs
  /// Thread-CPU time inside unit runs. Unlike busy_us this excludes time the
  /// OS deschedules the worker, so it stays meaningful when the host has
  /// fewer cores than workers (CI boxes): max over workers is the makespan
  /// the schedule would have on >= jobs dedicated cores.
  double cpu_us = 0;
  double est_cost = 0;               ///< summed estimated cost executed
};

/// Whole-run scheduler telemetry. Wall-clock-coupled by nature: this is the
/// one campaign output that is *not* byte-identical across runs, and it is
/// kept out of the deterministic artifacts for exactly that reason.
struct SchedStats {
  std::vector<WorkerStats> workers;
  double wall_us = 0;
  std::uint64_t total_units = 0;
  bool steal = true;

  /// Mean busy share per worker (1.0 = no idle tails anywhere).
  double utilization() const noexcept;
  /// Max worker busy time over mean busy time (1.0 = perfectly balanced).
  double imbalance() const noexcept;
  /// Schedule makespan on dedicated cores: the largest per-worker thread-CPU
  /// total. Host-load-independent — the quantity BM_CampaignSteal compares.
  double makespan_cpu_us() const noexcept;
  std::uint64_t steals() const noexcept;
  std::uint64_t stolen() const noexcept;
  /// Canonical JSON ("genfault-sched/1") for --sched-json / BENCH_sched.json.
  std::string to_json() const;
};

struct SchedOptions {
  std::size_t jobs = 1;
  /// Work stealing on (LPT seeding + steal-half). Off = the static sharder:
  /// contiguous block partition of the unit list, no rebalancing — kept as
  /// the A/B baseline (BM_CampaignSteal) and reachable via --no-steal.
  bool steal = true;
  /// Seed every unit to worker 0 (forces the other workers to steal their
  /// entire share) — test hook for the forced-steal stress test.
  bool seed_single_worker = false;
};

/// Executes every unit exactly once across `opt.jobs` workers and returns
/// the telemetry. Rethrows the first unit exception after the pool joins.
SchedStats run_units(std::vector<WorkUnit> units, const SchedOptions& opt);

// ---------------------------------------------------------------------------
// Cost model + chunk planner
// ---------------------------------------------------------------------------

/// Inputs the fault cost model may draw on; both optional. With neither, the
/// estimate falls back to a per-fault-type activation prior.
struct FaultCostModel {
  /// Profiling-phase API-usage shares (depbench::Profiler): faults in
  /// functions the workload hammers are likely to activate.
  const ApiProfile* profile = nullptr;
  /// Measured activation traces from a previous campaign or iteration
  /// (src/trace): the strongest signal — per-fault activation is observed,
  /// not estimated.
  const std::vector<trace::ActivationRecord>* traces = nullptr;
};

/// Estimated relative wall cost of one fault's exposure window, per fault.
/// 1.0 = a fully healthy (never-activated) window, which in this substrate
/// is the *expensive* case: the SUB serves the whole exposure at full rate,
/// so the simulator executes the most client ops and VM instructions. A
/// fault that kills or hangs the server collapses the window's op count
/// (timeouts and fast-fails carry no VM work), making it cheap in wall
/// time. The estimates only steer chunk sizing and LPT/victim order — a
/// wrong estimate costs balance, never correctness.
std::vector<double> estimate_fault_costs(const swfit::Faultload& fl,
                                         const FaultCostModel& model);

/// One contiguous chunk of fault-schedule positions.
struct Chunk {
  std::size_t first = 0;  ///< first schedule position
  std::size_t count = 0;  ///< positions covered
  double cost = 0;        ///< summed estimated cost
};

/// Greedy cost-balanced chunking of `position_costs` (one entry per
/// schedule position): accumulate positions until a chunk holds roughly
/// total/(jobs * kChunksPerWorker) estimated cost, clamped to
/// [1, kMaxChunkFaults] positions. `chunk_override` > 0 forces exactly that
/// many positions per chunk (the --chunk flag); `chunk_override` < 0 asks
/// for -chunk_override equal chunks (the deprecated --shards alias).
std::vector<Chunk> plan_chunks(const std::vector<double>& position_costs,
                               std::size_t jobs, int chunk_override);

/// Chunk-plan knobs (exposed for tests; see plan_chunks).
inline constexpr std::size_t kChunksPerWorker = 8;
inline constexpr std::size_t kMaxChunkFaults = 64;

}  // namespace gf::depbench
