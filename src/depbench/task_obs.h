// Per-task observability bundle.
//
// Each campaign shard task owns one TaskObs — its private metrics registry,
// OS-API sink and event journal — so the hot path never synchronizes. The
// runner merges the per-task bundles at the campaign join in slot order,
// which (together with the canonical renderings in src/obs) makes the merged
// artifacts byte-identical for any --jobs.
#pragma once

#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace gf::depbench {

struct TaskObs {
  obs::Registry metrics;
  obs::ApiMetrics api;
  obs::Journal journal;
  /// Per-run cycle profile (empty unless the campaign runs with profiling
  /// on); attributed to functions by the controller at harvest.
  obs::Profile profile;
  /// Host wall-clock task bounds relative to campaign start, stamped by the
  /// runner (Chrome trace host view only — never merged into the
  /// deterministic artifacts).
  double wall_start_us = 0;
  double wall_end_us = 0;
};

}  // namespace gf::depbench
