// Campaign report generator: machine-readable manifest + human-readable
// HTML, both derived from the same merged results and obs artifacts.
//
// The manifest (schema "genfault-campaign/1") carries the Table 5 / Fig 5
// results next to the merged metrics registry so a single JSON file fully
// describes a campaign run; the HTML report renders the same data
// self-contained (no external assets) with per-cell drill-down. Rendering is
// canonical (fixed key order, fixed number formatting), so equal campaigns
// produce byte-identical artifacts.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "depbench/runner.h"

namespace gf::depbench {

/// JSON manifest of a whole campaign: options, per-cell results (baseline,
/// iterations, derived §3.2 metrics), and — when `obs` is non-null — the
/// merged metrics registry. Validated by tools/json_check --schema manifest.
std::string campaign_manifest_json(const std::vector<ExperimentCell>& cells,
                                   const RunnerOptions& opt,
                                   const CampaignObs* obs);

/// Self-contained HTML report: Table 5 per cell with <details> drill-down
/// into every iteration and the top metrics, plus the Fig 5 relative bars.
std::string campaign_html_report(const std::vector<ExperimentCell>& cells,
                                 const RunnerOptions& opt,
                                 const CampaignObs* obs);

/// Flushes every task journal as JSONL, in slot order (track =
/// "<cell>/<label>") — byte-identical for any --jobs.
void write_campaign_journal(std::ostream& os, const CampaignObs& obs);

/// Chrome trace-event JSON of the whole campaign: shard tasks on host
/// wall-clock (pid 1) + per-task journals on VM virtual time (pid 2).
std::string campaign_chrome_trace(const CampaignObs& obs);

}  // namespace gf::depbench
