// Campaign report generator: machine-readable manifest + human-readable
// HTML, both derived from the same merged results and obs artifacts.
//
// The manifest (schema "genfault-campaign/1") carries the Table 5 / Fig 5
// results next to the merged metrics registry so a single JSON file fully
// describes a campaign run; the HTML report renders the same data
// self-contained (no external assets) with per-cell drill-down. Rendering is
// canonical (fixed key order, fixed number formatting), so equal campaigns
// produce byte-identical artifacts.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "depbench/runner.h"

namespace gf::depbench {

/// JSON manifest of a whole campaign: options, per-cell results (baseline,
/// iterations, derived §3.2 metrics), and — when `obs` is non-null — the
/// merged metrics registry. Validated by tools/json_check --schema manifest.
std::string campaign_manifest_json(const std::vector<ExperimentCell>& cells,
                                   const RunnerOptions& opt,
                                   const CampaignObs* obs);

/// Self-contained HTML report: Table 5 per cell with <details> drill-down
/// into every iteration and the top metrics, plus the Fig 5 relative bars.
std::string campaign_html_report(const std::vector<ExperimentCell>& cells,
                                 const RunnerOptions& opt,
                                 const CampaignObs* obs);

/// Flushes every task journal as JSONL, in slot order (track =
/// "<cell>/<label>") — byte-identical for any --jobs.
void write_campaign_journal(std::ostream& os, const CampaignObs& obs);

/// One cell's profiles, collected from the task slots in slot order:
/// the baseline run's profile, the merge of every fault run's profile, and
/// the per-run profiles themselves (fault runs only, slot order).
struct CellProfiles {
  std::string cell;  ///< "VOS-2000/apex"
  obs::Profile baseline;
  obs::Profile faults;  ///< merged over all fault runs of the cell
  std::vector<std::pair<std::string, obs::Profile>> runs;  ///< label, profile
};

/// Groups the campaign's per-task profiles by cell, in slot order. Empty
/// when the campaign ran without profiling (no slot carries a stride).
std::vector<CellProfiles> collect_profiles(const CampaignObs& obs);

/// JSON profile artifact (schema "genfault-profile/1"): per cell the
/// baseline profile, the merged fault profile, their differential
/// (divergence score + ranked per-function share deltas), and every fault
/// run's profile with its own differential against the baseline. Canonical
/// rendering — byte-identical for any scheduling/fusion/store-hit pattern.
std::string campaign_profile_json(const std::vector<ExperimentCell>& cells,
                                  const RunnerOptions& opt,
                                  const CampaignObs& obs);

/// Collapsed-stack flamegraph of the whole campaign (one line per
/// (cell, run, function): "cell;label;function N"), in slot order —
/// feedable straight into flamegraph.pl / speedscope.
std::string campaign_flamegraph(const CampaignObs& obs);

/// Chrome trace-event JSON of the whole campaign: shard tasks on host
/// wall-clock (pid 1) + per-task journals on VM virtual time (pid 2).
std::string campaign_chrome_trace(const CampaignObs& obs);

}  // namespace gf::depbench
