#include "depbench/report.h"

#include <sstream>

#include "util/table.h"

namespace gf::depbench {

AvgCounters average_counters(const std::vector<IterationResult>& iters) {
  AvgCounters avg;
  if (iters.empty()) return avg;
  for (const auto& it : iters) {
    avg.mis += it.counters.mis;
    avg.kns += it.counters.kns;
    avg.kcp += it.counters.kcp;
    avg.self_restarts += it.counters.self_restarts;
  }
  const auto n = static_cast<double>(iters.size());
  avg.mis /= n;
  avg.kns /= n;
  avg.kcp /= n;
  avg.self_restarts /= n;
  return avg;
}

spec::WindowMetrics average_iteration_metrics(
    const std::vector<IterationResult>& iters) {
  std::vector<spec::WindowMetrics> ms;
  ms.reserve(iters.size());
  for (const auto& it : iters) ms.push_back(it.metrics);
  return spec::average_metrics(ms);
}

std::vector<trace::ActivationRecord> collect_activations(
    const ExperimentCell& cell) {
  std::vector<trace::ActivationRecord> all;
  for (const auto& it : cell.iterations) {
    all.insert(all.end(), it.activations.begin(), it.activations.end());
  }
  return all;
}

DependabilityMetrics derive_metrics(const ExperimentCell& cell) {
  DependabilityMetrics d;
  const auto avg = average_iteration_metrics(cell.iterations);
  const auto counters = average_counters(cell.iterations);
  d.spcf = avg.spc;
  d.thrf = avg.thr;
  d.rtmf = avg.rtm_ms;
  d.erf_pct = avg.er_pct;
  d.admf = counters.admf();
  d.spc_rel = cell.baseline.spc > 0
                  ? static_cast<double>(avg.spc) / cell.baseline.spc
                  : 0.0;
  d.thr_rel = cell.baseline.thr > 0 ? avg.thr / cell.baseline.thr : 0.0;
  return d;
}

std::string render_table5_cell(const ExperimentCell& cell) {
  util::Table t({"", "SPC", "THR", "RTM", "ER%", "MIS", "KCP", "KNS"});
  auto row = [&](const std::string& label, const spec::WindowMetrics& m,
                 double mis, double kcp, double kns) {
    t.row()
        .cell(label)
        .cell(static_cast<long long>(m.spc))
        .cell(m.thr, 1)
        .cell(m.rtm_ms, 1)
        .cell(m.er_pct, 1)
        .cell(mis, 0)
        .cell(kcp, 0)
        .cell(kns, 0);
  };
  row("Baseline Perf.", cell.baseline, 0, 0, 0);
  for (std::size_t i = 0; i < cell.iterations.size(); ++i) {
    const auto& it = cell.iterations[i];
    row("Iteration " + std::to_string(i + 1), it.metrics, it.counters.mis,
        it.counters.kcp, it.counters.kns);
  }
  const auto avg = average_iteration_metrics(cell.iterations);
  const auto counters = average_counters(cell.iterations);
  t.row()
      .cell("Average (all iter)")
      .cell(static_cast<long long>(avg.spc))
      .cell(avg.thr, 1)
      .cell(avg.rtm_ms, 1)
      .cell(avg.er_pct, 1)
      .cell(counters.mis, 1)
      .cell(counters.kcp, 1)
      .cell(counters.kns, 1);

  std::ostringstream out;
  out << "B.T. = " << cell.server_name << " on " << cell.os_name << "\n"
      << t.to_string();
  return out.str();
}

std::string render_fig5(const std::vector<ExperimentCell>& cells) {
  std::ostringstream out;
  out << "Figure 5 — behaviour of the web servers in the presence of software "
         "faults\n\n";

  auto bar_line = [&](const std::string& label, double value, double max,
                      const std::string& unit) {
    out << "  " << label;
    if (label.size() < 26) out << std::string(26 - label.size(), ' ');
    out << "|" << util::bar(value, max) << "| " << util::fmt(value, 1) << unit
        << "\n";
  };

  for (const auto& cell : cells) {
    const auto d = derive_metrics(cell);
    out << cell.server_name << " on " << cell.os_name << ":\n";
    bar_line("SPC  baseline", cell.baseline.spc, 40, "");
    bar_line("SPCf with faults", d.spcf, 40, "");
    bar_line("THR  baseline (ops/s)", cell.baseline.thr, 130, "");
    bar_line("THRf with faults", d.thrf, 130, "");
    bar_line("RTM  baseline (ms)", cell.baseline.rtm_ms, 500, "");
    bar_line("RTMf with faults", d.rtmf, 500, "");
    bar_line("ER%f", d.erf_pct, 30, "%");
    bar_line("ADMf (interventions)", d.admf, 250, "");
    out << "\n";
  }
  return out.str();
}

}  // namespace gf::depbench
