// Report layer: aggregates iterations into the paper's Table 5 rows and the
// Figure 5 comparison series (dependability metrics of §3.2).
#pragma once

#include <string>
#include <vector>

#include "depbench/controller.h"

namespace gf::depbench {

/// All results for one (OS, server) pair.
struct ExperimentCell {
  std::string os_name;
  std::string server_name;
  spec::WindowMetrics baseline;  ///< injector-in-profile-mode run
  std::vector<IterationResult> iterations;
};

/// Averages counters over iterations (real-valued, as in the paper).
struct AvgCounters {
  double mis = 0, kns = 0, kcp = 0, self_restarts = 0;
  double admf() const noexcept { return mis + kns + kcp; }
};

AvgCounters average_counters(const std::vector<IterationResult>& iters);
spec::WindowMetrics average_iteration_metrics(
    const std::vector<IterationResult>& iters);

/// The paper's §3.2 dependability metrics, derived per cell.
struct DependabilityMetrics {
  double spcf = 0;      ///< SPC under faults
  double thrf = 0;      ///< THR under faults
  double rtmf = 0;      ///< RTM under faults
  double erf_pct = 0;   ///< ER% under faults
  double admf = 0;      ///< administrator interventions
  double spc_rel = 0;   ///< SPCf / baseline SPC (performance retention)
  double thr_rel = 0;   ///< THRf / baseline THR
};

DependabilityMetrics derive_metrics(const ExperimentCell& cell);

/// Flattens a cell's activation records across iterations (iteration-major,
/// each iteration already sorted by fault index).
std::vector<trace::ActivationRecord> collect_activations(
    const ExperimentCell& cell);

/// Renders the Table 5 block for one cell (baseline + iterations + average).
std::string render_table5_cell(const ExperimentCell& cell);

/// Renders the Figure 5 comparison (bars) for a set of cells.
std::string render_fig5(const std::vector<ExperimentCell>& cells);

}  // namespace gf::depbench
