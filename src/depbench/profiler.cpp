#include "depbench/profiler.h"

#include "web/server.h"

namespace gf::depbench {

std::vector<std::string> ApiProfile::relevant_functions(double min_avg_pct) const {
  std::vector<std::string> out;
  for (const auto& fn : os::api_functions()) {
    bool used_by_all = !columns.empty();
    for (const auto& col : columns) {
      const auto it = col.pct.find(fn.name);
      if (it == col.pct.end() || it->second <= 0.0) {
        used_by_all = false;
        break;
      }
    }
    if (used_by_all && average_pct(fn.name) >= min_avg_pct) {
      out.emplace_back(fn.name);
    }
  }
  return out;
}

double ApiProfile::average_pct(const std::string& fn) const {
  if (columns.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& col : columns) {
    const auto it = col.pct.find(fn);
    if (it != col.pct.end()) sum += it->second;
  }
  return sum / static_cast<double>(columns.size());
}

double ApiProfile::total_coverage(double min_avg_pct) const {
  double sum = 0.0;
  for (const auto& fn : relevant_functions(min_avg_pct)) sum += average_pct(fn);
  return sum;
}

ApiProfile Profiler::profile(os::OsVersion version,
                             const std::vector<std::string>& server_names) const {
  ApiProfile profile;
  for (const auto& name : server_names) {
    os::Kernel kernel(version);
    os::OsApi api(kernel);
    spec::Fileset fileset(kernel.disk());
    spec::WorkloadGenerator gen(fileset, cfg_.seed);

    std::map<std::string, std::uint64_t> counts;
    std::uint64_t total = 0;
    api.set_call_hook([&](const std::string& fn) {
      ++counts[fn];
      ++total;
    });

    auto server = web::make_server(name, api);
    if (!server->start()) continue;

    spec::ClientConfig ccfg;
    ccfg.connections = cfg_.connections;
    spec::SpecClient client(ccfg);
    client.run_window(*server, gen, 0, cfg_.window_ms);
    server->stop();

    ProfileColumn col;
    col.server = name;
    col.total_calls = total;
    if (total > 0) {
      for (const auto& [fn, n] : counts) {
        col.pct[fn] = 100.0 * static_cast<double>(n) / static_cast<double>(total);
      }
    }
    profile.columns.push_back(std::move(col));
  }
  return profile;
}

}  // namespace gf::depbench
