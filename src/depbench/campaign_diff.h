// Cross-campaign comparator: the dependability regression gate.
//
// Diffs two "genfault-campaign/1" manifests cell by cell: derived §3.2
// metric drift (SPCf, THRf, RTMf, ERf, ADMf, relative retention), failure-
// mode counter drift (MIS/KNS/KCP/self-restarts summed over iterations),
// and — when both campaigns were profiled — the divergence between their
// merged fault cycle profiles, ranked per cell. Any drift beyond the
// threshold marks the diff breached; `gfbench diff` turns that into a
// nonzero exit, so CI can gate on "did this change move the benchmark".
//
// A campaign self-diff is exactly zero drift everywhere (manifests are
// canonical renderings), so the gate never fires on a byte-identical rerun.
#pragma once

#include <cstddef>
#include <string>

namespace gf::depbench {

struct DiffOptions {
  /// Relative drift (percent) beyond which a metric counts as a breach.
  double threshold_pct = 10.0;
  /// Ranked entries emitted per list (profile deltas per cell).
  std::size_t top_n = 10;
};

struct CampaignDiff {
  bool ok = false;        ///< both manifests parsed as genfault-campaign/1
  bool breached = false;  ///< some drift exceeded the threshold
  std::string error;      ///< parse/shape diagnostics when !ok
  std::string text;       ///< human-readable drift report
  std::string json;       ///< canonical "genfault-diff/1" document
};

/// Compares two manifest documents (raw JSON text). Deterministic: the
/// report and JSON depend only on the two inputs and the options.
CampaignDiff diff_campaigns(const std::string& old_manifest,
                            const std::string& new_manifest,
                            const DiffOptions& opt = {});

}  // namespace gf::depbench
