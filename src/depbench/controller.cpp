#include "depbench/controller.h"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <stdexcept>

#include "trace/probe.h"
#include "trace/tracer.h"
#include "util/log.h"

namespace gf::depbench {

Controller::Controller(os::OsVersion version, const std::string& server_name,
                       ControllerConfig cfg)
    : cfg_(cfg),
      kernel_(std::make_unique<os::Kernel>(version)),
      api_(std::make_unique<os::OsApi>(*kernel_)),
      fileset_(std::make_unique<spec::Fileset>(kernel_->disk())),
      server_(web::make_server(server_name, *api_)) {
  cfg_.client.connections = cfg_.connections;
  if (cfg_.obs != nullptr) api_->set_metrics(&cfg_.obs->api);
}

Controller::Controller(std::shared_ptr<const snapshot::WarmSnapshot> snap,
                       ControllerConfig cfg)
    : cfg_(cfg),
      kernel_(std::make_unique<os::Kernel>(snap->kernel)),
      api_(std::make_unique<os::OsApi>(*kernel_)),
      fileset_(std::make_unique<spec::Fileset>(kernel_->disk(), snap->fileset,
                                               /*populate=*/false)),
      server_(web::make_server(snap->server_name, *api_)),
      warm_started_(true) {
  cfg_.client.connections = cfg_.connections;
  server_->restore_process(snap->server);
  if (cfg_.obs != nullptr) api_->set_metrics(&cfg_.obs->api);
}

void Controller::bring_up() {
  if (warm_started_) {
    // The snapshot was captured exactly after this reboot + start + warm-up
    // sequence; repeating it would double-count boot cycles and diverge
    // from cold.
    warm_started_ = false;
    return;
  }
  kernel_->reboot();
  if (!server_->start()) {
    throw std::runtime_error("server failed to start on a healthy OS");
  }
  // Bring-up ends with the server *warmed*, not merely started: every run —
  // baseline, profile, or a single-fault exposure — measures a SUB in its
  // steady serving state, the state the paper's long sequential slots put
  // it in before most injections.
  spec::warm_server(*server_, *fileset_);
}

void Controller::obs_begin_run() {
  if (cfg_.obs == nullptr) return;
  obs_vm_base_ = kernel_->machine().dispatch_stats();
  obs_kernel_base_ = kernel_->counters();
  cfg_.obs->journal.instant("bring_up", 0, kernel_->machine().total_cycles());
}

void Controller::obs_end_run(const spec::WindowMetrics& m) {
  if (cfg_.obs == nullptr) return;
  auto& r = cfg_.obs->metrics;
  // Harvest the hot layers' raw counters as deltas over this run. The keys
  // are added unconditionally (delta 0 included) so the registry's key set
  // — and therefore its canonical rendering — is stable.
  const auto& vs = kernel_->machine().dispatch_stats();
  r.add("vm.instructions", vs.instructions - obs_vm_base_.instructions);
  r.add("vm.runs", vs.runs - obs_vm_base_.runs);
  for (std::size_t i = 1; i < vm::kNumTraps; ++i) {
    r.add("vm.trap." + std::string(vm::trap_name(static_cast<vm::Trap>(i))),
          vs.traps[i] - obs_vm_base_.traps[i]);
  }
  const auto& kc = kernel_->counters();
  r.add("os.reboots", kc.reboots - obs_kernel_base_.reboots);
  r.add("os.reboots.cold", kc.cold_boots - obs_kernel_base_.cold_boots);
  r.add("os.reboots.replay", kc.replay_boots - obs_kernel_base_.replay_boots);
  r.add("os.syscalls", kc.syscalls - obs_kernel_base_.syscalls);
  r.add("os.code_syncs", kc.code_syncs - obs_kernel_base_.code_syncs);
  r.add("client.ops", m.ops);
  r.add("client.errors", m.errors);
  r.add("client.bytes", m.bytes);
  // End-of-run kernel health: free-list depth as a gauge plus a violation
  // counter (a non-zero value here means latent corruption survived the run).
  const auto inv = trace::snapshot_invariants(*kernel_);
  r.gauge("kernel.heap.free_nodes", inv.heap_free_nodes);
  if (!inv.heap_ok || !inv.handles_ok) r.add("kernel.invariant_violations");
}

void Controller::profile_begin() {
  if (cfg_.profile_stride == 0 || cfg_.obs == nullptr) return;
  kernel_->machine().arm_sampler(cfg_.profile_stride);
}

void Controller::profile_end() {
  if (cfg_.profile_stride == 0 || cfg_.obs == nullptr) return;
  auto& m = kernel_->machine();
  auto& p = cfg_.obs->profile;
  p.stride = cfg_.profile_stride;
  // Attribute each sampled pc to the function containing it in the pristine
  // image (injection patches never move symbol boundaries). Samples outside
  // any symbol — holes, mutated control flow into padding — get a stable
  // hex label so nothing is silently dropped and totals stay exact.
  const auto& img = kernel_->pristine_image();
  for (const auto& [pc, n] : m.samples()) {
    if (const auto* sym = img.symbol_at(pc); sym != nullptr) {
      p.add(sym->name, n);
    } else {
      char buf[24];
      std::snprintf(buf, sizeof buf, "0x%llx",
                    static_cast<unsigned long long>(pc));
      p.add(buf, n);
    }
  }
  m.disarm_sampler();
}

spec::WindowMetrics Controller::run_baseline(double duration_ms,
                                             std::uint64_t seed) {
  obs_begin_run();
  bring_up();
  profile_begin();
  if (cfg_.obs != nullptr) {
    cfg_.obs->journal.begin("baseline", 0, kernel_->machine().total_cycles());
  }
  spec::WorkloadGenerator gen(*fileset_, seed);
  spec::SpecClient client(cfg_.client);
  auto m = client.run_window(*server_, gen, 0, duration_ms);
  server_->stop();
  if (cfg_.obs != nullptr) {
    cfg_.obs->journal.end("baseline", duration_ms,
                          kernel_->machine().total_cycles());
  }
  profile_end();
  obs_end_run(m);
  return m;
}

spec::WindowMetrics Controller::run_profile_mode(const swfit::Faultload& fl,
                                                 double duration_ms,
                                                 std::uint64_t seed) {
  obs_begin_run();
  bring_up();
  profile_begin();
  if (cfg_.obs != nullptr) {
    cfg_.obs->journal.begin("profile", 0, kernel_->machine().total_cycles());
  }
  spec::WorkloadGenerator gen(*fileset_, seed);
  // The injector runs co-located with the server (paper Fig. 3); its
  // schedule bookkeeping and monitor polling steal a small CPU share,
  // modeled as extra per-operation service time.
  auto ccfg = cfg_.client;
  ccfg.base_latency_ms += 0.1;
  spec::SpecClient client(ccfg);

  // Profile mode performs the complete injection workflow against the
  // active image — schedule walking, original-window verification, monitor
  // polling — without patching. Its cost is the injector's intrusiveness.
  std::size_t fault_index = 0;
  double next_swap = 0;
  const double exposure = cfg_.fault_exposure_ms * cfg_.time_scale;
  std::uint64_t window_check = 0;
  auto tick = [&](double now) {
    if (now >= next_swap && !fl.faults.empty()) {
      const auto& f = fl.faults[fault_index++ % fl.faults.size()];
      // Verify the target window bytes as a real injection would: one
      // ranged access over the whole window (the injector's verification
      // path) instead of per-instruction at() decodes.
      const auto* win =
          kernel_->active_image().window(f.addr, f.window() * isa::kInstrSize);
      if (win != nullptr) window_check ^= win[0];
      next_swap = now + exposure;
    }
    (void)server_->state();  // monitor poll
  };

  auto m = client.run_window(*server_, gen, 0, duration_ms, tick);
  (void)window_check;
  server_->stop();
  if (cfg_.obs != nullptr) {
    cfg_.obs->journal.end("profile", duration_ms,
                          kernel_->machine().total_cycles());
  }
  profile_end();
  obs_end_run(m);
  return m;
}

IterationResult Controller::run_iteration(const swfit::Faultload& fl,
                                          std::uint64_t seed) {
  if (!fl.matches(kernel_->pristine_image())) {
    throw std::invalid_argument(
        "faultload was generated for a different OS build");
  }
  obs_begin_run();
  bring_up();
  profile_begin();

  spec::WorkloadGenerator gen(*fileset_, seed);
  const auto stride = static_cast<std::size_t>(std::max(1, cfg_.fault_stride));
  const auto offset =
      static_cast<std::size_t>(std::max(0, cfg_.fault_offset));
  const auto remaining =
      offset < fl.faults.size() ? fl.faults.size() - offset : 0;
  const auto total_faults = (remaining + stride - 1) / stride;
  auto ccfg = cfg_.client;
  // SPECWeb assesses conformance per batch; tie the batch length to the
  // fault schedule so scaled runs keep the same batches-per-fault ratio.
  // A single-fault run (the work-stealing runner's unit of decomposition)
  // gets a batch that exactly spans its one exposure, so conformance is
  // normalized over served time instead of a half-empty double window.
  ccfg.spc_batch_ms =
      (total_faults == 1 ? 1 : 2) * cfg_.fault_exposure_ms * cfg_.time_scale;
  spec::SpecClient client(ccfg);
  swfit::Injector injector(*kernel_);
  CampaignCounters counters;

  // Journal plumbing: fault spans are opened at inject and closed wherever
  // the fault actually ends (scheduled swap, admin restart, iteration end).
  obs::Journal* jr = cfg_.obs != nullptr ? &cfg_.obs->journal : nullptr;
  auto cyc = [&] { return kernel_->machine().total_cycles(); };
  auto obs_fault_end = [&](double now) {
    if (jr != nullptr && injector.active()) jr->end("fault", now, cyc());
  };

  // Activation & propagation tracing: armed per fault, finished (probed +
  // classified) whenever the fault is removed, for whatever reason.
  std::optional<trace::FaultTracer> tracer;
  std::vector<trace::ActivationRecord> activations;
  std::uint64_t errors_at_begin = 0;
  if (cfg_.trace) {
    tracer.emplace(*kernel_);
    tracer->attach(*api_);
    tracer->set_probe_per_call(cfg_.trace_probe_per_call);
  }
  auto finish_fault = [&] {
    if (!tracer || !tracer->active()) return;
    // Client-visible error responses during the exposure are externally
    // observed failures (baseline ER% is zero). Server restarts reset the
    // stats counter, but every restart path already notes the failure.
    if (server_->stats().errors > errors_at_begin) {
      tracer->note_external_failure();
    }
    activations.push_back(tracer->end_fault());
  };

  // Monitor latencies shrink with the exposure so that scaled-down runs
  // keep the same downtime-to-exposure ratios as a full-length campaign.
  const double exposure = cfg_.fault_exposure_ms * cfg_.time_scale;
  const double detect = cfg_.detect_ms * cfg_.time_scale;
  const double restart_time = cfg_.admin_restart_ms * cfg_.time_scale;
  std::size_t next_fault = offset;
  double next_swap = 0;
  int injected_this_slot = 0;
  int self_restarts_this_fault = 0;

  // Monitor bookkeeping.
  double failure_noticed_at = -1;  ///< when the monitor saw the failure
  double server_up_at = -1;        ///< restart completion time

  auto begin_admin_restart = [&](double now) {
    finish_fault();
    obs_fault_end(now);
    injector.restore();  // the 10 s exposure of this fault effectively ends
    server_->stop();
    kernel_->reboot();   // administrator reboots the corrupted OS
    server_up_at = now + restart_time;
    if (jr != nullptr) jr->instant("admin_restart", now, cyc());
  };

  auto tick = [&](double now) {
    // 1. Finish a pending restart.
    if (server_up_at >= 0 && now >= server_up_at) {
      if (server_->state() == web::ServerState::kStopped) {
        if (server_->start()) {
          server_up_at = -1;
          if (jr != nullptr) jr->instant("server_up", now, cyc());
        } else {
          // OS still too broken to boot the server; administrator retries.
          kernel_->reboot();
          server_up_at = now + restart_time;
        }
      } else {
        server_up_at = -1;
      }
    }

    // 2. Fault schedule: swap the active fault every `exposure` ms.
    if (now >= next_swap) {
      finish_fault();
      obs_fault_end(now);
      injector.restore();
      self_restarts_this_fault = 0;
      // Slot boundary (paper Fig. 4): the SUB is reset between slots; this
      // scheduled maintenance is not an administrator intervention.
      if (injected_this_slot >= cfg_.faults_per_slot &&
          server_up_at < 0) {
        injected_this_slot = 0;
        server_->stop();
        kernel_->reboot();
        if (!server_->start()) {
          server_up_at = now + restart_time;  // retried in step 1
        }
        if (jr != nullptr) jr->instant("slot_reset", now, cyc());
      }
      if (next_fault < fl.faults.size()) {
        const auto& f = fl.faults[next_fault];
        if (!injector.inject(f)) {
          throw std::runtime_error("stale faultload: window mismatch");
        }
        if (tracer) {
          errors_at_begin = server_->stats().errors;
          tracer->begin_fault(static_cast<std::uint32_t>(next_fault), f);
        }
        if (jr != nullptr) {
          jr->begin("fault", now, cyc(),
                    "{\"index\": " + std::to_string(next_fault) +
                        ", \"type\": \"" +
                        std::string(swfit::fault_type_name(f.type)) +
                        "\", \"fn\": \"" + f.function + "\"}");
        }
        if (cfg_.progress != nullptr) cfg_.progress->add_faults(1);
        ++counters.faults_injected;
        ++injected_this_slot;
        next_fault += stride;
      }
      next_swap = now + exposure;
    }

    // 3. Monitor the BT. Detection takes `detect` ms from the first
    // observation of a failed state.
    const auto state = server_->state();
    if (state == web::ServerState::kRunning ||
        state == web::ServerState::kStopped) {
      failure_noticed_at = -1;
      return;
    }
    if (failure_noticed_at < 0) {
      failure_noticed_at = now;
      return;
    }
    if (now - failure_noticed_at < detect) return;
    failure_noticed_at = -1;

    // Any monitor intervention is an externally observed failure of the
    // fault currently under exposure.
    if (tracer) tracer->note_external_failure();
    switch (state) {
      case web::ServerState::kHung:
        ++counters.kns;  // killed: not responding to requests
        begin_admin_restart(now);
        break;
      case web::ServerState::kSpinning:
        ++counters.kcp;  // killed: hogging the CPU without service
        begin_admin_restart(now);
        break;
      case web::ServerState::kCrashed: {
        // The watchdog gets the first shot; a crash-loop within one fault
        // exposure exhausts its budget and needs the administrator.
        // The dying process releases its OS resources (heap, handles are
        // process-local state in VOS), so the respawned process starts
        // clean — only the injected code fault itself can persist.
        const bool budget_left =
            self_restarts_this_fault < cfg_.self_restart_budget;
        if (budget_left && server_->has_self_restart()) kernel_->reboot();
        if (budget_left && server_->try_self_restart()) {
          ++self_restarts_this_fault;
          ++counters.self_restarts;
          if (jr != nullptr) jr->instant("self_restart", now, cyc());
        } else {
          ++counters.mis;  // died and did not (or could not) self-restart
          begin_admin_restart(now);
        }
        break;
      }
      default:
        break;
    }
  };

  const double duration = static_cast<double>(total_faults) * exposure;
  // Narrative logging is debug-level; live campaign progress comes from the
  // rate-limited reporter (cfg_.progress) instead of per-iteration spam.
  GF_DEBUG() << "campaign iteration: " << server_->name() << " on "
             << os::os_version_name(kernel_->version()) << ", "
             << total_faults << " faults, " << duration / 1000 << " sim-s";
  if (jr != nullptr) {
    jr->begin("iteration", 0, cyc(),
              "{\"faults\": " + std::to_string(total_faults) + "}");
  }
  auto metrics = client.run_window(*server_, gen, 0, duration, tick);
  GF_DEBUG() << "iteration done: ops=" << metrics.ops
             << " er%=" << metrics.er_pct << " mis=" << counters.mis
             << " kns=" << counters.kns << " kcp=" << counters.kcp;

  finish_fault();
  obs_fault_end(duration);
  injector.restore();
  server_->stop();
  if (jr != nullptr) jr->end("iteration", duration, cyc());
  trace::sort_records(activations);
  if (cfg_.obs != nullptr) {
    auto& r = cfg_.obs->metrics;
    r.add("campaign.faults_injected",
          static_cast<std::uint64_t>(counters.faults_injected));
    r.add("campaign.mis", static_cast<std::uint64_t>(counters.mis));
    r.add("campaign.kns", static_cast<std::uint64_t>(counters.kns));
    r.add("campaign.kcp", static_cast<std::uint64_t>(counters.kcp));
    r.add("campaign.self_restarts",
          static_cast<std::uint64_t>(counters.self_restarts));
    r.add("inject.patches", injector.injections());
    r.add("inject.restores", injector.restores());
    r.add("inject.verifies", injector.verifies());
    r.add("inject.verify_failures", injector.verify_failures());
    trace::export_metrics(activations, r);
  }
  // Harvest (incl. the end-state invariant probe) before the scrub reboot
  // erases what the iteration did to the kernel.
  profile_end();
  obs_end_run(metrics);
  kernel_->reboot();

  IterationResult result;
  result.metrics = metrics;
  result.counters = counters;
  result.activations = std::move(activations);
  return result;
}

}  // namespace gf::depbench
