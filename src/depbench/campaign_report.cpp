#include "depbench/campaign_report.h"

#include <cstdio>
#include <ostream>

#include "obs/chrome_trace.h"
#include "obs/json.h"

namespace gf::depbench {

namespace {

using obs::json::escape;
using obs::json::number;

std::string window_json(const spec::WindowMetrics& m) {
  return "{\"duration_ms\": " + number(m.duration_ms) +
         ", \"ops\": " + std::to_string(m.ops) +
         ", \"errors\": " + std::to_string(m.errors) +
         ", \"bytes\": " + std::to_string(m.bytes) +
         ", \"thr\": " + number(m.thr) + ", \"rtm_ms\": " + number(m.rtm_ms) +
         ", \"er_pct\": " + number(m.er_pct) +
         ", \"spc\": " + std::to_string(m.spc) +
         ", \"cc_pct\": " + number(m.cc_pct) + "}";
}

std::string counters_json(const CampaignCounters& c) {
  return "{\"mis\": " + std::to_string(c.mis) +
         ", \"kns\": " + std::to_string(c.kns) +
         ", \"kcp\": " + std::to_string(c.kcp) +
         ", \"faults_injected\": " + std::to_string(c.faults_injected) +
         ", \"self_restarts\": " + std::to_string(c.self_restarts) + "}";
}

std::string derived_json(const DependabilityMetrics& d) {
  return "{\"spcf\": " + number(d.spcf) + ", \"thrf\": " + number(d.thrf) +
         ", \"rtmf\": " + number(d.rtmf) +
         ", \"erf_pct\": " + number(d.erf_pct) +
         ", \"admf\": " + number(d.admf) +
         ", \"spc_rel\": " + number(d.spc_rel) +
         ", \"thr_rel\": " + number(d.thr_rel) + "}";
}

// Only result-shaping options appear here: scheduling knobs (jobs, chunk,
// shards, steal) deliberately do not, so the manifest stays byte-identical
// for any worker count or chunk decomposition. profile_stride shapes the
// profiles section, hence its presence (0 = profiling off).
std::string options_json(const RunnerOptions& opt) {
  return "{\"iterations\": " + std::to_string(opt.iterations) +
         ", \"stride\": " + std::to_string(opt.stride) +
         ", \"time_scale\": " + number(opt.time_scale) +
         ", \"baseline_window_ms\": " + number(opt.baseline_window_ms) +
         ", \"seed\": " + std::to_string(opt.seed) +
         ", \"warm_boot\": " + (opt.warm_boot ? "true" : "false") +
         ", \"trace\": " + (opt.trace ? "true" : "false") +
         ", \"profile_stride\": " +
         std::to_string(opt.profile ? opt.profile_stride : 0) + "}";
}

// Minimal HTML escaping for the few strings we interpolate.
std::string html(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out += ch;
    }
  }
  return out;
}

std::string fmt2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

}  // namespace

std::string campaign_manifest_json(const std::vector<ExperimentCell>& cells,
                                   const RunnerOptions& opt,
                                   const CampaignObs* obs) {
  std::string out = "{\n\"schema\": \"genfault-campaign/1\",\n";
  out += "\"options\": " + options_json(opt) + ",\n";
  out += "\"cells\": [";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& cell = cells[i];
    out += i == 0 ? "\n" : ",\n";
    out += "{\"os\": \"" + escape(cell.os_name) + "\", \"server\": \"" +
           escape(cell.server_name) + "\",\n";
    out += " \"baseline\": " + window_json(cell.baseline) + ",\n";
    out += " \"iterations\": [";
    for (std::size_t it = 0; it < cell.iterations.size(); ++it) {
      out += it == 0 ? "\n" : ",\n";
      out += "  {\"metrics\": " + window_json(cell.iterations[it].metrics) +
             ", \"counters\": " + counters_json(cell.iterations[it].counters) +
             "}";
    }
    out += "],\n";
    out += " \"derived\": " + derived_json(derive_metrics(cell)) + "}";
  }
  out += "\n],\n";
  // Per-cell profile section (per-run drill-down lives in the
  // --profile-json artifact): the baseline and merged-fault profiles at
  // function granularity — enough for `gfbench diff` to compare campaigns —
  // plus the top share deltas of the fault-vs-baseline differential. Null
  // when the campaign ran unprofiled.
  out += "\"profiles\": ";
  const auto profiles =
      obs != nullptr ? collect_profiles(*obs) : std::vector<CellProfiles>{};
  if (profiles.empty()) {
    out += "null,\n";
  } else {
    out += "[";
    for (std::size_t i = 0; i < profiles.size(); ++i) {
      const auto& cp = profiles[i];
      out += i == 0 ? "\n" : ",\n";
      out += "{\"cell\": \"" + escape(cp.cell) +
             "\", \"baseline\": " + cp.baseline.to_json() +
             ", \"faults\": " + cp.faults.to_json() + ", \"divergence\": " +
             profile_divergence(cp.baseline, cp.faults).to_json(10) + "}";
    }
    out += "\n],\n";
  }
  out += "\"metrics\": ";
  out += obs != nullptr ? obs->metrics.to_json() : std::string("null\n");
  out += "}\n";
  return out;
}

std::string campaign_html_report(const std::vector<ExperimentCell>& cells,
                                 const RunnerOptions& opt,
                                 const CampaignObs* obs) {
  std::string out =
      "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n"
      "<title>genfault campaign report</title>\n"
      "<style>\n"
      "body{font:14px/1.4 system-ui,sans-serif;margin:2em;max-width:70em}\n"
      "table{border-collapse:collapse;margin:0.5em 0}\n"
      "td,th{border:1px solid #bbb;padding:0.25em 0.6em;text-align:right}\n"
      "th{background:#eee}td.l,th.l{text-align:left}\n"
      "details{margin:0.5em 0}summary{cursor:pointer;font-weight:600}\n"
      ".bar{background:#4a7;display:inline-block;height:0.8em}\n"
      "</style></head><body>\n"
      "<h1>Dependability benchmark report</h1>\n";
  // Scheduling knobs (jobs/chunk/shards) are omitted: the report must be
  // byte-identical for any decomposition of the same campaign.
  out += "<p>iterations=" + std::to_string(opt.iterations) +
         " stride=" + std::to_string(opt.stride) +
         " seed=" + std::to_string(opt.seed) +
         " time_scale=" + number(opt.time_scale) + "</p>\n";

  // Table 5: one row per cell, drill-down into iterations per cell.
  out +=
      "<h2>Results (Table 5)</h2>\n<table>\n"
      "<tr><th class=l>cell</th><th>SPCf</th><th>THRf</th><th>RTMf ms</th>"
      "<th>ERf %</th><th>ADMf</th><th>SPC rel</th><th>THR rel</th></tr>\n";
  for (const auto& cell : cells) {
    const auto d = derive_metrics(cell);
    out += "<tr><td class=l>" + html(cell.server_name) + " on " +
           html(cell.os_name) + "</td><td>" + fmt2(d.spcf) + "</td><td>" +
           fmt2(d.thrf) + "</td><td>" + fmt2(d.rtmf) + "</td><td>" +
           fmt2(d.erf_pct) + "</td><td>" + fmt2(d.admf) + "</td><td>" +
           fmt2(d.spc_rel) + "</td><td>" + fmt2(d.thr_rel) + "</td></tr>\n";
  }
  out += "</table>\n";

  // Fig 5: relative performance retention bars.
  out += "<h2>Relative performance under faults (Fig 5)</h2>\n";
  for (const auto& cell : cells) {
    const auto d = derive_metrics(cell);
    const int w = static_cast<int>(d.thr_rel * 300);
    out += "<div>" + html(cell.server_name) + " on " + html(cell.os_name) +
           ": <span class=bar style=\"width:" + std::to_string(w) +
           "px\"></span> " + fmt2(d.thr_rel * 100) + "%</div>\n";
  }

  // Per-cell drill-down.
  out += "<h2>Per-cell detail</h2>\n";
  for (const auto& cell : cells) {
    out += "<details><summary>" + html(cell.server_name) + " on " +
           html(cell.os_name) + "</summary>\n<table>\n"
           "<tr><th class=l>run</th><th>ops</th><th>THR</th><th>RTM ms</th>"
           "<th>ER %</th><th>SPC</th><th>MIS</th><th>KNS</th><th>KCP</th>"
           "<th>self-restarts</th><th>faults</th></tr>\n";
    auto row = [&](const std::string& name, const spec::WindowMetrics& m,
                   const CampaignCounters* c) {
      out += "<tr><td class=l>" + html(name) + "</td><td>" +
             std::to_string(m.ops) + "</td><td>" + fmt2(m.thr) + "</td><td>" +
             fmt2(m.rtm_ms) + "</td><td>" + fmt2(m.er_pct) + "</td><td>" +
             std::to_string(m.spc) + "</td>";
      if (c != nullptr) {
        out += "<td>" + std::to_string(c->mis) + "</td><td>" +
               std::to_string(c->kns) + "</td><td>" + std::to_string(c->kcp) +
               "</td><td>" + std::to_string(c->self_restarts) + "</td><td>" +
               std::to_string(c->faults_injected) + "</td>";
      } else {
        out += "<td>-</td><td>-</td><td>-</td><td>-</td><td>-</td>";
      }
      out += "</tr>\n";
    };
    row("baseline", cell.baseline, nullptr);
    for (std::size_t it = 0; it < cell.iterations.size(); ++it) {
      row("iteration " + std::to_string(it), cell.iterations[it].metrics,
          &cell.iterations[it].counters);
    }
    out += "</table>\n</details>\n";
  }

  // Cycle attribution: where each cell's execution went under faults vs its
  // baseline (top-10 share deltas of the differential profile), plus an
  // inline flame bar per function scaled to the faulty-run share.
  if (obs != nullptr) {
    const auto profiles = collect_profiles(*obs);
    if (!profiles.empty()) {
      out += "<h2>Cycle profiles (fault vs baseline)</h2>\n";
      for (const auto& cp : profiles) {
        const auto div = profile_divergence(cp.baseline, cp.faults);
        out += "<details><summary>" + html(cp.cell) + " &mdash; divergence " +
               fmt2(div.score) + "</summary>\n<table>\n"
               "<tr><th class=l>function</th><th>baseline %</th>"
               "<th>faulty %</th><th>&Delta; pp</th><th class=l></th></tr>\n";
        const std::size_t top = std::min<std::size_t>(10, div.deltas.size());
        for (std::size_t i = 0; i < top; ++i) {
          const auto& fd = div.deltas[i];
          const int w = static_cast<int>(fd.fault_share * 200);
          out += "<tr><td class=l>" + html(fd.name) + "</td><td>" +
                 fmt2(fd.base_share * 100) + "</td><td>" +
                 fmt2(fd.fault_share * 100) + "</td><td>" +
                 fmt2(fd.delta * 100) + "</td><td class=l><span class=bar "
                 "style=\"width:" + std::to_string(w) +
                 "px\"></span></td></tr>\n";
        }
        out += "</table>\n</details>\n";
      }
    }
  }

  // Merged metrics drill-down (counters only; histograms live in the JSON).
  if (obs != nullptr) {
    out += "<h2>Campaign metrics</h2>\n<details><summary>" +
           std::to_string(obs->metrics.counters().size()) +
           " counters</summary>\n<table>\n"
           "<tr><th class=l>counter</th><th>value</th></tr>\n";
    for (const auto& [name, v] : obs->metrics.counters()) {
      out += "<tr><td class=l>" + html(name) + "</td><td>" +
             std::to_string(v) + "</td></tr>\n";
    }
    out += "</table>\n</details>\n";
    out += "<details><summary>" +
           std::to_string(obs->metrics.histograms().size()) +
           " histograms</summary>\n<table>\n"
           "<tr><th class=l>histogram</th><th>count</th><th>mean</th>"
           "<th>min</th><th>max</th></tr>\n";
    for (const auto& [name, h] : obs->metrics.histograms()) {
      out += "<tr><td class=l>" + html(name) + "</td><td>" +
             std::to_string(h.count) + "</td><td>" + fmt2(h.mean()) +
             "</td><td>" + std::to_string(h.count > 0 ? h.min : 0) +
             "</td><td>" + std::to_string(h.max) + "</td></tr>\n";
    }
    out += "</table>\n</details>\n";
  }

  out += "</body></html>\n";
  return out;
}

std::vector<CellProfiles> collect_profiles(const CampaignObs& obs) {
  std::vector<CellProfiles> out;
  for (const auto& slot : obs.tasks) {
    if (slot.obs.profile.stride == 0) continue;  // profiling off / empty slot
    if (out.empty() || out.back().cell != slot.cell) {
      out.push_back({slot.cell, {}, {}, {}});
    }
    auto& cp = out.back();
    if (slot.label == "baseline") {
      cp.baseline.merge(slot.obs.profile);
    } else {
      cp.faults.merge(slot.obs.profile);
      cp.runs.emplace_back(slot.label, slot.obs.profile);
    }
  }
  return out;
}

std::string campaign_profile_json(const std::vector<ExperimentCell>& cells,
                                  const RunnerOptions& opt,
                                  const CampaignObs& obs) {
  (void)cells;
  std::string out = "{\n\"schema\": \"genfault-profile/1\",\n";
  out += "\"stride\": " +
         std::to_string(opt.profile ? opt.profile_stride : 0) + ",\n";
  out += "\"cells\": [";
  const auto profiles = collect_profiles(obs);
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const auto& cp = profiles[i];
    out += i == 0 ? "\n" : ",\n";
    out += "{\"cell\": \"" + escape(cp.cell) + "\",\n";
    out += " \"baseline\": " + cp.baseline.to_json() + ",\n";
    out += " \"faults\": " + cp.faults.to_json() + ",\n";
    out += " \"divergence\": " +
           profile_divergence(cp.baseline, cp.faults).to_json() + ",\n";
    out += " \"runs\": [";
    for (std::size_t k = 0; k < cp.runs.size(); ++k) {
      const auto& [label, prof] = cp.runs[k];
      out += k == 0 ? "\n" : ",\n";
      out += "  {\"label\": \"" + escape(label) +
             "\", \"profile\": " + prof.to_json() + ", \"divergence\": " +
             profile_divergence(cp.baseline, prof).to_json(10) + "}";
    }
    out += "]}";
  }
  out += "\n]\n}\n";
  return out;
}

std::string campaign_flamegraph(const CampaignObs& obs) {
  std::string out;
  for (const auto& slot : obs.tasks) {
    if (slot.obs.profile.stride == 0) continue;
    obs::append_collapsed(out, slot.cell + ";" + slot.label, slot.obs.profile);
  }
  return out;
}

void write_campaign_journal(std::ostream& os, const CampaignObs& obs) {
  for (const auto& slot : obs.tasks) {
    obs::write_jsonl(os, slot.cell + "/" + slot.label, slot.obs.journal);
  }
}

std::string campaign_chrome_trace(const CampaignObs& obs) {
  std::vector<obs::TaskTrack> tracks;
  tracks.reserve(obs.tasks.size());
  for (std::size_t i = 0; i < obs.tasks.size(); ++i) {
    const auto& slot = obs.tasks[i];
    obs::TaskTrack t;
    t.cell = slot.cell;
    t.label = slot.label;
    t.tid = static_cast<std::uint32_t>(i + 1);
    t.wall_start_us = slot.obs.wall_start_us;
    t.wall_end_us = slot.obs.wall_end_us;
    t.journal = &slot.obs.journal;
    tracks.push_back(std::move(t));
  }
  return obs::chrome_trace_json(tracks);
}

}  // namespace gf::depbench
