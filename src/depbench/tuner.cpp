#include "depbench/tuner.h"

#include <map>

namespace gf::depbench {

TunedFaultload tune_faultload(os::Kernel& kernel,
                              const std::vector<std::string>& profile_servers,
                              const ProfilerConfig& pcfg,
                              const swfit::ScanOptions& scan_opts,
                              double min_avg_pct) {
  TunedFaultload out;
  Profiler profiler(pcfg);
  out.profile = profiler.profile(kernel.version(), profile_servers);
  out.functions = out.profile.relevant_functions(min_avg_pct);
  swfit::Scanner scanner(scan_opts);
  out.faultload = scanner.scan(kernel.pristine_image(), out.functions);
  return out;
}

std::map<std::uint32_t, MeasuredActivation> measured_activation_by_fault(
    const std::vector<trace::ActivationRecord>& records) {
  std::map<std::uint32_t, MeasuredActivation> tallies;
  for (const auto& r : records) {
    auto& t = tallies[r.fault_index];
    ++t.traced;
    if (r.activated()) ++t.activated;
    if (r.outcome == trace::Outcome::kExternalFailure) ++t.external;
  }
  return tallies;
}

swfit::Faultload prune_by_measured_activation(
    const swfit::Faultload& fl,
    const std::vector<trace::ActivationRecord>& records,
    double min_activation_rate) {
  const auto tallies = measured_activation_by_fault(records);

  swfit::Faultload pruned;
  pruned.target = fl.target;
  pruned.digest = fl.digest;
  for (std::size_t i = 0; i < fl.faults.size(); ++i) {
    const auto it = tallies.find(static_cast<std::uint32_t>(i));
    if (it != tallies.end() &&
        it->second.activation_rate() < min_activation_rate) {
      continue;  // measured, never fires
    }
    pruned.faults.push_back(fl.faults[i]);
  }
  return pruned;
}

}  // namespace gf::depbench
