#include "depbench/tuner.h"

namespace gf::depbench {

TunedFaultload tune_faultload(os::Kernel& kernel,
                              const std::vector<std::string>& profile_servers,
                              const ProfilerConfig& pcfg,
                              const swfit::ScanOptions& scan_opts,
                              double min_avg_pct) {
  TunedFaultload out;
  Profiler profiler(pcfg);
  out.profile = profiler.profile(kernel.version(), profile_servers);
  out.functions = out.profile.relevant_functions(min_avg_pct);
  swfit::Scanner scanner(scan_opts);
  out.faultload = scanner.scan(kernel.pristine_image(), out.functions);
  return out;
}

}  // namespace gf::depbench
