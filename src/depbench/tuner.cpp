#include "depbench/tuner.h"

#include <map>

namespace gf::depbench {

TunedFaultload tune_faultload(os::Kernel& kernel,
                              const std::vector<std::string>& profile_servers,
                              const ProfilerConfig& pcfg,
                              const swfit::ScanOptions& scan_opts,
                              double min_avg_pct) {
  TunedFaultload out;
  Profiler profiler(pcfg);
  out.profile = profiler.profile(kernel.version(), profile_servers);
  out.functions = out.profile.relevant_functions(min_avg_pct);
  swfit::Scanner scanner(scan_opts);
  out.faultload = scanner.scan(kernel.pristine_image(), out.functions);
  return out;
}

swfit::Faultload prune_by_measured_activation(
    const swfit::Faultload& fl,
    const std::vector<trace::ActivationRecord>& records,
    double min_activation_rate) {
  struct Tally {
    std::uint64_t traced = 0;
    std::uint64_t activated = 0;
  };
  std::map<std::uint32_t, Tally> tallies;
  for (const auto& r : records) {
    auto& t = tallies[r.fault_index];
    ++t.traced;
    if (r.activated()) ++t.activated;
  }

  swfit::Faultload pruned;
  pruned.target = fl.target;
  pruned.digest = fl.digest;
  for (std::size_t i = 0; i < fl.faults.size(); ++i) {
    const auto it = tallies.find(static_cast<std::uint32_t>(i));
    if (it != tallies.end()) {
      const double rate = static_cast<double>(it->second.activated) /
                          static_cast<double>(it->second.traced);
      if (rate < min_activation_rate) continue;  // measured, never fires
    }
    pruned.faults.push_back(fl.faults[i]);
  }
  return pruned;
}

}  // namespace gf::depbench
