// SPECWeb99-style measures (paper §3: SPC, THR, RTM, ER%) computed over one
// measurement window, plus aggregation helpers for multi-iteration runs.
#pragma once

#include <cstdint>
#include <vector>

namespace gf::spec {

/// Per-connection accounting inside a window.
struct ConnStats {
  std::uint64_t ops = 0;
  std::uint64_t errors = 0;
  std::uint64_t bytes = 0;
};

struct WindowMetrics {
  double duration_ms = 0;
  std::uint64_t ops = 0;     ///< all issued operations
  std::uint64_t errors = 0;  ///< failed operations (bad status/content/timeout)
  std::uint64_t bytes = 0;
  double thr = 0;     ///< successful operations per second (THR)
  double rtm_ms = 0;  ///< mean response time of successful operations (RTM)
  double er_pct = 0;  ///< error rate over all operations (ER%)
  int spc = 0;        ///< simultaneous conforming connections (SPC)
  double cc_pct = 0;  ///< conforming share of offered connections (CC%)
};

/// Decides conformance per SPECWeb99: average bit rate >= `conforming_kbps`
/// and error share < `max_error_pct`.
bool is_conforming(const ConnStats& c, double duration_ms,
                   double conforming_kbps, double max_error_pct);

/// Fills the derived fields (thr/rtm/er/spc/cc) of `m` from raw counters,
/// the per-connection table and the summed response time.
void finalize_metrics(WindowMetrics& m, const std::vector<ConnStats>& conns,
                      double total_latency_ms, double conforming_kbps,
                      double max_error_pct);

/// Mean of each metric over iterations (the paper's "Average (all iter)").
WindowMetrics average_metrics(const std::vector<WindowMetrics>& runs);

}  // namespace gf::spec
