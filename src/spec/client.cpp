#include "spec/client.h"

#include <algorithm>
#include <cmath>

namespace gf::spec {

bool SpecClient::validate(const web::Request& req, const web::Response& resp,
                          std::size_t expected_size) {
  if (resp.status != 200) return false;
  const auto expect_bytes =
      req.method == web::Method::kPost ? std::size_t{128} : expected_size;
  if (resp.body.size() != expect_bytes) return false;
  // Sampled content check: first/last bytes plus a stride through the body.
  // Heap corruption produces densely wrong bytes, so sampling catches it at
  // a fraction of the cost of a full compare.
  const auto seed = web::path_seed(req.path);
  const bool dynamic = req.method == web::Method::kGet && req.dynamic;
  auto expected_at = [&](std::size_t i) {
    auto b = web::expected_content_byte(seed, i);
    return dynamic ? web::dynamic_transform(b) : b;
  };
  if (resp.body.empty()) return true;
  if (resp.body.front() != expected_at(0)) return false;
  if (resp.body.back() != expected_at(resp.body.size() - 1)) return false;
  for (std::size_t i = 0; i < resp.body.size(); i += 17) {
    if (resp.body[i] != expected_at(i)) return false;
  }
  return true;
}

WindowMetrics SpecClient::run_window(web::WebServer& server,
                                     WorkloadGenerator& gen, double start_ms,
                                     double duration_ms, const Tick& tick) {
  struct Conn {
    double next_free = 0;
    ConnStats stats;                   // whole-window totals
    std::vector<ConnStats> per_batch;  // per-batch stats for SPC
  };
  const double batch_ms =
      cfg_.spc_batch_ms > 0 ? cfg_.spc_batch_ms : duration_ms;
  const auto n_batches = static_cast<std::size_t>(
      std::max(1.0, std::ceil(duration_ms / batch_ms)));
  std::vector<Conn> conns(static_cast<std::size_t>(cfg_.connections));
  for (auto& c : conns) c.per_batch.resize(n_batches);
  // Stagger connection starts slightly so ops do not fire in lockstep.
  for (std::size_t i = 0; i < conns.size(); ++i) {
    conns[i].next_free = start_ms + static_cast<double>(i) * 2.0;
  }

  const double end_ms = start_ms + duration_ms;
  double server_free = start_ms;
  double total_latency = 0;
  WindowMetrics m;
  m.duration_ms = duration_ms;

  for (;;) {
    // Next connection ready to issue an operation.
    auto* conn = &conns[0];
    for (auto& c : conns) {
      if (c.next_free < conn->next_free) conn = &c;
    }
    const double now = conn->next_free;
    if (now >= end_ms) break;

    if (tick) tick(now);

    const auto req = gen.next();
    const auto resp = server.handle(req);
    const auto state = server.state();

    double completion;
    bool ok = false;
    if (resp.status == 0 || state == web::ServerState::kHung ||
        state == web::ServerState::kSpinning) {
      // No answer: the client burns its full timeout.
      completion = now + cfg_.op_timeout_ms;
    } else if (resp.status == 503 || state != web::ServerState::kRunning) {
      // Connection refused (server down / dying).
      completion = now + cfg_.error_latency_ms;
    } else {
      const double service_ms =
          static_cast<double>(server.last_request_cycles()) / cfg_.cycles_per_ms +
          server.arch_overhead_ms() + cfg_.base_latency_ms;
      const double begin = std::max(now, server_free);
      server_free = begin + service_ms;
      ok = cfg_.validate_content
               ? validate(req, resp, gen.size_of(req.path))
               : resp.status == 200;
      const double transfer_ms =
          ok ? static_cast<double>(resp.body.size()) * 8.0 / cfg_.conn_bandwidth_kbps
             : cfg_.error_latency_ms;
      completion = server_free + transfer_ms;
    }

    const double latency = completion - now;
    const auto batch = std::min(
        n_batches - 1, static_cast<std::size_t>((now - start_ms) / batch_ms));
    auto& bstats = conn->per_batch[batch];
    ++m.ops;
    ++conn->stats.ops;
    ++bstats.ops;
    if (ok) {
      total_latency += latency;  // RTM is over successful operations
      m.bytes += resp.body.size();
      conn->stats.bytes += resp.body.size();
      bstats.bytes += resp.body.size();
    } else {
      ++m.errors;
      ++conn->stats.errors;
      ++bstats.errors;
    }
    conn->next_free = completion;
  }

  std::vector<ConnStats> stats;
  stats.reserve(conns.size());
  for (const auto& c : conns) stats.push_back(c.stats);
  finalize_metrics(m, stats, total_latency, cfg_.conforming_kbps,
                   cfg_.max_error_pct);

  // Batch-based SPC/CC%: mean conforming-connection count across batches.
  double spc_sum = 0;
  for (std::size_t b = 0; b < n_batches; ++b) {
    int conforming = 0;
    for (const auto& c : conns) {
      conforming += is_conforming(c.per_batch[b], batch_ms,
                                  cfg_.conforming_kbps, cfg_.max_error_pct);
    }
    spc_sum += conforming;
  }
  m.spc = static_cast<int>(spc_sum / static_cast<double>(n_batches) + 0.5);
  m.cc_pct = conns.empty() ? 0.0
                           : 100.0 * static_cast<double>(m.spc) /
                                 static_cast<double>(conns.size());
  return m;
}

void warm_server(web::WebServer& server, const Fileset& fs) {
  for (const auto& f : fs.files()) {
    web::Request req;
    req.path = f.path;
    server.handle(req);
  }
}

}  // namespace gf::spec
