#include "spec/metrics.h"

namespace gf::spec {

bool is_conforming(const ConnStats& c, double duration_ms,
                   double conforming_kbps, double max_error_pct) {
  if (duration_ms <= 0 || c.ops == 0) return false;
  const double kbps =
      static_cast<double>(c.bytes) * 8.0 / duration_ms;  // bits per ms = kbps
  const double err_pct =
      100.0 * static_cast<double>(c.errors) / static_cast<double>(c.ops);
  return kbps >= conforming_kbps && err_pct < max_error_pct;
}

void finalize_metrics(WindowMetrics& m, const std::vector<ConnStats>& conns,
                      double total_latency_ms, double conforming_kbps,
                      double max_error_pct) {
  // THR counts every served operation (SPECWeb's "operations per second"
  // includes error responses); RTM averages successful operations only.
  const auto ok_ops = m.ops - m.errors;
  m.thr = m.duration_ms > 0
              ? static_cast<double>(m.ops) / (m.duration_ms / 1000.0)
              : 0.0;
  m.rtm_ms = ok_ops > 0 ? total_latency_ms / static_cast<double>(ok_ops) : 0.0;
  m.er_pct = m.ops > 0
                 ? 100.0 * static_cast<double>(m.errors) / static_cast<double>(m.ops)
                 : 0.0;
  m.spc = 0;
  for (const auto& c : conns) {
    m.spc += is_conforming(c, m.duration_ms, conforming_kbps, max_error_pct);
  }
  m.cc_pct = conns.empty()
                 ? 0.0
                 : 100.0 * static_cast<double>(m.spc) / static_cast<double>(conns.size());
}

WindowMetrics average_metrics(const std::vector<WindowMetrics>& runs) {
  WindowMetrics avg;
  if (runs.empty()) return avg;
  double spc = 0;
  for (const auto& r : runs) {
    avg.duration_ms += r.duration_ms;
    avg.ops += r.ops;
    avg.errors += r.errors;
    avg.bytes += r.bytes;
    avg.thr += r.thr;
    avg.rtm_ms += r.rtm_ms;
    avg.er_pct += r.er_pct;
    spc += r.spc;
    avg.cc_pct += r.cc_pct;
  }
  const auto n = static_cast<double>(runs.size());
  avg.ops = static_cast<std::uint64_t>(static_cast<double>(avg.ops) / n + 0.5);
  avg.errors =
      static_cast<std::uint64_t>(static_cast<double>(avg.errors) / n + 0.5);
  avg.bytes = static_cast<std::uint64_t>(static_cast<double>(avg.bytes) / n + 0.5);
  avg.duration_ms /= n;
  avg.thr /= n;
  avg.rtm_ms /= n;
  avg.er_pct /= n;
  avg.spc = static_cast<int>(spc / n + 0.5);
  avg.cc_pct /= n;
  return avg;
}

}  // namespace gf::spec
