// The SPECWeb99-like client: drives N concurrent connections against a
// WebServer under a discrete-event clock and computes the SPEC measures.
//
// Timing model (all simulated milliseconds):
//   - the server is a single service station: an operation waits while the
//     server is busy, then consumes service time derived from the VM cycles
//     the request actually burned in OS code (plus a base overhead),
//   - the response body streams to the client at the per-connection link
//     rate; SPECWeb99 conformance compares the achieved rate to 320 kbps,
//   - a request a dead server refuses fails fast; a request a *hung* server
//     swallows costs the full client timeout — this is what collapses
//     conforming connections under injected faults, exactly as in Table 5.
//
// The tick callback runs between operations; the experiment controller uses
// it to swap faults on the 10 s schedule and to detect/repair server
// failures (MIS/KNS/KCP accounting).
#pragma once

#include <cstdint>
#include <functional>

#include "spec/metrics.h"
#include "spec/workload.h"
#include "web/server.h"

namespace gf::spec {

struct ClientConfig {
  int connections = 40;
  double conn_bandwidth_kbps = 400;  ///< per-connection transfer rate
  double conforming_kbps = 320;      ///< SPECWeb99 conformance threshold
  double max_error_pct = 1.0;        ///< SPECWeb99 conformance threshold
  double base_latency_ms = 3;        ///< connection/header overhead per op
  double cycles_per_ms = 12000;      ///< VM cycles per simulated CPU ms
  double op_timeout_ms = 1500;       ///< client timeout on an unresponsive server
  double error_latency_ms = 300;     ///< error page (near-normal service)
  bool validate_content = true;      ///< byte-check bodies against expectation
  /// SPECWeb99 measures conformance per batch; SPC of a window is the mean
  /// conforming-connection count over batches of this length. 0 = assess
  /// the window as a single batch.
  double spc_batch_ms = 0;
};

class SpecClient {
 public:
  explicit SpecClient(ClientConfig cfg = {}) : cfg_(cfg) {}

  using Tick = std::function<void(double now_ms)>;

  /// Runs one measurement window of `duration_ms` starting at `start_ms`
  /// sim time, drawing operations from `gen`.
  WindowMetrics run_window(web::WebServer& server, WorkloadGenerator& gen,
                           double start_ms, double duration_ms,
                           const Tick& tick = {});

  const ClientConfig& config() const noexcept { return cfg_; }

  /// Validates a response against the deterministic content expectation.
  static bool validate(const web::Request& req, const web::Response& resp,
                       std::size_t expected_size);

 private:
  ClientConfig cfg_;
};

/// Deterministic server warm-up — part of SUB bring-up.
///
/// Serves every static file of the set once, in file-set order, so the
/// server reaches its steady serving state (apex's response cache full,
/// log/heap paths exercised) before any measurement or fault exposure.
/// Without this, a server that has just started is structurally more
/// fragile than one under sustained load: every request misses the cache
/// and walks the full OS API path, so injected faults activate far more
/// often than the paper's warmed-SUB procedure would show. The sequence is
/// a pure function of the file set — cold bring-up and warm-boot snapshot
/// capture replay it identically, preserving bit-identity.
void warm_server(web::WebServer& server, const Fileset& fs);

}  // namespace gf::spec
