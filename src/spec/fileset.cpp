#include "spec/fileset.h"

#include <cstdio>

#include "web/http.h"

namespace gf::spec {

std::size_t Fileset::file_size(int size_class, int j) {
  switch (size_class) {
    case 0: return static_cast<std::size_t>(256 * (j + 1));        // ~1 KiB
    case 1: return static_cast<std::size_t>(3584 * (j + 1));       // ~17.5 KiB
    case 2: return static_cast<std::size_t>(6 * 1024 * (j + 1));   // ~30 KiB
    default: return 64 * 1024;                                      // capped
  }
}

const std::vector<double>& Fileset::class_weights() {
  static const std::vector<double> kWeights = {35.0, 50.0, 14.0, 1.0};
  return kWeights;
}

Fileset::Fileset(os::SimDisk& disk, const FilesetConfig& cfg, bool populate) {
  by_class_.resize(4);
  for (int d = 0; d < cfg.num_dirs; ++d) {
    for (int c = 0; c < 4; ++c) {
      for (int j = 0; j < cfg.files_per_class; ++j) {
        char path[64];
        std::snprintf(path, sizeof path, "/file_set/dir%05d/class%d_%d", d, c, j);
        const auto size = file_size(c, j);
        if (populate) {
          const auto seed = web::path_seed(path);
          std::vector<std::uint8_t> content(size);
          for (std::size_t i = 0; i < size; ++i) {
            content[i] = web::expected_content_byte(seed, i);
          }
          disk.add_file(path, std::move(content));
        }
        by_class_[static_cast<std::size_t>(c)].push_back(files_.size());
        files_.push_back({path, size, c});
      }
    }
  }
  if (!populate) return;  // content already on the snapshot's disk
  // Server support files.
  disk.add_file("/conf/httpd.conf", std::vector<std::uint8_t>(512, 0x23));
  disk.create("/logs/apex.post");
  disk.create("/logs/abyssal.post");
  disk.create("/logs/sambar.post");
  disk.create("/logs/savant.post");
}

double Fileset::mean_file_size() const {
  // Expected transfer size under the class access mix with uniform choice
  // within a class.
  const auto& w = class_weights();
  double total_w = 0.0, mean = 0.0;
  for (int c = 0; c < 4; ++c) {
    const auto& members = by_class_[static_cast<std::size_t>(c)];
    if (members.empty()) continue;
    double class_mean = 0.0;
    for (const auto idx : members) class_mean += static_cast<double>(files_[idx].size);
    class_mean /= static_cast<double>(members.size());
    mean += w[static_cast<std::size_t>(c)] * class_mean;
    total_w += w[static_cast<std::size_t>(c)];
  }
  return total_w > 0 ? mean / total_w : 0.0;
}

}  // namespace gf::spec
