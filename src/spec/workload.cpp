#include "spec/workload.h"

#include <map>

namespace gf::spec {

namespace {
int count_dirs(const Fileset& fs) {
  int max_dir = 0;
  for (const auto& f : fs.files()) {
    // Paths look like /file_set/dirNNNNN/classC_J.
    const auto pos = f.path.find("/dir");
    if (pos == std::string::npos) continue;
    max_dir = std::max(max_dir, std::stoi(f.path.substr(pos + 4, 5)));
  }
  return max_dir + 1;
}
}  // namespace

WorkloadGenerator::WorkloadGenerator(const Fileset& fs, std::uint64_t seed,
                                     WorkloadMix mix)
    : fs_(fs),
      rng_(seed),
      mix_(mix),
      dir_zipf_(static_cast<std::size_t>(count_dirs(fs)), 1.0),
      num_dirs_(count_dirs(fs)) {
  for (const auto& f : fs.files()) sizes_[f.path] = f.size;
}

web::Request WorkloadGenerator::next() {
  web::Request req;
  const auto kind = rng_.weighted({mix_.static_get, mix_.dynamic_get, mix_.post});
  req.method = kind == 2 ? web::Method::kPost : web::Method::kGet;
  req.dynamic = kind == 1;

  // Pick a directory (Zipf), then a class (SPECWeb99 mix), then a file.
  const auto dir = dir_zipf_.sample(rng_);
  const auto size_class = static_cast<int>(rng_.weighted(Fileset::class_weights()));
  const auto& members = fs_.class_members(size_class);
  // Files are laid out dir-major: dir * files_per_class consecutive entries
  // per class. Index into this directory's slice of the class.
  const auto per_dir = members.size() / static_cast<std::size_t>(num_dirs_);
  const auto j = rng_.bounded(per_dir);
  const auto file_index = members[dir * per_dir + j];
  req.path = fs_.files()[file_index].path;

  if (req.method == web::Method::kPost) {
    // On-line registration style payload.
    const auto len = 200 + rng_.bounded(400);
    req.body.assign(len, 0);
    for (auto& c : req.body) {
      c = static_cast<char>('a' + rng_.bounded(26));
    }
    req.dynamic = false;
  }
  return req;
}

std::size_t WorkloadGenerator::size_of(const std::string& path) const {
  const auto it = sizes_.find(path);
  return it == sizes_.end() ? 0 : it->second;
}

}  // namespace gf::spec
