// SPECWeb99-style file set.
//
// SPECWeb99 organizes its document tree into directories of files in four
// size classes with a fixed access mix (class popularity 35/50/14/1). We
// keep that structure but scale absolute sizes down (largest class 64 KiB
// instead of ~1 MB) so a full dependability campaign stays laptop-sized;
// the DESIGN.md substitution table documents this.
//
// Every file's content is the deterministic function of its path defined in
// web/http.h, which is what lets the client validate every served byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "os/disk.h"

namespace gf::spec {

struct FilesetConfig {
  int num_dirs = 4;
  int files_per_class = 9;  // SPECWeb99 layout
};

struct FileInfo {
  std::string path;
  std::size_t size = 0;
  int size_class = 0;  // 0..3
};

class Fileset {
 public:
  /// Populates `disk` with the document tree (and the /logs, /conf files
  /// the servers expect). With populate == false only the metadata
  /// (files()/class_members()) is rebuilt and the disk is untouched — used
  /// when the disk content already comes from a warm-boot snapshot.
  Fileset(os::SimDisk& disk, const FilesetConfig& cfg = {}, bool populate = true);

  const std::vector<FileInfo>& files() const noexcept { return files_; }
  /// Files of one size class.
  const std::vector<std::size_t>& class_members(int size_class) const {
    return by_class_[static_cast<std::size_t>(size_class)];
  }

  /// SPECWeb99 class access weights (35/50/14/1).
  static const std::vector<double>& class_weights();

  /// Size of a class-`c`, index-`j` file (deterministic layout rule).
  static std::size_t file_size(int size_class, int j);

  double mean_file_size() const;

 private:
  std::vector<FileInfo> files_;
  std::vector<std::vector<std::size_t>> by_class_;
};

}  // namespace gf::spec
