// SPECWeb99-style workload generator: the operation mix (static GET /
// dynamic GET / POST) over the file set, with Zipf-like directory
// popularity. Deterministic in its seed — required for repeatable
// benchmark runs.
#pragma once

#include <cstdint>
#include <map>

#include "spec/fileset.h"
#include "util/rng.h"
#include "web/http.h"

namespace gf::spec {

struct WorkloadMix {
  double static_get = 70.0;
  double dynamic_get = 25.0;
  double post = 5.0;
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(const Fileset& fs, std::uint64_t seed,
                    WorkloadMix mix = {});

  web::Request next();

  /// Expected size (bytes) of the file referenced by a request for `path`,
  /// reconstructed from the fileset (used by the client for validation).
  std::size_t size_of(const std::string& path) const;

 private:
  const Fileset& fs_;
  util::Rng rng_;
  WorkloadMix mix_;
  util::Zipf dir_zipf_;
  int num_dirs_;
  std::map<std::string, std::size_t> sizes_;
};

}  // namespace gf::spec
