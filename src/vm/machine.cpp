#include "vm/machine.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace gf::vm {

using isa::Instr;
using isa::kInstrSize;
using isa::Op;

const char* trap_name(Trap t) noexcept {
  switch (t) {
    case Trap::kNone: return "none";
    case Trap::kHalt: return "halt";
    case Trap::kBadMemory: return "bad-memory";
    case Trap::kBadOpcode: return "bad-opcode";
    case Trap::kBadJump: return "bad-jump";
    case Trap::kDivZero: return "div-zero";
    case Trap::kCycleLimit: return "cycle-limit";
    case Trap::kStackFault: return "stack-fault";
  }
  return "?";
}

std::vector<TraceEdge> WatchTrace::edges() const {
  std::vector<TraceEdge> out;
  const std::uint64_t n = edge_count < kEdgeRing ? edge_count : kEdgeRing;
  out.reserve(static_cast<std::size_t>(n));
  // Ring slots are written at edge_count % kEdgeRing; oldest surviving entry
  // starts the chronological order.
  const std::uint64_t first = edge_count - n;
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(ring[static_cast<std::size_t>((first + i) % kEdgeRing)]);
  }
  return out;
}

Machine::Machine(std::size_t mem_size)
    : mem_(mem_size, 0),
      dirty_((mem_size + kDirtyPageSize - 1) >> kDirtyPageShift, 0) {
  // Default stack: top 64 KiB of memory.
  stack_hi_ = mem_.size();
  stack_lo_ = mem_.size() > (64u << 10) ? mem_.size() - (64u << 10) : 0;
}

const std::uint8_t* Machine::raw(std::uint64_t addr, std::size_t n) const noexcept {
  if (addr >= mem_.size() || mem_.size() - addr < n) return nullptr;
  return mem_.data() + addr;
}

void Machine::mark_dirty(std::uint64_t addr, std::uint64_t len) noexcept {
  if (len == 0 || addr >= mem_.size()) return;
  if (mem_.size() - addr < len) len = mem_.size() - addr;
  note_write(addr, len);
}

void Machine::clear_dirty(std::uint64_t addr, std::uint64_t len) noexcept {
  if (len == 0 || addr >= mem_.size()) return;
  if (mem_.size() - addr < len) len = mem_.size() - addr;
  for (std::uint64_t p = addr >> kDirtyPageShift,
                     last = (addr + len - 1) >> kDirtyPageShift;
       p <= last; ++p) {
    dirty_[p] = 0;
  }
}

void Machine::clear_all_dirty() noexcept {
  std::fill(dirty_.begin(), dirty_.end(), 0);
}

Machine::State Machine::snapshot() {
  State s;
  s.mem = mem_;
  std::memcpy(s.regs.data(), regs_, sizeof regs_);
  s.flags = flags_;
  s.total_cycles = total_cycles_;
  clear_all_dirty();
  return s;
}

void Machine::restore(const State& s) {
  if (s.mem.size() != mem_.size()) {
    throw std::runtime_error("machine snapshot size mismatch");
  }
  // Copy back only pages dirtied since snapshot(); pages overlapping the
  // code hull additionally re-decode so the predecode cache never serves
  // instructions for bytes that just changed under it.
  for (std::size_t p = 0; p < dirty_.size(); ++p) {
    if (!dirty_[p]) continue;
    const std::uint64_t addr = static_cast<std::uint64_t>(p) << kDirtyPageShift;
    const std::size_t len = static_cast<std::size_t>(
        std::min<std::uint64_t>(kDirtyPageSize, mem_.size() - addr));
    std::memcpy(mem_.data() + addr, s.mem.data() + addr, len);
    maybe_invalidate(addr, len);
  }
  std::memcpy(regs_, s.regs.data(), sizeof regs_);
  flags_ = s.flags;
  total_cycles_ = s.total_cycles;
  clear_all_dirty();
}

void Machine::restore_full(const State& s) {
  if (s.mem.size() != mem_.size()) {
    throw std::runtime_error("machine snapshot size mismatch");
  }
  mem_ = s.mem;
  std::memcpy(regs_, s.regs.data(), sizeof regs_);
  flags_ = s.flags;
  total_cycles_ = s.total_cycles;
  rebuild_predecode();
  clear_all_dirty();
}

void Machine::begin_write_capture() {
  capture_ = true;
  captured_.clear();
}

std::vector<WriteSpan> Machine::end_write_capture() {
  capture_ = false;
  return std::move(captured_);
}

void Machine::load_image(const isa::Image& img) {
  reload_code(img);
  code_ranges_.push_back({img.base(), img.end()});
  rebuild_predecode();
}

void Machine::reload_code(const isa::Image& img) {
  const auto code = img.code();
  if (img.base() + code.size() > mem_.size()) {
    // Misconfigured layout is a programming error in the embedding code,
    // not a runtime fault of the guest; fail loudly.
    throw std::runtime_error("image does not fit in VM memory: " + img.name());
  }
  std::memcpy(mem_.data() + img.base(), code.data(), code.size());
  maybe_invalidate(img.base(), code.size());
  if (!code.empty()) note_write(img.base(), code.size());
}

bool Machine::patch_code(std::uint64_t addr, const void* data,
                         std::size_t n) noexcept {
  if (n == 0) return true;
  if (addr >= mem_.size() || mem_.size() - addr < n) return false;
  std::memcpy(mem_.data() + addr, data, n);
  maybe_invalidate(addr, n);
  note_write(addr, n);
  return true;
}

void Machine::invalidate_code(std::uint64_t addr, std::uint64_t len) noexcept {
  if (predecoded_.empty() || len == 0) return;
  if (addr >= code_hi_) return;
  const std::uint64_t end =
      len > code_hi_ - addr ? code_hi_ : addr + len;  // overflow-safe clamp
  if (end <= code_lo_) return;
  const std::uint64_t lo = addr > code_lo_ ? addr : code_lo_;
  std::size_t s = static_cast<std::size_t>((lo - code_lo_) / kInstrSize);
  const auto e = static_cast<std::size_t>(
      (end - code_lo_ + kInstrSize - 1) / kInstrSize);
  // Only re-decodes; slot flags (validity, armed bits) are left untouched,
  // so an armed fault window survives the inject/restore patches it watches.
  for (; s < e; ++s) {
    if (!(slot_flags_[s] & kSlotValid)) continue;
    const std::uint8_t* p = mem_.data() + code_lo_ + s * kInstrSize;
    if (!isa::decode_into(p, predecoded_[s])) {
      predecoded_[s] = Instr{Op::kOpCount_, 0, 0, 0, 0};
    }
  }
}

void Machine::set_predecode(bool enabled) {
  predecode_ = enabled;
  rebuild_predecode();
}

void Machine::rebuild_predecode() {
  predecoded_.clear();
  slot_flags_.clear();
  code_lo_ = code_hi_ = 0;
  if (!predecode_ || code_ranges_.empty()) return;
  code_lo_ = code_ranges_.front().lo;
  for (const auto& r : code_ranges_) {
    // The slot grid only works when every image starts on an instruction
    // boundary (always true for compiler/assembler output). A misaligned
    // base falls back to the per-step decode path.
    if (r.lo % kInstrSize != 0) {
      code_lo_ = code_hi_ = 0;
      return;
    }
    code_lo_ = std::min(code_lo_, r.lo);
    code_hi_ = std::max(code_hi_, r.hi);
  }
  const auto slots =
      static_cast<std::size_t>((code_hi_ - code_lo_ + kInstrSize - 1) / kInstrSize);
  predecoded_.assign(slots, Instr{Op::kOpCount_, 0, 0, 0, 0});
  slot_flags_.assign(slots, 0);
  for (const auto& r : code_ranges_) {
    for (std::uint64_t a = r.lo; a + kInstrSize <= r.hi; a += kInstrSize) {
      const auto s = static_cast<std::size_t>((a - code_lo_) / kInstrSize);
      slot_flags_[s] = kSlotValid;
    }
  }
  for (std::size_t s = 0; s < slots; ++s) {
    if (!(slot_flags_[s] & kSlotValid)) continue;
    if (!isa::decode_into(mem_.data() + code_lo_ + s * kInstrSize,
                          predecoded_[s])) {
      predecoded_[s] = Instr{Op::kOpCount_, 0, 0, 0, 0};
    }
  }
  apply_watch_bits();
}

void Machine::apply_watch_bits() noexcept {
  if (watch_hi_ == 0 || slot_flags_.empty()) return;
  for (std::uint64_t a = watch_lo_; a < watch_hi_; a += kInstrSize) {
    if (a < code_lo_ || a + kInstrSize > code_hi_) continue;
    slot_flags_[static_cast<std::size_t>((a - code_lo_) / kInstrSize)] |=
        kSlotArmed;
  }
}

void Machine::arm_watch(std::uint64_t lo, std::uint64_t hi) {
  disarm_watch();
  if (hi <= lo) return;
  watch_lo_ = lo;
  watch_hi_ = hi;
  watch_ = WatchTrace{};
  apply_watch_bits();
}

void Machine::disarm_watch() {
  if (watch_hi_ != 0 && !slot_flags_.empty()) {
    for (std::uint64_t a = watch_lo_; a < watch_hi_; a += kInstrSize) {
      if (a < code_lo_ || a + kInstrSize > code_hi_) continue;
      slot_flags_[static_cast<std::size_t>((a - code_lo_) / kInstrSize)] &=
          static_cast<std::uint8_t>(~kSlotArmed);
    }
  }
  watch_lo_ = watch_hi_ = 0;
  edge_live_ = false;
}

void Machine::note_watch_hit(std::uint64_t cycles) noexcept {
  if (watch_.hits++ == 0) watch_.first_hit_cycle = total_cycles_ + cycles;
  edge_live_ = true;
}

void Machine::note_watch_edge(std::uint64_t from, std::uint64_t to) noexcept {
  watch_.ring[static_cast<std::size_t>(watch_.edge_count % WatchTrace::kEdgeRing)] =
      TraceEdge{from, to};
  ++watch_.edge_count;
}

void Machine::set_stack_region(std::uint64_t lo, std::uint64_t hi) {
  stack_lo_ = lo;
  stack_hi_ = hi;
}

bool Machine::read_u8(std::uint64_t addr, std::uint8_t& out) const noexcept {
  if (addr < kNullPageSize || addr >= mem_.size()) return false;
  out = mem_[addr];
  return true;
}

bool Machine::write_u8(std::uint64_t addr, std::uint8_t v) noexcept {
  if (addr < kNullPageSize || addr >= mem_.size()) return false;
  mem_[addr] = v;
  maybe_invalidate(addr, 1);
  note_write(addr, 1);
  return true;
}

bool Machine::read_u64(std::uint64_t addr, std::uint64_t& out) const noexcept {
  // addr near 2^64 (a negative guest pointer) must not wrap past the check.
  if (addr < kNullPageSize || addr >= mem_.size() || mem_.size() - addr < 8)
    return false;
  std::memcpy(&out, mem_.data() + addr, 8);
  return true;
}

bool Machine::write_u64(std::uint64_t addr, std::uint64_t v) noexcept {
  if (addr < kNullPageSize || addr >= mem_.size() || mem_.size() - addr < 8)
    return false;
  std::memcpy(mem_.data() + addr, &v, 8);
  maybe_invalidate(addr, 8);
  note_write(addr, 8);
  return true;
}

bool Machine::read_bytes(std::uint64_t addr, void* out, std::size_t n) const noexcept {
  if (n == 0) return true;
  if (addr < kNullPageSize || addr >= mem_.size() || mem_.size() - addr < n)
    return false;
  std::memcpy(out, mem_.data() + addr, n);
  return true;
}

bool Machine::write_bytes(std::uint64_t addr, const void* data, std::size_t n) noexcept {
  if (n == 0) return true;
  if (addr < kNullPageSize || addr >= mem_.size() || mem_.size() - addr < n)
    return false;
  std::memcpy(mem_.data() + addr, data, n);
  maybe_invalidate(addr, n);
  note_write(addr, n);
  return true;
}

bool Machine::read_cstr(std::uint64_t addr, std::string& out,
                        std::size_t max_len) const noexcept {
  out.clear();
  if (addr < kNullPageSize || addr >= mem_.size()) return false;
  // One bounds check plus memchr over guest memory instead of a per-byte
  // checked read: this sits on the path of every path-string API call.
  const auto avail = static_cast<std::size_t>(
      std::min<std::uint64_t>(max_len, mem_.size() - addr));
  const auto* base = mem_.data() + addr;
  const auto* nul = static_cast<const std::uint8_t*>(std::memchr(base, 0, avail));
  if (nul == nullptr) return false;  // unterminated within max_len / memory
  out.assign(reinterpret_cast<const char*>(base),
             static_cast<std::size_t>(nul - base));
  return true;
}

bool Machine::in_code(std::uint64_t addr) const noexcept {
  // Straight-line execution almost always stays within one image, so the
  // last-hit range makes the common case O(1) even without the predecode
  // bitmap (which replaces this walk entirely on the fast path).
  if (last_range_ < code_ranges_.size()) {
    const auto& r = code_ranges_[last_range_];
    if (addr >= r.lo && addr + kInstrSize <= r.hi) return true;
  }
  for (std::size_t i = 0; i < code_ranges_.size(); ++i) {
    const auto& r = code_ranges_[i];
    if (addr >= r.lo && addr + kInstrSize <= r.hi) {
      last_range_ = i;
      return true;
    }
  }
  return false;
}

void Machine::set_coverage(bool enabled) {
  coverage_ = enabled;
  if (enabled && covered_.empty()) covered_.resize(mem_.size() / kInstrSize, false);
}

void Machine::clear_coverage() {
  executed_.clear();
  std::fill(covered_.begin(), covered_.end(), false);
}

RunResult Machine::call(std::uint64_t addr, const std::vector<std::int64_t>& args,
                        std::uint64_t cycle_budget) {
  // Fresh frame at the top of the stack region with the sentinel as the
  // return address; a RET from the callee then ends the run cleanly.
  std::int64_t saved_regs[isa::kNumRegs];
  std::memcpy(saved_regs, regs_, sizeof regs_);

  regs_[isa::kRegSp] = static_cast<std::int64_t>(stack_hi_);
  regs_[isa::kRegFp] = static_cast<std::int64_t>(stack_hi_);
  for (std::size_t i = 0; i < args.size() && i < isa::kNumArgRegs; ++i) {
    regs_[isa::kRegArg0 + i] = args[i];
  }
  // Push sentinel return address.
  regs_[isa::kRegSp] -= 8;
  if (!write_u64(static_cast<std::uint64_t>(regs_[isa::kRegSp]), kReturnSentinel)) {
    std::memcpy(regs_, saved_regs, sizeof regs_);
    return {Trap::kStackFault, 0, addr, 0};
  }

  RunResult res = execute(addr, cycle_budget);
  res.ret = regs_[isa::kRegRet];
  std::memcpy(regs_, saved_regs, sizeof regs_);
  return res;
}

RunResult Machine::run(std::uint64_t pc, std::uint64_t cycle_budget) {
  RunResult res = execute(pc, cycle_budget);
  res.ret = regs_[isa::kRegRet];
  return res;
}

RunResult Machine::execute(std::uint64_t pc, std::uint64_t cycle_budget) {
  std::uint64_t cycles = 0;
  std::uint64_t steps = 0;
  // Single exit: every termination path funnels through here so the
  // lifetime counters and dispatch stats are folded in exactly once per run
  // (the loop itself only touches the two local accumulators).
  auto stop = [&](Trap t) {
    total_cycles_ += cycles;
    stats_.instructions += steps;
    ++stats_.runs;
    ++stats_.traps[static_cast<std::size_t>(t)];
    return RunResult{t, cycles, pc, 0};
  };

  while (true) {
    if (cycles >= cycle_budget) return stop(Trap::kCycleLimit);

    Instr in;
    if (!predecoded_.empty()) {
      // Fast path: one hull check + bitmap lookup + side-table fetch. The
      // short-circuit keeps the slot index in-bounds before slot_flags_ is
      // touched; pc - code_lo_ may wrap but is then never used.
      const std::uint64_t rel = pc - code_lo_;
      const auto slot = static_cast<std::size_t>(rel / kInstrSize);
      if (pc < code_lo_ || pc + kInstrSize > code_hi_ || rel % kInstrSize != 0) {
        return stop(Trap::kBadJump);
      }
      const std::uint8_t sflags = slot_flags_[slot];
      if (!(sflags & kSlotValid)) return stop(Trap::kBadJump);
      // Activation watch: one branch on a bit of the byte the validity check
      // already loaded — never taken unless a fault window is armed AND hit.
      if (sflags & kSlotArmed) [[unlikely]] note_watch_hit(cycles);
      if (coverage_) {
        const std::size_t idx = pc / kInstrSize;
        if (!covered_[idx]) {
          covered_[idx] = true;
          executed_.push_back(pc);
        }
      }
      in = predecoded_[slot];
      if (in.op == Op::kOpCount_) return stop(Trap::kBadOpcode);
    } else {
      if (!in_code(pc) || pc % kInstrSize != 0) return stop(Trap::kBadJump);
      // Fallback decode path: no slot table, so the watch is a range compare.
      if (watch_hi_ != 0 && pc >= watch_lo_ && pc < watch_hi_) [[unlikely]] {
        note_watch_hit(cycles);
      }
      if (coverage_) {
        const std::size_t idx = pc / kInstrSize;
        if (!covered_[idx]) {
          covered_[idx] = true;
          executed_.push_back(pc);
        }
      }
      if (!isa::decode_into(mem_.data() + pc, in)) return stop(Trap::kBadOpcode);
    }

    ++steps;
    std::uint64_t next = pc + kInstrSize;
    std::uint64_t cost = 1;

    auto& R = regs_;
    const auto imm = static_cast<std::int64_t>(in.imm);

    switch (in.op) {
      case Op::kNop:
        break;
      case Op::kHalt:
        ++cycles;
        return stop(Trap::kHalt);
      case Op::kMovI:
        R[in.rd] = imm;
        break;
      case Op::kMov:
        R[in.rd] = R[in.rs1];
        break;
      case Op::kLd: {
        std::uint64_t v;
        if (!read_u64(static_cast<std::uint64_t>(R[in.rs1] + imm), v))
          return stop(Trap::kBadMemory);
        R[in.rd] = static_cast<std::int64_t>(v);
        cost = 2;
        break;
      }
      case Op::kSt:
        if (!write_u64(static_cast<std::uint64_t>(R[in.rs1] + imm),
                       static_cast<std::uint64_t>(R[in.rs2])))
          return stop(Trap::kBadMemory);
        cost = 2;
        break;
      case Op::kLdB: {
        std::uint8_t v;
        if (!read_u8(static_cast<std::uint64_t>(R[in.rs1] + imm), v))
          return stop(Trap::kBadMemory);
        R[in.rd] = v;
        cost = 2;
        break;
      }
      case Op::kStB:
        if (!write_u8(static_cast<std::uint64_t>(R[in.rs1] + imm),
                      static_cast<std::uint8_t>(R[in.rs2])))
          return stop(Trap::kBadMemory);
        cost = 2;
        break;
      case Op::kAdd: R[in.rd] = R[in.rs1] + R[in.rs2]; break;
      case Op::kSub: R[in.rd] = R[in.rs1] - R[in.rs2]; break;
      case Op::kMul: R[in.rd] = R[in.rs1] * R[in.rs2]; cost = 3; break;
      case Op::kDiv:
        if (R[in.rs2] == 0) return stop(Trap::kDivZero);
        R[in.rd] = R[in.rs1] / R[in.rs2];
        cost = 10;
        break;
      case Op::kMod:
        if (R[in.rs2] == 0) return stop(Trap::kDivZero);
        R[in.rd] = R[in.rs1] % R[in.rs2];
        cost = 10;
        break;
      case Op::kAnd: R[in.rd] = R[in.rs1] & R[in.rs2]; break;
      case Op::kOr: R[in.rd] = R[in.rs1] | R[in.rs2]; break;
      case Op::kXor: R[in.rd] = R[in.rs1] ^ R[in.rs2]; break;
      case Op::kShl:
        R[in.rd] = static_cast<std::int64_t>(static_cast<std::uint64_t>(R[in.rs1])
                                             << (R[in.rs2] & 63));
        break;
      case Op::kShr:
        R[in.rd] = static_cast<std::int64_t>(static_cast<std::uint64_t>(R[in.rs1]) >>
                                             (R[in.rs2] & 63));
        break;
      case Op::kAddI: R[in.rd] = R[in.rs1] + imm; break;
      case Op::kNot: R[in.rd] = ~R[in.rs1]; break;
      case Op::kNeg: R[in.rd] = -R[in.rs1]; break;
      case Op::kCmp:
        flags_ = R[in.rs1] < R[in.rs2] ? -1 : (R[in.rs1] > R[in.rs2] ? 1 : 0);
        break;
      case Op::kCmpI:
        flags_ = R[in.rs1] < imm ? -1 : (R[in.rs1] > imm ? 1 : 0);
        break;
      case Op::kJmp: next = static_cast<std::uint64_t>(imm); break;
      case Op::kJz: if (flags_ == 0) next = static_cast<std::uint64_t>(imm); break;
      case Op::kJnz: if (flags_ != 0) next = static_cast<std::uint64_t>(imm); break;
      case Op::kJlt: if (flags_ < 0) next = static_cast<std::uint64_t>(imm); break;
      case Op::kJle: if (flags_ <= 0) next = static_cast<std::uint64_t>(imm); break;
      case Op::kJgt: if (flags_ > 0) next = static_cast<std::uint64_t>(imm); break;
      case Op::kJge: if (flags_ >= 0) next = static_cast<std::uint64_t>(imm); break;
      case Op::kCall:
      case Op::kCallR: {
        const std::uint64_t target = in.op == Op::kCall
                                         ? static_cast<std::uint64_t>(imm)
                                         : static_cast<std::uint64_t>(R[in.rs1]);
        const auto sp = static_cast<std::uint64_t>(R[isa::kRegSp]) - 8;
        if (sp < stack_lo_ || sp + 8 > stack_hi_) return stop(Trap::kStackFault);
        if (!write_u64(sp, next)) return stop(Trap::kBadMemory);
        R[isa::kRegSp] = static_cast<std::int64_t>(sp);
        next = target;
        cost = 2;
        break;
      }
      case Op::kRet: {
        const auto sp = static_cast<std::uint64_t>(R[isa::kRegSp]);
        if (sp < stack_lo_ || sp + 8 > stack_hi_) return stop(Trap::kStackFault);
        std::uint64_t ra;
        if (!read_u64(sp, ra)) return stop(Trap::kBadMemory);
        R[isa::kRegSp] = static_cast<std::int64_t>(sp + 8);
        if (ra == kReturnSentinel) {
          ++cycles;
          return stop(Trap::kHalt);
        }
        next = ra;
        cost = 2;
        break;
      }
      case Op::kPush: {
        const auto sp = static_cast<std::uint64_t>(R[isa::kRegSp]) - 8;
        if (sp < stack_lo_ || sp + 8 > stack_hi_) return stop(Trap::kStackFault);
        if (!write_u64(sp, static_cast<std::uint64_t>(R[in.rs1])))
          return stop(Trap::kBadMemory);
        R[isa::kRegSp] = static_cast<std::int64_t>(sp);
        cost = 2;
        break;
      }
      case Op::kPop: {
        const auto sp = static_cast<std::uint64_t>(R[isa::kRegSp]);
        if (sp < stack_lo_ || sp + 8 > stack_hi_) return stop(Trap::kStackFault);
        std::uint64_t v;
        if (!read_u64(sp, v)) return stop(Trap::kBadMemory);
        R[in.rd] = static_cast<std::int64_t>(v);
        R[isa::kRegSp] = static_cast<std::int64_t>(sp + 8);
        cost = 2;
        break;
      }
      case Op::kSys: {
        if (!syscall_) return stop(Trap::kBadOpcode);
        const Trap t = syscall_(*this, in.imm);
        if (t != Trap::kNone) {
          cycles += 20;
          return stop(t);
        }
        cost = 20;
        break;
      }
      case Op::kOpCount_:
        return stop(Trap::kBadOpcode);
    }

    // Error-propagation edges: only live between the first watch hit and
    // disarm, i.e. while an injected fault is both armed and activated.
    if (edge_live_) [[unlikely]] {
      if (next != pc + kInstrSize) note_watch_edge(pc, next);
    }

    cycles += cost;
    pc = next;
  }
}

}  // namespace gf::vm
