#include "vm/machine.h"

#include <cstring>
#include <stdexcept>

namespace gf::vm {

using isa::Instr;
using isa::kInstrSize;
using isa::Op;

const char* trap_name(Trap t) noexcept {
  switch (t) {
    case Trap::kNone: return "none";
    case Trap::kHalt: return "halt";
    case Trap::kBadMemory: return "bad-memory";
    case Trap::kBadOpcode: return "bad-opcode";
    case Trap::kBadJump: return "bad-jump";
    case Trap::kDivZero: return "div-zero";
    case Trap::kCycleLimit: return "cycle-limit";
    case Trap::kStackFault: return "stack-fault";
  }
  return "?";
}

Machine::Machine(std::size_t mem_size) : mem_(mem_size, 0) {
  // Default stack: top 64 KiB of memory.
  stack_hi_ = mem_.size();
  stack_lo_ = mem_.size() > (64u << 10) ? mem_.size() - (64u << 10) : 0;
}

void Machine::load_image(const isa::Image& img) {
  reload_code(img);
  code_ranges_.push_back({img.base(), img.end()});
}

void Machine::reload_code(const isa::Image& img) {
  const auto code = img.code();
  if (img.base() + code.size() > mem_.size()) {
    // Misconfigured layout is a programming error in the embedding code,
    // not a runtime fault of the guest; fail loudly.
    throw std::runtime_error("image does not fit in VM memory: " + img.name());
  }
  std::memcpy(mem_.data() + img.base(), code.data(), code.size());
}

void Machine::set_stack_region(std::uint64_t lo, std::uint64_t hi) {
  stack_lo_ = lo;
  stack_hi_ = hi;
}

bool Machine::read_u8(std::uint64_t addr, std::uint8_t& out) const noexcept {
  if (addr < kNullPageSize || addr >= mem_.size()) return false;
  out = mem_[addr];
  return true;
}

bool Machine::write_u8(std::uint64_t addr, std::uint8_t v) noexcept {
  if (addr < kNullPageSize || addr >= mem_.size()) return false;
  mem_[addr] = v;
  return true;
}

bool Machine::read_u64(std::uint64_t addr, std::uint64_t& out) const noexcept {
  // addr near 2^64 (a negative guest pointer) must not wrap past the check.
  if (addr < kNullPageSize || addr >= mem_.size() || mem_.size() - addr < 8)
    return false;
  std::memcpy(&out, mem_.data() + addr, 8);
  return true;
}

bool Machine::write_u64(std::uint64_t addr, std::uint64_t v) noexcept {
  if (addr < kNullPageSize || addr >= mem_.size() || mem_.size() - addr < 8)
    return false;
  std::memcpy(mem_.data() + addr, &v, 8);
  return true;
}

bool Machine::read_bytes(std::uint64_t addr, void* out, std::size_t n) const noexcept {
  if (n == 0) return true;
  if (addr < kNullPageSize || addr >= mem_.size() || mem_.size() - addr < n)
    return false;
  std::memcpy(out, mem_.data() + addr, n);
  return true;
}

bool Machine::write_bytes(std::uint64_t addr, const void* data, std::size_t n) noexcept {
  if (n == 0) return true;
  if (addr < kNullPageSize || addr >= mem_.size() || mem_.size() - addr < n)
    return false;
  std::memcpy(mem_.data() + addr, data, n);
  return true;
}

bool Machine::read_cstr(std::uint64_t addr, std::string& out,
                        std::size_t max_len) const noexcept {
  out.clear();
  for (std::size_t i = 0; i < max_len; ++i) {
    std::uint8_t b;
    if (!read_u8(addr + i, b)) return false;
    if (b == 0) return true;
    out.push_back(static_cast<char>(b));
  }
  return false;  // unterminated
}

bool Machine::in_code(std::uint64_t addr) const noexcept {
  for (const auto& r : code_ranges_) {
    if (addr >= r.lo && addr + kInstrSize <= r.hi) return true;
  }
  return false;
}

void Machine::set_coverage(bool enabled) {
  coverage_ = enabled;
  if (enabled && covered_.empty()) covered_.resize(mem_.size() / kInstrSize, false);
}

void Machine::clear_coverage() {
  executed_.clear();
  std::fill(covered_.begin(), covered_.end(), false);
}

RunResult Machine::call(std::uint64_t addr, const std::vector<std::int64_t>& args,
                        std::uint64_t cycle_budget) {
  // Fresh frame at the top of the stack region with the sentinel as the
  // return address; a RET from the callee then ends the run cleanly.
  std::int64_t saved_regs[isa::kNumRegs];
  std::memcpy(saved_regs, regs_, sizeof regs_);

  regs_[isa::kRegSp] = static_cast<std::int64_t>(stack_hi_);
  regs_[isa::kRegFp] = static_cast<std::int64_t>(stack_hi_);
  for (std::size_t i = 0; i < args.size() && i < isa::kNumArgRegs; ++i) {
    regs_[isa::kRegArg0 + i] = args[i];
  }
  // Push sentinel return address.
  regs_[isa::kRegSp] -= 8;
  if (!write_u64(static_cast<std::uint64_t>(regs_[isa::kRegSp]), kReturnSentinel)) {
    std::memcpy(regs_, saved_regs, sizeof regs_);
    return {Trap::kStackFault, 0, addr, 0};
  }

  RunResult res = execute(addr, cycle_budget);
  res.ret = regs_[isa::kRegRet];
  std::memcpy(regs_, saved_regs, sizeof regs_);
  return res;
}

RunResult Machine::run(std::uint64_t pc, std::uint64_t cycle_budget) {
  RunResult res = execute(pc, cycle_budget);
  res.ret = regs_[isa::kRegRet];
  return res;
}

RunResult Machine::execute(std::uint64_t pc, std::uint64_t cycle_budget) {
  std::uint64_t cycles = 0;
  auto stop = [&](Trap t) {
    total_cycles_ += cycles;
    return RunResult{t, cycles, pc, 0};
  };

  while (true) {
    if (cycles >= cycle_budget) return stop(Trap::kCycleLimit);
    if (!in_code(pc) || pc % kInstrSize != 0) return stop(Trap::kBadJump);

    if (coverage_) {
      const std::size_t idx = pc / kInstrSize;
      if (!covered_[idx]) {
        covered_[idx] = true;
        executed_.push_back(pc);
      }
    }

    const auto decoded = isa::decode(mem_.data() + pc);
    if (!decoded) return stop(Trap::kBadOpcode);
    const Instr in = *decoded;
    std::uint64_t next = pc + kInstrSize;
    std::uint64_t cost = 1;

    auto& R = regs_;
    const auto imm = static_cast<std::int64_t>(in.imm);

    switch (in.op) {
      case Op::kNop:
        break;
      case Op::kHalt:
        ++cycles;
        total_cycles_ += cycles;
        return RunResult{Trap::kHalt, cycles, pc, 0};
      case Op::kMovI:
        R[in.rd] = imm;
        break;
      case Op::kMov:
        R[in.rd] = R[in.rs1];
        break;
      case Op::kLd: {
        std::uint64_t v;
        if (!read_u64(static_cast<std::uint64_t>(R[in.rs1] + imm), v))
          return stop(Trap::kBadMemory);
        R[in.rd] = static_cast<std::int64_t>(v);
        cost = 2;
        break;
      }
      case Op::kSt:
        if (!write_u64(static_cast<std::uint64_t>(R[in.rs1] + imm),
                       static_cast<std::uint64_t>(R[in.rs2])))
          return stop(Trap::kBadMemory);
        cost = 2;
        break;
      case Op::kLdB: {
        std::uint8_t v;
        if (!read_u8(static_cast<std::uint64_t>(R[in.rs1] + imm), v))
          return stop(Trap::kBadMemory);
        R[in.rd] = v;
        cost = 2;
        break;
      }
      case Op::kStB:
        if (!write_u8(static_cast<std::uint64_t>(R[in.rs1] + imm),
                      static_cast<std::uint8_t>(R[in.rs2])))
          return stop(Trap::kBadMemory);
        cost = 2;
        break;
      case Op::kAdd: R[in.rd] = R[in.rs1] + R[in.rs2]; break;
      case Op::kSub: R[in.rd] = R[in.rs1] - R[in.rs2]; break;
      case Op::kMul: R[in.rd] = R[in.rs1] * R[in.rs2]; cost = 3; break;
      case Op::kDiv:
        if (R[in.rs2] == 0) return stop(Trap::kDivZero);
        R[in.rd] = R[in.rs1] / R[in.rs2];
        cost = 10;
        break;
      case Op::kMod:
        if (R[in.rs2] == 0) return stop(Trap::kDivZero);
        R[in.rd] = R[in.rs1] % R[in.rs2];
        cost = 10;
        break;
      case Op::kAnd: R[in.rd] = R[in.rs1] & R[in.rs2]; break;
      case Op::kOr: R[in.rd] = R[in.rs1] | R[in.rs2]; break;
      case Op::kXor: R[in.rd] = R[in.rs1] ^ R[in.rs2]; break;
      case Op::kShl:
        R[in.rd] = static_cast<std::int64_t>(static_cast<std::uint64_t>(R[in.rs1])
                                             << (R[in.rs2] & 63));
        break;
      case Op::kShr:
        R[in.rd] = static_cast<std::int64_t>(static_cast<std::uint64_t>(R[in.rs1]) >>
                                             (R[in.rs2] & 63));
        break;
      case Op::kAddI: R[in.rd] = R[in.rs1] + imm; break;
      case Op::kNot: R[in.rd] = ~R[in.rs1]; break;
      case Op::kNeg: R[in.rd] = -R[in.rs1]; break;
      case Op::kCmp:
        flags_ = R[in.rs1] < R[in.rs2] ? -1 : (R[in.rs1] > R[in.rs2] ? 1 : 0);
        break;
      case Op::kCmpI:
        flags_ = R[in.rs1] < imm ? -1 : (R[in.rs1] > imm ? 1 : 0);
        break;
      case Op::kJmp: next = static_cast<std::uint64_t>(imm); break;
      case Op::kJz: if (flags_ == 0) next = static_cast<std::uint64_t>(imm); break;
      case Op::kJnz: if (flags_ != 0) next = static_cast<std::uint64_t>(imm); break;
      case Op::kJlt: if (flags_ < 0) next = static_cast<std::uint64_t>(imm); break;
      case Op::kJle: if (flags_ <= 0) next = static_cast<std::uint64_t>(imm); break;
      case Op::kJgt: if (flags_ > 0) next = static_cast<std::uint64_t>(imm); break;
      case Op::kJge: if (flags_ >= 0) next = static_cast<std::uint64_t>(imm); break;
      case Op::kCall:
      case Op::kCallR: {
        const std::uint64_t target = in.op == Op::kCall
                                         ? static_cast<std::uint64_t>(imm)
                                         : static_cast<std::uint64_t>(R[in.rs1]);
        const auto sp = static_cast<std::uint64_t>(R[isa::kRegSp]) - 8;
        if (sp < stack_lo_ || sp + 8 > stack_hi_) return stop(Trap::kStackFault);
        if (!write_u64(sp, next)) return stop(Trap::kBadMemory);
        R[isa::kRegSp] = static_cast<std::int64_t>(sp);
        next = target;
        cost = 2;
        break;
      }
      case Op::kRet: {
        const auto sp = static_cast<std::uint64_t>(R[isa::kRegSp]);
        if (sp < stack_lo_ || sp + 8 > stack_hi_) return stop(Trap::kStackFault);
        std::uint64_t ra;
        if (!read_u64(sp, ra)) return stop(Trap::kBadMemory);
        R[isa::kRegSp] = static_cast<std::int64_t>(sp + 8);
        if (ra == kReturnSentinel) {
          ++cycles;
          total_cycles_ += cycles;
          return RunResult{Trap::kHalt, cycles, pc, 0};
        }
        next = ra;
        cost = 2;
        break;
      }
      case Op::kPush: {
        const auto sp = static_cast<std::uint64_t>(R[isa::kRegSp]) - 8;
        if (sp < stack_lo_ || sp + 8 > stack_hi_) return stop(Trap::kStackFault);
        if (!write_u64(sp, static_cast<std::uint64_t>(R[in.rs1])))
          return stop(Trap::kBadMemory);
        R[isa::kRegSp] = static_cast<std::int64_t>(sp);
        cost = 2;
        break;
      }
      case Op::kPop: {
        const auto sp = static_cast<std::uint64_t>(R[isa::kRegSp]);
        if (sp < stack_lo_ || sp + 8 > stack_hi_) return stop(Trap::kStackFault);
        std::uint64_t v;
        if (!read_u64(sp, v)) return stop(Trap::kBadMemory);
        R[in.rd] = static_cast<std::int64_t>(v);
        R[isa::kRegSp] = static_cast<std::int64_t>(sp + 8);
        cost = 2;
        break;
      }
      case Op::kSys: {
        if (!syscall_) return stop(Trap::kBadOpcode);
        const Trap t = syscall_(*this, in.imm);
        if (t != Trap::kNone) {
          cycles += 20;
          total_cycles_ += cycles;
          return RunResult{t, cycles, pc, 0};
        }
        cost = 20;
        break;
      }
      case Op::kOpCount_:
        return stop(Trap::kBadOpcode);
    }

    cycles += cost;
    pc = next;
  }
}

}  // namespace gf::vm
