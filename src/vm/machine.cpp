#include "vm/machine.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

// Dispatch lowering: computed-goto labels-as-values ("threaded") on
// compilers that support the GNU extension, with the portable switch kept as
// a fallback. The CMake option GF_VM_DISPATCH pins it explicitly; when the
// macro is not injected by the build, auto-detect.
#ifndef GF_VM_THREADED_DISPATCH
#if defined(__GNUC__) || defined(__clang__)
#define GF_VM_THREADED_DISPATCH 1
#else
#define GF_VM_THREADED_DISPATCH 0
#endif
#endif

namespace gf::vm {

using isa::Instr;
using isa::kInstrSize;
using isa::Op;

namespace {

// --- dispatch tokens (xop) --------------------------------------------------
//
// xop_[slot] refines predecoded_[slot].op into one dispatch token so the hot
// loop branches exactly once per handler entry:
//
//   0 .. kOpCount_   the base opcode (kOpCount_ = the undecodable marker)
//   kXBadJump        hole between images: fetch failure folded into dispatch
//   kXArmed          armed watch window: note the hit, single-step the base op
//   kXCmpBr ...      fused pairs, decided at predecode time
//
// plus the kXGlue bit when the fall-through successor slot is statically
// valid, unarmed and in-hull: the dispatch tail may then skip the full fetch
// (hull check, flag byte, coverage test). Safety: validity and armedness are
// immune to guest writes (invalidate_code re-decodes content but never
// touches flags), and the glue path re-reads predecoded_/xop_ fresh, so a
// stale in-register glue bit can never execute stale bytes. Fused-pair HEADS
// never write memory, so the pair's second Instr, read after the head
// executes, cannot have been invalidated mid-handler; writes by the second
// half only matter at the next dispatch, which reads the tables fresh.
//
// Fusion/glue is disabled entirely under per-pc coverage (the glue path skips
// the coverage test) and inside the armed window (single-step contract).
//
// The name list mirrors Op order exactly — static_asserts below pin it.
#define GF_VM_XOPS(X)                                                       \
  X(Nop) X(Halt) X(MovI) X(Mov) X(Ld) X(St) X(LdB) X(StB)                   \
  X(Add) X(Sub) X(Mul) X(Div) X(Mod) X(And) X(Or) X(Xor) X(Shl) X(Shr)      \
  X(AddI) X(Not) X(Neg) X(Cmp) X(CmpI)                                      \
  X(Jmp) X(Jz) X(Jnz) X(Jlt) X(Jle) X(Jgt) X(Jge)                           \
  X(Call) X(CallR) X(Ret) X(Push) X(Pop) X(Sys) X(BadOp)                    \
  X(BadJump) X(Armed)                                                       \
  X(CmpBr)   /* cmp  + conditional branch                  */               \
  X(CmpIBr)  /* cmpi + conditional branch                  */               \
  X(LdLd)    /* ld + ld                                    */               \
  X(LdAlu)   /* ld + 3-op ALU (add/sub/mul/bitops/shifts)  */               \
  X(LdPush)  /* ld + push                                  */               \
  X(MovIAlu) /* movi + 3-op ALU                            */               \
  X(MovPop)  /* mov + pop                                  */               \
  X(AluSt)   /* 3-op ALU + st                              */

enum Xop : std::uint8_t {
#define GF_VM_DEF(name) kX##name,
  GF_VM_XOPS(GF_VM_DEF)
#undef GF_VM_DEF
  kXopCount_
};

constexpr std::uint8_t kXGlue = 0x40;
constexpr std::uint8_t kXopMask = 0x3F;
static_assert(kXNop == static_cast<std::uint8_t>(Op::kNop));
static_assert(kXSys == static_cast<std::uint8_t>(Op::kSys));
static_assert(kXBadOp == static_cast<std::uint8_t>(Op::kOpCount_));
static_assert(kXopCount_ <= kXGlue, "xop tokens must fit below the glue bit");

// The 3-op ALU subset fused pairs admit: single behavior, no traps (div/mod
// keep their own handlers).
constexpr bool fusable_alu(Op op) noexcept {
  switch (op) {
    case Op::kAdd: case Op::kSub: case Op::kMul: case Op::kAnd:
    case Op::kOr: case Op::kXor: case Op::kShl: case Op::kShr:
      return true;
    default:
      return false;
  }
}

inline std::int64_t alu_eval(Op op, std::int64_t a, std::int64_t b) noexcept {
  switch (op) {
    case Op::kAdd: return a + b;
    case Op::kSub: return a - b;
    case Op::kMul: return a * b;
    case Op::kAnd: return a & b;
    case Op::kOr: return a | b;
    case Op::kXor: return a ^ b;
    case Op::kShl:
      return static_cast<std::int64_t>(static_cast<std::uint64_t>(a)
                                       << (b & 63));
    default:  // kShr — the fuse-time filter admits nothing else
      return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) >>
                                       (b & 63));
  }
}

constexpr std::uint64_t alu_cost(Op op) noexcept {
  return op == Op::kMul ? 3u : 1u;
}

// Taken-decision for the fused compare+branch handlers, indexed by
// [branch - kJz][flags + 1]. Row order matches the Op enum.
inline bool branch_taken(Op op, int flags) noexcept {
  static constexpr bool kTaken[6][3] = {
      /* kJz  */ {false, true, false},
      /* kJnz */ {true, false, true},
      /* kJlt */ {true, false, false},
      /* kJle */ {true, true, false},
      /* kJgt */ {false, false, true},
      /* kJge */ {false, true, true},
  };
  return kTaken[static_cast<int>(op) - static_cast<int>(Op::kJz)][flags + 1];
}

}  // namespace

const char* trap_name(Trap t) noexcept {
  switch (t) {
    case Trap::kNone: return "none";
    case Trap::kHalt: return "halt";
    case Trap::kBadMemory: return "bad-memory";
    case Trap::kBadOpcode: return "bad-opcode";
    case Trap::kBadJump: return "bad-jump";
    case Trap::kDivZero: return "div-zero";
    case Trap::kCycleLimit: return "cycle-limit";
    case Trap::kStackFault: return "stack-fault";
  }
  return "?";
}

std::vector<TraceEdge> WatchTrace::edges() const {
  std::vector<TraceEdge> out;
  const std::uint64_t n = edge_count < kEdgeRing ? edge_count : kEdgeRing;
  out.reserve(static_cast<std::size_t>(n));
  // Ring slots are written at edge_count % kEdgeRing; oldest surviving entry
  // starts the chronological order.
  const std::uint64_t first = edge_count - n;
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(ring[static_cast<std::size_t>((first + i) % kEdgeRing)]);
  }
  return out;
}

Machine::Machine(std::size_t mem_size)
    : mem_(mem_size, 0),
      dirty_((mem_size + kDirtyPageSize - 1) >> kDirtyPageShift, 0) {
  // Default stack: top 64 KiB of memory.
  stack_hi_ = mem_.size();
  stack_lo_ = mem_.size() > (64u << 10) ? mem_.size() - (64u << 10) : 0;
}

const std::uint8_t* Machine::raw(std::uint64_t addr, std::size_t n) const noexcept {
  if (addr >= mem_.size() || mem_.size() - addr < n) return nullptr;
  return mem_.data() + addr;
}

void Machine::mark_dirty(std::uint64_t addr, std::uint64_t len) noexcept {
  if (len == 0 || addr >= mem_.size()) return;
  if (mem_.size() - addr < len) len = mem_.size() - addr;
  note_write(addr, len);
}

void Machine::clear_dirty(std::uint64_t addr, std::uint64_t len) noexcept {
  if (len == 0 || addr >= mem_.size()) return;
  if (mem_.size() - addr < len) len = mem_.size() - addr;
  for (std::uint64_t p = addr >> kDirtyPageShift,
                     last = (addr + len - 1) >> kDirtyPageShift;
       p <= last; ++p) {
    dirty_[p] = 0;
  }
}

void Machine::clear_all_dirty() noexcept {
  std::fill(dirty_.begin(), dirty_.end(), 0);
}

Machine::State Machine::snapshot() {
  State s;
  s.mem = mem_;
  std::memcpy(s.regs.data(), regs_, sizeof regs_);
  s.flags = flags_;
  s.total_cycles = total_cycles_;
  clear_all_dirty();
  return s;
}

void Machine::restore(const State& s) {
  if (s.mem.size() != mem_.size()) {
    throw std::runtime_error("machine snapshot size mismatch");
  }
  // Copy back only pages dirtied since snapshot(); pages overlapping the
  // code hull additionally re-decode so the predecode cache never serves
  // instructions for bytes that just changed under it.
  for (std::size_t p = 0; p < dirty_.size(); ++p) {
    if (!dirty_[p]) continue;
    const std::uint64_t addr = static_cast<std::uint64_t>(p) << kDirtyPageShift;
    const std::size_t len = static_cast<std::size_t>(
        std::min<std::uint64_t>(kDirtyPageSize, mem_.size() - addr));
    std::memcpy(mem_.data() + addr, s.mem.data() + addr, len);
    maybe_invalidate(addr, len);
  }
  std::memcpy(regs_, s.regs.data(), sizeof regs_);
  flags_ = s.flags;
  total_cycles_ = s.total_cycles;
  clear_all_dirty();
}

void Machine::restore_full(const State& s) {
  if (s.mem.size() != mem_.size()) {
    throw std::runtime_error("machine snapshot size mismatch");
  }
  mem_ = s.mem;
  std::memcpy(regs_, s.regs.data(), sizeof regs_);
  flags_ = s.flags;
  total_cycles_ = s.total_cycles;
  rebuild_predecode();
  clear_all_dirty();
}

void Machine::begin_write_capture() {
  capture_ = true;
  captured_.clear();
}

std::vector<WriteSpan> Machine::end_write_capture() {
  capture_ = false;
  return std::move(captured_);
}

void Machine::load_image(const isa::Image& img) {
  reload_code(img);
  code_ranges_.push_back({img.base(), img.end()});
  rebuild_predecode();
}

void Machine::reload_code(const isa::Image& img) {
  const auto code = img.code();
  if (img.base() + code.size() > mem_.size()) {
    // Misconfigured layout is a programming error in the embedding code,
    // not a runtime fault of the guest; fail loudly.
    throw std::runtime_error("image does not fit in VM memory: " + img.name());
  }
  std::memcpy(mem_.data() + img.base(), code.data(), code.size());
  maybe_invalidate(img.base(), code.size());
  if (!code.empty()) note_write(img.base(), code.size());
}

bool Machine::patch_code(std::uint64_t addr, const void* data,
                         std::size_t n) noexcept {
  if (n == 0) return true;
  if (addr >= mem_.size() || mem_.size() - addr < n) return false;
  std::memcpy(mem_.data() + addr, data, n);
  maybe_invalidate(addr, n);
  note_write(addr, n);
  return true;
}

void Machine::invalidate_code(std::uint64_t addr, std::uint64_t len) noexcept {
  if (predecoded_.empty() || len == 0) return;
  if (addr >= code_hi_) return;
  const std::uint64_t end =
      len > code_hi_ - addr ? code_hi_ : addr + len;  // overflow-safe clamp
  if (end <= code_lo_) return;
  const std::uint64_t lo = addr > code_lo_ ? addr : code_lo_;
  const auto s0 = static_cast<std::size_t>((lo - code_lo_) / kInstrSize);
  const auto e = static_cast<std::size_t>(
      (end - code_lo_ + kInstrSize - 1) / kInstrSize);
  // Only re-decodes; slot flags (validity, armed bits) are left untouched,
  // so an armed fault window survives the inject/restore patches it watches.
  for (std::size_t s = s0; s < e; ++s) {
    if (!(slot_flags_[s] & kSlotValid)) continue;
    const std::uint8_t* p = mem_.data() + code_lo_ + s * kInstrSize;
    if (!isa::decode_into(p, predecoded_[s])) {
      predecoded_[s] = Instr{Op::kOpCount_, 0, 0, 0, 0};
    }
  }
  // Re-tokenize, one slot wider to the left: a write landing on the second
  // half of a fused pair must split the superinstruction whose head lies
  // just before the written range.
  rebuild_xop(s0 > 0 ? s0 - 1 : 0, e);
}

void Machine::set_predecode(bool enabled) {
  predecode_ = enabled;
  rebuild_predecode();
}

void Machine::set_fusion(bool enabled) {
  fusion_ = enabled;
  if (!predecoded_.empty()) rebuild_xop(0, predecoded_.size());
}

const char* Machine::dispatch_kind() noexcept {
#if GF_VM_THREADED_DISPATCH
  return "threaded";
#else
  return "switch";
#endif
}

std::uint64_t Machine::state_digest() const noexcept {
  // FNV-1a over every architectural observable. Dispatch strategy state
  // (predecode tables, xop tokens, samplers, stats) is deliberately
  // excluded: two machines agree here iff a guest program cannot tell them
  // apart, which is exactly the equivalence the differential fuzzer checks.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const void* p, std::size_t n) noexcept {
    const auto* b = static_cast<const std::uint8_t*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ULL;
    }
  };
  mix(mem_.data(), mem_.size());
  mix(regs_, sizeof regs_);
  mix(&flags_, sizeof flags_);
  mix(&total_cycles_, sizeof total_cycles_);
  return h;
}

std::uint8_t Machine::xop_for_slot(std::size_t s) const noexcept {
  const std::uint8_t f = slot_flags_[s];
  if (!(f & kSlotValid)) return kXBadJump;
  if (f & kSlotArmed) return kXArmed;  // single-step inside the fault window
  const Instr& a = predecoded_[s];
  const auto base = static_cast<std::uint8_t>(a.op);
  // Undecodable slots trap, syscall handlers may rewrite anything (including
  // these tables), and coverage records per-pc at the full fetch: none of
  // them glue or fuse.
  if (a.op == Op::kOpCount_ || a.op == Op::kSys || !fusion_ || coverage_) {
    return base;
  }
  if (s + 1 >= predecoded_.size()) return base;
  const std::uint8_t f2 = slot_flags_[s + 1];
  if (!(f2 & kSlotValid) || (f2 & kSlotArmed)) return base;
  // Fall-through successor is statically safe: glue at least, and known
  // pairs collapse into one handler. Pair heads never write memory (see the
  // token-table comment for why that matters).
  std::uint8_t x = base;
  const Op b = predecoded_[s + 1].op;
  switch (a.op) {
    case Op::kCmp:
      if (isa::is_branch(b)) x = kXCmpBr;
      break;
    case Op::kCmpI:
      if (isa::is_branch(b)) x = kXCmpIBr;
      break;
    case Op::kLd:
      if (b == Op::kLd) x = kXLdLd;
      else if (fusable_alu(b)) x = kXLdAlu;
      else if (b == Op::kPush) x = kXLdPush;
      break;
    case Op::kMovI:
      if (fusable_alu(b)) x = kXMovIAlu;
      break;
    case Op::kMov:
      if (b == Op::kPop) x = kXMovPop;
      break;
    default:
      if (fusable_alu(a.op) && b == Op::kSt) x = kXAluSt;
      break;
  }
  return static_cast<std::uint8_t>(x | kXGlue);
}

void Machine::rebuild_xop(std::size_t lo_slot, std::size_t hi_slot) noexcept {
  if (xop_.size() != predecoded_.size()) {
    xop_.assign(predecoded_.size(), kXBadJump);
  }
  if (hi_slot > xop_.size()) hi_slot = xop_.size();
  for (std::size_t s = lo_slot; s < hi_slot; ++s) xop_[s] = xop_for_slot(s);
}

void Machine::rebuild_xop_for_range(std::uint64_t lo, std::uint64_t hi) noexcept {
  if (predecoded_.empty() || hi <= lo) return;
  if (lo < code_lo_) lo = code_lo_;
  if (hi > code_hi_) hi = code_hi_;
  if (hi <= lo) return;
  const auto s0 = static_cast<std::size_t>((lo - code_lo_) / kInstrSize);
  const auto s1 = static_cast<std::size_t>(
      (hi - code_lo_ + kInstrSize - 1) / kInstrSize);
  rebuild_xop(s0 > 0 ? s0 - 1 : 0, s1);
}

void Machine::rebuild_predecode() {
  predecoded_.clear();
  slot_flags_.clear();
  xop_.clear();
  code_lo_ = code_hi_ = 0;
  if (!predecode_ || code_ranges_.empty()) return;
  code_lo_ = code_ranges_.front().lo;
  for (const auto& r : code_ranges_) {
    // The slot grid only works when every image starts on an instruction
    // boundary (always true for compiler/assembler output). A misaligned
    // base falls back to the per-step decode path.
    if (r.lo % kInstrSize != 0) {
      code_lo_ = code_hi_ = 0;
      return;
    }
    code_lo_ = std::min(code_lo_, r.lo);
    code_hi_ = std::max(code_hi_, r.hi);
  }
  const auto slots =
      static_cast<std::size_t>((code_hi_ - code_lo_ + kInstrSize - 1) / kInstrSize);
  predecoded_.assign(slots, Instr{Op::kOpCount_, 0, 0, 0, 0});
  slot_flags_.assign(slots, 0);
  for (const auto& r : code_ranges_) {
    for (std::uint64_t a = r.lo; a + kInstrSize <= r.hi; a += kInstrSize) {
      const auto s = static_cast<std::size_t>((a - code_lo_) / kInstrSize);
      slot_flags_[s] = kSlotValid;
    }
  }
  for (std::size_t s = 0; s < slots; ++s) {
    if (!(slot_flags_[s] & kSlotValid)) continue;
    if (!isa::decode_into(mem_.data() + code_lo_ + s * kInstrSize,
                          predecoded_[s])) {
      predecoded_[s] = Instr{Op::kOpCount_, 0, 0, 0, 0};
    }
  }
  apply_watch_bits();
  rebuild_xop(0, slots);
}

void Machine::apply_watch_bits() noexcept {
  if (watch_hi_ == 0 || slot_flags_.empty()) return;
  for (std::uint64_t a = watch_lo_; a < watch_hi_; a += kInstrSize) {
    if (a < code_lo_ || a + kInstrSize > code_hi_) continue;
    slot_flags_[static_cast<std::size_t>((a - code_lo_) / kInstrSize)] |=
        kSlotArmed;
  }
}

void Machine::arm_watch(std::uint64_t lo, std::uint64_t hi) {
  disarm_watch();
  if (hi <= lo) return;
  watch_lo_ = lo;
  watch_hi_ = hi;
  watch_ = WatchTrace{};
  apply_watch_bits();
  // Armed slots single-step (kXArmed) and their predecessors lose glue/fusion
  // so every entry into the window goes through the full fetch.
  rebuild_xop_for_range(watch_lo_, watch_hi_);
}

void Machine::disarm_watch() {
  const std::uint64_t lo = watch_lo_, hi = watch_hi_;
  if (watch_hi_ != 0 && !slot_flags_.empty()) {
    for (std::uint64_t a = watch_lo_; a < watch_hi_; a += kInstrSize) {
      if (a < code_lo_ || a + kInstrSize > code_hi_) continue;
      slot_flags_[static_cast<std::size_t>((a - code_lo_) / kInstrSize)] &=
          static_cast<std::uint8_t>(~kSlotArmed);
    }
  }
  watch_lo_ = watch_hi_ = 0;
  edge_live_ = false;
  rebuild_xop_for_range(lo, hi);  // window slots re-fuse once disarmed
}

void Machine::note_watch_hit(std::uint64_t cycles) noexcept {
  if (watch_.hits++ == 0) watch_.first_hit_cycle = total_cycles_ + cycles;
  edge_live_ = true;
}

void Machine::note_watch_edge(std::uint64_t from, std::uint64_t to) noexcept {
  watch_.ring[static_cast<std::size_t>(watch_.edge_count % WatchTrace::kEdgeRing)] =
      TraceEdge{from, to};
  ++watch_.edge_count;
}

void Machine::arm_sampler(std::uint64_t stride) {
  samples_.clear();
  sample_stride_ = stride;
  sample_left_ = stride == 0 ? kSamplerIdle : static_cast<std::int64_t>(stride);
}

void Machine::disarm_sampler() {
  sample_stride_ = 0;
  sample_left_ = kSamplerIdle;
}

std::int64_t Machine::note_sample(std::uint64_t pc, std::int64_t left) {
  // Overshoot carries into the next period so the sample cadence stays an
  // exact function of consumed cycles; the loop handles instructions whose
  // cost spans several strides (e.g. SYS at a small stride).
  do {
    ++samples_[pc];
    left += static_cast<std::int64_t>(sample_stride_);
  } while (left <= 0);
  return left;
}

void Machine::set_stack_region(std::uint64_t lo, std::uint64_t hi) {
  stack_lo_ = lo;
  stack_hi_ = hi;
}

bool Machine::read_u8(std::uint64_t addr, std::uint8_t& out) const noexcept {
  if (addr < kNullPageSize || addr >= mem_.size()) return false;
  out = mem_[addr];
  return true;
}

bool Machine::write_u8(std::uint64_t addr, std::uint8_t v) noexcept {
  if (addr < kNullPageSize || addr >= mem_.size()) return false;
  mem_[addr] = v;
  maybe_invalidate(addr, 1);
  note_write(addr, 1);
  return true;
}

bool Machine::read_u64(std::uint64_t addr, std::uint64_t& out) const noexcept {
  // addr near 2^64 (a negative guest pointer) must not wrap past the check.
  if (addr < kNullPageSize || addr >= mem_.size() || mem_.size() - addr < 8)
    return false;
  std::memcpy(&out, mem_.data() + addr, 8);
  return true;
}

bool Machine::write_u64(std::uint64_t addr, std::uint64_t v) noexcept {
  if (addr < kNullPageSize || addr >= mem_.size() || mem_.size() - addr < 8)
    return false;
  std::memcpy(mem_.data() + addr, &v, 8);
  maybe_invalidate(addr, 8);
  note_write(addr, 8);
  return true;
}

bool Machine::read_bytes(std::uint64_t addr, void* out, std::size_t n) const noexcept {
  if (n == 0) return true;
  if (addr < kNullPageSize || addr >= mem_.size() || mem_.size() - addr < n)
    return false;
  std::memcpy(out, mem_.data() + addr, n);
  return true;
}

bool Machine::write_bytes(std::uint64_t addr, const void* data, std::size_t n) noexcept {
  if (n == 0) return true;
  if (addr < kNullPageSize || addr >= mem_.size() || mem_.size() - addr < n)
    return false;
  std::memcpy(mem_.data() + addr, data, n);
  maybe_invalidate(addr, n);
  note_write(addr, n);
  return true;
}

bool Machine::read_cstr(std::uint64_t addr, std::string& out,
                        std::size_t max_len) const noexcept {
  out.clear();
  if (addr < kNullPageSize || addr >= mem_.size()) return false;
  // One bounds check plus memchr over guest memory instead of a per-byte
  // checked read: this sits on the path of every path-string API call.
  const auto avail = static_cast<std::size_t>(
      std::min<std::uint64_t>(max_len, mem_.size() - addr));
  const auto* base = mem_.data() + addr;
  const auto* nul = static_cast<const std::uint8_t*>(std::memchr(base, 0, avail));
  if (nul == nullptr) return false;  // unterminated within max_len / memory
  out.assign(reinterpret_cast<const char*>(base),
             static_cast<std::size_t>(nul - base));
  return true;
}

bool Machine::in_code(std::uint64_t addr) const noexcept {
  // Straight-line execution almost always stays within one image, so the
  // last-hit range makes the common case O(1) even without the predecode
  // bitmap (which replaces this walk entirely on the fast path).
  if (last_range_ < code_ranges_.size()) {
    const auto& r = code_ranges_[last_range_];
    if (addr >= r.lo && addr + kInstrSize <= r.hi) return true;
  }
  for (std::size_t i = 0; i < code_ranges_.size(); ++i) {
    const auto& r = code_ranges_[i];
    if (addr >= r.lo && addr + kInstrSize <= r.hi) {
      last_range_ = i;
      return true;
    }
  }
  return false;
}

void Machine::set_coverage(bool enabled) {
  coverage_ = enabled;
  if (enabled && covered_.empty()) covered_.resize(mem_.size() / kInstrSize, false);
  // Coverage records per-pc at the full fetch, which glue would skip:
  // re-tokenize so coverage runs execute strictly unfused.
  if (!predecoded_.empty()) rebuild_xop(0, predecoded_.size());
}

void Machine::clear_coverage() {
  executed_.clear();
  std::fill(covered_.begin(), covered_.end(), false);
}

RunResult Machine::call(std::uint64_t addr, const std::vector<std::int64_t>& args,
                        std::uint64_t cycle_budget) {
  // Fresh frame at the top of the stack region with the sentinel as the
  // return address; a RET from the callee then ends the run cleanly.
  std::int64_t saved_regs[isa::kNumRegs];
  std::memcpy(saved_regs, regs_, sizeof regs_);

  regs_[isa::kRegSp] = static_cast<std::int64_t>(stack_hi_);
  regs_[isa::kRegFp] = static_cast<std::int64_t>(stack_hi_);
  for (std::size_t i = 0; i < args.size() && i < isa::kNumArgRegs; ++i) {
    regs_[isa::kRegArg0 + i] = args[i];
  }
  // Push sentinel return address.
  regs_[isa::kRegSp] -= 8;
  if (!write_u64(static_cast<std::uint64_t>(regs_[isa::kRegSp]), kReturnSentinel)) {
    std::memcpy(regs_, saved_regs, sizeof regs_);
    return {Trap::kStackFault, 0, addr, 0};
  }

  RunResult res = execute(addr, cycle_budget);
  res.ret = regs_[isa::kRegRet];
  std::memcpy(regs_, saved_regs, sizeof regs_);
  return res;
}

RunResult Machine::run(std::uint64_t pc, std::uint64_t cycle_budget) {
  RunResult res = execute(pc, cycle_budget);
  res.ret = regs_[isa::kRegRet];
  return res;
}

RunResult Machine::execute(std::uint64_t pc, std::uint64_t cycle_budget) {
  std::uint64_t cycles = 0;
  std::uint64_t steps = 0;
  // Sampler countdown, carried in a register across the run (kSamplerIdle
  // when disarmed, so the per-step tick is one sub + never-taken branch).
  std::int64_t sleft = sample_left_;
  // Single exit: every termination path funnels through here so the
  // lifetime counters and dispatch stats are folded in exactly once per run
  // (the loop itself only touches the two local accumulators). `steps`
  // counts architecturally retired instructions — fused handlers bump it
  // once per half, and the fetch-failure tokens (kXBadJump / kXBadOp), which
  // flow through dispatch after the increment, give it back.
  auto stop = [&](Trap t) {
    total_cycles_ += cycles;
    sample_left_ = sleft;
    stats_.instructions += steps;
    ++stats_.runs;
    ++stats_.traps[static_cast<std::size_t>(t)];
    return RunResult{t, cycles, pc, 0};
  };

  auto& R = regs_;
  Instr in{};   // instruction being dispatched
  Instr b{};    // second half of a fused pair
  std::uint8_t xop = 0;
  std::size_t slot = 0;
  std::uint64_t next = 0;
  std::uint64_t cost = 0;

#if GF_VM_THREADED_DISPATCH
  // Indexed by (xop & kXopMask); entries past kXopCount_ are unreachable by
  // construction but still land on a defined handler.
  static const void* const kXopLabels[kXopMask + 1] = {
#define GF_VM_LBL(name) &&H_##name,
      GF_VM_XOPS(GF_VM_LBL)
#undef GF_VM_LBL
      &&H_BadOp, &&H_BadOp, &&H_BadOp, &&H_BadOp, &&H_BadOp, &&H_BadOp,
      &&H_BadOp, &&H_BadOp, &&H_BadOp, &&H_BadOp, &&H_BadOp, &&H_BadOp,
      &&H_BadOp, &&H_BadOp, &&H_BadOp, &&H_BadOp, &&H_BadOp,
  };
  static_assert(kXopCount_ == 47, "update the kXopLabels padding");
#define VM_CASE(name) H_##name:
#else
#define VM_CASE(name) case kX##name:
#endif

  // Sampler tick, placed wherever an instruction's cycle cost is committed
  // while `pc` still names the retiring instruction: at `tail:` and at the
  // head-retire point inside VM_FUSE_NEXT. Those are exactly the retired
  // architectural-step boundaries, so fused and unfused execution (and both
  // dispatch lowerings) decrement by identical (pc, cost) sequences and
  // produce bit-identical sample streams. Terminal cycle commits on the
  // stop paths (HALT, sentinel RET, failed SYS) are excluded in all modes
  // alike. Disarmed, the countdown sits at kSamplerIdle: one decrement and
  // a never-taken branch.
#define VM_SAMPLE(c)                             \
  sleft -= static_cast<std::int64_t>(c);         \
  if (sleft <= 0) [[unlikely]] sleft = note_sample(pc, sleft)

  // Architectural boundary between the two halves of a fused pair: the head
  // has fully retired (its cycles and pc advance are committed), so a budget
  // stop before the second half or a trap inside it is indistinguishable
  // from unfused execution. The head never transfers control, so no
  // edge-ring check is due at this boundary.
#define VM_FUSE_NEXT(head_cost)                        \
  cycles += (head_cost);                               \
  VM_SAMPLE(head_cost);                                \
  pc += kInstrSize;                                    \
  if (cycles >= cycle_budget) [[unlikely]] goto fetch; \
  ++steps;                                             \
  ++slot;                                              \
  b = predecoded_[slot];                               \
  xop = xop_[slot];                                    \
  next = pc + kInstrSize;                              \
  cost = 1

fetch:
  if (cycles >= cycle_budget) return stop(Trap::kCycleLimit);
  if (!predecoded_.empty()) {
    // Fast path: one hull check + token/side-table fetch. The short-circuit
    // keeps the slot index in-bounds before the tables are touched;
    // pc - code_lo_ may wrap but is then never used. Validity, armedness and
    // undecodability are pre-folded into the token, so the only per-fetch
    // branches are the hull check and the (normally false) coverage test.
    const std::uint64_t rel = pc - code_lo_;
    slot = static_cast<std::size_t>(rel / kInstrSize);
    if (pc < code_lo_ || pc + kInstrSize > code_hi_ || rel % kInstrSize != 0) {
      return stop(Trap::kBadJump);
    }
    in = predecoded_[slot];
    xop = xop_[slot];
    if (coverage_) {
      if (xop != kXBadJump) {  // holes were never recorded as executed
        const std::size_t idx = pc / kInstrSize;
        if (!covered_[idx]) {
          covered_[idx] = true;
          executed_.push_back(pc);
        }
      }
    }
  } else {
    if (!in_code(pc) || pc % kInstrSize != 0) return stop(Trap::kBadJump);
    // Fallback decode path: no slot table, so the watch is a range compare.
    if (watch_hi_ != 0 && pc >= watch_lo_ && pc < watch_hi_) [[unlikely]] {
      note_watch_hit(cycles);
    }
    if (coverage_) {
      const std::size_t idx = pc / kInstrSize;
      if (!covered_[idx]) {
        covered_[idx] = true;
        executed_.push_back(pc);
      }
    }
    if (!isa::decode_into(mem_.data() + pc, in)) return stop(Trap::kBadOpcode);
    xop = static_cast<std::uint8_t>(in.op);
  }
  ++steps;
  next = pc + kInstrSize;
  cost = 1;

dispatch:
#if GF_VM_THREADED_DISPATCH
  goto* kXopLabels[xop & kXopMask];
#else
  switch (xop & kXopMask) {
#endif

  // --- base opcodes (shared by both lowerings; each body ends in a goto) ---
  VM_CASE(Nop) { goto tail; }
  VM_CASE(Halt) {
    ++cycles;
    return stop(Trap::kHalt);
  }
  VM_CASE(MovI) {
    R[in.rd] = static_cast<std::int64_t>(in.imm);
    goto tail;
  }
  VM_CASE(Mov) {
    R[in.rd] = R[in.rs1];
    goto tail;
  }
  VM_CASE(Ld) {
    std::uint64_t v;
    if (!read_u64(static_cast<std::uint64_t>(
                      R[in.rs1] + static_cast<std::int64_t>(in.imm)), v)) {
      return stop(Trap::kBadMemory);
    }
    R[in.rd] = static_cast<std::int64_t>(v);
    cost = 2;
    goto tail;
  }
  VM_CASE(St) {
    if (!write_u64(static_cast<std::uint64_t>(
                       R[in.rs1] + static_cast<std::int64_t>(in.imm)),
                   static_cast<std::uint64_t>(R[in.rs2]))) {
      return stop(Trap::kBadMemory);
    }
    cost = 2;
    goto tail;
  }
  VM_CASE(LdB) {
    std::uint8_t v;
    if (!read_u8(static_cast<std::uint64_t>(
                     R[in.rs1] + static_cast<std::int64_t>(in.imm)), v)) {
      return stop(Trap::kBadMemory);
    }
    R[in.rd] = v;
    cost = 2;
    goto tail;
  }
  VM_CASE(StB) {
    if (!write_u8(static_cast<std::uint64_t>(
                      R[in.rs1] + static_cast<std::int64_t>(in.imm)),
                  static_cast<std::uint8_t>(R[in.rs2]))) {
      return stop(Trap::kBadMemory);
    }
    cost = 2;
    goto tail;
  }
  VM_CASE(Add) {
    R[in.rd] = R[in.rs1] + R[in.rs2];
    goto tail;
  }
  VM_CASE(Sub) {
    R[in.rd] = R[in.rs1] - R[in.rs2];
    goto tail;
  }
  VM_CASE(Mul) {
    R[in.rd] = R[in.rs1] * R[in.rs2];
    cost = 3;
    goto tail;
  }
  VM_CASE(Div) {
    if (R[in.rs2] == 0) return stop(Trap::kDivZero);
    R[in.rd] = R[in.rs1] / R[in.rs2];
    cost = 10;
    goto tail;
  }
  VM_CASE(Mod) {
    if (R[in.rs2] == 0) return stop(Trap::kDivZero);
    R[in.rd] = R[in.rs1] % R[in.rs2];
    cost = 10;
    goto tail;
  }
  VM_CASE(And) {
    R[in.rd] = R[in.rs1] & R[in.rs2];
    goto tail;
  }
  VM_CASE(Or) {
    R[in.rd] = R[in.rs1] | R[in.rs2];
    goto tail;
  }
  VM_CASE(Xor) {
    R[in.rd] = R[in.rs1] ^ R[in.rs2];
    goto tail;
  }
  VM_CASE(Shl) {
    R[in.rd] = static_cast<std::int64_t>(static_cast<std::uint64_t>(R[in.rs1])
                                         << (R[in.rs2] & 63));
    goto tail;
  }
  VM_CASE(Shr) {
    R[in.rd] = static_cast<std::int64_t>(static_cast<std::uint64_t>(R[in.rs1]) >>
                                         (R[in.rs2] & 63));
    goto tail;
  }
  VM_CASE(AddI) {
    R[in.rd] = R[in.rs1] + static_cast<std::int64_t>(in.imm);
    goto tail;
  }
  VM_CASE(Not) {
    R[in.rd] = ~R[in.rs1];
    goto tail;
  }
  VM_CASE(Neg) {
    R[in.rd] = -R[in.rs1];
    goto tail;
  }
  VM_CASE(Cmp) {
    flags_ = R[in.rs1] < R[in.rs2] ? -1 : (R[in.rs1] > R[in.rs2] ? 1 : 0);
    goto tail;
  }
  VM_CASE(CmpI) {
    const auto imm = static_cast<std::int64_t>(in.imm);
    flags_ = R[in.rs1] < imm ? -1 : (R[in.rs1] > imm ? 1 : 0);
    goto tail;
  }
  VM_CASE(Jmp) {
    next = static_cast<std::uint64_t>(static_cast<std::int64_t>(in.imm));
    goto tail;
  }
  VM_CASE(Jz) {
    if (flags_ == 0) next = static_cast<std::uint64_t>(static_cast<std::int64_t>(in.imm));
    goto tail;
  }
  VM_CASE(Jnz) {
    if (flags_ != 0) next = static_cast<std::uint64_t>(static_cast<std::int64_t>(in.imm));
    goto tail;
  }
  VM_CASE(Jlt) {
    if (flags_ < 0) next = static_cast<std::uint64_t>(static_cast<std::int64_t>(in.imm));
    goto tail;
  }
  VM_CASE(Jle) {
    if (flags_ <= 0) next = static_cast<std::uint64_t>(static_cast<std::int64_t>(in.imm));
    goto tail;
  }
  VM_CASE(Jgt) {
    if (flags_ > 0) next = static_cast<std::uint64_t>(static_cast<std::int64_t>(in.imm));
    goto tail;
  }
  VM_CASE(Jge) {
    if (flags_ >= 0) next = static_cast<std::uint64_t>(static_cast<std::int64_t>(in.imm));
    goto tail;
  }
  VM_CASE(Call) {
    const auto sp = static_cast<std::uint64_t>(R[isa::kRegSp]) - 8;
    if (sp < stack_lo_ || sp + 8 > stack_hi_) return stop(Trap::kStackFault);
    if (!write_u64(sp, next)) return stop(Trap::kBadMemory);
    R[isa::kRegSp] = static_cast<std::int64_t>(sp);
    next = static_cast<std::uint64_t>(static_cast<std::int64_t>(in.imm));
    cost = 2;
    goto tail;
  }
  VM_CASE(CallR) {
    const auto sp = static_cast<std::uint64_t>(R[isa::kRegSp]) - 8;
    if (sp < stack_lo_ || sp + 8 > stack_hi_) return stop(Trap::kStackFault);
    if (!write_u64(sp, next)) return stop(Trap::kBadMemory);
    R[isa::kRegSp] = static_cast<std::int64_t>(sp);
    next = static_cast<std::uint64_t>(R[in.rs1]);
    cost = 2;
    goto tail;
  }
  VM_CASE(Ret) {
    const auto sp = static_cast<std::uint64_t>(R[isa::kRegSp]);
    if (sp < stack_lo_ || sp + 8 > stack_hi_) return stop(Trap::kStackFault);
    std::uint64_t ra;
    if (!read_u64(sp, ra)) return stop(Trap::kBadMemory);
    R[isa::kRegSp] = static_cast<std::int64_t>(sp + 8);
    if (ra == kReturnSentinel) {
      ++cycles;
      return stop(Trap::kHalt);
    }
    next = ra;
    cost = 2;
    goto tail;
  }
  VM_CASE(Push) {
    const auto sp = static_cast<std::uint64_t>(R[isa::kRegSp]) - 8;
    if (sp < stack_lo_ || sp + 8 > stack_hi_) return stop(Trap::kStackFault);
    if (!write_u64(sp, static_cast<std::uint64_t>(R[in.rs1]))) {
      return stop(Trap::kBadMemory);
    }
    R[isa::kRegSp] = static_cast<std::int64_t>(sp);
    cost = 2;
    goto tail;
  }
  VM_CASE(Pop) {
    const auto sp = static_cast<std::uint64_t>(R[isa::kRegSp]);
    if (sp < stack_lo_ || sp + 8 > stack_hi_) return stop(Trap::kStackFault);
    std::uint64_t v;
    if (!read_u64(sp, v)) return stop(Trap::kBadMemory);
    R[in.rd] = static_cast<std::int64_t>(v);
    R[isa::kRegSp] = static_cast<std::int64_t>(sp + 8);
    cost = 2;
    goto tail;
  }
  VM_CASE(Sys) {
    if (!syscall_) return stop(Trap::kBadOpcode);
    const Trap t = syscall_(*this, in.imm);
    if (t != Trap::kNone) {
      cycles += 20;
      return stop(t);
    }
    cost = 20;
    goto tail;
  }
  VM_CASE(BadOp) {
    // Fetch-time failure routed through dispatch: not a retired instruction.
    --steps;
    return stop(Trap::kBadOpcode);
  }

  // --- fetch-failure tokens -------------------------------------------------
  VM_CASE(BadJump) {
    --steps;  // hole between images: nothing retired
    return stop(Trap::kBadJump);
  }
  VM_CASE(Armed) {
    // Single-step fallback inside the fault window: record the hit, then
    // dispatch the base opcode (nothing in the window fuses or glues, and
    // the predecessor's glue was cleared, so every entry lands here).
    note_watch_hit(cycles);
    xop = static_cast<std::uint8_t>(in.op);
    goto dispatch;
  }

  // --- fused pairs ----------------------------------------------------------
  VM_CASE(CmpBr) {
    flags_ = R[in.rs1] < R[in.rs2] ? -1 : (R[in.rs1] > R[in.rs2] ? 1 : 0);
    VM_FUSE_NEXT(1);
    if (branch_taken(b.op, flags_)) {
      next = static_cast<std::uint64_t>(static_cast<std::int64_t>(b.imm));
    }
    goto tail;
  }
  VM_CASE(CmpIBr) {
    const auto imm = static_cast<std::int64_t>(in.imm);
    flags_ = R[in.rs1] < imm ? -1 : (R[in.rs1] > imm ? 1 : 0);
    VM_FUSE_NEXT(1);
    if (branch_taken(b.op, flags_)) {
      next = static_cast<std::uint64_t>(static_cast<std::int64_t>(b.imm));
    }
    goto tail;
  }
  VM_CASE(LdLd) {
    std::uint64_t v;
    if (!read_u64(static_cast<std::uint64_t>(
                      R[in.rs1] + static_cast<std::int64_t>(in.imm)), v)) {
      return stop(Trap::kBadMemory);
    }
    R[in.rd] = static_cast<std::int64_t>(v);
    VM_FUSE_NEXT(2);
    if (!read_u64(static_cast<std::uint64_t>(
                      R[b.rs1] + static_cast<std::int64_t>(b.imm)), v)) {
      return stop(Trap::kBadMemory);
    }
    R[b.rd] = static_cast<std::int64_t>(v);
    cost = 2;
    goto tail;
  }
  VM_CASE(LdAlu) {
    std::uint64_t v;
    if (!read_u64(static_cast<std::uint64_t>(
                      R[in.rs1] + static_cast<std::int64_t>(in.imm)), v)) {
      return stop(Trap::kBadMemory);
    }
    R[in.rd] = static_cast<std::int64_t>(v);
    VM_FUSE_NEXT(2);
    R[b.rd] = alu_eval(b.op, R[b.rs1], R[b.rs2]);
    cost = alu_cost(b.op);
    goto tail;
  }
  VM_CASE(LdPush) {
    std::uint64_t v;
    if (!read_u64(static_cast<std::uint64_t>(
                      R[in.rs1] + static_cast<std::int64_t>(in.imm)), v)) {
      return stop(Trap::kBadMemory);
    }
    R[in.rd] = static_cast<std::int64_t>(v);
    VM_FUSE_NEXT(2);
    {
      const auto sp = static_cast<std::uint64_t>(R[isa::kRegSp]) - 8;
      if (sp < stack_lo_ || sp + 8 > stack_hi_) return stop(Trap::kStackFault);
      if (!write_u64(sp, static_cast<std::uint64_t>(R[b.rs1]))) {
        return stop(Trap::kBadMemory);
      }
      R[isa::kRegSp] = static_cast<std::int64_t>(sp);
    }
    cost = 2;
    goto tail;
  }
  VM_CASE(MovIAlu) {
    R[in.rd] = static_cast<std::int64_t>(in.imm);
    VM_FUSE_NEXT(1);
    R[b.rd] = alu_eval(b.op, R[b.rs1], R[b.rs2]);
    cost = alu_cost(b.op);
    goto tail;
  }
  VM_CASE(MovPop) {
    R[in.rd] = R[in.rs1];
    VM_FUSE_NEXT(1);
    {
      const auto sp = static_cast<std::uint64_t>(R[isa::kRegSp]);
      if (sp < stack_lo_ || sp + 8 > stack_hi_) return stop(Trap::kStackFault);
      std::uint64_t v;
      if (!read_u64(sp, v)) return stop(Trap::kBadMemory);
      R[b.rd] = static_cast<std::int64_t>(v);
      R[isa::kRegSp] = static_cast<std::int64_t>(sp + 8);
    }
    cost = 2;
    goto tail;
  }
  VM_CASE(AluSt) {
    R[in.rd] = alu_eval(in.op, R[in.rs1], R[in.rs2]);
    VM_FUSE_NEXT(alu_cost(in.op));
    if (!write_u64(static_cast<std::uint64_t>(
                       R[b.rs1] + static_cast<std::int64_t>(b.imm)),
                   static_cast<std::uint64_t>(R[b.rs2]))) {
      return stop(Trap::kBadMemory);
    }
    cost = 2;
    goto tail;
  }

#if !GF_VM_THREADED_DISPATCH
  default:
    // Unreachable: every token value has a case above.
    --steps;
    return stop(Trap::kBadOpcode);
  }
#endif

tail:
  // Error-propagation edges: only live between the first watch hit and
  // disarm, i.e. while an injected fault is both armed and activated.
  if (edge_live_) [[unlikely]] {
    if (next != pc + kInstrSize) note_watch_edge(pc, next);
  }
  cycles += cost;
  VM_SAMPLE(cost);
  // Glue fast path: the successor slot is statically valid, unarmed and
  // in-hull, so a fall-through skips the full fetch. Everything the skipped
  // checks guard is write-immune (validity, armedness, coverage off) or
  // re-read fresh right here (instruction bytes, token).
  if ((xop & kXGlue) != 0 && next == pc + kInstrSize && cycles < cycle_budget) {
    pc = next;
    ++slot;
    in = predecoded_[slot];
    xop = xop_[slot];
    ++steps;
    next = pc + kInstrSize;
    cost = 1;
    goto dispatch;
  }
  pc = next;
  goto fetch;

#undef VM_CASE
#undef VM_FUSE_NEXT
#undef VM_SAMPLE
}

}  // namespace gf::vm
