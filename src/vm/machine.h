// The VISA virtual machine.
//
// The Machine executes (possibly mutated) code with *full containment*:
// every memory access is bounds-checked, the first page is left unmapped so
// null-pointer dereferences trap, control transfers are validated, and a
// cycle budget turns infinite loops into kCycleLimit traps. This is what
// lets the benchmark harness classify fault consequences (wrong result /
// crash / hang) instead of crashing the host process.
//
// A simple cycle cost model (memory ops and mul/div cost more, syscalls a
// lot more) feeds the performance simulation: response times in the
// SPECWeb-like client are derived from cycles consumed by OS API calls.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "isa/image.h"
#include "isa/isa.h"

namespace gf::vm {

enum class Trap : std::uint8_t {
  kNone = 0,     ///< still running (internal)
  kHalt,         ///< HALT executed or top-level RET reached
  kBadMemory,    ///< out-of-range or null-page access
  kBadOpcode,    ///< undecodable instruction (e.g. mutated into garbage)
  kBadJump,      ///< control transfer outside loaded code
  kDivZero,      ///< DIV/MOD by zero
  kCycleLimit,   ///< cycle budget exhausted (hang)
  kStackFault,   ///< push/pop outside the stack region
};

const char* trap_name(Trap t) noexcept;

constexpr std::size_t kNumTraps = 8;  ///< one past Trap::kStackFault

/// Lifetime dispatch tallies, folded in once per run at the execute() exit
/// (never touched inside the dispatch loop — the loop keeps a local step
/// counter in a register). The campaign controller harvests deltas of these
/// at run boundaries into the obs registry.
struct DispatchStats {
  std::uint64_t instructions = 0;  ///< instructions retired (incl. the trap op)
  std::uint64_t runs = 0;          ///< execute() invocations
  std::array<std::uint64_t, kNumTraps> traps{};  ///< indexed by Trap value

  std::uint64_t trap_count(Trap t) const noexcept {
    return traps[static_cast<std::size_t>(t)];
  }
};

/// Outcome of one run/call.
struct RunResult {
  Trap trap = Trap::kNone;
  std::uint64_t cycles = 0;     ///< cycles consumed by this run
  std::uint64_t pc = 0;         ///< pc at stop
  std::int64_t ret = 0;         ///< r0 at stop (function return value)
  bool ok() const noexcept { return trap == Trap::kHalt; }
};

class Machine;

/// Kernel intrinsics (SYS instruction) are dispatched to this callback.
/// Arguments are in r1.., result goes to r0. Returning a trap aborts the run.
using SyscallHandler = std::function<Trap(Machine&, std::int32_t number)>;

/// One taken control transfer (from -> to) recorded after a watch hit.
struct TraceEdge {
  std::uint64_t from = 0;
  std::uint64_t to = 0;
  bool operator==(const TraceEdge&) const = default;
};

/// Activation trace of the currently / last armed watch window: first-hit
/// cycle, hit count, and a bounded ring of the control-flow edges taken
/// after the window was first entered (the start of the propagation path).
struct WatchTrace {
  static constexpr std::size_t kEdgeRing = 16;
  std::uint64_t hits = 0;
  std::uint64_t first_hit_cycle = 0;  ///< Machine::total_cycles() at first hit
  std::uint64_t edge_count = 0;       ///< edges seen (ring keeps the last 16)
  std::array<TraceEdge, kEdgeRing> ring{};

  /// The recorded edges in chronological order (at most kEdgeRing).
  std::vector<TraceEdge> edges() const;
};

/// One recorded guest-memory write (see Machine::begin_write_capture):
/// replaying the spans of a deterministic execution in order reproduces its
/// memory effect exactly, without re-executing the code.
struct WriteSpan {
  std::uint64_t addr = 0;
  std::vector<std::uint8_t> bytes;
};

class Machine {
 public:
  /// `mem_size` is the flat physical memory size. The first kNullPageSize
  /// bytes are unmapped (null-deref detection).
  explicit Machine(std::size_t mem_size = kDefaultMemSize);

  static constexpr std::size_t kDefaultMemSize = 8u << 20;  // 8 MiB
  static constexpr std::uint64_t kNullPageSize = 0x1000;
  /// Sentinel return address: a top-level RET to this address ends the run.
  static constexpr std::uint64_t kReturnSentinel = 0xFFFFFFFFFFFF0000ULL;

  /// Dirty-tracking granularity (one bit of bookkeeping per 4 KiB page).
  static constexpr std::uint64_t kDirtyPageShift = 12;
  static constexpr std::uint64_t kDirtyPageSize = 1u << kDirtyPageShift;

  /// Full machine state for warm-boot snapshots: memory image plus the
  /// execution state a restore must reproduce (registers, comparison flags,
  /// lifetime cycle counter). Snapshots are plain data — safe to share
  /// read-only across threads.
  struct State {
    std::vector<std::uint8_t> mem;
    std::array<std::int64_t, isa::kNumRegs> regs{};
    int flags = 0;
    std::uint64_t total_cycles = 0;
  };

  // --- setup -------------------------------------------------------------
  /// Copies an image's code into memory at its base address and remembers
  /// the executable range (jumps outside any loaded image trap).
  void load_image(const isa::Image& img);

  /// Replaces the bytes of an already-loaded image (after mutation). The
  /// image must cover the same address range.
  void reload_code(const isa::Image& img);

  /// Overwrites `n` code bytes at `addr` and refreshes the predecoded
  /// instructions covering them. Unlike write_bytes this is exempt from the
  /// null-page rule (it is a loader/injector primitive, not a guest access).
  /// Returns false when [addr, addr+n) is not inside physical memory.
  bool patch_code(std::uint64_t addr, const void* data, std::size_t n) noexcept;

  /// Re-decodes the predecoded-instruction cache for every instruction slot
  /// overlapping [addr, addr+len). Anything that mutates code bytes in VM
  /// memory behind the accessors' back must call this; the checked write
  /// accessors and patch_code/reload_code call it automatically.
  void invalidate_code(std::uint64_t addr, std::uint64_t len) noexcept;

  /// Predecoded dispatch is on by default: code is decoded once at load and
  /// the hot loop indexes a flat side-table instead of re-decoding every
  /// step. Turning it off falls back to per-step decode (kept for A/B
  /// benchmarking); turning it back on rebuilds the cache from memory.
  void set_predecode(bool enabled);
  bool predecode() const noexcept { return predecode_; }

  /// Decode-time superinstruction fusion (on by default): the predecode pass
  /// additionally classifies each slot with an extended-opcode token so that
  /// common adjacent pairs (compare+branch, load+ALU, ...) execute as one
  /// handler and safe fall-throughs skip the full fetch. Architectural
  /// effects (registers, memory, cycles, traps, retired-instruction counts,
  /// watch traces) are identical with fusion on or off; the switch exists for
  /// A/B benchmarking and equivalence testing. Toggling re-tokenizes in
  /// place.
  void set_fusion(bool enabled);
  bool fusion() const noexcept { return fusion_; }

  /// Dispatch lowering compiled into this build: "threaded" (computed-goto
  /// labels-as-values) or "switch" (portable fallback). Selected at configure
  /// time via the GF_VM_DISPATCH CMake option.
  static const char* dispatch_kind() noexcept;

  /// Test hook for the differential fuzzer (src/check): FNV-1a digest over
  /// the full architectural state — memory, registers, comparison flags and
  /// the lifetime cycle counter. Two machines that executed equivalent
  /// instruction streams must agree on this digest at every trap boundary,
  /// for any dispatch lowering, predecode or fusion setting.
  std::uint64_t state_digest() const noexcept;

  void set_syscall_handler(SyscallHandler handler) { syscall_ = std::move(handler); }

  /// [lo, hi) range PUSH/POP must stay within; also used to position sp.
  void set_stack_region(std::uint64_t lo, std::uint64_t hi);

  // --- register / memory access (also used by syscall handlers) ----------
  std::int64_t reg(int r) const noexcept { return regs_[r]; }
  void set_reg(int r, std::int64_t v) noexcept { regs_[r] = v; }

  std::size_t mem_size() const noexcept { return mem_.size(); }
  /// Checked accessors; return false / trap on range errors.
  bool read_u8(std::uint64_t addr, std::uint8_t& out) const noexcept;
  bool write_u8(std::uint64_t addr, std::uint8_t v) noexcept;
  bool read_u64(std::uint64_t addr, std::uint64_t& out) const noexcept;
  bool write_u64(std::uint64_t addr, std::uint64_t v) noexcept;
  /// Bulk helpers for syscall handlers; false when any byte is unmapped.
  bool read_bytes(std::uint64_t addr, void* out, std::size_t n) const noexcept;
  bool write_bytes(std::uint64_t addr, const void* data, std::size_t n) noexcept;
  /// Reads a NUL-terminated byte string (bounded by max_len); false on fault.
  bool read_cstr(std::uint64_t addr, std::string& out,
                 std::size_t max_len = 4096) const noexcept;

  /// Read-only pointer to `n` bytes of physical memory at `addr`, or nullptr
  /// when the span is out of range (loader/snapshot primitive — not subject
  /// to the null-page rule).
  const std::uint8_t* raw(std::uint64_t addr, std::size_t n) const noexcept;

  // --- dirty tracking / snapshots -----------------------------------------
  /// Every mutation of guest memory (checked writes, patch_code, reload_code,
  /// load_image) marks the covered kDirtyPageSize pages dirty. restore()
  /// copies back only dirty pages, making per-iteration state reset O(dirty)
  /// instead of O(memory).
  bool page_dirty(std::uint64_t addr) const noexcept {
    const std::uint64_t page = addr >> kDirtyPageShift;
    return page < dirty_.size() && dirty_[page];
  }
  /// Marks [addr, addr+len) dirty (for external mutations of raw state).
  void mark_dirty(std::uint64_t addr, std::uint64_t len) noexcept;
  /// Clears the dirty bits covering [addr, addr+len).
  void clear_dirty(std::uint64_t addr, std::uint64_t len) noexcept;
  void clear_all_dirty() noexcept;

  /// Captures the full machine state (memory + registers + flags + lifetime
  /// cycle counter) and clears the dirty bitmap, establishing the baseline
  /// restore() diffs against.
  State snapshot();
  /// Restores to `s` by copying back only pages dirtied since the snapshot
  /// (plus registers/flags/cycles), invalidating the predecode cache over any
  /// restored code pages so they re-decode lazily. `s.mem` must match
  /// mem_size(). Clears the dirty bitmap.
  void restore(const State& s);
  /// Unconditional full restore (used when this machine never saw `s`'s
  /// baseline, e.g. warm construction from a shared snapshot).
  void restore_full(const State& s);

  /// Comparison-flag state (CMP result sign); call() preserves registers but
  /// not flags, so deterministic replays must restore these explicitly.
  int cmp_flags() const noexcept { return flags_; }
  void set_cmp_flags(int f) noexcept { flags_ = f; }

  /// Advances the lifetime cycle counter without executing (replay of a
  /// recorded boot must reproduce the counter exactly — activation traces
  /// record absolute first-hit cycles).
  void add_cycles(std::uint64_t c) noexcept { total_cycles_ += c; }

  // --- write capture -------------------------------------------------------
  /// Starts recording every checked guest write as a WriteSpan. Used once,
  /// during the first cold boot, to learn the boot's exact memory effect;
  /// replaying the spans is then equivalent to re-running the boot code.
  void begin_write_capture();
  /// Stops recording and returns the spans in write order.
  std::vector<WriteSpan> end_write_capture();

  // --- execution ----------------------------------------------------------
  /// Calls the function at `addr` with up to 6 integer arguments, using a
  /// fresh stack frame at the top of the stack region. Returns when the
  /// function returns (RET to sentinel), or on trap / budget exhaustion.
  RunResult call(std::uint64_t addr, const std::vector<std::int64_t>& args,
                 std::uint64_t cycle_budget);

  /// Raw run from `pc` until HALT/trap/budget (used by tests/examples).
  RunResult run(std::uint64_t pc, std::uint64_t cycle_budget);

  /// Total cycles consumed over the machine's lifetime.
  std::uint64_t total_cycles() const noexcept { return total_cycles_; }

  /// Lifetime dispatch statistics. Deliberately *not* part of State: a
  /// restore rolls back the simulated machine, but the work spent executing
  /// still happened — consumers read deltas across run boundaries.
  const DispatchStats& dispatch_stats() const noexcept { return stats_; }
  void reset_dispatch_stats() noexcept { stats_ = {}; }

  /// Optional per-instruction coverage recording (for fault-activation
  /// measurements): when enabled, executed_pcs() reports distinct executed
  /// instruction addresses within loaded code.
  void set_coverage(bool enabled);
  const std::vector<std::uint64_t>& executed_pcs() const noexcept { return executed_; }
  void clear_coverage();

  // --- fault-activation watch ---------------------------------------------
  /// Arms an address watch on [lo, hi): the first time the PC enters the
  /// window the trace records the hit cycle, every re-entry bumps the hit
  /// count, and subsequent taken control transfers land in a bounded edge
  /// ring. The hot loop pays one branch on a per-slot armed bit that shares
  /// the byte the validity check already loads, so a disarmed machine
  /// executes the exact same memory traffic as before (ZOFI's principle:
  /// monitoring must cost ~zero when off). Re-arming resets the trace.
  void arm_watch(std::uint64_t lo, std::uint64_t hi);
  /// Disarms the watch; the accumulated trace stays readable.
  void disarm_watch();
  bool watch_armed() const noexcept { return watch_hi_ != 0; }
  const WatchTrace& watch_trace() const noexcept { return watch_; }

  // --- deterministic PC sampler ---------------------------------------------
  /// Arms the virtual-cycle stride sampler: every `stride` consumed cycles
  /// the PC of the instruction retiring at that boundary is recorded (pc ->
  /// hit count). Sampling runs on the *virtual* clock and only at retired
  /// architectural-step boundaries, so the sample stream is a pure function
  /// of executed code — bit-identical with fusion on/off and for either
  /// dispatch lowering. Overshoot carries into the next period (an
  /// instruction costing more than a stride yields multiple samples), so the
  /// cadence is exact regardless of per-instruction cost granularity. The
  /// hot loop pays one decrement plus a never-taken branch when disarmed
  /// (the countdown idles at a sentinel no campaign can exhaust — the same
  /// trick as the armed-watch bit). Re-arming resets the accumulated
  /// samples; `stride == 0` disarms.
  void arm_sampler(std::uint64_t stride);
  /// Disarms the sampler; accumulated samples stay readable.
  void disarm_sampler();
  bool sampler_armed() const noexcept { return sample_stride_ != 0; }
  std::uint64_t sampler_stride() const noexcept { return sample_stride_; }
  /// Accumulated samples since the last arm, keyed by instruction address.
  const std::map<std::uint64_t, std::uint64_t>& samples() const noexcept {
    return samples_;
  }

 private:
  struct CodeRange {
    std::uint64_t lo, hi;
  };

  /// Per-slot flag bits (predecode side-table).
  static constexpr std::uint8_t kSlotValid = 1;  ///< slot inside a loaded image
  static constexpr std::uint8_t kSlotArmed = 2;  ///< slot inside the watch window

  bool in_code(std::uint64_t addr) const noexcept;
  RunResult execute(std::uint64_t pc, std::uint64_t cycle_budget);
  void rebuild_predecode();
  /// Dispatch token for one predecoded slot: the base opcode, a fetch-failure
  /// token (hole / armed single-step), or a fused-pair id, plus the glue bit
  /// when the fall-through successor is statically safe to enter without a
  /// full fetch. See machine.cpp for the token table and the safety argument.
  std::uint8_t xop_for_slot(std::size_t s) const noexcept;
  /// Recomputes xop_ over [lo_slot, hi_slot) (clamped). A change to slot `s`
  /// affects the tokens of `s` and of `s - 1` (whose pair/glue looks one slot
  /// ahead), so callers extend their range one slot to the left.
  void rebuild_xop(std::size_t lo_slot, std::size_t hi_slot) noexcept;
  /// rebuild_xop over the slots covering [lo, hi) plus one to the left.
  void rebuild_xop_for_range(std::uint64_t lo, std::uint64_t hi) noexcept;
  /// Re-applies the armed bits of the active watch to the slot flags (after
  /// a predecode rebuild wiped them).
  void apply_watch_bits() noexcept;
  /// Cold path of the armed-bit branch: updates the watch trace.
  void note_watch_hit(std::uint64_t cycles) noexcept;
  void note_watch_edge(std::uint64_t from, std::uint64_t to) noexcept;
  /// Cold path of the sampler countdown (taken once per stride cycles):
  /// records the sample(s) and returns the replenished countdown.
  std::int64_t note_sample(std::uint64_t pc, std::int64_t left);
  /// Cheap overlap test before the full invalidate — inlined into every
  /// checked write so guest stores into the code region (possible under
  /// mutated pointers) can never leave the predecode cache stale.
  void maybe_invalidate(std::uint64_t addr, std::uint64_t len) noexcept {
    if (!predecoded_.empty() && addr < code_hi_ && addr + len > code_lo_) {
      invalidate_code(addr, len);
    }
  }
  /// Dirty-marking + optional write-capture tail shared by every mutation
  /// path. The bitmap update is one or two byte stores for typical writes;
  /// the capture branch is never taken outside the one-time boot recording.
  void note_write(std::uint64_t addr, std::uint64_t len) noexcept {
    for (std::uint64_t p = addr >> kDirtyPageShift,
                       last = (addr + len - 1) >> kDirtyPageShift;
         p <= last; ++p) {
      dirty_[p] = 1;
    }
    if (capture_) [[unlikely]] {
      captured_.push_back({addr, {&mem_[addr], &mem_[addr] + len}});
    }
  }

  std::vector<std::uint8_t> mem_;
  std::vector<std::uint8_t> dirty_;  ///< one byte per kDirtyPageSize page
  bool capture_ = false;
  std::vector<WriteSpan> captured_;
  std::int64_t regs_[isa::kNumRegs] = {};
  int flags_ = 0;  ///< sign of last comparison: -1, 0, +1
  std::vector<CodeRange> code_ranges_;

  // Predecode cache: one Instr per kInstrSize slot over the merged hull
  // [code_lo_, code_hi_) of all loaded ranges. slot_flags_ carries kSlotValid
  // for slots that lie inside an actual image (holes between images stay
  // kBadJump) plus kSlotArmed for slots inside the watch window; undecodable
  // bytes predecode to Op::kOpCount_ (the kBadOpcode marker). xop_ is the
  // parallel dispatch-token table (fused superinstructions + glue bits),
  // derived from predecoded_/slot_flags_ and rebuilt alongside them.
  bool predecode_ = true;
  bool fusion_ = true;
  std::uint64_t code_lo_ = 0, code_hi_ = 0;
  std::vector<isa::Instr> predecoded_;
  std::vector<std::uint8_t> slot_flags_;
  std::vector<std::uint8_t> xop_;
  mutable std::size_t last_range_ = 0;  ///< in_code() last-hit cache
  std::uint64_t stack_lo_ = 0, stack_hi_ = 0;
  SyscallHandler syscall_;
  std::uint64_t total_cycles_ = 0;
  DispatchStats stats_;

  bool coverage_ = false;
  std::vector<std::uint64_t> executed_;
  std::vector<bool> covered_;  // indexed by addr / kInstrSize

  /// Sampler countdown idle sentinel: one decrement per retired step can
  /// never drive it to zero within any realistic machine lifetime, so a
  /// disarmed sampler costs exactly one sub + never-taken branch per step.
  static constexpr std::int64_t kSamplerIdle = std::int64_t{1} << 62;
  std::uint64_t sample_stride_ = 0;          ///< 0 = disarmed
  std::int64_t sample_left_ = kSamplerIdle;  ///< cycles until the next sample
  std::map<std::uint64_t, std::uint64_t> samples_;  ///< pc -> sample count

  // Armed watch window [watch_lo_, watch_hi_); hi == 0 means disarmed.
  std::uint64_t watch_lo_ = 0, watch_hi_ = 0;
  /// True once the armed window was entered: taken control transfers are
  /// recorded from that point on (checked once per instruction, but only
  /// while a fault is actually live and activated).
  bool edge_live_ = false;
  WatchTrace watch_;
};

}  // namespace gf::vm
