// Persistent, crash-safe, content-addressed campaign result store.
//
// The paper's campaigns are embarrassingly re-runnable: a Table 5 cell is
// re-executed every time a faultload, OS build or config changes, even
// though most per-fault outcomes are unchanged. PR 5 made every single-fault
// run a pure function of its key tuple (store/key.h), which is exactly the
// precondition for a Bazel/ccache-style result cache. This module is that
// cache's disk layer; the campaign runner does the key derivation and the
// cached-result folding (depbench/runner.cpp).
//
// On-disk layout (directory `DIR` passed to the constructor):
//   DIR/segment.gfs   append-only payload bytes, no framing of its own
//   DIR/wal.gfj       append-only fixed-size commit records
//
// Commit protocol: append the payload to the segment, flush, then append
// one WAL entry {magic, key, offset, length, payload checksum, entry
// checksum}, flush. A record EXISTS iff its WAL entry is complete and both
// checksums match — so a crash (SIGKILL, power) between the two appends
// simply leaves unreferenced bytes at the segment tail. Recovery on open
// walks the WAL in order, stops at the first torn or corrupt entry, and
// truncates both files back to the last good commit; everything before it
// is intact by construction (appends never rewrite).
//
// Duplicate keys are legal (a `--no-cache` run re-executes and re-commits);
// the *last* commit wins, and gc() compacts the dead versions away.
//
// Thread safety: put() is called concurrently from campaign workers and is
// serialized by an internal mutex; get()/list()/verify()/gc() take the same
// lock. The store never blocks the VM hot path — all traffic happens at
// run boundaries.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "store/key.h"

namespace gf::store {

class StoreError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Store traffic counters. Cumulative per store instance; the campaign
/// runner snapshots before/after a campaign and reports the delta. These
/// are wall-state-coupled (they depend on what happens to be cached), so —
/// like SchedStats — they are kept OUT of the deterministic campaign
/// artifacts and emitted via --store-json / BENCH_store.json instead.
struct StoreStats {
  std::uint64_t hits = 0;          ///< get() found a valid record
  std::uint64_t misses = 0;        ///< get() found nothing
  std::uint64_t puts = 0;          ///< committed records
  std::uint64_t bytes_read = 0;    ///< payload bytes served by get()
  std::uint64_t bytes_written = 0; ///< payload + WAL bytes committed
  std::uint64_t records = 0;       ///< live (latest-version) records
  std::uint64_t bytes = 0;         ///< live payload bytes
  std::uint64_t recovered_records = 0;  ///< valid commits found at open
  std::uint64_t torn_bytes_dropped = 0; ///< bytes truncated at open

  /// this - base, field-wise (counters only; index snapshot kept as-is).
  StoreStats delta(const StoreStats& base) const noexcept;
  /// Folds as store.* counters into an obs registry (store-json rendering;
  /// never the campaign manifest registry — see the determinism note).
  void export_into(obs::Registry& r) const;
  /// Canonical JSON, schema "genfault-store/1".
  std::string to_json() const;
};

/// One live record, in commit order (the `gfbench store ls` row).
struct RecordInfo {
  ResultKey key;
  std::uint64_t offset = 0;
  std::uint32_t length = 0;
};

class CampaignStore {
 public:
  /// Opens (creating if needed) the store at `dir`, running tail recovery.
  /// Throws StoreError when the directory cannot be created or the files
  /// cannot be opened.
  explicit CampaignStore(std::string dir);
  ~CampaignStore();

  CampaignStore(const CampaignStore&) = delete;
  CampaignStore& operator=(const CampaignStore&) = delete;

  /// Looks up `key`; fills `payload` and returns true on a hit.
  bool get(const ResultKey& key, std::vector<std::uint8_t>& payload);

  /// Commits (payload bytes under `key`): segment append + flush, WAL
  /// append + flush. Atomic under the crash model above.
  void put(const ResultKey& key, const std::vector<std::uint8_t>& payload);

  bool contains(const ResultKey& key) const;

  /// Live records in commit order.
  std::vector<RecordInfo> list() const;

  /// Re-reads every live record and re-checks its payload checksum.
  /// Returns the number of corrupt records (0 = clean).
  std::size_t verify();

  /// Compacts the store: drops dead (superseded) versions, then — when
  /// `max_bytes` > 0 — evicts the oldest live records until the live
  /// payload fits. Rewrites segment+WAL atomically (tmp + rename).
  /// Returns the number of records dropped.
  std::size_t gc(std::uint64_t max_bytes);

  StoreStats stats() const;
  const std::string& dir() const noexcept { return dir_; }

  /// Test/CI hook: called after every successful commit with the running
  /// commit count, while the store lock is held. The kill-and-resume suite
  /// uses it to SIGKILL the process mid-campaign at a precise commit.
  void set_commit_hook(std::function<void(std::uint64_t)> hook) {
    commit_hook_ = std::move(hook);
  }

  /// Fault-injection hook for the structure fuzzer (src/check): simulates a
  /// crash that tore the last `seg_drop` bytes off the segment and the last
  /// `wal_drop` bytes off the WAL (both clamped to the file sizes), exactly
  /// the on-disk states an interrupted commit can leave behind. The handles
  /// are closed, the files truncated, and recovery re-runs in place — the
  /// store stays usable and must expose only intact committed records.
  void tear_tail_for_test(std::uint64_t seg_drop, std::uint64_t wal_drop);

 private:
  struct Slot {
    std::uint64_t offset = 0;
    std::uint32_t length = 0;
    std::uint64_t payload_fnv = 0;
  };

  void recover();
  void open_append_handles();
  void close_handles();
  bool read_payload(const Slot& s, std::vector<std::uint8_t>& payload) const;

  std::string dir_;
  std::string segment_path_;
  std::string wal_path_;
  mutable std::mutex mu_;
  std::FILE* segment_ = nullptr;  ///< append handle
  std::FILE* wal_ = nullptr;      ///< append handle
  std::uint64_t segment_end_ = 0;
  std::map<ResultKey, Slot> index_;
  std::vector<ResultKey> commit_order_;  ///< latest commit per key, in order
  std::uint64_t commit_count_ = 0;
  std::function<void(std::uint64_t)> commit_hook_;
  mutable StoreStats stats_;
};

}  // namespace gf::store
