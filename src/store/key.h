// Content-addressed result keys for the campaign store.
//
// A single-fault campaign run is a pure function of (target code digest,
// the one fault's content, the cell's controller configuration, campaign
// seed, schedule shape, iteration, position) — PR 5's decomposition made
// that precise, and this module turns the tuple into a 128-bit digest the
// store indexes by. Every field is folded through a tagged FNV-1a stream,
// so two keys collide only if the hash does: there is no field order or
// concatenation ambiguity ("ab"+"c" vs "a"+"bc" hash differently because
// every chunk is length-prefixed into the stream).
//
// Invalidation falls out of the key: edit one fault's mutation and only
// that fault's keys change; change the OS build and the code digest shifts
// every key; bump kResultSchema and the whole store reads as cold.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace gf::store {

/// Bump when the serialized record layout changes — old records must read
/// as misses, never be misdecoded. (2: per-run profile appended to TaskObs.)
inline constexpr std::uint32_t kResultSchema = 2;

/// 128-bit content digest (two independent FNV-1a streams with distinct
/// offset bases; the pair collides only if both streams do).
struct ResultKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const ResultKey&, const ResultKey&) = default;
  friend bool operator<(const ResultKey& a, const ResultKey& b) noexcept {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }

  /// 32 lowercase hex digits (hi then lo) — the `gfbench store ls` spelling.
  std::string hex() const;
};

/// Streaming tagged hasher. Each value is folded with a type tag and (for
/// byte strings) a length prefix, so the digest is injective over the field
/// *sequence*, not just the concatenated bytes.
class KeyBuilder {
 public:
  KeyBuilder();

  KeyBuilder& u64(std::uint64_t v);
  KeyBuilder& f64(double v);  ///< IEEE-754 bit pattern, so -0.0 != 0.0
  KeyBuilder& str(std::string_view s);
  KeyBuilder& bytes(const std::uint8_t* data, std::size_t n);

  ResultKey finish() const noexcept { return {hi_, lo_}; }

 private:
  void fold(const std::uint8_t* data, std::size_t n) noexcept;

  std::uint64_t hi_;
  std::uint64_t lo_;
};

/// Plain FNV-1a 64 over a byte span — the store's record checksum.
std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n) noexcept;

}  // namespace gf::store
