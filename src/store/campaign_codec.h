// Serialization between campaign run results and store payloads.
//
// One store record carries everything the runner folds into a result slot:
// the IterationResult (window metrics, injector-monitor counters, activation
// records) plus — when the campaign ran with observability on — the task's
// full TaskObs bundle (registry, API sink, journal). Persisting the obs
// bundle is what keeps the *merged* campaign artifacts byte-identical for
// any cache-hit pattern: a cached run must contribute the exact registry
// counters and journal events the live run would have.
//
// The encoding is canonical (store/wire.h): encoding a decoded record
// reproduces the original bytes, and doubles round-trip bit-exactly. The
// wall_start/wall_end fields of TaskObs are deliberately NOT persisted —
// they are host wall-clock (Chrome-trace view only) and never enter the
// deterministic artifacts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "depbench/controller.h"
#include "depbench/task_obs.h"
#include "store/wire.h"  // WireError: thrown by decode_run_record

namespace gf::store {

/// One cached campaign run. `label` follows the runner's slot labels
/// ("baseline" or "iter<I>.f<FAULT_INDEX>"); baseline records use only
/// result.metrics.
struct RunRecord {
  std::string cell;   ///< "VOS-2000/apex"
  std::string label;  ///< "baseline" or "iter0.f12"
  depbench::IterationResult result;
  bool has_obs = false;
  depbench::TaskObs obs;  ///< valid iff has_obs (wall fields zeroed)
};

std::vector<std::uint8_t> encode_run_record(const RunRecord& rec);

/// Throws WireError on any truncation/corruption — the store's checksums
/// make that unreachable for committed records, but decode stays defensive.
RunRecord decode_run_record(const std::vector<std::uint8_t>& payload);

/// Cheap header-only peek (cell + label) for `gfbench store ls`.
bool peek_run_meta(const std::vector<std::uint8_t>& payload, std::string& cell,
                   std::string& label);

}  // namespace gf::store
