#include "store/campaign_codec.h"

#include "store/key.h"
#include "store/wire.h"

namespace gf::store {

namespace {

constexpr std::uint32_t kRecordMagic = 0x31524647;  // "GFR1" little-endian

void encode_window(BufWriter& w, const spec::WindowMetrics& m) {
  w.f64(m.duration_ms);
  w.u64(m.ops);
  w.u64(m.errors);
  w.u64(m.bytes);
  w.f64(m.thr);
  w.f64(m.rtm_ms);
  w.f64(m.er_pct);
  w.i32(m.spc);
  w.f64(m.cc_pct);
}

spec::WindowMetrics decode_window(BufReader& r) {
  spec::WindowMetrics m;
  m.duration_ms = r.f64();
  m.ops = r.u64();
  m.errors = r.u64();
  m.bytes = r.u64();
  m.thr = r.f64();
  m.rtm_ms = r.f64();
  m.er_pct = r.f64();
  m.spc = r.i32();
  m.cc_pct = r.f64();
  return m;
}

void encode_histogram(BufWriter& w, const obs::Histogram& h) {
  w.u64(h.count);
  w.u64(h.sum);
  w.u64(h.min);
  w.u64(h.max);
  for (const auto b : h.buckets) w.u64(b);
}

obs::Histogram decode_histogram(BufReader& r) {
  obs::Histogram h;
  h.count = r.u64();
  h.sum = r.u64();
  h.min = r.u64();
  h.max = r.u64();
  for (auto& b : h.buckets) b = r.u64();
  return h;
}

void encode_result(BufWriter& w, const depbench::IterationResult& res) {
  encode_window(w, res.metrics);
  w.i32(res.counters.mis);
  w.i32(res.counters.kns);
  w.i32(res.counters.kcp);
  w.i32(res.counters.faults_injected);
  w.i32(res.counters.self_restarts);
  w.u32(static_cast<std::uint32_t>(res.activations.size()));
  for (const auto& a : res.activations) {
    w.u32(a.fault_index);
    w.u8(static_cast<std::uint8_t>(a.type));
    w.str(a.function);
    w.u64(a.hits);
    w.u64(a.first_hit_cycle);
    w.u64(a.edge_count);
    w.u32(static_cast<std::uint32_t>(a.edges.size()));
    for (const auto& e : a.edges) {
      w.u64(e.from);
      w.u64(e.to);
    }
    w.u8(static_cast<std::uint8_t>(a.outcome));
  }
}

depbench::IterationResult decode_result(BufReader& r) {
  depbench::IterationResult res;
  res.metrics = decode_window(r);
  res.counters.mis = r.i32();
  res.counters.kns = r.i32();
  res.counters.kcp = r.i32();
  res.counters.faults_injected = r.i32();
  res.counters.self_restarts = r.i32();
  const auto n = r.u32();
  res.activations.resize(n);
  for (auto& a : res.activations) {
    a.fault_index = r.u32();
    a.type = static_cast<swfit::FaultType>(r.u8());
    a.function = r.str();
    a.hits = r.u64();
    a.first_hit_cycle = r.u64();
    a.edge_count = r.u64();
    a.edges.resize(r.u32());
    for (auto& e : a.edges) {
      e.from = r.u64();
      e.to = r.u64();
    }
    a.outcome = static_cast<trace::Outcome>(r.u8());
  }
  return res;
}

void encode_registry(BufWriter& w, const obs::Registry& reg) {
  w.u32(static_cast<std::uint32_t>(reg.counters().size()));
  for (const auto& [name, v] : reg.counters()) {
    w.str(name);
    w.u64(v);
  }
  w.u32(static_cast<std::uint32_t>(reg.gauges().size()));
  for (const auto& [name, v] : reg.gauges()) {
    w.str(name);
    w.u64(v);
  }
  w.u32(static_cast<std::uint32_t>(reg.histograms().size()));
  for (const auto& [name, h] : reg.histograms()) {
    w.str(name);
    encode_histogram(w, h);
  }
}

obs::Registry decode_registry(BufReader& r) {
  obs::Registry reg;
  for (std::uint32_t n = r.u32(); n > 0; --n) {
    const auto name = r.str();
    reg.add(name, r.u64());
  }
  for (std::uint32_t n = r.u32(); n > 0; --n) {
    const auto name = r.str();
    reg.gauge(name, r.u64());
  }
  for (std::uint32_t n = r.u32(); n > 0; --n) {
    const auto name = r.str();
    reg.histogram(name) = decode_histogram(r);
  }
  return reg;
}

void encode_obs(BufWriter& w, const depbench::TaskObs& obs) {
  encode_registry(w, obs.metrics);
  w.u32(static_cast<std::uint32_t>(obs.api.functions.size()));
  for (const auto& [name, fn] : obs.api.functions) {
    w.str(name);
    w.u64(fn.calls);
    w.u64(fn.errors);
    w.u64(fn.crashes);
    w.u64(fn.hangs);
    encode_histogram(w, fn.cycles);
  }
  w.u64(obs.journal.capacity());
  w.u64(obs.journal.dropped());
  const auto events = obs.journal.events();
  w.u32(static_cast<std::uint32_t>(events.size()));
  for (const auto& e : events) {
    w.u8(static_cast<std::uint8_t>(e.phase));
    w.str(e.name);
    w.f64(e.sim_ms);
    w.u64(e.cycle);
    w.str(e.args);
  }
  // Schema 2: per-run cycle profile (empty when profiling was off — the
  // stride is part of the result key, so shapes never mix).
  w.u64(obs.profile.stride);
  w.u64(obs.profile.total);
  w.u32(static_cast<std::uint32_t>(obs.profile.functions.size()));
  for (const auto& [name, samples] : obs.profile.functions) {
    w.str(name);
    w.u64(samples);
  }
}

depbench::TaskObs decode_obs(BufReader& r) {
  depbench::TaskObs obs;
  obs.metrics = decode_registry(r);
  for (std::uint32_t n = r.u32(); n > 0; --n) {
    const auto name = r.str();
    auto& fn = obs.api.functions[name];
    fn.calls = r.u64();
    fn.errors = r.u64();
    fn.crashes = r.u64();
    fn.hangs = r.u64();
    fn.cycles = decode_histogram(r);
  }
  const auto capacity = static_cast<std::size_t>(r.u64());
  const auto dropped = r.u64();
  std::vector<obs::Event> events(r.u32());
  for (auto& e : events) {
    e.phase = static_cast<obs::Phase>(r.u8());
    e.name = r.str();
    e.sim_ms = r.f64();
    e.cycle = r.u64();
    e.args = r.str();
  }
  obs.journal = obs::Journal::restore(capacity, dropped, std::move(events));
  obs.profile.stride = r.u64();
  obs.profile.total = r.u64();
  for (std::uint32_t n = r.u32(); n > 0; --n) {
    const auto name = r.str();
    obs.profile.functions[name] = r.u64();
  }
  return obs;
}

}  // namespace

std::vector<std::uint8_t> encode_run_record(const RunRecord& rec) {
  BufWriter w;
  w.u32(kRecordMagic);
  w.u32(kResultSchema);
  w.str(rec.cell);
  w.str(rec.label);
  encode_result(w, rec.result);
  w.u8(rec.has_obs ? 1 : 0);
  if (rec.has_obs) encode_obs(w, rec.obs);
  return w.take();
}

RunRecord decode_run_record(const std::vector<std::uint8_t>& payload) {
  BufReader r(payload.data(), payload.size());
  if (r.u32() != kRecordMagic) throw WireError("bad record magic");
  if (r.u32() != kResultSchema) throw WireError("record schema mismatch");
  RunRecord rec;
  rec.cell = r.str();
  rec.label = r.str();
  rec.result = decode_result(r);
  rec.has_obs = r.u8() != 0;
  if (rec.has_obs) rec.obs = decode_obs(r);
  if (!r.done()) throw WireError("trailing bytes in record");
  return rec;
}

bool peek_run_meta(const std::vector<std::uint8_t>& payload, std::string& cell,
                   std::string& label) {
  try {
    BufReader r(payload.data(), payload.size());
    if (r.u32() != kRecordMagic || r.u32() != kResultSchema) return false;
    cell = r.str();
    label = r.str();
    return true;
  } catch (const WireError&) {
    return false;
  }
}

}  // namespace gf::store
