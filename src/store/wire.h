// Little-endian wire helpers for the campaign store's on-disk records.
//
// Every persisted byte in src/store goes through these two classes, so the
// encoding is fixed-width, platform-independent and — crucially for the
// resume byte-identity contract — *canonical*: encoding the same logical
// record twice yields the same bytes, and doubles round-trip bit-exactly
// (they are stored as their IEEE-754 bit patterns, never via text).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace gf::store {

class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only byte buffer writer.
class BufWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// Bit-exact double: the IEEE-754 pattern as u64.
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void bytes(const std::uint8_t* data, std::size_t n) {
    buf_.insert(buf_.end(), data, data + n);
  }

  const std::vector<std::uint8_t>& data() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked sequential reader over an encoded record. Every decode
/// failure throws WireError — a corrupt or truncated payload must never be
/// silently misread as a cached result.
class BufReader {
 public:
  BufReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint32_t u32() {
    const auto* p = take(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
    return v;
  }
  std::uint64_t u64() {
    const auto* p = take(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const auto n = u32();
    const auto* p = take(n);
    return std::string(reinterpret_cast<const char*>(p), n);
  }

  std::size_t remaining() const noexcept { return size_ - pos_; }
  bool done() const noexcept { return pos_ == size_; }

 private:
  const std::uint8_t* take(std::size_t n) {
    if (size_ - pos_ < n) throw WireError("record truncated");
    const auto* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace gf::store
