#include "store/store.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "store/wire.h"
#include "util/log.h"

namespace gf::store {

namespace {

// WAL entry: magic + key + slot + payload checksum + entry checksum over
// everything preceding. Fixed size so a torn tail is detected by length
// before it is ever parsed.
constexpr std::uint32_t kWalMagic = 0x31574647;  // "GFW1" little-endian
constexpr std::size_t kWalEntrySize = 48;

struct WalEntry {
  ResultKey key;
  std::uint64_t offset = 0;
  std::uint32_t length = 0;
  std::uint64_t payload_fnv = 0;
};

std::vector<std::uint8_t> encode_wal_entry(const WalEntry& e) {
  BufWriter w;
  w.u32(kWalMagic);
  w.u64(e.key.hi);
  w.u64(e.key.lo);
  w.u64(e.offset);
  w.u32(e.length);
  w.u64(e.payload_fnv);
  w.u64(fnv1a(w.data().data(), w.data().size()));
  return w.take();
}

/// Decodes one entry; false when the magic or entry checksum is wrong.
bool decode_wal_entry(const std::uint8_t* p, WalEntry& out) {
  BufReader r(p, kWalEntrySize);
  if (r.u32() != kWalMagic) return false;
  out.key.hi = r.u64();
  out.key.lo = r.u64();
  out.offset = r.u64();
  out.length = r.u32();
  out.payload_fnv = r.u64();
  return r.u64() == fnv1a(p, kWalEntrySize - 8);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::vector<std::uint8_t> data;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return data;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  if (size > 0) {
    data.resize(static_cast<std::size_t>(size));
    std::fseek(f, 0, SEEK_SET);
    if (std::fread(data.data(), 1, data.size(), f) != data.size()) {
      data.clear();
    }
  }
  std::fclose(f);
  return data;
}

void truncate_or_throw(const std::string& path, std::uint64_t len) {
  if (::truncate(path.c_str(), static_cast<off_t>(len)) != 0) {
    throw StoreError("store: cannot truncate " + path + ": " +
                     std::strerror(errno));
  }
}

}  // namespace

StoreStats StoreStats::delta(const StoreStats& base) const noexcept {
  StoreStats d = *this;
  d.hits -= base.hits;
  d.misses -= base.misses;
  d.puts -= base.puts;
  d.bytes_read -= base.bytes_read;
  d.bytes_written -= base.bytes_written;
  return d;
}

void StoreStats::export_into(obs::Registry& r) const {
  r.add("store.hits", hits);
  r.add("store.misses", misses);
  r.add("store.puts", puts);
  r.add("store.bytes_read", bytes_read);
  r.add("store.bytes_written", bytes_written);
  r.gauge("store.records", records);
  r.gauge("store.bytes", bytes);
  r.add("store.recovered_records", recovered_records);
  r.add("store.torn_bytes_dropped", torn_bytes_dropped);
}

std::string StoreStats::to_json() const {
  auto n = [](std::uint64_t v) { return std::to_string(v); };
  return "{\"schema\": \"genfault-store/1\", \"hits\": " + n(hits) +
         ", \"misses\": " + n(misses) + ", \"puts\": " + n(puts) +
         ", \"bytes_read\": " + n(bytes_read) +
         ", \"bytes_written\": " + n(bytes_written) +
         ", \"records\": " + n(records) + ", \"bytes\": " + n(bytes) +
         ", \"recovered_records\": " + n(recovered_records) +
         ", \"torn_bytes_dropped\": " + n(torn_bytes_dropped) + "}";
}

CampaignStore::CampaignStore(std::string dir) : dir_(std::move(dir)) {
  if (::mkdir(dir_.c_str(), 0777) != 0 && errno != EEXIST) {
    throw StoreError("store: cannot create " + dir_ + ": " +
                     std::strerror(errno));
  }
  segment_path_ = dir_ + "/segment.gfs";
  wal_path_ = dir_ + "/wal.gfj";
  recover();
  open_append_handles();
}

CampaignStore::~CampaignStore() { close_handles(); }

void CampaignStore::close_handles() {
  if (segment_ != nullptr) std::fclose(segment_);
  if (wal_ != nullptr) std::fclose(wal_);
  segment_ = nullptr;
  wal_ = nullptr;
}

void CampaignStore::open_append_handles() {
  segment_ = std::fopen(segment_path_.c_str(), "ab");
  wal_ = std::fopen(wal_path_.c_str(), "ab");
  if (segment_ == nullptr || wal_ == nullptr) {
    close_handles();
    throw StoreError("store: cannot open files in " + dir_);
  }
}

void CampaignStore::recover() {
  const auto wal = read_file(wal_path_);
  const auto segment = read_file(segment_path_);

  index_.clear();
  commit_order_.clear();
  std::uint64_t good_entries = 0;
  std::uint64_t segment_good_end = 0;

  for (std::size_t at = 0; at + kWalEntrySize <= wal.size();
       at += kWalEntrySize) {
    WalEntry e;
    if (!decode_wal_entry(wal.data() + at, e)) break;
    // The payload must be fully present and intact: a commit whose segment
    // bytes were torn (crash between the two appends cannot cause this, but
    // external corruption can) invalidates this entry and every later one —
    // recovery is strictly a tail truncation, never a hole punch.
    if (e.offset + e.length > segment.size()) break;
    if (fnv1a(segment.data() + e.offset, e.length) != e.payload_fnv) break;
    const Slot slot{e.offset, e.length, e.payload_fnv};
    auto [it, inserted] = index_.insert_or_assign(e.key, slot);
    (void)it;
    if (!inserted) {
      commit_order_.erase(
          std::find(commit_order_.begin(), commit_order_.end(), e.key));
    }
    commit_order_.push_back(e.key);
    ++good_entries;
    segment_good_end = std::max(segment_good_end, e.offset + e.length);
  }

  const std::uint64_t wal_good_end = good_entries * kWalEntrySize;
  const std::uint64_t torn = (wal.size() - wal_good_end) +
                             (segment.size() > segment_good_end
                                  ? segment.size() - segment_good_end
                                  : 0);
  if (wal_good_end < wal.size()) truncate_or_throw(wal_path_, wal_good_end);
  if (segment_good_end < segment.size()) {
    truncate_or_throw(segment_path_, segment_good_end);
  }
  segment_end_ = segment_good_end;

  stats_.recovered_records = good_entries;
  stats_.torn_bytes_dropped = torn;
  stats_.records = index_.size();
  stats_.bytes = 0;
  for (const auto& [key, slot] : index_) stats_.bytes += slot.length;
  if (torn > 0) {
    GF_INFO() << "store " << dir_ << ": recovered " << good_entries
              << " records, truncated " << torn << " torn tail bytes";
  }
}

bool CampaignStore::read_payload(const Slot& s,
                                 std::vector<std::uint8_t>& payload) const {
  std::FILE* f = std::fopen(segment_path_.c_str(), "rb");
  if (f == nullptr) return false;
  payload.resize(s.length);
  bool ok = std::fseek(f, static_cast<long>(s.offset), SEEK_SET) == 0 &&
            std::fread(payload.data(), 1, s.length, f) == s.length;
  std::fclose(f);
  ok = ok && fnv1a(payload.data(), payload.size()) == s.payload_fnv;
  if (!ok) payload.clear();
  return ok;
}

bool CampaignStore::get(const ResultKey& key,
                        std::vector<std::uint8_t>& payload) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end() || !read_payload(it->second, payload)) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  stats_.bytes_read += payload.size();
  return true;
}

bool CampaignStore::contains(const ResultKey& key) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return index_.count(key) > 0;
}

void CampaignStore::put(const ResultKey& key,
                        const std::vector<std::uint8_t>& payload) {
  const std::lock_guard<std::mutex> lock(mu_);
  WalEntry e{key, segment_end_, static_cast<std::uint32_t>(payload.size()),
             fnv1a(payload.data(), payload.size())};
  // Commit protocol: payload first, flush; WAL entry second, flush. Until
  // the WAL flush lands the record does not exist, so any crash point
  // leaves a store that recovery restores to the previous commit.
  if (std::fwrite(payload.data(), 1, payload.size(), segment_) !=
          payload.size() ||
      std::fflush(segment_) != 0) {
    throw StoreError("store: segment append failed in " + dir_);
  }
  const auto entry = encode_wal_entry(e);
  if (std::fwrite(entry.data(), 1, entry.size(), wal_) != entry.size() ||
      std::fflush(wal_) != 0) {
    throw StoreError("store: wal append failed in " + dir_);
  }
  segment_end_ += payload.size();

  const Slot slot{e.offset, e.length, e.payload_fnv};
  auto [it, inserted] = index_.insert_or_assign(key, slot);
  if (!inserted) {
    commit_order_.erase(
        std::find(commit_order_.begin(), commit_order_.end(), key));
  } else {
    ++stats_.records;
  }
  commit_order_.push_back(key);
  stats_.bytes = 0;
  for (const auto& [k, s] : index_) stats_.bytes += s.length;
  ++stats_.puts;
  stats_.bytes_written += payload.size() + entry.size();
  ++commit_count_;
  if (commit_hook_) commit_hook_(commit_count_);
  (void)it;
}

std::vector<RecordInfo> CampaignStore::list() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<RecordInfo> out;
  out.reserve(commit_order_.size());
  for (const auto& key : commit_order_) {
    const auto& slot = index_.at(key);
    out.push_back({key, slot.offset, slot.length});
  }
  return out;
}

std::size_t CampaignStore::verify() {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t corrupt = 0;
  std::vector<std::uint8_t> payload;
  for (const auto& [key, slot] : index_) {
    if (!read_payload(slot, payload)) ++corrupt;
  }
  return corrupt;
}

std::size_t CampaignStore::gc(std::uint64_t max_bytes) {
  const std::lock_guard<std::mutex> lock(mu_);
  // Live set in commit order; evict oldest-first until under budget.
  std::vector<ResultKey> keep = commit_order_;
  std::uint64_t live_bytes = 0;
  for (const auto& key : keep) live_bytes += index_.at(key).length;
  std::size_t evict = 0;
  if (max_bytes > 0) {
    while (evict < keep.size() && live_bytes > max_bytes) {
      live_bytes -= index_.at(keep[evict]).length;
      ++evict;
    }
  }
  // Compact into tmp files, then atomically swap both in. A crash between
  // the two renames leaves a new segment with the old WAL — every WAL entry
  // then fails its payload checksum against the rewritten segment, so
  // recovery degrades to an empty (not corrupt) store.
  const std::string seg_tmp = segment_path_ + ".tmp";
  const std::string wal_tmp = wal_path_ + ".tmp";
  std::FILE* seg = std::fopen(seg_tmp.c_str(), "wb");
  std::FILE* wal = std::fopen(wal_tmp.c_str(), "wb");
  if (seg == nullptr || wal == nullptr) {
    if (seg != nullptr) std::fclose(seg);
    if (wal != nullptr) std::fclose(wal);
    throw StoreError("store: cannot create gc tmp files in " + dir_);
  }
  std::map<ResultKey, Slot> new_index;
  std::vector<ResultKey> new_order;
  std::uint64_t offset = 0;
  bool ok = true;
  std::vector<std::uint8_t> payload;
  for (std::size_t i = evict; i < keep.size() && ok; ++i) {
    const auto& key = keep[i];
    const auto& slot = index_.at(key);
    ok = read_payload(slot, payload);
    if (!ok) break;
    ok = std::fwrite(payload.data(), 1, payload.size(), seg) == payload.size();
    const auto entry = encode_wal_entry(
        {key, offset, slot.length, slot.payload_fnv});
    ok = ok && std::fwrite(entry.data(), 1, entry.size(), wal) == entry.size();
    new_index.insert_or_assign(key, Slot{offset, slot.length, slot.payload_fnv});
    new_order.push_back(key);
    offset += slot.length;
  }
  ok = ok && std::fflush(seg) == 0 && std::fflush(wal) == 0;
  std::fclose(seg);
  std::fclose(wal);
  if (!ok) throw StoreError("store: gc rewrite failed in " + dir_);

  close_handles();
  if (std::rename(seg_tmp.c_str(), segment_path_.c_str()) != 0 ||
      std::rename(wal_tmp.c_str(), wal_path_.c_str()) != 0) {
    throw StoreError("store: gc rename failed in " + dir_);
  }
  const std::size_t dropped = commit_order_.size() - new_order.size();
  index_ = std::move(new_index);
  commit_order_ = std::move(new_order);
  segment_end_ = offset;
  stats_.records = index_.size();
  stats_.bytes = offset;
  open_append_handles();
  return dropped;
}

void CampaignStore::tear_tail_for_test(std::uint64_t seg_drop,
                                       std::uint64_t wal_drop) {
  const std::lock_guard<std::mutex> lock(mu_);
  close_handles();
  auto tear = [](const std::string& path, std::uint64_t drop) {
    struct ::stat st{};
    if (::stat(path.c_str(), &st) != 0) return;
    const auto size = static_cast<std::uint64_t>(st.st_size);
    truncate_or_throw(path, size > drop ? size - drop : 0);
  };
  tear(segment_path_, seg_drop);
  tear(wal_path_, wal_drop);
  recover();
  open_append_handles();
}

StoreStats CampaignStore::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace gf::store
