#include "store/key.h"

#include <bit>
#include <cstdio>

namespace gf::store {

namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;
// Second stream starts from a different basis so the two 64-bit halves are
// not trivially correlated (same trick as double hashing).
constexpr std::uint64_t kFnvOffset2 = 0x6C62272E07BB0142ULL;

// Field-type tags keep the digest injective over field sequences.
enum Tag : std::uint8_t { kTagU64 = 1, kTagF64 = 2, kTagBytes = 3 };

std::uint64_t fold_one(std::uint64_t h, std::uint8_t byte) noexcept {
  return (h ^ byte) * kFnvPrime;
}

}  // namespace

std::string ResultKey::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

KeyBuilder::KeyBuilder() : hi_(kFnvOffset), lo_(kFnvOffset2) {}

void KeyBuilder::fold(const std::uint8_t* data, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    hi_ = fold_one(hi_, data[i]);
    lo_ = fold_one(lo_, data[i]);
  }
}

KeyBuilder& KeyBuilder::u64(std::uint64_t v) {
  std::uint8_t buf[9] = {kTagU64};
  for (int i = 0; i < 8; ++i) buf[1 + i] = static_cast<std::uint8_t>(v >> (8 * i));
  fold(buf, sizeof buf);
  return *this;
}

KeyBuilder& KeyBuilder::f64(double v) {
  std::uint8_t buf[9] = {kTagF64};
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) buf[1 + i] = static_cast<std::uint8_t>(bits >> (8 * i));
  fold(buf, sizeof buf);
  return *this;
}

KeyBuilder& KeyBuilder::str(std::string_view s) {
  return bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

KeyBuilder& KeyBuilder::bytes(const std::uint8_t* data, std::size_t n) {
  std::uint8_t head[9] = {kTagBytes};
  for (int i = 0; i < 8; ++i) {
    head[1 + i] = static_cast<std::uint8_t>(static_cast<std::uint64_t>(n) >> (8 * i));
  }
  fold(head, sizeof head);
  fold(data, n);
  return *this;
}

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n) noexcept {
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < n; ++i) h = fold_one(h, data[i]);
  return h;
}

}  // namespace gf::store
