#include "minic/sema.h"

#include <map>

#include "isa/isa.h"
#include "minic/lexer.h"

namespace gf::minic {

bool is_intrinsic(const std::string& name) noexcept {
  return name == "load" || name == "load8" || name == "store" ||
         name == "store8" || name == "sys";
}

namespace {

class Analyzer {
 public:
  explicit Analyzer(Program& prog) : prog_(prog) {
    for (const auto& [name, value] : prog.consts) consts_[name] = value;
    for (const auto& fn : prog.functions) {
      if (fn_arity_.count(fn.name)) {
        throw CompileError(fn.line, "duplicate function: " + fn.name);
      }
      if (is_intrinsic(fn.name)) {
        throw CompileError(fn.line, "function shadows intrinsic: " + fn.name);
      }
      fn_arity_[fn.name] = static_cast<int>(fn.params.size());
    }
  }

  void run() {
    for (auto& fn : prog_.functions) analyze_fn(fn);
  }

 private:
  void analyze_fn(Function& fn) {
    slots_.clear();
    loop_depth_ = 0;
    if (fn.params.size() > isa::kNumArgRegs) {
      throw CompileError(fn.line, "too many parameters in " + fn.name +
                                      " (max " + std::to_string(isa::kNumArgRegs) + ")");
    }
    for (const auto& p : fn.params) {
      if (slots_.count(p)) throw CompileError(fn.line, "duplicate parameter: " + p);
      slots_[p] = static_cast<int>(slots_.size());
    }
    for (auto& s : fn.body) stmt(*s);
    fn.num_slots = static_cast<int>(slots_.size());
  }

  void stmt(Stmt& s) {
    switch (s.kind) {
      case StmtKind::kVarDecl: {
        if (s.expr) expr(*s.expr);  // initializer sees the old scope
        if (slots_.count(s.name)) {
          throw CompileError(s.line, "duplicate variable: " + s.name);
        }
        s.var_slot = static_cast<int>(slots_.size());
        slots_[s.name] = s.var_slot;
        break;
      }
      case StmtKind::kAssign: {
        const auto it = slots_.find(s.name);
        if (it == slots_.end()) {
          throw CompileError(s.line, "assignment to undeclared variable: " + s.name);
        }
        s.var_slot = it->second;
        expr(*s.expr);
        break;
      }
      case StmtKind::kExpr:
        expr(*s.expr);
        break;
      case StmtKind::kIf:
        expr(*s.expr);
        for (auto& b : s.body) stmt(*b);
        for (auto& b : s.else_body) stmt(*b);
        break;
      case StmtKind::kWhile:
        expr(*s.expr);
        ++loop_depth_;
        for (auto& b : s.body) stmt(*b);
        --loop_depth_;
        break;
      case StmtKind::kReturn:
        if (s.expr) expr(*s.expr);
        break;
      case StmtKind::kBreak:
      case StmtKind::kContinue:
        if (loop_depth_ == 0) {
          throw CompileError(s.line, "break/continue outside of a loop");
        }
        break;
      case StmtKind::kBlock:
        for (auto& b : s.body) stmt(*b);
        break;
    }
  }

  void expr(Expr& e) {
    switch (e.kind) {
      case ExprKind::kNumber:
        break;
      case ExprKind::kVar: {
        const auto it = slots_.find(e.name);
        if (it != slots_.end()) {
          e.var_slot = it->second;
          break;
        }
        const auto c = consts_.find(e.name);
        if (c != consts_.end()) {
          e.kind = ExprKind::kNumber;
          e.value = c->second;
          break;
        }
        throw CompileError(e.line, "undeclared identifier: " + e.name);
      }
      case ExprKind::kUnary:
        expr(*e.lhs);
        break;
      case ExprKind::kBinary:
        expr(*e.lhs);
        expr(*e.rhs);
        break;
      case ExprKind::kCall: {
        for (auto& a : e.args) expr(*a);
        if (is_intrinsic(e.name)) {
          check_intrinsic(e);
          break;
        }
        const auto it = fn_arity_.find(e.name);
        if (it == fn_arity_.end()) {
          throw CompileError(e.line, "call to unknown function: " + e.name);
        }
        if (it->second != static_cast<int>(e.args.size())) {
          throw CompileError(e.line, e.name + " expects " +
                                         std::to_string(it->second) + " arguments, got " +
                                         std::to_string(e.args.size()));
        }
        break;
      }
    }
  }

  void check_intrinsic(const Expr& e) {
    const auto n = e.args.size();
    if ((e.name == "load" || e.name == "load8") && n != 1) {
      throw CompileError(e.line, e.name + " expects 1 argument");
    }
    if ((e.name == "store" || e.name == "store8") && n != 2) {
      throw CompileError(e.line, e.name + " expects 2 arguments");
    }
    if (e.name == "sys") {
      if (n < 1 || n > 6) throw CompileError(e.line, "sys expects 1..6 arguments");
      if (e.args[0]->kind != ExprKind::kNumber) {
        throw CompileError(e.line, "sys number must be a constant");
      }
    }
  }

  Program& prog_;
  std::map<std::string, std::int64_t> consts_;
  std::map<std::string, int> fn_arity_;
  std::map<std::string, int> slots_;
  int loop_depth_ = 0;
};

}  // namespace

void analyze(Program& prog) { Analyzer(prog).run(); }

}  // namespace gf::minic
