#include "minic/compiler.h"

#include "minic/codegen.h"
#include "minic/parser.h"
#include "minic/sema.h"

namespace gf::minic {

isa::Image compile(const std::vector<std::string_view>& sources,
                   std::string image_name, std::uint64_t base) {
  std::string unit;
  for (const auto& s : sources) {
    unit.append(s);
    unit.push_back('\n');
  }
  Program prog = parse(unit);
  analyze(prog);
  return generate(prog, std::move(image_name), base);
}

isa::Image compile(std::string_view source, std::string image_name,
                   std::uint64_t base) {
  return compile(std::vector<std::string_view>{source}, std::move(image_name),
                 base);
}

}  // namespace gf::minic
