// MiniC recursive-descent parser with C operator precedence.
// Global `const` declarations are constant-folded at parse time.
#pragma once

#include <string_view>

#include "minic/ast.h"
#include "minic/lexer.h"

namespace gf::minic {

/// Parses a full translation unit. Throws CompileError.
Program parse(std::string_view source);

}  // namespace gf::minic
