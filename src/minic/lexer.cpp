#include "minic/lexer.h"

#include <cctype>

namespace gf::minic {

namespace {
bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return ident_start(c) || std::isdigit(static_cast<unsigned char>(c));
}

Tok keyword(const std::string& s) {
  if (s == "fn") return Tok::kFn;
  if (s == "var") return Tok::kVar;
  if (s == "const") return Tok::kConst;
  if (s == "if") return Tok::kIf;
  if (s == "else") return Tok::kElse;
  if (s == "while") return Tok::kWhile;
  if (s == "return") return Tok::kReturn;
  if (s == "break") return Tok::kBreak;
  if (s == "continue") return Tok::kContinue;
  return Tok::kIdent;
}
}  // namespace

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1;
  const std::size_t n = src.size();

  auto push = [&](Tok k) { out.push_back({k, {}, 0, line}); };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= n) throw CompileError(line, "unterminated block comment");
      i += 2;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      std::string s(src.substr(i, j - i));
      const Tok k = keyword(s);
      Token t{k, k == Tok::kIdent ? s : std::string{}, 0, line};
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      std::int64_t v = 0;
      if (c == '0' && i + 1 < n && (src[i + 1] == 'x' || src[i + 1] == 'X')) {
        j = i + 2;
        if (j >= n || !std::isxdigit(static_cast<unsigned char>(src[j]))) {
          throw CompileError(line, "bad hex literal");
        }
        while (j < n && std::isxdigit(static_cast<unsigned char>(src[j]))) {
          const char h = src[j];
          const int d = std::isdigit(static_cast<unsigned char>(h))
                            ? h - '0'
                            : std::tolower(static_cast<unsigned char>(h)) - 'a' + 10;
          v = v * 16 + d;
          ++j;
        }
      } else {
        while (j < n && std::isdigit(static_cast<unsigned char>(src[j]))) {
          v = v * 10 + (src[j] - '0');
          ++j;
        }
      }
      out.push_back({Tok::kNumber, {}, v, line});
      i = j;
      continue;
    }
    if (c == '\'') {
      if (i + 2 >= n) throw CompileError(line, "bad char literal");
      char v = src[i + 1];
      std::size_t close = i + 2;
      if (v == '\\') {
        if (i + 3 >= n) throw CompileError(line, "bad char literal");
        const char e = src[i + 2];
        switch (e) {
          case 'n': v = '\n'; break;
          case 't': v = '\t'; break;
          case 'r': v = '\r'; break;
          case '0': v = '\0'; break;
          case '\\': v = '\\'; break;
          case '\'': v = '\''; break;
          default: throw CompileError(line, "bad escape in char literal");
        }
        close = i + 3;
      }
      if (close >= n || src[close] != '\'') {
        throw CompileError(line, "unterminated char literal");
      }
      out.push_back({Tok::kNumber, {}, static_cast<unsigned char>(v), line});
      i = close + 1;
      continue;
    }

    auto two = [&](char a, char b, Tok k) -> bool {
      if (c == a && i + 1 < n && src[i + 1] == b) {
        push(k);
        i += 2;
        return true;
      }
      return false;
    };
    if (two('<', '<', Tok::kShl)) continue;
    if (two('>', '>', Tok::kShr)) continue;
    if (two('=', '=', Tok::kEq)) continue;
    if (two('!', '=', Tok::kNe)) continue;
    if (two('<', '=', Tok::kLe)) continue;
    if (two('>', '=', Tok::kGe)) continue;
    if (two('&', '&', Tok::kAndAnd)) continue;
    if (two('|', '|', Tok::kOrOr)) continue;

    Tok k;
    switch (c) {
      case '(': k = Tok::kLParen; break;
      case ')': k = Tok::kRParen; break;
      case '{': k = Tok::kLBrace; break;
      case '}': k = Tok::kRBrace; break;
      case ',': k = Tok::kComma; break;
      case ';': k = Tok::kSemi; break;
      case '=': k = Tok::kAssign; break;
      case '+': k = Tok::kPlus; break;
      case '-': k = Tok::kMinus; break;
      case '*': k = Tok::kStar; break;
      case '/': k = Tok::kSlash; break;
      case '%': k = Tok::kPercent; break;
      case '&': k = Tok::kAmp; break;
      case '|': k = Tok::kPipe; break;
      case '^': k = Tok::kCaret; break;
      case '~': k = Tok::kTilde; break;
      case '!': k = Tok::kBang; break;
      case '<': k = Tok::kLt; break;
      case '>': k = Tok::kGt; break;
      default:
        throw CompileError(line, std::string("unexpected character '") + c + "'");
    }
    push(k);
    ++i;
  }
  out.push_back({Tok::kEof, {}, 0, line});
  return out;
}

}  // namespace gf::minic
