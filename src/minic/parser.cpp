#include "minic/parser.h"

#include <map>

namespace gf::minic {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view src) : toks_(lex(src)) {}

  Program parse_program() {
    Program prog;
    while (peek().kind != Tok::kEof) {
      if (peek().kind == Tok::kConst) {
        parse_const(prog);
      } else if (peek().kind == Tok::kFn) {
        prog.functions.push_back(parse_fn());
      } else {
        throw CompileError(peek().line, "expected 'fn' or 'const' at top level");
      }
    }
    return prog;
  }

 private:
  const Token& peek(int ahead = 0) const { return toks_[pos_ + ahead]; }
  Token take() { return toks_[pos_++]; }

  Token expect(Tok k, const char* what) {
    if (peek().kind != k) {
      throw CompileError(peek().line, std::string("expected ") + what);
    }
    return take();
  }

  void parse_const(Program& prog) {
    expect(Tok::kConst, "'const'");
    const Token name = expect(Tok::kIdent, "constant name");
    expect(Tok::kAssign, "'='");
    ExprPtr e = parse_expr();
    expect(Tok::kSemi, "';'");
    const std::int64_t v = fold(*e);
    if (consts_.count(name.text)) {
      throw CompileError(name.line, "duplicate const: " + name.text);
    }
    consts_[name.text] = v;
    prog.consts.emplace_back(name.text, v);
  }

  /// Constant folding for const initializers (numbers + earlier consts).
  std::int64_t fold(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kNumber:
        return e.value;
      case ExprKind::kVar: {
        const auto it = consts_.find(e.name);
        if (it == consts_.end()) {
          throw CompileError(e.line, "const initializer references unknown name: " + e.name);
        }
        return it->second;
      }
      case ExprKind::kUnary: {
        const std::int64_t a = fold(*e.lhs);
        switch (e.un_op) {
          case UnOp::kNeg: return -a;
          case UnOp::kNot: return a == 0 ? 1 : 0;
          case UnOp::kBitNot: return ~a;
        }
        return 0;
      }
      case ExprKind::kBinary: {
        const std::int64_t a = fold(*e.lhs);
        const std::int64_t b = fold(*e.rhs);
        switch (e.bin_op) {
          case BinOp::kAdd: return a + b;
          case BinOp::kSub: return a - b;
          case BinOp::kMul: return a * b;
          case BinOp::kDiv:
            if (b == 0) throw CompileError(e.line, "division by zero in const");
            return a / b;
          case BinOp::kMod:
            if (b == 0) throw CompileError(e.line, "division by zero in const");
            return a % b;
          case BinOp::kAnd: return a & b;
          case BinOp::kOr: return a | b;
          case BinOp::kXor: return a ^ b;
          case BinOp::kShl: return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) << (b & 63));
          case BinOp::kShr: return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) >> (b & 63));
          case BinOp::kEq: return a == b;
          case BinOp::kNe: return a != b;
          case BinOp::kLt: return a < b;
          case BinOp::kLe: return a <= b;
          case BinOp::kGt: return a > b;
          case BinOp::kGe: return a >= b;
          case BinOp::kLogAnd: return (a != 0 && b != 0) ? 1 : 0;
          case BinOp::kLogOr: return (a != 0 || b != 0) ? 1 : 0;
        }
        return 0;
      }
      case ExprKind::kCall:
        throw CompileError(e.line, "call in const initializer");
    }
    return 0;
  }

  Function parse_fn() {
    Function fn;
    fn.line = peek().line;
    expect(Tok::kFn, "'fn'");
    fn.name = expect(Tok::kIdent, "function name").text;
    expect(Tok::kLParen, "'('");
    if (peek().kind != Tok::kRParen) {
      for (;;) {
        fn.params.push_back(expect(Tok::kIdent, "parameter name").text);
        if (peek().kind != Tok::kComma) break;
        take();
      }
    }
    expect(Tok::kRParen, "')'");
    fn.body = parse_block();
    return fn;
  }

  std::vector<StmtPtr> parse_block() {
    expect(Tok::kLBrace, "'{'");
    std::vector<StmtPtr> stmts;
    while (peek().kind != Tok::kRBrace) {
      stmts.push_back(parse_stmt());
    }
    take();  // '}'
    return stmts;
  }

  StmtPtr parse_stmt() {
    const int line = peek().line;
    auto mk = [&](StmtKind k) {
      auto s = std::make_unique<Stmt>();
      s->kind = k;
      s->line = line;
      return s;
    };
    switch (peek().kind) {
      case Tok::kVar: {
        take();
        auto s = mk(StmtKind::kVarDecl);
        s->name = expect(Tok::kIdent, "variable name").text;
        if (peek().kind == Tok::kAssign) {
          take();
          s->expr = parse_expr();
        }
        expect(Tok::kSemi, "';'");
        return s;
      }
      case Tok::kIf: {
        take();
        auto s = mk(StmtKind::kIf);
        expect(Tok::kLParen, "'('");
        s->expr = parse_expr();
        expect(Tok::kRParen, "')'");
        s->body = parse_block();
        if (peek().kind == Tok::kElse) {
          take();
          if (peek().kind == Tok::kIf) {
            s->else_body.push_back(parse_stmt());
          } else {
            s->else_body = parse_block();
          }
        }
        return s;
      }
      case Tok::kWhile: {
        take();
        auto s = mk(StmtKind::kWhile);
        expect(Tok::kLParen, "'('");
        s->expr = parse_expr();
        expect(Tok::kRParen, "')'");
        s->body = parse_block();
        return s;
      }
      case Tok::kReturn: {
        take();
        auto s = mk(StmtKind::kReturn);
        if (peek().kind != Tok::kSemi) s->expr = parse_expr();
        expect(Tok::kSemi, "';'");
        return s;
      }
      case Tok::kBreak: {
        take();
        expect(Tok::kSemi, "';'");
        return mk(StmtKind::kBreak);
      }
      case Tok::kContinue: {
        take();
        expect(Tok::kSemi, "';'");
        return mk(StmtKind::kContinue);
      }
      case Tok::kLBrace: {
        auto s = mk(StmtKind::kBlock);
        s->body = parse_block();
        return s;
      }
      case Tok::kIdent: {
        // Assignment (ident '=' ...) vs expression statement.
        if (peek(1).kind == Tok::kAssign) {
          auto s = mk(StmtKind::kAssign);
          s->name = take().text;
          take();  // '='
          s->expr = parse_expr();
          expect(Tok::kSemi, "';'");
          return s;
        }
        auto s = mk(StmtKind::kExpr);
        s->expr = parse_expr();
        expect(Tok::kSemi, "';'");
        return s;
      }
      default:
        throw CompileError(line, "expected statement");
    }
  }

  // Precedence climbing. Levels from lowest to highest.
  ExprPtr parse_expr() { return parse_bin(0); }

  struct OpInfo {
    BinOp op;
    int prec;
  };

  static const OpInfo* op_info(Tok k) {
    static const std::map<Tok, OpInfo> kOps = {
        {Tok::kOrOr, {BinOp::kLogOr, 1}},   {Tok::kAndAnd, {BinOp::kLogAnd, 2}},
        {Tok::kPipe, {BinOp::kOr, 3}},      {Tok::kCaret, {BinOp::kXor, 4}},
        {Tok::kAmp, {BinOp::kAnd, 5}},      {Tok::kEq, {BinOp::kEq, 6}},
        {Tok::kNe, {BinOp::kNe, 6}},        {Tok::kLt, {BinOp::kLt, 7}},
        {Tok::kLe, {BinOp::kLe, 7}},        {Tok::kGt, {BinOp::kGt, 7}},
        {Tok::kGe, {BinOp::kGe, 7}},        {Tok::kShl, {BinOp::kShl, 8}},
        {Tok::kShr, {BinOp::kShr, 8}},      {Tok::kPlus, {BinOp::kAdd, 9}},
        {Tok::kMinus, {BinOp::kSub, 9}},    {Tok::kStar, {BinOp::kMul, 10}},
        {Tok::kSlash, {BinOp::kDiv, 10}},   {Tok::kPercent, {BinOp::kMod, 10}},
    };
    const auto it = kOps.find(k);
    return it == kOps.end() ? nullptr : &it->second;
  }

  ExprPtr parse_bin(int min_prec) {
    ExprPtr lhs = parse_unary();
    for (;;) {
      const OpInfo* info = op_info(peek().kind);
      if (info == nullptr || info->prec < min_prec) return lhs;
      const int line = take().line;
      ExprPtr rhs = parse_bin(info->prec + 1);
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBinary;
      e->line = line;
      e->bin_op = info->op;
      e->lhs = std::move(lhs);
      e->rhs = std::move(rhs);
      lhs = std::move(e);
    }
  }

  ExprPtr parse_unary() {
    const int line = peek().line;
    auto un = [&](UnOp op) {
      take();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->line = line;
      e->un_op = op;
      e->lhs = parse_unary();
      return e;
    };
    switch (peek().kind) {
      case Tok::kMinus: return un(UnOp::kNeg);
      case Tok::kBang: return un(UnOp::kNot);
      case Tok::kTilde: return un(UnOp::kBitNot);
      default: return parse_primary();
    }
  }

  ExprPtr parse_primary() {
    const Token t = take();
    auto e = std::make_unique<Expr>();
    e->line = t.line;
    switch (t.kind) {
      case Tok::kNumber:
        e->kind = ExprKind::kNumber;
        e->value = t.value;
        return e;
      case Tok::kLParen: {
        ExprPtr inner = parse_expr();
        expect(Tok::kRParen, "')'");
        return inner;
      }
      case Tok::kIdent: {
        if (peek().kind == Tok::kLParen) {
          take();
          e->kind = ExprKind::kCall;
          e->name = t.text;
          if (peek().kind != Tok::kRParen) {
            for (;;) {
              e->args.push_back(parse_expr());
              if (peek().kind != Tok::kComma) break;
              take();
            }
          }
          expect(Tok::kRParen, "')'");
          return e;
        }
        e->kind = ExprKind::kVar;
        e->name = t.text;
        return e;
      }
      default:
        throw CompileError(t.line, "expected expression");
    }
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  std::map<std::string, std::int64_t> consts_;
};

}  // namespace

Program parse(std::string_view source) {
  return Parser(source).parse_program();
}

}  // namespace gf::minic
