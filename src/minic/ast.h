// MiniC abstract syntax tree.
//
// The only data type is the 64-bit signed integer. Memory is reached through
// the load/store intrinsics, kernel intrinsics through sys(n, ...). This is
// deliberately austere: it keeps the compiler small while still expressing
// real systems code (allocators, string conversion, handle tables).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gf::minic {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class UnOp : std::uint8_t { kNeg, kNot, kBitNot };

enum class BinOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kAnd, kOr, kXor, kShl, kShr,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kLogAnd, kLogOr,
};

enum class ExprKind : std::uint8_t {
  kNumber,   ///< literal (or resolved const)
  kVar,      ///< local variable / parameter reference
  kUnary,
  kBinary,
  kCall,     ///< user function call or intrinsic (load/store/load8/store8/sys)
};

struct Expr {
  ExprKind kind;
  int line = 0;

  // kNumber
  std::int64_t value = 0;
  // kVar / kCall
  std::string name;
  int var_slot = -1;  ///< filled by sema: local slot index
  // kUnary / kBinary
  UnOp un_op = UnOp::kNeg;
  BinOp bin_op = BinOp::kAdd;
  ExprPtr lhs, rhs;  ///< unary uses lhs only
  // kCall
  std::vector<ExprPtr> args;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind : std::uint8_t {
  kVarDecl,   ///< var name [= init];
  kAssign,    ///< name = expr;
  kExpr,      ///< expr; (function call for effect)
  kIf,
  kWhile,
  kReturn,    ///< return [expr];
  kBreak,
  kContinue,
  kBlock,
};

struct Stmt {
  StmtKind kind;
  int line = 0;

  std::string name;   ///< kVarDecl / kAssign target
  int var_slot = -1;  ///< filled by sema
  ExprPtr expr;       ///< init / value / condition / return value
  std::vector<StmtPtr> body;       ///< kBlock, kIf then, kWhile body
  std::vector<StmtPtr> else_body;  ///< kIf else
};

struct Function {
  std::string name;
  std::vector<std::string> params;
  std::vector<StmtPtr> body;
  int line = 0;
  int num_slots = 0;  ///< params + locals, filled by sema
};

struct Program {
  // const name = value; (resolved into kNumber during parsing)
  std::vector<std::pair<std::string, std::int64_t>> consts;
  std::vector<Function> functions;
};

}  // namespace gf::minic
