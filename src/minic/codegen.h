// MiniC code generator.
//
// The emitted idioms are a *stable contract* with the G-SWFIT mutation
// scanner (src/swfit/operators.cpp). The scanner recognizes source-level
// constructs from these exact shapes, just as the paper's operator library
// recognizes the idioms of the compiler that produced the target binary:
//
//   var x = C;        MOVI r0, C            (first store to slot = init)
//                     ST   [fp, -8k], r0
//   x = a + b;        ...ALU writing r0
//                     ST   [fp, -8k], r0
//   if (cond) {...}   <test>; Jinv Lend; <body>; Lend:
//   a && b            <test a>; Jinv Lfalse; <test b>; Jinv Lfalse
//   f(v)              LD r1, [fp, -8k]   (simple args loaded directly
//                     CALL f              into argument registers)
//   f(a+b)            LD r7,...; LD r8,...; ADD r1, r7, r8; CALL f
//
// Calling convention: args in r1..r6, result in r0, all locals spilled to
// the frame (nothing live in registers across calls), single exit block.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/image.h"
#include "minic/ast.h"

namespace gf::minic {

/// Generates code for all functions of an analyzed program into an image
/// based at `base`. Each function becomes a symbol. Throws CompileError.
isa::Image generate(const Program& prog, std::string image_name,
                    std::uint64_t base);

}  // namespace gf::minic
