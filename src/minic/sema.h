// MiniC semantic analysis: name resolution (locals, consts, functions,
// intrinsics), arity checking, break/continue placement.
#pragma once

#include "minic/ast.h"

namespace gf::minic {

/// Intrinsic signatures recognized by sema and codegen.
///   load(addr) load8(addr) -> value
///   store(addr, v) store8(addr, v) -> 0
///   sys(number, a0..a4) -> kernel intrinsic result
bool is_intrinsic(const std::string& name) noexcept;

/// Resolves names in place and fills var_slot / num_slots.
/// Throws CompileError on any semantic error.
void analyze(Program& prog);

}  // namespace gf::minic
