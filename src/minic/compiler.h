// MiniC compiler driver: source text -> linked VISA image.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "isa/image.h"
#include "minic/ast.h"

namespace gf::minic {

/// Compiles one or more source fragments (concatenated into a single
/// translation unit, so later fragments may call functions from earlier
/// ones) into an image based at `base`. Throws CompileError on any error.
isa::Image compile(const std::vector<std::string_view>& sources,
                   std::string image_name, std::uint64_t base);

/// Convenience: single source.
isa::Image compile(std::string_view source, std::string image_name,
                   std::uint64_t base);

}  // namespace gf::minic
