#include "minic/codegen.h"

#include <limits>
#include <map>

#include "minic/lexer.h"
#include "minic/sema.h"

namespace gf::minic {

using isa::Instr;
using isa::Op;

namespace {

constexpr std::uint8_t kR0 = 0;   // result / scratch
constexpr std::uint8_t kT0 = 7;   // expression temporaries
constexpr std::uint8_t kT1 = 8;

class CodeGen {
 public:
  CodeGen(const Program& prog, std::string image_name, std::uint64_t base)
      : prog_(prog), name_(std::move(image_name)), base_(base) {}

  isa::Image run() {
    for (const auto& fn : prog_.functions) gen_function(fn);
    return link();
  }

 private:
  struct Pending {
    std::size_t instr_index;
    int label = -1;          ///< local label id, or
    std::string callee;      ///< function name for CALL fixups
  };
  struct FuncRecord {
    std::string name;
    std::size_t first_instr;
    std::size_t end_instr;
  };

  // --- emission helpers ----------------------------------------------------
  std::size_t emit(Instr in) {
    code_.push_back(in);
    return code_.size() - 1;
  }
  std::size_t emit(Op op, std::uint8_t rd = 0, std::uint8_t rs1 = 0,
                   std::uint8_t rs2 = 0, std::int32_t imm = 0) {
    return emit(Instr{op, rd, rs1, rs2, imm});
  }

  int new_label() {
    label_pos_.push_back(-1);
    return static_cast<int>(label_pos_.size()) - 1;
  }
  void bind(int label) {
    label_pos_[static_cast<std::size_t>(label)] = static_cast<std::int64_t>(code_.size());
  }
  void emit_jump(Op op, int label) {
    fixups_.push_back({emit(op), label, {}});
  }
  void emit_call(const std::string& callee, int line) {
    if (!fn_exists(callee)) throw CompileError(line, "call to unknown function: " + callee);
    fixups_.push_back({emit(Op::kCall), -1, callee});
  }
  bool fn_exists(const std::string& n) const {
    for (const auto& f : prog_.functions) {
      if (f.name == n) return true;
    }
    return false;
  }

  static std::int32_t imm32(std::int64_t v, int line) {
    if (v < std::numeric_limits<std::int32_t>::min() ||
        v > std::numeric_limits<std::int32_t>::max()) {
      throw CompileError(line, "constant does not fit in 32 bits");
    }
    return static_cast<std::int32_t>(v);
  }

  static std::int32_t slot_off(int slot) { return -8 * (slot + 1); }

  // --- function ------------------------------------------------------------
  void gen_function(const Function& fn) {
    const std::size_t first = code_.size();
    ret_label_ = new_label();
    break_labels_.clear();
    continue_labels_.clear();

    // Prologue.
    emit(Op::kPush, 0, isa::kRegFp);
    emit(Op::kMov, isa::kRegFp, isa::kRegSp);
    if (fn.num_slots > 0) {
      emit(Op::kAddI, isa::kRegSp, isa::kRegSp, 0, -8 * fn.num_slots);
    }
    // Spill parameters into their slots.
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      emit(Op::kSt, 0, isa::kRegFp,
           static_cast<std::uint8_t>(isa::kRegArg0 + i),
           slot_off(static_cast<int>(i)));
    }

    for (const auto& s : fn.body) gen_stmt(*s);

    // Fall-through return value is 0.
    emit(Op::kMovI, kR0, 0, 0, 0);
    // Epilogue (single exit).
    bind(ret_label_);
    emit(Op::kMov, isa::kRegSp, isa::kRegFp);
    emit(Op::kPop, isa::kRegFp);
    emit(Op::kRet);

    funcs_.push_back({fn.name, first, code_.size()});
  }

  // --- statements ----------------------------------------------------------
  void gen_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kVarDecl:
        if (s.expr) {
          gen_expr(*s.expr);
          emit(Op::kSt, 0, isa::kRegFp, kR0, slot_off(s.var_slot));
        }
        break;
      case StmtKind::kAssign:
        gen_expr(*s.expr);
        emit(Op::kSt, 0, isa::kRegFp, kR0, slot_off(s.var_slot));
        break;
      case StmtKind::kExpr:
        gen_expr(*s.expr);
        break;
      case StmtKind::kIf: {
        if (s.else_body.empty()) {
          const int end = new_label();
          branch_false(*s.expr, end);
          for (const auto& b : s.body) gen_stmt(*b);
          bind(end);
        } else {
          const int els = new_label();
          const int end = new_label();
          branch_false(*s.expr, els);
          for (const auto& b : s.body) gen_stmt(*b);
          emit_jump(Op::kJmp, end);
          bind(els);
          for (const auto& b : s.else_body) gen_stmt(*b);
          bind(end);
        }
        break;
      }
      case StmtKind::kWhile: {
        const int cond = new_label();
        const int end = new_label();
        bind(cond);
        branch_false(*s.expr, end);
        break_labels_.push_back(end);
        continue_labels_.push_back(cond);
        for (const auto& b : s.body) gen_stmt(*b);
        break_labels_.pop_back();
        continue_labels_.pop_back();
        emit_jump(Op::kJmp, cond);
        bind(end);
        break;
      }
      case StmtKind::kReturn:
        if (s.expr) {
          gen_expr(*s.expr);
        } else {
          emit(Op::kMovI, kR0, 0, 0, 0);
        }
        emit_jump(Op::kJmp, ret_label_);
        break;
      case StmtKind::kBreak:
        emit_jump(Op::kJmp, break_labels_.back());
        break;
      case StmtKind::kContinue:
        emit_jump(Op::kJmp, continue_labels_.back());
        break;
      case StmtKind::kBlock:
        for (const auto& b : s.body) gen_stmt(*b);
        break;
    }
  }

  // --- conditions (short-circuit, branch-based) ----------------------------
  static Op cmp_branch_op(BinOp op, bool on_true) {
    // Branch op taken when the comparison is true (on_true) or false.
    switch (op) {
      case BinOp::kEq: return on_true ? Op::kJz : Op::kJnz;
      case BinOp::kNe: return on_true ? Op::kJnz : Op::kJz;
      case BinOp::kLt: return on_true ? Op::kJlt : Op::kJge;
      case BinOp::kLe: return on_true ? Op::kJle : Op::kJgt;
      case BinOp::kGt: return on_true ? Op::kJgt : Op::kJle;
      case BinOp::kGe: return on_true ? Op::kJge : Op::kJlt;
      default: return Op::kNop;
    }
  }

  static bool is_comparison(BinOp op) {
    return cmp_branch_op(op, true) != Op::kNop;
  }

  static bool is_simple(const Expr& e) {
    return e.kind == ExprKind::kNumber || e.kind == ExprKind::kVar;
  }

  /// Loads a simple expression directly into `rd` (MOVI / LD idiom).
  void load_simple(const Expr& e, std::uint8_t rd) {
    if (e.kind == ExprKind::kNumber) {
      emit(Op::kMovI, rd, 0, 0, imm32(e.value, e.line));
    } else {
      emit(Op::kLd, rd, isa::kRegFp, 0, slot_off(e.var_slot));
    }
  }

  /// Emits the comparison test (CMP/CMPI) for lhs <op> rhs.
  void emit_compare(const Expr& lhs, const Expr& rhs) {
    if (is_simple(lhs) && rhs.kind == ExprKind::kNumber) {
      load_simple(lhs, kR0);
      emit(Op::kCmpI, 0, kR0, 0, imm32(rhs.value, rhs.line));
      return;
    }
    if (is_simple(lhs) && is_simple(rhs)) {
      load_simple(lhs, kR0);
      load_simple(rhs, kT0);
      emit(Op::kCmp, 0, kR0, kT0);
      return;
    }
    gen_expr(lhs);
    emit(Op::kPush, 0, kR0);
    gen_expr(rhs);
    emit(Op::kMov, kT0, kR0);
    emit(Op::kPop, kR0);
    emit(Op::kCmp, 0, kR0, kT0);
  }

  void branch_false(const Expr& e, int target) {
    if (e.kind == ExprKind::kBinary) {
      if (e.bin_op == BinOp::kLogAnd) {
        branch_false(*e.lhs, target);
        branch_false(*e.rhs, target);
        return;
      }
      if (e.bin_op == BinOp::kLogOr) {
        const int is_true = new_label();
        branch_true(*e.lhs, is_true);
        branch_false(*e.rhs, target);
        bind(is_true);
        return;
      }
      if (is_comparison(e.bin_op)) {
        emit_compare(*e.lhs, *e.rhs);
        emit_jump(cmp_branch_op(e.bin_op, /*on_true=*/false), target);
        return;
      }
    }
    if (e.kind == ExprKind::kUnary && e.un_op == UnOp::kNot) {
      branch_true(*e.lhs, target);
      return;
    }
    gen_expr(e);
    emit(Op::kCmpI, 0, kR0, 0, 0);
    emit_jump(Op::kJz, target);
  }

  void branch_true(const Expr& e, int target) {
    if (e.kind == ExprKind::kBinary) {
      if (e.bin_op == BinOp::kLogOr) {
        branch_true(*e.lhs, target);
        branch_true(*e.rhs, target);
        return;
      }
      if (e.bin_op == BinOp::kLogAnd) {
        const int is_false = new_label();
        branch_false(*e.lhs, is_false);
        branch_true(*e.rhs, target);
        bind(is_false);
        return;
      }
      if (is_comparison(e.bin_op)) {
        emit_compare(*e.lhs, *e.rhs);
        emit_jump(cmp_branch_op(e.bin_op, /*on_true=*/true), target);
        return;
      }
    }
    if (e.kind == ExprKind::kUnary && e.un_op == UnOp::kNot) {
      branch_false(*e.lhs, target);
      return;
    }
    gen_expr(e);
    emit(Op::kCmpI, 0, kR0, 0, 0);
    emit_jump(Op::kJnz, target);
  }

  // --- expressions (value in r0) --------------------------------------------
  static Op alu_op(BinOp op) {
    switch (op) {
      case BinOp::kAdd: return Op::kAdd;
      case BinOp::kSub: return Op::kSub;
      case BinOp::kMul: return Op::kMul;
      case BinOp::kDiv: return Op::kDiv;
      case BinOp::kMod: return Op::kMod;
      case BinOp::kAnd: return Op::kAnd;
      case BinOp::kOr: return Op::kOr;
      case BinOp::kXor: return Op::kXor;
      case BinOp::kShl: return Op::kShl;
      case BinOp::kShr: return Op::kShr;
      default: return Op::kNop;
    }
  }

  void gen_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kNumber:
        emit(Op::kMovI, kR0, 0, 0, imm32(e.value, e.line));
        break;
      case ExprKind::kVar:
        emit(Op::kLd, kR0, isa::kRegFp, 0, slot_off(e.var_slot));
        break;
      case ExprKind::kUnary:
        gen_expr(*e.lhs);
        switch (e.un_op) {
          case UnOp::kNeg: emit(Op::kNeg, kR0, kR0); break;
          case UnOp::kBitNot: emit(Op::kNot, kR0, kR0); break;
          case UnOp::kNot: {
            const int t = new_label();
            emit(Op::kCmpI, 0, kR0, 0, 0);
            emit(Op::kMovI, kR0, 0, 0, 1);
            emit_jump(Op::kJz, t);
            emit(Op::kMovI, kR0, 0, 0, 0);
            bind(t);
            break;
          }
        }
        break;
      case ExprKind::kBinary: {
        const Op alu = alu_op(e.bin_op);
        if (alu != Op::kNop) {
          if (is_simple(*e.lhs) && is_simple(*e.rhs)) {
            load_simple(*e.lhs, kR0);
            load_simple(*e.rhs, kT0);
            emit(alu, kR0, kR0, kT0);
          } else {
            gen_expr(*e.lhs);
            emit(Op::kPush, 0, kR0);
            gen_expr(*e.rhs);
            emit(Op::kMov, kT0, kR0);
            emit(Op::kPop, kR0);
            emit(alu, kR0, kR0, kT0);
          }
          break;
        }
        if (is_comparison(e.bin_op)) {
          const int t = new_label();
          emit_compare(*e.lhs, *e.rhs);
          emit(Op::kMovI, kR0, 0, 0, 1);
          emit_jump(cmp_branch_op(e.bin_op, /*on_true=*/true), t);
          emit(Op::kMovI, kR0, 0, 0, 0);
          bind(t);
          break;
        }
        // Logical &&/|| materialized via the branch form.
        {
          const int f = new_label();
          const int end = new_label();
          branch_false(e, f);
          emit(Op::kMovI, kR0, 0, 0, 1);
          emit_jump(Op::kJmp, end);
          bind(f);
          emit(Op::kMovI, kR0, 0, 0, 0);
          bind(end);
        }
        break;
      }
      case ExprKind::kCall:
        gen_call(e);
        break;
    }
  }

  /// True for binary expressions with two simple operands and an ALU op —
  /// these are emitted straight into an argument register (the WAEP idiom).
  static bool is_simple_alu(const Expr& e) {
    return e.kind == ExprKind::kBinary && alu_op(e.bin_op) != Op::kNop &&
           is_simple(*e.lhs) && is_simple(*e.rhs);
  }

  /// Places call/sys arguments in r(first)..: complex args via push/pop,
  /// simple and simple-ALU args loaded directly (scanner-visible idioms).
  void place_args(const std::vector<ExprPtr>& args, std::size_t first_arg_index,
                  std::uint8_t first_reg) {
    // Pass 1: evaluate complex arguments left to right, push results.
    for (std::size_t i = first_arg_index; i < args.size(); ++i) {
      const Expr& a = *args[i];
      if (!is_simple(a) && !is_simple_alu(a)) {
        gen_expr(a);
        emit(Op::kPush, 0, kR0);
      }
    }
    // Pass 2: pop complex arguments into their registers (reverse order).
    for (std::size_t i = args.size(); i-- > first_arg_index;) {
      const Expr& a = *args[i];
      if (!is_simple(a) && !is_simple_alu(a)) {
        emit(Op::kPop, static_cast<std::uint8_t>(first_reg + (i - first_arg_index)));
      }
    }
    // Pass 3: simple / simple-ALU arguments straight into argument registers.
    for (std::size_t i = first_arg_index; i < args.size(); ++i) {
      const Expr& a = *args[i];
      const auto rd = static_cast<std::uint8_t>(first_reg + (i - first_arg_index));
      if (is_simple(a)) {
        load_simple(a, rd);
      } else if (is_simple_alu(a)) {
        load_simple(*a.lhs, kT0);
        load_simple(*a.rhs, kT1);
        emit(alu_op(a.bin_op), rd, kT0, kT1);
      }
    }
  }

  void gen_call(const Expr& e) {
    if (e.name == "load" || e.name == "load8") {
      gen_expr(*e.args[0]);
      emit(e.name == "load" ? Op::kLd : Op::kLdB, kR0, kR0, 0, 0);
      return;
    }
    if (e.name == "store" || e.name == "store8") {
      const Op op = e.name == "store" ? Op::kSt : Op::kStB;
      const Expr& addr = *e.args[0];
      const Expr& val = *e.args[1];
      if (is_simple(val)) {
        gen_expr(addr);
        load_simple(val, kT0);
      } else {
        gen_expr(addr);
        emit(Op::kPush, 0, kR0);
        gen_expr(val);
        emit(Op::kMov, kT0, kR0);
        emit(Op::kPop, kR0);
      }
      emit(op, 0, kR0, kT0, 0);
      return;
    }
    if (e.name == "sys") {
      place_args(e.args, 1, isa::kRegArg0);
      emit(Op::kSys, 0, 0, 0, imm32(e.args[0]->value, e.line));
      return;
    }
    place_args(e.args, 0, isa::kRegArg0);
    emit_call(e.name, e.line);
  }

  // --- linking ---------------------------------------------------------------
  isa::Image link() {
    // Function start addresses.
    std::map<std::string, std::uint64_t> fn_addr;
    for (const auto& f : funcs_) {
      fn_addr[f.name] = base_ + f.first_instr * isa::kInstrSize;
    }
    // Resolve fixups.
    for (const auto& fx : fixups_) {
      std::int64_t target_instr;
      if (fx.label >= 0) {
        target_instr = label_pos_[static_cast<std::size_t>(fx.label)];
        if (target_instr < 0) throw CompileError(0, "internal: unbound label");
      } else {
        target_instr = static_cast<std::int64_t>(
            (fn_addr.at(fx.callee) - base_) / isa::kInstrSize);
      }
      const std::int64_t addr =
          static_cast<std::int64_t>(base_) + target_instr * static_cast<std::int64_t>(isa::kInstrSize);
      code_[fx.instr_index].imm = imm32(addr, 0);
    }
    // Emit image + symbols.
    isa::Image img(name_, base_);
    for (const auto& in : code_) img.append(in);
    for (const auto& f : funcs_) {
      img.add_symbol(isa::Symbol{
          f.name, base_ + f.first_instr * isa::kInstrSize,
          (f.end_instr - f.first_instr) * isa::kInstrSize});
    }
    return img;
  }

  const Program& prog_;
  std::string name_;
  std::uint64_t base_;

  std::vector<Instr> code_;
  std::vector<std::int64_t> label_pos_;
  std::vector<Pending> fixups_;
  std::vector<FuncRecord> funcs_;
  int ret_label_ = -1;
  std::vector<int> break_labels_;
  std::vector<int> continue_labels_;
};

}  // namespace

isa::Image generate(const Program& prog, std::string image_name,
                    std::uint64_t base) {
  return CodeGen(prog, std::move(image_name), base).run();
}

}  // namespace gf::minic
