// MiniC lexer.
//
// MiniC is the small C-like systems language the simulated OS API is written
// in. Having a real compiler matters: G-SWFIT's mutation operators are
// defined against *compiler-generated* instruction idioms, and the accuracy
// experiment (source-level bug vs binary mutation) needs both paths.
//
// Token grammar: identifiers, 64-bit integer literals (decimal / 0x hex /
// 'c' char), punctuation/operators, `//` and `/* */` comments.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace gf::minic {

enum class Tok : std::uint8_t {
  kEof,
  kIdent,
  kNumber,
  // keywords
  kFn,
  kVar,
  kConst,
  kIf,
  kElse,
  kWhile,
  kReturn,
  kBreak,
  kContinue,
  // punctuation / operators
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kComma,
  kSemi,
  kAssign,   // =
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kAmp,      // &
  kPipe,     // |
  kCaret,    // ^
  kTilde,    // ~
  kBang,     // !
  kShl,      // <<
  kShr,      // >>
  kEq,       // ==
  kNe,       // !=
  kLt,
  kLe,
  kGt,
  kGe,
  kAndAnd,   // &&
  kOrOr,     // ||
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;        ///< identifier spelling
  std::int64_t value = 0;  ///< number value
  int line = 0;
};

class CompileError : public std::runtime_error {
 public:
  CompileError(int line, const std::string& msg)
      : std::runtime_error("minic:" + std::to_string(line) + ": " + msg),
        line_(line) {}
  int line() const noexcept { return line_; }

 private:
  int line_;
};

/// Tokenizes the whole source; throws CompileError on bad input.
std::vector<Token> lex(std::string_view source);

}  // namespace gf::minic
