#include "obs/profile.h"

#include <algorithm>
#include <cmath>

#include "obs/json.h"

namespace gf::obs {

void Profile::add(const std::string& fn, std::uint64_t n) {
  if (n == 0) return;
  functions[fn] += n;
  total += n;
}

void Profile::merge(const Profile& other) {
  if (stride == 0) stride = other.stride;
  for (const auto& [name, n] : other.functions) {
    functions[name] += n;
  }
  total += other.total;
}

double Profile::share(const std::string& fn) const noexcept {
  if (total == 0) return 0;
  const auto it = functions.find(fn);
  if (it == functions.end()) return 0;
  return static_cast<double>(it->second) / static_cast<double>(total);
}

std::string Profile::to_json() const {
  std::string out = "{\"stride\": " + std::to_string(stride) +
                    ", \"total\": " + std::to_string(total) +
                    ", \"functions\": {";
  bool first = true;
  for (const auto& [name, n] : functions) {  // std::map: sorted keys
    out += first ? "" : ", ";
    first = false;
    out += "\"" + json::escape(name) + "\": " + std::to_string(n);
  }
  out += "}}";
  return out;
}

Divergence profile_divergence(const Profile& base, const Profile& fault) {
  Divergence d;
  // Union of both function sets, via the sorted maps.
  std::map<std::string, FunctionDelta> union_;
  for (const auto& [name, n] : base.functions) {
    auto& fd = union_[name];
    fd.name = name;
    fd.base_samples = n;
  }
  for (const auto& [name, n] : fault.functions) {
    auto& fd = union_[name];
    fd.name = name;
    fd.fault_samples = n;
  }
  double l1 = 0;
  for (auto& [name, fd] : union_) {
    fd.base_share = base.total == 0 ? 0
                                    : static_cast<double>(fd.base_samples) /
                                          static_cast<double>(base.total);
    fd.fault_share = fault.total == 0 ? 0
                                      : static_cast<double>(fd.fault_samples) /
                                            static_cast<double>(fault.total);
    fd.delta = fd.fault_share - fd.base_share;
    l1 += std::abs(fd.delta);
    d.deltas.push_back(fd);
  }
  d.score = 0.5 * l1;
  std::sort(d.deltas.begin(), d.deltas.end(),
            [](const FunctionDelta& a, const FunctionDelta& b) {
              const double ma = std::abs(a.delta), mb = std::abs(b.delta);
              if (ma != mb) return ma > mb;
              return a.name < b.name;
            });
  return d;
}

std::string Divergence::to_json(std::size_t top_n) const {
  std::string out = "{\"score\": " + json::number(score) + ", \"deltas\": [";
  const std::size_t n =
      top_n == 0 ? deltas.size() : std::min(top_n, deltas.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& fd = deltas[i];
    out += i == 0 ? "" : ", ";
    out += "{\"function\": \"" + json::escape(fd.name) +
           "\", \"base\": " + std::to_string(fd.base_samples) +
           ", \"fault\": " + std::to_string(fd.fault_samples) +
           ", \"delta\": " + json::number(fd.delta) + "}";
  }
  out += "]}";
  return out;
}

void append_collapsed(std::string& out, const std::string& prefix,
                      const Profile& p) {
  for (const auto& [name, n] : p.functions) {
    out += prefix;
    out += ';';
    out += name;
    out += ' ';
    out += std::to_string(n);
    out += '\n';
  }
}

}  // namespace gf::obs
