// Rate-limited campaign progress reporter (ETA from completed-fault rate).
//
// Replaces the old ad-hoc per-cell GF_INFO logging: the runner announces the
// planned fault total, every controller bumps the completed count as it
// injects, and the reporter prints at most one stderr line per interval —
// completed/total, faults/s, and the ETA extrapolated from the measured
// rate. All state is atomic; the throttle is a CAS on the last-print stamp,
// so concurrent shard tasks never double-print and the off path (no reporter
// wired) costs nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace gf::obs {

class ProgressReporter {
 public:
  explicit ProgressReporter(double min_interval_s = 1.0);

  /// Total faults the campaign plans to inject (denominator for the ETA).
  void set_total(std::uint64_t total_faults) noexcept;

  /// Estimated total cost of the planned work (arbitrary units — the
  /// scheduler's chunk cost model). When set, the ETA extrapolates from
  /// *completed cost* instead of the raw fault rate: under dynamic
  /// chunk scheduling the per-fault rate swings with whichever chunk sizes
  /// happen to be in flight, and a rate-based ETA jumps around with it.
  void set_total_cost(double cost) noexcept;

  /// Called by the scheduler when a work unit (fault chunk / baseline)
  /// completes, with that unit's estimated cost.
  void add_cost(double cost) noexcept;

  /// Runs satisfied from the campaign store before scheduling. Cached work
  /// is subtracted from the totals *up front* (the runner announces only
  /// the cost/count of runs it will actually execute), so the ETA never
  /// amortizes instantly-folded cache hits into the measured rate; this
  /// count exists purely so the printed lines can say how much was skipped.
  void set_cached(std::uint64_t cached_runs) noexcept;

  /// Called by controllers per injected fault; prints at most once per
  /// interval.
  void add_faults(std::uint64_t n = 1) noexcept;

  /// Cell-completion milestone: always printed (these are rare).
  void cell_done(const std::string& cell, std::size_t done,
                 std::size_t total) noexcept;

  /// Final summary line.
  void finish() noexcept;

  std::uint64_t completed() const noexcept {
    return done_.load(std::memory_order_relaxed);
  }

 private:
  void report(std::uint64_t done, double elapsed_s) noexcept;
  void maybe_report() noexcept;
  double now_s() const noexcept;

  const double min_interval_s_;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> done_{0};
  std::atomic<std::uint64_t> cached_{0};
  /// Cost accounting in fixed-point milli-units so the accumulate is a plain
  /// atomic add (no atomic<double> RMW needed).
  std::atomic<std::uint64_t> total_cost_m_{0};
  std::atomic<std::uint64_t> done_cost_m_{0};
  /// Wall seconds (relative to start_) of the last printed line, as a CAS
  /// token: whoever wins the exchange prints.
  std::atomic<std::uint64_t> last_print_ms_{0};
  double start_s_ = 0;
};

}  // namespace gf::obs
