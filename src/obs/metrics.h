// Deterministic metrics registry: counters, gauges, fixed-bucket histograms.
//
// Every campaign shard task owns a private registry (no locks, no sharing)
// and the runner merges the per-task registries at the join, in slot order.
// All merge operations are commutative folds (counter/histogram sums, gauge
// max), every map is ordered by name, and the JSON rendering is canonical
// (sorted keys, fixed number formatting) — so the merged artifact is
// bit-identical for any worker count, exactly like the campaign results
// themselves (PR 1's per-slot discipline).
//
// Cost model (ZOFI: monitoring must cost ~zero when off): nothing in this
// file is ever touched from the VM dispatch loop. The hot layers keep raw
// struct counters (vm::DispatchStats, os::KernelCounters, the injector
// tallies) that the controller *harvests* into a registry at run boundaries;
// the only live sink is ApiMetrics, one predictable null-check per OS API
// call (each of which executes thousands of VM cycles anyway).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <map>
#include <string>

namespace gf::obs {

/// Fixed log2-bucket histogram (bucket i counts values with bit_width i,
/// i.e. [2^(i-1), 2^i); values past the last bucket land in it). Cycle
/// latencies span ~1..2^20, so 24 buckets cover everything we record.
struct Histogram {
  static constexpr std::size_t kBuckets = 24;

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max = 0;
  std::array<std::uint64_t, kBuckets> buckets{};

  static std::size_t bucket_of(std::uint64_t v) noexcept;

  void observe(std::uint64_t v) noexcept;
  /// Exact commutative merge (sums; min/max fold).
  void merge(const Histogram& other) noexcept;
  double mean() const noexcept {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count) : 0;
  }
};

/// Named counters/gauges/histograms with canonical (name-sorted) rendering.
class Registry {
 public:
  void add(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }
  /// Gauges snapshot a level rather than accumulate; merge keeps the max
  /// (the only commutative choice that is still meaningful per task).
  void gauge(const std::string& name, std::uint64_t value);
  void observe(const std::string& name, std::uint64_t value) {
    histograms_[name].observe(value);
  }
  /// Direct histogram access (bulk merges from pre-aggregated sinks).
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  std::uint64_t counter(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  /// Commutative merge: counters/histograms sum, gauges take the max.
  void merge(const Registry& other);

  bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  const std::map<std::string, std::uint64_t>& counters() const noexcept {
    return counters_;
  }
  const std::map<std::string, std::uint64_t>& gauges() const noexcept {
    return gauges_;
  }
  const std::map<std::string, Histogram>& histograms() const noexcept {
    return histograms_;
  }

  /// Canonical JSON: {"counters":{...},"gauges":{...},"histograms":{...}}
  /// with keys in map (byte-sorted) order — byte-identical for equal
  /// contents, which is what the determinism tests compare.
  std::string to_json() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, std::uint64_t> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Live per-OS-API-function sink (Table 2's observability counterpart):
/// call counts, failure-mode counts, and a cycle-latency histogram per
/// function. OsApi::call records into this when attached; the disabled path
/// is a single never-taken branch.
struct ApiFunctionMetrics {
  std::uint64_t calls = 0;
  std::uint64_t errors = 0;   ///< completed with negative status
  std::uint64_t crashes = 0;  ///< trap escaped the call
  std::uint64_t hangs = 0;    ///< cycle budget exhausted
  Histogram cycles;
};

struct ApiMetrics {
  std::map<std::string, ApiFunctionMetrics> functions;

  void record(const std::string& name, std::uint64_t cycles, bool ok,
              bool crashed, bool hung);
  void merge(const ApiMetrics& other);
  /// Folds into `r` as api.<fn>.calls/errors/crashes/hangs counters plus the
  /// api.<fn>.cycles histogram.
  void export_into(Registry& r) const;
};

}  // namespace gf::obs
