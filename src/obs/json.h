// Minimal strict JSON parser + writer helpers for the observability layer.
//
// Every machine-readable artifact this repo emits (metrics registries,
// campaign manifests, Chrome trace files, JSONL journals) is validated by
// round-tripping through this parser — in tests/test_obs.cpp, and from the
// command line via tools/json_check. The parser builds a small DOM; it is
// not meant for large documents or hot paths.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gf::obs::json {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<Value> array;
  /// Key order is preserved (canonical emitters sort their keys, and tests
  /// check that ordering survives the round trip).
  std::vector<std::pair<std::string, Value>> object;

  bool is_object() const noexcept { return type == Type::kObject; }
  bool is_array() const noexcept { return type == Type::kArray; }
  bool is_number() const noexcept { return type == Type::kNumber; }
  bool is_string() const noexcept { return type == Type::kString; }

  /// First member with `key`, or nullptr (objects only).
  const Value* find(std::string_view key) const noexcept;
};

/// Parses one complete JSON document (trailing garbage is an error). On
/// failure returns nullopt and, when `error` is given, a one-line message
/// with the byte offset of the problem.
std::optional<Value> parse(std::string_view text, std::string* error = nullptr);

/// Escapes `s` for embedding between double quotes in JSON output.
std::string escape(std::string_view s);

/// Canonical double formatting for deterministic artifacts: shortest form
/// via %.10g, with NaN/Inf (invalid JSON) clamped to 0.
std::string number(double v);

}  // namespace gf::obs::json
