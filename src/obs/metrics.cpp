#include "obs/metrics.h"

#include <algorithm>
#include <bit>

#include "obs/json.h"

namespace gf::obs {

std::size_t Histogram::bucket_of(std::uint64_t v) noexcept {
  const auto w = static_cast<std::size_t>(std::bit_width(v));
  return w < kBuckets ? w : kBuckets - 1;
}

void Histogram::observe(std::uint64_t v) noexcept {
  ++count;
  sum += v;
  min = std::min(min, v);
  max = std::max(max, v);
  ++buckets[bucket_of(v)];
}

void Histogram::merge(const Histogram& other) noexcept {
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
}

void Registry::gauge(const std::string& name, std::uint64_t value) {
  auto [it, inserted] = gauges_.emplace(name, value);
  if (!inserted) it->second = std::max(it->second, value);
}

void Registry::merge(const Registry& other) {
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
  for (const auto& [name, v] : other.gauges_) gauge(name, v);
  for (const auto& [name, h] : other.histograms_) histograms_[name].merge(h);
}

std::string Registry::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json::escape(name) + "\": " + std::to_string(v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json::escape(name) + "\": " + std::to_string(v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json::escape(name) + "\": {\"count\": " +
           std::to_string(h.count) + ", \"sum\": " + std::to_string(h.sum) +
           ", \"min\": " + std::to_string(h.count > 0 ? h.min : 0) +
           ", \"max\": " + std::to_string(h.max) + ", \"buckets\": [";
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(h.buckets[i]);
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void ApiMetrics::record(const std::string& name, std::uint64_t cycles, bool ok,
                        bool crashed, bool hung) {
  auto& fn = functions[name];
  ++fn.calls;
  if (crashed) ++fn.crashes;
  else if (hung) ++fn.hangs;
  else if (!ok) ++fn.errors;
  fn.cycles.observe(cycles);
}

void ApiMetrics::merge(const ApiMetrics& other) {
  for (const auto& [name, fn] : other.functions) {
    auto& mine = functions[name];
    mine.calls += fn.calls;
    mine.errors += fn.errors;
    mine.crashes += fn.crashes;
    mine.hangs += fn.hangs;
    mine.cycles.merge(fn.cycles);
  }
}

void ApiMetrics::export_into(Registry& r) const {
  for (const auto& [name, fn] : functions) {
    const std::string base = "api." + name;
    r.add(base + ".calls", fn.calls);
    if (fn.errors > 0) r.add(base + ".errors", fn.errors);
    if (fn.crashes > 0) r.add(base + ".crashes", fn.crashes);
    if (fn.hangs > 0) r.add(base + ".hangs", fn.hangs);
    r.histogram(base + ".cycles").merge(fn.cycles);
  }
}

}  // namespace gf::obs
