#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gf::obs::json {

const Value* Value::find(std::string_view key) const noexcept {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;
  // JSONL journals nest at most a few levels; the cap only guards against
  // pathological inputs blowing the parser's own stack.
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& msg) {
    if (error.empty()) {
      error = msg + " at byte " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return fail("bad literal");
    pos += word.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos;
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) return fail("truncated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // UTF-8 encode (surrogate pairs are passed through individually —
          // good enough for validation; our emitters never produce them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail("bad escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(text[pos]))) {
      return fail("bad number");
    }
    // JSON forbids leading zeros ("01"); our validator enforces it.
    if (text[pos] == '0' && pos + 1 < text.size() &&
        std::isdigit(static_cast<unsigned char>(text[pos + 1]))) {
      return fail("leading zero in number");
    }
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(text[pos]))) {
        return fail("bad fraction");
      }
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(text[pos]))) {
        return fail("bad exponent");
      }
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    out.type = Value::Type::kNumber;
    out.number = std::strtod(std::string(text.substr(start, pos - start)).c_str(), nullptr);
    return true;
  }

  bool parse_value(Value& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    switch (c) {
      case '{': {
        ++pos;
        out.type = Value::Type::kObject;
        skip_ws();
        if (pos < text.size() && text[pos] == '}') { ++pos; return true; }
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (!consume(':')) return false;
          Value v;
          if (!parse_value(v, depth + 1)) return false;
          out.object.emplace_back(std::move(key), std::move(v));
          skip_ws();
          if (pos < text.size() && text[pos] == ',') { ++pos; continue; }
          return consume('}');
        }
      }
      case '[': {
        ++pos;
        out.type = Value::Type::kArray;
        skip_ws();
        if (pos < text.size() && text[pos] == ']') { ++pos; return true; }
        while (true) {
          Value v;
          if (!parse_value(v, depth + 1)) return false;
          out.array.push_back(std::move(v));
          skip_ws();
          if (pos < text.size() && text[pos] == ',') { ++pos; continue; }
          return consume(']');
        }
      }
      case '"':
        out.type = Value::Type::kString;
        return parse_string(out.string);
      case 't':
        out.type = Value::Type::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.type = Value::Type::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.type = Value::Type::kNull;
        return literal("null");
      default:
        return parse_number(out);
    }
  }
};

}  // namespace

std::optional<Value> parse(std::string_view text, std::string* error) {
  Parser p{text, 0, {}};
  Value v;
  if (!p.parse_value(v, 0)) {
    if (error != nullptr) *error = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error != nullptr) {
      *error = "trailing garbage at byte " + std::to_string(p.pos);
    }
    return std::nullopt;
  }
  return v;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

}  // namespace gf::obs::json
