#include "obs/chrome_trace.h"

#include "obs/journal.h"
#include "obs/json.h"

namespace gf::obs {
namespace {

constexpr std::uint32_t kHostPid = 1;
constexpr std::uint32_t kVirtualPid = 2;

void append_meta(std::string& out, std::uint32_t pid, std::uint32_t tid,
                 const char* kind, const std::string& name) {
  out += "{\"ph\": \"M\", \"pid\": " + std::to_string(pid) +
         ", \"tid\": " + std::to_string(tid) + ", \"name\": \"" + kind +
         "\", \"args\": {\"name\": \"" + json::escape(name) + "\"}},\n";
}

}  // namespace

std::string chrome_trace_json(const std::vector<TaskTrack>& tracks) {
  std::string out = "{\"traceEvents\": [\n";
  append_meta(out, kHostPid, 0, "process_name", "host wall-clock");
  append_meta(out, kVirtualPid, 0, "process_name", "vm virtual time");
  for (const auto& t : tracks) {
    const std::string track_name = t.cell + "/" + t.label;
    append_meta(out, kHostPid, t.tid, "thread_name", track_name);
    if (t.journal != nullptr) {
      append_meta(out, kVirtualPid, t.tid, "thread_name", track_name);
    }
  }
  // Host view: one complete event per task on wall-clock time.
  for (const auto& t : tracks) {
    const double dur = t.wall_end_us > t.wall_start_us
                           ? t.wall_end_us - t.wall_start_us
                           : 0;
    out += "{\"ph\": \"X\", \"pid\": " + std::to_string(kHostPid) +
           ", \"tid\": " + std::to_string(t.tid) +
           ", \"ts\": " + json::number(t.wall_start_us) +
           ", \"dur\": " + json::number(dur) + ", \"name\": \"" +
           json::escape(t.cell + "/" + t.label) + "\", \"cat\": \"task\"},\n";
  }
  // Virtual view: each journal replayed on the simulated clock. Journals are
  // already in chronological order, so per-track timestamps stay monotone.
  for (const auto& t : tracks) {
    if (t.journal == nullptr) continue;
    const auto events = t.journal->events();
    if (t.journal->dropped() > 0 && !events.empty()) {
      // The ring wrapped: mark the cut at the first surviving event's
      // timestamp so the lost-history gap is visible in the viewer.
      out += "{\"ph\": \"i\", \"pid\": " + std::to_string(kVirtualPid) +
             ", \"tid\": " + std::to_string(t.tid) +
             ", \"ts\": " + json::number(events.front().sim_ms * 1000.0) +
             ", \"name\": \"journal truncated\", \"cat\": \"slot\", \"s\": "
             "\"t\", \"args\": {\"truncated\": " +
             std::to_string(t.journal->dropped()) + "}},\n";
    }
    for (const auto& e : events) {
      out += "{\"ph\": \"";
      out += phase_letter(e.phase);
      out += "\", \"pid\": " + std::to_string(kVirtualPid) +
             ", \"tid\": " + std::to_string(t.tid) +
             ", \"ts\": " + json::number(e.sim_ms * 1000.0) + ", \"name\": \"" +
             json::escape(e.name) + "\", \"cat\": \"slot\"";
      if (e.phase == Phase::kInstant) out += ", \"s\": \"t\"";
      if (!e.args.empty()) {
        out += ", \"args\": " + e.args;
      }
      out += "},\n";
    }
  }
  // Strip the trailing ",\n" left by the last event.
  if (out.size() >= 2 && out[out.size() - 2] == ',') {
    out.erase(out.size() - 2, 1);
  }
  out += "]}\n";
  return out;
}

}  // namespace gf::obs
