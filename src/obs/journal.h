// Cycle-stamped event journal: per-task append-only ring of spans/instants.
//
// Each campaign shard task owns a private journal; the controller stamps
// every event with the deterministic simulated-time clock (ms) and the VM's
// lifetime cycle counter — never host wall time — so the flushed JSONL is a
// pure function of (seed, cell, task) and byte-identical for any --jobs.
// The ring bound keeps memory flat on full-length campaigns: once capacity
// is hit the oldest events are overwritten (the recent tail is what failure
// forensics needs) and `dropped()` records how many were lost — bounded
// instrumentation must degrade loudly, never grow without bound.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace gf::obs {

/// Chrome-trace-compatible phases: B/E spans must nest per track; instants
/// stand alone.
enum class Phase : std::uint8_t { kInstant, kBegin, kEnd };

char phase_letter(Phase p) noexcept;

struct Event {
  Phase phase = Phase::kInstant;
  std::string name;
  double sim_ms = 0;        ///< simulated clock (deterministic)
  std::uint64_t cycle = 0;  ///< vm::Machine::total_cycles() at the event
  /// Optional pre-rendered JSON *object* ("{...}") attached as "args".
  std::string args;
};

class Journal {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  explicit Journal(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity > 0 ? capacity : 1) {}

  void instant(std::string name, double sim_ms, std::uint64_t cycle,
               std::string args = {}) {
    push({Phase::kInstant, std::move(name), sim_ms, cycle, std::move(args)});
  }
  void begin(std::string name, double sim_ms, std::uint64_t cycle,
             std::string args = {}) {
    push({Phase::kBegin, std::move(name), sim_ms, cycle, std::move(args)});
  }
  void end(std::string name, double sim_ms, std::uint64_t cycle) {
    push({Phase::kEnd, std::move(name), sim_ms, cycle, {}});
  }

  /// Events in chronological (append) order, oldest surviving entry first.
  std::vector<Event> events() const;

  /// Reconstructs a journal from persisted state (campaign-store resume):
  /// `events` must be in chronological order and `dropped` restores the
  /// seq-gap accounting of a ring that overflowed, so the rendered JSONL of
  /// a restored journal is byte-identical to the original's.
  static Journal restore(std::size_t capacity, std::uint64_t dropped,
                         std::vector<Event> events);

  std::size_t size() const noexcept {
    return ring_.size() < capacity_ ? ring_.size() : capacity_;
  }
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  void push(Event e);

  std::size_t capacity_;
  std::size_t next_ = 0;  ///< ring write index once full
  std::uint64_t dropped_ = 0;
  std::vector<Event> ring_;
};

/// One canonical JSON object per event:
///   {"track":"...","seq":N,"ph":"B","name":"...","ms":...,"cycle":...}
/// `track` labels the owning task (e.g. "VOS-2000/apex/iter0.f12"); seq
/// numbers restart per journal and count dropped events so gaps are visible.
void write_jsonl(std::ostream& os, const std::string& track, const Journal& j);

}  // namespace gf::obs
