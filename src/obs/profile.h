// Deterministic flat cycle profiles and differential attribution.
//
// A Profile aggregates the VM's stride-countdown PC samples after they have
// been attributed to functions (via the guest image's symbol table): one
// sample ≙ one stride of virtual cycles spent inside the function. Because
// the sampler ticks only at retired architectural-step boundaries of the
// deterministic VM, a profile is a pure function of (seed, cell, task) —
// byte-identical for any scheduling, fusion setting or dispatch lowering.
//
// Differential profiles answer the paper's missing question — *where did
// execution go after a fault activated* — by comparing the faulty run's
// cycle-share distribution against the baseline's: per-function share deltas
// ranked by magnitude, plus a single divergence score (half the L1 distance
// between the two distributions, 0 = identical, 1 = disjoint).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gf::obs {

/// Flat per-function sample profile. `total` is always the sum of the
/// per-function counts (tools/json_check --schema profile enforces this).
struct Profile {
  std::uint64_t stride = 0;  ///< sampling stride in virtual cycles; 0 = off
  std::uint64_t total = 0;   ///< total samples across all functions
  std::map<std::string, std::uint64_t> functions;  ///< name -> samples

  bool empty() const noexcept { return total == 0; }

  /// Adds `n` samples to `fn` (and to the total).
  void add(const std::string& fn, std::uint64_t n);

  /// Folds `other` into this profile (sums per-function counts). The first
  /// non-empty stride wins; merging is commutative and associative for
  /// profiles taken at one stride, which the campaign guarantees.
  void merge(const Profile& other);

  /// Fraction of all samples spent in `fn` (0 when the profile is empty).
  double share(const std::string& fn) const noexcept;

  /// Canonical JSON object (sorted keys, integer counts):
  ///   {"stride": S, "total": N, "functions": {"name": n, ...}}
  std::string to_json() const;
};

/// One function's contribution to a differential profile.
struct FunctionDelta {
  std::string name;
  std::uint64_t base_samples = 0;
  std::uint64_t fault_samples = 0;
  double base_share = 0;
  double fault_share = 0;
  double delta = 0;  ///< fault_share - base_share
};

/// Differential profile of a faulty run against its baseline.
struct Divergence {
  /// Half the L1 distance between the two share distributions: 0 when the
  /// cycle distributions are identical, 1 when they share no function.
  double score = 0;
  /// Per-function deltas over the union of both function sets, ranked by
  /// |delta| descending with the function name as deterministic tiebreak.
  std::vector<FunctionDelta> deltas;

  /// Canonical JSON object:
  ///   {"score": s, "deltas": [{"function": ..., "base": n, "fault": n,
  ///                            "delta": d}, ...]}
  /// `top_n` bounds the emitted deltas (0 = all).
  std::string to_json(std::size_t top_n = 0) const;
};

/// Computes the differential profile fault-vs-baseline.
Divergence profile_divergence(const Profile& base, const Profile& fault);

/// Appends collapsed-stack flamegraph lines "<prefix>;<function> <count>\n"
/// for every function in the profile, in sorted function order (flat
/// profiles have depth-one stacks; the prefix carries cell/run identity).
void append_collapsed(std::string& out, const std::string& prefix,
                      const Profile& p);

}  // namespace gf::obs
