#include "obs/journal.h"

#include <ostream>

#include "obs/json.h"

namespace gf::obs {

char phase_letter(Phase p) noexcept {
  switch (p) {
    case Phase::kInstant: return 'i';
    case Phase::kBegin: return 'B';
    case Phase::kEnd: return 'E';
  }
  return '?';
}

void Journal::push(Event e) {
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
    return;
  }
  ring_[next_] = std::move(e);
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::vector<Event> Journal::events() const {
  std::vector<Event> out;
  out.reserve(size());
  // Before wrap the ring is in append order; after, next_ points at the
  // oldest surviving entry.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

Journal Journal::restore(std::size_t capacity, std::uint64_t dropped,
                         std::vector<Event> events) {
  Journal j(capacity);
  // The ring is handed over in chronological order with next_ = 0, which
  // events() walks back out unchanged; dropped_ restores the seq offset.
  if (events.size() > j.capacity_) events.resize(j.capacity_);
  j.ring_ = std::move(events);
  j.dropped_ = dropped;
  return j;
}

void write_jsonl(std::ostream& os, const std::string& track, const Journal& j) {
  if (j.dropped() > 0) {
    // Head record: the ring wrapped and the oldest N events are gone. The
    // per-event seq still starts at N, so the gap is visible either way;
    // this makes it explicit for consumers that don't count.
    os << "{\"track\": \"" << json::escape(track)
       << "\", \"truncated\": " << j.dropped() << "}\n";
  }
  std::uint64_t seq = j.dropped();  // dropped events leave a visible gap
  for (const auto& e : j.events()) {
    os << "{\"track\": \"" << json::escape(track) << "\", \"seq\": " << seq++
       << ", \"ph\": \"" << phase_letter(e.phase) << "\", \"name\": \""
       << json::escape(e.name) << "\", \"ms\": " << json::number(e.sim_ms)
       << ", \"cycle\": " << e.cycle;
    if (!e.args.empty()) os << ", \"args\": " << e.args;
    os << "}\n";
  }
}

}  // namespace gf::obs
