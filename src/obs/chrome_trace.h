// Chrome trace-event exporter (chrome://tracing / Perfetto loadable).
//
// Two coordinated views of one campaign:
//   pid 1 "host"    — one complete (X) event per shard task on host
//                     wall-clock, showing the real parallel schedule;
//   pid 2 "virtual" — each task's journal replayed as B/E/i events on the
//                     VM's simulated clock, one tid per task, showing what
//                     happened *inside* each slot independent of scheduling.
// The virtual view is deterministic (pure function of seed/cell/task); only
// the host view carries wall time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gf::obs {

class Journal;

struct TaskTrack {
  std::string cell;   ///< e.g. "VOS-2000/apex"
  std::string label;  ///< e.g. "iter0.f12" or "baseline"
  std::uint32_t tid = 0;
  double wall_start_us = 0;  ///< relative to campaign start
  double wall_end_us = 0;
  const Journal* journal = nullptr;  ///< may be null (host-only track)
};

/// Renders {"traceEvents":[...]} with M metadata naming both pids and every
/// tid, X events on pid 1, and journal B/E/i events on pid 2
/// (ts = sim_ms * 1000). Events are emitted per track in journal order, so
/// timestamps are monotone within each (pid, tid).
std::string chrome_trace_json(const std::vector<TaskTrack>& tracks);

}  // namespace gf::obs
