#include "obs/progress.h"

#include <chrono>
#include <cmath>
#include <cstdio>

namespace gf::obs {

ProgressReporter::ProgressReporter(double min_interval_s)
    : min_interval_s_(min_interval_s > 0 ? min_interval_s : 0.1) {
  start_s_ = now_s();
}

double ProgressReporter::now_s() const noexcept {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void ProgressReporter::set_total(std::uint64_t total_faults) noexcept {
  total_.store(total_faults, std::memory_order_relaxed);
}

void ProgressReporter::set_total_cost(double cost) noexcept {
  total_cost_m_.store(static_cast<std::uint64_t>(cost > 0 ? cost * 1000.0 : 0),
                      std::memory_order_relaxed);
}

void ProgressReporter::add_cost(double cost) noexcept {
  done_cost_m_.fetch_add(
      static_cast<std::uint64_t>(cost > 0 ? cost * 1000.0 : 0),
      std::memory_order_relaxed);
  maybe_report();
}

void ProgressReporter::set_cached(std::uint64_t cached_runs) noexcept {
  cached_.store(cached_runs, std::memory_order_relaxed);
}

void ProgressReporter::add_faults(std::uint64_t n) noexcept {
  done_.fetch_add(n, std::memory_order_relaxed);
  maybe_report();
}

void ProgressReporter::maybe_report() noexcept {
  const double elapsed = now_s() - start_s_;
  const auto stamp = static_cast<std::uint64_t>(elapsed * 1000.0);
  std::uint64_t last = last_print_ms_.load(std::memory_order_relaxed);
  if (static_cast<double>(stamp - last) < min_interval_s_ * 1000.0) return;
  // One winner per interval: losers see the refreshed stamp and bail.
  if (!last_print_ms_.compare_exchange_strong(last, stamp,
                                              std::memory_order_relaxed)) {
    return;
  }
  report(done_.load(std::memory_order_relaxed), elapsed);
}

void ProgressReporter::report(std::uint64_t done, double elapsed_s) noexcept {
  const std::uint64_t total = total_.load(std::memory_order_relaxed);
  const double rate = elapsed_s > 0 ? static_cast<double>(done) / elapsed_s : 0;
  // Completed-cost ETA when the scheduler announced cost totals: elapsed
  // scales with work *done*, not with how many faults the currently
  // in-flight chunks happen to contain, so the estimate is stable under
  // dynamic chunk sizes. Fault-rate ETA is the fallback.
  const auto total_cm = total_cost_m_.load(std::memory_order_relaxed);
  const auto done_cm = done_cost_m_.load(std::memory_order_relaxed);
  double eta = -1;
  if (total_cm > 0 && done_cm > 0 && done_cm <= total_cm) {
    eta = elapsed_s * (static_cast<double>(total_cm - done_cm) /
                       static_cast<double>(done_cm));
  } else if (total > 0 && rate > 0 && done <= total) {
    eta = static_cast<double>(total - done) / rate;
  }
  if (total > 0 && eta >= 0 && done <= total) {
    std::fprintf(stderr,
                 "[progress] %llu/%llu faults (%.1f%%)  %.1f faults/s  "
                 "eta %.0fs\n",
                 static_cast<unsigned long long>(done),
                 static_cast<unsigned long long>(total),
                 100.0 * static_cast<double>(done) / static_cast<double>(total),
                 rate, eta);
  } else {
    std::fprintf(stderr, "[progress] %llu faults  %.1f faults/s\n",
                 static_cast<unsigned long long>(done), rate);
  }
}

void ProgressReporter::cell_done(const std::string& cell, std::size_t done,
                                 std::size_t total) noexcept {
  std::fprintf(stderr, "[progress] cell %s done (%zu/%zu cells)\n",
               cell.c_str(), done, total);
}

void ProgressReporter::finish() noexcept {
  const double elapsed = now_s() - start_s_;
  const std::uint64_t done = done_.load(std::memory_order_relaxed);
  const std::uint64_t cached = cached_.load(std::memory_order_relaxed);
  if (cached > 0) {
    std::fprintf(stderr,
                 "[progress] complete: %llu faults in %.1fs (%.1f/s), "
                 "%llu cached runs folded\n",
                 static_cast<unsigned long long>(done), elapsed,
                 elapsed > 0 ? static_cast<double>(done) / elapsed : 0.0,
                 static_cast<unsigned long long>(cached));
    return;
  }
  std::fprintf(stderr, "[progress] complete: %llu faults in %.1fs (%.1f/s)\n",
               static_cast<unsigned long long>(done), elapsed,
               elapsed > 0 ? static_cast<double>(done) / elapsed : 0.0);
}

}  // namespace gf::obs
