// Property-based differential campaign fuzzer (the `gfcheck` engine layer).
//
// Three engines, each a deterministic function of a 64-bit case seed:
//
//   matrix    — samples a random small campaign (random faultload subset,
//               random RunnerOptions across jobs/chunk/steal/fusion/
//               warm-boot/store usage) and asserts the repo's determinism
//               contract: the merged manifest, journal, activation records
//               and profiles are byte-identical to a jobs=1 reference, the
//               derived §3.2 metrics (SPC/ER%f/...) match exactly, and a
//               store-backed replay (cold commit, then all-hit) reproduces
//               the same bytes.
//   vm        — runs randomly generated MiniC programs (check/progen.h)
//               under fusion-on vs fusion-off and predecode vs per-step
//               decode, comparing the full architectural state digest,
//               retired-instruction counts, sample streams and watch traces
//               at every trap boundary; mutated variants (random scanner
//               faults) must also agree across execution strategies.
//   structure — fuzzes the persistence and text formats: torn tails, bit
//               flips and truncations over store segment/WAL files (recovery
//               must tail-truncate cleanly or reject with a diagnostic,
//               never crash or serve wrong bytes), instruction encode/decode
//               and assembler/disassembler round-trips, and faultload
//               serialize/parse under corruption.
//
// Every failure carries the case seed plus a ready-to-run repro command
// line, so any CI hit replays locally with a single copy-paste. Case seeds
// are derived from the base seed with SplitMix64, so `--seed N --cases K`
// names a fixed, machine-independent set of cases.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gf::check {

struct CheckOptions {
  std::uint64_t seed = 1;    ///< base seed; case i runs at case_seed(seed, i)
  std::size_t cases = 25;    ///< cases per engine
  /// Non-empty = replay exactly these case seeds instead of deriving them
  /// (the `--case-seed` repro path). `cases` is ignored.
  std::vector<std::uint64_t> explicit_seeds;
  bool verbose = false;      ///< narrate every case to stderr
  /// Scratch directory for store-backed cases (created/removed per case).
  /// Empty = a "gfcheck-scratch" directory under the process temp dir.
  std::string scratch_dir;
  /// Collect canonical per-case digest lines from the VM engine's reference
  /// configuration (CheckReport::dump_lines). CI compares the dumps of a
  /// threaded-dispatch and a switch-dispatch build with `cmp` — the
  /// cross-lowering oracle that a single process cannot host.
  bool want_dump = false;
};

/// One oracle violation. `repro` is a complete gfcheck invocation that
/// replays exactly this case.
struct Failure {
  std::string engine;
  std::uint64_t case_seed = 0;
  std::string message;
  std::string repro;
};

struct CheckReport {
  std::size_t cases = 0;
  std::vector<Failure> failures;
  /// Canonical VM digest lines (want_dump only): one line per case, a pure
  /// function of the case seed — byte-identical across dispatch lowerings.
  std::vector<std::string> dump_lines;

  bool ok() const noexcept { return failures.empty(); }
};

/// Case-seed derivation: SplitMix64 over (base, index). Pure and stable —
/// part of the repro-line contract.
std::uint64_t case_seed(std::uint64_t base, std::uint64_t index) noexcept;

CheckReport run_matrix_engine(const CheckOptions& opt);
CheckReport run_vm_engine(const CheckOptions& opt);
CheckReport run_structure_engine(const CheckOptions& opt);

}  // namespace gf::check
