#include "check/progen.h"

#include <sstream>

namespace gf::check {

std::string ProgramGen::generate() {
  vars_ = {"a", "b"};
  std::ostringstream out;
  out << "fn f(a, b) {\n";
  const int decls = static_cast<int>(rng_.range(1, 3));
  for (int i = 0; i < decls; ++i) {
    const std::string name = "v" + std::to_string(i);
    out << "  var " << name << " = " << expr(2) << ";\n";
    vars_.push_back(name);
  }
  const int stmts = static_cast<int>(rng_.range(2, 6));
  for (int i = 0; i < stmts; ++i) out << statement(2);
  out << "  return " << expr(2) << ";\n}\n";
  return out.str();
}

std::string ProgramGen::var() { return vars_[rng_.bounded(vars_.size())]; }

std::string ProgramGen::expr(int depth) {
  if (depth == 0 || rng_.chance(0.3)) {
    if (rng_.chance(0.5)) return var();
    return std::to_string(rng_.range(-50, 50));
  }
  // No '/' or '%': generated programs must be trap-free by construction.
  static const char* ops[] = {"+", "-", "*", "&", "|", "^"};
  return "(" + expr(depth - 1) + " " + ops[rng_.bounded(6)] + " " +
         expr(depth - 1) + ")";
}

std::string ProgramGen::cond() {
  static const char* cmps[] = {"<", "<=", ">", ">=", "==", "!="};
  std::string c = expr(1) + " " + cmps[rng_.bounded(6)] + " " + expr(1);
  if (rng_.chance(0.3)) {
    c += rng_.chance(0.5) ? " && " : " || ";
    c += expr(1) + " " + cmps[rng_.bounded(6)] + " " + expr(1);
  }
  return c;
}

std::string ProgramGen::statement(int depth) {
  const auto kind = rng_.bounded(depth > 0 ? 3 : 1);
  switch (kind) {
    case 1:
      return "  if (" + cond() + ") { " + var() + " = " + expr(1) +
             "; } else { " + var() + " = " + expr(1) + "; }\n";
    case 2: {
      // Bounded loop: always terminates.
      const std::string i = "i" + std::to_string(loop_id_++);
      return "  { var " + i + " = 0; while (" + i + " < " +
             std::to_string(rng_.range(1, 8)) + ") { " + var() + " = " +
             expr(1) + "; " + i + " = " + i + " + 1; } }\n";
    }
    default:
      return "  " + var() + " = " + expr(2) + ";\n";
  }
}

}  // namespace gf::check
