#include "check/check.h"

#include "util/rng.h"

namespace gf::check {

std::uint64_t case_seed(std::uint64_t base, std::uint64_t index) noexcept {
  // Golden-ratio stride keeps neighbouring indices far apart in seed space;
  // SplitMix64 then decorrelates the stream. Stable across platforms — the
  // pair (--seed, case index) printed in a failure names the case forever.
  util::SplitMix64 g(base ^ (0x9E3779B97F4A7C15ULL * (index + 1)));
  return g.next();
}

}  // namespace gf::check
