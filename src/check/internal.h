// Shared plumbing for the gfcheck engines: case iteration, repro lines,
// and first-divergence diffing. Internal to src/check.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "check/check.h"

namespace gf::check::internal {

inline std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

inline std::string repro_line(const std::string& engine, std::uint64_t seed) {
  return "gfcheck --engine " + engine + " --case-seed " + hex64(seed) +
         " --cases 1";
}

/// Runs every case of `opt` through `body(case_seed, report)`. The body
/// appends to report.failures on oracle violations; any escaped exception is
/// converted into a failure too (an engine must never crash the harness).
inline CheckReport run_cases(
    const CheckOptions& opt, const std::string& engine,
    const std::function<void(std::uint64_t, CheckReport&)>& body) {
  CheckReport report;
  const std::size_t n =
      opt.explicit_seeds.empty() ? opt.cases : opt.explicit_seeds.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t cs = opt.explicit_seeds.empty()
                                 ? case_seed(opt.seed, i)
                                 : opt.explicit_seeds[i];
    if (opt.verbose) {
      std::fprintf(stderr, "[gfcheck] %s case %zu/%zu seed %s\n",
                   engine.c_str(), i + 1, n, hex64(cs).c_str());
    }
    const std::size_t before = report.failures.size();
    try {
      body(cs, report);
    } catch (const std::exception& e) {
      report.failures.push_back(
          {engine, cs, std::string("unexpected exception: ") + e.what(),
           repro_line(engine, cs)});
    }
    report.cases++;
    for (std::size_t f = before; f < report.failures.size(); ++f) {
      report.failures[f].engine = engine;
      report.failures[f].case_seed = cs;
      report.failures[f].repro = repro_line(engine, cs);
    }
  }
  return report;
}

/// Byte-compares two renderings of the same artifact; on mismatch appends a
/// failure naming the artifact and the first divergent byte (with a short
/// context excerpt from both sides).
inline bool expect_same(const std::string& what, const std::string& ref,
                        const std::string& got, CheckReport& report) {
  if (ref == got) return true;
  std::size_t i = 0;
  const std::size_t n = ref.size() < got.size() ? ref.size() : got.size();
  while (i < n && ref[i] == got[i]) ++i;
  auto excerpt = [](const std::string& s, std::size_t at) {
    const std::size_t lo = at > 30 ? at - 30 : 0;
    return s.substr(lo, 60);
  };
  report.failures.push_back(
      {"", 0,
       what + " diverges at byte " + std::to_string(i) + " (ref " +
           std::to_string(ref.size()) + "B, got " + std::to_string(got.size()) +
           "B): ref \"..." + excerpt(ref, i) + "...\" vs got \"..." +
           excerpt(got, i) + "...\"",
       ""});
  return false;
}

/// expect_same for plain conditions.
inline bool expect(bool cond, const std::string& message, CheckReport& report) {
  if (!cond) report.failures.push_back({"", 0, message, ""});
  return cond;
}

}  // namespace gf::check::internal
