// Engine 3: the structure fuzzer — persistence and text formats under
// corruption.
//
// Three sub-fuzzers per case:
//
//   store — commits a random batch of records, then damages the on-disk
//       state the way crashes and disk faults do (torn tails via the store's
//       own fault-injection hook, plus external truncations and bit flips on
//       segment/WAL), and re-opens. The oracle: opening never crashes (a
//       StoreError diagnostic is the only legal rejection), verify() reports
//       a clean index, and every record the recovered store serves is
//       byte-identical to SOME version actually committed under that key —
//       torn state may lose suffixes, never invent or corrupt payloads. An
//       undamaged close/reopen must serve every key's LAST version exactly.
//
//   isa — instruction encode/decode and assembler/disassembler round-trips:
//       compiled instructions survive encode∘decode byte-exactly and their
//       disassembly is an assembler fixpoint; random 8-byte mutations either
//       fail to decode or round-trip byte-exactly (fixed-width encoding has
//       no junk bits), with the disassembly fixpoint holding for whatever
//       decodes.
//
//   faultload — serialize/parse fixpoint on a real scanner faultload, then
//       random text corruption: parse() either throws FaultloadError (the
//       only legal rejection) or yields a structurally valid faultload
//       (windows in [1,16], original/mutated the same width).
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "check/check.h"
#include "check/internal.h"
#include "check/progen.h"
#include "isa/assembler.h"
#include "isa/disassembler.h"
#include "isa/isa.h"
#include "minic/compiler.h"
#include "store/store.h"
#include "swfit/faultload.h"
#include "swfit/scanner.h"
#include "util/rng.h"

namespace gf::check {
namespace {

namespace fs = std::filesystem;
using internal::expect;
using internal::expect_same;
using internal::hex64;

// --- store fuzz --------------------------------------------------------------

using Payload = std::vector<std::uint8_t>;
using Versions = std::map<store::ResultKey, std::vector<Payload>>;

store::ResultKey random_key(util::Rng& rng) {
  return {rng.next(), rng.next()};
}

Payload random_payload(util::Rng& rng) {
  Payload p(rng.bounded(1501));
  for (auto& b : p) b = static_cast<std::uint8_t>(rng.bounded(256));
  return p;
}

/// Commits 1..8 records (30% key reuse) and records every version.
Versions commit_batch(store::CampaignStore& store, util::Rng& rng) {
  Versions versions;
  std::vector<store::ResultKey> keys;
  const std::size_t n = 1 + rng.bounded(8);
  for (std::size_t i = 0; i < n; ++i) {
    const auto key = (!keys.empty() && rng.chance(0.3))
                         ? keys[rng.bounded(keys.size())]
                         : random_key(rng);
    if (versions.find(key) == versions.end()) keys.push_back(key);
    auto payload = random_payload(rng);
    store.put(key, payload);
    versions[key].push_back(std::move(payload));
  }
  return versions;
}

/// The recovered-store oracle: clean verify, every served payload matches a
/// committed version of its key, record count never exceeds commits.
void check_recovered(store::CampaignStore& store, const Versions& versions,
                     const std::string& what, CheckReport& report) {
  expect(store.verify() == 0, what + ": verify() found corrupt records",
         report);
  std::size_t commits = 0;
  for (const auto& [key, vers] : versions) {
    commits += vers.size();
    Payload got;
    if (!store.get(key, got)) continue;  // losing a tail record is legal
    const bool known =
        std::any_of(vers.begin(), vers.end(),
                    [&got](const Payload& v) { return v == got; });
    expect(known,
           what + ": key " + key.hex() + " served a payload (" +
               std::to_string(got.size()) + "B) matching no committed version",
           report);
  }
  expect(store.list().size() <= commits,
         what + ": more live records than commits", report);
}

void corrupt_file(const fs::path& path, util::Rng& rng, bool truncate) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec || size == 0) return;
  if (truncate) {
    fs::resize_file(path, rng.bounded(size + 1), ec);
    return;
  }
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  if (!f) return;
  const auto at = static_cast<std::streamoff>(rng.bounded(size));
  f.seekg(at);
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ (1u << rng.bounded(8)));
  f.seekp(at);
  f.write(&byte, 1);
}

void store_fuzz(std::uint64_t cs, const fs::path& scratch, util::Rng& rng,
                CheckReport& report) {
  const fs::path dir = scratch / ("store_" + hex64(cs));
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir.parent_path(), ec);

  if (rng.chance(0.5)) {
    // In-process torn tail via the store's fault-injection hook; the store
    // must stay open and usable afterwards.
    store::CampaignStore store(dir.string());
    const auto versions = commit_batch(store, rng);
    store.tear_tail_for_test(rng.bounded(41), rng.bounded(41));
    check_recovered(store, versions, "torn tail", report);
    const auto probe_key = random_key(rng);
    const auto probe = random_payload(rng);
    store.put(probe_key, probe);
    Payload back;
    expect(store.get(probe_key, back) && back == probe,
           "store unusable after tear_tail_for_test", report);
  } else {
    // External damage between process lifetimes.
    Versions versions;
    {
      store::CampaignStore store(dir.string());
      versions = commit_batch(store, rng);
    }
    const bool damage = rng.chance(0.75);
    if (damage) {
      const auto mode = rng.bounded(5);
      const fs::path seg = dir / "segment.gfs";
      const fs::path wal = dir / "wal.gfj";
      if (mode == 0) corrupt_file(wal, rng, /*truncate=*/true);
      if (mode == 1) corrupt_file(seg, rng, /*truncate=*/true);
      if (mode == 2) corrupt_file(wal, rng, /*truncate=*/false);
      if (mode == 3) corrupt_file(seg, rng, /*truncate=*/false);
      if (mode == 4) {
        corrupt_file(wal, rng, /*truncate=*/false);
        corrupt_file(seg, rng, /*truncate=*/false);
      }
    }
    try {
      store::CampaignStore store(dir.string());
      check_recovered(store, versions, damage ? "damaged reopen" : "reopen",
                      report);
      if (!damage) {
        // Undamaged close/reopen: every key serves its LAST version.
        for (const auto& [key, vers] : versions) {
          Payload got;
          expect(store.get(key, got) && got == vers.back(),
                 "clean reopen lost or changed key " + key.hex(), report);
        }
      }
    } catch (const store::StoreError&) {
      // Rejecting damaged state with a diagnostic is legal; crashing or
      // serving wrong bytes is not.
      expect(damage, "clean reopen threw StoreError", report);
    }
  }
  fs::remove_all(dir, ec);
}

// --- instruction / assembler fuzz -------------------------------------------

/// disassemble -> assemble -> disassemble must be a fixpoint (fields the
/// textual form does not carry are canonically zero on the way back).
void check_text_fixpoint(const isa::Instr& in, const std::string& context,
                         CheckReport& report) {
  const auto text = isa::disassemble(in);
  try {
    const auto img = isa::assemble(text, "roundtrip", 0x1000);
    const auto back = img.at(0x1000);
    if (!expect(back.has_value(),
                context + ": reassembled '" + text + "' undecodable", report)) {
      return;
    }
    expect_same(context + ": disassembly fixpoint of '" + text + "'", text,
                isa::disassemble(*back), report);
  } catch (const isa::AsmError& e) {
    expect(false,
           context + ": disassembly '" + text + "' does not assemble: " +
               e.what(),
           report);
  }
}

void isa_fuzz(util::Rng& rng, const isa::Image& img, CheckReport& report) {
  // Every compiled instruction: encode∘decode byte-identity + text fixpoint.
  for (std::uint64_t addr = img.base(); addr < img.end();
       addr += isa::kInstrSize) {
    const auto in = img.at(addr);
    if (!expect(in.has_value(), "compiled instruction undecodable", report)) {
      continue;
    }
    std::uint8_t bytes[isa::kInstrSize];
    isa::encode(*in, bytes);
    const auto again = isa::decode(bytes);
    expect(again.has_value() && *again == *in,
           "encode/decode round-trip broke at " + hex64(addr), report);
    check_text_fixpoint(*in, "compiled @" + hex64(addr), report);
  }

  // Random mutations of valid encodings: either decode rejects, or the
  // accepted instruction re-encodes byte-exactly and its text is a fixpoint.
  const std::uint64_t nslots = (img.end() - img.base()) / isa::kInstrSize;
  for (int m = 0; m < 32; ++m) {
    const auto addr = img.base() + rng.bounded(nslots) * isa::kInstrSize;
    std::uint8_t bytes[isa::kInstrSize];
    isa::encode(*img.at(addr), bytes);
    const int flips = 1 + static_cast<int>(rng.bounded(8));
    for (int f = 0; f < flips; ++f) {
      bytes[rng.bounded(isa::kInstrSize)] ^=
          static_cast<std::uint8_t>(1u << rng.bounded(8));
    }
    const auto decoded = isa::decode(bytes);
    isa::Instr via_into;
    const bool into_ok = isa::decode_into(bytes, via_into);
    expect(into_ok == decoded.has_value(),
           "decode and decode_into disagree on mutated bytes", report);
    if (!decoded) continue;
    expect(!into_ok || via_into == *decoded,
           "decode and decode_into produced different instructions", report);
    std::uint8_t re[isa::kInstrSize];
    isa::encode(*decoded, re);
    expect(std::equal(bytes, bytes + isa::kInstrSize, re),
           "mutated bytes decoded but did not re-encode identically", report);
    check_text_fixpoint(*decoded, "mutated", report);
  }
}

// --- faultload text fuzz -----------------------------------------------------

void faultload_fuzz(util::Rng& rng, const isa::Image& img,
                    CheckReport& report) {
  const auto fl = swfit::Scanner{}.scan_all(img);
  const auto text = fl.serialize();
  try {
    expect_same("faultload serialize/parse fixpoint", text,
                swfit::Faultload::parse(text).serialize(), report);
  } catch (const swfit::FaultloadError& e) {
    expect(false, std::string("pristine faultload failed to parse: ") +
                      e.what(),
           report);
  }

  for (int m = 0; m < 8; ++m) {
    std::string corrupt = text;
    const auto mode = rng.bounded(4);
    if (mode == 0 && !corrupt.empty()) {
      corrupt.resize(rng.bounded(corrupt.size() + 1));  // truncate
    } else if (mode == 1 && !corrupt.empty()) {
      corrupt[rng.bounded(corrupt.size())] =
          static_cast<char>(32 + rng.bounded(95));  // flip to printable
    } else if (mode == 2 && !corrupt.empty()) {
      corrupt.erase(rng.bounded(corrupt.size()), 1);  // delete a char
    } else {
      corrupt.insert(rng.bounded(corrupt.size() + 1), 1,
                     static_cast<char>(32 + rng.bounded(95)));  // insert
    }
    try {
      const auto parsed = swfit::Faultload::parse(corrupt);
      for (const auto& f : parsed.faults) {
        expect(f.window() >= 1 && f.window() <= 16 &&
                   f.original.size() == f.mutated.size(),
               "corrupted text parsed into a structurally invalid faultload",
               report);
      }
    } catch (const swfit::FaultloadError&) {
      // The one legal rejection path.
    }
    // Any other exception escapes to run_cases and is reported as a crash.
  }
}

void run_case(std::uint64_t cs, const CheckOptions& copt, CheckReport& report) {
  util::Rng rng(cs);
  const fs::path scratch = copt.scratch_dir.empty()
                               ? fs::temp_directory_path() / "gfcheck-scratch"
                               : fs::path(copt.scratch_dir);
  store_fuzz(cs, scratch, rng, report);

  ProgramGen gen(rng);
  const auto img = minic::compile(gen.generate(), "p", 0x1000);
  isa_fuzz(rng, img, report);
  faultload_fuzz(rng, img, report);
}

}  // namespace

CheckReport run_structure_engine(const CheckOptions& opt) {
  return internal::run_cases(opt, "structure",
                             [&opt](std::uint64_t cs, CheckReport& report) {
                               run_case(cs, opt, report);
                             });
}

}  // namespace gf::check
