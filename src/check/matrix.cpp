// Engine 1: the campaign matrix fuzzer.
//
// Samples a random small campaign — one (OS version, server) cell, a random
// faultload subset, random iterations/stride/windows — and executes it twice:
// once at the jobs=1 reference shape and once at a random parallel shape
// (jobs, chunk, shards alias, steal, fusion). The repo-wide determinism
// contract says scheduling shape must be unobservable in every deterministic
// artifact, so the oracle is plain byte equality:
//
//   manifest JSON == journal JSONL == activation JSONL/summary ==
//   profile JSON == flamegraph == derived §3.2 metrics (exact doubles).
//
// The schedule knobs legitimately appear in the manifest's options section,
// so BOTH runs render through the reference options struct — the comparison
// then covers exactly the result payload (cells + merged obs).
//
// warm_boot is different: the snapshot contract (tests/test_snapshot.cpp)
// promises cold/warm equivalence of the RESULTS — metrics, counters,
// activation records — but a cold boot legitimately executes the bring-up
// API traffic inside every task, so the merged obs registry/journal/profile
// differ by design. The fuzzer therefore shares a random warm_boot between
// reference and variant for the full-artifact oracle, and adds a separate
// warm/cold flip compared through the results-only artifacts.
//
// A random subset of cases additionally wires a persistent store through the
// variant shape: the cold run (all misses, everything committed) and an
// all-hit replay of the same store must both reproduce the reference bytes —
// the cache may never change what a campaign computes.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "check/check.h"
#include "check/internal.h"
#include "depbench/campaign_report.h"
#include "depbench/report.h"
#include "depbench/runner.h"
#include "os/kernel.h"
#include "os/sources.h"
#include "store/store.h"
#include "swfit/scanner.h"
#include "trace/activation.h"
#include "util/rng.h"

namespace gf::check {
namespace {

namespace fs = std::filesystem;
using internal::expect;
using internal::expect_same;
using internal::hex64;

/// Full fine-tuned faultload (Table 2 API surface) per OS version; the
/// kernel build and the scan both being deterministic, this is a constant.
const swfit::Faultload& full_faultload(os::OsVersion v) {
  static std::map<os::OsVersion, swfit::Faultload> memo;
  auto it = memo.find(v);
  if (it == memo.end()) {
    os::Kernel kernel(v);
    std::vector<std::string> fns;
    for (const auto& f : os::api_functions()) fns.emplace_back(f.name);
    it = memo.emplace(v, swfit::Scanner{}.scan(kernel.pristine_image(), fns))
             .first;
  }
  return it->second;
}

/// Every deterministic artifact of one finished campaign, rendered with a
/// FIXED options struct so runs of different scheduling shape compare equal.
struct Artifacts {
  std::string manifest;
  std::string journal;
  std::string activations;
  std::string activation_summary;
  std::string profile;
  std::string flame;
  std::string derived;  ///< §3.2 metrics, canonical exact-precision text
};

Artifacts render_results(const std::vector<depbench::ExperimentCell>& cells,
                         const depbench::RunnerOptions& render_opt);

Artifacts render(const std::vector<depbench::ExperimentCell>& cells,
                 const depbench::RunnerOptions& render_opt,
                 const depbench::CampaignRunner& runner) {
  Artifacts art = render_results(cells, render_opt);
  const auto* obs = runner.campaign_obs();
  art.manifest = depbench::campaign_manifest_json(cells, render_opt, obs);
  if (obs != nullptr) {
    std::ostringstream j;
    depbench::write_campaign_journal(j, *obs);
    art.journal = j.str();
    art.flame = depbench::campaign_flamegraph(*obs);
    if (render_opt.profile) {
      art.profile = depbench::campaign_profile_json(cells, render_opt, *obs);
    }
  }
  return art;
}

/// Byte-compares every artifact pair, tagging failures with `shape`.
void compare(const Artifacts& ref, const Artifacts& got,
             const std::string& shape, CheckReport& report) {
  expect_same("manifest [" + shape + "]", ref.manifest, got.manifest, report);
  expect_same("journal [" + shape + "]", ref.journal, got.journal, report);
  expect_same("activations [" + shape + "]", ref.activations, got.activations,
              report);
  expect_same("activation summary [" + shape + "]", ref.activation_summary,
              got.activation_summary, report);
  expect_same("profile [" + shape + "]", ref.profile, got.profile, report);
  expect_same("flamegraph [" + shape + "]", ref.flame, got.flame, report);
  expect_same("derived metrics [" + shape + "]", ref.derived, got.derived,
              report);
}

/// Results-only artifacts: everything the warm/cold snapshot contract
/// promises to preserve (cells without the merged obs registry, activation
/// records, derived metrics) — no journal/profile/api counters.
Artifacts render_results(const std::vector<depbench::ExperimentCell>& cells,
                         const depbench::RunnerOptions& render_opt) {
  Artifacts art;
  art.manifest =
      depbench::campaign_manifest_json(cells, render_opt, /*obs=*/nullptr);
  if (render_opt.trace) {
    std::ostringstream a;
    trace::ActivationStats stats;
    for (const auto& cell : cells) {
      const auto recs = depbench::collect_activations(cell);
      trace::write_jsonl(a, cell.os_name + "/" + cell.server_name, recs);
      for (const auto& r : recs) stats.add(r);
    }
    art.activations = a.str();
    art.activation_summary = trace::activation_summary_json(stats);
  }
  std::ostringstream d;
  for (const auto& cell : cells) {
    const auto m = depbench::derive_metrics(cell);
    char line[256];
    std::snprintf(line, sizeof line,
                  "%s/%s %.17g %.17g %.17g %.17g %.17g %.17g %.17g\n",
                  cell.os_name.c_str(), cell.server_name.c_str(), m.spcf,
                  m.thrf, m.rtmf, m.erf_pct, m.admf, m.spc_rel, m.thr_rel);
    d << line;
  }
  art.derived = d.str();
  return art;
}

fs::path scratch_root(const CheckOptions& opt) {
  if (!opt.scratch_dir.empty()) return fs::path(opt.scratch_dir);
  // Per-process default: concurrent gfcheck/test processes replay the same
  // case seeds, so a shared directory would let one process remove_all a
  // store another still has open.
  return fs::temp_directory_path() /
         ("gfcheck-scratch-" + std::to_string(::getpid()));
}

void run_case(std::uint64_t cs, const CheckOptions& copt, CheckReport& report) {
  util::Rng rng(cs);

  const auto version =
      rng.chance(0.5) ? os::OsVersion::kVos2000 : os::OsVersion::kVosXp;
  static const char* kServers[] = {"apex", "abyssal", "sambar", "savant"};
  const std::string server = kServers[rng.bounded(4)];

  // Random faultload subset: 8..24 distinct faults, ascending index order
  // (a faultload's fault order is part of its identity).
  const auto& full = full_faultload(version);
  const std::size_t want = std::min<std::size_t>(
      full.faults.size(), 8 + static_cast<std::size_t>(rng.bounded(17)));
  std::set<std::size_t> picked;
  while (picked.size() < want) picked.insert(rng.bounded(full.faults.size()));
  swfit::Faultload sub;
  sub.target = full.target;
  sub.digest = full.digest;
  for (const auto i : picked) sub.faults.push_back(full.faults[i]);

  depbench::RunnerOptions base;
  base.versions = {version};
  base.servers = {server};
  base.iterations = 1 + static_cast<int>(rng.bounded(2));
  base.stride = 1 + static_cast<int>(rng.bounded(2));
  base.faultload = &sub;
  base.time_scale = 0.02;
  base.baseline_window_ms = rng.chance(0.5) ? 150 : 300;
  base.seed = rng.next();
  base.trace = rng.chance(0.5);
  base.obs = true;
  base.profile = rng.chance(0.3);
  base.profile_stride = rng.chance(0.5) ? 512 : 2048;
  // Shared by reference and variant: obs artifacts legitimately see the
  // bring-up API traffic of a cold boot (see the header comment).
  base.warm_boot = rng.chance(0.7);

  // Reference shape: serial, default strategies, no store.
  auto ref_opt = base;
  ref_opt.jobs = 1;
  ref_opt.chunk = 0;
  ref_opt.shards = 1;
  ref_opt.steal = true;
  ref_opt.fusion = true;

  // Random parallel shape: every scheduling/strategy knob the contract says
  // must be unobservable.
  auto var_opt = base;
  var_opt.jobs = 2 + static_cast<int>(rng.bounded(3));
  static const int kChunks[] = {0, 1, 2, 7};
  var_opt.chunk = kChunks[rng.bounded(4)];
  if (var_opt.chunk == 0 && rng.chance(0.3)) {
    var_opt.shards = 2 + static_cast<int>(rng.bounded(2));  // deprecated alias
  }
  var_opt.steal = rng.chance(0.7);
  var_opt.fusion = rng.chance(0.5);

  depbench::CampaignRunner ref_runner(ref_opt);
  const auto ref_cells = ref_runner.run_campaign();
  const auto ref_art = render(ref_cells, ref_opt, ref_runner);

  const std::string shape =
      "jobs=" + std::to_string(var_opt.jobs) +
      " chunk=" + std::to_string(var_opt.chunk) +
      " shards=" + std::to_string(var_opt.shards) +
      " steal=" + std::to_string(var_opt.steal) +
      " fusion=" + std::to_string(var_opt.fusion) +
      " warm=" + std::to_string(var_opt.warm_boot);

  {
    depbench::CampaignRunner var_runner(var_opt);
    const auto var_cells = var_runner.run_campaign();
    // Render through the REFERENCE options: the schedule knobs are allowed
    // in the manifest's options section, not in the results.
    compare(ref_art, render(var_cells, ref_opt, var_runner), shape, report);
  }

  // Snapshot oracle: flip warm/cold at the variant's parallel shape and
  // compare the results-only artifacts (the snapshot contract's surface).
  if (rng.chance(0.4)) {
    auto flip_opt = var_opt;
    flip_opt.warm_boot = !base.warm_boot;
    depbench::CampaignRunner flip_runner(flip_opt);
    const auto flip_cells = flip_runner.run_campaign();
    compare(render_results(ref_cells, ref_opt),
            render_results(flip_cells, ref_opt),
            shape + (flip_opt.warm_boot ? " warm-flip=warm" : " warm-flip=cold"),
            report);
  }

  // Store oracle: cold commit then all-hit replay, both == reference.
  if (rng.chance(0.35)) {
    const fs::path dir = scratch_root(copt) / ("case_" + hex64(cs));
    std::error_code ec;
    fs::remove_all(dir, ec);
    fs::create_directories(dir.parent_path(), ec);
    {
      store::CampaignStore store(dir.string());
      auto cold_opt = var_opt;
      cold_opt.store = &store;

      depbench::CampaignRunner cold_runner(cold_opt);
      const auto cold_cells = cold_runner.run_campaign();
      compare(ref_art, render(cold_cells, ref_opt, cold_runner),
              shape + " store=cold", report);
      const auto* st = cold_runner.store_stats();
      expect(st != nullptr && st->hits == 0,
             "cold store run reported cache hits", report);

      depbench::CampaignRunner hit_runner(cold_opt);
      const auto hit_cells = hit_runner.run_campaign();
      compare(ref_art, render(hit_cells, ref_opt, hit_runner),
              shape + " store=all-hit", report);
      const auto* ht = hit_runner.store_stats();
      expect(ht != nullptr && ht->misses == 0,
             "all-hit store replay reported misses", report);
    }
    fs::remove_all(dir, ec);
  }
}

}  // namespace

CheckReport run_matrix_engine(const CheckOptions& opt) {
  return internal::run_cases(opt, "matrix",
                             [&opt](std::uint64_t cs, CheckReport& report) {
                               run_case(cs, opt, report);
                             });
}

}  // namespace gf::check
