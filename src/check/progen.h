// Bounded random MiniC program generator for the property-based fuzzers.
//
// Grows a small random-but-valid function from a bounded expression /
// statement grammar: straight-line assignments, if/else, and counted while
// loops that always terminate. Division is excluded from the operator set,
// so a generated program never traps on its own — every divergence a
// differential engine observes is therefore the engine's bug, not the
// program's. The generator draws exclusively from the passed Rng, so the
// same seed always yields the same source text (and, compilation being
// deterministic, the same image).
//
// Lives in src/check (rather than a test file) so the fuzzer engines, the
// gfcheck CLI and the property tests all share one grammar.
#pragma once

#include <string>
#include <vector>

#include "util/rng.h"

namespace gf::check {

class ProgramGen {
 public:
  explicit ProgramGen(util::Rng& rng) : rng_(rng) {}

  /// One random function `fn f(a, b) { ... }`.
  std::string generate();

 private:
  std::string var();
  std::string expr(int depth);
  std::string cond();
  std::string statement(int depth);

  util::Rng& rng_;
  std::vector<std::string> vars_;
  int loop_id_ = 0;
};

}  // namespace gf::check
