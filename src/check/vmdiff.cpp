// Engine 2: the VM differential fuzzer.
//
// The VM promises that its execution *strategies* — predecode side-table,
// superinstruction fusion, dispatch lowering — are architecturally invisible:
// registers, memory, flags, cycles, traps, retired-instruction counts, the
// deterministic PC sample stream and the watch traces are pure functions of
// the executed code. This engine drives randomly generated MiniC programs
// (plus mutated variants from the fault scanner) through three in-process
// configurations and compares the full architectural state digest at every
// trap boundary:
//
//   ref    — predecode on, fusion on   (the production shape)
//   nofuse — predecode on, fusion off
//   nopre  — predecode off (per-step decode), fusion setting irrelevant
//
// The third axis — threaded vs switch dispatch — is a compile-time property
// of gf_vm, so one process can only host one lowering. For that, the engine
// emits one canonical digest line per case (want_dump); CI builds gfcheck
// under both lowerings and `cmp`s the dumps.
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "check/check.h"
#include "check/internal.h"
#include "check/progen.h"
#include "isa/image.h"
#include "minic/compiler.h"
#include "store/key.h"
#include "swfit/injector.h"
#include "swfit/scanner.h"
#include "util/rng.h"
#include "vm/machine.h"

namespace gf::check {
namespace {

using internal::expect;
using internal::expect_same;
using internal::hex64;

/// One VM configuration under test.
struct Config {
  const char* name;
  bool predecode;
  bool fusion;
};

constexpr Config kConfigs[] = {
    {"ref", true, true},
    {"nofuse", true, false},
    {"nopre", false, true},
};
constexpr std::size_t kNumConfigs = sizeof kConfigs / sizeof kConfigs[0];

/// Small machine (1 MiB) so the full-memory digest at every boundary stays
/// cheap; the default stack region (top 64 KiB) suits call() out of the box.
constexpr std::size_t kMemSize = 1u << 20;

std::string render_samples(const std::map<std::uint64_t, std::uint64_t>& s) {
  std::ostringstream out;
  for (const auto& [pc, n] : s) out << std::hex << pc << ":" << std::dec << n << " ";
  return out.str();
}

std::string render_result(const vm::RunResult& r) {
  std::ostringstream out;
  out << "trap=" << vm::trap_name(r.trap) << " cycles=" << r.cycles
      << " pc=" << std::hex << r.pc << std::dec << " ret=" << r.ret;
  return out.str();
}

std::string render_watch(const vm::WatchTrace& w) {
  std::ostringstream out;
  out << "hits=" << w.hits << " first=" << w.first_hit_cycle
      << " edges=" << w.edge_count;
  for (const auto& e : w.edges()) {
    out << " " << std::hex << e.from << "->" << e.to << std::dec;
  }
  return out.str();
}

void run_case(std::uint64_t cs, bool want_dump, CheckReport& report) {
  util::Rng rng(cs);
  ProgramGen gen(rng);
  const auto src = gen.generate();
  const auto img = minic::compile(src, "p", 0x1000);
  const auto* sym = img.find_symbol("f");
  if (!expect(sym != nullptr, "generated program has no symbol f", report)) {
    return;
  }

  const std::uint64_t stride = 64 + rng.bounded(4033);

  // Watch window: a random instruction-aligned span inside the image.
  const std::uint64_t nslots = (img.end() - img.base()) / isa::kInstrSize;
  const std::uint64_t w0 = rng.bounded(nslots);
  const std::uint64_t wlen = 1 + rng.bounded(nslots - w0);
  const std::uint64_t watch_lo = img.base() + w0 * isa::kInstrSize;
  const std::uint64_t watch_hi = watch_lo + wlen * isa::kInstrSize;

  // The shared call sequence: three full-budget calls plus two starved ones
  // (random small budgets, likely stopping mid-execution at kCycleLimit —
  // the digest must agree even at an arbitrary interruption point).
  struct Call {
    std::int64_t a, b;
    std::uint64_t budget;
  };
  std::vector<Call> calls;
  for (int i = 0; i < 3; ++i) {
    calls.push_back({rng.range(-100, 100), rng.range(-100, 100), 1u << 20});
  }
  for (int i = 0; i < 2; ++i) {
    calls.push_back({rng.range(-100, 100), rng.range(-100, 100),
                     static_cast<std::uint64_t>(rng.range(50, 2000))});
  }

  vm::Machine machines[kNumConfigs] = {
      vm::Machine(kMemSize), vm::Machine(kMemSize), vm::Machine(kMemSize)};
  for (std::size_t c = 0; c < kNumConfigs; ++c) {
    machines[c].load_image(img);
    machines[c].set_predecode(kConfigs[c].predecode);
    machines[c].set_fusion(kConfigs[c].fusion);
    machines[c].arm_sampler(stride);
    machines[c].arm_watch(watch_lo, watch_hi);
  }

  for (std::size_t k = 0; k < calls.size(); ++k) {
    const auto& call = calls[k];
    vm::RunResult results[kNumConfigs];
    for (std::size_t c = 0; c < kNumConfigs; ++c) {
      results[c] = machines[c].call(sym->addr, {call.a, call.b}, call.budget);
    }
    const auto tag = " @call " + std::to_string(k) + " (" +
                     std::to_string(call.a) + "," + std::to_string(call.b) +
                     " budget " + std::to_string(call.budget) + ")";
    for (std::size_t c = 1; c < kNumConfigs; ++c) {
      expect_same(std::string("run result ref vs ") + kConfigs[c].name + tag,
                  render_result(results[0]), render_result(results[c]), report);
      expect(machines[0].state_digest() == machines[c].state_digest(),
             std::string("state digest ref vs ") + kConfigs[c].name + tag +
                 ": " + hex64(machines[0].state_digest()) + " vs " +
                 hex64(machines[c].state_digest()),
             report);
      expect(machines[0].dispatch_stats().instructions ==
                 machines[c].dispatch_stats().instructions,
             std::string("retired-instruction count ref vs ") +
                 kConfigs[c].name + tag,
             report);
    }
  }

  for (std::size_t c = 1; c < kNumConfigs; ++c) {
    expect_same(std::string("sample stream ref vs ") + kConfigs[c].name,
                render_samples(machines[0].samples()),
                render_samples(machines[c].samples()), report);
    expect_same(std::string("watch trace ref vs ") + kConfigs[c].name,
                render_watch(machines[0].watch_trace()),
                render_watch(machines[c].watch_trace()), report);
  }

  // Mutated variants: a handful of random scanner faults. A mutant may trap
  // or burn its whole budget — containment is the VM's problem; the oracle
  // only demands that every configuration observes the SAME outcome.
  const auto fl = swfit::Scanner{}.scan_all(img);
  const std::size_t mutants =
      fl.faults.empty() ? 0 : std::min<std::size_t>(6, 1 + rng.bounded(6));
  for (std::size_t m = 0; m < mutants; ++m) {
    const auto& fault = fl.faults[rng.bounded(fl.faults.size())];
    auto mimg = img;
    if (!expect(swfit::apply_fault(mimg, fault),
                "scanner fault failed to apply", report)) {
      continue;
    }
    vm::Machine fused(kMemSize), plain(kMemSize);
    fused.load_image(mimg);
    plain.load_image(mimg);
    plain.set_fusion(false);
    const auto rf = fused.call(sym->addr, {3, 4}, 50000);
    const auto rp = plain.call(sym->addr, {3, 4}, 50000);
    const auto tag = " @mutant " + std::to_string(m) + " " +
                     swfit::fault_type_name(fault.type) + "@" +
                     hex64(fault.addr);
    expect_same(std::string("mutant run result fused vs plain") + tag,
                render_result(rf), render_result(rp), report);
    expect(fused.state_digest() == plain.state_digest(),
           std::string("mutant state digest fused vs plain") + tag, report);
  }

  if (want_dump) {
    // Canonical cross-lowering fingerprint of the case: the reference
    // machine's final digest, retired count, and a hash of its sample
    // stream. A switch-dispatch build must reproduce every line exactly.
    const auto samples = render_samples(machines[0].samples());
    char line[160];
    std::snprintf(line, sizeof line, "vm %s %s %llu %s", hex64(cs).c_str(),
                  hex64(machines[0].state_digest()).c_str(),
                  static_cast<unsigned long long>(
                      machines[0].dispatch_stats().instructions),
                  hex64(store::fnv1a(
                            reinterpret_cast<const std::uint8_t*>(
                                samples.data()),
                            samples.size()))
                      .c_str());
    report.dump_lines.emplace_back(line);
  }
}

}  // namespace

CheckReport run_vm_engine(const CheckOptions& opt) {
  return internal::run_cases(opt, "vm",
                             [&opt](std::uint64_t cs, CheckReport& report) {
                               run_case(cs, opt.want_dump, report);
                             });
}

}  // namespace gf::check
