#include "trace/activation.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/table.h"

namespace gf::trace {

const char* outcome_name(Outcome o) noexcept {
  switch (o) {
    case Outcome::kNotActivated: return "not-activated";
    case Outcome::kActivatedBenign: return "activated-benign";
    case Outcome::kLatentStateCorruption: return "latent-state-corruption";
    case Outcome::kExternalFailure: return "external-failure";
  }
  return "?";
}

void sort_records(std::vector<ActivationRecord>& records) {
  std::stable_sort(records.begin(), records.end(),
                   [](const ActivationRecord& a, const ActivationRecord& b) {
                     return a.fault_index < b.fault_index;
                   });
}

void ActivationStats::add(const ActivationRecord& r) {
  auto& c = cells[{r.type, r.function}];
  ++c.injected;
  if (r.activated()) ++c.activated;
  switch (r.outcome) {
    case Outcome::kNotActivated: break;
    case Outcome::kActivatedBenign: ++c.benign; break;
    case Outcome::kLatentStateCorruption: ++c.latent; break;
    case Outcome::kExternalFailure: ++c.external; break;
  }
}

void ActivationStats::merge(const ActivationStats& other) {
  for (const auto& [key, c] : other.cells) {
    auto& dst = cells[key];
    dst.injected += c.injected;
    dst.activated += c.activated;
    dst.benign += c.benign;
    dst.latent += c.latent;
    dst.external += c.external;
  }
}

namespace {

void fold(ActivationCell& dst, const ActivationCell& c) {
  dst.injected += c.injected;
  dst.activated += c.activated;
  dst.benign += c.benign;
  dst.latent += c.latent;
  dst.external += c.external;
}

}  // namespace

ActivationCell ActivationStats::total() const {
  ActivationCell t;
  for (const auto& [key, c] : cells) fold(t, c);
  return t;
}

std::vector<std::pair<swfit::FaultType, ActivationCell>>
ActivationStats::by_type() const {
  std::vector<std::pair<swfit::FaultType, ActivationCell>> out;
  for (const auto& info : swfit::fault_type_table()) {
    ActivationCell t;
    for (const auto& [key, c] : cells) {
      if (key.first == info.type) fold(t, c);
    }
    if (t.injected > 0) out.emplace_back(info.type, t);
  }
  return out;
}

std::vector<std::pair<std::string, ActivationCell>>
ActivationStats::by_function() const {
  std::map<std::string, ActivationCell> folded;
  for (const auto& [key, c] : cells) fold(folded[key.second], c);
  return {folded.begin(), folded.end()};
}

ActivationStats aggregate(const std::vector<ActivationRecord>& records) {
  ActivationStats stats;
  for (const auto& r : records) stats.add(r);
  return stats;
}

std::string render_activation_report(const ActivationStats& stats) {
  std::ostringstream out;

  util::Table by_type({"Fault type", "Injected", "Activated", "Act.%",
                       "Benign", "Latent", "External"});
  for (const auto& [type, c] : stats.by_type()) {
    by_type.row()
        .cell(swfit::fault_type_name(type))
        .cell(static_cast<long long>(c.injected))
        .cell(static_cast<long long>(c.activated))
        .cell(100.0 * c.activation_rate(), 1)
        .cell(static_cast<long long>(c.benign))
        .cell(static_cast<long long>(c.latent))
        .cell(static_cast<long long>(c.external));
  }
  const auto t = stats.total();
  by_type.row()
      .cell("TOTAL")
      .cell(static_cast<long long>(t.injected))
      .cell(static_cast<long long>(t.activated))
      .cell(100.0 * t.activation_rate(), 1)
      .cell(static_cast<long long>(t.benign))
      .cell(static_cast<long long>(t.latent))
      .cell(static_cast<long long>(t.external));

  util::Table by_fn({"OS function", "Injected", "Activated", "Act.%",
                     "Benign", "Latent", "External"});
  for (const auto& [fn, c] : stats.by_function()) {
    by_fn.row()
        .cell(fn)
        .cell(static_cast<long long>(c.injected))
        .cell(static_cast<long long>(c.activated))
        .cell(100.0 * c.activation_rate(), 1)
        .cell(static_cast<long long>(c.benign))
        .cell(static_cast<long long>(c.latent))
        .cell(static_cast<long long>(c.external));
  }

  out << "Fault activation by fault type\n"
      << by_type.to_string() << "\nFault activation by OS function\n"
      << by_fn.to_string();
  return out.str();
}

void write_jsonl(std::ostream& os, const std::string& context,
                 const std::vector<ActivationRecord>& records) {
  for (const auto& r : records) {
    os << "{\"context\":\"" << context << "\",\"fault\":" << r.fault_index
       << ",\"type\":\"" << swfit::fault_type_name(r.type)
       << "\",\"function\":\"" << r.function << "\",\"hits\":" << r.hits
       << ",\"first_hit_cycle\":" << r.first_hit_cycle
       << ",\"edge_count\":" << r.edge_count << ",\"edges\":[";
    for (std::size_t i = 0; i < r.edges.size(); ++i) {
      if (i > 0) os << ',';
      os << '[' << r.edges[i].from << ',' << r.edges[i].to << ']';
    }
    os << "],\"outcome\":\"" << outcome_name(r.outcome) << "\"}\n";
  }
}

std::string activation_summary_json(const ActivationStats& stats) {
  std::ostringstream out;
  const auto t = stats.total();
  out << "{\n  \"injected\": " << t.injected
      << ",\n  \"activated\": " << t.activated << ",\n  \"activation_rate\": "
      << util::fmt(t.activation_rate(), 4)
      << ",\n  \"latent\": " << t.latent << ",\n  \"external\": " << t.external
      << ",\n  \"by_type\": {";
  bool first = true;
  for (const auto& [type, c] : stats.by_type()) {
    if (!first) out << ',';
    first = false;
    out << "\n    \"" << swfit::fault_type_name(type)
        << "\": {\"injected\": " << c.injected
        << ", \"activated\": " << c.activated << ", \"rate\": "
        << util::fmt(c.activation_rate(), 4) << '}';
  }
  out << "\n  }\n}\n";
  return out.str();
}

void export_metrics(const std::vector<ActivationRecord>& records,
                    obs::Registry& r) {
  for (const auto& rec : records) {
    r.add("trace.records");
    switch (rec.outcome) {
      case Outcome::kNotActivated: break;
      case Outcome::kActivatedBenign: r.add("trace.benign"); break;
      case Outcome::kLatentStateCorruption: r.add("trace.latent"); break;
      case Outcome::kExternalFailure: r.add("trace.external"); break;
    }
    if (rec.activated()) {
      r.add("trace.activated");
      r.observe("trace.window_hits", rec.hits);
    }
  }
}

}  // namespace gf::trace
