#include "trace/tracer.h"

#include "isa/isa.h"

namespace gf::trace {

FaultTracer::~FaultTracer() {
  if (active_) kernel_.machine().disarm_watch();
  if (api_ != nullptr) api_->set_post_call_hook(nullptr);
}

void FaultTracer::attach(os::OsApi& api) {
  api_ = &api;
  api.set_post_call_hook(
      [this](const std::string&, const os::ApiResult& r) { on_api_call(r); });
}

void FaultTracer::begin_fault(std::uint32_t fault_index,
                              const swfit::FaultLocation& fault) {
  index_ = fault_index;
  type_ = fault.type;
  function_ = fault.function;
  external_ = false;
  latent_seen_ = false;
  active_ = true;
  baseline_ = snapshot_invariants(kernel_);
  kernel_.machine().arm_watch(
      fault.addr, fault.addr + fault.window() * isa::kInstrSize);
}

void FaultTracer::on_api_call(const os::ApiResult& result) {
  if (!active_) return;
  // A crash or hang escaping an OS API call is externally observable — the
  // serving process dies or sticks, which is what the monitor kills for.
  if (result.crashed() || result.hung()) external_ = true;
  if (probe_per_call_ && !latent_seen_ &&
      kernel_.machine().watch_trace().hits > 0) {
    if (!snapshot_invariants(kernel_).ok()) latent_seen_ = true;
  }
}

ActivationRecord FaultTracer::end_fault() {
  auto& m = kernel_.machine();
  const auto& trace = m.watch_trace();

  ActivationRecord rec;
  rec.fault_index = index_;
  rec.type = type_;
  rec.function = function_;
  rec.hits = trace.hits;
  rec.first_hit_cycle = trace.first_hit_cycle;
  rec.edge_count = trace.edge_count;
  rec.edges = trace.edges();
  m.disarm_watch();
  active_ = false;

  if (rec.hits == 0) {
    rec.outcome = Outcome::kNotActivated;
    return rec;
  }
  if (external_) {
    rec.outcome = Outcome::kExternalFailure;
    return rec;
  }
  // Activated without a client-visible failure: damaged-but-silent kernel
  // state is the latent class. The baseline guards against blaming this
  // fault for damage inherited from a previous exposure (reboots heal it,
  // but belt and braces).
  const auto after = snapshot_invariants(kernel_);
  if (latent_seen_ || (baseline_.ok() && !after.ok())) {
    rec.outcome = Outcome::kLatentStateCorruption;
  } else {
    rec.outcome = Outcome::kActivatedBenign;
  }
  return rec;
}

}  // namespace gf::trace
