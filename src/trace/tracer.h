// FaultTracer: per-fault activation & propagation monitor.
//
// The controller drives it in lockstep with the injector: begin_fault() arms
// the VM watch on the patched instruction window and snapshots the kernel
// invariants; end_fault() disarms, re-probes, and classifies the exposure
// into {not-activated, activated-benign, latent-state-corruption,
// external-failure}. attach() additionally hooks the OsApi call boundary so
// crashes/hangs escaping an API call are noted as externally observed and —
// when per-call probing is on — state corruption is detected at the first
// API boundary after it happens, before any client-visible error.
//
// Lineage: ProFIPy treats activation/propagation monitoring as a first-class
// injection-campaign output; ZOFI insists the monitoring must cost ~zero
// when disarmed (here: one never-taken branch per dispatched instruction).
#pragma once

#include <cstdint>

#include "os/api.h"
#include "os/kernel.h"
#include "swfit/faultload.h"
#include "trace/activation.h"
#include "trace/probe.h"

namespace gf::trace {

class FaultTracer {
 public:
  explicit FaultTracer(os::Kernel& kernel) : kernel_(kernel) {}
  ~FaultTracer();

  FaultTracer(const FaultTracer&) = delete;
  FaultTracer& operator=(const FaultTracer&) = delete;

  /// Hooks the API facade's post-call boundary (crash/hang observation and
  /// optional per-call invariant probing). The tracer must outlive no one:
  /// it detaches in its destructor.
  void attach(os::OsApi& api);

  /// Probe invariants at every API call boundary while a fault is active
  /// (off by default: the end-of-exposure probe is enough to classify, the
  /// per-call probe additionally timestamps when corruption appears).
  void set_probe_per_call(bool enabled) noexcept { probe_per_call_ = enabled; }

  /// Arms the watch on `fault`'s instruction window and snapshots the
  /// invariant baseline. `fault_index` is the absolute faultload index.
  void begin_fault(std::uint32_t fault_index, const swfit::FaultLocation& fault);

  /// External-failure observation (monitor kill, client-visible errors).
  void note_external_failure() noexcept { external_ = true; }

  /// Disarms, probes, classifies; returns the finished record.
  ActivationRecord end_fault();

  bool active() const noexcept { return active_; }

 private:
  void on_api_call(const os::ApiResult& result);

  os::Kernel& kernel_;
  os::OsApi* api_ = nullptr;
  bool active_ = false;
  bool probe_per_call_ = false;
  bool external_ = false;
  bool latent_seen_ = false;  ///< per-call probe caught corruption mid-exposure
  std::uint32_t index_ = 0;
  swfit::FaultType type_ = swfit::FaultType::kMVI;
  std::string function_;
  InvariantSnapshot baseline_;
};

}  // namespace gf::trace
