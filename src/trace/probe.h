// Kernel-invariant probe (the error-propagation layer's state oracle).
//
// A fault can corrupt guest OS state long before a client notices anything.
// The probe checksums the designated kernel invariants from outside the VM
// (reading guest memory directly, so the probe itself can never trip an
// injected fault):
//
//   - heap free list: every node inside the arena, 16-aligned, positive
//     in-bounds size, strictly address-ordered (the allocator maintains an
//     address-ordered list with coalescing), walk terminates;
//   - handle table: every entry has a known type, and file handles carry a
//     non-negative file id and position.
//
// A violated invariant with no client-visible failure is exactly the
// paper-adjacent "latent state corruption" class.
#pragma once

#include <cstdint>

namespace gf::os {
class Kernel;
}

namespace gf::trace {

struct InvariantSnapshot {
  bool heap_ok = true;
  bool handles_ok = true;
  std::uint64_t heap_free_nodes = 0;  ///< free-list length at snapshot time
  std::uint64_t heap_checksum = 0;    ///< fold of (node addr, size) pairs
  std::uint64_t handle_checksum = 0;  ///< fold of live handle entries

  bool ok() const noexcept { return heap_ok && handles_ok; }
};

/// Walks the kernel's guest-side heap free list and handle table. Never
/// throws and never executes guest code.
InvariantSnapshot snapshot_invariants(const os::Kernel& kernel);

}  // namespace gf::trace
