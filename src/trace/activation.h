// Activation & error-propagation records (the tracing subsystem's output).
//
// The paper's fine-tuning step (§5) exists solely to maximize the activation
// rate of the injected faults, but the original methodology never *measures*
// activation. Following ProFIPy (Cotroneo et al., 2020) we make per-fault
// activation/propagation monitoring a first-class campaign output: every
// injected fault yields one ActivationRecord that says whether the mutated
// window executed, how the error propagated, and what the client saw.
//
// Records are keyed by the absolute faultload index, so shard results merge
// order-independently: sorting by (fault index) restores a canonical order
// regardless of worker count or shard interleave.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "swfit/fault_types.h"
#include "vm/machine.h"

namespace gf::trace {

/// Propagation outcome of one fault exposure, ordered by severity.
enum class Outcome : std::uint8_t {
  kNotActivated,          ///< the mutated window was never executed
  kActivatedBenign,       ///< executed; no state damage, no visible failure
  kLatentStateCorruption, ///< kernel invariants broken, client saw nothing
  kExternalFailure,       ///< MIS/KNS/KCP kill or client-visible errors
};

const char* outcome_name(Outcome o) noexcept;

/// One fault exposure, traced.
struct ActivationRecord {
  std::uint32_t fault_index = 0;  ///< absolute index into the faultload
  swfit::FaultType type = swfit::FaultType::kMVI;
  std::string function;           ///< OS API function carrying the fault
  std::uint64_t hits = 0;         ///< times the PC entered the fault window
  std::uint64_t first_hit_cycle = 0;  ///< VM lifetime cycle of the first hit
  std::uint64_t edge_count = 0;   ///< control-flow edges taken after the hit
  std::vector<vm::TraceEdge> edges;  ///< the last <= 16 of them
  Outcome outcome = Outcome::kNotActivated;

  bool activated() const noexcept { return hits > 0; }
};

/// Canonical order: by fault index (ties broken by hits for stability when a
/// fault appears once per iteration in a flattened list).
void sort_records(std::vector<ActivationRecord>& records);

/// Aggregate for one (fault type, OS function) bucket.
struct ActivationCell {
  std::uint64_t injected = 0;
  std::uint64_t activated = 0;
  std::uint64_t benign = 0;
  std::uint64_t latent = 0;
  std::uint64_t external = 0;

  double activation_rate() const noexcept {
    return injected > 0 ? static_cast<double>(activated) /
                              static_cast<double>(injected)
                        : 0.0;
  }
};

/// Per-fault-type x per-OS-function activation statistics. Buckets are kept
/// in a sorted map, so rendering order (and the merged totals) never depend
/// on the order records were added — the aggregation is a commutative fold.
struct ActivationStats {
  std::map<std::pair<swfit::FaultType, std::string>, ActivationCell> cells;

  void add(const ActivationRecord& r);
  void merge(const ActivationStats& other);
  ActivationCell total() const;
  /// Totals folded over functions, Table 1 fault-type order.
  std::vector<std::pair<swfit::FaultType, ActivationCell>> by_type() const;
  /// Totals folded over fault types, by function name.
  std::vector<std::pair<std::string, ActivationCell>> by_function() const;
};

ActivationStats aggregate(const std::vector<ActivationRecord>& records);

/// Renders the per-fault-type x per-OS-function activation report (ASCII
/// tables, same style as the paper-table benches).
std::string render_activation_report(const ActivationStats& stats);

/// Writes one JSON object per record ("JSONL" event log). `context` is
/// attached verbatim to every line (e.g. "VOS-2000/apex/iter0").
void write_jsonl(std::ostream& os, const std::string& context,
                 const std::vector<ActivationRecord>& records);

/// Compact machine-readable summary (activation rate per fault type plus the
/// overall rate) for the perf/quality trajectory (BENCH_activation.json).
std::string activation_summary_json(const ActivationStats& stats);

/// Folds record tallies into an obs registry: trace.records / activated /
/// benign / latent / external counters plus a trace.window_hits histogram
/// (how often each activated fault's window was entered). Fault-indexed and
/// outcome-derived only, so the export is shard-invariant like the records.
void export_metrics(const std::vector<ActivationRecord>& records,
                    obs::Registry& r);

}  // namespace gf::trace
