#include "trace/probe.h"

#include "os/kernel.h"
#include "os/layout.h"

namespace gf::trace {

namespace lay = os::layout;

namespace {

std::uint64_t fold(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

InvariantSnapshot snapshot_invariants(const os::Kernel& kernel) {
  const auto& m = kernel.machine();
  InvariantSnapshot snap;

  // --- heap free list ------------------------------------------------------
  constexpr std::uint64_t kArenaLo = lay::kHeapArena;
  constexpr std::uint64_t kArenaHi = lay::kHeapArenaEnd;
  constexpr std::uint64_t kHdr = static_cast<std::uint64_t>(lay::kBlockHeader);
  // A free block occupies at least kHdr + 16 bytes, which bounds the list
  // length; anything longer is a cycle.
  constexpr std::uint64_t kMaxNodes = (kArenaHi - kArenaLo) / (kHdr + 16) + 1;

  std::uint64_t cur = 0;
  if (!m.read_u64(lay::kHeapCtl, cur)) {
    snap.heap_ok = false;
  }
  std::uint64_t prev = 0;
  while (snap.heap_ok && cur != 0) {
    if (cur < kArenaLo || cur + kHdr > kArenaHi || cur % 16 != 0 ||
        (prev != 0 && cur <= prev) || snap.heap_free_nodes >= kMaxNodes) {
      snap.heap_ok = false;
      break;
    }
    std::uint64_t size_raw = 0, next = 0;
    if (!m.read_u64(cur, size_raw) || !m.read_u64(cur + 8, next)) {
      snap.heap_ok = false;
      break;
    }
    const auto size = static_cast<std::int64_t>(size_raw);
    if (size <= 0 ||
        cur + kHdr + static_cast<std::uint64_t>(size) > kArenaHi) {
      snap.heap_ok = false;
      break;
    }
    snap.heap_checksum = fold(fold(snap.heap_checksum, cur), size_raw);
    ++snap.heap_free_nodes;
    prev = cur;
    cur = next;
  }

  // --- handle table --------------------------------------------------------
  for (std::int64_t i = 0; i < lay::kMaxHandles; ++i) {
    const std::uint64_t base =
        lay::kHandleTable + static_cast<std::uint64_t>(i) * 32;
    std::uint64_t type = 0, file_id = 0, pos = 0;
    if (!m.read_u64(base, type) || !m.read_u64(base + 8, file_id) ||
        !m.read_u64(base + 16, pos)) {
      snap.handles_ok = false;
      break;
    }
    if (type == 0) continue;  // free entry
    if (type != 1 || static_cast<std::int64_t>(file_id) < 0 ||
        static_cast<std::int64_t>(pos) < 0) {
      snap.handles_ok = false;
      break;
    }
    snap.handle_checksum = fold(
        fold(fold(snap.handle_checksum, static_cast<std::uint64_t>(i)), file_id),
        pos);
  }

  return snap;
}

}  // namespace gf::trace
