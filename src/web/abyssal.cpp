// abyssal — the Abyss-analogue benchmark target.
//
// A perfectly correct server on a healthy OS, but *trusting*: API statuses
// are mostly ignored, pointers are used unchecked, buffers are allocated
// per request (and leaked on error paths), and there is no containment —
// any crash escaping an API call kills the process, and there is no
// self-restart. This is the behavioural profile the paper measured for
// Abyss: higher error rates, more deaths, more required administrator
// intervention.
#include "web/server.h"

namespace gf::web {

namespace {

constexpr std::int64_t kBufSize = 36 * 1024;
constexpr std::int64_t kChunk = 4096;
constexpr std::size_t kMaxBody = 64 * 1024;

class AbyssalServer final : public WebServer {
 public:
  explicit AbyssalServer(os::OsApi& api) : WebServer(api) {}

  const char* name() const override { return "abyssal"; }
  // Thread-per-connection dispatch: more per-request CPU outside the OS.
  double arch_overhead_ms() const override { return 5.45; }

 protected:
  bool do_start() override {
    // One shared scratch block; only the start path checks the result
    // (without it there is nothing to serve from).
    const auto r = die_on_crash(api().rtl_alloc(4096));
    if (r.value <= 0) return false;
    scratch_ = static_cast<std::uint64_t>(r.value);
    cs_ = scratch_;             // critical section lives in the scratch block
    url_buf_ = scratch_ + 64;   // wide URL
    ansi_buf_ = scratch_ + 2176;
    nt_struct_ = scratch_ + 3300;
    post_buf_ = scratch_ + 3400;
    const std::uint8_t zeros[64] = {};
    api().write_bytes(cs_, zeros, sizeof zeros);

    api().write_cstr(os::OsApi::kPathSlot, "/logs/abyssal.post");
    const auto log = die_on_crash(api().nt_create_file(os::OsApi::kPathSlot));
    if (log.value <= 0) return false;
    log_handle_ = log.value;
    return true;
  }

  void do_stop() override {
    if (log_handle_ > 0) die_on_crash(api().nt_close(log_handle_));
    if (scratch_ != 0) die_on_crash(api().rtl_free(scratch_));
    scratch_ = 0;
    log_handle_ = 0;
  }

  Response do_handle(const Request& req) override {
    // Stats bump "under lock" — results unchecked.
    die_on_crash(api().rtl_enter_cs(cs_));
    die_on_crash(api().rtl_leave_cs(cs_));

    if (!api().write_wstr(url_buf_, req.path)) throw ServerDeath{};

    if (++served_ % 32 == 0) housekeeping();

    // No canonicalization pass, no length validation anywhere.
    die_on_crash(api().rtl_init_unicode_string(os::OsApi::kStructSlot, url_buf_));
    die_on_crash(api().rtl_dos_path_to_nt(url_buf_, nt_struct_));
    const auto conv = die_on_crash(api().rtl_unicode_to_multibyte(
        ansi_buf_, 1000, url_buf_, static_cast<std::int64_t>(req.path.size()) * 2));
    // Trusts the conversion count blindly: a wrong count places the
    // terminator in the wrong spot and the open fails (or hits a stale
    // longer path from the previous request).
    const auto end = conv.value > 0 && conv.value < 1000 ? conv.value : 0;
    const std::uint8_t nul = 0;
    api().write_bytes(ansi_buf_ + static_cast<std::uint64_t>(end), &nul, 1);

    die_on_crash(api().rtl_free_unicode_string(nt_struct_));

    if (req.method == Method::kPost) return serve_post(req);

    const auto open = die_on_crash(api().nt_open_file(ansi_buf_));
    if (open.value == os::layout::kStatusNotFound) return Response{404, {}};
    const auto h = open.value;  // used even when it is an error status

    // Fresh response buffer every request; the status is not checked and
    // the response header is written through the pointer immediately — a
    // failed (null) or corrupt allocation is dereferenced right here.
    const auto alloc = die_on_crash(api().rtl_alloc(kBufSize));
    const auto data = static_cast<std::uint64_t>(alloc.value);
    const char hdr[16] = "HTTP/1.1 200 OK";
    if (!api().write_bytes(data, hdr, sizeof hdr)) throw ServerDeath{};

    Response resp{200, {}};
    while (resp.body.size() < kMaxBody) {
      const auto rd = die_on_crash(api().nt_read_file(h, data, kChunk));
      if (rd.value <= 0) break;  // any error is treated like EOF
      const auto n = static_cast<std::size_t>(rd.value);
      const auto old = resp.body.size();
      resp.body.resize(old + n);
      if (!api().read_bytes(data, resp.body.data() + old, n)) {
        // Reading through a bad buffer pointer: the process dereferenced
        // garbage memory.
        throw ServerDeath{};
      }
      if (rd.value < kChunk) break;
    }
    die_on_crash(api().nt_close(h));
    die_on_crash(api().rtl_free(data));  // leaked on the error paths above

    if (open.value <= 0) return Response{500, {}};
    if (req.dynamic) {
      for (auto& b : resp.body) b = dynamic_transform(b);
    }
    return resp;
  }

  void do_save_state(std::vector<std::int64_t>& out) const override {
    for (std::uint64_t v : {scratch_, cs_, url_buf_, ansi_buf_, nt_struct_,
                            post_buf_, static_cast<std::uint64_t>(log_handle_),
                            served_, posts_}) {
      out.push_back(static_cast<std::int64_t>(v));
    }
  }

  void do_restore_state(WordReader& in) override {
    for (auto* p : {&scratch_, &cs_, &url_buf_, &ansi_buf_, &nt_struct_,
                    &post_buf_}) {
      *p = static_cast<std::uint64_t>(in.next());
    }
    log_handle_ = in.next();
    served_ = static_cast<std::uint64_t>(in.next());
    posts_ = static_cast<std::uint64_t>(in.next());
  }

 private:
  Response serve_post(const Request& req) {
    const auto len = std::min<std::size_t>(req.body.size(), 600);
    api().write_bytes(post_buf_, req.body.data(), len);
    // Alternates write paths; trusts that both work.
    if (++posts_ % 2 == 0) {
      die_on_crash(api().write_file(log_handle_, post_buf_,
                                    static_cast<std::int64_t>(len),
                                    os::OsApi::kOutSlot));
    } else {
      die_on_crash(api().nt_write_file(log_handle_, post_buf_,
                                       static_cast<std::int64_t>(len)));
    }
    return Response{200, expected_body(req.path, 128, false)};
  }

  /// Periodic maintenance (cache refresh, log rotation checks). Statuses
  /// are ignored throughout, in character.
  void housekeeping() {
    die_on_crash(api().get_long_path_name(url_buf_, ansi_buf_ /*reused*/, 400));
    die_on_crash(api().rtl_init_ansi_string(os::OsApi::kStructSlot, ansi_buf_));
    die_on_crash(api().nt_protect_vm(scratch_, 4096, 3));
    die_on_crash(api().nt_query_vm(scratch_, os::OsApi::kStructSlot));
    die_on_crash(api().set_file_pointer(log_handle_, 0));
    api().write_cstr(os::OsApi::kPathSlot, "/conf/httpd.conf");
    const auto conf = die_on_crash(api().nt_open_file(os::OsApi::kPathSlot));
    if (conf.value > 0) {
      die_on_crash(api().read_file(conf.value, post_buf_, 256, os::OsApi::kOutSlot));
      die_on_crash(api().close_handle(conf.value));
    }
  }

  std::uint64_t scratch_ = 0, cs_ = 0, url_buf_ = 0, ansi_buf_ = 0,
                nt_struct_ = 0, post_buf_ = 0;
  std::int64_t log_handle_ = 0;
  std::uint64_t served_ = 0, posts_ = 0;
};

}  // namespace

std::unique_ptr<WebServer> make_abyssal(os::OsApi& api) {
  return std::make_unique<AbyssalServer>(api);
}

}  // namespace gf::web
