// WebServer — the Benchmark Target abstraction.
//
// Servers are native C++ (the BT is never mutated) but obtain every OS
// resource through os::OsApi, i.e. through VISA code that may carry an
// injected fault. The base class contains the failure model:
//
//   - an API call that hangs (cycle budget) leaves the serving process
//     stuck -> ServerState::kHung (the paper's KNS kill reason),
//   - an unhandled crash escaping request handling kills the process ->
//     kCrashed (MIS if the server cannot self-restart),
//   - a recovery loop that burns CPU without serving -> kSpinning (KCP).
//
// Four servers mirror the paper's case study: apex (Apache-like, robust,
// self-restarting), abyssal (Abyss-like, trusting, no self-restart), and
// sambar/savant which participate only in the profiling phase.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "os/api.h"
#include "web/http.h"

namespace gf::web {

enum class ServerState : std::uint8_t {
  kStopped,
  kRunning,
  kCrashed,   ///< process died
  kHung,      ///< stuck, not responding
  kSpinning,  ///< hogging CPU without providing service
};

const char* server_state_name(ServerState s) noexcept;

/// Cumulative per-server counters (reset on start()).
struct ServerStats {
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;       ///< non-200 responses
  std::uint64_t crashes = 0;      ///< deaths observed
  std::uint64_t self_restarts = 0;
};

/// Snapshot of a server's C++-side process state (warm-boot snapshots).
/// Servers are native code, so unlike guest memory their state cannot be
/// captured from the VM: each server flattens its members to plain integers
/// via do_save_state/do_restore_state (the analogue of ZOFI cloning the
/// warmed process image instead of re-launching).
struct ProcessImage {
  ServerState state = ServerState::kStopped;
  ServerStats stats;
  std::uint64_t last_cycles = 0;
  std::vector<std::int64_t> words;  ///< per-server scalars, declaration order
  /// Variable-size state that does not flatten to scalars (e.g. apex's
  /// response cache, one entry per cached path). Key-sorted so the image
  /// is a deterministic function of the server state.
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> blobs;
};

class WebServer {
 public:
  explicit WebServer(os::OsApi& api) : api_(api) {}
  virtual ~WebServer() = default;

  WebServer(const WebServer&) = delete;
  WebServer& operator=(const WebServer&) = delete;

  virtual const char* name() const = 0;
  /// Apache-like built-in self-restart capability (paper §3.4).
  virtual bool has_self_restart() const { return false; }
  /// Architectural CPU cost per request (ms) *outside* the OS API — the
  /// BT's own processing model (worker pool vs thread-per-connection). Used
  /// by the client's service-time model on top of the measured VM cycles.
  virtual double arch_overhead_ms() const { return 3.0; }

  /// Boots the server: allocates guest-side resources. Returns false when
  /// the OS is too broken to start (allocation failures etc.).
  bool start();
  void stop();

  /// Serves one request. Never throws; failures are reflected in the
  /// response status and in state().
  Response handle(const Request& req);

  /// Attempts a self-restart after a death (only meaningful when
  /// has_self_restart()). Returns true when serving again.
  bool try_self_restart();

  ServerState state() const noexcept { return state_; }
  const ServerStats& stats() const noexcept { return stats_; }

  /// VM cycles consumed by the last handle() call (performance model input).
  std::uint64_t last_request_cycles() const noexcept { return last_cycles_; }

  /// Captures / restores the full C++-side process state. A restored server
  /// object behaves exactly like the one save_process() was called on —
  /// guest-side resources it refers to (handles, heap blocks) must be
  /// restored separately via the kernel snapshot taken at the same point.
  ProcessImage save_process() const;
  void restore_process(const ProcessImage& img);

 protected:
  /// Sequential reader for ProcessImage::words (restore side).
  class WordReader {
   public:
    explicit WordReader(const std::vector<std::int64_t>& w) : w_(w) {}
    std::int64_t next() { return w_.at(i_++); }

   private:
    const std::vector<std::int64_t>& w_;
    std::size_t i_ = 0;
  };
  /// Thrown by request handling when an API call hangs.
  struct ApiHang {};
  /// Thrown when the process dies (unhandled fault consequence).
  struct ServerDeath {};
  /// Thrown when recovery degenerates into a busy loop.
  struct ServerSpin {};

  virtual bool do_start() = 0;
  virtual void do_stop() {}
  virtual Response do_handle(const Request& req) = 0;
  /// Appends / re-reads every member that affects behaviour, in declaration
  /// order. The base class covers state/stats/last-cycles.
  virtual void do_save_state(std::vector<std::int64_t>& out) const = 0;
  virtual void do_restore_state(WordReader& in) = 0;
  /// Variable-size state (ProcessImage::blobs). Runs after the word pass on
  /// restore; default: the server has none.
  virtual void do_save_blobs(
      std::vector<std::pair<std::string, std::vector<std::uint8_t>>>&)
      const {}
  virtual void do_restore_blobs(
      const std::vector<std::pair<std::string, std::vector<std::uint8_t>>>&) {
  }

  os::OsApi& api() noexcept { return api_; }

  /// Propagates a hung API call as ApiHang; returns the result otherwise.
  const os::ApiResult& hang_check(const os::ApiResult& r) {
    if (r.hung()) throw ApiHang{};
    return r;
  }

  /// For servers without structured exception handling: any crash in an API
  /// call escapes and kills the process.
  const os::ApiResult& die_on_crash(const os::ApiResult& r) {
    hang_check(r);
    if (r.crashed()) throw ServerDeath{};
    return r;
  }

 private:
  os::OsApi& api_;
  ServerState state_ = ServerState::kStopped;
  ServerStats stats_;
  std::uint64_t last_cycles_ = 0;
};

/// Factory for the four case-study servers by name ("apex", "abyssal",
/// "sambar", "savant"); throws std::invalid_argument for unknown names.
std::unique_ptr<WebServer> make_server(const std::string& name, os::OsApi& api);

}  // namespace gf::web
