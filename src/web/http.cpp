#include "web/http.h"

namespace gf::web {

std::uint64_t path_seed(const std::string& path) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : path) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::uint8_t expected_content_byte(std::uint64_t seed, std::size_t i) noexcept {
  return static_cast<std::uint8_t>(seed + i * 31);
}

std::uint8_t dynamic_transform(std::uint8_t b) noexcept {
  return static_cast<std::uint8_t>(b ^ 0x5A);
}

std::vector<std::uint8_t> expected_body(const std::string& path, std::size_t size,
                                        bool dynamic) {
  const auto seed = path_seed(path);
  std::vector<std::uint8_t> out(size);
  for (std::size_t i = 0; i < size; ++i) {
    out[i] = expected_content_byte(seed, i);
    if (dynamic) out[i] = dynamic_transform(out[i]);
  }
  return out;
}

const char* method_name(Method m) noexcept {
  return m == Method::kGet ? "GET" : "POST";
}

}  // namespace gf::web
