#include "web/server.h"

#include <stdexcept>

namespace gf::web {

const char* server_state_name(ServerState s) noexcept {
  switch (s) {
    case ServerState::kStopped: return "stopped";
    case ServerState::kRunning: return "running";
    case ServerState::kCrashed: return "crashed";
    case ServerState::kHung: return "hung";
    case ServerState::kSpinning: return "spinning";
  }
  return "?";
}

bool WebServer::start() {
  stats_ = {};
  state_ = ServerState::kStopped;
  try {
    if (!do_start()) return false;
  } catch (const ApiHang&) {
    return false;
  } catch (const ServerDeath&) {
    return false;
  } catch (const ServerSpin&) {
    return false;
  }
  state_ = ServerState::kRunning;
  return true;
}

void WebServer::stop() {
  if (state_ != ServerState::kStopped) {
    try {
      do_stop();
    } catch (const ApiHang&) {
      // Shutdown is best effort; a hung teardown call is abandoned.
    } catch (const ServerDeath&) {
    } catch (const ServerSpin&) {
    }
  }
  state_ = ServerState::kStopped;
}

Response WebServer::handle(const Request& req) {
  if (state_ != ServerState::kRunning) {
    return Response{503, {}};
  }
  ++stats_.requests;
  const auto cycles_before = api_.total_cycles();
  Response resp{500, {}};
  try {
    resp = do_handle(req);
  } catch (const ApiHang&) {
    state_ = ServerState::kHung;
    resp = Response{0, {}};  // never answered
  } catch (const ServerDeath&) {
    state_ = ServerState::kCrashed;
    ++stats_.crashes;
    resp = Response{0, {}};
  } catch (const ServerSpin&) {
    state_ = ServerState::kSpinning;
    resp = Response{0, {}};
  }
  last_cycles_ = api_.total_cycles() - cycles_before;
  if (resp.status == 200) {
    ++stats_.ok;
  } else {
    ++stats_.errors;
  }
  return resp;
}

ProcessImage WebServer::save_process() const {
  ProcessImage img;
  img.state = state_;
  img.stats = stats_;
  img.last_cycles = last_cycles_;
  do_save_state(img.words);
  do_save_blobs(img.blobs);
  return img;
}

void WebServer::restore_process(const ProcessImage& img) {
  state_ = img.state;
  stats_ = img.stats;
  last_cycles_ = img.last_cycles;
  WordReader in(img.words);
  do_restore_state(in);
  do_restore_blobs(img.blobs);
}

bool WebServer::try_self_restart() {
  if (!has_self_restart()) return false;
  const auto saved = stats_;
  stop();
  const bool up = start();
  stats_ = saved;  // restarting does not erase history
  if (up) ++stats_.self_restarts;
  return up;
}

}  // namespace gf::web
