// Minimal HTTP-like request/response model for the simulated web servers.
//
// The SPECWeb99-style client validates responses by *content*: every file in
// the workload file set has deterministic content derived from its path
// (expected_content_byte), so a served body can be checked byte-by-byte
// without keeping copies — corrupted OS state (e.g. a trashed heap) shows up
// as content errors, exactly the error channel ER% measures in the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gf::web {

enum class Method : std::uint8_t { kGet, kPost };

struct Request {
  Method method = Method::kGet;
  std::string path;     ///< request target, e.g. "/file_set/dir00001/class1_3"
  bool dynamic = false; ///< dynamic GET (CGI-style transform)
  std::string body;     ///< POST payload
};

struct Response {
  int status = 0;  ///< 200, 404, 500
  std::vector<std::uint8_t> body;
};

/// Deterministic content function for workload files: byte i of the file at
/// `path` is expected_content_byte(path_seed(path), i).
std::uint64_t path_seed(const std::string& path);
std::uint8_t expected_content_byte(std::uint64_t seed, std::size_t i) noexcept;

/// The dynamic-GET transform applied by servers (and re-applied by the
/// client for validation).
std::uint8_t dynamic_transform(std::uint8_t b) noexcept;

/// Builds the full expected body for a file of `size` bytes.
std::vector<std::uint8_t> expected_body(const std::string& path, std::size_t size,
                                        bool dynamic);

const char* method_name(Method m) noexcept;

}  // namespace gf::web
