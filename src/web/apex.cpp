// apex — the Apache-analogue benchmark target.
//
// Robustness mechanisms (the reasons the paper's Apache degrades less):
//   - every API result is checked; a failing request is aborted with 500
//     instead of propagating corrupt values,
//   - crashes inside API calls are contained per request (SEH-style),
//   - pre-allocated buffer pool with canaries + periodic integrity checks,
//   - pool pages are protected/queried via the VM-protection API,
//   - self-restart watchdog (has_self_restart() = true),
//   - a death is declared only after a burst of consecutive failed
//     requests or an unrecoverable pool corruption,
//   - an in-process response cache for static content: hot files are
//     served from the worker's own memory, without touching the OS file
//     API (the paper's Table 2 shows exactly this: Apache's NtReadFile
//     share is 0.2% vs Abyss's 2.9% — Apache barely read files).
#include <array>
#include <map>

#include "web/server.h"

namespace gf::web {

namespace {

constexpr std::int64_t kPoolBufSize = 66 * 1024;  // canary + largest file
constexpr std::uint64_t kCanary = 0xC0FFEE5EED5A11ADULL;
constexpr int kIntegrityPeriod = 32;       // requests between pool checks
constexpr int kAuditPeriod = 64;           // requests between config audits
constexpr int kMaxConsecutiveFailures = 12;
constexpr std::size_t kCacheEntries = 192;
constexpr std::size_t kMaxBody = 64 * 1024;

class ApexServer final : public WebServer {
 public:
  explicit ApexServer(os::OsApi& api) : WebServer(api) {}

  const char* name() const override { return "apex"; }
  bool has_self_restart() const override { return true; }
  double arch_overhead_ms() const override { return 4.45; }  // worker pool

 protected:
  bool do_start() override {
    consecutive_failures_ = 0;
    served_since_check_ = 0;
    served_since_audit_ = 0;
    posts_ = 0;
    log_pos_ = 0;
    heap_probe_failures_ = 0;
    cache_.clear();  // a fresh process starts with a cold cache
    // All guest resources come from the (possibly faulty) OS heap.
    cs_ = checked_alloc(64);
    stats_block_ = checked_alloc(64);
    url_buf_ = checked_alloc(2048);
    canon_buf_ = checked_alloc(2048);
    ansi_buf_ = checked_alloc(1024);
    nt_struct_ = checked_alloc(64);
    post_buf_ = checked_alloc(2048);
    if (!cs_ || !stats_block_ || !url_buf_ || !canon_buf_ || !ansi_buf_ ||
        !nt_struct_ || !post_buf_) {
      return false;
    }
    zero_block(cs_, 32);
    zero_block(stats_block_, 32);
    for (auto& buf : pool_) {
      buf = checked_alloc(kPoolBufSize);
      if (!buf) return false;
      if (!api().write_bytes(buf, &kCanary, sizeof kCanary)) return false;
      // Mark the pool pages read+write and verify the kernel agrees.
      const auto prot = api().nt_protect_vm(buf, kPoolBufSize, 3);
      hang_check(prot);
      if (!prot.completed) return false;
    }
    api().write_cstr(os::OsApi::kPathSlot, "/logs/apex.post");
    const auto log = api().nt_create_file(os::OsApi::kPathSlot);
    hang_check(log);
    if (!log.ok() || log.value <= 0) return false;
    log_handle_ = log.value;
    return true;
  }

  void do_stop() override {
    if (log_handle_ > 0) hang_check(api().nt_close(log_handle_));
    for (auto& buf : pool_) {
      if (buf) hang_check(api().rtl_free(buf));
      buf = 0;
    }
    for (auto* p : {&cs_, &stats_block_, &url_buf_, &canon_buf_, &ansi_buf_,
                    &nt_struct_, &post_buf_}) {
      if (*p) hang_check(api().rtl_free(*p));
      *p = 0;
    }
    log_handle_ = 0;
  }

  Response do_handle(const Request& req) override {
    Response resp{500, {}};
    try {
      resp = serve(req);
    } catch (const RequestAbort&) {
      resp = Response{500, {}};
    }
    if (resp.status == 200) {
      consecutive_failures_ = 0;
    } else if (++consecutive_failures_ >= kMaxConsecutiveFailures) {
      // A burst of hard failures: the worker pool is beyond recovery.
      throw ServerDeath{};
    }
    if (++served_since_check_ >= kIntegrityPeriod) {
      served_since_check_ = 0;
      integrity_check();
    }
    if (++served_since_audit_ >= kAuditPeriod) {
      served_since_audit_ = 0;
      try {
        config_audit();
      } catch (const RequestAbort&) {
        // A failed audit is logged and ignored; serving continues.
      }
    }
    return resp;
  }

  void do_save_state(std::vector<std::int64_t>& out) const override {
    for (std::uint64_t v : {cs_, stats_block_, url_buf_, canon_buf_, ansi_buf_,
                            nt_struct_, post_buf_, pool_[0], pool_[1],
                            static_cast<std::uint64_t>(pool_rr_),
                            static_cast<std::uint64_t>(log_handle_),
                            static_cast<std::uint64_t>(log_pos_), posts_,
                            served_total_}) {
      out.push_back(static_cast<std::int64_t>(v));
    }
    for (int v : {consecutive_failures_, served_since_check_,
                  served_since_audit_, heap_probe_failures_}) {
      out.push_back(v);
    }
  }

  void do_save_blobs(
      std::vector<std::pair<std::string, std::vector<std::uint8_t>>>& out)
      const override {
    // The cache is part of the warmed process: snapshots are captured after
    // the bring-up warm-up serve, and a restored process must hit the cache
    // exactly like the one that was captured. std::map iterates key-sorted,
    // so the image is deterministic.
    for (const auto& [path, body] : cache_) out.emplace_back(path, body);
  }

  void do_restore_state(WordReader& in) override {
    for (auto* p : {&cs_, &stats_block_, &url_buf_, &canon_buf_, &ansi_buf_,
                    &nt_struct_, &post_buf_, &pool_[0], &pool_[1]}) {
      *p = static_cast<std::uint64_t>(in.next());
    }
    pool_rr_ = static_cast<std::size_t>(in.next());
    log_handle_ = in.next();
    log_pos_ = in.next();
    posts_ = static_cast<std::uint64_t>(in.next());
    served_total_ = static_cast<std::uint64_t>(in.next());
    consecutive_failures_ = static_cast<int>(in.next());
    served_since_check_ = static_cast<int>(in.next());
    served_since_audit_ = static_cast<int>(in.next());
    heap_probe_failures_ = static_cast<int>(in.next());
    cache_.clear();
  }

  void do_restore_blobs(
      const std::vector<std::pair<std::string, std::vector<std::uint8_t>>>&
          in) override {
    cache_.clear();
    for (const auto& [path, body] : in) {
      if (cache_.size() >= kCacheEntries) break;
      cache_[path] = body;
    }
  }

 private:
  /// Request-scoped failure: caught in do_handle, answered with 500.
  struct RequestAbort {};

  /// Checks an API result the apex way: hangs propagate, crashes and error
  /// statuses abort the request (they are contained per request).
  const os::ApiResult& check(const os::ApiResult& r) {
    hang_check(r);
    if (!r.completed || r.value < 0) throw RequestAbort{};
    return r;
  }

  std::uint64_t checked_alloc(std::int64_t size) {
    const auto r = api().rtl_alloc(size);
    hang_check(r);
    if (!r.completed || r.value <= 0) return 0;
    return static_cast<std::uint64_t>(r.value);
  }

  void zero_block(std::uint64_t addr, std::size_t bytes) {
    const std::array<std::uint8_t, 64> zeros{};
    api().write_bytes(addr, zeros.data(), std::min(bytes, zeros.size()));
  }

  Response serve(const Request& req) {
    // 1. Scoreboard update under the OS critical section, batched every
    // few requests (Apache-style: workers do not lock per request).
    if (served_total_++ % 8 == 0) {
      check(api().rtl_enter_cs(cs_));
      const auto served = api().read_u64_or(stats_block_, 0);
      api().write_bytes(stats_block_, &served, sizeof served);
      check(api().rtl_leave_cs(cs_));
    }

    // In-process content cache: hot static files are served straight from
    // worker memory (no OS file API involved).
    if (req.method == Method::kGet) {
      const auto hit = cache_.find(req.path);
      if (hit != cache_.end()) {
        Response resp{200, hit->second};
        if (req.dynamic) {
          for (auto& b : resp.body) b = dynamic_transform(b);
        }
        return resp;
      }
    }

    // 2. Marshal the URL as a wide string into server memory.
    if (req.path.size() > 900) throw RequestAbort{};
    if (!api().write_wstr(url_buf_, req.path)) throw RequestAbort{};

    // 3. Canonicalize, then validate the reported length.
    const auto canon =
        check(api().get_long_path_name(url_buf_, canon_buf_, 1000));
    if (canon.value <= 0) throw RequestAbort{};
    const auto canon_chars = canon.value;

    const auto init = check(api().rtl_init_unicode_string(
        os::OsApi::kStructSlot, canon_buf_));
    (void)init;
    const auto reported = api().read_u64_or(os::OsApi::kStructSlot, 0);
    if (reported != static_cast<std::uint64_t>(canon_chars) * 2) {
      throw RequestAbort{};  // the OS string layer is lying
    }

    // 4. NT-path conversion (exercises the heap through the OS).
    check(api().rtl_dos_path_to_nt(canon_buf_, nt_struct_));

    // 5. Down-convert to the byte path used for the open.
    const auto conv = check(api().rtl_unicode_to_multibyte(
        ansi_buf_, 1000, canon_buf_, canon_chars * 2));
    if (conv.value != canon_chars) {
      check(api().rtl_free_unicode_string(nt_struct_));
      throw RequestAbort{};
    }
    const std::uint8_t nul = 0;
    api().write_bytes(ansi_buf_ + static_cast<std::uint64_t>(conv.value), &nul, 1);

    check(api().rtl_free_unicode_string(nt_struct_));

    // Per-request context block from the OS heap (freed below).
    const auto ctx = checked_alloc(256);
    if (ctx == 0) throw RequestAbort{};

    if (req.method == Method::kPost) {
      const auto resp = serve_post(req);
      check(api().rtl_free(ctx));
      return resp;
    }

    // 6. Open + single large read into the pool buffer (memory-mapped-style
    // serving: one big transfer per request, like Apache's sendfile path).
    const auto open = hang_check(api().nt_open_file(ansi_buf_));
    if (!open.completed) {
      api().rtl_free(ctx);
      throw RequestAbort{};
    }
    if (open.value == os::layout::kStatusNotFound) {
      check(api().rtl_free(ctx));
      return Response{404, {}};
    }
    if (open.value <= 0) {
      api().rtl_free(ctx);
      throw RequestAbort{};
    }
    const auto h = open.value;

    Response resp{200, {}};
    const auto data = pool_[pool_rr_++ % pool_.size()] + 16;
    const auto rd = hang_check(
        api().nt_read_file(h, data, static_cast<std::int64_t>(kMaxBody)));
    if (!rd.completed || rd.value < 0) {
      hang_check(api().nt_close(h));
      api().rtl_free(ctx);
      throw RequestAbort{};
    }
    const auto n = static_cast<std::size_t>(rd.value);
    resp.body.resize(n);
    if (n > 0 && !api().read_bytes(data, resp.body.data(), n)) {
      hang_check(api().nt_close(h));
      api().rtl_free(ctx);
      throw RequestAbort{};
    }
    check(api().nt_close(h));
    check(api().rtl_free(ctx));

    if (cache_.size() < kCacheEntries) {
      cache_[req.path] = resp.body;  // cache the *static* content
    }
    if (req.dynamic) {
      for (auto& b : resp.body) b = dynamic_transform(b);
    }
    return resp;
  }

  Response serve_post(const Request& req) {
    const auto len = std::min<std::size_t>(req.body.size(), 1800);
    if (!api().write_bytes(post_buf_, req.body.data(), len)) throw RequestAbort{};
    // Alternate between the Win32 wrapper and the native write path.
    if (++posts_ % 2 == 0) {
      const auto w = check(api().write_file(
          log_handle_, post_buf_, static_cast<std::int64_t>(len),
          os::OsApi::kOutSlot));
      if (w.value != 1) throw RequestAbort{};
      const auto written = api().read_u64_or(os::OsApi::kOutSlot, 0);
      if (written != len) throw RequestAbort{};
    } else {
      const auto w = check(api().nt_write_file(
          log_handle_, post_buf_, static_cast<std::int64_t>(len)));
      if (w.value != static_cast<std::int64_t>(len)) throw RequestAbort{};
    }
    log_pos_ += static_cast<std::int64_t>(len);
    if (posts_ % 8 == 0) {
      check(api().set_file_pointer(log_handle_, log_pos_));
    }
    return Response{200, expected_body(req.path, 128, false)};
  }

  /// Periodic configuration audit: re-reads the config file through the
  /// Win32 layer and refreshes the ansi view of the server root.
  void config_audit() {
    api().write_cstr(os::OsApi::kPathSlot, "/conf/httpd.conf");
    const auto open = check(api().nt_open_file(os::OsApi::kPathSlot));
    if (open.value <= 0) throw RequestAbort{};
    const auto data = pool_[0] + 16;
    const auto rd = check(api().read_file(open.value, data, 512, os::OsApi::kOutSlot));
    const auto closed = check(api().close_handle(open.value));
    if (rd.value != 1 || closed.value != 1) throw RequestAbort{};
    check(api().rtl_init_ansi_string(os::OsApi::kStructSlot, os::OsApi::kPathSlot));
  }

  /// Pool integrity audit: canaries intact, pages still mapped. On
  /// corruption, attempt a rebuild; a rebuild that cannot make progress
  /// degenerates into the CPU-hogging recovery spin the controller kills
  /// (the paper's KCP).
  void integrity_check() {
    bool corrupt = false;
    for (const auto buf : pool_) {
      std::uint64_t canary = 0;
      if (!api().read_bytes(buf, &canary, sizeof canary) || canary != kCanary) {
        corrupt = true;
      }
    }
    const auto q = api().nt_query_vm(pool_[0], os::OsApi::kStructSlot);
    hang_check(q);
    if (!q.completed || q.value < 0) corrupt = true;
    // Allocator probe: a worker whose process heap no longer allocates is
    // recycled (Apache-style worker lifecycle management).
    const auto probe = api().rtl_alloc(512);
    hang_check(probe);
    if (!probe.completed || probe.value <= 0) {
      if (++heap_probe_failures_ >= 2) throw ServerDeath{};
    } else {
      heap_probe_failures_ = 0;
      const auto freed = api().rtl_free(static_cast<std::uint64_t>(probe.value));
      hang_check(freed);
      if (!freed.completed || freed.value < 0) {
        if (++heap_probe_failures_ >= 2) throw ServerDeath{};
      }
    }
    if (!corrupt) return;

    // Rebuild: try to re-acquire clean pool buffers.
    for (auto& buf : pool_) {
      hang_check(api().rtl_free(buf));  // best effort
      std::uint64_t fresh = 0;
      for (int attempt = 0; attempt < 100; ++attempt) {
        fresh = checked_alloc(kPoolBufSize);
        if (fresh != 0) break;
      }
      if (fresh == 0) throw ServerSpin{};  // allocation storm, no progress
      buf = fresh;
      if (!api().write_bytes(buf, &kCanary, sizeof kCanary)) throw ServerDeath{};
    }
  }

  std::uint64_t cs_ = 0, stats_block_ = 0, url_buf_ = 0, canon_buf_ = 0,
                ansi_buf_ = 0, nt_struct_ = 0, post_buf_ = 0;
  std::array<std::uint64_t, 2> pool_{};
  std::size_t pool_rr_ = 0;
  std::int64_t log_handle_ = 0;
  std::int64_t log_pos_ = 0;
  std::uint64_t posts_ = 0;
  int consecutive_failures_ = 0;
  int served_since_check_ = 0;
  int served_since_audit_ = 0;
  int heap_probe_failures_ = 0;
  std::uint64_t served_total_ = 0;
  std::map<std::string, std::vector<std::uint8_t>> cache_;
};

}  // namespace

std::unique_ptr<WebServer> make_apex(os::OsApi& api) {
  return std::make_unique<ApexServer>(api);
}

}  // namespace gf::web
