// sambar / savant — the two additional web servers the paper uses in the
// profiling phase (faultload fine-tuning requires several BTs of the same
// category; the injected faultload then targets only the API functions used
// by *all* of them). They have distinct API mixes:
//
//   sambar: kernel32-flavored (ReadFile/SetFilePointer/CloseHandle wrappers,
//           canonicalizes paths), moderate checking.
//   savant: minimalist static server — ansi-string based, heavier on string
//           conversion relative to I/O (mirrors its Table 2 column).
#include <stdexcept>

#include "web/server.h"

namespace gf::web {

namespace {

constexpr std::int64_t kChunk = 4096;
constexpr std::size_t kMaxBody = 64 * 1024;

class SambarServer final : public WebServer {
 public:
  explicit SambarServer(os::OsApi& api) : WebServer(api) {}
  const char* name() const override { return "sambar"; }

 protected:
  bool do_start() override {
    const auto r = die_on_crash(api().rtl_alloc(8192));
    if (r.value <= 0) return false;
    base_ = static_cast<std::uint64_t>(r.value);
    cs_ = base_;
    url_buf_ = base_ + 64;
    canon_buf_ = base_ + 2112;
    ansi_buf_ = base_ + 4160;
    str_buf_ = base_ + 5200;
    post_buf_ = base_ + 5400;
    data_buf_ = 0;
    const auto buf = die_on_crash(api().rtl_alloc(40 * 1024));
    if (buf.value <= 0) return false;
    data_buf_ = static_cast<std::uint64_t>(buf.value);
    const std::uint8_t zeros[64] = {};
    api().write_bytes(cs_, zeros, sizeof zeros);
    api().write_cstr(os::OsApi::kPathSlot, "/logs/sambar.post");
    const auto log = die_on_crash(api().nt_create_file(os::OsApi::kPathSlot));
    if (log.value <= 0) return false;
    log_handle_ = log.value;
    return true;
  }

  void do_stop() override {
    if (log_handle_ > 0) die_on_crash(api().nt_close(log_handle_));
    if (data_buf_) die_on_crash(api().rtl_free(data_buf_));
    if (base_) die_on_crash(api().rtl_free(base_));
    base_ = data_buf_ = 0;
    log_handle_ = 0;
  }

  Response do_handle(const Request& req) override {
    die_on_crash(api().rtl_enter_cs(cs_));
    die_on_crash(api().rtl_leave_cs(cs_));
    if (!api().write_wstr(url_buf_, req.path)) throw ServerDeath{};

    if (++served_ % 48 == 0) housekeeping();

    const auto canon =
        die_on_crash(api().get_long_path_name(url_buf_, canon_buf_, 1000));
    if (canon.value <= 0) return Response{500, {}};
    die_on_crash(api().rtl_init_unicode_string(str_buf_, canon_buf_));
    die_on_crash(api().rtl_dos_path_to_nt(canon_buf_, str_buf_ + 32));
    const auto conv = die_on_crash(api().rtl_unicode_to_multibyte(
        ansi_buf_, 1000, canon_buf_, canon.value * 2));
    die_on_crash(api().rtl_free_unicode_string(str_buf_ + 32));
    if (conv.value <= 0) return Response{500, {}};
    const std::uint8_t nul = 0;
    api().write_bytes(ansi_buf_ + static_cast<std::uint64_t>(conv.value), &nul, 1);

    if (req.method == Method::kPost) {
      const auto len = std::min<std::size_t>(req.body.size(), 700);
      api().write_bytes(post_buf_, req.body.data(), len);
      const auto w = die_on_crash(api().write_file(
          log_handle_, post_buf_, static_cast<std::int64_t>(len),
          os::OsApi::kOutSlot));
      if (w.value != 1) return Response{500, {}};
      return Response{200, expected_body(req.path, 128, false)};
    }

    const auto open = die_on_crash(api().nt_open_file(ansi_buf_));
    if (open.value == os::layout::kStatusNotFound) return Response{404, {}};
    if (open.value <= 0) return Response{500, {}};
    const auto h = open.value;

    // kernel32-flavored read loop with an explicit rewind first.
    die_on_crash(api().set_file_pointer(h, 0));
    Response resp{200, {}};
    while (resp.body.size() < kMaxBody) {
      const auto rd = die_on_crash(
          api().read_file(h, data_buf_, kChunk, os::OsApi::kOutSlot));
      if (rd.value != 1) {
        die_on_crash(api().close_handle(h));
        return Response{500, {}};
      }
      const auto n = api().read_u64_or(os::OsApi::kOutSlot, 0);
      if (n == 0) break;
      const auto old = resp.body.size();
      resp.body.resize(old + n);
      if (!api().read_bytes(data_buf_, resp.body.data() + old, n)) {
        throw ServerDeath{};
      }
      if (n < static_cast<std::uint64_t>(kChunk)) break;
    }
    die_on_crash(api().close_handle(h));
    if (req.dynamic) {
      for (auto& b : resp.body) b = dynamic_transform(b);
    }
    return resp;
  }

  void do_save_state(std::vector<std::int64_t>& out) const override {
    for (std::uint64_t v : {base_, cs_, url_buf_, canon_buf_, ansi_buf_,
                            str_buf_, post_buf_, data_buf_,
                            static_cast<std::uint64_t>(log_handle_), served_}) {
      out.push_back(static_cast<std::int64_t>(v));
    }
  }

  void do_restore_state(WordReader& in) override {
    for (auto* p : {&base_, &cs_, &url_buf_, &canon_buf_, &ansi_buf_,
                    &str_buf_, &post_buf_, &data_buf_}) {
      *p = static_cast<std::uint64_t>(in.next());
    }
    log_handle_ = in.next();
    served_ = static_cast<std::uint64_t>(in.next());
  }

 private:
  /// Periodic maintenance: page-table audit of the data buffer, native
  /// re-open of the config file, log position reset.
  void housekeeping() {
    die_on_crash(api().nt_protect_vm(data_buf_, 4096, 3));
    die_on_crash(api().nt_query_vm(data_buf_, os::OsApi::kStructSlot));
    die_on_crash(api().rtl_init_ansi_string(os::OsApi::kStructSlot, ansi_buf_));
    api().write_cstr(os::OsApi::kPathSlot, "/conf/httpd.conf");
    const auto conf = die_on_crash(api().nt_open_file(os::OsApi::kPathSlot));
    if (conf.value > 0) {
      die_on_crash(api().nt_read_file(conf.value, data_buf_, 256));
      die_on_crash(api().nt_close(conf.value));
    }
    api().write_cstr(os::OsApi::kPathSlot + 64, "/tmp/sambar.tmp");
    const auto tmp = die_on_crash(api().nt_create_file(os::OsApi::kPathSlot + 64));
    if (tmp.value > 0) {
      die_on_crash(api().nt_write_file(tmp.value, ansi_buf_, 16));
      die_on_crash(api().nt_close(tmp.value));
    }
  }

  std::uint64_t base_ = 0, cs_ = 0, url_buf_ = 0, canon_buf_ = 0, ansi_buf_ = 0,
                str_buf_ = 0, post_buf_ = 0, data_buf_ = 0;
  std::int64_t log_handle_ = 0;
  std::uint64_t served_ = 0;
};

class SavantServer final : public WebServer {
 public:
  explicit SavantServer(os::OsApi& api) : WebServer(api) {}
  const char* name() const override { return "savant"; }

 protected:
  bool do_start() override {
    const auto r = die_on_crash(api().rtl_alloc(8192));
    if (r.value <= 0) return false;
    base_ = static_cast<std::uint64_t>(r.value);
    cs_ = base_;
    url_buf_ = base_ + 64;
    ansi_buf_ = base_ + 2112;
    str_a_ = base_ + 3200;
    str_b_ = base_ + 3264;
    nt_struct_ = base_ + 3328;
    data_buf_ = base_ + 3400;  // small: savant reads in 2 KiB bites
    post_buf_ = base_ + 5600;
    const std::uint8_t zeros[64] = {};
    api().write_bytes(cs_, zeros, sizeof zeros);
    api().write_cstr(os::OsApi::kPathSlot, "/logs/savant.post");
    const auto log = die_on_crash(api().nt_create_file(os::OsApi::kPathSlot));
    if (log.value <= 0) return false;
    log_handle_ = log.value;
    return true;
  }

  void do_stop() override {
    if (log_handle_ > 0) die_on_crash(api().nt_close(log_handle_));
    if (base_) die_on_crash(api().rtl_free(base_));
    base_ = 0;
    log_handle_ = 0;
  }

  Response do_handle(const Request& req) override {
    die_on_crash(api().rtl_enter_cs(cs_));
    die_on_crash(api().rtl_leave_cs(cs_));
    if (!api().write_wstr(url_buf_, req.path)) throw ServerDeath{};

    if (++served_ % 40 == 0) housekeeping();

    // String-layer heavy: length probe, NT conversion, double conversion,
    // ansi re-probe — savant's Table 2 column leans on the string API.
    die_on_crash(api().rtl_init_unicode_string(str_a_, url_buf_));
    die_on_crash(api().rtl_dos_path_to_nt(url_buf_, nt_struct_));
    const auto conv = die_on_crash(api().rtl_unicode_to_multibyte(
        ansi_buf_, 1000, url_buf_, static_cast<std::int64_t>(req.path.size()) * 2));
    die_on_crash(api().rtl_free_unicode_string(nt_struct_));
    if (conv.value <= 0) return Response{500, {}};
    const std::uint8_t nul = 0;
    api().write_bytes(ansi_buf_ + static_cast<std::uint64_t>(conv.value), &nul, 1);
    die_on_crash(api().rtl_init_ansi_string(str_b_, ansi_buf_));
    const auto alen = api().read_u64_or(str_b_, 0);
    if (alen != static_cast<std::uint64_t>(conv.value)) return Response{500, {}};

    // Per-request session record from the OS heap.
    const auto session = die_on_crash(api().rtl_alloc(192));
    if (session.value <= 0) return Response{500, {}};

    Response resp = req.method == Method::kPost ? serve_post(req) : serve_get();
    die_on_crash(api().rtl_free(static_cast<std::uint64_t>(session.value)));
    if (resp.status == 200 && req.dynamic && req.method == Method::kGet) {
      for (auto& b : resp.body) b = dynamic_transform(b);
    }
    return resp;
  }

  void do_save_state(std::vector<std::int64_t>& out) const override {
    for (std::uint64_t v : {base_, cs_, url_buf_, ansi_buf_, str_a_, str_b_,
                            nt_struct_, data_buf_, post_buf_,
                            static_cast<std::uint64_t>(log_handle_), served_}) {
      out.push_back(static_cast<std::int64_t>(v));
    }
  }

  void do_restore_state(WordReader& in) override {
    for (auto* p : {&base_, &cs_, &url_buf_, &ansi_buf_, &str_a_, &str_b_,
                    &nt_struct_, &data_buf_, &post_buf_}) {
      *p = static_cast<std::uint64_t>(in.next());
    }
    log_handle_ = in.next();
    served_ = static_cast<std::uint64_t>(in.next());
  }

 private:
  Response serve_get() {
    const auto open = die_on_crash(api().nt_open_file(ansi_buf_));
    if (open.value == os::layout::kStatusNotFound) return Response{404, {}};
    if (open.value <= 0) return Response{500, {}};
    const auto h = open.value;

    Response resp{200, {}};
    while (resp.body.size() < kMaxBody) {
      const auto rd = die_on_crash(api().nt_read_file(h, data_buf_, 2048));
      if (rd.value < 0) {
        die_on_crash(api().nt_close(h));
        return Response{500, {}};
      }
      if (rd.value == 0) break;
      const auto n = static_cast<std::size_t>(rd.value);
      const auto old = resp.body.size();
      resp.body.resize(old + n);
      if (!api().read_bytes(data_buf_, resp.body.data() + old, n)) {
        throw ServerDeath{};
      }
      if (rd.value < 2048) break;
    }
    die_on_crash(api().nt_close(h));
    return resp;
  }

  Response serve_post(const web::Request& req) {
    const auto len = std::min<std::size_t>(req.body.size(), 700);
    api().write_bytes(post_buf_, req.body.data(), len);
    const auto w = die_on_crash(api().nt_write_file(
        log_handle_, post_buf_, static_cast<std::int64_t>(len)));
    if (w.value != static_cast<std::int64_t>(len)) return Response{500, {}};
    return Response{200, expected_body(req.path, 128, false)};
  }

  void housekeeping() {
    die_on_crash(api().get_long_path_name(url_buf_, data_buf_, 400));
    die_on_crash(api().nt_protect_vm(base_, 4096, 3));
    die_on_crash(api().nt_query_vm(base_, os::OsApi::kStructSlot));
    die_on_crash(api().set_file_pointer(log_handle_, 0));
    api().write_cstr(os::OsApi::kPathSlot + 64, "/conf/httpd.conf");
    const auto conf = die_on_crash(api().nt_open_file(os::OsApi::kPathSlot + 64));
    if (conf.value > 0) {
      die_on_crash(api().read_file(conf.value, data_buf_, 128, os::OsApi::kOutSlot));
      die_on_crash(api().close_handle(conf.value));
    }
    api().write_cstr(os::OsApi::kPathSlot + 64, "/tmp/savant.tmp");
    const auto tmp = die_on_crash(api().nt_create_file(os::OsApi::kPathSlot + 64));
    if (tmp.value > 0) {
      die_on_crash(api().write_file(tmp.value, post_buf_, 8, os::OsApi::kOutSlot));
      die_on_crash(api().nt_close(tmp.value));
    }
  }

  std::uint64_t base_ = 0, cs_ = 0, url_buf_ = 0, ansi_buf_ = 0, str_a_ = 0,
                str_b_ = 0, nt_struct_ = 0, data_buf_ = 0, post_buf_ = 0;
  std::int64_t log_handle_ = 0;
  std::uint64_t served_ = 0;
};

}  // namespace

std::unique_ptr<WebServer> make_apex(os::OsApi& api);
std::unique_ptr<WebServer> make_abyssal(os::OsApi& api);

std::unique_ptr<WebServer> make_server(const std::string& name, os::OsApi& api) {
  if (name == "apex") return make_apex(api);
  if (name == "abyssal") return make_abyssal(api);
  if (name == "sambar") return std::make_unique<SambarServer>(api);
  if (name == "savant") return std::make_unique<SavantServer>(api);
  throw std::invalid_argument("unknown server: " + name);
}

}  // namespace gf::web
