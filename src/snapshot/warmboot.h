// Warm-boot snapshots for campaign iterations.
//
// A campaign task's bring-up — compile the OS image, boot the kernel, build
// the SPECWeb file set, start the server — is identical for every task of a
// (OS version, server) cell, yet the sharded runner used to repeat it per
// task and per iteration. Following ZOFI's clone-the-warmed-process model,
// this subsystem performs the bring-up ONCE per cell, captures the complete
// machine + kernel + server-process state right after server start and the
// deterministic warm-up serve (spec::warm_server), and lets
// every task reconstruct its private SUB from the shared snapshot in
// O(memory copy): no MiniC compilation, no boot execution, no file-set
// regeneration (disk content is copy-on-write, so tasks share file bytes
// until they write).
//
// Bit-identity: the capture sequence below mirrors, call for call, what a
// cold Controller does up to the first fault exposure (constructor bring-up,
// then reboot + server start at run entry), so the restored machine resumes
// at the exact cycle/tick counters a cold run would have — campaign results
// are bit-identical with snapshots on or off (tests/test_snapshot.cpp).
#pragma once

#include <memory>
#include <string>

#include "os/kernel.h"
#include "spec/fileset.h"
#include "web/server.h"

namespace gf::snapshot {

/// Everything a campaign task needs to reconstruct a warmed SUB: kernel
/// state (machine memory, images, boot replay, disk, ticks) plus the
/// server's C++-side process image and the file-set shape. Plain data —
/// shared read-only across shard threads via shared_ptr<const>.
struct WarmSnapshot {
  os::KernelSnapshot kernel;
  web::ProcessImage server;
  std::string server_name;
  spec::FilesetConfig fileset;
  /// Guest cycles the captured bring-up consumed (boot + server start) —
  /// what every warm task *avoids* re-executing; exported as the
  /// snapshot.bringup_cycles gauge.
  std::uint64_t capture_cycles = 0;
};

/// Builds one cold SUB cell (kernel of `version`, populated file set,
/// server `server_name`), performs the run-entry bring-up (OS reboot +
/// server start), and captures the warmed state. Throws when the server
/// fails to start on the pristine OS.
std::shared_ptr<const WarmSnapshot> capture_warm_boot(
    os::OsVersion version, const std::string& server_name,
    const spec::FilesetConfig& fileset = {});

}  // namespace gf::snapshot
