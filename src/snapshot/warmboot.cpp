#include "snapshot/warmboot.h"

#include <stdexcept>

#include "os/api.h"
#include "spec/client.h"

namespace gf::snapshot {

std::shared_ptr<const WarmSnapshot> capture_warm_boot(
    os::OsVersion version, const std::string& server_name,
    const spec::FilesetConfig& fileset) {
  // This must mirror a cold Controller's path to its first run exactly:
  // constructor (kernel boot, file-set population, server construction)
  // followed by the run-entry reboot + start + deterministic warm-up serve.
  // Any extra guest activity here would shift the restored cycle/tick
  // counters away from a cold run's and break the bit-identity guarantee
  // (guarded by tests/test_snapshot.cpp).
  os::Kernel kernel(version);
  os::OsApi api(kernel);
  spec::Fileset files(kernel.disk(), fileset);
  auto server = web::make_server(server_name, api);

  kernel.reboot();
  if (!server->start()) {
    throw std::runtime_error("server failed to start on a healthy OS");
  }
  spec::warm_server(*server, files);

  auto snap = std::make_shared<WarmSnapshot>();
  snap->kernel = kernel.snapshot();
  snap->server = server->save_process();
  snap->server_name = server_name;
  snap->fileset = fileset;
  snap->capture_cycles = kernel.machine().total_cycles();
  return snap;
}

}  // namespace gf::snapshot
