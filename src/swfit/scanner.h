// G-SWFIT step 1: scan a target module and generate the faultload.
//
// The scan is a pure function of (image bytes, symbol table, options) — the
// same target always yields byte-identical faultloads, which is what makes
// the methodology repeatable.
#pragma once

#include <string>
#include <vector>

#include "isa/image.h"
#include "swfit/faultload.h"
#include "swfit/operators.h"

namespace gf::swfit {

class Scanner {
 public:
  explicit Scanner(ScanOptions opts = {}) : opts_(opts) {}

  /// Scans only the listed functions (the paper's fine-tuned faultload is
  /// restricted to the Table 2 API surface). Unknown names are ignored.
  Faultload scan(const isa::Image& img,
                 const std::vector<std::string>& functions) const;

  /// Scans every symbol in the image.
  Faultload scan_all(const isa::Image& img) const;

  const ScanOptions& options() const noexcept { return opts_; }

 private:
  ScanOptions opts_;
};

}  // namespace gf::swfit
